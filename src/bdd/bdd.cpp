#include "bdd.hpp"

#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace qsyn
{

bdd_manager::bdd_manager( unsigned num_vars ) : num_vars_( num_vars )
{
  // Terminals: node 0 = false, node 1 = true.  Their `var` is one past the
  // last real variable so that terminal tests via variable comparison work.
  nodes_.push_back( { num_vars_, 0u, 0u } );
  nodes_.push_back( { num_vars_, 1u, 1u } );
}

bdd_node bdd_manager::var( unsigned v )
{
  assert( v < num_vars_ );
  return make_node( v, constant( false ), constant( true ) );
}

bdd_node bdd_manager::make_node( std::uint32_t var, bdd_node lo, bdd_node hi )
{
  if ( lo == hi )
  {
    return lo;
  }
  const std::array<std::uint32_t, 3> key = { var, lo, hi };
  if ( const auto it = unique_.find( key ); it != unique_.end() )
  {
    return it->second;
  }
  const auto idx = static_cast<bdd_node>( nodes_.size() );
  nodes_.push_back( { var, lo, hi } );
  unique_.emplace( key, idx );
  return idx;
}

bdd_node bdd_manager::bdd_not( bdd_node f )
{
  return ite( f, constant( false ), constant( true ) );
}

bdd_node bdd_manager::bdd_and( bdd_node f, bdd_node g )
{
  return ite( f, g, constant( false ) );
}

bdd_node bdd_manager::bdd_or( bdd_node f, bdd_node g )
{
  return ite( f, constant( true ), g );
}

bdd_node bdd_manager::bdd_xor( bdd_node f, bdd_node g )
{
  return ite( f, bdd_not( g ), g );
}

bdd_node bdd_manager::ite( bdd_node f, bdd_node g, bdd_node h )
{
  // Terminal cases.
  if ( f == constant( true ) )
  {
    return g;
  }
  if ( f == constant( false ) )
  {
    return h;
  }
  if ( g == h )
  {
    return g;
  }
  if ( g == constant( true ) && h == constant( false ) )
  {
    return f;
  }
  const std::array<bdd_node, 3> key = { f, g, h };
  if ( const auto it = ite_cache_.find( key ); it != ite_cache_.end() )
  {
    return it->second;
  }
  // Split on the top-most variable among f, g, h.
  std::uint32_t top = nodes_[f].var;
  if ( !is_constant( g ) )
  {
    top = std::min( top, nodes_[g].var );
  }
  if ( !is_constant( h ) )
  {
    top = std::min( top, nodes_[h].var );
  }
  const auto cof = [&]( bdd_node x, bool pol ) {
    if ( is_constant( x ) || nodes_[x].var != top )
    {
      return x;
    }
    return pol ? nodes_[x].hi : nodes_[x].lo;
  };
  const auto hi = ite( cof( f, true ), cof( g, true ), cof( h, true ) );
  const auto lo = ite( cof( f, false ), cof( g, false ), cof( h, false ) );
  const auto result = make_node( top, lo, hi );
  ite_cache_.emplace( key, result );
  return result;
}

bdd_node bdd_manager::cofactor( bdd_node f, unsigned var, bool polarity )
{
  if ( is_constant( f ) || nodes_[f].var > var )
  {
    return f;
  }
  if ( nodes_[f].var == var )
  {
    return polarity ? nodes_[f].hi : nodes_[f].lo;
  }
  // nodes_[f].var < var: recurse on both branches.
  const auto lo = cofactor( nodes_[f].lo, var, polarity );
  const auto hi = cofactor( nodes_[f].hi, var, polarity );
  return make_node( nodes_[f].var, lo, hi );
}

double bdd_manager::sat_count( bdd_node f )
{
  if ( f == constant( false ) )
  {
    return 0.0;
  }
  if ( f == constant( true ) )
  {
    return std::ldexp( 1.0, static_cast<int>( num_vars_ ) );
  }
  // count_below(g) = satisfying assignments over variables var(g)..num_vars-1;
  // the cache stores these unscaled values.
  const auto count_below = [&]( auto&& self, bdd_node g ) -> double {
    if ( g == constant( false ) )
    {
      return 0.0;
    }
    if ( g == constant( true ) )
    {
      return 1.0;
    }
    if ( const auto it = count_cache_.find( g ); it != count_cache_.end() )
    {
      return it->second;
    }
    const auto v = nodes_[g].var;
    const auto skip = [&]( bdd_node child ) {
      const auto child_var = is_constant( child ) ? num_vars_ : nodes_[child].var;
      return std::ldexp( 1.0, static_cast<int>( child_var - v - 1u ) );
    };
    const double result = skip( nodes_[g].lo ) * self( self, nodes_[g].lo ) +
                          skip( nodes_[g].hi ) * self( self, nodes_[g].hi );
    count_cache_.emplace( g, result );
    return result;
  };
  const double below = count_below( count_below, f );
  return std::ldexp( below, static_cast<int>( nodes_[f].var ) );
}

bool bdd_manager::evaluate( bdd_node f, std::uint64_t input ) const
{
  while ( !is_constant( f ) )
  {
    const auto v = nodes_[f].var;
    f = ( ( input >> v ) & 1u ) ? nodes_[f].hi : nodes_[f].lo;
  }
  return f == 1u;
}

std::size_t bdd_manager::size( bdd_node f ) const
{
  std::unordered_set<bdd_node> visited;
  std::vector<bdd_node> stack{ f };
  while ( !stack.empty() )
  {
    const auto g = stack.back();
    stack.pop_back();
    if ( is_constant( g ) || visited.count( g ) )
    {
      continue;
    }
    visited.insert( g );
    stack.push_back( nodes_[g].lo );
    stack.push_back( nodes_[g].hi );
  }
  return visited.size();
}

truth_table bdd_manager::to_truth_table( bdd_node f ) const
{
  if ( num_vars_ > 20u )
  {
    throw std::invalid_argument( "bdd_manager::to_truth_table: too many variables" );
  }
  truth_table tt( num_vars_ );
  for ( std::uint64_t i = 0; i < tt.num_bits(); ++i )
  {
    if ( evaluate( f, i ) )
    {
      tt.set_bit( i, true );
    }
  }
  return tt;
}

bdd_node bdd_manager::from_truth_table( const truth_table& tt )
{
  assert( tt.num_vars() <= num_vars_ );
  return from_tt_rec( tt, tt.num_vars() );
}

bdd_node bdd_manager::from_tt_rec( const truth_table& tt, unsigned var )
{
  if ( tt.is_const0() )
  {
    return constant( false );
  }
  if ( tt.is_const1() )
  {
    return constant( true );
  }
  assert( var > 0u );
  // Split on the highest variable so the recursion terminates at constants.
  const auto lo = from_tt_rec( tt.cofactor( var - 1u, false ), var - 1u );
  const auto hi = from_tt_rec( tt.cofactor( var - 1u, true ), var - 1u );
  return make_node( var - 1u, lo, hi );
}

void bdd_manager::clear_cache()
{
  ite_cache_.clear();
  count_cache_.clear();
}

} // namespace qsyn
