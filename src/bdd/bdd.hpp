/// \file bdd.hpp
/// \brief Reduced ordered binary decision diagrams.
///
/// The BDD package backs the symbolic parts of the functional flow
/// (Sec. IV-A): collapsing an optimized AIG into a functional description
/// (`collapse` in ABC) and computing the optimum number of additional lines
/// for the reversible embedding by counting collision-set sizes (Eq. (3),
/// following [17]).
///
/// Classic implementation: unique table with hash consing, ITE with a
/// computed table, fixed variable order (no reordering — the flows choose
/// the order explicitly).  No garbage collection; the arena lives as long
/// as the manager, which matches the short-lived per-flow usage.

#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "../common/bits.hpp"
#include "../logic/truth_table.hpp"

namespace qsyn
{

/// Handle to a BDD node (index into the manager's arena).
using bdd_node = std::uint32_t;

/// Manager owning all BDD nodes of one decision diagram forest.
class bdd_manager
{
public:
  /// Creates a manager with `num_vars` variables, ordered by index
  /// (variable 0 at the top).
  explicit bdd_manager( unsigned num_vars );

  unsigned num_vars() const { return num_vars_; }
  /// Total number of live nodes (including the two terminals).
  std::size_t num_nodes() const { return nodes_.size(); }

  bdd_node constant( bool value ) const { return value ? 1u : 0u; }
  bool is_constant( bdd_node f ) const { return f <= 1u; }

  /// The single-variable function x_var.
  bdd_node var( unsigned var );
  /// Top variable of f (invalid for terminals).
  unsigned top_var( bdd_node f ) const { return nodes_[f].var; }
  bdd_node low( bdd_node f ) const { return nodes_[f].lo; }
  bdd_node high( bdd_node f ) const { return nodes_[f].hi; }

  /// --- Boolean operations -------------------------------------------------

  bdd_node bdd_not( bdd_node f );
  bdd_node bdd_and( bdd_node f, bdd_node g );
  bdd_node bdd_or( bdd_node f, bdd_node g );
  bdd_node bdd_xor( bdd_node f, bdd_node g );
  bdd_node bdd_xnor( bdd_node f, bdd_node g ) { return bdd_not( bdd_xor( f, g ) ); }
  /// If-then-else, the universal ternary operator.
  bdd_node ite( bdd_node f, bdd_node g, bdd_node h );

  /// Cofactor with respect to variable `var` set to `polarity`.
  bdd_node cofactor( bdd_node f, unsigned var, bool polarity );

  /// --- queries --------------------------------------------------------------

  /// Number of satisfying assignments over all num_vars() variables.
  /// Exact for results below 2^53 (double mantissa).
  double sat_count( bdd_node f );

  /// Evaluates f on an assignment (bit i of `input` = variable i).
  bool evaluate( bdd_node f, std::uint64_t input ) const;

  /// Number of nodes in the (shared) subgraph rooted at f.
  std::size_t size( bdd_node f ) const;

  /// Explicit truth table of f (requires num_vars() <= 20).
  truth_table to_truth_table( bdd_node f ) const;

  /// Builds a BDD from an explicit truth table defined over this manager's
  /// variables 0..tt.num_vars()-1.
  bdd_node from_truth_table( const truth_table& tt );

  /// Clears the computed table (useful between large operations to bound
  /// memory).
  void clear_cache();

private:
  struct node_data
  {
    std::uint32_t var;
    bdd_node lo;
    bdd_node hi;
  };

  struct unique_key_hash
  {
    std::size_t operator()( const std::array<std::uint32_t, 3>& k ) const
    {
      return hash_combine( hash_combine( k[0], k[1] ), k[2] );
    }
  };

  struct ite_key_hash
  {
    std::size_t operator()( const std::array<bdd_node, 3>& k ) const
    {
      return hash_combine( hash_combine( k[0], k[1] ), k[2] );
    }
  };

  bdd_node make_node( std::uint32_t var, bdd_node lo, bdd_node hi );
  bdd_node from_tt_rec( const truth_table& tt, unsigned var );

  unsigned num_vars_;
  std::vector<node_data> nodes_;
  std::unordered_map<std::array<std::uint32_t, 3>, bdd_node, unique_key_hash> unique_;
  std::unordered_map<std::array<bdd_node, 3>, bdd_node, ite_key_hash> ite_cache_;
  std::unordered_map<bdd_node, double> count_cache_;
};

} // namespace qsyn
