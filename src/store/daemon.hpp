/// \file daemon.hpp
/// \brief Long-lived synthesis daemon over a unix-domain socket.
///
/// `synthesis_daemon` keeps the expensive state of the synthesis pipeline
/// alive between queries: one shared persistent `artifact_store` (disk
/// tier), a per-design `flow_artifact_cache` (stage artifacts + the
/// persistent incremental SAT engine, so repeat verifications of one
/// design share the miter encoding and learned lemmas), and a full-result
/// cache (`payload_kind::flow_outcome`, in memory and on disk) so a repeat
/// synthesis query is answered without recomputing anything.
///
/// Wire protocol: line-delimited JSON over `AF_UNIX`/`SOCK_STREAM` — one
/// flat JSON object per request line, one per response line.  Requests:
///
///   {"cmd":"ping"}
///   {"cmd":"stats"}
///   {"cmd":"shutdown"}
///   {"cmd":"synthesize","design":"intdiv","bitwidth":6,"flow":"esop",
///    "rounds":2,"esop_p":1,"exorcism":1,"cleanup":"keep_garbage",
///    "cut_size":4,"verify":"sampled","deadline":0}
///
/// Every response carries `"ok":true|false`; a synthesize response adds
/// the cost report, the flow/verification status, `"from_cache"` (served
/// from the result cache), and `"seconds"` (server-side handling time).
/// Malformed requests get `"ok":false` + `"error"` — the daemon never
/// dies on bad input.  Connections are handled one thread each; all
/// shared state is internally synchronized, so concurrent queries (same
/// or different designs) are safe.

#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "../core/flows.hpp"
#include "artifact_store.hpp"

namespace qsyn::store
{

struct daemon_options
{
  std::string socket_path;  ///< unix-domain socket to listen on
  std::string store_root;   ///< artifact store root; empty = no disk tier
};

/// Request counters (monotone over the daemon's lifetime).
struct daemon_stats
{
  std::size_t requests = 0;     ///< total request lines handled
  std::size_t errors = 0;       ///< malformed / failed requests
  std::size_t synthesized = 0;  ///< synthesize queries that ran the flow
  std::size_t result_hits = 0;  ///< synthesize queries served from the
                                ///< result cache (memory or disk)
};

class synthesis_daemon
{
public:
  explicit synthesis_daemon( daemon_options options );
  ~synthesis_daemon();
  synthesis_daemon( const synthesis_daemon& ) = delete;
  synthesis_daemon& operator=( const synthesis_daemon& ) = delete;

  /// Handles one request line and returns the response line (without the
  /// trailing newline).  This is the daemon's whole brain — the socket
  /// loop is a thin transport around it — and it is exposed so tests can
  /// drive the daemon without a socket.  Thread-safe.
  std::string handle_request( const std::string& line );

  /// Binds the socket and starts accepting connections on a background
  /// thread; returns once the socket is listening.  Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Stops accepting, wakes the accept loop, and joins every connection
  /// thread.  Idempotent; also run by the destructor.
  void stop();

  /// True once a `shutdown` request was received (the CLI uses this to
  /// exit its serve loop).
  [[nodiscard]] bool shutdown_requested() const;

  [[nodiscard]] daemon_stats stats() const;
  [[nodiscard]] std::shared_ptr<artifact_store> store() const { return store_; }

private:
  struct design_context;

  design_context& context_for( const std::string& design, unsigned bitwidth );
  std::string handle_synthesize( const std::map<std::string, std::string>& fields );
  void accept_loop();
  void handle_connection( int fd );

  daemon_options options_;
  std::shared_ptr<artifact_store> store_; ///< nullptr when store_root is empty

  mutable std::mutex mutex_; ///< guards designs_, stats_, threads_
  std::map<std::string, std::unique_ptr<design_context>> designs_;
  daemon_stats stats_;

  std::atomic<bool> stopping_{ false };
  std::atomic<bool> shutdown_requested_{ false };
  int listen_fd_ = -1;
  std::mutex stop_mutex_; ///< makes stop() idempotent without holding mutex_
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;
};

/// Parses one flat JSON object (string / number / bool / null values —
/// no nesting) into key → value text, with string escapes decoded.
/// Throws std::runtime_error on malformed input.
std::map<std::string, std::string> parse_flat_json( const std::string& line );

/// JSON string escaping for response assembly (and the client CLI).
std::string json_escape( const std::string& s );

} // namespace qsyn::store
