/// \file daemon.hpp
/// \brief Long-lived synthesis daemon over a unix-domain socket.
///
/// `synthesis_daemon` keeps the expensive state of the synthesis pipeline
/// alive between queries: one shared persistent `artifact_store` (disk
/// tier), a per-design `flow_artifact_cache` (stage artifacts + the
/// persistent incremental SAT engine, so repeat verifications of one
/// design share the miter encoding and learned lemmas), and a full-result
/// cache (`payload_kind::flow_outcome`, in memory and on disk) so a repeat
/// synthesis query is answered without recomputing anything.
///
/// Execution model: connection threads are pure I/O.  Every admitted
/// synthesize request builds its staged flow as a `task_graph`
/// (optimize → backend artifact → synthesis tail) and runs it on ONE
/// long-lived work-stealing pool shared by all in-flight requests, so a
/// big design's stages parallelize across workers and concurrent requests
/// interleave at task granularity instead of fighting over cores
/// thread-per-request.  Identical concurrent queries coalesce: an
/// in-flight table keyed on the result-cache key (`outcome_key`) makes
/// every duplicate wait for the one owner's synthesis and share its
/// result — N identical in-flight queries run `run_flow_staged` exactly
/// once (stats `synthesized == 1`, the rest counted `coalesced`).
///
/// Admission control: at most `max_inflight` syntheses may be in flight;
/// requests beyond that are rejected immediately with
/// `{"ok":false,...,"code":"busy"}` so one huge design cannot starve the
/// socket.  A request's deadline is armed at admission — time spent
/// queued behind other requests' tasks consumes its budget, and a tail
/// that cannot start before expiry reports `timed_out`.
///
/// Budget-honest result cache: cached outcomes remember the budget they
/// were produced under.  A cached `degraded` (or verify-downgraded)
/// outcome is served as-is only to requesters with no more budget than
/// the producer had; a strictly better-funded requester triggers a
/// recompute that upgrades the memory slot and the store entry (stats
/// `upgraded`), mirroring the stage-level ESOP upgrade path.
///
/// Wire protocol: line-delimited JSON over `AF_UNIX`/`SOCK_STREAM` — one
/// flat JSON object per request line, one per response line.  Requests:
///
///   {"cmd":"ping"}
///   {"cmd":"stats"}
///   {"cmd":"shutdown"}
///   {"cmd":"synthesize","design":"intdiv","bitwidth":6,"flow":"esop",
///    "rounds":2,"esop_p":1,"exorcism":1,"cleanup":"keep_garbage",
///    "cut_size":4,"verify":"sampled","deadline":0,
///    "sat_conflicts":0,"sat_propagations":0,"exorcism_pairs":0}
///
/// (`deadline` in seconds, the three budget fields as counts; 0 =
/// unlimited, matching `qsyn::budget`.)
///
/// Every response carries `"ok":true|false`; a synthesize response adds
/// the cost report, the flow/verification status, `"from_cache"` (served
/// from the result cache or coalesced onto an in-flight duplicate), and
/// `"seconds"` (server-side handling time).  Failures get `"ok":false` +
/// `"error"`, plus a machine-readable `"code"` for backpressure:
/// `"busy"` (admission or connection cap hit — retry later) and
/// `"line_too_long"` (request line exceeded `max_line_bytes`; the daemon
/// answers then drops the connection instead of buffering without bound).
/// The daemon never dies on bad input.  Connections are capped at
/// `max_connections` and their threads reaped as they finish; all shared
/// state is internally synchronized.
#pragma once

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "../core/flows.hpp"
#include "artifact_store.hpp"

namespace qsyn
{
class thread_pool;
}

namespace qsyn::store
{

struct daemon_options
{
  std::string socket_path;  ///< unix-domain socket to listen on
  std::string store_root;   ///< artifact store root; empty = no disk tier
  /// Workers of the shared synthesis pool (0 = thread_pool's default,
  /// honoring QSYN_THREADS; 1 = inline execution on the request thread).
  unsigned num_threads = 0;
  /// Admission cap: synthesize requests beyond this many in-flight
  /// syntheses are rejected with code "busy" (0 = 2x workers, min 4).
  std::size_t max_inflight = 0;
  /// Connection cap: accepts beyond this many live connections are
  /// answered with code "busy" and closed.
  std::size_t max_connections = 64;
  /// A request line longer than this is answered with code
  /// "line_too_long" and the connection dropped (guards against a client
  /// streaming bytes without a newline).
  std::size_t max_line_bytes = 1u << 20;
};

/// Request counters (monotone over the daemon's lifetime).
struct daemon_stats
{
  std::size_t requests = 0;     ///< total request lines handled
  std::size_t errors = 0;       ///< malformed / failed requests
  std::size_t synthesized = 0;  ///< synthesize queries that ran the flow
  std::size_t result_hits = 0;  ///< synthesize queries served from the
                                ///< result cache (memory or disk)
  std::size_t coalesced = 0;    ///< synthesize queries that waited on an
                                ///< identical in-flight query's synthesis
  std::size_t rejected = 0;     ///< requests/connections rejected "busy"
  std::size_t upgraded = 0;     ///< degraded cached outcomes recomputed
                                ///< for a better-budgeted requester
};

class synthesis_daemon
{
public:
  explicit synthesis_daemon( daemon_options options );
  ~synthesis_daemon();
  synthesis_daemon( const synthesis_daemon& ) = delete;
  synthesis_daemon& operator=( const synthesis_daemon& ) = delete;

  /// Handles one request line and returns the response line (without the
  /// trailing newline).  This is the daemon's whole brain — the socket
  /// loop is a thin transport around it — and it is exposed so tests can
  /// drive the daemon without a socket.  Thread-safe.
  std::string handle_request( const std::string& line );

  /// Binds the socket and starts accepting connections on a background
  /// thread; returns once the socket is listening.  Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Stops accepting, wakes the accept loop, and joins every connection
  /// thread.  Idempotent; also run by the destructor.
  void stop();

  /// True once a `shutdown` request was received (the CLI uses this to
  /// exit its serve loop).
  [[nodiscard]] bool shutdown_requested() const;

  [[nodiscard]] daemon_stats stats() const;
  /// Currently admitted (owner) syntheses — a gauge, not a counter; also
  /// reported as `"inflight"` by the stats command so clients can probe
  /// saturation.
  [[nodiscard]] std::size_t inflight() const;
  /// Workers of the shared synthesis pool (after defaulting).
  [[nodiscard]] unsigned num_threads() const;
  [[nodiscard]] std::shared_ptr<artifact_store> store() const { return store_; }

private:
  struct design_context;

  design_context& context_for( const std::string& design, unsigned bitwidth );
  std::string handle_synthesize( const std::map<std::string, std::string>& fields );
  void accept_loop();
  void handle_connection( int fd );
  bool send_all( int fd, const std::string& data );

  daemon_options options_;
  std::shared_ptr<artifact_store> store_; ///< nullptr when store_root is empty
  std::unique_ptr<thread_pool> pool_;     ///< shared by all in-flight requests
  std::size_t max_inflight_ = 0;          ///< resolved admission cap

  mutable std::mutex mutex_; ///< guards designs_, stats_
  std::map<std::string, std::unique_ptr<design_context>> designs_;
  daemon_stats stats_;
  std::atomic<std::size_t> inflight_{ 0 }; ///< admitted owner syntheses

  std::atomic<bool> stopping_{ false };
  std::atomic<bool> shutdown_requested_{ false };
  int listen_fd_ = -1;
  std::mutex stop_mutex_; ///< makes stop() idempotent without holding mutex_
  std::thread accept_thread_;

  /// Reaped, capped connection pool: each slot's `done` flag is set by the
  /// connection thread as its last action, and the accept loop joins and
  /// erases finished slots before admitting the next connection, so the
  /// daemon's thread count is bounded by live connections instead of
  /// growing with every connection ever accepted.
  struct connection_slot
  {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex conn_mutex_; ///< guards connections_
  std::list<connection_slot> connections_;
};

/// Parses one flat JSON object (string / number / bool / null values —
/// no nesting) into key → value text, with string escapes decoded.
/// Throws std::runtime_error on malformed input, including trailing
/// garbage after the closing '}'.
std::map<std::string, std::string> parse_flat_json( const std::string& line );

/// JSON string escaping for response assembly (and the client CLI).
std::string json_escape( const std::string& s );

} // namespace qsyn::store
