#include "daemon.hpp"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "../common/thread_pool.hpp"
#include "../common/timer.hpp"
#include "../core/dse.hpp" // dse_label
#include "../core/task_graph.hpp"
#include "../verilog/elaborator.hpp"
#include "serialize.hpp"

namespace qsyn::store
{

// --- flat JSON ---------------------------------------------------------------

std::string json_escape( const std::string& s )
{
  std::string out;
  out.reserve( s.size() + 2 );
  for ( const char c : s )
  {
    switch ( c )
    {
    case '"':
      out += "\\\"";
      break;
    case '\\':
      out += "\\\\";
      break;
    case '\n':
      out += "\\n";
      break;
    case '\r':
      out += "\\r";
      break;
    case '\t':
      out += "\\t";
      break;
    default:
      if ( static_cast<unsigned char>( c ) < 0x20u )
      {
        char buf[8];
        std::snprintf( buf, sizeof buf, "\\u%04x", c );
        out += buf;
      }
      else
      {
        out += c;
      }
    }
  }
  return out;
}

namespace
{

void skip_ws( const std::string& s, std::size_t& i )
{
  while ( i < s.size() && ( s[i] == ' ' || s[i] == '\t' || s[i] == '\r' || s[i] == '\n' ) )
  {
    ++i;
  }
}

std::string parse_json_string( const std::string& s, std::size_t& i )
{
  if ( i >= s.size() || s[i] != '"' )
  {
    throw std::runtime_error( "json: expected string" );
  }
  ++i;
  std::string out;
  while ( true )
  {
    if ( i >= s.size() )
    {
      throw std::runtime_error( "json: unterminated string" );
    }
    const char c = s[i++];
    if ( c == '"' )
    {
      return out;
    }
    if ( c != '\\' )
    {
      out += c;
      continue;
    }
    if ( i >= s.size() )
    {
      throw std::runtime_error( "json: dangling escape" );
    }
    const char e = s[i++];
    switch ( e )
    {
    case '"':
    case '\\':
    case '/':
      out += e;
      break;
    case 'n':
      out += '\n';
      break;
    case 't':
      out += '\t';
      break;
    case 'r':
      out += '\r';
      break;
    case 'b':
      out += '\b';
      break;
    case 'f':
      out += '\f';
      break;
    case 'u':
    {
      if ( i + 4 > s.size() )
      {
        throw std::runtime_error( "json: truncated \\u escape" );
      }
      unsigned cp = 0;
      for ( int k = 0; k < 4; ++k )
      {
        const char h = s[i++];
        cp <<= 4;
        if ( h >= '0' && h <= '9' )
        {
          cp |= static_cast<unsigned>( h - '0' );
        }
        else if ( h >= 'a' && h <= 'f' )
        {
          cp |= static_cast<unsigned>( h - 'a' + 10 );
        }
        else if ( h >= 'A' && h <= 'F' )
        {
          cp |= static_cast<unsigned>( h - 'A' + 10 );
        }
        else
        {
          throw std::runtime_error( "json: bad \\u escape" );
        }
      }
      // Basic-plane UTF-8 encoding (surrogate pairs are rejected — the
      // protocol's field values are ASCII identifiers and numbers).
      if ( cp >= 0xd800u && cp <= 0xdfffu )
      {
        throw std::runtime_error( "json: surrogate escapes unsupported" );
      }
      if ( cp < 0x80u )
      {
        out += static_cast<char>( cp );
      }
      else if ( cp < 0x800u )
      {
        out += static_cast<char>( 0xc0u | ( cp >> 6 ) );
        out += static_cast<char>( 0x80u | ( cp & 0x3fu ) );
      }
      else
      {
        out += static_cast<char>( 0xe0u | ( cp >> 12 ) );
        out += static_cast<char>( 0x80u | ( ( cp >> 6 ) & 0x3fu ) );
        out += static_cast<char>( 0x80u | ( cp & 0x3fu ) );
      }
      break;
    }
    default:
      throw std::runtime_error( "json: unknown escape" );
    }
  }
}

} // namespace

namespace
{

/// Only trailing whitespace may follow the object's closing '}' — a
/// request like `{"cmd":"ping"} {"cmd":"shutdown"}` is one malformed line,
/// not two commands.
void reject_trailing_garbage( const std::string& line, std::size_t i )
{
  skip_ws( line, i );
  if ( i != line.size() )
  {
    throw std::runtime_error( "json: trailing garbage after object" );
  }
}

} // namespace

std::map<std::string, std::string> parse_flat_json( const std::string& line )
{
  std::map<std::string, std::string> fields;
  std::size_t i = 0;
  skip_ws( line, i );
  if ( i >= line.size() || line[i] != '{' )
  {
    throw std::runtime_error( "json: expected object" );
  }
  ++i;
  skip_ws( line, i );
  if ( i < line.size() && line[i] == '}' )
  {
    reject_trailing_garbage( line, i + 1 );
    return fields;
  }
  while ( true )
  {
    skip_ws( line, i );
    const auto key = parse_json_string( line, i );
    skip_ws( line, i );
    if ( i >= line.size() || line[i] != ':' )
    {
      throw std::runtime_error( "json: expected ':' after key" );
    }
    ++i;
    skip_ws( line, i );
    if ( i >= line.size() )
    {
      throw std::runtime_error( "json: missing value" );
    }
    std::string value;
    if ( line[i] == '"' )
    {
      value = parse_json_string( line, i );
    }
    else
    {
      // number / true / false / null — everything up to the next
      // separator, validated as a bare token
      const auto start = i;
      while ( i < line.size() && line[i] != ',' && line[i] != '}' && line[i] != ' ' &&
              line[i] != '\t' )
      {
        if ( line[i] == '{' || line[i] == '[' )
        {
          throw std::runtime_error( "json: nested values unsupported" );
        }
        ++i;
      }
      value = line.substr( start, i - start );
      if ( value.empty() )
      {
        throw std::runtime_error( "json: empty value" );
      }
    }
    fields[key] = value;
    skip_ws( line, i );
    if ( i >= line.size() )
    {
      throw std::runtime_error( "json: unterminated object" );
    }
    if ( line[i] == ',' )
    {
      ++i;
      continue;
    }
    if ( line[i] == '}' )
    {
      reject_trailing_garbage( line, i + 1 );
      return fields;
    }
    throw std::runtime_error( "json: expected ',' or '}'" );
  }
}

// --- request helpers ---------------------------------------------------------

namespace
{

std::string field_or( const std::map<std::string, std::string>& fields, const std::string& key,
                      const std::string& fallback )
{
  const auto it = fields.find( key );
  return it == fields.end() ? fallback : it->second;
}

unsigned uint_field( const std::map<std::string, std::string>& fields, const std::string& key,
                     unsigned fallback )
{
  const auto it = fields.find( key );
  if ( it == fields.end() )
  {
    return fallback;
  }
  std::size_t pos = 0;
  const auto value = std::stoul( it->second, &pos );
  if ( pos != it->second.size() || value > 0xffffffffull )
  {
    throw std::runtime_error( "field '" + key + "' is not an unsigned integer" );
  }
  return static_cast<unsigned>( value );
}

std::uint64_t u64_field( const std::map<std::string, std::string>& fields, const std::string& key,
                         std::uint64_t fallback )
{
  const auto it = fields.find( key );
  if ( it == fields.end() )
  {
    return fallback;
  }
  std::size_t pos = 0;
  const auto value = std::stoull( it->second, &pos );
  if ( pos != it->second.size() )
  {
    throw std::runtime_error( "field '" + key + "' is not an unsigned integer" );
  }
  return value;
}

double double_field( const std::map<std::string, std::string>& fields, const std::string& key,
                     double fallback )
{
  const auto it = fields.find( key );
  if ( it == fields.end() )
  {
    return fallback;
  }
  std::size_t pos = 0;
  const auto value = std::stod( it->second, &pos );
  if ( pos != it->second.size() || value < 0.0 )
  {
    throw std::runtime_error( "field '" + key + "' is not a non-negative number" );
  }
  return value;
}

std::string number_json( double v )
{
  char buf[32];
  std::snprintf( buf, sizeof buf, "%.6f", v );
  return buf;
}

flow_params params_from_fields( const std::map<std::string, std::string>& fields )
{
  flow_params params;
  const auto flow = field_or( fields, "flow", "hierarchical" );
  if ( flow == "functional" )
  {
    params.kind = flow_kind::functional;
  }
  else if ( flow == "esop" )
  {
    params.kind = flow_kind::esop_based;
  }
  else if ( flow == "hierarchical" )
  {
    params.kind = flow_kind::hierarchical;
  }
  else
  {
    throw std::runtime_error( "unknown flow '" + flow + "'" );
  }
  params.optimization_rounds = uint_field( fields, "rounds", params.optimization_rounds );
  params.esop_p = uint_field( fields, "esop_p", params.esop_p );
  params.run_exorcism = uint_field( fields, "exorcism", params.run_exorcism ? 1u : 0u ) != 0u;
  params.cut_size = uint_field( fields, "cut_size", params.cut_size );
  const auto cleanup = field_or( fields, "cleanup", "keep_garbage" );
  if ( cleanup == "keep_garbage" )
  {
    params.cleanup = cleanup_strategy::keep_garbage;
  }
  else if ( cleanup == "bennett" )
  {
    params.cleanup = cleanup_strategy::bennett;
  }
  else if ( cleanup == "eager" )
  {
    params.cleanup = cleanup_strategy::eager;
  }
  else
  {
    throw std::runtime_error( "unknown cleanup '" + cleanup + "'" );
  }
  const auto verify = field_or( fields, "verify", "sampled" );
  const auto mode = verify_mode_from_name( verify );
  if ( !mode )
  {
    throw std::runtime_error( "unknown verify mode '" + verify + "'" );
  }
  params.verification = *mode;
  params.verify = *mode != verify_mode::none;
  params.limits.deadline_seconds = double_field( fields, "deadline", 0.0 );
  params.limits.sat_conflict_budget = u64_field( fields, "sat_conflicts", 0u );
  params.limits.sat_propagation_budget = u64_field( fields, "sat_propagations", 0u );
  params.limits.exorcism_pair_budget = u64_field( fields, "exorcism_pairs", 0u );
  return params;
}

/// Canonical result-cache key of a synthesize query: the flow's full
/// parameter identity plus the verify tier (a cached verdict must match
/// the tier that was asked for).
std::string outcome_key( const flow_params& params )
{
  std::string key = "flow[" + flow_artifact_key( params );
  switch ( params.kind )
  {
  case flow_kind::functional:
    key += ",bidir=" + std::string( params.bidirectional_tbs ? "1" : "0" );
    break;
  case flow_kind::esop_based:
    key += ",p=" + std::to_string( params.esop_p );
    break;
  case flow_kind::hierarchical:
    key += ",cleanup=" + std::to_string( static_cast<unsigned>( params.cleanup ) );
    break;
  }
  key += ",verify=" + verify_mode_name( params.verify ? params.verification : verify_mode::none );
  key += "]";
  return key;
}

/// Serializes a flow outcome together with the budget it was produced
/// under (`produced_with`), so a later daemon can tell whether a cached
/// `degraded` verdict deserves a recompute for a better-funded requester.
/// The budget fields are appended after the circuit: entries written by
/// the budget-blind format are shorter, fail `decode_outcome`'s bounds
/// checks with `deserialize_error`, and gracefully count as a miss.
std::vector<std::uint8_t> encode_outcome( const flow_result& result, const budget& produced_with )
{
  byte_writer w;
  w.u8( static_cast<std::uint8_t>( result.status ) );
  w.u8( result.verified ? 1u : 0u );
  w.u8( static_cast<std::uint8_t>( result.verified_with ) );
  w.u8( result.verify_downgraded ? 1u : 0u );
  w.f64( result.runtime_seconds );
  w.f64( result.verify_seconds );
  w.u32( result.costs.qubits );
  w.u64( result.costs.t_count );
  w.u64( result.costs.gates );
  w.u64( result.costs.toffoli_gates );
  w.u64( result.costs.depth );
  w.u64( result.esop_terms );
  w.u64( result.xmg_maj );
  w.u64( result.xmg_xor );
  w.u32( result.embedding_lines );
  w.u64( result.max_collisions );
  w.u64( result.aig_nodes_initial );
  w.u64( result.aig_nodes_optimized );
  w.str( result.status_detail );
  write_circuit( w, result.circuit );
  w.f64( produced_with.deadline_seconds );
  w.u64( produced_with.sat_conflict_budget );
  w.u64( produced_with.sat_propagation_budget );
  w.u64( produced_with.exorcism_pair_budget );
  return w.take();
}

flow_result decode_outcome( const std::vector<std::uint8_t>& payload, budget& produced_with )
{
  byte_reader r( payload );
  flow_result result;
  const auto status = r.u8();
  if ( status > static_cast<std::uint8_t>( flow_status::failed ) )
  {
    throw deserialize_error( "outcome: unknown status" );
  }
  result.status = static_cast<flow_status>( status );
  result.verified = r.u8() != 0u;
  const auto tier = r.u8();
  if ( tier > static_cast<std::uint8_t>( verify_mode::sat ) )
  {
    throw deserialize_error( "outcome: unknown verify tier" );
  }
  result.verified_with = static_cast<verify_mode>( tier );
  result.verify_downgraded = r.u8() != 0u;
  result.runtime_seconds = r.f64();
  result.verify_seconds = r.f64();
  result.costs.qubits = r.u32();
  result.costs.t_count = r.u64();
  result.costs.gates = r.u64();
  result.costs.toffoli_gates = r.u64();
  result.costs.depth = r.u64();
  result.esop_terms = r.u64();
  result.xmg_maj = r.u64();
  result.xmg_xor = r.u64();
  result.embedding_lines = r.u32();
  result.max_collisions = r.u64();
  result.aig_nodes_initial = r.u64();
  result.aig_nodes_optimized = r.u64();
  result.status_detail = r.str();
  result.circuit = read_circuit( r );
  produced_with.deadline_seconds = r.f64();
  produced_with.sat_conflict_budget = r.u64();
  produced_with.sat_propagation_budget = r.u64();
  produced_with.exorcism_pair_budget = r.u64();
  r.expect_end();
  return result;
}

/// A cached outcome is served as-is unless it is imperfect (degraded or
/// verify-downgraded) AND the requester brings strictly more budget than
/// the producer had — only then can recomputing possibly improve it.
bool upgrade_worthwhile( const flow_result& cached, const budget& produced_with,
                         const budget& requested )
{
  const bool imperfect = cached.status == flow_status::degraded || cached.verify_downgraded;
  return imperfect && requested.more_generous_than( produced_with );
}

std::string synthesize_response( const flow_params& params, const flow_result& result,
                                 bool from_cache, double seconds )
{
  std::string out = "{\"ok\":true";
  out += ",\"label\":\"" + json_escape( dse_label( params ) ) + "\"";
  out += ",\"from_cache\":" + std::string( from_cache ? "true" : "false" );
  out += ",\"qubits\":" + std::to_string( result.costs.qubits );
  out += ",\"t_count\":" + std::to_string( result.costs.t_count );
  out += ",\"gates\":" + std::to_string( result.costs.gates );
  out += ",\"toffoli_gates\":" + std::to_string( result.costs.toffoli_gates );
  out += ",\"depth\":" + std::to_string( result.costs.depth );
  out += ",\"status\":\"" + flow_status_name( result.status ) + "\"";
  if ( !result.status_detail.empty() )
  {
    out += ",\"status_detail\":\"" + json_escape( result.status_detail ) + "\"";
  }
  out += ",\"verified\":" + std::string( result.verified ? "true" : "false" );
  out += ",\"verified_with\":\"" + verify_mode_name( result.verified_with ) + "\"";
  if ( result.esop_terms != 0u )
  {
    out += ",\"esop_terms\":" + std::to_string( result.esop_terms );
  }
  if ( result.xmg_maj != 0u || result.xmg_xor != 0u )
  {
    out += ",\"xmg_maj\":" + std::to_string( result.xmg_maj );
    out += ",\"xmg_xor\":" + std::to_string( result.xmg_xor );
  }
  out += ",\"runtime_seconds\":" + number_json( result.runtime_seconds );
  out += ",\"seconds\":" + number_json( seconds );
  out += "}";
  return out;
}

std::string error_response( const std::string& message, const std::string& code = {} )
{
  std::string out = "{\"ok\":false,\"error\":\"" + json_escape( message ) + "\"";
  if ( !code.empty() )
  {
    out += ",\"code\":\"" + code + "\"";
  }
  out += "}";
  return out;
}

} // namespace

// --- daemon core -------------------------------------------------------------

/// Everything the daemon keeps alive for one (design, bitwidth): the
/// elaborated AIG, its content hash, the stage-artifact cache (which owns
/// the persistent SAT engine and is attached to the shared store), the
/// in-memory result cache (each entry remembering the budget it was
/// produced under), and the in-flight table duplicate requests coalesce
/// on.
struct synthesis_daemon::design_context
{
  /// A memoized flow outcome plus the budget that produced it — the
  /// budget decides whether a later, better-funded requester triggers a
  /// recompute (see `upgrade_worthwhile`).
  struct cached_outcome
  {
    flow_result result;
    budget produced_with;
  };

  /// One in-flight synthesis: the owner publishes `result`/`error`, sets
  /// `done`, and wakes every coalesced waiter through `results_cv`.
  struct inflight_request
  {
    bool done = false;
    flow_result result;
    budget produced_with;
    std::exception_ptr error;
  };

  aig_network aig{ 0 };
  std::uint64_t design_hash = 0;
  flow_artifact_cache cache;
  std::mutex results_mutex; ///< guards results, inflight
  std::condition_variable results_cv;
  std::map<std::string, cached_outcome> results;
  std::map<std::string, std::shared_ptr<inflight_request>> inflight;
};

synthesis_daemon::synthesis_daemon( daemon_options options ) : options_( std::move( options ) )
{
  if ( !options_.store_root.empty() )
  {
    store_ = std::make_shared<artifact_store>( options_.store_root );
  }
  const unsigned workers =
      options_.num_threads == 0u ? thread_pool::default_num_threads() : options_.num_threads;
  pool_ = std::make_unique<thread_pool>( workers );
  max_inflight_ = options_.max_inflight != 0u
                      ? options_.max_inflight
                      : std::max<std::size_t>( 4u, 2u * static_cast<std::size_t>( workers ) );
}

synthesis_daemon::~synthesis_daemon()
{
  stop();
}

synthesis_daemon::design_context& synthesis_daemon::context_for( const std::string& design,
                                                                 unsigned bitwidth )
{
  const auto key = design + ":" + std::to_string( bitwidth );
  std::lock_guard<std::mutex> lock( mutex_ );
  auto it = designs_.find( key );
  if ( it != designs_.end() )
  {
    return *it->second;
  }
  reciprocal_design kind;
  if ( design == "intdiv" )
  {
    kind = reciprocal_design::intdiv;
  }
  else if ( design == "newton" )
  {
    kind = reciprocal_design::newton;
  }
  else
  {
    throw std::runtime_error( "unknown design '" + design + "' (intdiv|newton)" );
  }
  auto ctx = std::make_unique<design_context>();
  ctx->aig = verilog::elaborate_verilog( reciprocal_verilog( kind, bitwidth ) ).aig;
  ctx->design_hash = ctx->aig.content_hash();
  ctx->cache.attach_store( store_ );
  return *designs_.emplace( key, std::move( ctx ) ).first->second;
}

std::string synthesis_daemon::handle_synthesize( const std::map<std::string, std::string>& fields )
{
  stopwatch watch;
  const auto design = field_or( fields, "design", "" );
  if ( design.empty() )
  {
    throw std::runtime_error( "synthesize needs a 'design' field" );
  }
  const auto bitwidth = uint_field( fields, "bitwidth", 0u );
  if ( bitwidth == 0u )
  {
    throw std::runtime_error( "synthesize needs a nonzero 'bitwidth' field" );
  }
  const auto params = params_from_fields( fields );
  auto& ctx = context_for( design, bitwidth );
  const auto rkey = outcome_key( params );
  const store_key skey{ ctx.design_hash, payload_kind::flow_outcome, rkey };

  // Decision loop under the context lock: memory tier, then the in-flight
  // table (coalesce onto an identical running synthesis), then claim
  // ownership subject to admission control.  A coalesced waiter that
  // wakes with a larger budget than the owner's re-runs the loop — it may
  // now be the one that upgrades the freshly cached degraded outcome.
  using inflight_request = design_context::inflight_request;
  std::shared_ptr<inflight_request> entry;
  bool upgrading = false;
  {
    std::unique_lock<std::mutex> lock( ctx.results_mutex );
    while ( true )
    {
      // Memory tier: a full hit skips synthesis AND verification — the
      // cached entry carries the verdict — unless this requester's larger
      // budget justifies recomputing an imperfect one.
      const auto it = ctx.results.find( rkey );
      if ( it != ctx.results.end() &&
           !upgrade_worthwhile( it->second.result, it->second.produced_with, params.limits ) )
      {
        const auto result = it->second.result;
        lock.unlock();
        {
          std::lock_guard<std::mutex> slock( mutex_ );
          ++stats_.result_hits;
        }
        return synthesize_response( params, result, true, watch.elapsed_seconds() );
      }
      const bool memory_upgrade = it != ctx.results.end();

      // In-flight tier: identical concurrent queries fold onto the one
      // owner's synthesis instead of recomputing.
      const auto fit = ctx.inflight.find( rkey );
      if ( fit != ctx.inflight.end() )
      {
        const auto shared = fit->second;
        {
          std::lock_guard<std::mutex> slock( mutex_ );
          ++stats_.coalesced;
        }
        ctx.results_cv.wait( lock, [&shared] { return shared->done; } );
        if ( shared->error )
        {
          std::rethrow_exception( shared->error );
        }
        if ( !upgrade_worthwhile( shared->result, shared->produced_with, params.limits ) )
        {
          const auto result = shared->result;
          lock.unlock();
          return synthesize_response( params, result, true, watch.elapsed_seconds() );
        }
        continue;
      }

      // Miss (or upgrade): claim ownership, subject to the admission cap —
      // beyond max_inflight_ owners the request is rejected immediately so
      // one huge design cannot absorb every connection thread.
      if ( inflight_.fetch_add( 1 ) >= max_inflight_ )
      {
        inflight_.fetch_sub( 1 );
        lock.unlock();
        {
          std::lock_guard<std::mutex> slock( mutex_ );
          ++stats_.rejected;
        }
        return error_response(
            "synthesis queue full (" + std::to_string( max_inflight_ ) + " in flight)", "busy" );
      }
      upgrading = memory_upgrade;
      entry = std::make_shared<inflight_request>();
      entry->produced_with = params.limits;
      ctx.inflight.emplace( rkey, entry );
      break;
    }
  }

  // Owner path.  Whatever happens, the in-flight entry must be published
  // and erased and the waiters woken — an exception reaches them as
  // `entry->error`.
  try
  {
    // Disk tier (pointless when we already decided to upgrade a memory
    // slot).  A disk hit is subject to the same budget-honesty rule; a
    // corrupt or budget-blind legacy entry counts as a miss and is
    // recomputed and rewritten below.
    if ( !upgrading && store_ )
    {
      if ( const auto payload = store_->load( skey ) )
      {
        try
        {
          budget produced_with;
          const auto result = decode_outcome( *payload, produced_with );
          if ( !upgrade_worthwhile( result, produced_with, params.limits ) )
          {
            {
              std::lock_guard<std::mutex> lock( ctx.results_mutex );
              ctx.results[rkey] = { result, produced_with };
              entry->result = result;
              entry->produced_with = produced_with;
              entry->done = true;
              ctx.inflight.erase( rkey );
              ctx.results_cv.notify_all();
            }
            inflight_.fetch_sub( 1 );
            {
              std::lock_guard<std::mutex> slock( mutex_ );
              ++stats_.result_hits;
            }
            return synthesize_response( params, result, true, watch.elapsed_seconds() );
          }
          upgrading = true; // the store has it, but this requester can do better
        }
        catch ( const deserialize_error& )
        {
          // corrupt outcome entry: recompute below
        }
      }
    }

    // Synthesize on the shared pool: the staged flow becomes a little
    // dependency graph (optimize → artifact → tail) that runs alongside
    // every other in-flight request's graph; stage work still coalesces
    // per design through the artifact-cache keys.  The deadline is armed
    // here — at admission — so time spent queued behind other requests'
    // tasks consumes this request's budget, and a tail that cannot start
    // before expiry reports `timed_out` instead of running late.
    const auto stop = deadline::in( params.limits.deadline_seconds );
    flow_result out;
    task_graph graph;
    const auto ids = add_flow_tasks( graph, ctx.aig, params, ctx.cache, stop, out );
    graph.run( *pool_, stop );
    fill_flow_status_from_graph( graph, ids.tail, out );

    {
      std::lock_guard<std::mutex> slock( mutex_ );
      ++stats_.synthesized;
      if ( upgrading )
      {
        ++stats_.upgraded;
      }
    }
    // Only completed results are worth remembering: a timed-out or failed
    // attempt must not pin the failure for every later (possibly
    // better-budgeted) requester.  An upgrade overwrites both tiers.
    const bool cacheable =
        out.status == flow_status::ok || out.status == flow_status::degraded;
    {
      std::lock_guard<std::mutex> lock( ctx.results_mutex );
      if ( cacheable )
      {
        ctx.results[rkey] = { out, params.limits };
      }
      entry->result = out;
      entry->done = true;
      ctx.inflight.erase( rkey );
      ctx.results_cv.notify_all();
    }
    inflight_.fetch_sub( 1 );
    if ( cacheable && store_ )
    {
      store_->save( skey, encode_outcome( out, params.limits ) );
    }
    return synthesize_response( params, out, false, watch.elapsed_seconds() );
  }
  catch ( ... )
  {
    {
      std::lock_guard<std::mutex> lock( ctx.results_mutex );
      entry->error = std::current_exception();
      entry->done = true;
      ctx.inflight.erase( rkey );
      ctx.results_cv.notify_all();
    }
    inflight_.fetch_sub( 1 );
    throw;
  }
}

std::string synthesis_daemon::handle_request( const std::string& line )
{
  {
    std::lock_guard<std::mutex> lock( mutex_ );
    ++stats_.requests;
  }
  try
  {
    const auto fields = parse_flat_json( line );
    const auto cmd = field_or( fields, "cmd", "" );
    if ( cmd == "ping" )
    {
      return "{\"ok\":true,\"pong\":true}";
    }
    if ( cmd == "shutdown" )
    {
      shutdown_requested_.store( true );
      return "{\"ok\":true,\"stopping\":true}";
    }
    if ( cmd == "stats" )
    {
      daemon_stats d;
      std::size_t num_designs = 0;
      cache_stats artifacts;
      {
        std::lock_guard<std::mutex> lock( mutex_ );
        d = stats_;
        num_designs = designs_.size();
        for ( const auto& [name, ctx] : designs_ )
        {
          const auto s = ctx->cache.stats();
          artifacts.hits += s.hits;
          artifacts.misses += s.misses;
          artifacts.store_hits += s.store_hits;
        }
      }
      std::string out = "{\"ok\":true";
      out += ",\"requests\":" + std::to_string( d.requests );
      out += ",\"errors\":" + std::to_string( d.errors );
      out += ",\"synthesized\":" + std::to_string( d.synthesized );
      out += ",\"result_hits\":" + std::to_string( d.result_hits );
      out += ",\"coalesced\":" + std::to_string( d.coalesced );
      out += ",\"rejected\":" + std::to_string( d.rejected );
      out += ",\"upgraded\":" + std::to_string( d.upgraded );
      out += ",\"inflight\":" + std::to_string( inflight_.load() );
      out += ",\"threads\":" + std::to_string( pool_->num_workers() == 0u
                                                   ? 1u
                                                   : pool_->num_workers() );
      out += ",\"designs\":" + std::to_string( num_designs );
      out += ",\"artifact_hits\":" + std::to_string( artifacts.hits );
      out += ",\"artifact_store_hits\":" + std::to_string( artifacts.store_hits );
      out += ",\"artifact_misses\":" + std::to_string( artifacts.misses );
      if ( store_ )
      {
        const auto s = store_->stats();
        out += ",\"store_hits\":" + std::to_string( s.hits );
        out += ",\"store_misses\":" + std::to_string( s.misses );
        out += ",\"store_writes\":" + std::to_string( s.writes );
        out += ",\"store_corrupt\":" + std::to_string( s.corrupt_entries );
      }
      out += "}";
      return out;
    }
    if ( cmd == "synthesize" )
    {
      return handle_synthesize( fields );
    }
    throw std::runtime_error( cmd.empty() ? "missing 'cmd' field" : "unknown cmd '" + cmd + "'" );
  }
  catch ( const std::exception& e )
  {
    std::lock_guard<std::mutex> lock( mutex_ );
    ++stats_.errors;
    return error_response( e.what() );
  }
}

bool synthesis_daemon::shutdown_requested() const
{
  return shutdown_requested_.load();
}

daemon_stats synthesis_daemon::stats() const
{
  std::lock_guard<std::mutex> lock( mutex_ );
  return stats_;
}

std::size_t synthesis_daemon::inflight() const
{
  return inflight_.load();
}

unsigned synthesis_daemon::num_threads() const
{
  return pool_->num_workers() == 0u ? 1u : pool_->num_workers();
}

// --- socket transport --------------------------------------------------------

void synthesis_daemon::start()
{
  if ( options_.socket_path.empty() )
  {
    throw std::runtime_error( "daemon: no socket path configured" );
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if ( options_.socket_path.size() >= sizeof( addr.sun_path ) )
  {
    throw std::runtime_error( "daemon: socket path too long" );
  }
  std::strncpy( addr.sun_path, options_.socket_path.c_str(), sizeof( addr.sun_path ) - 1 );

  listen_fd_ = ::socket( AF_UNIX, SOCK_STREAM, 0 );
  if ( listen_fd_ < 0 )
  {
    throw std::runtime_error( "daemon: socket() failed" );
  }
  ::unlink( options_.socket_path.c_str() ); // stale socket from a dead daemon
  if ( ::bind( listen_fd_, reinterpret_cast<const sockaddr*>( &addr ), sizeof( addr ) ) != 0 ||
       ::listen( listen_fd_, 16 ) != 0 )
  {
    ::close( listen_fd_ );
    listen_fd_ = -1;
    throw std::runtime_error( "daemon: cannot listen on '" + options_.socket_path + "'" );
  }
  accept_thread_ = std::thread( &synthesis_daemon::accept_loop, this );
}

void synthesis_daemon::accept_loop()
{
  while ( !stopping_.load() )
  {
    const int fd = ::accept( listen_fd_, nullptr, nullptr );
    if ( fd < 0 )
    {
      if ( stopping_.load() || errno != EINTR )
      {
        break;
      }
      continue;
    }
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock( conn_mutex_ );
      // Reap finished connections first: their threads set `done` as the
      // last action, so join() returns immediately and the slot count
      // tracks LIVE connections, not connections ever accepted.
      for ( auto it = connections_.begin(); it != connections_.end(); )
      {
        if ( it->done->load() )
        {
          it->thread.join();
          it = connections_.erase( it );
        }
        else
        {
          ++it;
        }
      }
      if ( connections_.size() < options_.max_connections )
      {
        auto done = std::make_shared<std::atomic<bool>>( false );
        connection_slot slot;
        slot.done = done;
        slot.thread = std::thread( [this, fd, done] {
          handle_connection( fd );
          done->store( true );
        } );
        connections_.push_back( std::move( slot ) );
        admitted = true;
      }
    }
    if ( !admitted )
    {
      {
        std::lock_guard<std::mutex> lock( mutex_ );
        ++stats_.rejected;
      }
      send_all( fd, error_response( "too many connections (" +
                                        std::to_string( options_.max_connections ) + " open)",
                                    "busy" ) +
                        "\n" );
      ::close( fd );
    }
  }
}

/// Sends all of `data`, retrying short writes and EINTR; MSG_NOSIGNAL so
/// a client that hung up yields an error return instead of SIGPIPE.
bool synthesis_daemon::send_all( int fd, const std::string& data )
{
  std::size_t sent = 0;
  while ( sent < data.size() )
  {
    const auto m = ::send( fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL );
    if ( m < 0 && errno == EINTR )
    {
      continue;
    }
    if ( m <= 0 )
    {
      return false;
    }
    sent += static_cast<std::size_t>( m );
  }
  return true;
}

void synthesis_daemon::handle_connection( int fd )
{
  std::string buffer;
  char chunk[4096];
  while ( true )
  {
    const auto n = ::recv( fd, chunk, sizeof chunk, 0 );
    if ( n < 0 && errno == EINTR )
    {
      continue; // interrupted by a signal, not a hangup
    }
    if ( n <= 0 )
    {
      break;
    }
    buffer.append( chunk, static_cast<std::size_t>( n ) );
    std::size_t pos;
    while ( ( pos = buffer.find( '\n' ) ) != std::string::npos )
    {
      const auto line = buffer.substr( 0, pos );
      buffer.erase( 0, pos + 1 );
      if ( line.empty() )
      {
        continue;
      }
      const auto response = handle_request( line ) + "\n";
      if ( !send_all( fd, response ) )
      {
        ::close( fd );
        return;
      }
    }
    // A client streaming bytes without ever sending a newline would grow
    // `buffer` until the daemon OOMs; answer once and drop the connection.
    if ( buffer.size() > options_.max_line_bytes )
    {
      {
        std::lock_guard<std::mutex> lock( mutex_ );
        ++stats_.errors;
      }
      send_all( fd, error_response( "request line exceeds " +
                                        std::to_string( options_.max_line_bytes ) + " bytes",
                                    "line_too_long" ) +
                        "\n" );
      break;
    }
  }
  ::close( fd );
}

void synthesis_daemon::stop()
{
  std::lock_guard<std::mutex> stop_lock( stop_mutex_ );
  stopping_.store( true );
  if ( listen_fd_ >= 0 )
  {
    ::shutdown( listen_fd_, SHUT_RDWR );
  }
  if ( accept_thread_.joinable() )
  {
    accept_thread_.join();
  }
  if ( listen_fd_ >= 0 )
  {
    ::close( listen_fd_ );
    listen_fd_ = -1;
    ::unlink( options_.socket_path.c_str() );
  }
  std::list<connection_slot> connections;
  {
    std::lock_guard<std::mutex> lock( conn_mutex_ );
    connections.swap( connections_ );
  }
  for ( auto& slot : connections )
  {
    slot.thread.join();
  }
}

} // namespace qsyn::store
