/// \file serialize.hpp
/// \brief Stable binary (de)serialization of the flow artifacts.
///
/// Every payload the persistent artifact store (`artifact_store`) holds —
/// optimized AIGs, minimized ESOP cube lists, resynthesized XMGs,
/// synthesized reversible circuits, and verification verdicts — round-trips
/// through these functions.  The format is versioned at the store-entry
/// level (see artifact_store.hpp); within a version the byte layout is
/// fixed: explicit little-endian fixed-width integers, length-prefixed
/// strings, no padding, no host-endianness or `size_t`-width dependence.
///
/// Readers are corruption-tolerant by construction: every read is
/// bounds-checked against the buffer and every structural invariant
/// (fanins reference earlier nodes, line indices inside the circuit, …)
/// is validated, throwing `deserialize_error` — which the store layer
/// converts into a cache miss, never a crash.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "../logic/aig.hpp"
#include "../logic/cube.hpp"
#include "../logic/xmg.hpp"
#include "../reversible/circuit.hpp"
#include "../reversible/cost.hpp"

namespace qsyn::store
{

/// Thrown by the readers on any malformed payload (truncation, wild
/// indices, impossible counts).  The artifact store treats it as a miss.
class deserialize_error : public std::runtime_error
{
public:
  explicit deserialize_error( const std::string& what_arg )
      : std::runtime_error( what_arg )
  {
  }
};

/// Append-only little-endian byte sink.
class byte_writer
{
public:
  void u8( std::uint8_t v ) { bytes_.push_back( v ); }
  void u32( std::uint32_t v )
  {
    for ( int i = 0; i < 4; ++i )
    {
      bytes_.push_back( static_cast<std::uint8_t>( v >> ( 8 * i ) ) );
    }
  }
  void u64( std::uint64_t v )
  {
    for ( int i = 0; i < 8; ++i )
    {
      bytes_.push_back( static_cast<std::uint8_t>( v >> ( 8 * i ) ) );
    }
  }
  void f64( double v );
  void str( const std::string& s )
  {
    u32( static_cast<std::uint32_t>( s.size() ) );
    bytes_.insert( bytes_.end(), s.begin(), s.end() );
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move( bytes_ ); }

private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian byte source over a borrowed buffer.
class byte_reader
{
public:
  byte_reader( const std::uint8_t* data, std::size_t size ) : data_( data ), size_( size ) {}
  explicit byte_reader( const std::vector<std::uint8_t>& bytes )
      : byte_reader( bytes.data(), bytes.size() )
  {
  }

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == size_; }
  /// Throws unless the whole buffer was consumed (trailing garbage is
  /// treated as corruption, not silently ignored).
  void expect_end() const;

private:
  void need( std::size_t n ) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// --- typed payloads ---------------------------------------------------------

void write_aig( byte_writer& w, const aig_network& aig );
aig_network read_aig( byte_reader& r );

void write_esop( byte_writer& w, const esop& expression );
esop read_esop( byte_reader& r );

void write_xmg( byte_writer& w, const xmg_network& graph );
xmg_network read_xmg( byte_reader& r );

void write_circuit( byte_writer& w, const reversible_circuit& circuit );
reversible_circuit read_circuit( byte_reader& r );

/// Convenience one-shot wrappers (round-trip helpers for tests and the
/// store's typed accessors).
std::vector<std::uint8_t> serialize_aig( const aig_network& aig );
aig_network deserialize_aig( const std::vector<std::uint8_t>& bytes );
std::vector<std::uint8_t> serialize_esop( const esop& expression );
esop deserialize_esop( const std::vector<std::uint8_t>& bytes );
std::vector<std::uint8_t> serialize_xmg( const xmg_network& graph );
xmg_network deserialize_xmg( const std::vector<std::uint8_t>& bytes );
std::vector<std::uint8_t> serialize_circuit( const reversible_circuit& circuit );
reversible_circuit deserialize_circuit( const std::vector<std::uint8_t>& bytes );

} // namespace qsyn::store
