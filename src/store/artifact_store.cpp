#include "artifact_store.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <system_error>
#include <unistd.h>

#include "../common/content_hash.hpp"
#include "serialize.hpp"

namespace qsyn::store
{

namespace
{

constexpr std::uint32_t store_magic = 0x52415351u; // "QSAR" little-endian

std::uint64_t payload_checksum( const std::vector<std::uint8_t>& payload )
{
  // FNV-1a + finalizer, same construction as content_hasher, over raw bytes.
  std::uint64_t state = content_hasher::offset_basis;
  for ( const auto b : payload )
  {
    state = ( state ^ b ) * content_hasher::prime;
  }
  content_hasher h;
  h.update( state );
  return h.digest();
}

std::string hex64( std::uint64_t v )
{
  char buf[17];
  std::snprintf( buf, sizeof buf, "%016llx", static_cast<unsigned long long>( v ) );
  return buf;
}

std::string kind_name( payload_kind kind )
{
  switch ( kind )
  {
  case payload_kind::aig:
    return "aig";
  case payload_kind::esop:
    return "esop";
  case payload_kind::xmg:
    return "xmg";
  case payload_kind::circuit:
    return "circuit";
  case payload_kind::flow_outcome:
    return "flow";
  }
  return "unknown";
}

/// Filename-safe rendering of a parameter key; the appended key hash keeps
/// distinct keys distinct even when sanitization collides them.
std::string sanitize( const std::string& key )
{
  std::string out;
  out.reserve( key.size() );
  for ( const char c : key )
  {
    const bool ok = ( c >= 'a' && c <= 'z' ) || ( c >= 'A' && c <= 'Z' ) ||
                    ( c >= '0' && c <= '9' ) || c == '-' || c == '.';
    out.push_back( ok ? c : '_' );
  }
  if ( out.size() > 80u )
  {
    out.resize( 80u );
  }
  return out;
}

/// Process-unique temp-file counter (the pid alone is not enough: several
/// threads of one daemon write concurrently).
std::uint64_t next_temp_id()
{
  static std::atomic<std::uint64_t> counter{ 0 };
  return counter.fetch_add( 1, std::memory_order_relaxed );
}

} // namespace

artifact_store::artifact_store( std::string root_dir ) : root_( std::move( root_dir ) )
{
  std::error_code ec;
  std::filesystem::create_directories( root_, ec );
  if ( ec || !std::filesystem::is_directory( root_ ) )
  {
    throw std::runtime_error( "artifact_store: cannot create store root '" + root_ + "'" );
  }
}

std::string artifact_store::entry_path( const store_key& key ) const
{
  const auto dir = std::filesystem::path( root_ ) / hex64( key.design_hash );
  const auto name = kind_name( key.kind ) + "-" + sanitize( key.param_key ) + "-" +
                    hex64( content_hash_bytes( key.param_key ) ).substr( 8 ) + ".qsa";
  return ( dir / name ).string();
}

bool artifact_store::save( const store_key& key, const std::vector<std::uint8_t>& payload )
{
  // Assemble the complete entry (versioned header + checksummed payload)
  // in memory first; the file appears atomically via rename below.
  byte_writer w;
  w.u32( store_magic );
  w.u32( format_version );
  w.u32( static_cast<std::uint32_t>( key.kind ) );
  w.u64( key.design_hash );
  w.str( key.param_key );
  w.u64( payload.size() );
  w.u64( payload_checksum( payload ) );
  auto bytes = w.take();
  bytes.insert( bytes.end(), payload.begin(), payload.end() );

  const std::filesystem::path final_path = entry_path( key );
  std::error_code ec;
  std::filesystem::create_directories( final_path.parent_path(), ec );
  const auto temp_path =
      final_path.parent_path() /
      ( ".tmp-" + std::to_string( static_cast<long long>( ::getpid() ) ) + "-" +
        std::to_string( next_temp_id() ) );

  const auto fail = [this, &temp_path] {
    std::error_code cleanup_ec;
    std::filesystem::remove( temp_path, cleanup_ec );
    std::lock_guard<std::mutex> lock( mutex_ );
    ++stats_.write_failures;
    return false;
  };

  {
    std::ofstream out( temp_path, std::ios::binary | std::ios::trunc );
    if ( !out )
    {
      return fail();
    }
    out.write( reinterpret_cast<const char*>( bytes.data() ),
               static_cast<std::streamsize>( bytes.size() ) );
    out.flush();
    if ( !out )
    {
      return fail();
    }
  }
  std::filesystem::rename( temp_path, final_path, ec );
  if ( ec )
  {
    return fail();
  }
  std::lock_guard<std::mutex> lock( mutex_ );
  ++stats_.writes;
  return true;
}

std::optional<std::vector<std::uint8_t>> artifact_store::load( const store_key& key )
{
  const auto miss = [this]( bool corrupt ) -> std::optional<std::vector<std::uint8_t>> {
    std::lock_guard<std::mutex> lock( mutex_ );
    ++stats_.misses;
    if ( corrupt )
    {
      ++stats_.corrupt_entries;
    }
    return std::nullopt;
  };

  std::ifstream in( entry_path( key ), std::ios::binary );
  if ( !in )
  {
    return miss( false );
  }
  std::vector<std::uint8_t> bytes( ( std::istreambuf_iterator<char>( in ) ),
                                   std::istreambuf_iterator<char>() );
  if ( !in.good() && !in.eof() )
  {
    return miss( true );
  }

  try
  {
    byte_reader r( bytes );
    if ( r.u32() != store_magic )
    {
      return miss( true );
    }
    if ( r.u32() != format_version )
    {
      return miss( true ); // mis-versioned entry: recompute, never reinterpret
    }
    if ( r.u32() != static_cast<std::uint32_t>( key.kind ) )
    {
      return miss( true );
    }
    if ( r.u64() != key.design_hash )
    {
      return miss( true );
    }
    if ( r.str() != key.param_key )
    {
      return miss( true );
    }
    const auto payload_size = r.u64();
    const auto checksum = r.u64();
    if ( payload_size != r.remaining() )
    {
      return miss( true );
    }
    std::vector<std::uint8_t> payload( bytes.end() - static_cast<std::ptrdiff_t>( payload_size ),
                                       bytes.end() );
    if ( payload_checksum( payload ) != checksum )
    {
      return miss( true );
    }
    std::lock_guard<std::mutex> lock( mutex_ );
    ++stats_.hits;
    return payload;
  }
  catch ( const deserialize_error& )
  {
    return miss( true ); // truncated header
  }
}

store_stats artifact_store::stats() const
{
  std::lock_guard<std::mutex> lock( mutex_ );
  return stats_;
}

} // namespace qsyn::store
