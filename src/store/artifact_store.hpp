/// \file artifact_store.hpp
/// \brief Persistent content-addressed artifact store (disk tier).
///
/// The store maps `(design content hash, payload kind, parameter key)` to a
/// binary payload (see serialize.hpp) in a directory tree:
///
///   <root>/<design-hash hex>/<kind>-<sanitized param key>-<key hash>.qsa
///
/// The design hash is `aig_network::content_hash()` of the *input* design
/// AIG, and the parameter key is the exact string `flow_artifact_cache`
/// keys the stage on (e.g. "optimize[r=2]", "esop[r=2,exo=1]",
/// "xmg[r=2,k=4]") — so the disk tier shares artifacts on precisely the
/// same identity the memory tier does, just across processes.
///
/// Guarantees:
///  * **Atomic writes.**  An entry is assembled in a process-unique temp
///    file in the same directory and `rename(2)`d into place, so readers
///    (including concurrent processes) only ever observe absent or
///    complete entries.  Concurrent writers of one key race benignly —
///    last rename wins and every candidate is a valid entry for that key.
///  * **Corruption tolerance.**  Every load re-validates the versioned
///    header (magic, format version, kind, design hash, parameter key)
///    and a payload checksum; truncated, corrupted, mis-versioned, or
///    mis-keyed entries are counted and reported as a miss — never thrown
///    past the store, never a crash.
///  * **Thread safety.**  All methods are safe to call concurrently; the
///    filesystem provides write atomicity, a mutex guards the counters.

#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace qsyn::store
{

/// What a store entry holds (written into the entry header; a kind
/// mismatch on load is corruption).
enum class payload_kind : std::uint32_t
{
  aig = 1,          ///< optimized AIG (serialize.hpp write_aig)
  esop = 2,         ///< minimized ESOP cube list + budget flag
  xmg = 3,          ///< resynthesized XMG
  circuit = 4,      ///< synthesized reversible circuit
  flow_outcome = 5, ///< full flow result incl. verification verdict (daemon)
};

/// Identity of one store entry.
struct store_key
{
  std::uint64_t design_hash = 0; ///< aig_network::content_hash() of the design
  payload_kind kind = payload_kind::aig;
  std::string param_key;         ///< stage parameter subset, e.g. "esop[r=2,exo=1]"
};

/// Hit/miss/write counters (one "load" = one hit or one miss; a corrupt
/// entry counts as both a miss and a corrupt_entry).
struct store_stats
{
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t writes = 0;
  std::size_t write_failures = 0;
  std::size_t corrupt_entries = 0;
};

class artifact_store
{
public:
  /// On-disk entry format version; bump when the header or any payload
  /// layout changes.  Entries with a different version load as a miss.
  static constexpr std::uint32_t format_version = 1;

  /// Opens (and creates, if needed) a store rooted at `root_dir`.  Throws
  /// std::runtime_error when the root cannot be created — a store that
  /// silently drops every write would masquerade as an empty cache.
  explicit artifact_store( std::string root_dir );

  artifact_store( const artifact_store& ) = delete;
  artifact_store& operator=( const artifact_store& ) = delete;

  [[nodiscard]] const std::string& root() const { return root_; }

  /// Writes `payload` under `key` (atomic temp-file + rename).  I/O
  /// failures are absorbed into `write_failures` (a broken disk degrades
  /// the store to a smaller cache, it does not take synthesis down);
  /// returns false on failure.
  bool save( const store_key& key, const std::vector<std::uint8_t>& payload );

  /// Loads the payload stored under `key`; nullopt on absence or on any
  /// validation failure (see corruption tolerance above).
  std::optional<std::vector<std::uint8_t>> load( const store_key& key );

  /// Full path of `key`'s entry (exposed so tests can corrupt/truncate
  /// entries deliberately).
  [[nodiscard]] std::string entry_path( const store_key& key ) const;

  [[nodiscard]] store_stats stats() const;

private:
  std::string root_;
  mutable std::mutex mutex_; ///< guards stats_
  store_stats stats_;
};

} // namespace qsyn::store
