#include "serialize.hpp"

#include <bit>
#include <limits>

namespace qsyn::store
{

// --- primitives --------------------------------------------------------------

void byte_writer::f64( double v )
{
  u64( std::bit_cast<std::uint64_t>( v ) );
}

void byte_reader::need( std::size_t n ) const
{
  if ( size_ - pos_ < n )
  {
    throw deserialize_error( "truncated payload" );
  }
}

std::uint8_t byte_reader::u8()
{
  need( 1 );
  return data_[pos_++];
}

std::uint32_t byte_reader::u32()
{
  need( 4 );
  std::uint32_t v = 0;
  for ( int i = 0; i < 4; ++i )
  {
    v |= static_cast<std::uint32_t>( data_[pos_++] ) << ( 8 * i );
  }
  return v;
}

std::uint64_t byte_reader::u64()
{
  need( 8 );
  std::uint64_t v = 0;
  for ( int i = 0; i < 8; ++i )
  {
    v |= static_cast<std::uint64_t>( data_[pos_++] ) << ( 8 * i );
  }
  return v;
}

double byte_reader::f64()
{
  return std::bit_cast<double>( u64() );
}

std::string byte_reader::str()
{
  const auto len = u32();
  need( len );
  std::string s( reinterpret_cast<const char*>( data_ + pos_ ), len );
  pos_ += len;
  return s;
}

void byte_reader::expect_end() const
{
  if ( pos_ != size_ )
  {
    throw deserialize_error( "trailing bytes after payload" );
  }
}

// --- AIG ---------------------------------------------------------------------

void write_aig( byte_writer& w, const aig_network& aig )
{
  w.u32( aig.num_pis() );
  w.u32( static_cast<std::uint32_t>( aig.num_nodes() ) );
  for ( std::uint32_t n = aig.num_pis() + 1u;
        n < static_cast<std::uint32_t>( aig.num_nodes() ); ++n )
  {
    w.u32( aig.fanin0( n ) );
    w.u32( aig.fanin1( n ) );
  }
  w.u32( aig.num_pos() );
  for ( const auto po : aig.pos() )
  {
    w.u32( po );
  }
}

aig_network read_aig( byte_reader& r )
{
  const auto num_pis = r.u32();
  const auto num_nodes = r.u32();
  if ( num_nodes < 1u + num_pis || num_nodes > ( 1u << 30 ) )
  {
    throw deserialize_error( "aig: impossible node count" );
  }
  aig_network aig( num_pis );
  for ( std::uint32_t n = num_pis + 1u; n < num_nodes; ++n )
  {
    const auto f0 = r.u32();
    const auto f1 = r.u32();
    if ( lit_node( f0 ) >= n || lit_node( f1 ) >= n )
    {
      throw deserialize_error( "aig: fanin references a future node" );
    }
    aig.append_raw_and( f0, f1 );
  }
  const auto num_pos = r.u32();
  if ( num_pos > ( 1u << 24 ) )
  {
    throw deserialize_error( "aig: impossible output count" );
  }
  for ( std::uint32_t i = 0; i < num_pos; ++i )
  {
    const auto po = r.u32();
    if ( lit_node( po ) >= num_nodes )
    {
      throw deserialize_error( "aig: output references a missing node" );
    }
    aig.add_po( po );
  }
  return aig;
}

// --- ESOP --------------------------------------------------------------------

void write_esop( byte_writer& w, const esop& expression )
{
  w.u32( expression.num_inputs );
  w.u32( expression.num_outputs );
  w.u32( static_cast<std::uint32_t>( expression.terms.size() ) );
  for ( const auto& term : expression.terms )
  {
    w.u64( term.product.mask );
    w.u64( term.product.polarity );
    w.u64( term.output_mask );
  }
}

esop read_esop( byte_reader& r )
{
  esop expression;
  expression.num_inputs = r.u32();
  expression.num_outputs = r.u32();
  if ( expression.num_inputs > 64u || expression.num_outputs > 64u )
  {
    throw deserialize_error( "esop: more than 64 inputs/outputs" );
  }
  const auto num_terms = r.u32();
  if ( num_terms > ( 1u << 28 ) )
  {
    throw deserialize_error( "esop: impossible term count" );
  }
  expression.terms.reserve( num_terms );
  const auto var_mask = expression.num_inputs == 64u
                            ? ~std::uint64_t{ 0 }
                            : ( ( std::uint64_t{ 1 } << expression.num_inputs ) - 1u );
  const auto out_mask = expression.num_outputs == 64u
                            ? ~std::uint64_t{ 0 }
                            : ( ( std::uint64_t{ 1 } << expression.num_outputs ) - 1u );
  for ( std::uint32_t i = 0; i < num_terms; ++i )
  {
    esop_term term;
    term.product.mask = r.u64();
    term.product.polarity = r.u64();
    term.output_mask = r.u64();
    if ( ( term.product.mask & ~var_mask ) != 0u ||
         ( term.product.polarity & ~term.product.mask ) != 0u ||
         ( term.output_mask & ~out_mask ) != 0u )
    {
      throw deserialize_error( "esop: term bits outside the declared variable range" );
    }
    expression.terms.push_back( term );
  }
  return expression;
}

// --- XMG ---------------------------------------------------------------------

void write_xmg( byte_writer& w, const xmg_network& graph )
{
  w.u32( graph.num_pis() );
  w.u32( static_cast<std::uint32_t>( graph.num_nodes() ) );
  for ( std::uint32_t n = graph.num_pis() + 1u;
        n < static_cast<std::uint32_t>( graph.num_nodes() ); ++n )
  {
    w.u8( graph.is_maj( n ) ? 0u : 1u );
    const auto& fanin = graph.fanins( n );
    w.u32( fanin[0] );
    w.u32( fanin[1] );
    w.u32( fanin[2] );
  }
  w.u32( graph.num_pos() );
  for ( const auto po : graph.pos() )
  {
    w.u32( po );
  }
}

xmg_network read_xmg( byte_reader& r )
{
  const auto num_pis = r.u32();
  const auto num_nodes = r.u32();
  if ( num_nodes < 1u + num_pis || num_nodes > ( 1u << 30 ) )
  {
    throw deserialize_error( "xmg: impossible node count" );
  }
  xmg_network graph( num_pis );
  for ( std::uint32_t n = num_pis + 1u; n < num_nodes; ++n )
  {
    const auto kind_tag = r.u8();
    if ( kind_tag > 1u )
    {
      throw deserialize_error( "xmg: unknown node kind" );
    }
    const std::array<xmg_lit, 3> fanin = { r.u32(), r.u32(), r.u32() };
    for ( const auto f : fanin )
    {
      if ( ( f >> 1 ) >= n )
      {
        throw deserialize_error( "xmg: fanin references a future node" );
      }
    }
    graph.append_raw_node( kind_tag == 0u ? xmg_network::node_kind::maj
                                          : xmg_network::node_kind::xor2,
                           fanin );
  }
  const auto num_pos = r.u32();
  if ( num_pos > ( 1u << 24 ) )
  {
    throw deserialize_error( "xmg: impossible output count" );
  }
  for ( std::uint32_t i = 0; i < num_pos; ++i )
  {
    const auto po = r.u32();
    if ( ( po >> 1 ) >= num_nodes )
    {
      throw deserialize_error( "xmg: output references a missing node" );
    }
    graph.add_po( po );
  }
  return graph;
}

// --- reversible circuit ------------------------------------------------------

void write_circuit( byte_writer& w, const reversible_circuit& circuit )
{
  w.u32( circuit.num_lines() );
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    const auto& info = circuit.line( l );
    w.str( info.name );
    std::uint8_t flags = 0;
    flags |= info.is_primary_input ? 1u : 0u;
    flags |= info.is_constant_input ? 2u : 0u;
    flags |= info.constant_value ? 4u : 0u;
    flags |= info.is_garbage ? 8u : 0u;
    w.u8( flags );
    w.u32( static_cast<std::uint32_t>( info.output_index ) );
  }
  w.u32( static_cast<std::uint32_t>( circuit.num_gates() ) );
  for ( const auto& gate : circuit.gates() )
  {
    w.u32( gate.target );
    w.u32( static_cast<std::uint32_t>( gate.controls.size() ) );
    for ( const auto& c : gate.controls )
    {
      w.u32( c.line );
      w.u8( c.positive ? 1u : 0u );
    }
  }
}

reversible_circuit read_circuit( byte_reader& r )
{
  const auto num_lines = r.u32();
  if ( num_lines > ( 1u << 20 ) )
  {
    throw deserialize_error( "circuit: impossible line count" );
  }
  reversible_circuit circuit( num_lines );
  for ( unsigned l = 0; l < num_lines; ++l )
  {
    auto& info = circuit.line( l );
    info.name = r.str();
    const auto flags = r.u8();
    info.is_primary_input = ( flags & 1u ) != 0u;
    info.is_constant_input = ( flags & 2u ) != 0u;
    info.constant_value = ( flags & 4u ) != 0u;
    info.is_garbage = ( flags & 8u ) != 0u;
    info.output_index = static_cast<int>( r.u32() );
    if ( info.output_index < -1 )
    {
      throw deserialize_error( "circuit: invalid output index" );
    }
  }
  const auto num_gates = r.u32();
  if ( num_gates > ( 1u << 28 ) )
  {
    throw deserialize_error( "circuit: impossible gate count" );
  }
  for ( std::uint32_t g = 0; g < num_gates; ++g )
  {
    toffoli_gate gate;
    gate.target = r.u32();
    if ( gate.target >= num_lines )
    {
      throw deserialize_error( "circuit: gate target outside the line range" );
    }
    const auto num_controls = r.u32();
    if ( num_controls > num_lines )
    {
      throw deserialize_error( "circuit: more controls than lines" );
    }
    gate.controls.reserve( num_controls );
    for ( std::uint32_t c = 0; c < num_controls; ++c )
    {
      control ctrl;
      ctrl.line = r.u32();
      ctrl.positive = r.u8() != 0u;
      if ( ctrl.line >= num_lines )
      {
        throw deserialize_error( "circuit: control outside the line range" );
      }
      gate.controls.push_back( ctrl );
    }
    circuit.add_gate( std::move( gate ) );
  }
  return circuit;
}

// --- one-shot wrappers -------------------------------------------------------

namespace
{

template<typename WriteFn>
std::vector<std::uint8_t> serialize_with( WriteFn&& write )
{
  byte_writer w;
  write( w );
  return w.take();
}

template<typename ReadFn>
auto deserialize_with( const std::vector<std::uint8_t>& bytes, ReadFn&& read )
{
  byte_reader r( bytes );
  auto value = read( r );
  r.expect_end();
  return value;
}

} // namespace

std::vector<std::uint8_t> serialize_aig( const aig_network& aig )
{
  return serialize_with( [&]( byte_writer& w ) { write_aig( w, aig ); } );
}

aig_network deserialize_aig( const std::vector<std::uint8_t>& bytes )
{
  return deserialize_with( bytes, []( byte_reader& r ) { return read_aig( r ); } );
}

std::vector<std::uint8_t> serialize_esop( const esop& expression )
{
  return serialize_with( [&]( byte_writer& w ) { write_esop( w, expression ); } );
}

esop deserialize_esop( const std::vector<std::uint8_t>& bytes )
{
  return deserialize_with( bytes, []( byte_reader& r ) { return read_esop( r ); } );
}

std::vector<std::uint8_t> serialize_xmg( const xmg_network& graph )
{
  return serialize_with( [&]( byte_writer& w ) { write_xmg( w, graph ); } );
}

xmg_network deserialize_xmg( const std::vector<std::uint8_t>& bytes )
{
  return deserialize_with( bytes, []( byte_reader& r ) { return read_xmg( r ); } );
}

std::vector<std::uint8_t> serialize_circuit( const reversible_circuit& circuit )
{
  return serialize_with( [&]( byte_writer& w ) { write_circuit( w, circuit ); } );
}

reversible_circuit deserialize_circuit( const std::vector<std::uint8_t>& bytes )
{
  return deserialize_with( bytes, []( byte_reader& r ) { return read_circuit( r ); } );
}

} // namespace qsyn::store
