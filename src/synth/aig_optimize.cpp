#include "aig_optimize.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <optional>
#include <random>
#include <unordered_map>

#include "../sat/cnf.hpp"
#include "isop.hpp"

namespace qsyn
{

/// --- balance ---------------------------------------------------------------

namespace
{

class balancer
{
public:
  explicit balancer( const aig_network& aig )
      : aig_( aig ), fanouts_( aig.fanout_counts() ), dest_( aig.num_pis() ),
        map_( aig.num_nodes(), 0xffffffffu )
  {
    map_[0] = aig_network::const0;
    for ( unsigned i = 0; i < aig_.num_pis(); ++i )
    {
      map_[i + 1u] = dest_.pi( i );
    }
  }

  aig_network run()
  {
    for ( const auto po : aig_.pos() )
    {
      dest_.add_po( map_lit( po ) );
    }
    return std::move( dest_ );
  }

private:
  aig_lit map_lit( aig_lit old )
  {
    const auto node = lit_node( old );
    if ( map_[node] == 0xffffffffu )
    {
      map_[node] = build_node( node );
    }
    return lit_not_cond( map_[node], lit_complemented( old ) );
  }

  /// Level of a destination node, computed lazily (recomputing all levels
  /// per rebuilt node would be quadratic on large netlists).
  std::uint32_t dest_level( std::uint32_t node )
  {
    if ( node >= dest_levels_.size() )
    {
      dest_levels_.resize( dest_.num_nodes(), 0xffffffffu );
    }
    if ( dest_levels_[node] != 0xffffffffu )
    {
      return dest_levels_[node];
    }
    std::uint32_t level = 0;
    if ( dest_.is_and( node ) )
    {
      level = 1u + std::max( dest_level( lit_node( dest_.fanin0( node ) ) ),
                             dest_level( lit_node( dest_.fanin1( node ) ) ) );
    }
    dest_levels_[node] = level;
    return level;
  }

  /// Collects the single-fanout AND tree rooted at `node` and rebuilds it
  /// as a balanced tree over the mapped leaves (sorted by level so the
  /// shallowest operands combine first).
  aig_lit build_node( std::uint32_t node )
  {
    std::vector<aig_lit> leaves;
    collect_conjuncts( make_lit( node ), leaves, true );
    std::vector<aig_lit> mapped;
    mapped.reserve( leaves.size() );
    for ( const auto leaf : leaves )
    {
      mapped.push_back( map_lit( leaf ) );
    }
    // Sort by the level in the destination network for balanced depth.
    std::sort( mapped.begin(), mapped.end(), [&]( aig_lit a, aig_lit b ) {
      return dest_level( lit_node( a ) ) < dest_level( lit_node( b ) );
    } );
    return dest_.create_nary_and( std::move( mapped ) );
  }

  /// Gathers the conjunct leaves of an AND tree.  Only descends through
  /// non-complemented AND fanins with a single fanout (classic balancing
  /// scope: shared nodes stay shared).
  void collect_conjuncts( aig_lit lit, std::vector<aig_lit>& leaves, bool root )
  {
    const auto node = lit_node( lit );
    const bool expandable = !lit_complemented( lit ) && aig_.is_and( node ) &&
                            ( root || fanouts_[node] == 1u );
    if ( !expandable )
    {
      leaves.push_back( lit );
      return;
    }
    collect_conjuncts( aig_.fanin0( node ), leaves, false );
    collect_conjuncts( aig_.fanin1( node ), leaves, false );
  }

  const aig_network& aig_;
  std::vector<std::uint32_t> fanouts_;
  aig_network dest_;
  std::vector<aig_lit> map_;
  std::vector<std::uint32_t> dest_levels_;
};

} // namespace

aig_network aig_balance( const aig_network& aig )
{
  balancer b( aig );
  return b.run();
}

/// --- refactor ----------------------------------------------------------------

namespace
{

class refactorer
{
public:
  refactorer( const aig_network& aig, unsigned max_leaves )
      : aig_( aig ), max_leaves_( max_leaves ), fanouts_( aig.fanout_counts() ),
        dest_( aig.num_pis() ), map_( aig.num_nodes(), 0xffffffffu )
  {
    map_[0] = aig_network::const0;
    for ( unsigned i = 0; i < aig_.num_pis(); ++i )
    {
      map_[i + 1u] = dest_.pi( i );
    }
    compute_plans();
  }

  aig_network run()
  {
    for ( const auto po : aig_.pos() )
    {
      dest_.add_po( map_lit( po ) );
    }
    return std::move( dest_ );
  }

private:
  struct plan
  {
    std::vector<std::uint32_t> leaves; ///< leaf nodes (inputs of the cone)
    std::vector<cube> sop;             ///< resynthesized cover
    bool complemented = false;         ///< SOP covers the complement
  };

  /// Grows a reconvergence-driven cut around `root` and decides whether an
  /// ISOP resynthesis is expected to be smaller than the cone's exclusive
  /// logic (MFFC).
  void compute_plans()
  {
    plans_.resize( aig_.num_nodes() );
    for ( std::uint32_t n = aig_.num_pis() + 1u; n < aig_.num_nodes(); ++n )
    {
      try_plan( n );
    }
  }

  void try_plan( std::uint32_t root )
  {
    // Grow the cut: start from the fanins, expand internal nodes that do
    // not increase the leaf count beyond the bound.
    std::vector<std::uint32_t> leaves{ lit_node( aig_.fanin0( root ) ),
                                       lit_node( aig_.fanin1( root ) ) };
    std::sort( leaves.begin(), leaves.end() );
    leaves.erase( std::unique( leaves.begin(), leaves.end() ), leaves.end() );
    bool grew = true;
    while ( grew )
    {
      grew = false;
      for ( std::size_t i = 0; i < leaves.size(); ++i )
      {
        const auto leaf = leaves[i];
        if ( !aig_.is_and( leaf ) )
        {
          continue;
        }
        std::vector<std::uint32_t> expanded = leaves;
        expanded.erase( expanded.begin() + static_cast<std::ptrdiff_t>( i ) );
        expanded.push_back( lit_node( aig_.fanin0( leaf ) ) );
        expanded.push_back( lit_node( aig_.fanin1( leaf ) ) );
        std::sort( expanded.begin(), expanded.end() );
        expanded.erase( std::unique( expanded.begin(), expanded.end() ), expanded.end() );
        // Never keep the constant node as a leaf.
        expanded.erase( std::remove( expanded.begin(), expanded.end(), 0u ), expanded.end() );
        if ( expanded.size() <= std::min<std::size_t>( max_leaves_, leaves.size() ) ||
             ( expanded.size() <= max_leaves_ && fanouts_[leaf] == 1u ) )
        {
          leaves = std::move( expanded );
          grew = true;
          break;
        }
      }
    }
    leaves.erase( std::remove( leaves.begin(), leaves.end(), 0u ), leaves.end() );
    if ( leaves.empty() || leaves.size() > max_leaves_ )
    {
      return;
    }
    // Compute the cone truth table over the leaves.
    std::unordered_map<std::uint32_t, truth_table> local;
    const auto num_vars = static_cast<unsigned>( leaves.size() );
    for ( unsigned i = 0; i < num_vars; ++i )
    {
      local.emplace( leaves[i], truth_table::projection( num_vars, i ) );
    }
    const auto tt = cone_tt( root, local, num_vars );
    if ( !tt )
    {
      return;
    }
    // Cost of the existing cone: nodes whose value is used only inside it
    // (approximated by the node count of the cone restricted to
    // single-fanout internals plus the root).
    const auto old_cost = mffc_size( root, leaves );
    const auto sop = isop( *tt );
    const auto sop_compl = isop( ~*tt );
    const bool use_compl = estimate_cost( sop_compl ) < estimate_cost( sop );
    const auto& chosen = use_compl ? sop_compl : sop;
    if ( estimate_cost( chosen ) >= old_cost )
    {
      return;
    }
    plans_[root] = plan{ leaves, chosen, use_compl };
  }

  static std::size_t estimate_cost( const std::vector<cube>& sop )
  {
    std::size_t cost = sop.empty() ? 0u : sop.size() - 1u; // OR tree
    for ( const auto& c : sop )
    {
      const auto lits = static_cast<std::size_t>( c.num_literals() );
      cost += lits > 0u ? lits - 1u : 0u;
    }
    return cost;
  }

  /// Number of cone nodes used exclusively inside the cone (counting the
  /// root).  A lower bound on the nodes freed by replacing the cone.
  std::size_t mffc_size( std::uint32_t root, const std::vector<std::uint32_t>& leaves ) const
  {
    std::size_t count = 0;
    std::vector<std::uint32_t> stack{ root };
    std::vector<std::uint32_t> visited;
    while ( !stack.empty() )
    {
      const auto n = stack.back();
      stack.pop_back();
      if ( std::find( visited.begin(), visited.end(), n ) != visited.end() )
      {
        continue;
      }
      visited.push_back( n );
      ++count;
      for ( const auto f : { aig_.fanin0( n ), aig_.fanin1( n ) } )
      {
        const auto m = lit_node( f );
        if ( aig_.is_and( m ) && fanouts_[m] == 1u &&
             std::find( leaves.begin(), leaves.end(), m ) == leaves.end() )
        {
          stack.push_back( m );
        }
      }
    }
    return count;
  }

  /// Truth table of `root` over the given leaf projections; fails (nullopt)
  /// if the cone reaches outside the leaf set.
  std::optional<truth_table> cone_tt( std::uint32_t node,
                                      std::unordered_map<std::uint32_t, truth_table>& local,
                                      unsigned num_vars ) const
  {
    if ( const auto it = local.find( node ); it != local.end() )
    {
      return it->second;
    }
    if ( !aig_.is_and( node ) )
    {
      return std::nullopt;
    }
    const auto f0 = aig_.fanin0( node );
    const auto f1 = aig_.fanin1( node );
    auto t0 = lit_node( f0 ) == 0u
                  ? std::optional<truth_table>( truth_table( num_vars ) )
                  : cone_tt( lit_node( f0 ), local, num_vars );
    auto t1 = lit_node( f1 ) == 0u
                  ? std::optional<truth_table>( truth_table( num_vars ) )
                  : cone_tt( lit_node( f1 ), local, num_vars );
    if ( !t0 || !t1 )
    {
      return std::nullopt;
    }
    auto a = lit_complemented( f0 ) ? ~*t0 : *t0;
    const auto b = lit_complemented( f1 ) ? ~*t1 : *t1;
    a &= b;
    local.emplace( node, a );
    return a;
  }

  aig_lit map_lit( aig_lit old )
  {
    const auto node = lit_node( old );
    if ( map_[node] == 0xffffffffu )
    {
      map_[node] = build_node( node );
    }
    return lit_not_cond( map_[node], lit_complemented( old ) );
  }

  aig_lit build_node( std::uint32_t node )
  {
    const auto& p = plans_[node];
    if ( !p.leaves.empty() )
    {
      std::vector<aig_lit> leaf_lits;
      leaf_lits.reserve( p.leaves.size() );
      for ( const auto leaf : p.leaves )
      {
        leaf_lits.push_back( map_lit( make_lit( leaf ) ) );
      }
      std::vector<aig_lit> or_terms;
      or_terms.reserve( p.sop.size() );
      for ( const auto& c : p.sop )
      {
        std::vector<aig_lit> factors;
        for ( unsigned v = 0; v < p.leaves.size(); ++v )
        {
          if ( c.has_var( v ) )
          {
            factors.push_back( lit_not_cond( leaf_lits[v], !c.var_polarity( v ) ) );
          }
        }
        or_terms.push_back( dest_.create_nary_and( std::move( factors ) ) );
      }
      const auto result = dest_.create_nary_or( std::move( or_terms ) );
      return lit_not_cond( result, p.complemented );
    }
    const auto f0 = aig_.fanin0( node );
    const auto f1 = aig_.fanin1( node );
    return dest_.create_and( map_lit( f0 ), map_lit( f1 ) );
  }

  const aig_network& aig_;
  unsigned max_leaves_;
  std::vector<std::uint32_t> fanouts_;
  aig_network dest_;
  std::vector<aig_lit> map_;
  std::vector<plan> plans_;
};

} // namespace

aig_network aig_refactor( const aig_network& aig, unsigned max_leaves )
{
  refactorer r( aig, max_leaves );
  return r.run();
}

/// --- SAT sweeping -------------------------------------------------------------

aig_network aig_sat_sweep( const aig_network& aig, std::uint64_t conflict_budget )
{
  // Random-pattern simulation signatures (4 x 64 patterns).
  constexpr unsigned num_words = 4;
  std::mt19937_64 rng( 0xc0ffee123u );
  std::vector<std::array<std::uint64_t, num_words>> sig( aig.num_nodes() );
  {
    std::vector<std::vector<std::uint64_t>> pi_patterns( num_words,
                                                         std::vector<std::uint64_t>( aig.num_pis() ) );
    for ( unsigned w = 0; w < num_words; ++w )
    {
      for ( unsigned i = 0; i < aig.num_pis(); ++i )
      {
        pi_patterns[w][i] = rng();
      }
    }
    for ( unsigned w = 0; w < num_words; ++w )
    {
      std::vector<std::uint64_t> values( aig.num_nodes(), 0u );
      for ( unsigned i = 0; i < aig.num_pis(); ++i )
      {
        values[i + 1u] = pi_patterns[w][i];
      }
      for ( std::uint32_t n = aig.num_pis() + 1u; n < aig.num_nodes(); ++n )
      {
        const auto f0 = aig.fanin0( n );
        const auto f1 = aig.fanin1( n );
        const auto v0 = values[lit_node( f0 )] ^ ( lit_complemented( f0 ) ? ~std::uint64_t{ 0 } : 0u );
        const auto v1 = values[lit_node( f1 )] ^ ( lit_complemented( f1 ) ? ~std::uint64_t{ 0 } : 0u );
        values[n] = v0 & v1;
      }
      for ( std::uint32_t n = 0; n < aig.num_nodes(); ++n )
      {
        sig[n][w] = values[n];
      }
    }
  }

  // Group candidate nodes by normalized signature (lowest bit = 0).
  struct sig_hash
  {
    std::size_t operator()( const std::array<std::uint64_t, num_words>& s ) const
    {
      std::size_t seed = 0;
      for ( const auto w : s )
      {
        seed = hash_combine( seed, static_cast<std::size_t>( w ) );
      }
      return seed;
    }
  };
  const auto normalize = []( std::array<std::uint64_t, num_words> s ) {
    if ( s[0] & 1u )
    {
      for ( auto& w : s )
      {
        w = ~w;
      }
    }
    return s;
  };
  std::unordered_map<std::array<std::uint64_t, num_words>, std::vector<std::uint32_t>, sig_hash>
      classes;
  for ( std::uint32_t n = 1; n < aig.num_nodes(); ++n )
  {
    classes[normalize( sig[n] )].push_back( n );
  }

  // SAT instance over the original network.
  sat::solver solver;
  const auto sat_lits = sat::encode_aig( aig, solver );

  // Representative (as literal in the rebuilt network) per original node.
  aig_network dest( aig.num_pis() );
  std::vector<aig_lit> map( aig.num_nodes(), 0xffffffffu );
  map[0] = aig_network::const0;
  for ( unsigned i = 0; i < aig.num_pis(); ++i )
  {
    map[i + 1u] = dest.pi( i );
  }
  // For each node in topological order, either merge into a previously
  // proven-equivalent class member or copy.
  std::unordered_map<std::uint32_t, std::uint32_t> merged_into; // node -> earlier node
  for ( auto& [key, members] : classes )
  {
    (void)key;
    std::sort( members.begin(), members.end() );
    for ( std::size_t i = 1; i < members.size(); ++i )
    {
      const auto later = members[i];
      if ( !aig.is_and( later ) )
      {
        continue;
      }
      const auto earlier = members[0];
      // Determine tentative phase from signatures.
      const bool complemented = ( sig[earlier][0] & 1u ) != ( sig[later][0] & 1u );
      // Prove earlier (^ phase) == later with two SAT calls (one per
      // disagreement direction) expressed via assumptions on a XOR.
      const auto le = sat_lits[earlier];
      const auto ll = sat_lits[later];
      const auto a = complemented ? sat::lit_negate( le ) : le;
      // UNSAT of (a != ll) proves equivalence.
      const auto res1 = solver.solve( { a, sat::lit_negate( ll ) }, conflict_budget );
      if ( res1 != sat::result::unsatisfiable )
      {
        continue;
      }
      const auto res2 = solver.solve( { sat::lit_negate( a ), ll }, conflict_budget );
      if ( res2 != sat::result::unsatisfiable )
      {
        continue;
      }
      merged_into[later] = ( earlier << 1 ) | ( complemented ? 1u : 0u );
    }
  }

  const auto map_lit = [&]( aig_lit old, const auto& self ) -> aig_lit {
    auto node = lit_node( old );
    bool compl_flag = lit_complemented( old );
    if ( const auto it = merged_into.find( node ); it != merged_into.end() )
    {
      node = it->second >> 1;
      compl_flag ^= ( it->second & 1u ) != 0u;
    }
    if ( map[node] == 0xffffffffu )
    {
      const auto f0 = self( aig.fanin0( node ), self );
      const auto f1 = self( aig.fanin1( node ), self );
      map[node] = dest.create_and( f0, f1 );
    }
    return lit_not_cond( map[node], compl_flag );
  };
  for ( const auto po : aig.pos() )
  {
    dest.add_po( map_lit( po, map_lit ) );
  }
  return dest;
}

/// --- driver ---------------------------------------------------------------------

aig_network optimize( const aig_network& aig, unsigned rounds, bool use_sat_sweep )
{
  auto current = aig.cleanup();
  for ( unsigned r = 0; r < rounds; ++r )
  {
    const auto before = current.num_ands();
    current = aig_balance( current );
    current = aig_refactor( current );
    current = current.cleanup();
    if ( current.num_ands() >= before )
    {
      break;
    }
  }
  if ( use_sat_sweep )
  {
    current = aig_sat_sweep( current ).cleanup();
  }
  return current;
}

} // namespace qsyn
