#include "collapse.hpp"

#include <stdexcept>

namespace qsyn
{

std::vector<bdd_node> collapse_to_bdds( const aig_network& aig, bdd_manager& manager,
                                        unsigned var_offset )
{
  if ( var_offset + aig.num_pis() > manager.num_vars() )
  {
    throw std::invalid_argument( "collapse_to_bdds: manager has too few variables" );
  }
  std::vector<bdd_node> node_bdds( aig.num_nodes() );
  node_bdds[0] = manager.constant( false );
  for ( unsigned i = 0; i < aig.num_pis(); ++i )
  {
    node_bdds[i + 1u] = manager.var( var_offset + i );
  }
  const auto lit_bdd = [&]( aig_lit l ) {
    const auto base = node_bdds[lit_node( l )];
    return lit_complemented( l ) ? manager.bdd_not( base ) : base;
  };
  for ( std::uint32_t n = aig.num_pis() + 1u; n < aig.num_nodes(); ++n )
  {
    node_bdds[n] = manager.bdd_and( lit_bdd( aig.fanin0( n ) ), lit_bdd( aig.fanin1( n ) ) );
  }
  std::vector<bdd_node> result;
  result.reserve( aig.num_pos() );
  for ( const auto po : aig.pos() )
  {
    result.push_back( lit_bdd( po ) );
  }
  return result;
}

std::vector<truth_table> collapse_to_truth_tables( const aig_network& aig )
{
  return aig.simulate_outputs();
}

} // namespace qsyn
