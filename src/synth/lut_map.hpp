/// \file lut_map.hpp
/// \brief k-LUT technology mapping of an AIG via cut enumeration.
///
/// The hierarchical flow derives an XMG from the optimized AIG with
/// CirKit's `xmglut -k 4` (paper Sec. IV-C): the AIG is covered with
/// k-feasible cuts, and each cut function is resynthesized into XOR/MAJ
/// logic.  This module provides the covering half: priority-cut
/// enumeration with depth-oriented selection and an area-flow tiebreak,
/// producing a LUT network with explicit truth tables per LUT.

#pragma once

#include <cstdint>
#include <vector>

#include "../logic/aig.hpp"
#include "../logic/truth_table.hpp"

namespace qsyn
{

/// A mapped LUT network.  Signals are indexed 0..num_pis-1 for the PIs,
/// then one index per LUT in topological order.
struct lut_network
{
  unsigned num_pis = 0;

  struct lut
  {
    std::vector<std::uint32_t> fanins; ///< signal indices
    truth_table function;              ///< over fanins.size() variables
  };

  std::vector<lut> luts;

  struct output
  {
    std::uint32_t signal;
    bool complemented;
  };
  std::vector<output> outputs;

  std::uint32_t signal_of_lut( std::size_t lut_index ) const
  {
    return num_pis + static_cast<std::uint32_t>( lut_index );
  }

  /// Evaluates all outputs on one input assignment (for verification).
  std::vector<bool> evaluate( const std::vector<bool>& inputs ) const;
};

/// Parameters of the mapper.
struct lut_map_params
{
  unsigned cut_size = 4;     ///< k
  unsigned cuts_per_node = 8; ///< priority cut list length
};

/// Maps an AIG into a k-LUT network.
lut_network lut_map( const aig_network& aig, const lut_map_params& params = {} );

} // namespace qsyn
