/// \file collapse.hpp
/// \brief Collapsing a multi-level AIG into functional form (ABC `collapse`).
///
/// The functional reversible flow (Sec. IV-A) needs the design as an
/// explicit function: a BDD per output for the symbolic embedding analysis
/// and a truth-table vector for the transformation-based synthesizer.

#pragma once

#include <vector>

#include "../bdd/bdd.hpp"
#include "../logic/aig.hpp"

namespace qsyn
{

/// Builds one BDD per primary output in `manager` (PI i maps to BDD
/// variable `var_offset + i`).
std::vector<bdd_node> collapse_to_bdds( const aig_network& aig, bdd_manager& manager,
                                        unsigned var_offset = 0 );

/// Explicit truth tables of all outputs (num_pis() <= 20).
std::vector<truth_table> collapse_to_truth_tables( const aig_network& aig );

} // namespace qsyn
