#include "xmg_resynth.hpp"

#include <algorithm>
#include <cassert>
#include <optional>

#include "esop_extract.hpp"
#include "isop.hpp"
#include "lut_map.hpp"

namespace qsyn
{

namespace
{

/// Cost of a candidate form: (MAJ nodes, total nodes).
struct form_cost
{
  unsigned maj = 0;
  unsigned total = 0;

  bool operator<( const form_cost& other ) const
  {
    if ( maj != other.maj )
    {
      return maj < other.maj;
    }
    return total < other.total;
  }
};

form_cost pprm_cost( const std::vector<cube>& monomials )
{
  form_cost cost;
  for ( const auto& m : monomials )
  {
    const auto lits = static_cast<unsigned>( m.num_literals() );
    if ( lits >= 2u )
    {
      cost.maj += lits - 1u; // AND chain
    }
  }
  cost.total = cost.maj;
  if ( !monomials.empty() )
  {
    cost.total += static_cast<unsigned>( monomials.size() ) - 1u; // XOR tree
  }
  return cost;
}

form_cost isop_cost( const std::vector<cube>& cubes )
{
  form_cost cost;
  for ( const auto& c : cubes )
  {
    const auto lits = static_cast<unsigned>( c.num_literals() );
    if ( lits >= 2u )
    {
      cost.maj += lits - 1u;
    }
  }
  if ( !cubes.empty() )
  {
    cost.maj += static_cast<unsigned>( cubes.size() ) - 1u; // OR tree costs MAJ too
  }
  cost.total = cost.maj;
  return cost;
}

/// Builds an AND of literal lits (possibly empty -> const1).
xmg_lit build_monomial( xmg_network& xmg, const cube& c, const std::vector<xmg_lit>& fanins )
{
  std::vector<xmg_lit> factors;
  for ( unsigned v = 0; v < fanins.size(); ++v )
  {
    if ( c.has_var( v ) )
    {
      factors.push_back( fanins[v] ^ ( c.var_polarity( v ) ? 0u : 1u ) );
    }
  }
  return xmg.create_nary_and( std::move( factors ) );
}

/// Detects whether `tt` is an XOR (or XNOR) of a subset of its variables.
std::optional<std::pair<std::uint64_t, bool>> detect_parity( const truth_table& tt )
{
  const auto n = tt.num_vars();
  // Parity functions have all PPRM monomials of size one; equivalently,
  // tt == xor of projections (^ constant).  Determine candidate subset by
  // the function's support, then verify.
  std::uint64_t subset = 0;
  for ( unsigned v = 0; v < n; ++v )
  {
    if ( tt.depends_on( v ) )
    {
      subset |= std::uint64_t{ 1 } << v;
    }
  }
  if ( subset == 0u )
  {
    return std::nullopt;
  }
  truth_table parity( n );
  for ( unsigned v = 0; v < n; ++v )
  {
    if ( ( subset >> v ) & 1u )
    {
      parity ^= truth_table::projection( n, v );
    }
  }
  if ( parity == tt )
  {
    return std::make_pair( subset, false );
  }
  if ( ~parity == tt )
  {
    return std::make_pair( subset, true );
  }
  return std::nullopt;
}

/// Detects MAJ of three (possibly complemented) support variables.
std::optional<std::array<bool, 3>> detect_maj3( const truth_table& tt,
                                                const std::vector<unsigned>& support )
{
  if ( support.size() != 3u )
  {
    return std::nullopt;
  }
  const auto n = tt.num_vars();
  const auto a = truth_table::projection( n, support[0] );
  const auto b = truth_table::projection( n, support[1] );
  const auto c = truth_table::projection( n, support[2] );
  for ( unsigned pol = 0; pol < 8; ++pol )
  {
    const auto pa = ( pol & 1u ) ? ~a : a;
    const auto pb = ( pol & 2u ) ? ~b : b;
    const auto pc = ( pol & 4u ) ? ~c : c;
    const auto maj = ( pa & pb ) | ( pa & pc ) | ( pb & pc );
    if ( maj == tt )
    {
      return std::array<bool, 3>{ ( pol & 1u ) != 0u, ( pol & 2u ) != 0u, ( pol & 4u ) != 0u };
    }
  }
  return std::nullopt;
}

class lut_to_xmg
{
public:
  explicit lut_to_xmg( const lut_network& net, xmg_resynth_stats* stats )
      : net_( net ), stats_( stats ), xmg_( net.num_pis )
  {
  }

  xmg_network run()
  {
    std::vector<xmg_lit> signal_lits( net_.num_pis + net_.luts.size() );
    for ( unsigned i = 0; i < net_.num_pis; ++i )
    {
      signal_lits[i] = xmg_.pi( i );
    }
    for ( std::size_t l = 0; l < net_.luts.size(); ++l )
    {
      const auto& lut = net_.luts[l];
      std::vector<xmg_lit> fanins;
      fanins.reserve( lut.fanins.size() );
      for ( const auto f : lut.fanins )
      {
        fanins.push_back( signal_lits[f] );
      }
      signal_lits[net_.num_pis + l] = synthesize( lut.function, fanins );
      if ( stats_ )
      {
        ++stats_->luts;
      }
    }
    for ( const auto& out : net_.outputs )
    {
      xmg_.add_po( signal_lits[out.signal] ^ ( out.complemented ? 1u : 0u ) );
    }
    return std::move( xmg_ );
  }

private:
  /// Synthesizes one LUT function over already-built fanin literals.
  xmg_lit synthesize( const truth_table& tt_full, const std::vector<xmg_lit>& fanins_full )
  {
    // Work on the support only.
    std::vector<unsigned> support_map;
    const auto tt = tt_full.shrink_to_support( &support_map );
    std::vector<xmg_lit> fanins;
    fanins.reserve( support_map.size() );
    for ( const auto v : support_map )
    {
      fanins.push_back( fanins_full[v] );
    }

    if ( tt.is_const0() )
    {
      return xmg_network::const0;
    }
    if ( tt.is_const1() )
    {
      return xmg_network::const1;
    }
    if ( tt.num_vars() == 1u )
    {
      return tt.get_bit( 1 ) ? fanins[0] : ( fanins[0] ^ 1u );
    }

    // Direct parity form.
    if ( const auto parity = detect_parity( tt ) )
    {
      std::vector<xmg_lit> terms;
      for ( unsigned v = 0; v < fanins.size(); ++v )
      {
        if ( ( parity->first >> v ) & 1u )
        {
          terms.push_back( fanins[v] );
        }
      }
      if ( stats_ )
      {
        ++stats_->direct_forms;
      }
      return xmg_.create_nary_xor( std::move( terms ) ) ^ ( parity->second ? 1u : 0u );
    }

    // Direct MAJ form.
    {
      std::vector<unsigned> support( fanins.size() );
      for ( unsigned v = 0; v < fanins.size(); ++v )
      {
        support[v] = v;
      }
      if ( const auto maj = detect_maj3( tt, support ) )
      {
        if ( stats_ )
        {
          ++stats_->direct_forms;
        }
        return xmg_.create_maj( fanins[0] ^ ( ( *maj )[0] ? 1u : 0u ),
                                fanins[1] ^ ( ( *maj )[1] ? 1u : 0u ),
                                fanins[2] ^ ( ( *maj )[2] ? 1u : 0u ) );
      }
    }

    // Candidate expansions: PPRM (XOR-friendly) vs. ISOP (SOP), both also
    // for the complement (free output inverters).
    const auto pprm = pprm_from_truth_table( tt );
    const auto pprm_compl = pprm_from_truth_table( ~tt );
    const auto sop = isop( tt );
    const auto sop_compl = isop( ~tt );

    struct candidate
    {
      enum class form
      {
        pprm,
        sop
      } kind;
      const std::vector<cube>* cubes;
      bool complemented;
      form_cost cost;
    };
    std::vector<candidate> cands = {
        { candidate::form::pprm, &pprm, false, pprm_cost( pprm ) },
        { candidate::form::pprm, &pprm_compl, true, pprm_cost( pprm_compl ) },
        { candidate::form::sop, &sop, false, isop_cost( sop ) },
        { candidate::form::sop, &sop_compl, true, isop_cost( sop_compl ) },
    };
    const auto best = std::min_element( cands.begin(), cands.end(),
                                        []( const candidate& a, const candidate& b ) {
                                          return a.cost < b.cost;
                                        } );
    if ( stats_ )
    {
      if ( best->kind == candidate::form::pprm )
      {
        ++stats_->pprm_forms;
      }
      else
      {
        ++stats_->isop_forms;
      }
    }
    xmg_lit result;
    if ( best->kind == candidate::form::pprm )
    {
      std::vector<xmg_lit> terms;
      terms.reserve( best->cubes->size() );
      for ( const auto& m : *best->cubes )
      {
        terms.push_back( build_monomial( xmg_, m, fanins ) );
      }
      result = xmg_.create_nary_xor( std::move( terms ) );
    }
    else
    {
      std::vector<xmg_lit> terms;
      terms.reserve( best->cubes->size() );
      for ( const auto& c : *best->cubes )
      {
        terms.push_back( build_monomial( xmg_, c, fanins ) );
      }
      // OR tree via MAJ(a, b, 1).
      while ( terms.size() > 1u )
      {
        std::vector<xmg_lit> next;
        for ( std::size_t i = 0; i + 1u < terms.size(); i += 2u )
        {
          next.push_back( xmg_.create_or( terms[i], terms[i + 1u] ) );
        }
        if ( terms.size() & 1u )
        {
          next.push_back( terms.back() );
        }
        terms = std::move( next );
      }
      result = terms.empty() ? xmg_network::const0 : terms[0];
    }
    return result ^ ( best->complemented ? 1u : 0u );
  }

  const lut_network& net_;
  xmg_resynth_stats* stats_;
  xmg_network xmg_;
};

} // namespace

xmg_network xmg_from_luts( const lut_network& luts, xmg_resynth_stats* stats )
{
  lut_to_xmg converter( luts, stats );
  return converter.run();
}

xmg_network xmg_from_aig( const aig_network& aig, unsigned cut_size, xmg_resynth_stats* stats )
{
  lut_map_params params;
  params.cut_size = cut_size;
  const auto luts = lut_map( aig, params );
  return xmg_from_luts( luts, stats );
}

} // namespace qsyn
