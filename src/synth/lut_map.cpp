#include "lut_map.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace qsyn
{

std::vector<bool> lut_network::evaluate( const std::vector<bool>& inputs ) const
{
  assert( inputs.size() == num_pis );
  std::vector<bool> values( num_pis + luts.size() );
  for ( unsigned i = 0; i < num_pis; ++i )
  {
    values[i] = inputs[i];
  }
  for ( std::size_t l = 0; l < luts.size(); ++l )
  {
    std::uint64_t index = 0;
    for ( std::size_t f = 0; f < luts[l].fanins.size(); ++f )
    {
      if ( values[luts[l].fanins[f]] )
      {
        index |= std::uint64_t{ 1 } << f;
      }
    }
    values[num_pis + l] = luts[l].function.get_bit( index );
  }
  std::vector<bool> result;
  result.reserve( outputs.size() );
  for ( const auto& out : outputs )
  {
    result.push_back( values[out.signal] ^ out.complemented );
  }
  return result;
}

namespace
{

/// A cut: sorted leaf nodes plus the cut function over those leaves.
struct cut
{
  std::vector<std::uint32_t> leaves;
  truth_table function;
  std::uint32_t depth = 0;
  double area_flow = 0.0;
};

/// Re-expresses `tt` (over `from` leaves) on the union leaf set `to`.
truth_table expand_tt( const truth_table& tt, const std::vector<std::uint32_t>& from,
                       const std::vector<std::uint32_t>& to )
{
  truth_table result( static_cast<unsigned>( to.size() ) );
  // Build a map from `from` position to `to` position.
  std::vector<unsigned> pos( from.size() );
  for ( std::size_t i = 0; i < from.size(); ++i )
  {
    const auto it = std::lower_bound( to.begin(), to.end(), from[i] );
    assert( it != to.end() && *it == from[i] );
    pos[i] = static_cast<unsigned>( it - to.begin() );
  }
  for ( std::uint64_t m = 0; m < result.num_bits(); ++m )
  {
    std::uint64_t src = 0;
    for ( std::size_t i = 0; i < from.size(); ++i )
    {
      if ( ( m >> pos[i] ) & 1u )
      {
        src |= std::uint64_t{ 1 } << i;
      }
    }
    if ( tt.get_bit( src ) )
    {
      result.set_bit( m, true );
    }
  }
  return result;
}

} // namespace

lut_network lut_map( const aig_network& aig, const lut_map_params& params )
{
  const auto k = params.cut_size;
  if ( k < 2u )
  {
    // Every merged cut of an AND node has >= 2 leaves; k < 2 would leave
    // nodes without any candidate cut (and crash the cover extraction).
    throw std::invalid_argument( "lut_map: cut_size must be at least 2" );
  }
  const auto fanouts = aig.fanout_counts();

  // Per node: list of candidate cuts (first entry is the best).  Cut lists
  // are freed once every fanout has consumed them (large designs would
  // otherwise hold gigabytes of cuts); the best cut survives in
  // `best_cuts` for the cover-extraction phase.
  std::vector<std::vector<cut>> cuts( aig.num_nodes() );
  std::vector<cut> best_cuts( aig.num_nodes() );
  std::vector<std::uint32_t> pending_fanouts( fanouts );
  // Mapped depth / area flow per node (PIs: 0), used to cost candidate cuts
  // from their *leaves* rather than from the structural merge path.
  std::vector<std::uint32_t> node_depth( aig.num_nodes(), 0u );
  std::vector<double> node_area_flow( aig.num_nodes(), 0.0 );

  // Trivial cut for constant: none (handled by constant folding in the
  // consumer; a LUT network keeps constants inside LUT functions).
  for ( std::uint32_t n = 1; n <= aig.num_pis(); ++n )
  {
    cut c;
    c.leaves = { n };
    c.function = truth_table::projection( 1, 0 );
    c.depth = 0;
    c.area_flow = 0.0;
    cuts[n].push_back( std::move( c ) );
  }

  for ( std::uint32_t n = aig.num_pis() + 1u; n < aig.num_nodes(); ++n )
  {
    const auto f0 = aig.fanin0( n );
    const auto f1 = aig.fanin1( n );
    const auto n0 = lit_node( f0 );
    const auto n1 = lit_node( f1 );
    std::vector<cut> candidates;

    const auto fanin_cuts = [&]( std::uint32_t m ) -> std::vector<cut> {
      if ( m == 0u )
      {
        // Constant fanin: empty cut with constant function.
        cut c;
        c.function = truth_table( 0 );
        return { c };
      }
      return cuts[m];
    };

    for ( const auto& c0 : fanin_cuts( n0 ) )
    {
      for ( const auto& c1 : fanin_cuts( n1 ) )
      {
        std::vector<std::uint32_t> merged;
        std::set_union( c0.leaves.begin(), c0.leaves.end(), c1.leaves.begin(), c1.leaves.end(),
                        std::back_inserter( merged ) );
        if ( merged.size() > k )
        {
          continue;
        }
        cut c;
        c.leaves = std::move( merged );
        auto t0 = expand_tt( c0.function, c0.leaves, c.leaves );
        if ( lit_complemented( f0 ) )
        {
          t0 = ~t0;
        }
        auto t1 = expand_tt( c1.function, c1.leaves, c.leaves );
        if ( lit_complemented( f1 ) )
        {
          t1 = ~t1;
        }
        c.function = t0 & t1;
        c.depth = 0;
        c.area_flow = 1.0;
        for ( const auto leaf : c.leaves )
        {
          c.depth = std::max( c.depth, node_depth[leaf] + 1u );
          c.area_flow += node_area_flow[leaf] / std::max( 1u, fanouts[leaf] );
        }
        candidates.push_back( std::move( c ) );
      }
    }
    // The trivial cut (the node itself) is always available for fanouts.
    cut trivial;
    trivial.leaves = { n };
    trivial.function = truth_table::projection( 1, 0 );
    // Depth of the trivial cut is the node's mapped depth = best cut depth;
    // fill in after sorting the real candidates.
    std::sort( candidates.begin(), candidates.end(), []( const cut& a, const cut& b ) {
      if ( a.depth != b.depth )
      {
        return a.depth < b.depth;
      }
      if ( a.area_flow != b.area_flow )
      {
        return a.area_flow < b.area_flow;
      }
      return a.leaves.size() < b.leaves.size();
    } );
    if ( candidates.size() > params.cuts_per_node )
    {
      candidates.resize( params.cuts_per_node );
    }
    assert( !candidates.empty() );
    trivial.depth = candidates.front().depth;
    trivial.area_flow = candidates.front().area_flow;
    best_cuts[n] = candidates.front();
    node_depth[n] = candidates.front().depth;
    node_area_flow[n] = candidates.front().area_flow;
    candidates.push_back( std::move( trivial ) );
    // Keep the best non-trivial cut first; the trivial cut participates in
    // fanout merging only.
    cuts[n] = std::move( candidates );
    // Release fanin cut lists that are no longer needed.
    for ( const auto m : { n0, n1 } )
    {
      if ( m > aig.num_pis() && pending_fanouts[m] > 0u && --pending_fanouts[m] == 0u )
      {
        cuts[m].clear();
        cuts[m].shrink_to_fit();
      }
    }
  }

  // Cover extraction from the POs using each required node's best cut.
  lut_network net;
  net.num_pis = aig.num_pis();
  std::unordered_map<std::uint32_t, std::uint32_t> node_to_signal; // AIG node -> LUT signal
  for ( std::uint32_t n = 1; n <= aig.num_pis(); ++n )
  {
    node_to_signal[n] = n - 1u;
  }

  const auto build = [&]( std::uint32_t n, const auto& self ) -> std::uint32_t {
    if ( const auto it = node_to_signal.find( n ); it != node_to_signal.end() )
    {
      return it->second;
    }
    assert( aig.is_and( n ) );
    const auto& best = best_cuts[n];
    lut_network::lut l;
    l.function = best.function;
    for ( const auto leaf : best.leaves )
    {
      l.fanins.push_back( self( leaf, self ) );
    }
    const auto signal = net.num_pis + static_cast<std::uint32_t>( net.luts.size() );
    net.luts.push_back( std::move( l ) );
    node_to_signal[n] = signal;
    return signal;
  };

  for ( const auto po : aig.pos() )
  {
    const auto n = lit_node( po );
    if ( n == 0u )
    {
      // Constant output: encode as a zero-input LUT.
      lut_network::lut l;
      l.function = truth_table( 0 );
      const auto signal = net.num_pis + static_cast<std::uint32_t>( net.luts.size() );
      net.luts.push_back( std::move( l ) );
      net.outputs.push_back( { signal, lit_complemented( po ) } );
      continue;
    }
    net.outputs.push_back( { build( n, build ), lit_complemented( po ) } );
  }
  return net;
}

} // namespace qsyn
