/// \file xmg_resynth.hpp
/// \brief LUT-network to XMG resynthesis (CirKit `xmglut`-style).
///
/// Each mapped LUT function (<= k inputs) is re-expressed in XOR/MAJ logic
/// with the reversible cost model in mind: MAJ (and its AND/OR special
/// cases) costs one Toffoli gate, XOR and inverters are free.  Per LUT the
/// synthesizer considers
///
///  * direct forms — constants, literals, AND/OR/XOR of literals, MAJ of
///    three literals (any polarities),
///  * the PPRM expansion (XOR of positive-literal monomials), and
///  * the ISOP expansion (SOP over AND/OR nodes),
///
/// and picks the candidate with the fewest MAJ nodes (ties: fewer total
/// nodes).  Structural hashing in the target XMG shares logic across LUTs.

#pragma once

#include "../logic/xmg.hpp"
#include "lut_map.hpp"

namespace qsyn
{

/// Statistics of one resynthesis run.
struct xmg_resynth_stats
{
  std::size_t luts = 0;
  std::size_t direct_forms = 0;
  std::size_t pprm_forms = 0;
  std::size_t isop_forms = 0;
};

/// Converts a LUT network into an XMG.
xmg_network xmg_from_luts( const lut_network& luts, xmg_resynth_stats* stats = nullptr );

/// Convenience driver: optimized AIG -> LUT mapping -> XMG (the paper's
/// `xmglut -k 4` step).
xmg_network xmg_from_aig( const aig_network& aig, unsigned cut_size = 4,
                          xmg_resynth_stats* stats = nullptr );

} // namespace qsyn
