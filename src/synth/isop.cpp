#include "isop.hpp"

#include <cassert>

namespace qsyn
{

namespace
{

/// Recursive Minato-Morreale: returns cubes and sets `cover` to the covered
/// set.  `L` is the lower bound (must be covered), `U` the upper bound
/// (may be covered).  Invariant: L <= U.
std::vector<cube> isop_rec( const truth_table& lower, const truth_table& upper,
                            unsigned num_vars, truth_table& cover )
{
  if ( lower.is_const0() )
  {
    cover = truth_table( lower.num_vars() );
    return {};
  }
  if ( upper.is_const1() )
  {
    cover = truth_table::constant( lower.num_vars(), true );
    return { cube{} };
  }
  // Pick the highest variable in the support of either bound.
  unsigned var = 0;
  bool found = false;
  for ( unsigned v = num_vars; v > 0; --v )
  {
    if ( lower.depends_on( v - 1u ) || upper.depends_on( v - 1u ) )
    {
      var = v - 1u;
      found = true;
      break;
    }
  }
  assert( found );
  (void)found;

  const auto l0 = lower.cofactor( var, false );
  const auto l1 = lower.cofactor( var, true );
  const auto u0 = upper.cofactor( var, false );
  const auto u1 = upper.cofactor( var, true );

  // Cubes that must contain literal !var: needed where x=0 but not
  // allowed where x=1.
  truth_table cover0( lower.num_vars() );
  auto cubes0 = isop_rec( l0 & ~u1, u0, var, cover0 );
  // Cubes that must contain literal var.
  truth_table cover1( lower.num_vars() );
  auto cubes1 = isop_rec( l1 & ~u0, u1, var, cover1 );
  // Remaining minterms can be covered without the variable.
  const auto l_rest = ( l0 & ~cover0 ) | ( l1 & ~cover1 );
  truth_table cover_rest( lower.num_vars() );
  auto cubes_rest = isop_rec( l_rest, u0 & u1, var, cover_rest );

  std::vector<cube> result;
  result.reserve( cubes0.size() + cubes1.size() + cubes_rest.size() );
  for ( auto c : cubes0 )
  {
    c.add_literal( var, false );
    result.push_back( c );
  }
  for ( auto c : cubes1 )
  {
    c.add_literal( var, true );
    result.push_back( c );
  }
  for ( const auto& c : cubes_rest )
  {
    result.push_back( c );
  }

  const auto proj = truth_table::projection( lower.num_vars(), var );
  cover = ( ~proj & cover0 ) | ( proj & cover1 ) | cover_rest;
  return result;
}

} // namespace

std::vector<cube> isop( const truth_table& on, const truth_table& dc )
{
  assert( on.num_vars() == dc.num_vars() );
  truth_table cover( on.num_vars() );
  return isop_rec( on, on | dc, on.num_vars(), cover );
}

truth_table sop_cover( const std::vector<cube>& cubes, unsigned num_vars )
{
  truth_table tt( num_vars );
  for ( const auto& c : cubes )
  {
    tt |= c.to_truth_table( num_vars );
  }
  return tt;
}

} // namespace qsyn
