#include "esop_extract.hpp"

#include <cassert>
#include <unordered_map>

namespace qsyn
{

namespace
{

class psdkro_extractor
{
public:
  std::vector<cube> run( const truth_table& tt, unsigned top_var )
  {
    return extract( tt, top_var );
  }

private:
  std::vector<cube> extract( const truth_table& tt, unsigned var )
  {
    if ( tt.is_const0() )
    {
      return {};
    }
    if ( tt.is_const1() )
    {
      return { cube{} };
    }
    if ( const auto it = memo_.find( tt ); it != memo_.end() )
    {
      return it->second;
    }
    // Find the top-most support variable at or below `var`.
    unsigned v = var;
    while ( v > 0 && !tt.depends_on( v - 1u ) )
    {
      --v;
    }
    assert( v > 0 );
    const unsigned x = v - 1u;

    const auto f0 = tt.cofactor( x, false );
    const auto f1 = tt.cofactor( x, true );
    const auto f2 = f0 ^ f1;

    auto c0 = extract( f0, x );
    auto c1 = extract( f1, x );
    auto c2 = extract( f2, x );

    const auto cost_shannon = c0.size() + c1.size();
    const auto cost_pdavio = c0.size() + c2.size();
    const auto cost_ndavio = c1.size() + c2.size();

    std::vector<cube> result;
    if ( cost_shannon <= cost_pdavio && cost_shannon <= cost_ndavio )
    {
      // f = !x f0 ^ x f1
      result.reserve( c0.size() + c1.size() );
      for ( auto c : c0 )
      {
        c.add_literal( x, false );
        result.push_back( c );
      }
      for ( auto c : c1 )
      {
        c.add_literal( x, true );
        result.push_back( c );
      }
    }
    else if ( cost_pdavio <= cost_ndavio )
    {
      // f = f0 ^ x f2
      result.reserve( c0.size() + c2.size() );
      for ( const auto& c : c0 )
      {
        result.push_back( c );
      }
      for ( auto c : c2 )
      {
        c.add_literal( x, true );
        result.push_back( c );
      }
    }
    else
    {
      // f = f1 ^ !x f2
      result.reserve( c1.size() + c2.size() );
      for ( const auto& c : c1 )
      {
        result.push_back( c );
      }
      for ( auto c : c2 )
      {
        c.add_literal( x, false );
        result.push_back( c );
      }
    }
    memo_.emplace( tt, result );
    return result;
  }

  std::unordered_map<truth_table, std::vector<cube>, truth_table_hash> memo_;
};

} // namespace

std::vector<cube> esop_from_truth_table( const truth_table& tt )
{
  psdkro_extractor extractor;
  return extractor.run( tt, tt.num_vars() );
}

esop esop_from_aig( const aig_network& aig )
{
  const auto tts = aig.simulate_outputs();
  esop result;
  result.num_inputs = aig.num_pis();
  result.num_outputs = aig.num_pos();
  psdkro_extractor extractor; // shared memo across outputs encourages sharing
  for ( unsigned o = 0; o < aig.num_pos(); ++o )
  {
    const auto cubes = extractor.run( tts[o], tts[o].num_vars() );
    for ( const auto& c : cubes )
    {
      result.terms.push_back( { c, std::uint64_t{ 1 } << o } );
    }
  }
  result.merge_identical_cubes();
  return result;
}

std::vector<cube> pprm_from_truth_table( const truth_table& tt )
{
  // Reed-Muller (Moebius) transform: butterfly over the bit vector.
  truth_table coeffs = tt;
  const auto n = tt.num_vars();
  for ( unsigned v = 0; v < n; ++v )
  {
    // coeffs ^= (coeffs restricted to x_v = 0) shifted into the x_v = 1 half
    const auto neg = coeffs.cofactor( v, false );
    const auto proj = truth_table::projection( n, v );
    coeffs ^= neg & proj;
  }
  std::vector<cube> cubes;
  for ( std::uint64_t m = 0; m < coeffs.num_bits(); ++m )
  {
    if ( coeffs.get_bit( m ) )
    {
      cubes.push_back( cube{ m, m } ); // monomial: positive literals at set bits
    }
  }
  return cubes;
}

} // namespace qsyn
