/// \file isop.hpp
/// \brief Irredundant sum-of-products computation (Minato-Morreale).
///
/// ISOPs drive the refactoring pass of the dc2-style AIG optimizer and the
/// SOP-based candidate form of the xmglut-style LUT resynthesis.

#pragma once

#include <vector>

#include "../logic/cube.hpp"
#include "../logic/truth_table.hpp"

namespace qsyn
{

/// Computes an irredundant sum-of-products F with on <= F <= on | dc
/// (classic Minato-Morreale recursion).  `on` and `dc` must not overlap in
/// a contradictory way (on & ~ (on|dc) empty by construction).
std::vector<cube> isop( const truth_table& on, const truth_table& dc );

/// ISOP of a completely specified function.
inline std::vector<cube> isop( const truth_table& f )
{
  return isop( f, truth_table( f.num_vars() ) );
}

/// Truth table covered by a SOP.
truth_table sop_cover( const std::vector<cube>& cubes, unsigned num_vars );

} // namespace qsyn
