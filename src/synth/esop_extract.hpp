/// \file esop_extract.hpp
/// \brief ESOP extraction from truth tables (PSDKRO heuristic).
///
/// This is our reimplementation of ABC's `&exorcism` front half: collapsing
/// a logic network into a 2-level exclusive sum of products (Sec. IV-B).
/// For each subfunction the recursion chooses among the Shannon, positive
/// Davio, and negative Davio expansions, memoizing the best expansion per
/// distinct subfunction (a pseudo-symmetric decomposition Kronecker
/// Reed-Muller heuristic).  Multi-output designs share identical cubes via
/// output masks.

#pragma once

#include <vector>

#include "../logic/aig.hpp"
#include "../logic/cube.hpp"
#include "../logic/truth_table.hpp"

namespace qsyn
{

/// ESOP cubes of a single-output function.
std::vector<cube> esop_from_truth_table( const truth_table& tt );

/// Multi-output ESOP for all outputs of an AIG (requires num_pis() <= 20,
/// practical well below that).  Identical cubes across outputs are merged
/// into shared terms.
esop esop_from_aig( const aig_network& aig );

/// PPRM (positive-polarity Reed-Muller) expansion: the unique ESOP with
/// only positive literals.  Useful as a cheap XOR-friendly candidate form
/// in LUT resynthesis.
std::vector<cube> pprm_from_truth_table( const truth_table& tt );

} // namespace qsyn
