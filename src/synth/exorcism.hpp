/// \file exorcism.hpp
/// \brief ESOP minimization via cube pairing (exorcism-style).
///
/// Reimplementation of the heuristic of Mishchenko & Perkowski, "Fast
/// heuristic minimization of exclusive sum-of-products" [21], as used by
/// the paper's ESOP-based flow.  The minimizer repeatedly applies
/// EXORLINK-style transformations to cube pairs of small Boolean distance
/// (0, 1, 2) until no transformation reduces the cost, where cost is the
/// (cube count, literal count) pair ordered lexicographically.
///
/// Pairs are discovered through a pair-generation index instead of an
/// all-pairs scan: terms are bucketed by output mask, distance-1 partners
/// are found by O(1) exact-map lookups of the single-literal perturbations
/// of a cube, and distance-2 partners by lookups in a two-position wildcard
/// signature index.  The EXORLINK rewrites themselves are constructed with
/// closed-form word operations on the (mask, polarity) bit-vectors — the
/// rewrites are unconditionally valid for distance <= 2, which the retained
/// exhaustive checker asserts in debug builds.

#pragma once

#include <cstdint>

#include "../common/budget.hpp"
#include "../logic/cube.hpp"

namespace qsyn
{

/// Statistics of one minimization run.
struct exorcism_stats
{
  std::size_t initial_terms = 0;
  std::size_t final_terms = 0;
  std::size_t initial_literals = 0;
  std::size_t final_literals = 0;
  unsigned passes = 0;
  /// Pair-improvement attempts spent (the unit of `pair_budget`).
  std::uint64_t pairs_attempted = 0;
  /// True when the run stopped at its pair budget or deadline rather than
  /// at a fixpoint.  The expression is still a valid (partially minimized)
  /// ESOP of the same function — every rewrite preserves it, so stopping
  /// anywhere is sound.
  bool budget_exhausted = false;
};

/// Resource limits of one minimization run (EXORCISM is an anytime
/// algorithm: hitting a limit yields a valid, merely less-minimized ESOP).
struct exorcism_params
{
  unsigned max_passes = 16;
  /// Pair-improvement attempts allowed (0 = unlimited).
  std::uint64_t pair_budget = 0;
  /// Cooperative wall-clock deadline, polled every 256 attempts.
  deadline stop;
};

/// Closed-form distance-1 merge: the single cube equivalent to a ^ b when
/// the cubes differ in exactly one literal position.
cube exorlink_merge( const cube& a, const cube& b );

/// The two EXORLINK-2 rewrites of a distance-2 pair: a ^ b == a1 ^ b1 ==
/// a2 ^ b2, each obtained by replacing one differing literal of one cube
/// with the merged state.
struct exorlink2_rewrites
{
  cube a1, b1;
  cube a2, b2;
};
exorlink2_rewrites exorlink_two( const cube& a, const cube& b );

/// Exhaustive semantic reference check that a ^ b == c1 [^ c2], enumerating
/// all assignments of the involved variables.  Retained as the debug
/// cross-check of the closed-form rewrites and for the property tests.
bool xor_equivalent_exhaustive( const cube& a, const cube& b, const cube& c1,
                                const cube* c2 = nullptr );

/// Minimizes a multi-output ESOP in place; returns statistics.
/// `max_passes` bounds the outer improvement loop.
exorcism_stats exorcism( esop& expression, unsigned max_passes = 16 );

/// As above, under explicit resource limits.
exorcism_stats exorcism( esop& expression, const exorcism_params& params );

} // namespace qsyn
