/// \file exorcism.hpp
/// \brief ESOP minimization via cube pairing (exorcism-style).
///
/// Reimplementation of the heuristic of Mishchenko & Perkowski, "Fast
/// heuristic minimization of exclusive sum-of-products" [21], as used by
/// the paper's ESOP-based flow.  The minimizer repeatedly applies
/// EXORLINK-style transformations to cube pairs of small Boolean distance
/// (0, 1, 2) until no transformation reduces the cost, where cost is the
/// (cube count, literal count) pair ordered lexicographically.

#pragma once

#include "../logic/cube.hpp"

namespace qsyn
{

/// Statistics of one minimization run.
struct exorcism_stats
{
  std::size_t initial_terms = 0;
  std::size_t final_terms = 0;
  std::size_t initial_literals = 0;
  std::size_t final_literals = 0;
  unsigned passes = 0;
};

/// Minimizes a multi-output ESOP in place; returns statistics.
/// `max_passes` bounds the outer improvement loop.
exorcism_stats exorcism( esop& expression, unsigned max_passes = 16 );

} // namespace qsyn
