/// \file aig_optimize.hpp
/// \brief dc2-style AIG optimization passes.
///
/// The paper's flows run ABC's `dc2` / `resyn2` on the elaborated design
/// before handing it to reversible synthesis.  We provide the same three
/// mechanisms those scripts combine:
///
/// * `balance`    — rebuilds multi-input AND trees in balanced form (depth
///                  reduction, exposes sharing through structural hashing),
/// * `refactor`   — collapses small single-output cones to truth tables and
///                  resynthesizes them from an irredundant SOP when that
///                  reduces the node count,
/// * `sat_sweep`  — fraig-style merging of functionally equivalent nodes:
///                  random-pattern simulation proposes equivalence classes,
///                  the CDCL solver proves or refutes each candidate.
///
/// `optimize` (our `dc2`) iterates these to a fixpoint with a round limit.

#pragma once

#include "../logic/aig.hpp"

namespace qsyn
{

/// Balances AND trees; function-preserving, typically reduces depth.
aig_network aig_balance( const aig_network& aig );

/// ISOP-based refactoring of cones up to `max_leaves` inputs.
aig_network aig_refactor( const aig_network& aig, unsigned max_leaves = 8 );

/// Fraig-style SAT sweeping; merges proven-equivalent nodes (up to
/// complement).  `conflict_budget` bounds the per-candidate SAT effort.
aig_network aig_sat_sweep( const aig_network& aig, std::uint64_t conflict_budget = 1000 );

/// The dc2-style driver: alternates cleanup, balance and refactor for
/// `rounds` rounds (stopping early on fixpoint).  `use_sat_sweep` adds a
/// final fraig pass (more expensive, bigger gains on redundant netlists).
aig_network optimize( const aig_network& aig, unsigned rounds = 3, bool use_sat_sweep = false );

} // namespace qsyn
