#include "exorcism.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "../common/bits.hpp"

namespace qsyn
{

namespace
{

/// Three-valued literal state of a variable within a cube.
enum class lit_state : std::uint8_t
{
  absent,
  positive,
  negative
};

lit_state state_of( const cube& c, unsigned var )
{
  if ( !c.has_var( var ) )
  {
    return lit_state::absent;
  }
  return c.var_polarity( var ) ? lit_state::positive : lit_state::negative;
}

void set_state( cube& c, unsigned var, lit_state s )
{
  switch ( s )
  {
  case lit_state::absent:
    c.remove_literal( var );
    break;
  case lit_state::positive:
    c.add_literal( var, true );
    break;
  case lit_state::negative:
    c.add_literal( var, false );
    break;
  }
}

/// The EXORLINK "merged" literal: the unique third state.
lit_state merge_state( lit_state a, lit_state b )
{
  // absent=0, positive=1, negative=2 -> third value has index 3-a-b.
  const int ia = static_cast<int>( a );
  const int ib = static_cast<int>( b );
  return static_cast<lit_state>( 3 - ia - ib );
}

/// Positions (variables) where two cubes differ.
std::vector<unsigned> diff_positions( const cube& a, const cube& b )
{
  const auto diff_mask =
      ( a.mask ^ b.mask ) | ( ( a.polarity ^ b.polarity ) & ( a.mask & b.mask ) );
  std::vector<unsigned> positions;
  for ( unsigned v = 0; v < 64; ++v )
  {
    if ( ( diff_mask >> v ) & 1u )
    {
      positions.push_back( v );
    }
  }
  return positions;
}

/// Exhaustive semantic check (over the involved variables) that
/// a ^ b == c1 [^ c2].
bool xor_equivalent( const cube& a, const cube& b, const cube& c1, const cube* c2 )
{
  std::uint64_t vars = a.mask | b.mask | c1.mask;
  if ( c2 )
  {
    vars |= c2->mask;
  }
  std::vector<unsigned> idx;
  for ( unsigned v = 0; v < 64; ++v )
  {
    if ( ( vars >> v ) & 1u )
    {
      idx.push_back( v );
    }
  }
  for ( std::uint64_t m = 0; m < ( std::uint64_t{ 1 } << idx.size() ); ++m )
  {
    std::uint64_t input = 0;
    for ( std::size_t i = 0; i < idx.size(); ++i )
    {
      if ( ( m >> i ) & 1u )
      {
        input |= std::uint64_t{ 1 } << idx[i];
      }
    }
    const bool lhs = a.evaluate( input ) ^ b.evaluate( input );
    bool rhs = c1.evaluate( input );
    if ( c2 )
    {
      rhs ^= c2->evaluate( input );
    }
    if ( lhs != rhs )
    {
      return false;
    }
  }
  return true;
}

struct replacement
{
  cube first;
  std::optional<cube> second;

  int num_literals() const
  {
    return first.num_literals() + ( second ? second->num_literals() : 0 );
  }
  int num_cubes() const { return second ? 2 : 1; }
};

/// Candidate replacements for a cube pair of distance 1 or 2.
std::vector<replacement> candidates( const cube& a, const cube& b )
{
  const auto positions = diff_positions( a, b );
  std::vector<replacement> result;
  if ( positions.size() == 1u )
  {
    // Distance 1: a ^ b collapses to a single cube whose literal at the
    // differing position is the merged state.
    cube merged = a;
    set_state( merged, positions[0],
               merge_state( state_of( a, positions[0] ), state_of( b, positions[0] ) ) );
    result.push_back( { merged, std::nullopt } );
  }
  else if ( positions.size() == 2u )
  {
    // EXORLINK-2: two symmetric rewrites.
    const auto p1 = positions[0];
    const auto p2 = positions[1];
    const auto m1 = merge_state( state_of( a, p1 ), state_of( b, p1 ) );
    const auto m2 = merge_state( state_of( a, p2 ), state_of( b, p2 ) );
    {
      cube c1 = a;
      set_state( c1, p2, m2 );
      cube c2 = b;
      set_state( c2, p1, m1 );
      result.push_back( { c1, c2 } );
    }
    {
      cube c1 = a;
      set_state( c1, p1, m1 );
      cube c2 = b;
      set_state( c2, p2, m2 );
      result.push_back( { c1, c2 } );
    }
  }
  return result;
}

} // namespace

exorcism_stats exorcism( esop& expression, unsigned max_passes )
{
  exorcism_stats stats;
  expression.merge_identical_cubes();
  stats.initial_terms = expression.num_terms();
  stats.initial_literals = expression.num_literals();

  for ( unsigned pass = 0; pass < max_passes; ++pass )
  {
    ++stats.passes;
    bool improved = false;
    auto& terms = expression.terms;

    for ( std::size_t i = 0; i < terms.size(); ++i )
    {
      bool merged_i = false;
      for ( std::size_t j = i + 1u; j < terms.size() && !merged_i; ++j )
      {
        if ( terms[i].output_mask != terms[j].output_mask )
        {
          continue;
        }
        const auto dist = terms[i].product.distance( terms[j].product );
        if ( dist == 0 )
        {
          // Annihilation: p ^ p = 0.
          terms.erase( terms.begin() + static_cast<std::ptrdiff_t>( j ) );
          terms.erase( terms.begin() + static_cast<std::ptrdiff_t>( i ) );
          improved = true;
          merged_i = true;
          --i;
          break;
        }
        if ( dist > 2 )
        {
          continue;
        }
        const int old_literals =
            terms[i].product.num_literals() + terms[j].product.num_literals();
        const int old_cubes = 2;
        for ( const auto& cand : candidates( terms[i].product, terms[j].product ) )
        {
          // Prefer fewer cubes, then fewer literals.
          if ( cand.num_cubes() > old_cubes ||
               ( cand.num_cubes() == old_cubes && cand.num_literals() >= old_literals ) )
          {
            continue;
          }
          if ( !xor_equivalent( terms[i].product, terms[j].product, cand.first,
                                cand.second ? &*cand.second : nullptr ) )
          {
            continue;
          }
          terms[i].product = cand.first;
          if ( cand.second )
          {
            terms[j].product = *cand.second;
          }
          else
          {
            terms.erase( terms.begin() + static_cast<std::ptrdiff_t>( j ) );
          }
          improved = true;
          merged_i = true;
          break;
        }
      }
    }
    expression.merge_identical_cubes();
    if ( !improved )
    {
      break;
    }
  }
  stats.final_terms = expression.num_terms();
  stats.final_literals = expression.num_literals();
  return stats;
}

} // namespace qsyn
