#include "exorcism.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "../common/bits.hpp"

namespace qsyn
{

namespace
{

/// Replaces the literal states of `a` at the positions in `at` with the
/// EXORLINK "merged" state of the (a, b) pair.  At a differing position the
/// merged state is the unique third literal state, which has the closed
/// form: present iff the variable appears in exactly one cube, and negative
/// iff either cube holds it positively.
inline cube replace_with_merged( const cube& a, const cube& b, std::uint64_t at )
{
  const auto merged_mask = ( a.mask ^ b.mask ) & at;
  const auto merged_pol = ~( a.polarity | b.polarity ) & merged_mask;
  cube c;
  c.mask = ( a.mask & ~at ) | merged_mask;
  c.polarity = ( a.polarity & ~at ) | merged_pol;
  return c;
}

inline std::uint64_t lowest_bit( std::uint64_t w )
{
  return w & ( ~w + 1u );
}

} // namespace

bool xor_equivalent_exhaustive( const cube& a, const cube& b, const cube& c1, const cube* c2 )
{
  std::uint64_t vars = a.mask | b.mask | c1.mask;
  if ( c2 )
  {
    vars |= c2->mask;
  }
  std::vector<unsigned> idx;
  idx.reserve( static_cast<std::size_t>( popcount64( vars ) ) );
  for ( auto w = vars; w != 0u; w &= w - 1u )
  {
    idx.push_back( static_cast<unsigned>( lsb_index( w ) ) );
  }
  for ( std::uint64_t m = 0; m < ( std::uint64_t{ 1 } << idx.size() ); ++m )
  {
    std::uint64_t input = 0;
    for ( std::size_t i = 0; i < idx.size(); ++i )
    {
      if ( ( m >> i ) & 1u )
      {
        input |= std::uint64_t{ 1 } << idx[i];
      }
    }
    const bool lhs = a.evaluate( input ) ^ b.evaluate( input );
    bool rhs = c1.evaluate( input );
    if ( c2 )
    {
      rhs ^= c2->evaluate( input );
    }
    if ( lhs != rhs )
    {
      return false;
    }
  }
  return true;
}

cube exorlink_merge( const cube& a, const cube& b )
{
  const auto diff = a.difference_mask( b );
  assert( popcount64( diff ) == 1 );
  const auto merged = replace_with_merged( a, b, diff );
  assert( xor_equivalent_exhaustive( a, b, merged ) );
  return merged;
}

exorlink2_rewrites exorlink_two( const cube& a, const cube& b )
{
  const auto diff = a.difference_mask( b );
  assert( popcount64( diff ) == 2 );
  const auto lo = lowest_bit( diff );
  const auto hi = diff & ( diff - 1u );
  const exorlink2_rewrites rw{ replace_with_merged( a, b, hi ), replace_with_merged( b, a, lo ),
                               replace_with_merged( a, b, lo ), replace_with_merged( b, a, hi ) };
  assert( xor_equivalent_exhaustive( a, b, rw.a1, &rw.b1 ) );
  assert( xor_equivalent_exhaustive( a, b, rw.a2, &rw.b2 ) );
  return rw;
}

namespace
{

inline std::uint64_t mix64( std::uint64_t x )
{
  // splitmix64 finalizer; cheap and well distributed for open addressing.
  x += 0x9e3779b97f4a7c15ull;
  x = ( x ^ ( x >> 30 ) ) * 0xbf58476d1ce4e5b9ull;
  x = ( x ^ ( x >> 27 ) ) * 0x94d049bb133111ebull;
  return x ^ ( x >> 31 );
}

inline std::uint64_t hash_cube( const cube& c )
{
  return mix64( c.mask * 0x9e3779b97f4a7c15ull ^ c.polarity );
}

constexpr std::uint32_t invalid_index = 0xffffffffu;

/// Open-addressing multimap from a 64-bit signature hash to slot indices.
/// Insert-only (stale entries are filtered by the caller), linear probing,
/// no per-entry allocation.
class sig_table
{
public:
  void reset( std::size_t expected )
  {
    std::size_t cap = 64;
    while ( cap < 2u * expected )
    {
      cap <<= 1;
    }
    entries_.assign( cap, { 0u, invalid_index } );
    mask_ = cap - 1u;
    size_ = 0;
  }

  void insert( std::uint64_t h, std::uint32_t v )
  {
    if ( 4u * ( size_ + 1u ) >= 3u * entries_.size() )
    {
      grow();
    }
    auto i = h & mask_;
    while ( entries_[i].value != invalid_index )
    {
      i = ( i + 1u ) & mask_;
    }
    entries_[i] = { h, v };
    ++size_;
  }

  /// Invokes f on every value stored under hash h; stops (returning true)
  /// when f returns true.  Contract: f must not mutate this table unless it
  /// returns true (iteration stops immediately in that case).
  template<typename F>
  bool for_each_match( std::uint64_t h, F&& f ) const
  {
    for ( auto i = h & mask_; entries_[i].value != invalid_index; i = ( i + 1u ) & mask_ )
    {
      if ( entries_[i].hash == h && f( entries_[i].value ) )
      {
        return true;
      }
    }
    return false;
  }

private:
  struct entry
  {
    std::uint64_t hash;
    std::uint32_t value;
  };

  void grow()
  {
    std::vector<entry> old;
    old.swap( entries_ );
    entries_.assign( old.size() * 2u, { 0u, invalid_index } );
    mask_ = entries_.size() - 1u;
    for ( const auto& e : old )
    {
      if ( e.value != invalid_index )
      {
        auto i = e.hash & mask_;
        while ( entries_[i].value != invalid_index )
        {
          i = ( i + 1u ) & mask_;
        }
        entries_[i] = e;
      }
    }
  }

  std::vector<entry> entries_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Open-addressing exact map from a cube to its slot index, with erase
/// support (backward-shift deletion is avoided by tombstones; the table is
/// rebuilt every pass, which bounds tombstone accumulation).
class exact_table
{
public:
  void reset( std::size_t expected )
  {
    std::size_t cap = 64;
    while ( cap < 2u * expected )
    {
      cap <<= 1;
    }
    entries_.assign( cap, entry{} );
    mask_ = cap - 1u;
    used_ = 0;
  }

  /// Returns the slot index stored for `c`, or invalid_index.
  std::uint32_t find( const cube& c ) const
  {
    for ( auto i = hash_cube( c ) & mask_; entries_[i].state != state_empty;
          i = ( i + 1u ) & mask_ )
    {
      if ( entries_[i].state == state_full && entries_[i].key == c )
      {
        return entries_[i].value;
      }
    }
    return invalid_index;
  }

  void insert( const cube& c, std::uint32_t v )
  {
    if ( 4u * ( used_ + 1u ) >= 3u * entries_.size() )
    {
      grow();
    }
    auto i = hash_cube( c ) & mask_;
    while ( entries_[i].state == state_full )
    {
      i = ( i + 1u ) & mask_;
    }
    if ( entries_[i].state == state_empty )
    {
      ++used_;
    }
    entries_[i] = { c, v, state_full };
  }

  void erase( const cube& c )
  {
    for ( auto i = hash_cube( c ) & mask_; entries_[i].state != state_empty;
          i = ( i + 1u ) & mask_ )
    {
      if ( entries_[i].state == state_full && entries_[i].key == c )
      {
        entries_[i].state = state_tombstone;
        return;
      }
    }
  }

private:
  static constexpr std::uint8_t state_empty = 0;
  static constexpr std::uint8_t state_full = 1;
  static constexpr std::uint8_t state_tombstone = 2;

  struct entry
  {
    cube key;
    std::uint32_t value = invalid_index;
    std::uint8_t state = state_empty;
  };

  void grow()
  {
    std::vector<entry> old;
    old.swap( entries_ );
    entries_.assign( old.size() * 2u, entry{} );
    mask_ = entries_.size() - 1u;
    used_ = 0;
    for ( const auto& e : old )
    {
      if ( e.state == state_full )
      {
        insert( e.key, e.value );
      }
    }
  }

  std::vector<entry> entries_;
  std::size_t mask_ = 0;
  std::size_t used_ = 0;
};

/// The minimization engine.  Terms live in a slot array where
/// output_mask == 0 marks a tombstone; dead slots are compacted once per
/// pass.  An exact (mask, polarity) -> slot map maintains the invariant
/// that all alive cubes are distinct (identical cubes are merged eagerly by
/// XOR-ing their output masks), and per-output-group structures provide the
/// pair-generation index: distance-1 partners are found by exact lookups of
/// the single-literal perturbations of a cube, distance-2 partners by
/// probes of a two-position wildcard signature table.  Slots carry a dirty
/// bit so that passes after the first only re-examine cubes whose
/// neighborhood changed.
class minimizer
{
public:
  explicit minimizer( esop& expression ) : expression_( expression )
  {
    slots_.reserve( expression.terms.size() );
    for ( const auto& t : expression.terms )
    {
      slots_.push_back( { t.product, t.output_mask, true } );
    }
  }

  void run( const exorcism_params& params, exorcism_stats& stats )
  {
    pair_budget_ = params.pair_budget;
    stop_ = params.stop;
    poll_deadline_ = !stop_.unlimited();
    for ( unsigned pass = 0; pass < params.max_passes && !exhausted_; ++pass )
    {
      ++stats.passes;
      improved_ = false;
      if ( needs_rebuild_ )
      {
        compact();
        build_indexes();
        needs_rebuild_ = false;
      }
      for ( std::uint32_t i = 0; i < slots_.size() && !exhausted_; ++i )
      {
        if ( !slots_[i].dirty || !alive( i ) )
        {
          continue;
        }
        while ( alive( i ) && improve_once( i ) )
        {
        }
        // i is exhausted: any future pair involving it will be discovered
        // from the partner's side when that partner becomes dirty.  Flush
        // its (possibly stale) signature entries once, with the final cube.
        slots_[i].dirty = false;
        if ( alive( i ) && slots_[i].sig_stale )
        {
          flush_sig( i );
        }
      }
      if ( !improved_ )
      {
        break;
      }
    }
    stats.pairs_attempted = attempts_;
    stats.budget_exhausted = exhausted_;
    compact();
    expression_.terms.clear();
    expression_.terms.reserve( slots_.size() );
    for ( const auto& s : slots_ )
    {
      expression_.terms.push_back( { s.product, s.output_mask } );
    }
  }

private:
  struct slot
  {
    cube product;
    std::uint64_t output_mask = 0;
    bool dirty = true;
    bool sig_stale = false; ///< signature entries lag the cube; flushed on exhaust
  };

  struct group
  {
    std::uint64_t output_mask = 0;
    std::vector<std::uint32_t> members;
    std::uint64_t universe = 0; ///< union of member cube masks
    bool indexed = false;       ///< perturbation probes instead of member scan
    bool use_sig2 = false;      ///< wildcard signature table for distance 2
    bool sig2_built = false;    ///< built lazily on first dirty member
    sig_table sig2;
  };

  bool alive( std::uint32_t i ) const { return slots_[i].output_mask != 0u; }

  static std::uint64_t sig2_hash( const cube& c, std::uint64_t pq )
  {
    return mix64( ( c.mask & ~pq ) * 0x9e3779b97f4a7c15ull ^ ( c.polarity & ~pq ) ^
                  ( pq * 0xc2b2ae3d27d4eb4full ) );
  }

  void build_indexes()
  {
    exact_.reset( slots_.size() );
    groups_.clear();
    for ( std::uint32_t i = 0; i < slots_.size(); ++i )
    {
      if ( !alive( i ) )
      {
        continue;
      }
      insert_exact( i );
      if ( !alive( i ) ) // absorbed into an identical cube
      {
        continue;
      }
      auto& g = groups_[slots_[i].output_mask];
      g.output_mask = slots_[i].output_mask;
      g.members.push_back( i );
      g.universe |= slots_[i].product.mask;
    }
    for ( auto& [mask, g] : groups_ )
    {
      const auto ubits = static_cast<std::size_t>( popcount64( g.universe ) );
      // Perturbation probes cost ~2|U| hash lookups per cube (each an order
      // of magnitude pricier than the word ops of a member scan); a member
      // scan costs |members| word operations.  The factor is the measured
      // cost ratio of a cache-missing probe to a scan step.
      g.indexed = g.members.size() > 24u * std::max<std::size_t>( 1u, ubits );
      // The signature table costs ~|U|^2/2 insertions and probes per cube;
      // cap its footprint so wide universes fall back to the member scan.
      const auto sig2_entries = g.members.size() * ( ubits * ubits / 2u );
      g.use_sig2 = g.indexed && g.members.size() > ubits * ubits / 2u &&
                   sig2_entries <= ( std::size_t{ 1 } << 22 );
    }
  }

  /// Registers slot i in the exact map; if an identical alive cube exists,
  /// the two terms are merged (output masks XOR-ed) and i dies.
  void insert_exact( std::uint32_t i )
  {
    const auto k = exact_.find( slots_[i].product );
    if ( k == invalid_index )
    {
      exact_.insert( slots_[i].product, i );
      return;
    }
    absorb( k, i );
  }

  /// Merges slot i into slot k holding an identical cube: the output masks
  /// XOR, i dies, and k migrates to the group of the combined mask.
  void absorb( std::uint32_t k, std::uint32_t i )
  {
    slots_[k].output_mask ^= slots_[i].output_mask;
    slots_[k].dirty = true;
    slots_[i].output_mask = 0;
    if ( slots_[k].output_mask == 0u )
    {
      exact_.erase( slots_[k].product );
    }
    else
    {
      move_to_group( k );
    }
    improved_ = true;
  }

  /// Registers slot k in the group of its (new) output mask.  Incremental:
  /// only when k's cube would widen the group's variable universe (which
  /// would invalidate the signature table of every other member) do we fall
  /// back to a full reindex.
  void move_to_group( std::uint32_t k )
  {
    auto& g = groups_[slots_[k].output_mask];
    if ( g.members.empty() )
    {
      g.output_mask = slots_[k].output_mask;
      g.universe = slots_[k].product.mask;
      g.members.push_back( k );
      return;
    }
    if ( ( slots_[k].product.mask & ~g.universe ) != 0u )
    {
      needs_rebuild_ = true;
      return;
    }
    g.members.push_back( k );
    if ( g.use_sig2 && g.sig2_built )
    {
      insert_sig2( g, k );
    }
  }

  void build_sig2( group& g )
  {
    const auto ubits = static_cast<std::size_t>( popcount64( g.universe ) );
    g.sig2.reset( g.members.size() * ( ubits * ( ubits - 1u ) / 2u + 1u ) );
    for ( const auto i : g.members )
    {
      if ( alive( i ) && slots_[i].output_mask == g.output_mask )
      {
        insert_sig2( g, i );
        slots_[i].sig_stale = false;
      }
    }
    g.sig2_built = true;
  }

  void insert_sig2( group& g, std::uint32_t i )
  {
    const auto& c = slots_[i].product;
    for ( auto wp = g.universe; wp != 0u; wp &= wp - 1u )
    {
      const auto pbit = lowest_bit( wp );
      for ( auto wq = wp & ( wp - 1u ); wq != 0u; wq &= wq - 1u )
      {
        const auto qbit = lowest_bit( wq );
        // Mirror of the probe-side restriction: a profitable distance-2
        // pair always has a diff position held by both cubes, so pairs
        // touching none of this cube's literals need no entry.
        if ( ( ( pbit | qbit ) & c.mask ) == 0u )
        {
          continue;
        }
        g.sig2.insert( sig2_hash( c, pbit | qbit ), i );
      }
    }
  }

  void kill( std::uint32_t i )
  {
    exact_.erase( slots_[i].product );
    slots_[i].output_mask = 0;
  }

  /// Gives slot i a new cube, eagerly merging with an existing identical
  /// cube (which may tombstone i, or annihilate both).
  void set_product( std::uint32_t i, const cube& c )
  {
    exact_.erase( slots_[i].product );
    const auto k = exact_.find( c );
    if ( k != invalid_index )
    {
      absorb( k, i );
      return;
    }
    slots_[i].product = c;
    slots_[i].dirty = true;
    slots_[i].sig_stale = true;
    exact_.insert( c, i );
  }

  /// Re-registers the final cube of an exhausted slot in its group's
  /// signature table.  Deferred from set_product: a slot rewritten several
  /// times in one improvement chain inserts its signatures only once, and
  /// completeness is preserved because a stale slot is always dirty and
  /// thus probes for its own partners before the algorithm converges.
  void flush_sig( std::uint32_t i )
  {
    slots_[i].sig_stale = false;
    const auto git = groups_.find( slots_[i].output_mask );
    if ( git != groups_.end() && git->second.use_sig2 && git->second.sig2_built )
    {
      insert_sig2( git->second, i );
    }
  }

  /// Applies the best rewrite available for the (alive, same-group) pair
  /// (i, j); returns true if one was applied.
  bool try_pair( std::uint32_t i, std::uint32_t j )
  {
    const auto& a = slots_[i].product;
    const auto& b = slots_[j].product;
    const auto diff = a.difference_mask( b );
    const auto d = popcount64( diff );
    if ( d == 1 )
    {
      const auto merged = exorlink_merge( a, b );
      kill( j );
      set_product( i, merged );
      improved_ = true;
      return true;
    }
    if ( d == 2 )
    {
      const int old_literals = a.num_literals() + b.num_literals();
      const auto rw = exorlink_two( a, b );
      const cube* ca = nullptr;
      const cube* cb = nullptr;
      if ( rw.a1.num_literals() + rw.b1.num_literals() < old_literals )
      {
        ca = &rw.a1;
        cb = &rw.b1;
      }
      else if ( rw.a2.num_literals() + rw.b2.num_literals() < old_literals )
      {
        ca = &rw.a2;
        cb = &rw.b2;
      }
      if ( ca == nullptr )
      {
        return false;
      }
      set_product( j, *cb );
      set_product( i, *ca );
      improved_ = true;
      return true;
    }
    return false;
  }

  bool valid_partner( std::uint32_t i, std::uint32_t j, const group& g ) const
  {
    return j != i && slots_[j].output_mask == g.output_mask;
  }

  /// One pair-improvement attempt against the run's budget/deadline.
  /// Polling the clock every 256 attempts (starting with the first, so a
  /// pre-expired deadline stops the run promptly) keeps the overhead
  /// negligible against the index probes an attempt performs.
  bool budget_hit()
  {
    if ( exhausted_ )
    {
      return true;
    }
    ++attempts_;
    if ( pair_budget_ != 0 && attempts_ > pair_budget_ )
    {
      exhausted_ = true;
      return true;
    }
    if ( poll_deadline_ && ( attempts_ & 255u ) == 1u && stop_.expired() )
    {
      exhausted_ = true;
      return true;
    }
    return false;
  }

  /// Looks for one improving rewrite involving slot i via the group's pair
  /// index (or a member scan for small groups).
  bool improve_once( std::uint32_t i )
  {
    if ( budget_hit() )
    {
      return false;
    }
    const auto git = groups_.find( slots_[i].output_mask );
    if ( git == groups_.end() )
    {
      return false; // output mask changed mid-pass; regrouped next pass
    }
    auto& g = git->second;
    if ( !g.indexed )
    {
      // Two-phase scan: apply a term-count-reducing distance-1 merge
      // before any literal-only distance-2 rewrite.
      for ( const auto j : g.members )
      {
        if ( valid_partner( i, j, g ) &&
             popcount64( slots_[i].product.difference_mask( slots_[j].product ) ) == 1u &&
             try_pair( i, j ) )
        {
          return true;
        }
      }
      for ( const auto j : g.members )
      {
        if ( valid_partner( i, j, g ) &&
             popcount64( slots_[i].product.difference_mask( slots_[j].product ) ) == 2u &&
             try_pair( i, j ) )
        {
          return true;
        }
      }
      return false;
    }
    // Distance-1 partners: exact lookups of the single-literal
    // perturbations of the cube (the two other literal states at each
    // position of the group's variable universe).
    {
      const auto a = slots_[i].product;
      for ( auto w = g.universe; w != 0u; w &= w - 1u )
      {
        const auto pbit = lowest_bit( w );
        cube alt1, alt2;
        if ( a.mask & pbit )
        {
          alt1 = cube{ a.mask & ~pbit, a.polarity & ~pbit };      // drop the literal
          alt2 = cube{ a.mask, a.polarity ^ pbit };               // flip its polarity
        }
        else
        {
          alt1 = cube{ a.mask | pbit, a.polarity | pbit };        // add positive
          alt2 = cube{ a.mask | pbit, a.polarity & ~pbit };       // add negative
        }
        for ( const auto* alt : { &alt1, &alt2 } )
        {
          const auto j = exact_.find( *alt );
          if ( j != invalid_index && valid_partner( i, j, g ) && try_pair( i, j ) )
          {
            return true;
          }
        }
      }
    }
    // Distance-2 partners: wildcard-signature probes (or a member scan when
    // the group is too small to amortize the signature table).
    if ( g.use_sig2 )
    {
      if ( !g.sig2_built )
      {
        build_sig2( g );
      }
      const auto a = slots_[i].product;
      for ( auto wp = g.universe; wp != 0u; wp &= wp - 1u )
      {
        const auto pbit = lowest_bit( wp );
        for ( auto wq = wp & ( wp - 1u ); wq != 0u; wq &= wq - 1u )
        {
          const auto qbit = lowest_bit( wq );
          // A distance-2 rewrite only reduces literals when the merged
          // state is `absent` at some position, which requires both cubes
          // to hold that variable — so at least one of p, q must be a
          // literal of this cube.
          if ( ( ( pbit | qbit ) & a.mask ) == 0u )
          {
            continue;
          }
          const bool applied = g.sig2.for_each_match(
              sig2_hash( a, pbit | qbit ), [&]( std::uint32_t j ) {
                if ( !valid_partner( i, j, g ) )
                {
                  return false;
                }
                const auto d =
                    popcount64( slots_[i].product.difference_mask( slots_[j].product ) );
                return d >= 1u && d <= 2u && try_pair( i, j );
              } );
          if ( applied )
          {
            return true;
          }
        }
      }
    }
    else
    {
      for ( const auto j : g.members )
      {
        if ( valid_partner( i, j, g ) &&
             popcount64( slots_[i].product.difference_mask( slots_[j].product ) ) == 2u &&
             try_pair( i, j ) )
        {
          return true;
        }
      }
    }
    return false;
  }

  void compact()
  {
    slots_.erase( std::remove_if( slots_.begin(), slots_.end(),
                                  []( const slot& s ) { return s.output_mask == 0u; } ),
                  slots_.end() );
  }

  esop& expression_;
  std::vector<slot> slots_;
  exact_table exact_;
  std::unordered_map<std::uint64_t, group> groups_;
  bool improved_ = false;
  bool needs_rebuild_ = true;
  std::uint64_t pair_budget_ = 0;
  deadline stop_;
  bool poll_deadline_ = false;
  std::uint64_t attempts_ = 0;
  bool exhausted_ = false;
};

} // namespace

exorcism_stats exorcism( esop& expression, unsigned max_passes )
{
  exorcism_params params;
  params.max_passes = max_passes;
  return exorcism( expression, params );
}

exorcism_stats exorcism( esop& expression, const exorcism_params& params )
{
  exorcism_stats stats;
  expression.merge_identical_cubes();
  stats.initial_terms = expression.num_terms();
  stats.initial_literals = expression.num_literals();

  minimizer engine( expression );
  engine.run( params, stats );

  stats.final_terms = expression.num_terms();
  stats.final_literals = expression.num_literals();
  return stats;
}

} // namespace qsyn
