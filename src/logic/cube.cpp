#include "cube.hpp"

#include <algorithm>
#include <cassert>

namespace qsyn
{

truth_table cube::to_truth_table( unsigned num_vars ) const
{
  auto tt = truth_table::constant( num_vars, true );
  for ( unsigned v = 0; v < num_vars; ++v )
  {
    if ( has_var( v ) )
    {
      const auto proj = truth_table::projection( num_vars, v );
      tt &= var_polarity( v ) ? proj : ~proj;
    }
  }
  return tt;
}

std::string cube::to_string( unsigned num_vars ) const
{
  if ( mask == 0u )
  {
    return "1";
  }
  std::string s;
  for ( unsigned v = 0; v < num_vars && v < 64u; ++v )
  {
    if ( !has_var( v ) )
    {
      continue;
    }
    if ( !s.empty() )
    {
      s += ' ';
    }
    if ( !var_polarity( v ) )
    {
      s += '!';
    }
    s += 'x';
    s += std::to_string( v );
  }
  return s;
}

std::size_t esop::num_literals() const
{
  std::size_t count = 0;
  for ( const auto& term : terms )
  {
    count += static_cast<std::size_t>( term.product.num_literals() ) *
             static_cast<std::size_t>( popcount64( term.output_mask ) );
  }
  return count;
}

bool esop::evaluate( std::uint64_t input, unsigned output ) const
{
  assert( output < num_outputs );
  bool value = false;
  for ( const auto& term : terms )
  {
    if ( ( ( term.output_mask >> output ) & 1u ) && term.product.evaluate( input ) )
    {
      value = !value;
    }
  }
  return value;
}

truth_table esop::output_truth_table( unsigned output ) const
{
  assert( output < num_outputs );
  truth_table tt( num_inputs );
  for ( const auto& term : terms )
  {
    if ( ( term.output_mask >> output ) & 1u )
    {
      tt ^= term.product.to_truth_table( num_inputs );
    }
  }
  return tt;
}

std::size_t esop::merge_identical_cubes()
{
  // Sort by cube, XOR runs of identical cubes in place; same deterministic
  // (cube-ordered) result as the former std::map implementation without the
  // per-node allocations.
  const auto before = terms.size();
  std::sort( terms.begin(), terms.end(), []( const esop_term& a, const esop_term& b ) {
    return a.product < b.product;
  } );
  std::size_t out = 0;
  for ( std::size_t i = 0; i < terms.size(); )
  {
    auto mask = terms[i].output_mask;
    std::size_t j = i + 1u;
    for ( ; j < terms.size() && terms[j].product == terms[i].product; ++j )
    {
      mask ^= terms[j].output_mask;
    }
    if ( mask != 0u )
    {
      terms[out++] = { terms[i].product, mask };
    }
    i = j;
  }
  terms.resize( out );
  return before - terms.size();
}

} // namespace qsyn
