/// \file aig.hpp
/// \brief And-inverter graphs with structural hashing.
///
/// AIGs are the workhorse multi-level logic representation of the classical
/// logic synthesis level (Fig. 1 of the paper): the Verilog elaborator emits
/// an AIG, the dc2-style optimizer transforms it, and the three reversible
/// flows consume it (collapsed to a truth table / BDD, collapsed to an ESOP,
/// or mapped to an XMG).
///
/// Nodes are stored in topological order; literals are `2 * node +
/// complement` with node 0 being constant false, nodes 1..num_pis() the
/// primary inputs, and all further nodes two-input ANDs.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "truth_table.hpp"

namespace qsyn
{

/// Literal: 2 * node index + complement flag.
using aig_lit = std::uint32_t;

inline aig_lit make_lit( std::uint32_t node, bool complemented = false )
{
  return ( node << 1 ) | ( complemented ? 1u : 0u );
}
inline std::uint32_t lit_node( aig_lit lit ) { return lit >> 1; }
inline bool lit_complemented( aig_lit lit ) { return lit & 1u; }
inline aig_lit lit_not( aig_lit lit ) { return lit ^ 1u; }
inline aig_lit lit_not_cond( aig_lit lit, bool cond ) { return lit ^ ( cond ? 1u : 0u ); }

/// An and-inverter graph.
class aig_network
{
public:
  static constexpr aig_lit const0 = 0u; ///< constant-false literal
  static constexpr aig_lit const1 = 1u; ///< constant-true literal

  /// Creates an AIG with `num_pis` primary inputs.
  explicit aig_network( unsigned num_pis = 0u );

  /// Adds one more primary input; only valid before any AND node exists.
  aig_lit add_pi();

  unsigned num_pis() const { return num_pis_; }
  unsigned num_pos() const { return static_cast<unsigned>( pos_.size() ); }
  /// Number of AND nodes (the usual AIG size metric).
  std::size_t num_ands() const { return nodes_.size() - 1u - num_pis_; }
  /// Total number of nodes including constant and PIs.
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Literal of the i-th primary input (0-based).
  aig_lit pi( unsigned index ) const;
  /// Constant literal.
  static aig_lit get_constant( bool value ) { return value ? const1 : const0; }

  bool is_constant( std::uint32_t node ) const { return node == 0u; }
  bool is_pi( std::uint32_t node ) const { return node >= 1u && node <= num_pis_; }
  bool is_and( std::uint32_t node ) const { return node > num_pis_; }

  /// Fanins of an AND node.
  aig_lit fanin0( std::uint32_t node ) const { return nodes_[node].fanin0; }
  aig_lit fanin1( std::uint32_t node ) const { return nodes_[node].fanin1; }

  /// --- construction (with structural hashing and constant folding) -------

  aig_lit create_and( aig_lit a, aig_lit b );
  aig_lit create_or( aig_lit a, aig_lit b );
  aig_lit create_xor( aig_lit a, aig_lit b );
  aig_lit create_xnor( aig_lit a, aig_lit b ) { return lit_not( create_xor( a, b ) ); }
  /// Multiplexer: sel ? t : e.
  aig_lit create_mux( aig_lit sel, aig_lit t, aig_lit e );
  /// Majority of three.
  aig_lit create_maj( aig_lit a, aig_lit b, aig_lit c );
  /// Balanced AND / OR / XOR over a list of literals.
  aig_lit create_nary_and( std::vector<aig_lit> lits );
  aig_lit create_nary_or( std::vector<aig_lit> lits );
  aig_lit create_nary_xor( std::vector<aig_lit> lits );

  /// Registers a primary output.
  void add_po( aig_lit lit ) { pos_.push_back( lit ); }
  aig_lit po( unsigned index ) const { return pos_.at( index ); }
  const std::vector<aig_lit>& pos() const { return pos_; }
  void set_po( unsigned index, aig_lit lit ) { pos_.at( index ) = lit; }

  /// --- analysis -----------------------------------------------------------

  /// Number of fanouts per node (POs included).
  std::vector<std::uint32_t> fanout_counts() const;

  /// Logic level per node (PIs and constant have level 0).
  std::vector<std::uint32_t> levels() const;
  /// Depth of the network (max PO level).
  std::uint32_t depth() const;

  /// Truth-table simulation of every primary output over all num_pis()
  /// input assignments; requires num_pis() <= 20.
  std::vector<truth_table> simulate_outputs() const;
  /// Truth tables of every node (index = node id); requires num_pis() <= 20.
  std::vector<truth_table> simulate_nodes() const;

  /// 64-way parallel pattern simulation; `pi_patterns` holds one 64-bit
  /// pattern word per PI, the result one word per PO.
  std::vector<std::uint64_t> simulate_patterns( const std::vector<std::uint64_t>& pi_patterns ) const;

  /// Evaluates all POs on a single input assignment.
  std::vector<bool> evaluate( const std::vector<bool>& inputs ) const;

  /// Returns a copy containing only nodes reachable from the POs, preserving
  /// topological order.  `old_to_new`, if non-null, receives the literal map
  /// (indexed by old node, value = new literal of the non-complemented old
  /// node, or 0xffffffff for dropped nodes).
  aig_network cleanup( std::vector<aig_lit>* old_to_new = nullptr ) const;

  /// Stable 64-bit structural content hash over (num_pis, every AND node's
  /// fanin literals in topological order, every PO literal).  Identical
  /// node/PO structure hashes identically across processes and platforms;
  /// it is the design-identity component of artifact-store keys and the
  /// cross-design reuse guard of `flow_artifact_cache`.
  std::uint64_t content_hash() const;

  /// Appends one AND node with exactly the given fanins — no folding, no
  /// normalization, no strash lookup (the strash table is still updated, so
  /// later `create_and` calls keep hash-consing).  This exists for the
  /// artifact-store deserializer, which must reproduce a serialized network
  /// node-for-node; fanin literals must reference existing nodes.
  aig_lit append_raw_and( aig_lit fanin0, aig_lit fanin1 );

  /// Graphviz dump for debugging / the Figure-1 bench.
  std::string to_dot( const std::string& name = "aig" ) const;

private:
  struct node_data
  {
    aig_lit fanin0 = 0;
    aig_lit fanin1 = 0;
  };

  struct fanin_pair_hash
  {
    std::size_t operator()( const std::pair<aig_lit, aig_lit>& p ) const
    {
      return hash_combine( p.first, p.second );
    }
  };

  unsigned num_pis_ = 0;
  std::vector<node_data> nodes_; ///< node 0 = constant false
  std::vector<aig_lit> pos_;
  std::unordered_map<std::pair<aig_lit, aig_lit>, std::uint32_t, fanin_pair_hash> strash_;
};

} // namespace qsyn
