/// \file cube.hpp
/// \brief Product-term cubes and multi-output ESOP expressions.
///
/// A cube is a conjunction of literals over up to 64 variables.  ESOP
/// (exclusive sum of products) expressions are the 2-level representation
/// used by the ESOP-based reversible synthesis flow (Sec. IV-B): each cube
/// becomes one mixed-polarity multiple-controlled Toffoli gate.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "truth_table.hpp"

namespace qsyn
{

/// A product term over at most 64 Boolean variables.
///
/// `mask` has a 1 for every variable appearing in the cube; `polarity` has a
/// 1 for every positive literal (bits outside `mask` must be 0).  The empty
/// cube (mask == 0) is the constant-1 product term.
struct cube
{
  std::uint64_t mask = 0;
  std::uint64_t polarity = 0;

  cube() = default;
  cube( std::uint64_t mask_, std::uint64_t polarity_ ) : mask( mask_ ), polarity( polarity_ & mask_ ) {}

  /// Number of literals.
  int num_literals() const { return popcount64( mask ); }

  /// True if the cube contains variable `var`.
  bool has_var( unsigned var ) const { return ( mask >> var ) & 1u; }
  /// Polarity of variable `var` (true = positive literal); only meaningful
  /// if has_var(var).
  bool var_polarity( unsigned var ) const { return ( polarity >> var ) & 1u; }

  /// Adds literal `var` with the given polarity.
  void add_literal( unsigned var, bool positive )
  {
    mask |= std::uint64_t{ 1 } << var;
    if ( positive )
    {
      polarity |= std::uint64_t{ 1 } << var;
    }
    else
    {
      polarity &= ~( std::uint64_t{ 1 } << var );
    }
  }

  /// Removes variable `var` from the cube.
  void remove_literal( unsigned var )
  {
    mask &= ~( std::uint64_t{ 1 } << var );
    polarity &= ~( std::uint64_t{ 1 } << var );
  }

  /// Evaluates the cube on an input assignment.
  bool evaluate( std::uint64_t input ) const
  {
    return ( ( input ^ polarity ) & mask ) == 0u;
  }

  /// Bit-mask of the differing literal positions between two cubes:
  /// variables that appear in exactly one cube, or in both with opposite
  /// polarity.  Shared by distance() and the exorcism pair index.
  std::uint64_t difference_mask( const cube& other ) const
  {
    return ( mask ^ other.mask ) |
           ( ( polarity ^ other.polarity ) & ( mask & other.mask ) );
  }

  /// Number of differing literal positions between two cubes.
  int distance( const cube& other ) const
  {
    return popcount64( difference_mask( other ) );
  }

  bool operator==( const cube& other ) const
  {
    return mask == other.mask && polarity == other.polarity;
  }
  bool operator!=( const cube& other ) const { return !( *this == other ); }
  bool operator<( const cube& other ) const
  {
    return mask != other.mask ? mask < other.mask : polarity < other.polarity;
  }

  /// Truth table of the cube as a function of `num_vars` variables.
  truth_table to_truth_table( unsigned num_vars ) const;

  /// Readable string, e.g. "x0 !x2 x5" ("1" for the empty cube).
  std::string to_string( unsigned num_vars = 64u ) const;
};

/// One term of a multi-output ESOP: a cube and the set of outputs it feeds.
struct esop_term
{
  cube product;
  std::uint64_t output_mask = 0; ///< bit j set => cube is XOR-ed into output j

  bool operator==( const esop_term& other ) const
  {
    return product == other.product && output_mask == other.output_mask;
  }
};

/// A multi-output exclusive sum of products over `num_inputs` variables and
/// `num_outputs` functions (both at most 64).
struct esop
{
  unsigned num_inputs = 0;
  unsigned num_outputs = 0;
  std::vector<esop_term> terms;

  /// Total number of cubes (terms).
  std::size_t num_terms() const { return terms.size(); }

  /// Sum over all terms of (cube literal count) * (number of outputs fed).
  std::size_t num_literals() const;

  /// Evaluates output `output` on an input assignment.
  bool evaluate( std::uint64_t input, unsigned output ) const;

  /// Truth table of output `output`.
  truth_table output_truth_table( unsigned output ) const;

  /// Merges terms with identical cubes (XOR-ing their output masks) and
  /// drops terms with empty output masks.  Returns the number of removed
  /// terms.
  std::size_t merge_identical_cubes();
};

} // namespace qsyn
