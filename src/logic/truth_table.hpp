/// \file truth_table.hpp
/// \brief Dynamic truth tables over up to ~26 variables.
///
/// Truth tables are the explicit function representation used by the
/// functional reversible synthesis flow (Sec. IV-A of the paper) and by the
/// small-function resynthesis engines (ISOP refactoring, PSDKRO ESOP
/// extraction, xmglut-style LUT resynthesis).  Bit i of the table stores
/// f(x) for the input assignment x whose binary encoding is i, with
/// variable 0 being the least significant input.

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "../common/bits.hpp"

namespace qsyn
{

/// A Boolean function of `num_vars()` variables stored as an explicit bit
/// vector of length 2^num_vars.
class truth_table
{
public:
  /// Constructs the constant-0 function over `num_vars` variables.
  explicit truth_table( unsigned num_vars = 0u );

  unsigned num_vars() const { return num_vars_; }
  std::uint64_t num_bits() const { return std::uint64_t{ 1 } << num_vars_; }

  /// Raw 64-bit blocks (LSB-first).  Unused high bits of the last block are
  /// kept zero by all operations.
  const std::vector<std::uint64_t>& blocks() const { return blocks_; }
  std::vector<std::uint64_t>& blocks() { return blocks_; }

  bool get_bit( std::uint64_t index ) const;
  void set_bit( std::uint64_t index, bool value );

  /// Number of ones in the table (the function's on-set size).
  std::uint64_t count_ones() const;

  bool is_const0() const;
  bool is_const1() const;

  /// --- constructions -----------------------------------------------------

  /// The i-th projection variable x_i as a function of `num_vars` variables.
  static truth_table projection( unsigned num_vars, unsigned var );
  /// Constant function.
  static truth_table constant( unsigned num_vars, bool value );
  /// Parses a binary string "1011..." with bit 0 rightmost; length must be a
  /// power of two.
  static truth_table from_binary_string( const std::string& s );
  /// Builds a table from a per-index predicate.  The predicate is invoked in
  /// ascending index order; each 64-bit block is assembled in a register and
  /// stored once.
  template<typename Fn>
  static truth_table from_function( unsigned num_vars, Fn&& fn )
  {
    truth_table tt( num_vars );
    const auto bits = tt.num_bits();
    for ( std::size_t blk = 0; blk < tt.blocks_.size(); ++blk )
    {
      const std::uint64_t base = std::uint64_t{ blk } << 6;
      const unsigned count = static_cast<unsigned>( std::min<std::uint64_t>( 64u, bits - base ) );
      std::uint64_t word = 0;
      for ( unsigned o = 0; o < count; ++o )
      {
        if ( fn( base + o ) )
        {
          word |= std::uint64_t{ 1 } << o;
        }
      }
      tt.blocks_[blk] = word;
    }
    return tt;
  }

  /// --- operations --------------------------------------------------------

  truth_table operator~() const;
  truth_table operator&( const truth_table& other ) const;
  truth_table operator|( const truth_table& other ) const;
  truth_table operator^( const truth_table& other ) const;
  bool operator==( const truth_table& other ) const;
  bool operator!=( const truth_table& other ) const { return !( *this == other ); }

  truth_table& operator&=( const truth_table& other );
  truth_table& operator|=( const truth_table& other );
  truth_table& operator^=( const truth_table& other );

  /// Positive/negative cofactor with respect to variable `var`; the result
  /// still has num_vars variables (the cofactored variable becomes don't
  /// care and is duplicated).
  truth_table cofactor( unsigned var, bool polarity ) const;

  /// True if the function depends on variable `var`.
  bool depends_on( unsigned var ) const;

  /// Support of the function as a list of variable indices.
  std::vector<unsigned> support() const;

  /// Shrinks the table to exactly its support variables (order preserved);
  /// `var_map`, if non-null, receives for each new variable the original
  /// variable index.
  truth_table shrink_to_support( std::vector<unsigned>* var_map = nullptr ) const;

  /// Evaluates the function on the given input assignment (bit i of `input`
  /// is variable i).
  bool evaluate( std::uint64_t input ) const { return get_bit( input ); }

  /// Hex string, most significant block first (kitty-style).
  std::string to_hex() const;
  /// Binary string, index 2^n-1 leftmost.
  std::string to_binary() const;

  /// FNV-style hash for use in unordered containers / memo tables.
  std::size_t hash() const;

private:
  void mask_off_unused();

  unsigned num_vars_;
  std::vector<std::uint64_t> blocks_;
};

/// Hash functor for truth tables.
struct truth_table_hash
{
  std::size_t operator()( const truth_table& tt ) const { return tt.hash(); }
};

} // namespace qsyn
