#include "truth_table.hpp"

#include <cassert>
#include <stdexcept>

namespace qsyn
{

truth_table::truth_table( unsigned num_vars )
    : num_vars_( num_vars ), blocks_( num_blocks_for( num_vars ), 0u )
{
}

bool truth_table::get_bit( std::uint64_t index ) const
{
  assert( index < num_bits() );
  return ( blocks_[index >> 6] >> ( index & 63u ) ) & 1u;
}

void truth_table::set_bit( std::uint64_t index, bool value )
{
  assert( index < num_bits() );
  if ( value )
  {
    blocks_[index >> 6] |= std::uint64_t{ 1 } << ( index & 63u );
  }
  else
  {
    blocks_[index >> 6] &= ~( std::uint64_t{ 1 } << ( index & 63u ) );
  }
}

std::uint64_t truth_table::count_ones() const
{
  std::uint64_t count = 0;
  for ( auto b : blocks_ )
  {
    count += static_cast<std::uint64_t>( popcount64( b ) );
  }
  return count;
}

bool truth_table::is_const0() const
{
  for ( auto b : blocks_ )
  {
    if ( b != 0u )
    {
      return false;
    }
  }
  return true;
}

bool truth_table::is_const1() const
{
  const auto mask = block_mask( num_vars_ );
  if ( blocks_.size() == 1u )
  {
    return blocks_[0] == mask;
  }
  for ( auto b : blocks_ )
  {
    if ( b != ~std::uint64_t{ 0 } )
    {
      return false;
    }
  }
  return true;
}

truth_table truth_table::projection( unsigned num_vars, unsigned var )
{
  assert( var < num_vars );
  truth_table tt( num_vars );
  if ( var < 6u )
  {
    const auto pattern = projections[var];
    for ( auto& b : tt.blocks_ )
    {
      b = pattern;
    }
  }
  else
  {
    // Variable var toggles every 2^(var-6) blocks.
    const std::size_t period = std::size_t{ 1 } << ( var - 6u );
    for ( std::size_t i = 0; i < tt.blocks_.size(); ++i )
    {
      tt.blocks_[i] = ( ( i / period ) & 1u ) ? ~std::uint64_t{ 0 } : 0u;
    }
  }
  tt.mask_off_unused();
  return tt;
}

truth_table truth_table::constant( unsigned num_vars, bool value )
{
  truth_table tt( num_vars );
  if ( value )
  {
    for ( auto& b : tt.blocks_ )
    {
      b = ~std::uint64_t{ 0 };
    }
    tt.mask_off_unused();
  }
  return tt;
}

truth_table truth_table::from_binary_string( const std::string& s )
{
  if ( s.empty() || !is_power_of_two( s.size() ) )
  {
    throw std::invalid_argument( "truth_table::from_binary_string: length must be a power of two" );
  }
  const unsigned num_vars = ceil_log2( s.size() );
  truth_table tt( num_vars );
  for ( std::size_t i = 0; i < s.size(); ++i )
  {
    const char c = s[s.size() - 1u - i];
    if ( c == '1' )
    {
      tt.set_bit( i, true );
    }
    else if ( c != '0' )
    {
      throw std::invalid_argument( "truth_table::from_binary_string: invalid character" );
    }
  }
  return tt;
}

truth_table truth_table::operator~() const
{
  truth_table result( num_vars_ );
  for ( std::size_t i = 0; i < blocks_.size(); ++i )
  {
    result.blocks_[i] = ~blocks_[i];
  }
  result.mask_off_unused();
  return result;
}

truth_table truth_table::operator&( const truth_table& other ) const
{
  truth_table result = *this;
  result &= other;
  return result;
}

truth_table truth_table::operator|( const truth_table& other ) const
{
  truth_table result = *this;
  result |= other;
  return result;
}

truth_table truth_table::operator^( const truth_table& other ) const
{
  truth_table result = *this;
  result ^= other;
  return result;
}

bool truth_table::operator==( const truth_table& other ) const
{
  return num_vars_ == other.num_vars_ && blocks_ == other.blocks_;
}

truth_table& truth_table::operator&=( const truth_table& other )
{
  assert( num_vars_ == other.num_vars_ );
  for ( std::size_t i = 0; i < blocks_.size(); ++i )
  {
    blocks_[i] &= other.blocks_[i];
  }
  return *this;
}

truth_table& truth_table::operator|=( const truth_table& other )
{
  assert( num_vars_ == other.num_vars_ );
  for ( std::size_t i = 0; i < blocks_.size(); ++i )
  {
    blocks_[i] |= other.blocks_[i];
  }
  return *this;
}

truth_table& truth_table::operator^=( const truth_table& other )
{
  assert( num_vars_ == other.num_vars_ );
  for ( std::size_t i = 0; i < blocks_.size(); ++i )
  {
    blocks_[i] ^= other.blocks_[i];
  }
  return *this;
}

truth_table truth_table::cofactor( unsigned var, bool polarity ) const
{
  assert( var < num_vars_ );
  truth_table result( num_vars_ );
  if ( var < 6u )
  {
    const auto proj = projections[var];
    const auto keep = polarity ? proj : ~proj;
    const unsigned shift = 1u << var;
    for ( std::size_t i = 0; i < blocks_.size(); ++i )
    {
      const auto selected = blocks_[i] & keep;
      result.blocks_[i] = polarity ? ( selected | ( selected >> shift ) )
                                   : ( selected | ( selected << shift ) );
    }
  }
  else
  {
    const std::size_t period = std::size_t{ 1 } << ( var - 6u );
    for ( std::size_t i = 0; i < blocks_.size(); ++i )
    {
      const bool upper = ( i / period ) & 1u;
      const std::size_t partner = upper ? i - period : i + period;
      result.blocks_[i] = ( upper == polarity ) ? blocks_[i] : blocks_[partner];
    }
  }
  result.mask_off_unused();
  return result;
}

bool truth_table::depends_on( unsigned var ) const
{
  return cofactor( var, false ) != cofactor( var, true );
}

std::vector<unsigned> truth_table::support() const
{
  std::vector<unsigned> vars;
  for ( unsigned v = 0; v < num_vars_; ++v )
  {
    if ( depends_on( v ) )
    {
      vars.push_back( v );
    }
  }
  return vars;
}

truth_table truth_table::shrink_to_support( std::vector<unsigned>* var_map ) const
{
  const auto vars = support();
  if ( var_map )
  {
    *var_map = vars;
  }
  truth_table result( static_cast<unsigned>( vars.size() ) );
  for ( std::uint64_t i = 0; i < result.num_bits(); ++i )
  {
    std::uint64_t full = 0;
    for ( std::size_t v = 0; v < vars.size(); ++v )
    {
      if ( ( i >> v ) & 1u )
      {
        full |= std::uint64_t{ 1 } << vars[v];
      }
    }
    if ( get_bit( full ) )
    {
      result.set_bit( i, true );
    }
  }
  return result;
}

std::string truth_table::to_hex() const
{
  static const char* digits = "0123456789abcdef";
  const std::size_t num_digits =
      num_vars_ <= 2u ? 1u : ( std::size_t{ 1 } << ( num_vars_ - 2u ) );
  std::string s( num_digits, '0' );
  for ( std::size_t d = 0; d < num_digits; ++d )
  {
    const auto nibble = ( blocks_[d >> 4] >> ( ( d & 15u ) * 4u ) ) & 0xfu;
    s[num_digits - 1u - d] = digits[nibble];
  }
  return s;
}

std::string truth_table::to_binary() const
{
  std::string s( num_bits(), '0' );
  for ( std::uint64_t i = 0; i < num_bits(); ++i )
  {
    if ( get_bit( i ) )
    {
      s[num_bits() - 1u - i] = '1';
    }
  }
  return s;
}

std::size_t truth_table::hash() const
{
  std::size_t seed = num_vars_;
  for ( auto b : blocks_ )
  {
    seed = hash_combine( seed, static_cast<std::size_t>( b ) );
  }
  return seed;
}

void truth_table::mask_off_unused()
{
  if ( num_vars_ < 6u )
  {
    blocks_[0] &= block_mask( num_vars_ );
  }
}

} // namespace qsyn
