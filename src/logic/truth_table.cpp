#include "truth_table.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace qsyn
{

truth_table::truth_table( unsigned num_vars )
    : num_vars_( num_vars ), blocks_( num_blocks_for( num_vars ), 0u )
{
}

bool truth_table::get_bit( std::uint64_t index ) const
{
  assert( index < num_bits() );
  return ( blocks_[index >> 6] >> ( index & 63u ) ) & 1u;
}

void truth_table::set_bit( std::uint64_t index, bool value )
{
  assert( index < num_bits() );
  if ( value )
  {
    blocks_[index >> 6] |= std::uint64_t{ 1 } << ( index & 63u );
  }
  else
  {
    blocks_[index >> 6] &= ~( std::uint64_t{ 1 } << ( index & 63u ) );
  }
}

std::uint64_t truth_table::count_ones() const
{
  std::uint64_t count = 0;
  for ( auto b : blocks_ )
  {
    count += static_cast<std::uint64_t>( popcount64( b ) );
  }
  return count;
}

bool truth_table::is_const0() const
{
  for ( auto b : blocks_ )
  {
    if ( b != 0u )
    {
      return false;
    }
  }
  return true;
}

bool truth_table::is_const1() const
{
  const auto mask = block_mask( num_vars_ );
  if ( blocks_.size() == 1u )
  {
    return blocks_[0] == mask;
  }
  for ( auto b : blocks_ )
  {
    if ( b != ~std::uint64_t{ 0 } )
    {
      return false;
    }
  }
  return true;
}

truth_table truth_table::projection( unsigned num_vars, unsigned var )
{
  assert( var < num_vars );
  truth_table tt( num_vars );
  if ( var < 6u )
  {
    const auto pattern = projections[var];
    for ( auto& b : tt.blocks_ )
    {
      b = pattern;
    }
  }
  else
  {
    // Variable var toggles every 2^(var-6) blocks.
    const std::size_t period = std::size_t{ 1 } << ( var - 6u );
    for ( std::size_t i = 0; i < tt.blocks_.size(); ++i )
    {
      tt.blocks_[i] = ( ( i / period ) & 1u ) ? ~std::uint64_t{ 0 } : 0u;
    }
  }
  tt.mask_off_unused();
  return tt;
}

truth_table truth_table::constant( unsigned num_vars, bool value )
{
  truth_table tt( num_vars );
  if ( value )
  {
    for ( auto& b : tt.blocks_ )
    {
      b = ~std::uint64_t{ 0 };
    }
    tt.mask_off_unused();
  }
  return tt;
}

truth_table truth_table::from_binary_string( const std::string& s )
{
  if ( s.empty() || !is_power_of_two( s.size() ) )
  {
    throw std::invalid_argument( "truth_table::from_binary_string: length must be a power of two" );
  }
  const unsigned num_vars = ceil_log2( s.size() );
  truth_table tt( num_vars );
  // Assemble whole 64-bit blocks instead of issuing one set_bit per
  // character; bit i of the table is s[size - 1 - i].
  for ( std::size_t blk = 0; blk < tt.blocks_.size(); ++blk )
  {
    const std::size_t base = blk << 6;
    const std::size_t count = std::min<std::size_t>( 64u, s.size() - base );
    std::uint64_t word = 0;
    for ( std::size_t o = 0; o < count; ++o )
    {
      const char c = s[s.size() - 1u - ( base + o )];
      if ( c == '1' )
      {
        word |= std::uint64_t{ 1 } << o;
      }
      else if ( c != '0' )
      {
        throw std::invalid_argument( "truth_table::from_binary_string: invalid character" );
      }
    }
    tt.blocks_[blk] = word;
  }
  return tt;
}

truth_table truth_table::operator~() const
{
  truth_table result( num_vars_ );
  for ( std::size_t i = 0; i < blocks_.size(); ++i )
  {
    result.blocks_[i] = ~blocks_[i];
  }
  result.mask_off_unused();
  return result;
}

truth_table truth_table::operator&( const truth_table& other ) const
{
  truth_table result = *this;
  result &= other;
  return result;
}

truth_table truth_table::operator|( const truth_table& other ) const
{
  truth_table result = *this;
  result |= other;
  return result;
}

truth_table truth_table::operator^( const truth_table& other ) const
{
  truth_table result = *this;
  result ^= other;
  return result;
}

bool truth_table::operator==( const truth_table& other ) const
{
  return num_vars_ == other.num_vars_ && blocks_ == other.blocks_;
}

truth_table& truth_table::operator&=( const truth_table& other )
{
  assert( num_vars_ == other.num_vars_ );
  for ( std::size_t i = 0; i < blocks_.size(); ++i )
  {
    blocks_[i] &= other.blocks_[i];
  }
  return *this;
}

truth_table& truth_table::operator|=( const truth_table& other )
{
  assert( num_vars_ == other.num_vars_ );
  for ( std::size_t i = 0; i < blocks_.size(); ++i )
  {
    blocks_[i] |= other.blocks_[i];
  }
  return *this;
}

truth_table& truth_table::operator^=( const truth_table& other )
{
  assert( num_vars_ == other.num_vars_ );
  for ( std::size_t i = 0; i < blocks_.size(); ++i )
  {
    blocks_[i] ^= other.blocks_[i];
  }
  return *this;
}

truth_table truth_table::cofactor( unsigned var, bool polarity ) const
{
  assert( var < num_vars_ );
  truth_table result( num_vars_ );
  if ( var < 6u )
  {
    const auto proj = projections[var];
    const auto keep = polarity ? proj : ~proj;
    const unsigned shift = 1u << var;
    for ( std::size_t i = 0; i < blocks_.size(); ++i )
    {
      const auto selected = blocks_[i] & keep;
      result.blocks_[i] = polarity ? ( selected | ( selected >> shift ) )
                                   : ( selected | ( selected << shift ) );
    }
  }
  else
  {
    const std::size_t period = std::size_t{ 1 } << ( var - 6u );
    for ( std::size_t i = 0; i < blocks_.size(); ++i )
    {
      const bool upper = ( i / period ) & 1u;
      const std::size_t partner = upper ? i - period : i + period;
      result.blocks_[i] = ( upper == polarity ) ? blocks_[i] : blocks_[partner];
    }
  }
  result.mask_off_unused();
  return result;
}

bool truth_table::depends_on( unsigned var ) const
{
  assert( var < num_vars_ );
  if ( var < 6u )
  {
    // Compare the var=1 half of each block against the var=0 half in place:
    // bit p (with index-bit var clear) differs from bit p + 2^var iff
    // (b ^ (b >> 2^var)) is set at p.
    const unsigned shift = 1u << var;
    const auto low_half = ~projections[var];
    for ( const auto b : blocks_ )
    {
      if ( ( ( b ^ ( b >> shift ) ) & low_half ) != 0u )
      {
        return true;
      }
    }
    return false;
  }
  // Variable lives across blocks: compare block i against block i + period
  // for every i whose period-bit is clear.
  const std::size_t period = std::size_t{ 1 } << ( var - 6u );
  for ( std::size_t base = 0; base < blocks_.size(); base += 2u * period )
  {
    for ( std::size_t k = 0; k < period; ++k )
    {
      if ( blocks_[base + k] != blocks_[base + period + k] )
      {
        return true;
      }
    }
  }
  return false;
}

std::vector<unsigned> truth_table::support() const
{
  // Single sweep over the blocks accumulating a support bit-mask: the six
  // word-level variables are tested with shifted self-comparisons, the
  // block-level variables by comparing partner blocks.
  std::uint64_t found = 0;
  const unsigned word_vars = std::min( num_vars_, 6u );
  const std::uint64_t word_done = ( std::uint64_t{ 1 } << word_vars ) - 1u;
  const std::uint64_t all_done =
      num_vars_ >= 64u ? ~std::uint64_t{ 0 } : ( std::uint64_t{ 1 } << num_vars_ ) - 1u;
  for ( std::size_t i = 0; i < blocks_.size() && found != all_done; ++i )
  {
    const auto b = blocks_[i];
    if ( ( found & word_done ) != word_done )
    {
      for ( unsigned v = 0; v < word_vars; ++v )
      {
        if ( !( ( found >> v ) & 1u ) &&
             ( ( b ^ ( b >> ( 1u << v ) ) ) & ~projections[v] ) != 0u )
        {
          found |= std::uint64_t{ 1 } << v;
        }
      }
    }
    for ( unsigned v = 6u; v < num_vars_; ++v )
    {
      const std::size_t period = std::size_t{ 1 } << ( v - 6u );
      if ( !( ( found >> v ) & 1u ) && !( i & period ) && b != blocks_[i + period] )
      {
        found |= std::uint64_t{ 1 } << v;
      }
    }
  }
  std::vector<unsigned> vars;
  vars.reserve( static_cast<std::size_t>( popcount64( found ) ) );
  for ( auto w = found; w != 0u; w &= w - 1u )
  {
    vars.push_back( static_cast<unsigned>( lsb_index( w ) ) );
  }
  return vars;
}

namespace
{

/// Packs the bits of `b` whose position has index-bit `var` clear into the
/// low half of the word (log-step fold; the kept positions form the regular
/// pattern ~projections[var]).
std::uint64_t compress_remove_bit( std::uint64_t b, unsigned var )
{
  auto x = b & ~projections[var];
  for ( unsigned s = var; s < 5u; ++s )
  {
    x = ( x | ( x >> ( 1u << s ) ) ) & ~projections[s + 1u];
  }
  return x;
}

/// Removes variable `var` from a table of `num_vars` variables stored in
/// `blocks` by keeping the var=0 half (only valid when the function does not
/// depend on `var`).  Operates with whole-block moves / word-level folds.
void remove_var_from_blocks( std::vector<std::uint64_t>& blocks, unsigned num_vars, unsigned var )
{
  if ( var >= 6u )
  {
    // Gather the blocks whose period-bit is clear, preserving order.
    const std::size_t period = std::size_t{ 1 } << ( var - 6u );
    std::size_t out = 0;
    for ( std::size_t base = 0; base < blocks.size(); base += 2u * period )
    {
      for ( std::size_t k = 0; k < period; ++k, ++out )
      {
        blocks[out] = blocks[base + k];
      }
    }
  }
  else if ( num_vars > 6u )
  {
    // Each block compresses to 32 valid bits; splice block pairs.
    for ( std::size_t i = 0; i < blocks.size(); i += 2u )
    {
      blocks[i >> 1] = compress_remove_bit( blocks[i], var ) |
                       ( compress_remove_bit( blocks[i + 1u], var ) << 32 );
    }
  }
  else
  {
    blocks[0] = compress_remove_bit( blocks[0], var );
  }
  blocks.resize( num_blocks_for( num_vars - 1u ) );
}

} // namespace

truth_table truth_table::shrink_to_support( std::vector<unsigned>* var_map ) const
{
  const auto vars = support();
  if ( var_map )
  {
    *var_map = vars;
  }
  if ( vars.size() == num_vars_ )
  {
    return *this;
  }
  // Drop the non-support variables from highest to lowest so the indices of
  // the remaining variables stay valid during the removal.
  truth_table result = *this;
  std::uint64_t keep = 0;
  for ( const auto v : vars )
  {
    keep |= std::uint64_t{ 1 } << v;
  }
  for ( unsigned v = num_vars_; v-- > 0u; )
  {
    if ( !( ( keep >> v ) & 1u ) )
    {
      remove_var_from_blocks( result.blocks_, result.num_vars_, v );
      --result.num_vars_;
    }
  }
  result.mask_off_unused();
  return result;
}

std::string truth_table::to_hex() const
{
  static const char* digits = "0123456789abcdef";
  const std::size_t num_digits =
      num_vars_ <= 2u ? 1u : ( std::size_t{ 1 } << ( num_vars_ - 2u ) );
  std::string s( num_digits, '0' );
  for ( std::size_t d = 0; d < num_digits; ++d )
  {
    const auto nibble = ( blocks_[d >> 4] >> ( ( d & 15u ) * 4u ) ) & 0xfu;
    s[num_digits - 1u - d] = digits[nibble];
  }
  return s;
}

std::string truth_table::to_binary() const
{
  std::string s( num_bits(), '0' );
  for ( std::uint64_t i = 0; i < num_bits(); ++i )
  {
    if ( get_bit( i ) )
    {
      s[num_bits() - 1u - i] = '1';
    }
  }
  return s;
}

std::size_t truth_table::hash() const
{
  std::size_t seed = num_vars_;
  for ( auto b : blocks_ )
  {
    seed = hash_combine( seed, static_cast<std::size_t>( b ) );
  }
  return seed;
}

void truth_table::mask_off_unused()
{
  if ( num_vars_ < 6u )
  {
    blocks_[0] &= block_mask( num_vars_ );
  }
}

} // namespace qsyn
