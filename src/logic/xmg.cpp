#include "xmg.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace qsyn
{

xmg_network::xmg_network( unsigned num_pis ) : num_pis_( num_pis )
{
  nodes_.resize( 1u + num_pis );
  nodes_[0].kind = node_kind::constant;
  for ( unsigned i = 0; i < num_pis; ++i )
  {
    nodes_[i + 1u].kind = node_kind::pi;
  }
}

xmg_lit xmg_network::pi( unsigned index ) const
{
  assert( index < num_pis_ );
  return ( index + 1u ) << 1;
}

std::size_t xmg_network::num_maj() const
{
  std::size_t count = 0;
  for ( const auto& n : nodes_ )
  {
    if ( n.kind == node_kind::maj )
    {
      ++count;
    }
  }
  return count;
}

std::size_t xmg_network::num_xor() const
{
  std::size_t count = 0;
  for ( const auto& n : nodes_ )
  {
    if ( n.kind == node_kind::xor2 )
    {
      ++count;
    }
  }
  return count;
}

xmg_lit xmg_network::create_maj( xmg_lit a, xmg_lit b, xmg_lit c )
{
  // Sort fanins to canonicalize.
  if ( a > b )
  {
    std::swap( a, b );
  }
  if ( b > c )
  {
    std::swap( b, c );
  }
  if ( a > b )
  {
    std::swap( a, b );
  }
  // Simplifications: duplicate / complementary fanins dominate.
  if ( a == b )
  {
    return a;
  }
  if ( b == c )
  {
    return b;
  }
  if ( a == ( b ^ 1u ) )
  {
    return c;
  }
  if ( b == ( c ^ 1u ) )
  {
    return a;
  }
  // Constant propagation: maj(0,b,c) = b&c, maj(1,b,c) = b|c are *kept* as
  // MAJ nodes (that is how XMGs represent AND/OR), but two constants fold.
  if ( a == const0 && b == const1 )
  {
    return c;
  }
  // Self-duality: maj(!a,!b,!c) = !maj(a,b,c); canonicalize so at most one
  // of the complement patterns is stored.
  bool output_compl = false;
  if ( ( ( a & 1u ) + ( b & 1u ) + ( c & 1u ) ) >= 2u )
  {
    a ^= 1u;
    b ^= 1u;
    c ^= 1u;
    output_compl = true;
    // Re-sort (complementing can change order only between equal nodes with
    // different polarities, which cannot happen here as equal nodes were
    // simplified; order by literal value is preserved per node).
    if ( a > b )
    {
      std::swap( a, b );
    }
    if ( b > c )
    {
      std::swap( b, c );
    }
    if ( a > b )
    {
      std::swap( a, b );
    }
  }
  const std::array<xmg_lit, 4> key = { a, b, c, 0u };
  if ( const auto it = strash_.find( key ); it != strash_.end() )
  {
    return ( ( it->second << 1 ) | ( output_compl ? 1u : 0u ) );
  }
  const auto node = static_cast<std::uint32_t>( nodes_.size() );
  nodes_.push_back( { node_kind::maj, { a, b, c } } );
  strash_.emplace( key, node );
  return ( node << 1 ) | ( output_compl ? 1u : 0u );
}

xmg_lit xmg_network::create_xor( xmg_lit a, xmg_lit b )
{
  // Fold complements into the output phase.
  bool output_compl = ( a & 1u ) ^ ( b & 1u );
  a &= ~1u;
  b &= ~1u;
  if ( a == b )
  {
    return output_compl ? const1 : const0;
  }
  if ( a > b )
  {
    std::swap( a, b );
  }
  if ( a == const0 )
  {
    return b ^ ( output_compl ? 1u : 0u );
  }
  const std::array<xmg_lit, 4> key = { a, b, 0u, 1u };
  if ( const auto it = strash_.find( key ); it != strash_.end() )
  {
    return ( it->second << 1 ) | ( output_compl ? 1u : 0u );
  }
  const auto node = static_cast<std::uint32_t>( nodes_.size() );
  nodes_.push_back( { node_kind::xor2, { a, b, const0 } } );
  strash_.emplace( key, node );
  return ( node << 1 ) | ( output_compl ? 1u : 0u );
}

xmg_lit xmg_network::create_mux( xmg_lit sel, xmg_lit t, xmg_lit e )
{
  // sel ? t : e == (sel & t) | (!sel & e) == maj(maj(sel,t,0), maj(!sel,e,0), 1)
  if ( t == e )
  {
    return t;
  }
  const auto on = create_and( sel, t );
  const auto off = create_and( sel ^ 1u, e );
  return create_or( on, off );
}

xmg_lit xmg_network::create_nary_xor( std::vector<xmg_lit> lits )
{
  if ( lits.empty() )
  {
    return const0;
  }
  while ( lits.size() > 1u )
  {
    std::vector<xmg_lit> next;
    next.reserve( ( lits.size() + 1u ) / 2u );
    for ( std::size_t i = 0; i + 1u < lits.size(); i += 2u )
    {
      next.push_back( create_xor( lits[i], lits[i + 1u] ) );
    }
    if ( lits.size() & 1u )
    {
      next.push_back( lits.back() );
    }
    lits = std::move( next );
  }
  return lits[0];
}

xmg_lit xmg_network::create_nary_and( std::vector<xmg_lit> lits )
{
  if ( lits.empty() )
  {
    return const1;
  }
  while ( lits.size() > 1u )
  {
    std::vector<xmg_lit> next;
    next.reserve( ( lits.size() + 1u ) / 2u );
    for ( std::size_t i = 0; i + 1u < lits.size(); i += 2u )
    {
      next.push_back( create_and( lits[i], lits[i + 1u] ) );
    }
    if ( lits.size() & 1u )
    {
      next.push_back( lits.back() );
    }
    lits = std::move( next );
  }
  return lits[0];
}

std::vector<std::uint32_t> xmg_network::fanout_counts() const
{
  std::vector<std::uint32_t> counts( nodes_.size(), 0u );
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    const unsigned arity = nodes_[n].kind == node_kind::maj ? 3u : 2u;
    for ( unsigned i = 0; i < arity; ++i )
    {
      ++counts[nodes_[n].fanin[i] >> 1];
    }
  }
  for ( const auto po : pos_ )
  {
    ++counts[po >> 1];
  }
  return counts;
}

std::vector<std::uint32_t> xmg_network::levels() const
{
  std::vector<std::uint32_t> level( nodes_.size(), 0u );
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    const unsigned arity = nodes_[n].kind == node_kind::maj ? 3u : 2u;
    std::uint32_t max_in = 0;
    for ( unsigned i = 0; i < arity; ++i )
    {
      max_in = std::max( max_in, level[nodes_[n].fanin[i] >> 1] );
    }
    level[n] = max_in + 1u;
  }
  return level;
}

std::uint32_t xmg_network::depth() const
{
  const auto level = levels();
  std::uint32_t d = 0;
  for ( const auto po : pos_ )
  {
    d = std::max( d, level[po >> 1] );
  }
  return d;
}

std::vector<truth_table> xmg_network::simulate_outputs() const
{
  if ( num_pis_ > 20u )
  {
    throw std::invalid_argument( "xmg_network::simulate_outputs: too many inputs" );
  }
  std::vector<truth_table> tts( nodes_.size(), truth_table( num_pis_ ) );
  for ( unsigned i = 0; i < num_pis_; ++i )
  {
    tts[i + 1u] = truth_table::projection( num_pis_, i );
  }
  const auto lit_tt = [&]( xmg_lit lit ) {
    return ( lit & 1u ) ? ~tts[lit >> 1] : tts[lit >> 1];
  };
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    const auto& fi = nodes_[n].fanin;
    if ( nodes_[n].kind == node_kind::maj )
    {
      const auto a = lit_tt( fi[0] );
      const auto b = lit_tt( fi[1] );
      const auto c = lit_tt( fi[2] );
      tts[n] = ( a & b ) | ( a & c ) | ( b & c );
    }
    else
    {
      tts[n] = lit_tt( fi[0] ) ^ lit_tt( fi[1] );
    }
  }
  std::vector<truth_table> result;
  result.reserve( pos_.size() );
  for ( const auto po : pos_ )
  {
    result.push_back( ( po & 1u ) ? ~tts[po >> 1] : tts[po >> 1] );
  }
  return result;
}

std::vector<std::uint64_t> xmg_network::simulate_patterns( const std::vector<std::uint64_t>& pi_patterns ) const
{
  assert( pi_patterns.size() == num_pis_ );
  std::vector<std::uint64_t> values( nodes_.size(), 0u );
  for ( unsigned i = 0; i < num_pis_; ++i )
  {
    values[i + 1u] = pi_patterns[i];
  }
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    const auto& fi = nodes_[n].fanin;
    if ( nodes_[n].kind == node_kind::maj )
    {
      const auto a = pattern_of( fi[0], values );
      const auto b = pattern_of( fi[1], values );
      const auto c = pattern_of( fi[2], values );
      values[n] = ( a & b ) | ( a & c ) | ( b & c );
    }
    else
    {
      values[n] = pattern_of( fi[0], values ) ^ pattern_of( fi[1], values );
    }
  }
  std::vector<std::uint64_t> result;
  result.reserve( pos_.size() );
  for ( const auto po : pos_ )
  {
    result.push_back( pattern_of( po, values ) );
  }
  return result;
}

std::vector<bool> xmg_network::evaluate( const std::vector<bool>& inputs ) const
{
  std::vector<std::uint64_t> patterns( num_pis_ );
  for ( unsigned i = 0; i < num_pis_; ++i )
  {
    patterns[i] = inputs[i] ? ~std::uint64_t{ 0 } : 0u;
  }
  const auto out = simulate_patterns( patterns );
  std::vector<bool> result( out.size() );
  for ( std::size_t i = 0; i < out.size(); ++i )
  {
    result[i] = out[i] & 1u;
  }
  return result;
}

xmg_lit xmg_network::append_raw_node( node_kind kind, const std::array<xmg_lit, 3>& fanin )
{
  if ( kind != node_kind::maj && kind != node_kind::xor2 )
  {
    throw std::invalid_argument( "xmg_network::append_raw_node: kind must be maj or xor2" );
  }
  for ( const auto f : fanin )
  {
    if ( ( f >> 1 ) >= nodes_.size() )
    {
      throw std::invalid_argument( "xmg_network::append_raw_node: fanin references a future node" );
    }
  }
  const auto node = static_cast<std::uint32_t>( nodes_.size() );
  nodes_.push_back( { kind, fanin } );
  // Mirror the strash key layout of create_maj / create_xor so hash-consed
  // construction keeps working after a raw append.
  const std::array<xmg_lit, 4> key = kind == node_kind::maj
                                         ? std::array<xmg_lit, 4>{ fanin[0], fanin[1], fanin[2], 0u }
                                         : std::array<xmg_lit, 4>{ fanin[0], fanin[1], 0u, 1u };
  strash_.emplace( key, node );
  return node << 1;
}

xmg_network xmg_network::cleanup() const
{
  std::vector<bool> reachable( nodes_.size(), false );
  std::vector<std::uint32_t> stack;
  for ( const auto po : pos_ )
  {
    stack.push_back( po >> 1 );
  }
  while ( !stack.empty() )
  {
    const auto n = stack.back();
    stack.pop_back();
    if ( reachable[n] || n <= num_pis_ )
    {
      continue;
    }
    reachable[n] = true;
    const unsigned arity = nodes_[n].kind == node_kind::maj ? 3u : 2u;
    for ( unsigned i = 0; i < arity; ++i )
    {
      stack.push_back( nodes_[n].fanin[i] >> 1 );
    }
  }
  xmg_network result( num_pis_ );
  std::vector<xmg_lit> map( nodes_.size(), 0u );
  for ( unsigned i = 0; i < num_pis_; ++i )
  {
    map[i + 1u] = result.pi( i );
  }
  const auto map_lit = [&]( xmg_lit lit ) { return map[lit >> 1] ^ ( lit & 1u ); };
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    if ( !reachable[n] )
    {
      continue;
    }
    const auto& fi = nodes_[n].fanin;
    if ( nodes_[n].kind == node_kind::maj )
    {
      map[n] = result.create_maj( map_lit( fi[0] ), map_lit( fi[1] ), map_lit( fi[2] ) );
    }
    else
    {
      map[n] = result.create_xor( map_lit( fi[0] ), map_lit( fi[1] ) );
    }
  }
  for ( const auto po : pos_ )
  {
    result.add_po( map_lit( po ) );
  }
  return result;
}

std::string xmg_network::to_dot( const std::string& name ) const
{
  std::ostringstream os;
  os << "digraph " << name << " {\n  rankdir=BT;\n";
  for ( unsigned i = 0; i < num_pis_; ++i )
  {
    os << "  n" << ( i + 1u ) << " [shape=triangle,label=\"x" << i << "\"];\n";
  }
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    const bool maj = nodes_[n].kind == node_kind::maj;
    os << "  n" << n << " [shape=circle,label=\"" << ( maj ? "MAJ" : "XOR" ) << "\"];\n";
    const unsigned arity = maj ? 3u : 2u;
    for ( unsigned i = 0; i < arity; ++i )
    {
      const auto f = nodes_[n].fanin[i];
      os << "  n" << ( f >> 1 ) << " -> n" << n
         << ( ( f & 1u ) ? " [style=dashed]" : "" ) << ";\n";
    }
  }
  for ( std::size_t i = 0; i < pos_.size(); ++i )
  {
    os << "  y" << i << " [shape=invtriangle,label=\"y" << i << "\"];\n";
    os << "  n" << ( pos_[i] >> 1 ) << " -> y" << i
       << ( ( pos_[i] & 1u ) ? " [style=dashed]" : "" ) << ";\n";
  }
  os << "}\n";
  return os.str();
}

} // namespace qsyn
