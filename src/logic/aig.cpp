#include "aig.hpp"

#include "../common/content_hash.hpp"

#include <algorithm>
#include <cassert>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace qsyn
{

aig_network::aig_network( unsigned num_pis ) : num_pis_( num_pis )
{
  nodes_.resize( 1u + num_pis );
}

aig_lit aig_network::add_pi()
{
  if ( num_ands() != 0u )
  {
    throw std::logic_error( "aig_network::add_pi: cannot add PI after AND nodes exist" );
  }
  ++num_pis_;
  nodes_.emplace_back();
  return make_lit( num_pis_ );
}

aig_lit aig_network::pi( unsigned index ) const
{
  assert( index < num_pis_ );
  return make_lit( index + 1u );
}

aig_lit aig_network::create_and( aig_lit a, aig_lit b )
{
  // Constant folding and trivial cases.
  if ( a == const0 || b == const0 )
  {
    return const0;
  }
  if ( a == const1 )
  {
    return b;
  }
  if ( b == const1 )
  {
    return a;
  }
  if ( a == b )
  {
    return a;
  }
  if ( a == lit_not( b ) )
  {
    return const0;
  }
  // Normalize fanin order for structural hashing.
  if ( a > b )
  {
    std::swap( a, b );
  }
  const auto key = std::make_pair( a, b );
  if ( const auto it = strash_.find( key ); it != strash_.end() )
  {
    return make_lit( it->second );
  }
  const auto node = static_cast<std::uint32_t>( nodes_.size() );
  nodes_.push_back( { a, b } );
  strash_.emplace( key, node );
  return make_lit( node );
}

aig_lit aig_network::create_or( aig_lit a, aig_lit b )
{
  return lit_not( create_and( lit_not( a ), lit_not( b ) ) );
}

aig_lit aig_network::create_xor( aig_lit a, aig_lit b )
{
  // a ^ b = !(a & b) & !( !a & !b )
  const auto both = create_and( a, b );
  const auto neither = create_and( lit_not( a ), lit_not( b ) );
  return create_and( lit_not( both ), lit_not( neither ) );
}

aig_lit aig_network::create_mux( aig_lit sel, aig_lit t, aig_lit e )
{
  if ( t == e )
  {
    return t;
  }
  const auto on = create_and( sel, t );
  const auto off = create_and( lit_not( sel ), e );
  return create_or( on, off );
}

aig_lit aig_network::create_maj( aig_lit a, aig_lit b, aig_lit c )
{
  const auto ab = create_and( a, b );
  const auto ac = create_and( a, c );
  const auto bc = create_and( b, c );
  return create_or( create_or( ab, ac ), bc );
}

aig_lit aig_network::create_nary_and( std::vector<aig_lit> lits )
{
  if ( lits.empty() )
  {
    return const1;
  }
  // Balanced reduction keeps the depth logarithmic.
  while ( lits.size() > 1u )
  {
    std::vector<aig_lit> next;
    next.reserve( ( lits.size() + 1u ) / 2u );
    for ( std::size_t i = 0; i + 1u < lits.size(); i += 2u )
    {
      next.push_back( create_and( lits[i], lits[i + 1u] ) );
    }
    if ( lits.size() & 1u )
    {
      next.push_back( lits.back() );
    }
    lits = std::move( next );
  }
  return lits[0];
}

aig_lit aig_network::create_nary_or( std::vector<aig_lit> lits )
{
  for ( auto& l : lits )
  {
    l = lit_not( l );
  }
  return lit_not( create_nary_and( std::move( lits ) ) );
}

aig_lit aig_network::create_nary_xor( std::vector<aig_lit> lits )
{
  if ( lits.empty() )
  {
    return const0;
  }
  while ( lits.size() > 1u )
  {
    std::vector<aig_lit> next;
    next.reserve( ( lits.size() + 1u ) / 2u );
    for ( std::size_t i = 0; i + 1u < lits.size(); i += 2u )
    {
      next.push_back( create_xor( lits[i], lits[i + 1u] ) );
    }
    if ( lits.size() & 1u )
    {
      next.push_back( lits.back() );
    }
    lits = std::move( next );
  }
  return lits[0];
}

std::vector<std::uint32_t> aig_network::fanout_counts() const
{
  std::vector<std::uint32_t> counts( nodes_.size(), 0u );
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    ++counts[lit_node( nodes_[n].fanin0 )];
    ++counts[lit_node( nodes_[n].fanin1 )];
  }
  for ( const auto po : pos_ )
  {
    ++counts[lit_node( po )];
  }
  return counts;
}

std::vector<std::uint32_t> aig_network::levels() const
{
  std::vector<std::uint32_t> level( nodes_.size(), 0u );
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    level[n] = 1u + std::max( level[lit_node( nodes_[n].fanin0 )],
                              level[lit_node( nodes_[n].fanin1 )] );
  }
  return level;
}

std::uint32_t aig_network::depth() const
{
  const auto level = levels();
  std::uint32_t d = 0;
  for ( const auto po : pos_ )
  {
    d = std::max( d, level[lit_node( po )] );
  }
  return d;
}

std::vector<truth_table> aig_network::simulate_nodes() const
{
  if ( num_pis_ > 20u )
  {
    throw std::invalid_argument( "aig_network::simulate_nodes: too many inputs for explicit simulation" );
  }
  std::vector<truth_table> tts( nodes_.size(), truth_table( num_pis_ ) );
  for ( unsigned i = 0; i < num_pis_; ++i )
  {
    tts[i + 1u] = truth_table::projection( num_pis_, i );
  }
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    const auto f0 = nodes_[n].fanin0;
    const auto f1 = nodes_[n].fanin1;
    auto t0 = lit_complemented( f0 ) ? ~tts[lit_node( f0 )] : tts[lit_node( f0 )];
    const auto& t1n = tts[lit_node( f1 )];
    if ( lit_complemented( f1 ) )
    {
      t0 &= ~t1n;
    }
    else
    {
      t0 &= t1n;
    }
    tts[n] = std::move( t0 );
  }
  return tts;
}

std::vector<truth_table> aig_network::simulate_outputs() const
{
  const auto tts = simulate_nodes();
  std::vector<truth_table> result;
  result.reserve( pos_.size() );
  for ( const auto po : pos_ )
  {
    result.push_back( lit_complemented( po ) ? ~tts[lit_node( po )] : tts[lit_node( po )] );
  }
  return result;
}

std::vector<std::uint64_t> aig_network::simulate_patterns( const std::vector<std::uint64_t>& pi_patterns ) const
{
  assert( pi_patterns.size() == num_pis_ );
  std::vector<std::uint64_t> values( nodes_.size(), 0u );
  for ( unsigned i = 0; i < num_pis_; ++i )
  {
    values[i + 1u] = pi_patterns[i];
  }
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    const auto f0 = nodes_[n].fanin0;
    const auto f1 = nodes_[n].fanin1;
    const auto v0 = values[lit_node( f0 )] ^ ( lit_complemented( f0 ) ? ~std::uint64_t{ 0 } : 0u );
    const auto v1 = values[lit_node( f1 )] ^ ( lit_complemented( f1 ) ? ~std::uint64_t{ 0 } : 0u );
    values[n] = v0 & v1;
  }
  std::vector<std::uint64_t> result;
  result.reserve( pos_.size() );
  for ( const auto po : pos_ )
  {
    result.push_back( values[lit_node( po )] ^ ( lit_complemented( po ) ? ~std::uint64_t{ 0 } : 0u ) );
  }
  return result;
}

std::vector<bool> aig_network::evaluate( const std::vector<bool>& inputs ) const
{
  assert( inputs.size() == num_pis_ );
  std::vector<std::uint64_t> patterns( num_pis_ );
  for ( unsigned i = 0; i < num_pis_; ++i )
  {
    patterns[i] = inputs[i] ? ~std::uint64_t{ 0 } : 0u;
  }
  const auto out = simulate_patterns( patterns );
  std::vector<bool> result( out.size() );
  for ( std::size_t i = 0; i < out.size(); ++i )
  {
    result[i] = out[i] & 1u;
  }
  return result;
}

aig_network aig_network::cleanup( std::vector<aig_lit>* old_to_new ) const
{
  constexpr aig_lit unmapped = 0xffffffffu;
  std::vector<aig_lit> map( nodes_.size(), unmapped );
  map[0] = const0;
  aig_network result( num_pis_ );
  for ( unsigned i = 0; i < num_pis_; ++i )
  {
    map[i + 1u] = result.pi( i );
  }
  // Mark reachable nodes.
  std::vector<bool> reachable( nodes_.size(), false );
  std::vector<std::uint32_t> stack;
  for ( const auto po : pos_ )
  {
    stack.push_back( lit_node( po ) );
  }
  while ( !stack.empty() )
  {
    const auto n = stack.back();
    stack.pop_back();
    if ( reachable[n] || !is_and( n ) )
    {
      continue;
    }
    reachable[n] = true;
    stack.push_back( lit_node( nodes_[n].fanin0 ) );
    stack.push_back( lit_node( nodes_[n].fanin1 ) );
  }
  // Copy reachable AND nodes in (original, hence topological) order.
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    if ( !reachable[n] )
    {
      continue;
    }
    const auto f0 = nodes_[n].fanin0;
    const auto f1 = nodes_[n].fanin1;
    const auto m0 = lit_not_cond( map[lit_node( f0 )], lit_complemented( f0 ) );
    const auto m1 = lit_not_cond( map[lit_node( f1 )], lit_complemented( f1 ) );
    map[n] = result.create_and( m0, m1 );
  }
  for ( const auto po : pos_ )
  {
    result.add_po( lit_not_cond( map[lit_node( po )], lit_complemented( po ) ) );
  }
  if ( old_to_new )
  {
    *old_to_new = std::move( map );
  }
  return result;
}

std::uint64_t aig_network::content_hash() const
{
  content_hasher h;
  h.update_u32( num_pis_ );
  h.update_u32( static_cast<std::uint32_t>( nodes_.size() ) );
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    h.update_u32( nodes_[n].fanin0 );
    h.update_u32( nodes_[n].fanin1 );
  }
  h.update_u32( static_cast<std::uint32_t>( pos_.size() ) );
  for ( const auto po : pos_ )
  {
    h.update_u32( po );
  }
  return h.digest();
}

aig_lit aig_network::append_raw_and( aig_lit fanin0, aig_lit fanin1 )
{
  if ( lit_node( fanin0 ) >= nodes_.size() || lit_node( fanin1 ) >= nodes_.size() )
  {
    throw std::invalid_argument( "aig_network::append_raw_and: fanin references a future node" );
  }
  const auto node = static_cast<std::uint32_t>( nodes_.size() );
  nodes_.push_back( { fanin0, fanin1 } );
  const auto key = fanin0 <= fanin1 ? std::make_pair( fanin0, fanin1 )
                                    : std::make_pair( fanin1, fanin0 );
  strash_.emplace( key, node ); // keeps the first node of a duplicate pair
  return make_lit( node );
}

std::string aig_network::to_dot( const std::string& name ) const
{
  std::ostringstream os;
  os << "digraph " << name << " {\n  rankdir=BT;\n";
  for ( unsigned i = 0; i < num_pis_; ++i )
  {
    os << "  n" << ( i + 1u ) << " [shape=triangle,label=\"x" << i << "\"];\n";
  }
  for ( std::uint32_t n = num_pis_ + 1u; n < nodes_.size(); ++n )
  {
    os << "  n" << n << " [shape=circle,label=\"&\"];\n";
    for ( const auto f : { nodes_[n].fanin0, nodes_[n].fanin1 } )
    {
      os << "  n" << lit_node( f ) << " -> n" << n
         << ( lit_complemented( f ) ? " [style=dashed]" : "" ) << ";\n";
    }
  }
  for ( std::size_t i = 0; i < pos_.size(); ++i )
  {
    os << "  y" << i << " [shape=invtriangle,label=\"y" << i << "\"];\n";
    os << "  n" << lit_node( pos_[i] ) << " -> y" << i
       << ( lit_complemented( pos_[i] ) ? " [style=dashed]" : "" ) << ";\n";
  }
  os << "}\n";
  return os.str();
}

} // namespace qsyn
