/// \file xmg.hpp
/// \brief XOR-majority graphs (XMGs).
///
/// XMGs are the logic representation used by the hierarchical reversible
/// synthesis flow (Sec. IV-C): MAJ (majority-of-three) nodes cost a single
/// Toffoli gate each, XOR nodes cost only CNOTs (zero T gates), and
/// inverters are free (they fold into control polarities).  AND and OR are
/// represented as MAJ gates with a constant input, following [15].

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "truth_table.hpp"

namespace qsyn
{

/// Literal: 2 * node index + complement flag (same convention as the AIG).
using xmg_lit = std::uint32_t;

/// An XOR-majority graph.
class xmg_network
{
public:
  static constexpr xmg_lit const0 = 0u;
  static constexpr xmg_lit const1 = 1u;

  enum class node_kind : std::uint8_t
  {
    constant,
    pi,
    maj,
    xor2
  };

  explicit xmg_network( unsigned num_pis = 0u );

  unsigned num_pis() const { return num_pis_; }
  unsigned num_pos() const { return static_cast<unsigned>( pos_.size() ); }
  std::size_t num_nodes() const { return nodes_.size(); }
  /// Number of logic nodes (MAJ + XOR).
  std::size_t num_gates() const { return nodes_.size() - 1u - num_pis_; }
  /// Number of MAJ nodes (each costs one Toffoli in hierarchical synthesis).
  std::size_t num_maj() const;
  /// Number of XOR nodes (T-free).
  std::size_t num_xor() const;

  xmg_lit pi( unsigned index ) const;
  static xmg_lit get_constant( bool value ) { return value ? const1 : const0; }

  node_kind kind( std::uint32_t node ) const { return nodes_[node].kind; }
  bool is_maj( std::uint32_t node ) const { return nodes_[node].kind == node_kind::maj; }
  bool is_xor( std::uint32_t node ) const { return nodes_[node].kind == node_kind::xor2; }
  bool is_pi( std::uint32_t node ) const { return nodes_[node].kind == node_kind::pi; }

  /// Fanin literals; MAJ uses all three, XOR uses the first two.
  const std::array<xmg_lit, 3>& fanins( std::uint32_t node ) const { return nodes_[node].fanin; }

  /// --- construction -------------------------------------------------------

  xmg_lit create_maj( xmg_lit a, xmg_lit b, xmg_lit c );
  xmg_lit create_xor( xmg_lit a, xmg_lit b );
  xmg_lit create_and( xmg_lit a, xmg_lit b ) { return create_maj( a, b, const0 ); }
  xmg_lit create_or( xmg_lit a, xmg_lit b ) { return create_maj( a, b, const1 ); }
  xmg_lit create_mux( xmg_lit sel, xmg_lit t, xmg_lit e );
  xmg_lit create_nary_xor( std::vector<xmg_lit> lits );
  xmg_lit create_nary_and( std::vector<xmg_lit> lits );

  void add_po( xmg_lit lit ) { pos_.push_back( lit ); }
  xmg_lit po( unsigned index ) const { return pos_.at( index ); }
  const std::vector<xmg_lit>& pos() const { return pos_; }

  /// --- analysis -----------------------------------------------------------

  std::vector<std::uint32_t> fanout_counts() const;
  std::vector<std::uint32_t> levels() const;
  std::uint32_t depth() const;

  /// Truth tables of all POs; requires num_pis() <= 20.
  std::vector<truth_table> simulate_outputs() const;
  /// 64-way parallel pattern simulation (one word per PI / PO).
  std::vector<std::uint64_t> simulate_patterns( const std::vector<std::uint64_t>& pi_patterns ) const;
  /// Single-assignment evaluation.
  std::vector<bool> evaluate( const std::vector<bool>& inputs ) const;

  /// Copy with only PO-reachable nodes.
  xmg_network cleanup() const;

  /// Appends one logic node with exactly the given kind and fanins — no
  /// canonicalization or strash lookup (the strash table is still updated).
  /// For the artifact-store deserializer, which must reproduce a serialized
  /// graph node-for-node; `kind` must be `maj` or `xor2`.
  xmg_lit append_raw_node( node_kind kind, const std::array<xmg_lit, 3>& fanin );

  /// Graphviz dump.
  std::string to_dot( const std::string& name = "xmg" ) const;

private:
  struct node_data
  {
    node_kind kind = node_kind::constant;
    std::array<xmg_lit, 3> fanin = { 0, 0, 0 };
  };

  struct key_hash
  {
    std::size_t operator()( const std::array<xmg_lit, 4>& key ) const
    {
      std::size_t seed = key[0];
      seed = hash_combine( seed, key[1] );
      seed = hash_combine( seed, key[2] );
      return hash_combine( seed, key[3] );
    }
  };

  std::uint64_t pattern_of( xmg_lit lit, const std::vector<std::uint64_t>& values ) const
  {
    return values[lit >> 1] ^ ( ( lit & 1u ) ? ~std::uint64_t{ 0 } : 0u );
  }

  unsigned num_pis_ = 0;
  std::vector<node_data> nodes_;
  std::vector<xmg_lit> pos_;
  std::unordered_map<std::array<xmg_lit, 4>, std::uint32_t, key_hash> strash_;
};

} // namespace qsyn
