/// \file wide_sim_avx512.cpp
/// \brief AVX-512 lane-group kernels: one 512-bit word per w512 group.
///
/// Compiled with `-mavx512f` only when CMake's `QSYN_SIMD` option enables
/// the backend; the dispatcher checks cpuid (`avx512f`) before routing
/// here.  The fused control/fanin step `acc & (v ^ m)` is a single
/// `vpternlogq` (truth table 0x60), so a gate pass costs about one
/// instruction per control over 512 assignment lanes.  w256 groups on an
/// AVX-512 machine are served by the AVX2 table — a 256-bit group gains
/// nothing from 512-bit registers.

#if defined( QSYN_HAVE_AVX512 )

#include <immintrin.h>

#include "wide_sim.hpp"
#include "wide_sim_kernels.hpp"

namespace qsyn::wide_detail
{

namespace
{

struct avx512_ops8
{
  static constexpr unsigned words = 8;
  using vec = __m512i;

  static vec load( const std::uint64_t* p ) { return _mm512_loadu_si512( p ); }
  static void store( std::uint64_t* p, vec v ) { _mm512_storeu_si512( p, v ); }
  static vec broadcast( std::uint64_t x )
  {
    return _mm512_set1_epi64( static_cast<long long>( x ) );
  }
  static vec ones() { return _mm512_set1_epi64( -1 ); }
  static vec band( vec a, vec b ) { return _mm512_and_epi64( a, b ); }
  static vec bxor( vec a, vec b ) { return _mm512_xor_epi64( a, b ); }
  static vec and_xor( vec acc, vec v, vec m )
  {
    // f(A, B, C) = A & (B ^ C): minterms A!BC (0b101) and AB!C (0b110).
    return _mm512_ternarylogic_epi64( acc, v, m, 0x60 );
  }
};

} // namespace

kernel_table avx512_table( unsigned words )
{
  static_cast<void>( words ); // only w512 groups route here
  return table_of<avx512_ops8>();
}

} // namespace qsyn::wide_detail

#endif // QSYN_HAVE_AVX512
