/// \file wide_sim_avx2.cpp
/// \brief AVX2 lane-group kernels: one 256-bit word per w256 group, a pair
/// per w512 group.
///
/// Compiled with `-mavx2` only when CMake's `QSYN_SIMD` option enables the
/// backend (the define doubles as the gate so a portable build, whose
/// compiler flags would reject the intrinsics, skips this TU's body
/// entirely).  The dispatcher still checks cpuid before routing here.

#if defined( QSYN_HAVE_AVX2 )

#include <immintrin.h>

#include "wide_sim.hpp"
#include "wide_sim_kernels.hpp"

namespace qsyn::wide_detail
{

namespace
{

struct avx2_ops4
{
  static constexpr unsigned words = 4;
  using vec = __m256i;

  static vec load( const std::uint64_t* p )
  {
    return _mm256_loadu_si256( reinterpret_cast<const __m256i*>( p ) );
  }
  static void store( std::uint64_t* p, vec v )
  {
    _mm256_storeu_si256( reinterpret_cast<__m256i*>( p ), v );
  }
  static vec broadcast( std::uint64_t x )
  {
    return _mm256_set1_epi64x( static_cast<long long>( x ) );
  }
  static vec ones() { return _mm256_set1_epi64x( -1 ); }
  static vec band( vec a, vec b ) { return _mm256_and_si256( a, b ); }
  static vec bxor( vec a, vec b ) { return _mm256_xor_si256( a, b ); }
  static vec and_xor( vec acc, vec v, vec m ) { return band( acc, bxor( v, m ) ); }
};

using avx2_ops8 = paired_ops<avx2_ops4>;

} // namespace

kernel_table avx2_table( unsigned words )
{
  return words == 8u ? table_of<avx2_ops8>() : table_of<avx2_ops4>();
}

} // namespace qsyn::wide_detail

#endif // QSYN_HAVE_AVX2
