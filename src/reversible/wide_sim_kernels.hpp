/// \file wide_sim_kernels.hpp
/// \brief Width-generic simulation kernels, shared by every backend TU.
///
/// The three hot loops of wide simulation — the reversible gate cascade,
/// the AIG node walk, and the masked two-fanin AND — are written once as
/// templates over an `Ops` policy that supplies the lane-group vector type
/// and its word operations.  Each backend translation unit (wide_sim.cpp
/// for portable, wide_sim_avx2.cpp / wide_sim_avx512.cpp compiled with
/// their arch flags) instantiates the templates with its own policy and
/// exports a `kernel_table`; the dispatcher in wide_sim.cpp picks a table
/// at runtime.  Keeping the loop *structure* single-source is what makes
/// the backends bit-identical by construction — a backend can only change
/// how a group of words is ANDed/XORed, never which words are touched.
///
/// An `Ops` policy provides:
///   * `words` — group size in 64-bit words (compile-time constant),
///   * `vec` — the group register type,
///   * `load` / `store` (unaligned), `broadcast`, `ones`, `band`, `bxor`,
///   * `and_xor(acc, v, m)` — `acc & (v ^ m)`, the fused control/fanin
///     step (AVX-512 implements it as one ternlog instruction).

#pragma once

#include <cstddef>
#include <cstdint>

namespace qsyn::wide_detail
{

/// Backend entry points for one lane-group width.  `state` and `values`
/// hold one group (`W` consecutive words) per line / node.
struct kernel_table
{
  /// Runs the whole flattened gate cascade over one lane group per line:
  /// per gate, the control conjunction is a group AND over polarity-masked
  /// line groups, the target update a group XOR.
  void ( *gate )( const std::uint32_t* targets, const std::uint32_t* control_offsets,
                  std::size_t num_gates, const std::uint32_t* control_lines,
                  const std::uint64_t* control_inverts, std::uint64_t* state );
  /// Walks all AND nodes in topological order: node `first_and + n` gets
  /// `(v(f0) ^ i0) & (v(f1) ^ i1)` over its group.
  void ( *aig )( const std::uint32_t* fanin_nodes, const std::uint64_t* fanin_inverts,
                 std::size_t num_ands, std::size_t first_and, std::uint64_t* values );
  /// dst[j] = (a[j] ^ invert_a) & (b[j] ^ invert_b), arbitrary word count.
  void ( *and2 )( std::uint64_t* dst, const std::uint64_t* a, std::uint64_t invert_a,
                  const std::uint64_t* b, std::uint64_t invert_b, std::size_t num_words );
};

/// Portable lane-group policy: `W` unrolled `uint64` lanes.  `W = 1` is
/// exactly the 64-bit scalar engine's word operations; `W = 4` / `W = 8`
/// give the compiler a fixed-trip-count inner loop to unroll.
template<unsigned W>
struct portable_ops
{
  static constexpr unsigned words = W;

  struct vec
  {
    std::uint64_t w[W];
  };

  static vec load( const std::uint64_t* p )
  {
    vec v;
    for ( unsigned k = 0; k < W; ++k )
    {
      v.w[k] = p[k];
    }
    return v;
  }
  static void store( std::uint64_t* p, vec v )
  {
    for ( unsigned k = 0; k < W; ++k )
    {
      p[k] = v.w[k];
    }
  }
  static vec broadcast( std::uint64_t x )
  {
    vec v;
    for ( unsigned k = 0; k < W; ++k )
    {
      v.w[k] = x;
    }
    return v;
  }
  static vec ones() { return broadcast( ~std::uint64_t{ 0 } ); }
  static vec band( vec a, vec b )
  {
    vec v;
    for ( unsigned k = 0; k < W; ++k )
    {
      v.w[k] = a.w[k] & b.w[k];
    }
    return v;
  }
  static vec bxor( vec a, vec b )
  {
    vec v;
    for ( unsigned k = 0; k < W; ++k )
    {
      v.w[k] = a.w[k] ^ b.w[k];
    }
    return v;
  }
  static vec and_xor( vec acc, vec v, vec m ) { return band( acc, bxor( v, m ) ); }
};

/// Doubles a policy's group width by pairing two inner registers — how an
/// AVX2-only machine runs w512 groups (two 256-bit halves per step).
template<typename Inner>
struct paired_ops
{
  static constexpr unsigned words = 2u * Inner::words;

  struct vec
  {
    typename Inner::vec lo, hi;
  };

  static vec load( const std::uint64_t* p )
  {
    return { Inner::load( p ), Inner::load( p + Inner::words ) };
  }
  static void store( std::uint64_t* p, vec v )
  {
    Inner::store( p, v.lo );
    Inner::store( p + Inner::words, v.hi );
  }
  static vec broadcast( std::uint64_t x )
  {
    const auto b = Inner::broadcast( x );
    return { b, b };
  }
  static vec ones()
  {
    const auto b = Inner::ones();
    return { b, b };
  }
  static vec band( vec a, vec b )
  {
    return { Inner::band( a.lo, b.lo ), Inner::band( a.hi, b.hi ) };
  }
  static vec bxor( vec a, vec b )
  {
    return { Inner::bxor( a.lo, b.lo ), Inner::bxor( a.hi, b.hi ) };
  }
  static vec and_xor( vec acc, vec v, vec m )
  {
    return { Inner::and_xor( acc.lo, v.lo, m.lo ), Inner::and_xor( acc.hi, v.hi, m.hi ) };
  }
};

template<typename Ops>
void gate_kernel( const std::uint32_t* targets, const std::uint32_t* control_offsets,
                  std::size_t num_gates, const std::uint32_t* control_lines,
                  const std::uint64_t* control_inverts, std::uint64_t* state )
{
  constexpr unsigned W = Ops::words;
  for ( std::size_t g = 0; g < num_gates; ++g )
  {
    auto acc = Ops::ones();
    const auto end = control_offsets[g + 1];
    for ( auto c = control_offsets[g]; c < end; ++c )
    {
      acc = Ops::and_xor( acc, Ops::load( state + std::size_t{ control_lines[c] } * W ),
                          Ops::broadcast( control_inverts[c] ) );
    }
    std::uint64_t* t = state + std::size_t{ targets[g] } * W;
    Ops::store( t, Ops::bxor( Ops::load( t ), acc ) );
  }
}

template<typename Ops>
void aig_kernel( const std::uint32_t* fanin_nodes, const std::uint64_t* fanin_inverts,
                 std::size_t num_ands, std::size_t first_and, std::uint64_t* values )
{
  constexpr unsigned W = Ops::words;
  for ( std::size_t n = 0; n < num_ands; ++n )
  {
    const auto v0 = Ops::bxor( Ops::load( values + std::size_t{ fanin_nodes[2 * n] } * W ),
                               Ops::broadcast( fanin_inverts[2 * n] ) );
    const auto v = Ops::and_xor( v0, Ops::load( values + std::size_t{ fanin_nodes[2 * n + 1] } * W ),
                                 Ops::broadcast( fanin_inverts[2 * n + 1] ) );
    Ops::store( values + ( first_and + n ) * W, v );
  }
}

template<typename Ops>
void and2_kernel( std::uint64_t* dst, const std::uint64_t* a, std::uint64_t invert_a,
                  const std::uint64_t* b, std::uint64_t invert_b, std::size_t num_words )
{
  constexpr unsigned W = Ops::words;
  const auto ia = Ops::broadcast( invert_a );
  const auto ib = Ops::broadcast( invert_b );
  std::size_t j = 0;
  for ( ; j + W <= num_words; j += W )
  {
    Ops::store( dst + j, Ops::and_xor( Ops::bxor( Ops::load( a + j ), ia ), Ops::load( b + j ), ib ) );
  }
  for ( ; j < num_words; ++j )
  {
    dst[j] = ( a[j] ^ invert_a ) & ( b[j] ^ invert_b );
  }
}

template<typename Ops>
constexpr kernel_table table_of()
{
  return { &gate_kernel<Ops>, &aig_kernel<Ops>, &and2_kernel<Ops> };
}

} // namespace qsyn::wide_detail
