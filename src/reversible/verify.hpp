/// \file verify.hpp
/// \brief Verification of synthesized reversible circuits against their
/// irreversible specification (our analogue of the paper's use of ABC `cec`).
///
/// Conventions: input variable i lives on the i-th line flagged
/// `is_primary_input` (in line order); constant ancillae carry
/// `is_constant_input` / `constant_value`; output j is read from the line
/// with `output_index == j`.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "../logic/aig.hpp"
#include "../logic/truth_table.hpp"
#include "circuit.hpp"

namespace qsyn
{

/// Lines flagged as primary inputs, in order.
std::vector<std::uint32_t> input_lines_of( const reversible_circuit& circuit );
/// Line holding each output (indexed by output).
std::vector<std::uint32_t> output_lines_of( const reversible_circuit& circuit );

/// Simulates the circuit on one input assignment (constants filled in) and
/// returns the output values.
std::vector<bool> evaluate_circuit( const reversible_circuit& circuit,
                                    const std::vector<bool>& inputs );

/// Exhaustively checks the circuit against output truth tables
/// (2^inputs simulations; practical for <= ~16 inputs).
bool verify_against_truth_tables( const reversible_circuit& circuit,
                                  const std::vector<truth_table>& outputs );

/// Checks the circuit against an AIG on `num_samples` random input
/// assignments (plus the all-zero and all-one patterns).  When
/// 2^num_pis <= num_samples the check is exhaustive instead — same budget,
/// full coverage, and a real proof for small designs.  Returns the first
/// failing input if any.
std::optional<std::vector<bool>> verify_against_aig_sampled( const reversible_circuit& circuit,
                                                             const aig_network& aig,
                                                             unsigned num_samples = 256,
                                                             std::uint64_t seed = 1 );

/// Checks that the circuit realizes exactly the given permutation over all
/// its lines (num_lines() <= 20).
bool verify_permutation( const reversible_circuit& circuit,
                         const std::vector<std::uint64_t>& expected );

} // namespace qsyn
