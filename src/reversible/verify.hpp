/// \file verify.hpp
/// \brief Verification of synthesized reversible circuits against their
/// irreversible specification (our analogue of the paper's use of ABC `cec`).
///
/// Three tiers are provided, trading confidence against cost:
///   * **sampled** — 64 random input assignments per simulated word
///     (probabilistic; silently exhaustive when 2^inputs fits the budget),
///   * **exhaustive** — all 2^inputs assignments, 64 per word (a proof for
///     bounded input counts),
///   * **SAT** — the circuit's function is extracted into an AIG and
///     checked against the specification by the incremental equivalence
///     engine (`qsyn::sat::incremental_cec`: shared structural hashing,
///     per-output miters under assumptions, simulation-guided fraiging); a
///     proof at any width, and reusable across a sweep's configurations.
/// The simulation tiers share one engine family (wide_sim.hpp): a lane
/// group of 1, 4, or 8 `std::uint64_t` words per circuit line packs 64–512
/// input assignments, and every gate sweeps whole groups — the Toffoli
/// control conjunction is a group AND, the target update a group XOR — so
/// one pass over the gate list settles up to 512 assignments at once
/// (portable unrolled lanes by default, AVX2/AVX-512 words when compiled
/// in and the CPU agrees).  The original 64-bit `block_simulator` is
/// retained as the differential oracle (`*_block64` tiers below); every
/// width is bit-identical to it by contract.
///
/// Conventions: input variable i lives on the i-th line flagged
/// `is_primary_input` (in line order); constant ancillae carry
/// `is_constant_input` / `constant_value`; output j is read from the line
/// with `output_index == j`.  Bit j of a packed word is assignment j of the
/// batch.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "../common/budget.hpp"
#include "../logic/aig.hpp"
#include "../logic/truth_table.hpp"
#include "circuit.hpp"
#include "wide_sim.hpp"

namespace qsyn
{

namespace sat
{
class incremental_cec;
struct check_limits;
} // namespace sat

/// Lines flagged as primary inputs, in order.
std::vector<std::uint32_t> input_lines_of( const reversible_circuit& circuit );
/// Line holding each output (indexed by output).
std::vector<std::uint32_t> output_lines_of( const reversible_circuit& circuit );

/// Simulates the circuit on one input assignment (constants filled in) and
/// returns the output values.  This is the scalar reference evaluator; the
/// verifiers below run on the 64-way block engine and are cross-checked
/// against this one in tests/test_verify.cpp.
std::vector<bool> evaluate_circuit( const reversible_circuit& circuit,
                                    const std::vector<bool>& inputs );

/// Reusable 64-way bit-parallel simulator.  Line roles are resolved once at
/// construction; every `evaluate` call then runs allocation-free over an
/// internal state buffer.  The referenced circuit must outlive the
/// simulator.
class block_simulator
{
public:
  explicit block_simulator( const reversible_circuit& circuit );

  /// Simulates 64 packed input assignments.  `input_words[i]` carries input
  /// variable i: bit j is its value in assignment j.  Returns one word per
  /// output (same packing); the reference stays valid until the next call.
  const std::vector<std::uint64_t>& evaluate( const std::vector<std::uint64_t>& input_words );

  const std::vector<std::uint32_t>& input_lines() const { return in_lines_; }
  const std::vector<std::uint32_t>& output_lines() const { return out_lines_; }

private:
  const reversible_circuit& circuit_;
  std::vector<std::uint32_t> in_lines_;
  std::vector<std::uint32_t> out_lines_;
  std::vector<std::uint64_t> init_state_; ///< constants broadcast to words
  std::vector<std::uint64_t> state_;
  std::vector<std::uint64_t> outputs_;
};

/// One-shot convenience wrapper around `block_simulator`: simulates 64
/// packed input assignments and returns one word per output.
std::vector<std::uint64_t> evaluate_circuit_block( const reversible_circuit& circuit,
                                                   const std::vector<std::uint64_t>& input_words );

/// Exhaustively checks the circuit against output truth tables, 64
/// assignments per simulated word (2^inputs/64 sweeps; inputs <= 24).
bool verify_against_truth_tables( const reversible_circuit& circuit,
                                  const std::vector<truth_table>& outputs );

/// Exhaustively checks the circuit against an AIG over all 2^inputs
/// assignments (inputs <= 24), 64 per simulated word, in counter order.
/// Returns the first failing input assignment if any — a proof of
/// equivalence when it returns nullopt.
std::optional<std::vector<bool>> verify_against_aig_exhaustive( const reversible_circuit& circuit,
                                                                const aig_network& aig );

/// Checks the circuit against an AIG on `num_samples` random input
/// assignments (plus the all-zero and all-one patterns), 64 per simulated
/// word.  When 2^num_pis <= num_samples the check delegates to
/// `verify_against_aig_exhaustive` — same budget, full coverage, and a
/// real proof for small designs.  Returns the first failing input if any.
std::optional<std::vector<bool>> verify_against_aig_sampled( const reversible_circuit& circuit,
                                                             const aig_network& aig,
                                                             unsigned num_samples = 256,
                                                             std::uint64_t seed = 1 );

/// Coverage-accounted result of a budgeted simulation tier.  When the
/// deadline expires mid-run the verdict is *partial*: `complete` is false
/// and `assignments_completed < assignments_requested` says exactly how
/// much of the input space was covered before the cutoff — never silently
/// reported as full coverage.  A present `counterexample` is always real,
/// partial coverage or not.
struct partial_verify_report
{
  std::optional<std::vector<bool>> counterexample;
  std::uint64_t assignments_requested = 0;
  std::uint64_t assignments_completed = 0;
  bool complete = true;
};

/// `verify_against_aig_exhaustive` with a cooperative deadline, polled once
/// per lane-group pass.  With an unlimited deadline the result is identical
/// to the unbudgeted tier.  The default overload picks the smallest
/// `sim_width` covering 2^inputs; the explicit-width overload exists for
/// the differential harness — verdict, counterexample, and
/// `assignments_completed` are bit-identical at every width.
partial_verify_report verify_against_aig_exhaustive_budgeted( const reversible_circuit& circuit,
                                                              const aig_network& aig,
                                                              const deadline& stop );
partial_verify_report verify_against_aig_exhaustive_budgeted( const reversible_circuit& circuit,
                                                              const aig_network& aig,
                                                              const deadline& stop,
                                                              sim_width width );

/// `verify_against_aig_sampled` with a cooperative deadline, polled once
/// per lane-group pass (the small-design exhaustive delegation applies
/// unchanged).  With an unlimited deadline the result is identical to the
/// unbudgeted tier.  The rng stream is consumed in 64-lane block order
/// regardless of width, so every width draws identical patterns and the
/// report — verdict, counterexample, `assignments_completed`, with no
/// double-counting when `num_samples + 2` is not lane-aligned — is
/// bit-identical across widths.
partial_verify_report verify_against_aig_sampled_budgeted( const reversible_circuit& circuit,
                                                           const aig_network& aig,
                                                           const deadline& stop,
                                                           unsigned num_samples = 256,
                                                           std::uint64_t seed = 1 );
partial_verify_report verify_against_aig_sampled_budgeted( const reversible_circuit& circuit,
                                                           const aig_network& aig,
                                                           const deadline& stop,
                                                           unsigned num_samples,
                                                           std::uint64_t seed, sim_width width );

/// The retained 64-bit scalar engines (`block_simulator` +
/// `aig_network::simulate_patterns`, one 64-assignment block per pass) —
/// the differential oracle every wide path is pinned against in
/// tests/test_verify.cpp and the baseline `bench_verify` measures wide
/// speedups over.  Same contract as the corresponding `_budgeted` tiers.
partial_verify_report verify_against_aig_exhaustive_block64( const reversible_circuit& circuit,
                                                             const aig_network& aig,
                                                             const deadline& stop );
partial_verify_report verify_against_aig_sampled_block64( const reversible_circuit& circuit,
                                                          const aig_network& aig,
                                                          const deadline& stop,
                                                          unsigned num_samples = 256,
                                                          std::uint64_t seed = 1 );

/// Cross-circuit batched verification of one sweep frontier: checks every
/// candidate circuit against the same specification AIG in a single
/// counter-order sweep, walking the spec once per lane group instead of
/// once per candidate (`wide_aig_simulator` persists its node values
/// across the whole frontier).  Candidates that already failed drop out of
/// the remaining passes.  Each returned report is bit-identical to the
/// corresponding individual `verify_against_aig_exhaustive_budgeted` call
/// at the same width (deadline expiry aside: the batch polls one shared
/// deadline and marks every still-running candidate partial).  Null
/// pointers are not allowed; every circuit must match the AIG's interface.
std::vector<partial_verify_report>
verify_batch_against_aig_exhaustive_budgeted( const std::vector<const reversible_circuit*>& circuits,
                                              const aig_network& aig, const deadline& stop,
                                              sim_width width );

/// Batched counterpart of `verify_against_aig_sampled_budgeted`: one
/// random-pattern stream drives the whole frontier (the per-candidate
/// reports are bit-identical to individual sampled calls with the same
/// seed and width).  The small-design exhaustive delegation applies to the
/// whole batch at once.
std::vector<partial_verify_report>
verify_batch_against_aig_sampled_budgeted( const std::vector<const reversible_circuit*>& circuits,
                                           const aig_network& aig, const deadline& stop,
                                           unsigned num_samples, std::uint64_t seed,
                                           sim_width width );

/// Extracts the function computed by the circuit as an AIG: one PI per
/// primary-input line (in input order), one PO per output index.  Constant
/// ancillae become AIG constants; each Toffoli gate contributes the AND of
/// its (polarity-adjusted) control literals XORed onto its target.
aig_network circuit_to_aig( const reversible_circuit& circuit );

/// Proves or refutes circuit-vs-AIG equivalence through the incremental
/// SAT equivalence engine (`qsyn::sat::incremental_cec` on the extracted
/// circuit AIG: shared structural hashing, per-output miters under
/// assumptions, simulation-guided fraiging).  Width-independent, unlike
/// the exhaustive tier.
///
/// **First-counterexample contract:** on inequivalence the returned
/// assignment distinguishes circuit and spec at the *lowest-indexed*
/// differing output (reported through `failing_output` when non-null); the
/// assignment itself is solver-dependent but always real.  `nullopt` is a
/// proof of equivalence.  This one-shot overload builds a private engine;
/// prefer the engine overload inside sweeps.
std::optional<std::vector<bool>> verify_against_aig_sat( const reversible_circuit& circuit,
                                                         const aig_network& aig );

/// As above, but on a caller-owned persistent engine, so successive checks
/// of one design sweep share the spec encoding, fraig merges, and learned
/// lemmas.  Thread-safe: the engine serializes concurrent calls
/// internally.  `failing_output`, if non-null, receives the index of the
/// lowest differing output when a counterexample is returned.
std::optional<std::vector<bool>> verify_against_aig_sat( const reversible_circuit& circuit,
                                                         const aig_network& aig,
                                                         sat::incremental_cec& engine,
                                                         unsigned* failing_output = nullptr );

/// Outcome of a budgeted SAT-tier check.  `resolved == false` means the
/// limits ran out before a verdict; `equivalent` is then meaningless and
/// the caller should degrade to a simulation tier.
struct sat_verify_outcome
{
  bool resolved = true;
  bool equivalent = false;
  std::optional<std::vector<bool>> counterexample;
  std::optional<unsigned> failing_output;
};

/// SAT tier under explicit limits (wall-clock deadline + conflict /
/// propagation budgets, forwarded to `incremental_cec::check`).  With
/// unlimited limits the verdict matches `verify_against_aig_sat` exactly.
sat_verify_outcome verify_against_aig_sat_budgeted( const reversible_circuit& circuit,
                                                    const aig_network& aig,
                                                    sat::incremental_cec& engine,
                                                    const sat::check_limits& limits );

/// Checks that the circuit realizes exactly the given permutation over all
/// its lines (num_lines() <= 20).
bool verify_permutation( const reversible_circuit& circuit,
                         const std::vector<std::uint64_t>& expected );

/// Returns a copy of the circuit with one gate retargeted such that the
/// realized function provably differs from `spec` (confirmed by exhaustive
/// enumeration; gates are scanned from the back, a retarget onto a control
/// line is never attempted).  The negative-path fixture shared by the
/// verification tests and `bench_verify` — a "flip one gate target"
/// corruption can be semantically benign when both targets are garbage, so
/// every candidate is checked before it is returned.  Throws if no single
/// retarget changes the function.
reversible_circuit corrupt_circuit( const reversible_circuit& circuit, const aig_network& spec );

} // namespace qsyn
