/// \file write_circuit.hpp
/// \brief Exchange-format writers for reversible circuits.
///
/// Two formats cover the downstream toolchains the paper's flows feed:
///
/// * RevLib `.real` — the standard benchmark format of the reversible
///   logic community (RevKit [23] reads and writes it),
/// * OpenQASM 2.0 — gate-level export for quantum toolchains; NOT/CNOT/
///   Toffoli map to x/cx/ccx, larger mixed-polarity Toffolis are emitted
///   with the same V-chain ancilla construction the cost model assumes
///   (or rejected if `allow_large_gates` is false).

#pragma once

#include <ostream>
#include <string>

#include "circuit.hpp"

namespace qsyn
{

/// Writes RevLib .real (version 2.0).  Mixed-polarity controls use the
/// RevLib convention (leading '-' on negative control lines).
void write_real( const reversible_circuit& circuit, std::ostream& os,
                 const std::string& name = "circuit" );
std::string to_real( const reversible_circuit& circuit, const std::string& name = "circuit" );

/// Writes OpenQASM 2.0.  Gates with more than two controls are decomposed
/// with a CCX V-chain over a dedicated ancilla register (sized for the
/// largest gate); negative controls become x-conjugations.
void write_qasm( const reversible_circuit& circuit, std::ostream& os );
std::string to_qasm( const reversible_circuit& circuit );

} // namespace qsyn
