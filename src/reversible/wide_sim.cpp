/// \file wide_sim.cpp
/// \brief Portable kernels, backend dispatch, and the wide simulators.

#include "wide_sim.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "verify.hpp"
#include "wide_sim_kernels.hpp"

namespace qsyn
{

namespace wide_detail
{

// Backend tables compiled behind CMake's QSYN_SIMD option; each lives in a
// TU built with the matching arch flags (see wide_sim_avx2.cpp /
// wide_sim_avx512.cpp).  Execution is additionally gated on cpuid below,
// so enabling a backend at build time never produces illegal instructions
// on an older machine.
#if defined( QSYN_HAVE_AVX2 )
kernel_table avx2_table( unsigned words );
#endif
#if defined( QSYN_HAVE_AVX512 )
kernel_table avx512_table( unsigned words );
#endif

namespace
{

kernel_table portable_table( unsigned words )
{
  switch ( words )
  {
  case 1u:
    return table_of<portable_ops<1>>();
  case 4u:
    return table_of<portable_ops<4>>();
  case 8u:
    return table_of<portable_ops<8>>();
  default:
    throw std::logic_error( "wide_sim: unsupported lane-group width" );
  }
}

bool cpu_supports( simd_backend backend )
{
#if defined( __GNUC__ ) || defined( __clang__ )
  switch ( backend )
  {
  case simd_backend::portable:
    return true;
  case simd_backend::avx2:
    return __builtin_cpu_supports( "avx2" ) != 0;
  case simd_backend::avx512:
    return __builtin_cpu_supports( "avx512f" ) != 0;
  }
#endif
  return backend == simd_backend::portable;
}

/// Runtime cap from the QSYN_SIMD environment variable, parsed once:
/// "off"/"portable" pin the portable kernels, "avx2" caps at AVX2,
/// "avx512"/"native" leave the cpuid choice alone.  Unknown values are
/// ignored rather than fatal — a mistyped override must not change
/// verdicts, only (at worst) speed.
simd_backend backend_cap()
{
  static const simd_backend cap = [] {
    const char* env = std::getenv( "QSYN_SIMD" );
    if ( env == nullptr )
    {
      return simd_backend::avx512;
    }
    const std::string v( env );
    if ( v == "off" || v == "portable" )
    {
      return simd_backend::portable;
    }
    if ( v == "avx2" )
    {
      return simd_backend::avx2;
    }
    return simd_backend::avx512;
  }();
  return cap;
}

bool backend_usable( simd_backend backend )
{
  return simd_backend_compiled( backend ) && cpu_supports( backend ) &&
         static_cast<int>( backend ) <= static_cast<int>( backend_cap() );
}

kernel_table table_for( simd_backend backend, unsigned words )
{
  switch ( backend )
  {
#if defined( QSYN_HAVE_AVX2 )
  case simd_backend::avx2:
    return avx2_table( words );
#endif
#if defined( QSYN_HAVE_AVX512 )
  case simd_backend::avx512:
    return avx512_table( words );
#endif
  default:
    return portable_table( words );
  }
}

} // namespace

} // namespace wide_detail

sim_width auto_sim_width( std::uint64_t assignments )
{
  if ( assignments <= lanes_of( sim_width::w64 ) )
  {
    return sim_width::w64;
  }
  if ( assignments <= lanes_of( sim_width::w256 ) )
  {
    return sim_width::w256;
  }
  return sim_width::w512;
}

const char* simd_backend_name( simd_backend backend )
{
  switch ( backend )
  {
  case simd_backend::avx2:
    return "avx2";
  case simd_backend::avx512:
    return "avx512";
  default:
    return "portable";
  }
}

bool simd_backend_compiled( simd_backend backend )
{
  switch ( backend )
  {
  case simd_backend::avx2:
#if defined( QSYN_HAVE_AVX2 )
    return true;
#else
    return false;
#endif
  case simd_backend::avx512:
#if defined( QSYN_HAVE_AVX512 )
    return true;
#else
    return false;
#endif
  default:
    return true;
  }
}

simd_backend active_simd_backend( sim_width width )
{
  // A single 64-bit word per group leaves nothing for a vector register to
  // do; w64 always runs the portable scalar words (== block_simulator ops).
  if ( width == sim_width::w64 )
  {
    return simd_backend::portable;
  }
  if ( width == sim_width::w512 && wide_detail::backend_usable( simd_backend::avx512 ) )
  {
    return simd_backend::avx512;
  }
  if ( wide_detail::backend_usable( simd_backend::avx2 ) )
  {
    return simd_backend::avx2;
  }
  return simd_backend::portable;
}

void simd_and2_masked( std::uint64_t* dst, const std::uint64_t* a, std::uint64_t invert_a,
                       const std::uint64_t* b, std::uint64_t invert_b, std::size_t num_words )
{
  static const auto kernel = [] {
    const auto backend = active_simd_backend( sim_width::w512 );
    return wide_detail::table_for( backend, words_of( sim_width::w512 ) ).and2;
  }();
  kernel( dst, a, invert_a, b, invert_b, num_words );
}

// --- wide_simulator ----------------------------------------------------------

wide_simulator::wide_simulator( const reversible_circuit& circuit, sim_width width )
    : width_( width ), backend_( active_simd_backend( width ) ),
      in_lines_( input_lines_of( circuit ) ), out_lines_( output_lines_of( circuit ) )
{
  const auto W = words_of( width_ );
  targets_.reserve( circuit.num_gates() );
  control_offsets_.reserve( circuit.num_gates() + 1u );
  // Toffoli-dominated cascades average ~2 controls per gate; reserving for
  // that keeps the flattening pass to at most one late regrowth.
  control_lines_.reserve( 2u * circuit.num_gates() );
  control_inverts_.reserve( 2u * circuit.num_gates() );
  control_offsets_.push_back( 0u );
  for ( const auto& g : circuit.gates() )
  {
    targets_.push_back( g.target );
    for ( const auto& c : g.controls )
    {
      control_lines_.push_back( c.line );
      control_inverts_.push_back( c.positive ? 0u : ~std::uint64_t{ 0 } );
    }
    control_offsets_.push_back( static_cast<std::uint32_t>( control_lines_.size() ) );
  }
  // A sparse constant list instead of a full initial-state image: the
  // per-evaluate reset is then one write-only memset plus a handful of
  // constant-1 groups, instead of streaming a lines*W image through the
  // cache twice — on multi-thousand-line circuits the reset is a visible
  // share of a group pass.
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    if ( circuit.line( l ).is_constant_input && circuit.line( l ).constant_value )
    {
      one_lines_.push_back( l );
    }
  }
  state_.resize( std::size_t{ circuit.num_lines() } * W );
  outputs_.resize( std::size_t{ out_lines_.size() } * W );
}

const std::vector<std::uint64_t>&
wide_simulator::evaluate( const std::vector<std::uint64_t>& input_words )
{
  const auto W = words_of( width_ );
  if ( input_words.size() != in_lines_.size() * W )
  {
    throw std::invalid_argument( "wide_simulator::evaluate: input arity mismatch" );
  }
  std::memset( state_.data(), 0, state_.size() * sizeof( std::uint64_t ) );
  for ( const auto l : one_lines_ )
  {
    std::memset( state_.data() + std::size_t{ l } * W, 0xff, W * sizeof( std::uint64_t ) );
  }
  for ( std::size_t i = 0; i < in_lines_.size(); ++i )
  {
    std::memcpy( state_.data() + std::size_t{ in_lines_[i] } * W, input_words.data() + i * W,
                 W * sizeof( std::uint64_t ) );
  }
  const auto table = wide_detail::table_for( backend_, W );
  table.gate( targets_.data(), control_offsets_.data(), targets_.size(), control_lines_.data(),
              control_inverts_.data(), state_.data() );
  for ( std::size_t o = 0; o < out_lines_.size(); ++o )
  {
    std::memcpy( outputs_.data() + o * W, state_.data() + std::size_t{ out_lines_[o] } * W,
                 W * sizeof( std::uint64_t ) );
  }
  return outputs_;
}

// --- wide_aig_simulator ------------------------------------------------------

wide_aig_simulator::wide_aig_simulator( const aig_network& aig, sim_width width )
    : width_( width ), backend_( active_simd_backend( width ) ), num_pis_( aig.num_pis() )
{
  const auto W = words_of( width_ );
  const auto first_and = std::size_t{ num_pis_ } + 1u;
  fanin_nodes_.reserve( 2u * aig.num_ands() );
  fanin_inverts_.reserve( 2u * aig.num_ands() );
  for ( std::size_t n = first_and; n < aig.num_nodes(); ++n )
  {
    for ( const auto lit : { aig.fanin0( static_cast<std::uint32_t>( n ) ),
                             aig.fanin1( static_cast<std::uint32_t>( n ) ) } )
    {
      fanin_nodes_.push_back( lit_node( lit ) );
      fanin_inverts_.push_back( lit_complemented( lit ) ? ~std::uint64_t{ 0 } : 0u );
    }
  }
  po_nodes_.reserve( aig.num_pos() );
  po_inverts_.reserve( aig.num_pos() );
  for ( const auto lit : aig.pos() )
  {
    po_nodes_.push_back( lit_node( lit ) );
    po_inverts_.push_back( lit_complemented( lit ) ? ~std::uint64_t{ 0 } : 0u );
  }
  values_.assign( aig.num_nodes() * W, 0u );
  outputs_.resize( std::size_t{ aig.num_pos() } * W );
}

const std::vector<std::uint64_t>&
wide_aig_simulator::evaluate( const std::vector<std::uint64_t>& pi_words )
{
  const auto W = words_of( width_ );
  if ( pi_words.size() != std::size_t{ num_pis_ } * W )
  {
    throw std::invalid_argument( "wide_aig_simulator::evaluate: input arity mismatch" );
  }
  // Node 0 (constant false) stays zero from construction; PIs are nodes
  // 1..num_pis in input order.
  std::memcpy( values_.data() + W, pi_words.data(), pi_words.size() * sizeof( std::uint64_t ) );
  const auto first_and = std::size_t{ num_pis_ } + 1u;
  const auto num_ands = fanin_nodes_.size() / 2u;
  const auto table = wide_detail::table_for( backend_, W );
  table.aig( fanin_nodes_.data(), fanin_inverts_.data(), num_ands, first_and, values_.data() );
  for ( std::size_t o = 0; o < po_nodes_.size(); ++o )
  {
    for ( unsigned k = 0; k < W; ++k )
    {
      outputs_[o * W + k] = values_[std::size_t{ po_nodes_[o] } * W + k] ^ po_inverts_[o];
    }
  }
  return outputs_;
}

} // namespace qsyn
