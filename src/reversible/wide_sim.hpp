/// \file wide_sim.hpp
/// \brief Width-generic bit-parallel simulation: 64/256/512 assignments per
/// gate pass, with runtime-dispatched portable / AVX2 / AVX-512 kernels.
///
/// The 64-way `block_simulator` (verify.hpp) packs one `uint64_t` word per
/// circuit line.  The wide engine generalizes the word to a *lane group* of
/// `W` consecutive 64-bit words per line (`sim_width`: W = 1, 4, or 8 —
/// 64, 256, or 512 assignments per gate pass).  Lane semantics are
/// unchanged: word k, bit j of a group is assignment `k * 64 + j` of the
/// batch, so every width produces bit-identical verdicts and the same
/// first-counterexample as the 64-bit engine; only the wall clock changes.
///
/// Width and backend are independent axes:
///   * **width** (`sim_width`) is a runtime parameter — tests exercise all
///     widths on any machine;
///   * **backend** (`simd_backend`) is how a width's group operations are
///     executed: portable unrolled `uint64` lanes (always available), AVX2
///     256-bit words, or AVX-512 512-bit words.  Backends are compiled in
///     only when CMake's `QSYN_SIMD` option asks for them, and selected at
///     runtime via cpuid, so one binary runs correctly anywhere.  The
///     `QSYN_SIMD` *environment variable* (`off`/`portable`, `avx2`,
///     `avx512`/`native`) caps the runtime choice — the bit-identity gates
///     in scripts/run_bench.sh use it to pin backends on one machine.
///
/// Besides the per-circuit `wide_simulator` and the `wide_aig_simulator`
/// (spec side), the header exposes `simd_and2_masked`, the dispatched
/// two-fanin AND kernel the incremental CEC engine's exhaustive simulation
/// pass runs on (sat/incremental.cpp).

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "../logic/aig.hpp"
#include "circuit.hpp"

namespace qsyn
{

/// Number of 64-bit words settled per gate pass: 64, 256, or 512
/// assignment lanes.
enum class sim_width : unsigned
{
  w64 = 1,
  w256 = 4,
  w512 = 8,
};

/// Words per lane group of a width.
constexpr unsigned words_of( sim_width w )
{
  return static_cast<unsigned>( w );
}

/// Assignment lanes per group of a width.
constexpr unsigned lanes_of( sim_width w )
{
  return words_of( w ) * 64u;
}

/// Smallest width whose lane group covers `assignments` in one pass, capped
/// at w512.  Verdicts are width-independent; this only picks the fastest
/// pass shape for a known batch size.
sim_width auto_sim_width( std::uint64_t assignments );

/// How a lane group's word operations execute.
enum class simd_backend
{
  portable, ///< unrolled `uint64` lanes, no ISA requirements
  avx2,     ///< 256-bit `__m256i` words (one per w256 group, two per w512)
  avx512,   ///< 512-bit `__m512i` words (one per w512 group)
};

const char* simd_backend_name( simd_backend backend );

/// True when the backend's kernels were compiled into this binary
/// (CMake `QSYN_SIMD` option; portable is always present).
bool simd_backend_compiled( simd_backend backend );

/// The backend the dispatcher selects for `width` on this machine: the
/// widest compiled backend the CPU supports whose word size divides the
/// group, capped by the `QSYN_SIMD` environment variable.  w64 always runs
/// portable — a single 64-bit word has nothing to vectorize.
simd_backend active_simd_backend( sim_width width );

/// dst[j] = (a[j] ^ invert_a) & (b[j] ^ invert_b) for j < num_words,
/// dispatched to the widest available backend.  The inner operation of the
/// AIG node walk; exported for the incremental CEC engine's exhaustive
/// simulation pass, whose per-node pattern arrays use the same layout.
void simd_and2_masked( std::uint64_t* dst, const std::uint64_t* a, std::uint64_t invert_a,
                       const std::uint64_t* b, std::uint64_t invert_b, std::size_t num_words );

/// Reusable width-generic circuit simulator — the lane-abstracted
/// generalization of `block_simulator`.  The gate list is flattened once at
/// construction (targets, control lines, polarity masks in flat arrays);
/// every `evaluate` call then runs allocation-free and branch-free over the
/// dispatched kernel.  The referenced circuit must outlive the simulator.
class wide_simulator
{
public:
  wide_simulator( const reversible_circuit& circuit, sim_width width );

  /// Simulates one lane group per input.  `input_words` holds `words_of
  /// (width())` consecutive words per input variable, input-major:
  /// `input_words[i * W + k]` is word k of input i (bit j = assignment
  /// `k * 64 + j`).  Returns one group per output in the same layout; the
  /// reference stays valid until the next call.
  const std::vector<std::uint64_t>& evaluate( const std::vector<std::uint64_t>& input_words );

  sim_width width() const { return width_; }
  simd_backend backend() const { return backend_; }
  const std::vector<std::uint32_t>& input_lines() const { return in_lines_; }
  const std::vector<std::uint32_t>& output_lines() const { return out_lines_; }

private:
  sim_width width_;
  simd_backend backend_;
  std::vector<std::uint32_t> in_lines_;
  std::vector<std::uint32_t> out_lines_;
  std::vector<std::uint32_t> targets_;         ///< target line per gate
  std::vector<std::uint32_t> control_offsets_; ///< gate g's controls at [g], [g+1])
  std::vector<std::uint32_t> control_lines_;
  std::vector<std::uint64_t> control_inverts_; ///< all-ones for negative controls
  std::vector<std::uint32_t> one_lines_;       ///< lines with constant-1 inputs
  std::vector<std::uint64_t> state_;
  std::vector<std::uint64_t> outputs_;
};

/// Width-generic AIG pattern simulator, the spec-side counterpart of
/// `wide_simulator`: one topological node walk settles a whole lane group,
/// and the flattened fanin arrays plus the values buffer persist across
/// calls — a batched verification sweep walks the spec once per group, not
/// once per candidate circuit.  The referenced AIG must outlive the
/// simulator.
class wide_aig_simulator
{
public:
  wide_aig_simulator( const aig_network& aig, sim_width width );

  /// Simulates one lane group per PI (`pi_words[i * W + k]`, layout as in
  /// `wide_simulator::evaluate`).  Returns one group per PO; the reference
  /// stays valid until the next call.
  const std::vector<std::uint64_t>& evaluate( const std::vector<std::uint64_t>& pi_words );

  sim_width width() const { return width_; }
  simd_backend backend() const { return backend_; }
  unsigned num_pis() const { return num_pis_; }
  unsigned num_pos() const { return static_cast<unsigned>( po_nodes_.size() ); }

private:
  sim_width width_;
  simd_backend backend_;
  unsigned num_pis_;
  std::vector<std::uint32_t> fanin_nodes_;   ///< 2 per AND node
  std::vector<std::uint64_t> fanin_inverts_; ///< 2 per AND node
  std::vector<std::uint32_t> po_nodes_;
  std::vector<std::uint64_t> po_inverts_;
  std::vector<std::uint64_t> values_; ///< one group per node
  std::vector<std::uint64_t> outputs_;
};

} // namespace qsyn
