#include "verify.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "../common/bits.hpp"
#include "../sat/incremental.hpp"

namespace qsyn
{

namespace
{

constexpr std::uint64_t all_ones = ~std::uint64_t{ 0 };

/// Fills one packed word per input for the 64 assignments
/// x = blk * 64 + j (j = bit position): the low six variables cycle through
/// the canonical projection patterns, the higher ones broadcast the
/// corresponding bit of the block index.
void fill_counter_block( unsigned num_inputs, std::uint64_t blk,
                         std::vector<std::uint64_t>& words )
{
  for ( unsigned i = 0; i < num_inputs; ++i )
  {
    words[i] = i < 6u ? projections[i] : ( ( blk >> ( i - 6u ) ) & 1u ) ? all_ones : 0u;
  }
}

/// Unpacks assignment lane `j` of a packed input batch.
std::vector<bool> unpack_lane( const std::vector<std::uint64_t>& words, unsigned j )
{
  std::vector<bool> assignment( words.size() );
  for ( std::size_t i = 0; i < words.size(); ++i )
  {
    assignment[i] = ( words[i] >> j ) & 1u;
  }
  return assignment;
}

/// OR of the per-output differences between two packed result vectors.
std::uint64_t diff_word( const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b )
{
  std::uint64_t diff = 0;
  for ( std::size_t o = 0; o < a.size(); ++o )
  {
    diff |= a[o] ^ b[o];
  }
  return diff;
}

/// Fills one lane group per input for the `W` consecutive counter blocks
/// starting at `blk0` (word k of input i covers assignments
/// `(blk0 + k) * 64 .. + 63`): the low six variables cycle through the
/// projection patterns in every word, the higher ones broadcast the
/// corresponding bit of the word's block index.
void fill_counter_wide( unsigned num_inputs, std::uint64_t blk0, unsigned W,
                        std::vector<std::uint64_t>& words )
{
  for ( unsigned i = 0; i < num_inputs; ++i )
  {
    for ( unsigned k = 0; k < W; ++k )
    {
      words[std::size_t{ i } * W + k] =
          i < 6u ? projections[i] : ( ( ( blk0 + k ) >> ( i - 6u ) ) & 1u ) ? all_ones : 0u;
    }
  }
}

/// Unpacks assignment lane `j` of word `k` of a grouped input batch.
std::vector<bool> unpack_wide_lane( const std::vector<std::uint64_t>& words, unsigned W,
                                    unsigned k, unsigned j )
{
  std::vector<bool> assignment( words.size() / W );
  for ( std::size_t i = 0; i < assignment.size(); ++i )
  {
    assignment[i] = ( words[i * W + k] >> j ) & 1u;
  }
  return assignment;
}

/// OR of the per-output differences in word `k` of two grouped results.
std::uint64_t diff_word_wide( const std::vector<std::uint64_t>& a,
                              const std::vector<std::uint64_t>& b, unsigned W, unsigned k )
{
  std::uint64_t diff = 0;
  for ( std::size_t o = 0; o < a.size() / W; ++o )
  {
    diff |= a[o * W + k] ^ b[o * W + k];
  }
  return diff;
}

} // namespace

std::vector<std::uint32_t> input_lines_of( const reversible_circuit& circuit )
{
  std::vector<std::uint32_t> lines;
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    if ( circuit.line( l ).is_primary_input )
    {
      lines.push_back( l );
    }
  }
  return lines;
}

std::vector<std::uint32_t> output_lines_of( const reversible_circuit& circuit )
{
  int max_index = -1;
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    max_index = std::max( max_index, circuit.line( l ).output_index );
  }
  std::vector<std::uint32_t> lines( static_cast<std::size_t>( max_index + 1 ), 0u );
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    const auto idx = circuit.line( l ).output_index;
    if ( idx >= 0 )
    {
      lines[static_cast<std::size_t>( idx )] = l;
    }
  }
  return lines;
}

std::vector<bool> evaluate_circuit( const reversible_circuit& circuit,
                                    const std::vector<bool>& inputs )
{
  const auto in_lines = input_lines_of( circuit );
  if ( inputs.size() != in_lines.size() )
  {
    throw std::invalid_argument( "evaluate_circuit: input arity mismatch" );
  }
  std::vector<bool> state( circuit.num_lines(), false );
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    if ( circuit.line( l ).is_constant_input )
    {
      state[l] = circuit.line( l ).constant_value;
    }
  }
  for ( std::size_t i = 0; i < in_lines.size(); ++i )
  {
    state[in_lines[i]] = inputs[i];
  }
  circuit.apply( state );
  const auto out_lines = output_lines_of( circuit );
  std::vector<bool> outputs( out_lines.size() );
  for ( std::size_t o = 0; o < out_lines.size(); ++o )
  {
    outputs[o] = state[out_lines[o]];
  }
  return outputs;
}

// --- 64-way block simulation -------------------------------------------------

block_simulator::block_simulator( const reversible_circuit& circuit )
    : circuit_( circuit ), in_lines_( input_lines_of( circuit ) ),
      out_lines_( output_lines_of( circuit ) ), init_state_( circuit.num_lines(), 0u ),
      state_( circuit.num_lines() ), outputs_( out_lines_.size() )
{
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    if ( circuit.line( l ).is_constant_input && circuit.line( l ).constant_value )
    {
      init_state_[l] = all_ones;
    }
  }
}

const std::vector<std::uint64_t>&
block_simulator::evaluate( const std::vector<std::uint64_t>& input_words )
{
  if ( input_words.size() != in_lines_.size() )
  {
    throw std::invalid_argument( "block_simulator::evaluate: input arity mismatch" );
  }
  state_ = init_state_;
  for ( std::size_t i = 0; i < in_lines_.size(); ++i )
  {
    state_[in_lines_[i]] = input_words[i];
  }
  for ( const auto& g : circuit_.gates() )
  {
    // All 64 assignments at once: the control conjunction is a word AND
    // (complemented for negative controls), the target flip a word XOR.
    std::uint64_t fire = all_ones;
    for ( const auto& c : g.controls )
    {
      fire &= c.positive ? state_[c.line] : ~state_[c.line];
    }
    state_[g.target] ^= fire;
  }
  for ( std::size_t o = 0; o < out_lines_.size(); ++o )
  {
    outputs_[o] = state_[out_lines_[o]];
  }
  return outputs_;
}

std::vector<std::uint64_t> evaluate_circuit_block( const reversible_circuit& circuit,
                                                   const std::vector<std::uint64_t>& input_words )
{
  block_simulator sim( circuit );
  return sim.evaluate( input_words );
}

// --- exhaustive tiers --------------------------------------------------------

bool verify_against_truth_tables( const reversible_circuit& circuit,
                                  const std::vector<truth_table>& outputs )
{
  const auto num_inputs = static_cast<unsigned>( input_lines_of( circuit ).size() );
  if ( num_inputs > 24u )
  {
    throw std::invalid_argument( "verify_against_truth_tables: too many inputs" );
  }
  const auto width = auto_sim_width( std::uint64_t{ 1 } << num_inputs );
  const auto W = words_of( width );
  wide_simulator sim( circuit, width );
  if ( sim.output_lines().size() != outputs.size() )
  {
    return false;
  }
  for ( const auto& tt : outputs )
  {
    if ( tt.num_vars() != num_inputs )
    {
      return false;
    }
  }
  const auto mask = block_mask( num_inputs );
  const auto num_blocks = num_blocks_for( num_inputs );
  std::vector<std::uint64_t> words( std::size_t{ num_inputs } * W );
  for ( std::uint64_t blk = 0; blk < num_blocks; blk += W )
  {
    fill_counter_wide( num_inputs, blk, W, words );
    const auto& result = sim.evaluate( words );
    for ( std::size_t o = 0; o < outputs.size(); ++o )
    {
      for ( unsigned k = 0; k < W && blk + k < num_blocks; ++k )
      {
        // The counter-order batch of block blk+k is exactly block blk+k of
        // the truth table (bit i of index x = value of variable i).
        if ( ( result[o * W + k] ^ outputs[o].blocks()[blk + k] ) & mask )
        {
          return false;
        }
      }
    }
  }
  return true;
}

// --- the retained 64-bit oracle ---------------------------------------------

partial_verify_report verify_against_aig_exhaustive_block64( const reversible_circuit& circuit,
                                                             const aig_network& aig,
                                                             const deadline& stop )
{
  block_simulator sim( circuit );
  const auto num_pis = aig.num_pis();
  if ( sim.input_lines().size() != num_pis || sim.output_lines().size() != aig.num_pos() )
  {
    throw std::invalid_argument( "verify_against_aig_exhaustive: interface mismatch" );
  }
  if ( num_pis > 24u )
  {
    throw std::invalid_argument( "verify_against_aig_exhaustive: too many inputs" );
  }
  partial_verify_report report;
  report.assignments_requested = std::uint64_t{ 1 } << num_pis;
  const auto poll_deadline = !stop.unlimited();
  const auto mask = block_mask( num_pis );
  std::vector<std::uint64_t> words( num_pis );
  for ( std::uint64_t blk = 0; blk < num_blocks_for( num_pis ); ++blk )
  {
    if ( poll_deadline && stop.expired() )
    {
      report.complete = false;
      return report;
    }
    fill_counter_block( num_pis, blk, words );
    const auto expected = aig.simulate_patterns( words );
    const auto& actual = sim.evaluate( words );
    if ( const auto diff = diff_word( expected, actual ) & mask )
    {
      // Lowest failing lane of the lowest failing block == first failing
      // assignment in counter order, matching the scalar enumeration the
      // block engine replaced.
      report.counterexample = unpack_lane( words, static_cast<unsigned>( lsb_index( diff ) ) );
      report.assignments_completed += lsb_index( diff ) + 1u;
      return report;
    }
    report.assignments_completed +=
        std::min<std::uint64_t>( 64u, report.assignments_requested - blk * 64u );
  }
  return report;
}

partial_verify_report verify_against_aig_sampled_block64( const reversible_circuit& circuit,
                                                          const aig_network& aig,
                                                          const deadline& stop,
                                                          unsigned num_samples,
                                                          std::uint64_t seed )
{
  const auto num_pis = aig.num_pis();
  // When the whole input space is no larger than the sample budget,
  // enumerate it exhaustively: random sampling would draw duplicate
  // vectors and could certify a tiny design without ever covering it.
  if ( num_pis <= 24u && ( std::uint64_t{ 1 } << num_pis ) <= num_samples )
  {
    return verify_against_aig_exhaustive_block64( circuit, aig, stop );
  }
  block_simulator sim( circuit );
  if ( sim.input_lines().size() != num_pis || sim.output_lines().size() != aig.num_pos() )
  {
    throw std::invalid_argument( "verify_against_aig_sampled: interface mismatch" );
  }
  std::mt19937_64 rng( seed );
  const std::uint64_t total = std::uint64_t{ num_samples } + 2u;
  partial_verify_report report;
  report.assignments_requested = total;
  const auto poll_deadline = !stop.unlimited();
  std::vector<std::uint64_t> words( num_pis );
  for ( std::uint64_t base = 0; base < total; base += 64u )
  {
    if ( poll_deadline && stop.expired() )
    {
      report.complete = false;
      return report;
    }
    // One rng word per input = 64 independent random assignments.  The
    // first batch pins lane 0 to all-zero and lane 1 to all-one.
    for ( auto& w : words )
    {
      w = rng();
      if ( base == 0 )
      {
        w = ( w & ~std::uint64_t{ 3 } ) | 2u;
      }
    }
    const auto lanes = std::min<std::uint64_t>( 64u, total - base );
    const auto mask = lanes == 64u ? all_ones : ( std::uint64_t{ 1 } << lanes ) - 1u;
    const auto expected = aig.simulate_patterns( words );
    const auto& actual = sim.evaluate( words );
    if ( const auto diff = diff_word( expected, actual ) & mask )
    {
      report.counterexample = unpack_lane( words, static_cast<unsigned>( lsb_index( diff ) ) );
      report.assignments_completed += lsb_index( diff ) + 1u;
      return report;
    }
    report.assignments_completed += lanes;
  }
  return report;
}

// --- the wide engine ---------------------------------------------------------

namespace
{

/// Shared frontier sweep behind the exhaustive tiers: every circuit is
/// checked against the same spec AIG in one counter-order enumeration, the
/// spec simulated once per lane group.  Failed candidates retire from the
/// remaining passes; their reports are already final.  Word-by-word
/// comparison in block order keeps the first-counterexample contract and
/// the per-assignment coverage accounting bit-identical to the 64-bit
/// oracle at every width.
std::vector<partial_verify_report>
exhaustive_wide( const std::vector<const reversible_circuit*>& circuits, const aig_network& aig,
                 const deadline& stop, sim_width width )
{
  const auto W = words_of( width );
  const auto num_pis = aig.num_pis();
  if ( num_pis > 24u )
  {
    throw std::invalid_argument( "verify_against_aig_exhaustive: too many inputs" );
  }
  std::vector<wide_simulator> sims;
  sims.reserve( circuits.size() );
  for ( const auto* circuit : circuits )
  {
    sims.emplace_back( *circuit, width );
    if ( sims.back().input_lines().size() != num_pis ||
         sims.back().output_lines().size() != aig.num_pos() )
    {
      throw std::invalid_argument( "verify_against_aig_exhaustive: interface mismatch" );
    }
  }
  std::vector<partial_verify_report> reports( circuits.size() );
  std::vector<char> live( circuits.size(), 1 );
  auto num_live = circuits.size();
  for ( auto& report : reports )
  {
    report.assignments_requested = std::uint64_t{ 1 } << num_pis;
  }
  wide_aig_simulator spec( aig, width );
  const auto poll_deadline = !stop.unlimited();
  const auto mask = block_mask( num_pis );
  const auto num_blocks = num_blocks_for( num_pis );
  std::vector<std::uint64_t> words( std::size_t{ num_pis } * W );
  for ( std::uint64_t blk = 0; blk < num_blocks && num_live > 0; blk += W )
  {
    if ( poll_deadline && stop.expired() )
    {
      for ( std::size_t c = 0; c < reports.size(); ++c )
      {
        if ( live[c] )
        {
          reports[c].complete = false;
        }
      }
      return reports;
    }
    fill_counter_wide( num_pis, blk, W, words );
    const auto& expected = spec.evaluate( words );
    for ( std::size_t c = 0; c < sims.size(); ++c )
    {
      if ( !live[c] )
      {
        continue;
      }
      const auto& actual = sims[c].evaluate( words );
      for ( unsigned k = 0; k < W && blk + k < num_blocks; ++k )
      {
        if ( const auto diff = diff_word_wide( expected, actual, W, k ) & mask )
        {
          reports[c].counterexample =
              unpack_wide_lane( words, W, k, static_cast<unsigned>( lsb_index( diff ) ) );
          reports[c].assignments_completed += lsb_index( diff ) + 1u;
          live[c] = 0;
          --num_live;
          break;
        }
        reports[c].assignments_completed += std::min<std::uint64_t>(
            64u, reports[c].assignments_requested - ( blk + k ) * 64u );
      }
    }
  }
  return reports;
}

/// Shared frontier sweep behind the sampled tiers.  The rng stream is
/// consumed one word per input per 64-lane block, in block order — exactly
/// the 64-bit oracle's draw order — so every width and batch shape sees
/// identical patterns.  Lane masking plus per-64-block accounting keeps
/// `assignments_completed` exact (never rounded up to lane-group
/// granularity) when the request size is not lane-aligned.
std::vector<partial_verify_report>
sampled_wide( const std::vector<const reversible_circuit*>& circuits, const aig_network& aig,
              const deadline& stop, unsigned num_samples, std::uint64_t seed, sim_width width )
{
  const auto num_pis = aig.num_pis();
  // When the whole input space is no larger than the sample budget,
  // enumerate it exhaustively: random sampling would draw duplicate
  // vectors and could certify a tiny design without ever covering it.
  if ( num_pis <= 24u && ( std::uint64_t{ 1 } << num_pis ) <= num_samples )
  {
    return exhaustive_wide( circuits, aig, stop, width );
  }
  const auto W = words_of( width );
  std::vector<wide_simulator> sims;
  sims.reserve( circuits.size() );
  for ( const auto* circuit : circuits )
  {
    sims.emplace_back( *circuit, width );
    if ( sims.back().input_lines().size() != num_pis ||
         sims.back().output_lines().size() != aig.num_pos() )
    {
      throw std::invalid_argument( "verify_against_aig_sampled: interface mismatch" );
    }
  }
  std::mt19937_64 rng( seed );
  const std::uint64_t total = std::uint64_t{ num_samples } + 2u;
  std::vector<partial_verify_report> reports( circuits.size() );
  std::vector<char> live( circuits.size(), 1 );
  auto num_live = circuits.size();
  for ( auto& report : reports )
  {
    report.assignments_requested = total;
  }
  wide_aig_simulator spec( aig, width );
  const auto poll_deadline = !stop.unlimited();
  std::vector<std::uint64_t> words( std::size_t{ num_pis } * W );
  for ( std::uint64_t base = 0; base < total && num_live > 0; base += std::uint64_t{ 64 } * W )
  {
    if ( poll_deadline && stop.expired() )
    {
      for ( std::size_t c = 0; c < reports.size(); ++c )
      {
        if ( live[c] )
        {
          reports[c].complete = false;
        }
      }
      return reports;
    }
    // One rng word per input per 64-lane block = 64 independent random
    // assignments per word; words past the request stay zero (masked out)
    // without consuming the stream.  The first block pins lane 0 to
    // all-zero and lane 1 to all-one.
    for ( unsigned k = 0; k < W; ++k )
    {
      const auto covered = base + std::uint64_t{ 64 } * k < total;
      for ( unsigned i = 0; i < num_pis; ++i )
      {
        auto w = covered ? rng() : 0u;
        if ( covered && base == 0 && k == 0 )
        {
          w = ( w & ~std::uint64_t{ 3 } ) | 2u;
        }
        words[std::size_t{ i } * W + k] = w;
      }
    }
    const auto& expected = spec.evaluate( words );
    for ( std::size_t c = 0; c < sims.size(); ++c )
    {
      if ( !live[c] )
      {
        continue;
      }
      const auto& actual = sims[c].evaluate( words );
      for ( unsigned k = 0; k < W && base + std::uint64_t{ 64 } * k < total; ++k )
      {
        const auto lanes = std::min<std::uint64_t>( 64u, total - ( base + std::uint64_t{ 64 } * k ) );
        const auto lane_mask = lanes == 64u ? all_ones : ( std::uint64_t{ 1 } << lanes ) - 1u;
        if ( const auto diff = diff_word_wide( expected, actual, W, k ) & lane_mask )
        {
          reports[c].counterexample =
              unpack_wide_lane( words, W, k, static_cast<unsigned>( lsb_index( diff ) ) );
          reports[c].assignments_completed += lsb_index( diff ) + 1u;
          live[c] = 0;
          --num_live;
          break;
        }
        reports[c].assignments_completed += lanes;
      }
    }
  }
  return reports;
}

} // namespace

partial_verify_report verify_against_aig_exhaustive_budgeted( const reversible_circuit& circuit,
                                                              const aig_network& aig,
                                                              const deadline& stop,
                                                              sim_width width )
{
  return exhaustive_wide( { &circuit }, aig, stop, width ).front();
}

partial_verify_report verify_against_aig_exhaustive_budgeted( const reversible_circuit& circuit,
                                                              const aig_network& aig,
                                                              const deadline& stop )
{
  const auto num_pis = aig.num_pis();
  const auto width =
      num_pis > 24u ? sim_width::w512 : auto_sim_width( std::uint64_t{ 1 } << num_pis );
  return verify_against_aig_exhaustive_budgeted( circuit, aig, stop, width );
}

std::optional<std::vector<bool>> verify_against_aig_exhaustive( const reversible_circuit& circuit,
                                                                const aig_network& aig )
{
  return verify_against_aig_exhaustive_budgeted( circuit, aig, deadline{} ).counterexample;
}

partial_verify_report verify_against_aig_sampled_budgeted( const reversible_circuit& circuit,
                                                           const aig_network& aig,
                                                           const deadline& stop,
                                                           unsigned num_samples,
                                                           std::uint64_t seed, sim_width width )
{
  return sampled_wide( { &circuit }, aig, stop, num_samples, seed, width ).front();
}

partial_verify_report verify_against_aig_sampled_budgeted( const reversible_circuit& circuit,
                                                           const aig_network& aig,
                                                           const deadline& stop,
                                                           unsigned num_samples,
                                                           std::uint64_t seed )
{
  return verify_against_aig_sampled_budgeted( circuit, aig, stop, num_samples, seed,
                                              auto_sim_width( std::uint64_t{ num_samples } + 2u ) );
}

std::optional<std::vector<bool>> verify_against_aig_sampled( const reversible_circuit& circuit,
                                                             const aig_network& aig,
                                                             unsigned num_samples,
                                                             std::uint64_t seed )
{
  return verify_against_aig_sampled_budgeted( circuit, aig, deadline{}, num_samples, seed )
      .counterexample;
}

std::vector<partial_verify_report>
verify_batch_against_aig_exhaustive_budgeted( const std::vector<const reversible_circuit*>& circuits,
                                              const aig_network& aig, const deadline& stop,
                                              sim_width width )
{
  return exhaustive_wide( circuits, aig, stop, width );
}

std::vector<partial_verify_report>
verify_batch_against_aig_sampled_budgeted( const std::vector<const reversible_circuit*>& circuits,
                                           const aig_network& aig, const deadline& stop,
                                           unsigned num_samples, std::uint64_t seed,
                                           sim_width width )
{
  return sampled_wide( circuits, aig, stop, num_samples, seed, width );
}

// --- SAT tier ----------------------------------------------------------------

aig_network circuit_to_aig( const reversible_circuit& circuit )
{
  const auto in_lines = input_lines_of( circuit );
  const auto out_lines = output_lines_of( circuit );
  aig_network aig( static_cast<unsigned>( in_lines.size() ) );
  // Symbolic line state: a literal per line, updated gate by gate.
  std::vector<aig_lit> state( circuit.num_lines(), aig_network::const0 );
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    if ( circuit.line( l ).is_constant_input )
    {
      state[l] = aig_network::get_constant( circuit.line( l ).constant_value );
    }
  }
  for ( std::size_t i = 0; i < in_lines.size(); ++i )
  {
    state[in_lines[i]] = aig.pi( static_cast<unsigned>( i ) );
  }
  for ( const auto& g : circuit.gates() )
  {
    std::vector<aig_lit> controls;
    controls.reserve( g.controls.size() );
    for ( const auto& c : g.controls )
    {
      controls.push_back( lit_not_cond( state[c.line], !c.positive ) );
    }
    const auto fire = aig.create_nary_and( std::move( controls ) );
    state[g.target] = aig.create_xor( state[g.target], fire );
  }
  for ( const auto line : out_lines )
  {
    aig.add_po( state[line] );
  }
  return aig;
}

std::optional<std::vector<bool>> verify_against_aig_sat( const reversible_circuit& circuit,
                                                         const aig_network& aig )
{
  sat::incremental_cec engine;
  return verify_against_aig_sat( circuit, aig, engine );
}

std::optional<std::vector<bool>> verify_against_aig_sat( const reversible_circuit& circuit,
                                                         const aig_network& aig,
                                                         sat::incremental_cec& engine,
                                                         unsigned* failing_output )
{
  const auto outcome = verify_against_aig_sat_budgeted( circuit, aig, engine, sat::check_limits{} );
  if ( outcome.equivalent )
  {
    return std::nullopt;
  }
  if ( failing_output && outcome.failing_output )
  {
    *failing_output = *outcome.failing_output;
  }
  return outcome.counterexample;
}

sat_verify_outcome verify_against_aig_sat_budgeted( const reversible_circuit& circuit,
                                                    const aig_network& aig,
                                                    sat::incremental_cec& engine,
                                                    const sat::check_limits& limits )
{
  const auto impl = circuit_to_aig( circuit );
  if ( impl.num_pis() != aig.num_pis() || impl.num_pos() != aig.num_pos() )
  {
    throw std::invalid_argument( "verify_against_aig_sat: interface mismatch" );
  }
  const auto checked = engine.check( aig, impl, limits );
  sat_verify_outcome outcome;
  outcome.resolved = checked.resolved;
  outcome.equivalent = checked.resolved && checked.equivalent;
  outcome.counterexample = checked.counterexample;
  outcome.failing_output = checked.failing_output;
  return outcome;
}

reversible_circuit corrupt_circuit( const reversible_circuit& circuit, const aig_network& spec )
{
  auto corrupted = circuit;
  for ( std::size_t g = corrupted.num_gates(); g-- > 0; )
  {
    auto& gate = corrupted.gates()[g];
    const auto original = gate.target;
    for ( std::uint32_t t = 0; t < corrupted.num_lines(); ++t )
    {
      const auto on_control =
          std::any_of( gate.controls.begin(), gate.controls.end(),
                       [t]( const control& c ) { return c.line == t; } );
      if ( t == original || on_control )
      {
        continue;
      }
      gate.target = t;
      if ( verify_against_aig_exhaustive( corrupted, spec ).has_value() )
      {
        return corrupted;
      }
      gate.target = original;
    }
  }
  throw std::logic_error( "corrupt_circuit: no single retarget changes the function" );
}

bool verify_permutation( const reversible_circuit& circuit,
                         const std::vector<std::uint64_t>& expected )
{
  if ( circuit.num_lines() > 20u )
  {
    throw std::invalid_argument( "verify_permutation: too many lines" );
  }
  return circuit.permutation() == expected;
}

} // namespace qsyn
