#include "verify.hpp"

#include <random>
#include <stdexcept>

namespace qsyn
{

std::vector<std::uint32_t> input_lines_of( const reversible_circuit& circuit )
{
  std::vector<std::uint32_t> lines;
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    if ( circuit.line( l ).is_primary_input )
    {
      lines.push_back( l );
    }
  }
  return lines;
}

std::vector<std::uint32_t> output_lines_of( const reversible_circuit& circuit )
{
  int max_index = -1;
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    max_index = std::max( max_index, circuit.line( l ).output_index );
  }
  std::vector<std::uint32_t> lines( static_cast<std::size_t>( max_index + 1 ), 0u );
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    const auto idx = circuit.line( l ).output_index;
    if ( idx >= 0 )
    {
      lines[static_cast<std::size_t>( idx )] = l;
    }
  }
  return lines;
}

std::vector<bool> evaluate_circuit( const reversible_circuit& circuit,
                                    const std::vector<bool>& inputs )
{
  const auto in_lines = input_lines_of( circuit );
  if ( inputs.size() != in_lines.size() )
  {
    throw std::invalid_argument( "evaluate_circuit: input arity mismatch" );
  }
  std::vector<bool> state( circuit.num_lines(), false );
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    if ( circuit.line( l ).is_constant_input )
    {
      state[l] = circuit.line( l ).constant_value;
    }
  }
  for ( std::size_t i = 0; i < in_lines.size(); ++i )
  {
    state[in_lines[i]] = inputs[i];
  }
  circuit.apply( state );
  const auto out_lines = output_lines_of( circuit );
  std::vector<bool> outputs( out_lines.size() );
  for ( std::size_t o = 0; o < out_lines.size(); ++o )
  {
    outputs[o] = state[out_lines[o]];
  }
  return outputs;
}

bool verify_against_truth_tables( const reversible_circuit& circuit,
                                  const std::vector<truth_table>& outputs )
{
  const auto in_lines = input_lines_of( circuit );
  const auto num_inputs = static_cast<unsigned>( in_lines.size() );
  if ( num_inputs > 16u )
  {
    throw std::invalid_argument( "verify_against_truth_tables: too many inputs" );
  }
  for ( std::uint64_t x = 0; x < ( std::uint64_t{ 1 } << num_inputs ); ++x )
  {
    std::vector<bool> inputs( num_inputs );
    for ( unsigned i = 0; i < num_inputs; ++i )
    {
      inputs[i] = ( x >> i ) & 1u;
    }
    const auto result = evaluate_circuit( circuit, inputs );
    if ( result.size() != outputs.size() )
    {
      return false;
    }
    for ( std::size_t o = 0; o < outputs.size(); ++o )
    {
      if ( result[o] != outputs[o].get_bit( x ) )
      {
        return false;
      }
    }
  }
  return true;
}

std::optional<std::vector<bool>> verify_against_aig_sampled( const reversible_circuit& circuit,
                                                             const aig_network& aig,
                                                             unsigned num_samples,
                                                             std::uint64_t seed )
{
  const auto in_lines = input_lines_of( circuit );
  if ( in_lines.size() != aig.num_pis() )
  {
    throw std::invalid_argument( "verify_against_aig_sampled: input arity mismatch" );
  }
  // When the whole input space is no larger than the sample budget,
  // enumerate it exhaustively: random sampling would draw duplicate
  // vectors and could certify a tiny design without ever covering it.
  const auto num_pis = aig.num_pis();
  if ( num_pis < 64u && ( std::uint64_t{ 1 } << num_pis ) <= num_samples )
  {
    for ( std::uint64_t x = 0; x < ( std::uint64_t{ 1 } << num_pis ); ++x )
    {
      std::vector<bool> inputs( num_pis );
      for ( unsigned i = 0; i < num_pis; ++i )
      {
        inputs[i] = ( x >> i ) & 1u;
      }
      const auto expected = aig.evaluate( inputs );
      const auto actual = evaluate_circuit( circuit, inputs );
      if ( expected != actual )
      {
        return inputs;
      }
    }
    return std::nullopt;
  }
  std::mt19937_64 rng( seed );
  for ( unsigned s = 0; s < num_samples + 2u; ++s )
  {
    std::vector<bool> inputs( aig.num_pis() );
    if ( s == 0 )
    {
      // all zero
    }
    else if ( s == 1 )
    {
      inputs.assign( aig.num_pis(), true );
    }
    else
    {
      for ( std::size_t i = 0; i < inputs.size(); ++i )
      {
        inputs[i] = rng() & 1u;
      }
    }
    const auto expected = aig.evaluate( inputs );
    const auto actual = evaluate_circuit( circuit, inputs );
    if ( expected != actual )
    {
      return inputs;
    }
  }
  return std::nullopt;
}

bool verify_permutation( const reversible_circuit& circuit,
                         const std::vector<std::uint64_t>& expected )
{
  if ( circuit.num_lines() > 20u )
  {
    throw std::invalid_argument( "verify_permutation: too many lines" );
  }
  return circuit.permutation() == expected;
}

} // namespace qsyn
