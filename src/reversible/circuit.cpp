#include "circuit.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace qsyn
{

reversible_circuit::reversible_circuit( unsigned num_lines ) : lines_( num_lines ) {}

unsigned reversible_circuit::add_line( const line_info& info )
{
  lines_.push_back( info );
  return static_cast<unsigned>( lines_.size() - 1u );
}

void reversible_circuit::add_gate( toffoli_gate gate )
{
  assert( gate.target < num_lines() );
#ifndef NDEBUG
  for ( const auto& c : gate.controls )
  {
    assert( c.line < num_lines() );
    assert( c.line != gate.target );
  }
#endif
  gates_.push_back( std::move( gate ) );
}

void reversible_circuit::add_not( std::uint32_t target )
{
  add_gate( { {}, target } );
}

void reversible_circuit::add_cnot( std::uint32_t ctrl, std::uint32_t target )
{
  add_gate( { { { ctrl, true } }, target } );
}

void reversible_circuit::add_toffoli( std::uint32_t c0, std::uint32_t c1, std::uint32_t target )
{
  add_gate( { { { c0, true }, { c1, true } }, target } );
}

void reversible_circuit::add_mct( const std::vector<control>& controls, std::uint32_t target )
{
  add_gate( { controls, target } );
}

void reversible_circuit::add_swap( std::uint32_t a, std::uint32_t b )
{
  add_cnot( a, b );
  add_cnot( b, a );
  add_cnot( a, b );
}

void reversible_circuit::add_fredkin( std::uint32_t ctrl, std::uint32_t a, std::uint32_t b )
{
  add_cnot( b, a );
  add_toffoli( ctrl, a, b );
  add_cnot( b, a );
}

void reversible_circuit::append( const reversible_circuit& other )
{
  assert( other.num_lines() <= num_lines() );
  for ( const auto& g : other.gates_ )
  {
    add_gate( g );
  }
}

void reversible_circuit::append_reversed( const reversible_circuit& other )
{
  assert( other.num_lines() <= num_lines() );
  for ( auto it = other.gates_.rbegin(); it != other.gates_.rend(); ++it )
  {
    add_gate( *it );
  }
}

void reversible_circuit::append_reversed_window( std::size_t begin, std::size_t end )
{
  assert( begin <= end && end <= gates_.size() );
  for ( std::size_t i = end; i > begin; --i )
  {
    gates_.push_back( gates_[i - 1u] );
  }
}

void reversible_circuit::apply( std::vector<bool>& state ) const
{
  assert( state.size() == num_lines() );
  for ( const auto& g : gates_ )
  {
    bool fire = true;
    for ( const auto& c : g.controls )
    {
      if ( state[c.line] != c.positive )
      {
        fire = false;
        break;
      }
    }
    if ( fire )
    {
      state[g.target] = !state[g.target];
    }
  }
}

std::vector<bool> reversible_circuit::simulate( const std::vector<bool>& inputs ) const
{
  auto state = inputs;
  apply( state );
  return state;
}

std::vector<std::uint64_t> reversible_circuit::permutation() const
{
  if ( num_lines() > 24u )
  {
    throw std::invalid_argument( "reversible_circuit::permutation: too many lines" );
  }
  const std::uint64_t size = std::uint64_t{ 1 } << num_lines();
  std::vector<std::uint64_t> perm( size );
  for ( std::uint64_t i = 0; i < size; ++i )
  {
    perm[i] = i;
  }
  for ( const auto& g : gates_ )
  {
    std::uint64_t control_mask = 0;
    std::uint64_t control_value = 0;
    for ( const auto& c : g.controls )
    {
      control_mask |= std::uint64_t{ 1 } << c.line;
      if ( c.positive )
      {
        control_value |= std::uint64_t{ 1 } << c.line;
      }
    }
    const auto target_bit = std::uint64_t{ 1 } << g.target;
    for ( std::uint64_t i = 0; i < size; ++i )
    {
      if ( ( perm[i] & control_mask ) == control_value )
      {
        perm[i] ^= target_bit;
      }
    }
  }
  return perm;
}

std::size_t reversible_circuit::num_toffoli_gates() const
{
  return static_cast<std::size_t>(
      std::count_if( gates_.begin(), gates_.end(),
                     []( const toffoli_gate& g ) { return g.controls.size() >= 2u; } ) );
}

std::string reversible_circuit::to_string() const
{
  std::ostringstream os;
  os << "circuit(" << num_lines() << " lines, " << num_gates() << " gates)\n";
  for ( const auto& g : gates_ )
  {
    os << "  t(";
    for ( std::size_t i = 0; i < g.controls.size(); ++i )
    {
      if ( i > 0 )
      {
        os << ", ";
      }
      os << ( g.controls[i].positive ? "" : "!" ) << g.controls[i].line;
    }
    os << ") -> " << g.target << "\n";
  }
  return os.str();
}

} // namespace qsyn
