#include "cost.hpp"

#include <algorithm>

namespace qsyn
{

namespace
{

/// Linear-ladder cost, valid when at least k-2 dirty ancillae are free.
std::uint64_t linear_cost( unsigned k )
{
  if ( k <= 1u )
  {
    return 0u;
  }
  if ( k == 2u )
  {
    return 7u;
  }
  return 8ull * k - 9ull;
}

} // namespace

std::uint64_t toffoli_t_count( unsigned num_controls, unsigned free_lines )
{
  const auto k = num_controls;
  if ( k <= 1u )
  {
    return 0u;
  }
  if ( k == 2u )
  {
    return 7u;
  }
  if ( free_lines >= k - 2u )
  {
    return linear_cost( k );
  }
  if ( free_lines >= 1u )
  {
    // Barenco Lemma 7.3: split into two halves, each executed twice; the
    // controls of one half serve as dirty ancillae of the other, so both
    // halves use the linear ladder.
    const unsigned m = ( k + 1u ) / 2u;
    return 2ull * linear_cost( m ) + 2ull * linear_cost( k - m + 1u );
  }
  // No ancilla at all: quadratic construction.
  return 16ull * ( k - 1u ) * ( k - 2u ) + 7ull;
}

std::uint64_t circuit_t_count( const reversible_circuit& circuit )
{
  std::uint64_t total = 0;
  const auto lines = circuit.num_lines();
  for ( const auto& g : circuit.gates() )
  {
    const auto touched = g.num_controls() + 1u;
    const auto free_lines = lines >= touched ? lines - touched : 0u;
    total += toffoli_t_count( g.num_controls(), free_lines );
  }
  return total;
}

std::uint64_t circuit_depth( const reversible_circuit& circuit )
{
  std::vector<std::uint64_t> line_level( circuit.num_lines(), 0u );
  std::uint64_t depth = 0;
  for ( const auto& g : circuit.gates() )
  {
    std::uint64_t level = line_level[g.target];
    for ( const auto& c : g.controls )
    {
      level = std::max( level, line_level[c.line] );
    }
    ++level;
    line_level[g.target] = level;
    for ( const auto& c : g.controls )
    {
      line_level[c.line] = level;
    }
    depth = std::max( depth, level );
  }
  return depth;
}

cost_report report_costs( const reversible_circuit& circuit )
{
  cost_report report;
  report.qubits = circuit.num_lines();
  report.t_count = circuit_t_count( circuit );
  report.gates = circuit.num_gates();
  report.toffoli_gates = circuit.num_toffoli_gates();
  report.depth = circuit_depth( circuit );
  return report;
}

} // namespace qsyn
