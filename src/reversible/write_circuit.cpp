#include "write_circuit.hpp"

#include <algorithm>
#include <sstream>

namespace qsyn
{

void write_real( const reversible_circuit& circuit, std::ostream& os, const std::string& name )
{
  os << "# " << name << "\n.version 2.0\n";
  os << ".numvars " << circuit.num_lines() << "\n";
  os << ".variables";
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    const auto& info = circuit.line( l );
    os << " " << ( info.name.empty() ? "l" + std::to_string( l ) : info.name );
  }
  os << "\n.constants ";
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    const auto& info = circuit.line( l );
    os << ( info.is_constant_input ? ( info.constant_value ? '1' : '0' ) : '-' );
  }
  os << "\n.garbage ";
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    os << ( circuit.line( l ).is_garbage ? '1' : '-' );
  }
  os << "\n.begin\n";
  for ( const auto& g : circuit.gates() )
  {
    os << "t" << ( g.num_controls() + 1u );
    for ( const auto& c : g.controls )
    {
      const auto& info = circuit.line( c.line );
      os << " " << ( c.positive ? "" : "-" )
         << ( info.name.empty() ? "l" + std::to_string( c.line ) : info.name );
    }
    const auto& tinfo = circuit.line( g.target );
    os << " " << ( tinfo.name.empty() ? "l" + std::to_string( g.target ) : tinfo.name ) << "\n";
  }
  os << ".end\n";
}

std::string to_real( const reversible_circuit& circuit, const std::string& name )
{
  std::ostringstream os;
  write_real( circuit, os, name );
  return os.str();
}

namespace
{

/// Emits a positive-control multi-controlled X onto `target` using a CCX
/// V-chain over `anc` (ancillae are returned to zero).
void emit_mcx( std::ostream& os, const std::vector<std::uint32_t>& controls,
               std::uint32_t target, unsigned num_anc_base )
{
  if ( controls.empty() )
  {
    os << "x q[" << target << "];\n";
    return;
  }
  if ( controls.size() == 1u )
  {
    os << "cx q[" << controls[0] << "],q[" << target << "];\n";
    return;
  }
  if ( controls.size() == 2u )
  {
    os << "ccx q[" << controls[0] << "],q[" << controls[1] << "],q[" << target << "];\n";
    return;
  }
  // V-chain over k-2 ancillae: a[0] = c0 & c1; a[i] = a[i-1] & c_{i+1} up
  // to c_{k-2}; the target flips on (a[k-3], c_{k-1}); then uncompute.
  const auto k = controls.size();
  std::ostringstream chain;
  chain << "ccx q[" << controls[0] << "],q[" << controls[1] << "],a[" << num_anc_base << "];\n";
  for ( std::size_t i = 2; i + 1u < k; ++i )
  {
    chain << "ccx q[" << controls[i] << "],a[" << ( num_anc_base + i - 2u ) << "],a["
          << ( num_anc_base + i - 1u ) << "];\n";
  }
  const auto compute = chain.str();
  os << compute;
  os << "ccx q[" << controls[k - 1u] << "],a[" << ( num_anc_base + k - 3u ) << "],q[" << target
     << "];\n";
  // Uncompute in reverse order.
  std::vector<std::string> lines;
  std::istringstream in( compute );
  std::string line;
  while ( std::getline( in, line ) )
  {
    lines.push_back( line );
  }
  for ( auto it = lines.rbegin(); it != lines.rend(); ++it )
  {
    os << *it << "\n";
  }
}

} // namespace

void write_qasm( const reversible_circuit& circuit, std::ostream& os )
{
  unsigned max_controls = 0;
  for ( const auto& g : circuit.gates() )
  {
    max_controls = std::max( max_controls, g.num_controls() );
  }
  const unsigned num_ancilla = max_controls > 2u ? max_controls - 2u : 0u;
  os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  os << "qreg q[" << circuit.num_lines() << "];\n";
  if ( num_ancilla > 0 )
  {
    os << "qreg a[" << num_ancilla << "];\n";
  }
  // Initialize constant-1 inputs.
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    if ( circuit.line( l ).is_constant_input && circuit.line( l ).constant_value )
    {
      os << "x q[" << l << "];\n";
    }
  }
  for ( const auto& g : circuit.gates() )
  {
    // Conjugate negative controls with X.
    for ( const auto& c : g.controls )
    {
      if ( !c.positive )
      {
        os << "x q[" << c.line << "];\n";
      }
    }
    std::vector<std::uint32_t> controls;
    controls.reserve( g.controls.size() );
    for ( const auto& c : g.controls )
    {
      controls.push_back( c.line );
    }
    emit_mcx( os, controls, g.target, 0 );
    for ( const auto& c : g.controls )
    {
      if ( !c.positive )
      {
        os << "x q[" << c.line << "];\n";
      }
    }
  }
}

std::string to_qasm( const reversible_circuit& circuit )
{
  std::ostringstream os;
  write_qasm( circuit, os );
  return os.str();
}

} // namespace qsyn
