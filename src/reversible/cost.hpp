/// \file cost.hpp
/// \brief Quantum cost model: T-count of Toffoli networks.
///
/// The paper reports, for every synthesized circuit, the number of qubits
/// and the T-count "according to [26] and [27]" (Maslov's relative-phase
/// Toffoli constructions and the Barenco et al. decompositions).  We make
/// the model explicit and ancilla-aware; free lines are lines the gate does
/// not touch, usable as dirty ancillae:
///
///   k <= 1                 : 0        (NOT / CNOT are Clifford)
///   k == 2                 : 7        (standard Toffoli decomposition)
///   k >= 3, free >= k-2    : 8k - 9   (ladder of 2(k-2) relative-phase
///                                      Toffolis at 4 T each plus one full
///                                      Toffoli, Maslov [26])
///   k >= 3, free >= 1      : recursive halving (Barenco Lemma 7.3): the
///                            gate splits into 2 x C^m(X) + 2 x C^(k-m+1)(X)
///                            with m = ceil(k/2), each of which then has
///                            enough dirty ancillae for the linear ladder
///   k >= 3, free == 0      : 16(k-1)(k-2) + 7, the quadratic no-ancilla
///                            construction (Barenco Lemma 7.5 applied
///                            recursively)
///
/// The last case is what makes transformation-based circuits (whose gates
/// touch *all* lines) pay a quadratic price per gate — exactly the effect
/// behind the very large T-counts in Table II.

#pragma once

#include <cstdint>

#include "circuit.hpp"

namespace qsyn
{

/// T-count of a single k-control Toffoli given `free_lines` unused lines.
std::uint64_t toffoli_t_count( unsigned num_controls, unsigned free_lines );

/// T-count of a circuit: sum of per-gate costs, free lines counted per gate.
std::uint64_t circuit_t_count( const reversible_circuit& circuit );

/// Rough logical depth: greedy ASAP levelling where a gate depends on every
/// line it touches.
std::uint64_t circuit_depth( const reversible_circuit& circuit );

/// Aggregate cost report used by the flow drivers and benches.
struct cost_report
{
  unsigned qubits = 0;
  std::uint64_t t_count = 0;
  std::size_t gates = 0;
  std::size_t toffoli_gates = 0;
  std::uint64_t depth = 0;
};

cost_report report_costs( const reversible_circuit& circuit );

} // namespace qsyn
