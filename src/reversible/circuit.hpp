/// \file circuit.hpp
/// \brief Reversible circuits over the mixed-polarity multiple-controlled
/// Toffoli gate library (paper Sec. II-C).
///
/// A circuit is a cascade of Toffoli gates over `num_lines()` lines.  Each
/// gate has a set of positive/negative controls and one target; the target
/// is inverted iff every positive control reads 1 and every negative
/// control reads 0.  NOT and CNOT are the 0- and 1-control special cases.
///
/// Lines carry metadata (primary input / constant ancilla / which output a
/// line holds / garbage) so that flows can report qubit counts and verify
/// semantics against the original irreversible specification.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qsyn
{

/// A control connection of a Toffoli gate.
struct control
{
  std::uint32_t line;
  bool positive; ///< false = negative control (fires on 0)

  bool operator==( const control& other ) const
  {
    return line == other.line && positive == other.positive;
  }
};

/// One mixed-polarity multiple-controlled Toffoli gate.
struct toffoli_gate
{
  std::vector<control> controls;
  std::uint32_t target = 0;

  unsigned num_controls() const { return static_cast<unsigned>( controls.size() ); }
};

/// Role of a circuit line at the circuit boundary.
struct line_info
{
  std::string name;

  /// Input side.
  bool is_primary_input = false;   ///< carries an input variable
  bool is_constant_input = false;  ///< ancilla with a fixed initial value
  bool constant_value = false;

  /// Output side.
  int output_index = -1;           ///< >= 0: holds primary output #output_index
  bool is_garbage = true;          ///< discarded at the end
};

/// A reversible (Toffoli) circuit.
class reversible_circuit
{
public:
  reversible_circuit() = default;
  explicit reversible_circuit( unsigned num_lines );

  unsigned num_lines() const { return static_cast<unsigned>( lines_.size() ); }
  std::size_t num_gates() const { return gates_.size(); }
  const std::vector<toffoli_gate>& gates() const { return gates_; }
  std::vector<toffoli_gate>& gates() { return gates_; }

  line_info& line( unsigned index ) { return lines_.at( index ); }
  const line_info& line( unsigned index ) const { return lines_.at( index ); }

  /// Appends a fresh line; returns its index.
  unsigned add_line( const line_info& info = {} );

  /// --- gate constructors ---------------------------------------------------

  void add_gate( toffoli_gate gate );
  /// NOT gate.
  void add_not( std::uint32_t target );
  /// CNOT with a positive control.
  void add_cnot( std::uint32_t ctrl, std::uint32_t target );
  /// Toffoli with two positive controls.
  void add_toffoli( std::uint32_t c0, std::uint32_t c1, std::uint32_t target );
  /// General gate from (line, polarity) pairs.
  void add_mct( const std::vector<control>& controls, std::uint32_t target );
  /// SWAP via three CNOTs.
  void add_swap( std::uint32_t a, std::uint32_t b );
  /// Fredkin (controlled swap) via CNOT + Toffoli + CNOT.
  void add_fredkin( std::uint32_t ctrl, std::uint32_t a, std::uint32_t b );

  /// Appends all gates of `other` (same line count).
  void append( const reversible_circuit& other );
  /// Appends the gates of `other` in reverse order (uncompute; Toffoli
  /// gates are self-inverse).
  void append_reversed( const reversible_circuit& other );
  /// Appends gates [begin, end) of this circuit reversed (in-place
  /// Bennett-style uncompute of a recorded window).
  void append_reversed_window( std::size_t begin, std::size_t end );

  /// --- semantics -------------------------------------------------------------

  /// Applies the circuit to a state vector of line values (in place).
  void apply( std::vector<bool>& state ) const;

  /// Simulates one input assignment; returns the final line values.
  std::vector<bool> simulate( const std::vector<bool>& inputs ) const;

  /// Full permutation over 2^num_lines() (num_lines() <= 24).
  std::vector<std::uint64_t> permutation() const;

  /// --- reporting ---------------------------------------------------------------

  /// Number of gates with >= 2 controls (classic "Toffoli count").
  std::size_t num_toffoli_gates() const;

  /// Human-readable gate list (debugging, small circuits).
  std::string to_string() const;

private:
  std::vector<line_info> lines_;
  std::vector<toffoli_gate> gates_;
};

} // namespace qsyn
