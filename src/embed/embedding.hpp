/// \file embedding.hpp
/// \brief Embedding irreversible functions into reversible ones
/// (paper Sec. II-B).
///
/// An n-input, m-output function f embeds into an r-variable reversible
/// function f' when constants can be applied to the extra inputs such that
/// the last m outputs of f' compute f (Eq. (1)).  The minimum number of
/// additional lines is ceil(log2 mu) where mu is the largest collision-set
/// size max_y |f^-1(y)| (Eq. (3)); computing it is coNP-complete in
/// general [17], but both an explicit truth-table scan and a BDD-based
/// characteristic-function analysis are exact and practical here.
///
/// Layout conventions of the constructed permutation (on 2^r states):
///  * input side:  x occupies the low n bits, constant-0 ancillae the rest,
///  * output side: f(x) occupies the *high* m bits (matching Eq. (1)'s
///    "last m outputs"), garbage the low r-m bits.

#pragma once

#include <cstdint>
#include <vector>

#include "../bdd/bdd.hpp"
#include "../logic/aig.hpp"
#include "../logic/truth_table.hpp"

namespace qsyn
{

/// Result of embedding an irreversible specification.
struct embedding
{
  unsigned num_inputs = 0;    ///< n
  unsigned num_outputs = 0;   ///< m
  unsigned num_lines = 0;     ///< r
  unsigned extra_lines = 0;   ///< r - n constant-0 inputs
  unsigned garbage_lines = 0; ///< r - m garbage outputs
  std::uint64_t max_collisions = 0; ///< mu of Eq. (3)

  /// The embedded reversible function as a permutation of 2^r states.
  std::vector<std::uint64_t> permutation;
};

/// Largest collision-set size via explicit enumeration (n <= ~24).
std::uint64_t max_collisions_explicit( const std::vector<truth_table>& outputs );

/// Largest collision-set size via a BDD characteristic function
/// chi(y, x) = AND_j (y_j XNOR f_j(x)) with the y variables ordered above
/// the x variables: every distinct sub-BDD at the x boundary is one
/// collision class; its satcount is the class size.
std::uint64_t max_collisions_bdd( const aig_network& aig );

/// Minimum additional lines (Eq. (3)).
unsigned minimum_extra_lines( const std::vector<truth_table>& outputs );

/// Builds a line-optimum embedding of the given multi-output function.
embedding embed_optimum( const std::vector<truth_table>& outputs );

/// Builds the Bennett embedding (Thm. 1): r = n + m lines, inputs
/// preserved, outputs XORed onto constant-0 lines.
embedding embed_bennett( const std::vector<truth_table>& outputs );

} // namespace qsyn
