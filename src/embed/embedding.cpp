#include "embedding.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "../common/bits.hpp"
#include "../synth/collapse.hpp"

namespace qsyn
{

namespace
{

/// Evaluates the output word for input x.
std::uint64_t output_word( const std::vector<truth_table>& outputs, std::uint64_t x )
{
  std::uint64_t y = 0;
  for ( std::size_t j = 0; j < outputs.size(); ++j )
  {
    if ( outputs[j].get_bit( x ) )
    {
      y |= std::uint64_t{ 1 } << j;
    }
  }
  return y;
}

} // namespace

std::uint64_t max_collisions_explicit( const std::vector<truth_table>& outputs )
{
  assert( !outputs.empty() );
  const auto n = outputs[0].num_vars();
  std::unordered_map<std::uint64_t, std::uint64_t> histogram;
  for ( std::uint64_t x = 0; x < ( std::uint64_t{ 1 } << n ); ++x )
  {
    ++histogram[output_word( outputs, x )];
  }
  std::uint64_t mu = 0;
  for ( const auto& [y, count] : histogram )
  {
    mu = std::max( mu, count );
  }
  return mu;
}

std::uint64_t max_collisions_bdd( const aig_network& aig )
{
  const auto n = aig.num_pis();
  const auto m = aig.num_pos();
  bdd_manager manager( n + m );
  // y variables 0..m-1 (top), x variables m..m+n-1 (bottom).
  const auto funcs = collapse_to_bdds( aig, manager, m );
  auto chi = manager.constant( true );
  for ( unsigned j = 0; j < m; ++j )
  {
    chi = manager.bdd_and( chi, manager.bdd_xnor( manager.var( j ), funcs[j] ) );
  }
  // Walk the y-level part of chi; every node reached at a variable >= m (or
  // a terminal) is the root of one collision-class characteristic function
  // over the x variables.
  std::unordered_set<bdd_node> boundary;
  std::unordered_set<bdd_node> visited;
  std::vector<bdd_node> stack{ chi };
  while ( !stack.empty() )
  {
    const auto f = stack.back();
    stack.pop_back();
    if ( visited.count( f ) )
    {
      continue;
    }
    visited.insert( f );
    if ( manager.is_constant( f ) || manager.top_var( f ) >= m )
    {
      if ( f != manager.constant( false ) )
      {
        boundary.insert( f );
      }
      continue;
    }
    stack.push_back( manager.low( f ) );
    stack.push_back( manager.high( f ) );
  }
  // Count x assignments of every boundary function.  satcount is over all
  // n + m variables; divide out the y part (variables < m are free above
  // the boundary node, but the boundary function does not depend on them).
  std::uint64_t mu = 0;
  for ( const auto f : boundary )
  {
    const double count = manager.sat_count( f ); // over n + m vars
    const double x_count = count / std::ldexp( 1.0, static_cast<int>( m ) );
    mu = std::max( mu, static_cast<std::uint64_t>( x_count + 0.5 ) );
  }
  return mu;
}

unsigned minimum_extra_lines( const std::vector<truth_table>& outputs )
{
  const auto mu = max_collisions_explicit( outputs );
  return ceil_log2( mu );
}

embedding embed_optimum( const std::vector<truth_table>& outputs )
{
  assert( !outputs.empty() );
  const auto n = outputs[0].num_vars();
  const auto m = static_cast<unsigned>( outputs.size() );
  const auto mu = max_collisions_explicit( outputs );
  const auto g = ceil_log2( mu );
  const auto r = std::max( n, m + g );
  if ( r > 28u )
  {
    throw std::invalid_argument( "embed_optimum: too many lines for explicit permutation" );
  }

  embedding result;
  result.num_inputs = n;
  result.num_outputs = m;
  result.num_lines = r;
  result.extra_lines = r - n;
  result.garbage_lines = r - m;
  result.max_collisions = mu;

  const std::uint64_t size = std::uint64_t{ 1 } << r;
  constexpr std::uint64_t unassigned = ~std::uint64_t{ 0 };
  result.permutation.assign( size, unassigned );

  // Valid inputs: (ancilla = 0, x); map to (f(x) << (r-m)) | garbage index
  // within the collision class of f(x).
  std::unordered_map<std::uint64_t, std::uint64_t> class_counter;
  std::vector<bool> output_used( size, false );
  for ( std::uint64_t x = 0; x < ( std::uint64_t{ 1 } << n ); ++x )
  {
    const auto y = output_word( outputs, x );
    const auto garbage = class_counter[y]++;
    assert( garbage < ( std::uint64_t{ 1 } << ( r - m ) ) );
    const auto image = ( y << ( r - m ) ) | garbage;
    result.permutation[x] = image;
    output_used[image] = true;
  }
  // Complete to a bijection: remaining inputs get the remaining outputs in
  // ascending order.
  std::uint64_t next_free = 0;
  for ( std::uint64_t v = 0; v < size; ++v )
  {
    if ( result.permutation[v] != unassigned )
    {
      continue;
    }
    while ( output_used[next_free] )
    {
      ++next_free;
    }
    result.permutation[v] = next_free;
    output_used[next_free] = true;
  }
  return result;
}

embedding embed_bennett( const std::vector<truth_table>& outputs )
{
  assert( !outputs.empty() );
  const auto n = outputs[0].num_vars();
  const auto m = static_cast<unsigned>( outputs.size() );
  const auto r = n + m;
  if ( r > 28u )
  {
    throw std::invalid_argument( "embed_bennett: too many lines for explicit permutation" );
  }
  embedding result;
  result.num_inputs = n;
  result.num_outputs = m;
  result.num_lines = r;
  result.extra_lines = m;
  result.garbage_lines = n;
  result.max_collisions = max_collisions_explicit( outputs );

  const std::uint64_t size = std::uint64_t{ 1 } << r;
  result.permutation.resize( size );
  // State layout: x in low n bits, target register t in high m bits.
  // f'(x, t) = (x, t ^ f(x)); outputs in the high bits match Eq. (1) with
  // t = 0, and x doubles as the garbage.
  for ( std::uint64_t v = 0; v < size; ++v )
  {
    const auto x = v & ( ( std::uint64_t{ 1 } << n ) - 1u );
    const auto t = v >> n;
    const auto y = output_word( outputs, x );
    result.permutation[v] = x | ( ( t ^ y ) << n );
  }
  return result;
}

} // namespace qsyn
