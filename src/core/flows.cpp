#include "flows.hpp"

#include <stdexcept>

#include "../common/fault_injection.hpp"
#include "../common/timer.hpp"
#include "dse.hpp" // dse_label for tail task keys
#include "../reversible/verify.hpp"
#include "../sat/incremental.hpp"
#include "../store/artifact_store.hpp"
#include "../store/serialize.hpp"
#include "../synth/aig_optimize.hpp"
#include "../synth/collapse.hpp"
#include "../synth/esop_extract.hpp"
#include "../synth/exorcism.hpp"
#include "../verilog/elaborator.hpp"
#include "../verilog/generators.hpp"

namespace qsyn
{

std::string verify_mode_name( verify_mode mode )
{
  switch ( mode )
  {
  case verify_mode::none:
    return "none";
  case verify_mode::sampled:
    return "sampled";
  case verify_mode::exhaustive:
    return "exhaustive";
  case verify_mode::sat:
    return "sat";
  }
  return "unknown";
}

std::string flow_status_name( flow_status status )
{
  switch ( status )
  {
  case flow_status::ok:
    return "ok";
  case flow_status::degraded:
    return "degraded";
  case flow_status::timed_out:
    return "timed_out";
  case flow_status::failed:
    return "failed";
  }
  return "unknown";
}

std::optional<verify_mode> verify_mode_from_name( const std::string& name )
{
  if ( name == "none" )
  {
    return verify_mode::none;
  }
  if ( name == "sampled" )
  {
    return verify_mode::sampled;
  }
  if ( name == "exhaustive" )
  {
    return verify_mode::exhaustive;
  }
  if ( name == "sat" )
  {
    return verify_mode::sat;
  }
  return std::nullopt;
}

namespace
{

/// Functional synthesis tail: TBS over the cached embedding.  The input
/// variables are placed on the low lines, the outputs on the high lines
/// (the embedding's layout); line metadata reflects Eq. (1).
flow_result functional_tail( const flow_artifact_cache::functional_artifact& art,
                             const flow_params& params, const deadline& stop )
{
  flow_result result;
  result.embedding_lines = art.embed.num_lines;
  result.max_collisions = art.embed.max_collisions;

  tbs_params tparams;
  tparams.bidirectional = params.bidirectional_tbs;
  tparams.stop = stop;
  result.circuit = tbs_synthesize( art.embed.permutation, tparams );

  // Line metadata: inputs on the low n lines, outputs on the high m lines.
  const auto r = art.embed.num_lines;
  const auto n = art.embed.num_inputs;
  const auto m = art.embed.num_outputs;
  for ( unsigned l = 0; l < r; ++l )
  {
    auto& info = result.circuit.line( l );
    info.name = "l" + std::to_string( l );
    if ( l < n )
    {
      info.is_primary_input = true;
    }
    else
    {
      info.is_constant_input = true;
      info.constant_value = false;
    }
    if ( l >= r - m )
    {
      info.output_index = static_cast<int>( l - ( r - m ) );
      info.is_garbage = false;
    }
  }
  return result;
}

/// Store payload of an ESOP artifact: budget flag byte + cube list.
std::vector<std::uint8_t> encode_esop_payload( const flow_artifact_cache::esop_artifact& art )
{
  store::byte_writer w;
  w.u8( art.budget_exhausted ? 1u : 0u );
  store::write_esop( w, art.expression );
  return w.take();
}

/// Store payload of an XMG artifact: graph + resynthesis statistics.
std::vector<std::uint8_t> encode_xmg_payload( const flow_artifact_cache::xmg_artifact& art )
{
  store::byte_writer w;
  store::write_xmg( w, art.graph );
  w.u64( art.stats.luts );
  w.u64( art.stats.direct_forms );
  w.u64( art.stats.pprm_forms );
  w.u64( art.stats.isop_forms );
  return w.take();
}

} // namespace

// --- flow_artifact_cache -----------------------------------------------------

flow_artifact_cache::flow_artifact_cache() = default;
flow_artifact_cache::~flow_artifact_cache() = default;

void flow_artifact_cache::check_same_design( const aig_network& aig )
{
  if ( !bound_ )
  {
    bound_ = true;
    bound_pis_ = aig.num_pis();
    bound_pos_ = aig.num_pos();
    bound_ands_ = aig.num_ands();
    bound_hash_ = aig.content_hash();
    return;
  }
  // Cheap size pre-check first; the structural hash then catches
  // equal-sized but functionally distinct designs, which a size-only
  // fingerprint silently aliased (serving one design's artifacts for the
  // other).
  if ( aig.num_pis() != bound_pis_ || aig.num_pos() != bound_pos_ ||
       aig.num_ands() != bound_ands_ || aig.content_hash() != bound_hash_ )
  {
    throw std::invalid_argument(
        "flow_artifact_cache: cache is bound to one design AIG (structural content hash "
        "mismatch); use one cache per design" );
  }
}

void flow_artifact_cache::attach_store( std::shared_ptr<store::artifact_store> disk )
{
  std::lock_guard<std::mutex> lock( mutex_ );
  store_ = std::move( disk );
}

std::shared_ptr<store::artifact_store> flow_artifact_cache::attached_store() const
{
  std::lock_guard<std::mutex> lock( mutex_ );
  return store_;
}

std::uint64_t flow_artifact_cache::design_hash() const
{
  std::lock_guard<std::mutex> lock( mutex_ );
  return bound_ ? bound_hash_ : 0u;
}

const aig_network& flow_artifact_cache::optimized_locked( const aig_network& aig,
                                                          unsigned rounds )
{
  check_same_design( aig );
  const auto it = optimized_.find( rounds );
  if ( it != optimized_.end() )
  {
    // An injected "cache.hit" trip forces this hit to behave like a miss:
    // the stage recomputes (and the recomputation is discarded — the
    // cached artifact is never replaced, so concurrent readers holding
    // references stay safe) and the miss is counted.
    if ( fault_injection::poll( "cache.hit" ) )
    {
      ++stats_.misses;
      const auto discarded = optimize( aig, rounds );
      (void)discarded;
      return it->second;
    }
    ++stats_.hits;
    return it->second;
  }
  const store::store_key skey{ bound_hash_, store::payload_kind::aig,
                               optimize_artifact_key( rounds ) };
  if ( store_ )
  {
    if ( const auto payload = store_->load( skey ) )
    {
      try
      {
        auto restored = store::deserialize_aig( *payload );
        ++stats_.store_hits;
        return optimized_.emplace( rounds, std::move( restored ) ).first->second;
      }
      catch ( const store::deserialize_error& )
      {
        // malformed payload behind a valid header: recompute below
      }
    }
  }
  ++stats_.misses;
  fault_injection::poll( "flow.optimize" );
  const auto& art = optimized_.emplace( rounds, optimize( aig, rounds ) ).first->second;
  if ( store_ )
  {
    store_->save( skey, store::serialize_aig( art ) );
  }
  return art;
}

const aig_network& flow_artifact_cache::optimized( const aig_network& aig, unsigned rounds )
{
  std::lock_guard<std::mutex> lock( mutex_ );
  return optimized_locked( aig, rounds );
}

const flow_artifact_cache::functional_artifact&
flow_artifact_cache::functional_intermediate( const aig_network& aig, unsigned rounds )
{
  std::lock_guard<std::mutex> lock( mutex_ );
  check_same_design( aig );
  // The functional intermediate (truth tables + embedding) has no disk
  // tier: it is exponential in the input count by construction, so it is
  // only ever built for small designs where recomputing is cheap.
  const auto it = functional_.find( rounds );
  if ( it != functional_.end() )
  {
    ++stats_.hits;
    return it->second;
  }
  const auto& opt = optimized_locked( aig, rounds );
  ++stats_.misses;
  fault_injection::poll( "flow.collapse" );
  functional_artifact art;
  art.outputs = collapse_to_truth_tables( opt );
  art.embed = embed_optimum( art.outputs );
  return functional_.emplace( rounds, std::move( art ) ).first->second;
}

const flow_artifact_cache::esop_artifact&
flow_artifact_cache::esop_intermediate( const aig_network& aig, unsigned rounds,
                                        bool run_exorcism,
                                        const exorcism_params& minimize_limits )
{
  std::lock_guard<std::mutex> lock( mutex_ );
  check_same_design( aig ); // binds the design hash before any store key is built
  const auto key = std::make_pair( rounds, run_exorcism );
  // A requester with an unexpired deadline carries budget: it may upgrade
  // a cached artifact whose minimization stopped at an earlier caller's
  // budget instead of reusing the half-minimized cube list as-is.
  const bool requester_has_budget = run_exorcism && !minimize_limits.stop.expired();
  const auto upgrade = [&]( std::shared_ptr<esop_artifact>& slot ) {
    auto upgraded = std::make_shared<esop_artifact>( *slot );
    const auto mstats = exorcism( upgraded->expression, minimize_limits );
    upgraded->budget_exhausted = mstats.budget_exhausted;
    upgraded->terms = upgraded->expression.num_terms();
    retired_esops_.push_back( slot ); // references handed out earlier stay valid
    slot = std::move( upgraded );
  };
  const store::store_key skey{ bound_hash_, store::payload_kind::esop,
                               "esop[r=" + std::to_string( rounds ) +
                                   ",exo=" + ( run_exorcism ? "1" : "0" ) + "]" };
  const auto it = esops_.find( key );
  if ( it != esops_.end() )
  {
    ++stats_.hits;
    if ( it->second->budget_exhausted && requester_has_budget )
    {
      upgrade( it->second );
      if ( store_ )
      {
        store_->save( skey, encode_esop_payload( *it->second ) );
      }
    }
    return *it->second;
  }
  if ( store_ )
  {
    if ( const auto payload = store_->load( skey ) )
    {
      try
      {
        store::byte_reader r( *payload );
        auto art = std::make_shared<esop_artifact>();
        art->budget_exhausted = r.u8() != 0u;
        art->expression = store::read_esop( r );
        r.expect_end();
        art->terms = art->expression.num_terms();
        ++stats_.store_hits;
        auto& slot = esops_.emplace( key, std::move( art ) ).first->second;
        if ( slot->budget_exhausted && requester_has_budget )
        {
          upgrade( slot );
          store_->save( skey, encode_esop_payload( *slot ) );
        }
        return *slot;
      }
      catch ( const store::deserialize_error& )
      {
        // malformed payload behind a valid header: recompute below
      }
    }
  }
  const auto& opt = optimized_locked( aig, rounds );
  ++stats_.misses;
  fault_injection::poll( "flow.esop" );
  auto art = std::make_shared<esop_artifact>();
  art->expression = esop_from_aig( opt );
  if ( run_exorcism )
  {
    const auto mstats = exorcism( art->expression, minimize_limits );
    art->budget_exhausted = mstats.budget_exhausted;
  }
  art->terms = art->expression.num_terms();
  const auto& slot = esops_.emplace( key, std::move( art ) ).first->second;
  if ( store_ )
  {
    store_->save( skey, encode_esop_payload( *slot ) );
  }
  return *slot;
}

const flow_artifact_cache::xmg_artifact&
flow_artifact_cache::xmg_intermediate( const aig_network& aig, unsigned rounds,
                                       unsigned cut_size )
{
  std::lock_guard<std::mutex> lock( mutex_ );
  check_same_design( aig );
  const auto key = std::make_pair( rounds, cut_size );
  const auto it = xmgs_.find( key );
  if ( it != xmgs_.end() )
  {
    ++stats_.hits;
    return it->second;
  }
  const store::store_key skey{ bound_hash_, store::payload_kind::xmg,
                               "xmg[r=" + std::to_string( rounds ) +
                                   ",k=" + std::to_string( cut_size ) + "]" };
  if ( store_ )
  {
    if ( const auto payload = store_->load( skey ) )
    {
      try
      {
        store::byte_reader r( *payload );
        xmg_artifact art;
        art.graph = store::read_xmg( r );
        art.stats.luts = r.u64();
        art.stats.direct_forms = r.u64();
        art.stats.pprm_forms = r.u64();
        art.stats.isop_forms = r.u64();
        r.expect_end();
        ++stats_.store_hits;
        return xmgs_.emplace( key, std::move( art ) ).first->second;
      }
      catch ( const store::deserialize_error& )
      {
        // malformed payload behind a valid header: recompute below
      }
    }
  }
  const auto& opt = optimized_locked( aig, rounds );
  ++stats_.misses;
  fault_injection::poll( "flow.xmg" );
  xmg_artifact art;
  art.graph = xmg_from_aig( opt, cut_size, &art.stats );
  const auto& slot = xmgs_.emplace( key, std::move( art ) ).first->second;
  if ( store_ )
  {
    store_->save( skey, encode_xmg_payload( slot ) );
  }
  return slot;
}

sat::incremental_cec& flow_artifact_cache::sat_engine()
{
  std::lock_guard<std::mutex> lock( mutex_ );
  if ( !sat_engine_ )
  {
    sat_engine_ = std::make_unique<sat::incremental_cec>();
  }
  return *sat_engine_;
}

void flow_artifact_cache::prefetch( const aig_network& aig, const flow_params& params,
                                    const deadline& stop )
{
  // Each stage intermediate computes the optimized AIG itself on a miss,
  // so no separate optimized() access (it would only skew the counters).
  switch ( params.kind )
  {
  case flow_kind::functional:
    functional_intermediate( aig, params.optimization_rounds );
    break;
  case flow_kind::esop_based:
  {
    exorcism_params mlimits;
    mlimits.pair_budget = params.limits.exorcism_pair_budget;
    mlimits.stop = stop;
    esop_intermediate( aig, params.optimization_rounds, params.run_exorcism, mlimits );
    break;
  }
  case flow_kind::hierarchical:
    xmg_intermediate( aig, params.optimization_rounds, params.cut_size );
    break;
  }
}

cache_stats flow_artifact_cache::stats() const
{
  std::lock_guard<std::mutex> lock( mutex_ );
  return stats_;
}

// --- task-graph builder ------------------------------------------------------

std::string flow_stage_name( flow_kind kind )
{
  switch ( kind )
  {
  case flow_kind::functional:
    return "collapse";
  case flow_kind::esop_based:
    return "esop";
  case flow_kind::hierarchical:
    return "xmg";
  }
  return "unknown";
}

std::string optimize_artifact_key( unsigned rounds )
{
  return "optimize[r=" + std::to_string( rounds ) + "]";
}

std::string flow_artifact_key( const flow_params& params )
{
  const auto r = std::to_string( params.optimization_rounds );
  switch ( params.kind )
  {
  case flow_kind::functional:
    return "collapse[r=" + r + "]";
  case flow_kind::esop_based:
    return "esop[r=" + r + ",exo=" + ( params.run_exorcism ? "1" : "0" ) + "]";
  case flow_kind::hierarchical:
    return "xmg[r=" + r + ",k=" + std::to_string( params.cut_size ) + "]";
  }
  return "unknown";
}

flow_task_ids add_flow_tasks( task_graph& graph, const aig_network& aig,
                              const flow_params& params, flow_artifact_cache& cache,
                              const deadline& stop, flow_result& out,
                              const std::string& key_prefix,
                              const std::vector<task_id>& extra_deps )
{
  flow_task_ids ids;
  ids.optimize = graph.add_shared(
      key_prefix + optimize_artifact_key( params.optimization_rounds ),
      [&aig, &cache, rounds = params.optimization_rounds] { cache.optimized( aig, rounds ); },
      extra_deps );

  const auto artifact_key = key_prefix + flow_artifact_key( params );
  switch ( params.kind )
  {
  case flow_kind::functional:
    ids.artifact = graph.add_shared(
        artifact_key,
        [&aig, &cache, rounds = params.optimization_rounds] {
          cache.functional_intermediate( aig, rounds );
        },
        { ids.optimize } );
    break;
  case flow_kind::esop_based:
    ids.artifact = graph.add_shared(
        artifact_key,
        [&aig, &cache, rounds = params.optimization_rounds,
         run_exorcism = params.run_exorcism,
         pair_budget = params.limits.exorcism_pair_budget, stop_ptr = &stop] {
          exorcism_params mlimits;
          mlimits.pair_budget = pair_budget;
          mlimits.stop = *stop_ptr;
          cache.esop_intermediate( aig, rounds, run_exorcism, mlimits );
        },
        { ids.optimize } );
    break;
  case flow_kind::hierarchical:
    ids.artifact = graph.add_shared(
        artifact_key,
        [&aig, &cache, rounds = params.optimization_rounds, cut = params.cut_size] {
          cache.xmg_intermediate( aig, rounds, cut );
        },
        { ids.optimize } );
    break;
  }

  // Unique (unkeyed) per-configuration tail: every stage lookup inside
  // run_flow_staged hits the cache the artifact tasks just filled, so the
  // tail is pure synthesis + verification.  The pre-start deadline check
  // keeps the tail-only engine's timed_out contract.  `stop` is read when
  // the task runs (not copied at build time), so batch drivers can arm the
  // per-configuration clock lazily from an upstream task.
  ids.tail = graph.add(
      key_prefix + "tail:" + dse_label( params ) + "#" + std::to_string( graph.size() ),
      [&aig, &cache, &out, params, stop_ptr = &stop] {
        if ( stop_ptr->expired() )
        {
          throw budget_exhausted( "deadline expired before the configuration started" );
        }
        out = run_flow_staged( aig, params, cache, *stop_ptr );
      },
      { ids.artifact } );
  return ids;
}

namespace
{

std::string graph_error_what( const std::exception_ptr& error )
{
  if ( !error )
  {
    return "unknown error";
  }
  try
  {
    std::rethrow_exception( error );
  }
  catch ( const std::exception& e )
  {
    return e.what();
  }
  catch ( ... )
  {
    return "unknown error";
  }
}

bool graph_error_is_budget( const std::exception_ptr& error )
{
  if ( !error )
  {
    return false;
  }
  try
  {
    std::rethrow_exception( error );
  }
  catch ( const budget_exhausted& )
  {
    return true;
  }
  catch ( ... )
  {
    return false;
  }
}

} // namespace

void fill_flow_status_from_graph( const task_graph& graph, task_id tail, flow_result& out )
{
  const auto state = graph.state( tail );
  if ( state == task_state::done )
  {
    return;
  }
  const auto error = graph.error( tail );
  out.status = graph_error_is_budget( error ) ? flow_status::timed_out : flow_status::failed;
  const auto& blame = graph.blame( tail );
  if ( state == task_state::poisoned && blame != graph.key( tail ) )
  {
    out.status_detail = "stage '" + blame + "' failed: " + graph_error_what( error );
  }
  else
  {
    out.status_detail = graph_error_what( error );
  }
}

// --- staged flow driver ------------------------------------------------------

void record_sim_verify_report( flow_result& result, const partial_verify_report& report )
{
  result.counterexample = report.counterexample;
  result.verify_complete = report.complete;
  result.verify_samples_requested = report.assignments_requested;
  result.verify_samples_completed = report.assignments_completed;
  result.verified = report.complete && !report.counterexample.has_value();
}

void finalize_verify_status( flow_result& result )
{
  if ( result.counterexample.has_value() )
  {
    return;
  }
  if ( !result.verify_complete )
  {
    if ( result.verify_samples_completed == 0 )
    {
      result.status = flow_status::timed_out;
      result.status_detail = "deadline expired before any verification coverage";
    }
    else if ( result.status != flow_status::timed_out )
    {
      result.status = flow_status::degraded;
      result.status_detail = "partial verification coverage: " +
                             std::to_string( result.verify_samples_completed ) + "/" +
                             std::to_string( result.verify_samples_requested ) + " assignments";
    }
  }
  else if ( result.verify_downgraded && result.verified_with == verify_mode::sampled &&
            result.status == flow_status::ok )
  {
    result.status = flow_status::degraded;
    result.status_detail = "sat verify budget exhausted; downgraded to sampled";
  }
}

flow_result run_flow_staged( const aig_network& aig, const flow_params& params,
                             flow_artifact_cache& cache )
{
  return run_flow_staged( aig, params, cache, deadline::in( params.limits.deadline_seconds ) );
}

flow_result run_flow_staged( const aig_network& aig, const flow_params& params,
                             flow_artifact_cache& cache, const deadline& stop )
{
  stopwatch watch;
  const auto& optimized = cache.optimized( aig, params.optimization_rounds );

  flow_result result;
  const std::vector<truth_table>* verify_outputs = nullptr;
  switch ( params.kind )
  {
  case flow_kind::functional:
  {
    const auto& art = cache.functional_intermediate( aig, params.optimization_rounds );
    result = functional_tail( art, params, stop );
    verify_outputs = &art.outputs;
    break;
  }
  case flow_kind::esop_based:
  {
    exorcism_params mlimits;
    mlimits.pair_budget = params.limits.exorcism_pair_budget;
    mlimits.stop = stop;
    const auto& art = cache.esop_intermediate( aig, params.optimization_rounds,
                                               params.run_exorcism, mlimits );
    result.esop_terms = art.terms;
    if ( art.budget_exhausted )
    {
      result.status = flow_status::degraded;
      result.status_detail = "exorcism stopped at its pair budget/deadline";
    }
    esop_synth_params sparams;
    sparams.p = params.esop_p;
    result.circuit = esop_synthesize( art.expression, sparams );
    break;
  }
  case flow_kind::hierarchical:
  {
    const auto& art =
        cache.xmg_intermediate( aig, params.optimization_rounds, params.cut_size );
    result.xmg_maj = art.graph.num_maj();
    result.xmg_xor = art.graph.num_xor();
    hierarchical_params hparams;
    hparams.cleanup = params.cleanup;
    result.circuit = hierarchical_synthesize( art.graph, hparams );
    break;
  }
  }
  result.aig_nodes_initial = aig.num_ands();
  result.aig_nodes_optimized = optimized.num_ands();
  result.costs = report_costs( result.circuit );
  // Synthesis runtime only: the stopwatch stops BEFORE verification, which
  // is simulation and was previously (wrongly) folded into every reported
  // runtime column.
  result.runtime_seconds = watch.elapsed_seconds();

  const auto mode = params.verify ? params.verification : verify_mode::none;
  if ( mode != verify_mode::none )
  {
    stopwatch verify_watch;
    // `verified_with` is assigned by the branch that actually produces the
    // verdict, so a downgraded SAT tier reports the fallback tier.
    const auto record_report = [&result]( const partial_verify_report& report ) {
      record_sim_verify_report( result, report );
    };
    switch ( mode )
    {
    case verify_mode::none:
      break;
    case verify_mode::sampled:
    case verify_mode::exhaustive:
      if ( verify_outputs )
      {
        // The functional flow checks against its collapsed truth tables —
        // block-driven full enumeration, so sampled == exhaustive here.
        result.verified_with = mode;
        result.verified = verify_against_truth_tables( result.circuit, *verify_outputs );
      }
      else if ( params.defer_sim_verify )
      {
        // The sweep engine owns this check: one wide cross-circuit batched
        // pass over the whole frontier replaces the per-configuration pass
        // (`verified_with` stays `none` until the batch report lands).
      }
      else
      {
        result.verified_with = mode;
        record_report( mode == verify_mode::sampled
                           ? verify_against_aig_sampled_budgeted( result.circuit, optimized, stop )
                           : verify_against_aig_exhaustive_budgeted( result.circuit, optimized,
                                                                     stop ) );
      }
      break;
    case verify_mode::sat:
    {
      // The cache-owned persistent engine: every configuration of a sweep
      // re-uses the spec encoding and the lemmas of earlier checks.  An
      // injected "verify.sat" trip simulates immediate budget exhaustion.
      sat::check_limits climits;
      climits.stop = stop;
      climits.conflict_budget = params.limits.sat_conflict_budget;
      climits.propagation_budget = params.limits.sat_propagation_budget;
      sat_verify_outcome outcome;
      if ( fault_injection::poll( "verify.sat" ) )
      {
        outcome.resolved = false;
      }
      else
      {
        outcome =
            verify_against_aig_sat_budgeted( result.circuit, optimized, cache.sat_engine(), climits );
      }
      if ( outcome.resolved )
      {
        result.verified_with = verify_mode::sat;
        result.verified = outcome.equivalent;
        result.counterexample = outcome.counterexample;
      }
      else
      {
        // Verify-tier degradation ladder: the SAT tier ran out of budget.
        // Fall back to an exhaustive proof when the design is narrow
        // enough and wall-clock remains, else to budgeted sampling —
        // recording the downgrade instead of hanging or reporting failure.
        result.verify_downgraded = true;
        const bool exhaustive_fits = optimized.num_pis() <= params.limits.exhaustive_fallback_max_pis &&
                                     optimized.num_pis() <= 24u;
        if ( exhaustive_fits && !stop.expired() )
        {
          result.verified_with = verify_mode::exhaustive;
          record_report( verify_against_aig_exhaustive_budgeted( result.circuit, optimized, stop ) );
        }
        else
        {
          result.verified_with = verify_mode::sampled;
          record_report( verify_against_aig_sampled_budgeted( result.circuit, optimized, stop ) );
        }
      }
      break;
    }
    }
    result.verify_seconds = verify_watch.elapsed_seconds();

    // Status accounting of the verification phase (an exhaustive fallback
    // proof is as strong as the requested SAT proof, so it stays `ok`).
    // A deferred check skips this too — the fields are all defaults — and
    // the sweep engine finalizes after its batch pass.
    if ( !( params.defer_sim_verify && result.verified_with == verify_mode::none ) )
    {
      finalize_verify_status( result );
    }
  }
  return result;
}

flow_result run_flow_on_aig( const aig_network& aig, const flow_params& params )
{
  flow_artifact_cache cache;
  return run_flow_staged( aig, params, cache );
}

flow_result run_flow_on_verilog( const std::string& verilog_source, const flow_params& params )
{
  const auto elaborated = verilog::elaborate_verilog( verilog_source );
  return run_flow_on_aig( elaborated.aig, params );
}

std::string reciprocal_verilog( reciprocal_design design, unsigned n )
{
  return design == reciprocal_design::intdiv ? verilog::generate_intdiv( n )
                                             : verilog::generate_newton( n );
}

flow_result run_reciprocal_flow( reciprocal_design design, unsigned n, const flow_params& params )
{
  return run_flow_on_verilog( reciprocal_verilog( design, n ), params );
}

} // namespace qsyn
