#include "flows.hpp"

#include <stdexcept>

#include "../common/timer.hpp"
#include "../embed/embedding.hpp"
#include "../reversible/verify.hpp"
#include "../synth/aig_optimize.hpp"
#include "../synth/collapse.hpp"
#include "../synth/esop_extract.hpp"
#include "../synth/exorcism.hpp"
#include "../synth/xmg_resynth.hpp"
#include "../verilog/elaborator.hpp"
#include "../verilog/generators.hpp"

namespace qsyn
{

namespace
{

/// Functional flow: collapse to truth tables, optimum embedding, TBS.
/// The input variables are placed on the low lines, the outputs on the
/// high lines (the embedding's layout); line metadata reflects Eq. (1).
flow_result run_functional( const aig_network& aig, const flow_params& params )
{
  flow_result result;
  const auto tts = collapse_to_truth_tables( aig );
  auto embedding = embed_optimum( tts );
  result.embedding_lines = embedding.num_lines;
  result.max_collisions = embedding.max_collisions;

  tbs_params tparams;
  tparams.bidirectional = params.bidirectional_tbs;
  result.circuit = tbs_synthesize( std::move( embedding.permutation ), tparams );

  // Line metadata: inputs on the low n lines, outputs on the high m lines.
  const auto r = embedding.num_lines;
  const auto n = embedding.num_inputs;
  const auto m = embedding.num_outputs;
  for ( unsigned l = 0; l < r; ++l )
  {
    auto& info = result.circuit.line( l );
    info.name = "l" + std::to_string( l );
    if ( l < n )
    {
      info.is_primary_input = true;
    }
    else
    {
      info.is_constant_input = true;
      info.constant_value = false;
    }
    if ( l >= r - m )
    {
      info.output_index = static_cast<int>( l - ( r - m ) );
      info.is_garbage = false;
    }
  }
  if ( params.verify )
  {
    result.verified = verify_against_truth_tables( result.circuit, tts );
  }
  return result;
}

/// ESOP flow: extract, minimize, synthesize.
flow_result run_esop( const aig_network& aig, const flow_params& params )
{
  flow_result result;
  auto expression = esop_from_aig( aig );
  if ( params.run_exorcism )
  {
    exorcism( expression );
  }
  result.esop_terms = expression.num_terms();
  esop_synth_params sparams;
  sparams.p = params.esop_p;
  result.circuit = esop_synthesize( expression, sparams );
  if ( params.verify )
  {
    const auto cex = verify_against_aig_sampled( result.circuit, aig );
    result.verified = !cex.has_value();
  }
  return result;
}

/// Hierarchical flow: LUT map + XMG resynthesis + hierarchical synthesis.
flow_result run_hierarchical( const aig_network& aig, const flow_params& params )
{
  flow_result result;
  xmg_resynth_stats xstats;
  const auto xmg = xmg_from_aig( aig, 4u, &xstats );
  result.xmg_maj = xmg.num_maj();
  result.xmg_xor = xmg.num_xor();
  hierarchical_params hparams;
  hparams.cleanup = params.cleanup;
  result.circuit = hierarchical_synthesize( xmg, hparams );
  if ( params.verify )
  {
    const auto cex = verify_against_aig_sampled( result.circuit, aig );
    result.verified = !cex.has_value();
  }
  return result;
}

} // namespace

flow_result run_flow_on_aig( const aig_network& aig, const flow_params& params )
{
  stopwatch watch;
  auto optimized = optimize( aig, params.optimization_rounds );

  flow_result result;
  switch ( params.kind )
  {
  case flow_kind::functional:
    result = run_functional( optimized, params );
    break;
  case flow_kind::esop_based:
    result = run_esop( optimized, params );
    break;
  case flow_kind::hierarchical:
    result = run_hierarchical( optimized, params );
    break;
  }
  result.aig_nodes_initial = aig.num_ands();
  result.aig_nodes_optimized = optimized.num_ands();
  result.costs = report_costs( result.circuit );
  result.runtime_seconds = watch.elapsed_seconds();
  return result;
}

flow_result run_flow_on_verilog( const std::string& verilog_source, const flow_params& params )
{
  const auto elaborated = verilog::elaborate_verilog( verilog_source );
  return run_flow_on_aig( elaborated.aig, params );
}

std::string reciprocal_verilog( reciprocal_design design, unsigned n )
{
  return design == reciprocal_design::intdiv ? verilog::generate_intdiv( n )
                                             : verilog::generate_newton( n );
}

flow_result run_reciprocal_flow( reciprocal_design design, unsigned n, const flow_params& params )
{
  return run_flow_on_verilog( reciprocal_verilog( design, n ), params );
}

} // namespace qsyn
