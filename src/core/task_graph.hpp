/// \file task_graph.hpp
/// \brief Dependency-DAG task scheduler on the work-stealing thread pool.
///
/// A `task_graph` holds typed task nodes (a string key — the same artifact
/// keys `flow_artifact_cache` uses for stage intermediates — plus a
/// callable) connected by dependency edges, and executes them in
/// topological order on a `thread_pool`: every task whose dependencies are
/// all done is submitted; a finishing worker pushes the tasks it just
/// readied onto its own queue (LIFO locality), and idle workers steal the
/// oldest queued tasks, so independent chains — distinct artifacts,
/// per-configuration synthesis tails, whole designs of a batch sweep —
/// run concurrently without any stage barrier.
///
/// Keyed tasks **coalesce**: `add_shared` with an existing key returns the
/// existing task instead of adding a duplicate, so concurrent requests for
/// one artifact fold onto one in-flight computation (counted in
/// `stats().coalesced`) instead of recomputing or serializing on the
/// artifact cache's mutex.
///
/// Failure is isolated per task: a task that throws is recorded `failed`
/// (its exception kept), and **poisons only its transitive dependents** —
/// they become `poisoned` without running, each carrying the failing
/// ancestor's key (`blame()`) and exception, which the DSE layer maps back
/// onto the `flow_status` taxonomy.  Unrelated tasks are unaffected.  A
/// run-level deadline/cancellation marks not-yet-started tasks `cancelled`
/// (with `budget_exhausted` as their error) and poisons their dependents
/// the same way; tasks already running finish cooperatively through their
/// own budget polls.
///
/// Determinism contract: with an inline pool (<= 1 thread) tasks execute
/// in a fixed topological order (seed tasks in insertion order, each
/// completed task submitting its ready dependents in insertion order), so
/// a single-threaded graph run is bit-identical to — and poll-count
/// deterministic with — the sequential staged pipeline.  With workers,
/// only the interleaving changes; tasks write to caller-owned slots, so
/// results stay bit-identical.
///
/// Per-task timing (start/end relative to `run()` entry) feeds the
/// scheduler statistics: tasks run/poisoned/cancelled, coalesced key hits,
/// steals (from the pool), wall clock, and the critical path (longest
/// dependency chain weighted by measured task durations) — the lower
/// bound any scheduler could reach, reported by `bench_dse`.
///
/// Thread safety: `add`/`add_shared` are for the single building thread
/// before `run()`; accessors after `run()` returned.  One graph runs once
/// — but **many graphs may run concurrently on one shared pool**: `run()`
/// tracks its own submitted wrappers and waits only for this graph's
/// tasks (never for the pool to go idle), which is how the synthesis
/// daemon serves every in-flight request from one long-lived pool.  On a
/// shared pool the `steals` statistic is a pool-wide delta over the run
/// and can include other graphs' steals.

#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "../common/budget.hpp"

namespace qsyn
{

class thread_pool;

/// Index of a task inside its graph (dense, insertion-ordered).
using task_id = std::size_t;

/// Lifecycle of one task node.
enum class task_state
{
  pending,   ///< waiting for dependencies (or for a worker)
  running,   ///< claimed by a worker, callable in flight
  done,      ///< callable returned normally
  failed,    ///< callable threw; `error()` holds the exception
  poisoned,  ///< a dependency failed/was cancelled; never ran.  `blame()`
             ///< names the failing ancestor, `error()` holds its exception
  cancelled  ///< the run-level deadline/cancellation expired before start
};

/// Short name of a state ("pending", ..., "cancelled").
std::string task_state_name( task_state state );

/// Scheduler statistics of one graph run.
struct task_graph_stats
{
  std::size_t tasks_added = 0;
  std::size_t tasks_run = 0;       ///< completed normally
  std::size_t tasks_failed = 0;    ///< threw
  std::size_t tasks_poisoned = 0;  ///< skipped: a dependency failed
  std::size_t tasks_cancelled = 0; ///< skipped: run deadline/cancel expired
  std::size_t coalesced = 0;       ///< duplicate keyed requests folded onto
                                   ///< an existing task (`add_shared`)
  std::uint64_t steals = 0;        ///< pool steals during this run (pool-wide
                                   ///< delta: includes other graphs' steals
                                   ///< when the pool is shared)
  /// Peak number of tasks whose measured [start, end) intervals overlap —
  /// the parallelism that actually materialized.  1 on an inline pool (or
  /// a run whose tasks never overlapped); the dead-parallelism canary
  /// `scripts/run_bench.sh` gates on (steals can legitimately be 0 when
  /// idle workers drain whole designs from the injection queue instead).
  std::size_t max_concurrency = 0;
  double wall_seconds = 0.0;       ///< run() entry to last task terminal
  /// Longest dependency chain, weighted by measured task durations — the
  /// wall clock an ideal scheduler with infinite workers would need.
  double critical_path_seconds = 0.0;
};

class task_graph
{
public:
  task_graph();
  ~task_graph();
  task_graph( const task_graph& ) = delete;
  task_graph& operator=( const task_graph& ) = delete;

  /// Adds a task.  `deps` must name already-added tasks (edges always
  /// point from lower to higher id, keeping the graph acyclic by
  /// construction).  `key` is a display/blame label here; it is NOT
  /// registered for coalescing — use `add_shared` for artifact tasks.
  task_id add( std::string key, std::function<void()> fn,
               const std::vector<task_id>& deps = {} );

  /// Adds a keyed task, coalescing duplicates: when `key` was already
  /// added through `add_shared`, returns the existing task's id and counts
  /// a coalesced hit.  The new callable is dropped (first writer wins,
  /// mirroring the artifact cache's first-computation-wins contract), but
  /// the requested `deps` are merged into the existing task so no caller's
  /// prerequisite is silently lost; a dep added after the shared task
  /// (id >= the task's) cannot be merged acyclically and throws
  /// `std::invalid_argument`.
  task_id add_shared( const std::string& key, std::function<void()> fn,
                      const std::vector<task_id>& deps = {} );

  /// Id of the `add_shared` task registered under `key`, if any.
  [[nodiscard]] std::optional<task_id> find( const std::string& key ) const;

  [[nodiscard]] std::size_t size() const;

  /// Executes the graph to completion on `pool` (topological dispatch;
  /// see file comment for the determinism and failure contracts).  With
  /// `stop`, tasks not yet started when it expires are `cancelled` and
  /// their dependents poisoned; the call always returns with every task
  /// in a terminal state.
  void run( thread_pool& pool );
  void run( thread_pool& pool, const deadline& stop );

  [[nodiscard]] task_state state( task_id id ) const;
  /// The task's own exception (failed/cancelled) or its poisoning
  /// ancestor's (poisoned); nullptr for done/pending tasks.
  [[nodiscard]] std::exception_ptr error( task_id id ) const;
  /// Key of the failing/cancelled ancestor a poisoned task inherited its
  /// fate from; the task's own key for failed/cancelled tasks; empty
  /// otherwise.
  [[nodiscard]] const std::string& blame( task_id id ) const;
  [[nodiscard]] const std::string& key( task_id id ) const;
  /// Measured duration of an executed task (0 for tasks that never ran).
  [[nodiscard]] double task_seconds( task_id id ) const;
  /// Start/end of an executed task in seconds since run() entry (-1 for
  /// tasks that never ran).
  [[nodiscard]] double start_seconds( task_id id ) const;
  [[nodiscard]] double end_seconds( task_id id ) const;

  /// Statistics of the completed run (valid after `run()` returns;
  /// `tasks_added`/`coalesced` are live during building too).
  [[nodiscard]] task_graph_stats stats() const;

private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

} // namespace qsyn
