/// \file flows.hpp
/// \brief The paper's design flows (Sec. IV, Fig. 1): Verilog in, reversible
/// circuit out, with selectable reversible synthesis back-end.
///
/// Every flow passes the four levels of Fig. 1:
///   design level      — Verilog text (INTDIV(n) / NEWTON(n) generators or
///                       user-supplied source),
///   logic synthesis   — elaboration to an AIG + dc2-style optimization,
///                       then conversion to the back-end's input format
///                       (truth table/BDD, ESOP, or XMG),
///   reversible synth  — functional (TBS over an optimum embedding),
///                       ESOP-based (REVS, parameter p), or hierarchical
///                       (XMG, cleanup strategy),
///   quantum level     — qubit / T-count accounting (cost model, cost.hpp).
///
/// The flow result carries the reversible circuit, the cost report, the
/// runtime, and intermediate statistics — everything the paper's tables
/// report, so the bench binaries are thin wrappers around run_flow().

#pragma once

#include <optional>
#include <string>

#include "../logic/aig.hpp"
#include "../reversible/circuit.hpp"
#include "../reversible/cost.hpp"
#include "../rsynth/esop_synth.hpp"
#include "../rsynth/hierarchical.hpp"
#include "../rsynth/tbs.hpp"

namespace qsyn
{

/// Which design to generate at the design level.
enum class reciprocal_design
{
  intdiv,
  newton
};

/// Which reversible synthesis back-end to use.
enum class flow_kind
{
  functional,   ///< Sec. IV-A: collapse + optimum embedding + TBS
  esop_based,   ///< Sec. IV-B: ESOP + exorcism + REVS-style synthesis
  hierarchical  ///< Sec. IV-C: LUT map + XMG + hierarchical synthesis
};

struct flow_params
{
  flow_kind kind = flow_kind::hierarchical;
  unsigned optimization_rounds = 2; ///< dc2-style rounds on the AIG
  bool run_exorcism = true;         ///< ESOP flow: minimize cube list
  unsigned esop_p = 0;              ///< ESOP flow: REVS factoring parameter
  cleanup_strategy cleanup = cleanup_strategy::keep_garbage; ///< hierarchical
  bool bidirectional_tbs = true;    ///< functional flow
  bool verify = true;               ///< check result against the AIG
};

struct flow_result
{
  reversible_circuit circuit;
  cost_report costs;
  double runtime_seconds = 0.0;
  bool verified = false;

  /// Intermediate statistics.
  std::size_t aig_nodes_initial = 0;
  std::size_t aig_nodes_optimized = 0;
  std::size_t esop_terms = 0;        ///< ESOP flow
  std::size_t xmg_maj = 0;           ///< hierarchical flow
  std::size_t xmg_xor = 0;           ///< hierarchical flow
  unsigned embedding_lines = 0;      ///< functional flow (optimum r)
  std::uint64_t max_collisions = 0;  ///< functional flow (mu)
};

/// Runs a flow on an already-elaborated AIG.
flow_result run_flow_on_aig( const aig_network& aig, const flow_params& params );

/// Runs a flow on Verilog source (parse, elaborate, optimize, synthesize).
flow_result run_flow_on_verilog( const std::string& verilog_source, const flow_params& params );

/// Runs a flow on one of the paper's reciprocal designs.
flow_result run_reciprocal_flow( reciprocal_design design, unsigned n, const flow_params& params );

/// Verilog source of a reciprocal design (generator passthrough).
std::string reciprocal_verilog( reciprocal_design design, unsigned n );

} // namespace qsyn
