/// \file flows.hpp
/// \brief The paper's design flows (Sec. IV, Fig. 1): Verilog in, reversible
/// circuit out, with selectable reversible synthesis back-end.
///
/// Every flow passes the four levels of Fig. 1:
///   design level      — Verilog text (INTDIV(n) / NEWTON(n) generators or
///                       user-supplied source),
///   logic synthesis   — elaboration to an AIG + dc2-style optimization,
///                       then conversion to the back-end's input format
///                       (truth table/BDD, ESOP, or XMG),
///   reversible synth  — functional (TBS over an optimum embedding),
///                       ESOP-based (REVS, parameter p), or hierarchical
///                       (XMG, cleanup strategy),
///   quantum level     — qubit / T-count accounting (cost model, cost.hpp).
///
/// The flow is decomposed into explicit stages whose intermediate artifacts
/// (the optimized AIG, the collapsed truth tables + embedding, the
/// minimized ESOP cube list, the resynthesized XMG) live in a
/// `flow_artifact_cache` keyed on the parameter subset each stage actually
/// depends on.  A design-space sweep therefore optimizes the AIG once,
/// runs ESOP extraction + exorcism once across all `esop_p` values, and
/// builds the XMG once per `(rounds, cut_size)` across all cleanup
/// strategies; only the per-configuration synthesis tails repeat.
/// `run_flow_on_aig` remains the one-shot convenience wrapper around a
/// private cache.
///
/// Every flow closes with a verification tier selected by
/// `flow_params::verification` (`verify_mode`): 64-way batched random
/// sampling, 64-way exhaustive enumeration, or the incremental SAT
/// equivalence engine (`sat::incremental_cec`) — the ladder mirrors the
/// paper's closing ABC `cec` call.  The cache owns the sweep's persistent
/// engine (`sat_engine()`), so every `sat`-tier check of a sweep shares
/// one encoding and its learned lemmas.
/// The flow result carries the reversible circuit, the cost report, the
/// synthesis runtime (verification is timed separately in
/// `verify_seconds`, with the tier recorded in `verified_with`), and
/// intermediate statistics — everything the paper's tables report, so the
/// bench binaries are thin wrappers around run_flow().

#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "../common/budget.hpp"
#include "../embed/embedding.hpp"
#include "task_graph.hpp"
#include "../logic/aig.hpp"
#include "../logic/truth_table.hpp"
#include "../reversible/circuit.hpp"
#include "../reversible/cost.hpp"
#include "../rsynth/esop_synth.hpp"
#include "../rsynth/hierarchical.hpp"
#include "../rsynth/tbs.hpp"
#include "../synth/exorcism.hpp"
#include "../synth/xmg_resynth.hpp"

namespace qsyn
{

namespace sat
{
class incremental_cec;
} // namespace sat

/// Which design to generate at the design level.
enum class reciprocal_design
{
  intdiv,
  newton
};

/// Which reversible synthesis back-end to use.
enum class flow_kind
{
  functional,   ///< Sec. IV-A: collapse + optimum embedding + TBS
  esop_based,   ///< Sec. IV-B: ESOP + exorcism + REVS-style synthesis
  hierarchical  ///< Sec. IV-C: LUT map + XMG + hierarchical synthesis
};

/// Verification tier applied to the synthesized circuit (our `cec` ladder).
enum class verify_mode
{
  none,       ///< skip verification entirely
  sampled,    ///< 64-way batched random simulation (probabilistic; silently
              ///< exhaustive when 2^inputs fits the sample budget)
  exhaustive, ///< 64-way batched enumeration of all 2^inputs assignments
              ///< (a proof; inputs <= 24)
  sat         ///< SAT miter against the extracted circuit AIG (a proof at
              ///< any width; src/sat/)
};

/// Short name of a tier ("none", "sampled", "exhaustive", "sat").
std::string verify_mode_name( verify_mode mode );
/// Inverse of `verify_mode_name`; nullopt for unknown names.
std::optional<verify_mode> verify_mode_from_name( const std::string& name );

/// Outcome taxonomy of one budgeted flow (and of one design in a DSE
/// sweep).  Anything other than `failed` carries a usable circuit/result.
enum class flow_status
{
  ok,        ///< completed within budget at the requested quality
  degraded,  ///< completed, but a budget forced a weaker result (partial
             ///< minimization, verify-tier downgrade, partial coverage)
  timed_out, ///< the deadline expired before a usable verdict/result
  failed     ///< a stage threw; see `status_detail` for the error
};

/// Short name of a status ("ok", "degraded", "timed_out", "failed").
std::string flow_status_name( flow_status status );

struct flow_params
{
  flow_kind kind = flow_kind::hierarchical;
  unsigned optimization_rounds = 2; ///< dc2-style rounds on the AIG
  bool run_exorcism = true;         ///< ESOP flow: minimize cube list
  unsigned esop_p = 0;              ///< ESOP flow: REVS factoring parameter
  cleanup_strategy cleanup = cleanup_strategy::keep_garbage; ///< hierarchical
  unsigned cut_size = 4;            ///< hierarchical flow: LUT cut size k fed
                                    ///< to the mapper before XMG resynthesis
                                    ///< (the paper's `xmglut -k`; a DSE axis;
                                    ///< must be >= 2 — the mapper throws
                                    ///< std::invalid_argument otherwise)
  bool bidirectional_tbs = true;    ///< functional flow
  bool verify = true;               ///< master toggle (false == verify_mode::none)
  verify_mode verification = verify_mode::sampled; ///< tier used when verify is on
  /// Internal to the DSE frontier batch-verification path: when true and
  /// the tier is `sampled`/`exhaustive` against the spec AIG (not the
  /// functional flow's truth-table check, which has no AIG miter),
  /// `run_flow_staged` skips verification and leaves `verified_with ==
  /// none`; the sweep engine then checks the whole frontier in one
  /// SIMD-wide cross-circuit batched pass
  /// (`verify_batch_against_aig_*_budgeted`) and applies each report via
  /// `record_sim_verify_report` + `finalize_verify_status`.  Verdicts,
  /// counterexamples, and coverage accounting are bit-identical to inline
  /// verification; only the wall clock changes.
  bool defer_sim_verify = false;
  /// Resource limits (deadline, SAT conflict/propagation caps, EXORCISM
  /// pair cap, degradation threshold).  The default is unlimited and
  /// bit-identical to the unbudgeted engine.
  budget limits;
};

struct flow_result
{
  reversible_circuit circuit;
  cost_report costs;
  double runtime_seconds = 0.0; ///< synthesis only; prefetched cache hits
                                ///< cost ~0 (a hit racing the computing
                                ///< thread blocks, and that wait counts)
  double verify_seconds = 0.0;  ///< verification time of the tier that ran
                                ///< (0 if verification is off)
  bool verified = false;
  verify_mode verified_with = verify_mode::none; ///< tier that actually produced `verified`
  /// Failing input assignment when a tier rejects (AIG-miter tiers only;
  /// the functional flow's truth-table check has no counterexample).
  std::optional<std::vector<bool>> counterexample;

  /// Budget outcome of the flow (see `flow_status`); `status_detail` says
  /// which budget bit and where.
  flow_status status = flow_status::ok;
  std::string status_detail;
  /// True when the requested verify tier exhausted its budget and the flow
  /// fell back to a cheaper tier (`verified_with` records the tier that
  /// ran).
  bool verify_downgraded = false;
  /// Simulation-tier coverage accounting: false when the deadline expired
  /// mid-simulation (the verdict then covers only
  /// `verify_samples_completed` of `verify_samples_requested`
  /// assignments).  SAT proofs and untimed tiers report complete = true.
  bool verify_complete = true;
  std::uint64_t verify_samples_requested = 0;
  std::uint64_t verify_samples_completed = 0;

  /// Intermediate statistics.
  std::size_t aig_nodes_initial = 0;
  std::size_t aig_nodes_optimized = 0;
  std::size_t esop_terms = 0;        ///< ESOP flow
  std::size_t xmg_maj = 0;           ///< hierarchical flow
  std::size_t xmg_xor = 0;           ///< hierarchical flow
  unsigned embedding_lines = 0;      ///< functional flow (optimum r)
  std::uint64_t max_collisions = 0;  ///< functional flow (mu)
};

struct partial_verify_report;

/// Copies a simulation-tier verification report into a flow result —
/// verdict, counterexample, and the coverage accounting fields.  The
/// caller sets `result.verified_with` to the tier that produced the
/// report.  Shared by the inline verify ladder of `run_flow_staged` and
/// the DSE frontier batch-verification path.
void record_sim_verify_report( flow_result& result, const partial_verify_report& report );

/// Applies the verification-phase status taxonomy to a result whose
/// verify fields are final: a counterexample is a definitive verdict
/// regardless of coverage; without one, partial coverage degrades the
/// result (or times it out when nothing ran), and a downgrade to a
/// weaker-than-requested tier degrades even at full coverage.  Idempotent;
/// shared like `record_sim_verify_report`.
void finalize_verify_status( flow_result& result );

namespace store
{
class artifact_store;
} // namespace store

/// Cache hit/miss counters (one "access" per stage lookup).  With a disk
/// tier attached the three counters partition the accesses: `hits` are
/// served from memory, `store_hits` are deserialized from the attached
/// `store::artifact_store` (and promoted into memory), and `misses` are
/// actually computed (then written to both tiers).  Without a store,
/// `store_hits` stays 0 and the counters keep their historical meaning.
struct cache_stats
{
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t store_hits = 0;
};

/// Memoizes the stage artifacts of the flows for ONE design AIG.  The
/// cache binds to the first design it sees via a structural content hash
/// (`aig_network::content_hash()`) and rejects any other design with
/// std::invalid_argument — including equal-sized distinct designs, which
/// the old size-only fingerprint silently aliased.  Each artifact is
/// keyed on the parameter subset the stage depends on, so a sweep over
/// `esop_p` or cleanup strategies shares everything upstream of the
/// synthesis tail.
///
/// With `attach_store`, the cache gains a persistent second tier:
/// lookups go memory → disk → compute, computed artifacts are written
/// back to disk, and a fresh process warm-starts from what earlier
/// processes computed (same design hash × same parameter key — the store
/// validates both).  All accessors are thread-safe (one mutex; an
/// artifact is computed under the lock, so concurrent first accesses of
/// the same key compute it once, and concurrent lookups of a key being
/// computed block until it is ready).  References returned remain valid
/// for the cache's lifetime (map nodes are stable; an ESOP artifact
/// replaced by a budget upgrade retires — but keeps alive — the old
/// object).
class flow_artifact_cache
{
public:
  flow_artifact_cache();
  ~flow_artifact_cache(); ///< out-of-line: `sat::incremental_cec` is incomplete here
  flow_artifact_cache( const flow_artifact_cache& ) = delete;
  flow_artifact_cache& operator=( const flow_artifact_cache& ) = delete;

  /// Functional back-end intermediate: collapsed output truth tables and
  /// the line-optimum embedding.
  struct functional_artifact
  {
    std::vector<truth_table> outputs;
    embedding embed;
  };

  /// ESOP back-end intermediate: the (optionally exorcism-minimized) cube
  /// list shared by every `esop_p` tail.
  struct esop_artifact
  {
    esop expression;
    std::size_t terms = 0;
    /// True when EXORCISM stopped at its pair budget / deadline rather
    /// than at a fixpoint (the expression is valid, just less minimized).
    bool budget_exhausted = false;
  };

  /// Hierarchical back-end intermediate: the XMG shared by every cleanup
  /// strategy tail.
  struct xmg_artifact
  {
    xmg_network graph;
    xmg_resynth_stats stats;
  };

  /// Optimized AIG, keyed on the number of dc2-style rounds.
  const aig_network& optimized( const aig_network& aig, unsigned rounds );
  /// Collapse + optimum embedding, keyed on rounds.
  const functional_artifact& functional_intermediate( const aig_network& aig, unsigned rounds );
  /// Extraction + optional exorcism, keyed on (rounds, run_exorcism).
  /// `minimize_limits` (EXORCISM pair budget + deadline) applies on a
  /// miss; on a hit whose cached artifact stopped at its budget
  /// (`budget_exhausted`), a requester that still has budget left
  /// (unexpired deadline) re-minimizes the cached expression and upgrades
  /// the entry in place — in memory and, when a store is attached, on
  /// disk — so one early tight budget can no longer pin a sweep (or a
  /// warm-started process) to a half-minimized cube list forever.
  /// References returned earlier stay valid (the superseded artifact is
  /// retired, not destroyed).
  const esop_artifact& esop_intermediate( const aig_network& aig, unsigned rounds,
                                          bool run_exorcism,
                                          const exorcism_params& minimize_limits = {} );
  /// LUT map + XMG resynthesis, keyed on (rounds, cut_size).
  const xmg_artifact& xmg_intermediate( const aig_network& aig, unsigned rounds,
                                        unsigned cut_size );

  /// The cache's persistent incremental SAT equivalence engine
  /// (`sat::incremental_cec`), created on first use.  Every `sat`-tier
  /// verification of a `run_flow_staged` call on this cache goes through it,
  /// so a sweep's configurations share the spec encoding, fraig merges, and
  /// learned lemmas instead of re-encoding the miter from scratch per
  /// configuration.  Thread-safe (the engine serializes internally; creation
  /// is guarded by the cache mutex), and verdict-identical to a fresh
  /// engine per call — reuse only changes the wall clock.
  sat::incremental_cec& sat_engine();

  /// Computes every artifact the given configuration will look up, so a
  /// subsequent `run_flow_staged` only runs the synthesis tail.  `stop`
  /// bounds budget-aware stage kernels (EXORCISM) on a miss; fault
  /// injection sites inside the stages fire here exactly as they would in
  /// the flow itself.
  void prefetch( const aig_network& aig, const flow_params& params, const deadline& stop = {} );

  /// Attaches (or detaches, with nullptr) the persistent disk tier.  The
  /// store is consulted between memory lookup and computation and written
  /// back to on every computation (and ESOP upgrade); several caches —
  /// across threads and processes — may share one store.
  void attach_store( std::shared_ptr<store::artifact_store> disk );
  [[nodiscard]] std::shared_ptr<store::artifact_store> attached_store() const;

  /// Structural content hash of the bound design (0 until the first
  /// lookup binds the cache) — the store tier's design key.
  [[nodiscard]] std::uint64_t design_hash() const;

  cache_stats stats() const;

private:
  const aig_network& optimized_locked( const aig_network& aig, unsigned rounds );
  void check_same_design( const aig_network& aig );

  mutable std::mutex mutex_;
  std::map<unsigned, aig_network> optimized_;
  std::map<unsigned, functional_artifact> functional_;
  /// shared_ptr values: a budget upgrade publishes a NEW artifact object
  /// and moves the superseded one to `retired_esops_`, keeping references
  /// handed out earlier alive without mutating them under readers.
  std::map<std::pair<unsigned, bool>, std::shared_ptr<esop_artifact>> esops_;
  std::vector<std::shared_ptr<esop_artifact>> retired_esops_;
  std::map<std::pair<unsigned, unsigned>, xmg_artifact> xmgs_;
  std::unique_ptr<sat::incremental_cec> sat_engine_; ///< lazily created
  std::shared_ptr<store::artifact_store> store_; ///< optional disk tier
  cache_stats stats_;
  bool bound_ = false;           ///< cache is bound to the first design seen
  unsigned bound_pis_ = 0;       ///< cheap pre-check before the hash compare
  unsigned bound_pos_ = 0;
  std::size_t bound_ands_ = 0;
  std::uint64_t bound_hash_ = 0; ///< content hash of the bound design
};

/// Stage name of a flow's backend intermediate ("collapse", "esop",
/// "xmg") — the fault-injection site suffix and the middle node of the
/// flow's task chain.
std::string flow_stage_name( flow_kind kind );

/// Task/cache key of the optimized-AIG artifact, e.g. "optimize[r=2]".
std::string optimize_artifact_key( unsigned rounds );

/// Task/cache key of the backend intermediate artifact — the exact
/// parameter subset `flow_artifact_cache` keys the stage on:
/// "collapse[r=2]", "esop[r=2,exo=1]", or "xmg[r=2,k=4]".
std::string flow_artifact_key( const flow_params& params );

/// Task ids of one staged flow added to a graph by `add_flow_tasks`.
struct flow_task_ids
{
  task_id optimize = 0; ///< optimized-AIG artifact (shared across kinds)
  task_id artifact = 0; ///< backend intermediate artifact (shared per key)
  task_id tail = 0;     ///< per-configuration synthesis tail + verify
};

/// Adds the staged flow of `params` to `graph` as a dependency chain
/// `optimize → backend intermediate → synthesis tail`, returning the
/// three task ids.  Artifact tasks are keyed `key_prefix +
/// optimize_artifact_key/flow_artifact_key` via `task_graph::add_shared`,
/// so configurations (or repeat calls) sharing an artifact coalesce onto
/// ONE task — the first caller's budget limits apply to the shared stage
/// (a later tail with remaining budget upgrades a budget-exhausted ESOP
/// artifact through `flow_artifact_cache::esop_intermediate`'s
/// re-minimization path).  The tail task runs
/// `run_flow_staged` (every stage lookup then hits) and assigns `out`;
/// `aig`, `cache`, `stop`, and `out` must outlive the graph run.  `stop`
/// is read when each task runs, not copied at build time, so a batch
/// driver can arm the per-configuration deadline lazily from an upstream
/// task (e.g. the design's elaborate task) and late-scheduled designs do
/// not see their per-flow clock consumed by earlier ones.  `extra_deps`
/// are prepended to the optimize task's dependencies (e.g. a per-design
/// elaboration task).  A failing stage task poisons only the tails that
/// depend on it; the DSE layer maps the poisoned tasks' blame keys back
/// into `flow_status` records.
flow_task_ids add_flow_tasks( task_graph& graph, const aig_network& aig,
                              const flow_params& params, flow_artifact_cache& cache,
                              const deadline& stop, flow_result& out,
                              const std::string& key_prefix = {},
                              const std::vector<task_id>& extra_deps = {} );

/// Maps the terminal state of a flow tail task back onto `out`'s status
/// record after the graph ran.  A `done` tail already wrote its own
/// result (no-op); a cancelled/failed/poisoned tail becomes `timed_out`
/// (when the underlying error is `budget_exhausted`) or `failed`, and a
/// poisoned tail's detail names the failing stage task — artifact key and
/// stage name — so a shared-stage failure stays attributable per
/// requester.  Shared by the DSE sweep engines and the synthesis daemon.
void fill_flow_status_from_graph( const task_graph& graph, task_id tail, flow_result& out );

/// Runs a flow on an already-elaborated AIG, reading shared stage
/// artifacts from (and adding missing ones to) the given cache.  Cost and
/// circuit results are bit-identical to the uncached path; only
/// `runtime_seconds` shrinks on cache hits.  Budgets come from
/// `params.limits` (the deadline is armed at call entry); expiry inside a
/// kernel without a partial result (TBS) throws `qsyn::budget_exhausted`,
/// anytime kernels and the verify ladder degrade instead and record it in
/// `status` / `verify_downgraded`.
flow_result run_flow_staged( const aig_network& aig, const flow_params& params,
                             flow_artifact_cache& cache );

/// As above with an externally armed deadline (e.g. a DSE sweep deadline
/// already tightened by the per-design budget); `params.limits`'s
/// non-deadline caps still apply.
flow_result run_flow_staged( const aig_network& aig, const flow_params& params,
                             flow_artifact_cache& cache, const deadline& stop );

/// Runs a flow on an already-elaborated AIG (one-shot private cache).
flow_result run_flow_on_aig( const aig_network& aig, const flow_params& params );

/// Runs a flow on Verilog source (parse, elaborate, optimize, synthesize).
flow_result run_flow_on_verilog( const std::string& verilog_source, const flow_params& params );

/// Runs a flow on one of the paper's reciprocal designs.
flow_result run_reciprocal_flow( reciprocal_design design, unsigned n, const flow_params& params );

/// Verilog source of a reciprocal design (generator passthrough).
std::string reciprocal_verilog( reciprocal_design design, unsigned n );

} // namespace qsyn
