/// \file dse.hpp
/// \brief Design space exploration across flows and parameters.
///
/// "The various algorithms used both in classical and reversible logic
/// synthesis enable nontrivial design space exploration" — this module runs
/// a configurable set of flow configurations on one design and reports the
/// full result list plus the Pareto frontier in the (qubits, T-count)
/// plane, the two cost metrics the paper trades off.

#pragma once

#include <string>
#include <vector>

#include "flows.hpp"

namespace qsyn
{

/// One explored configuration and its outcome.
struct dse_point
{
  std::string label;
  flow_params params;
  flow_result result;
};

/// The default configuration sweep: functional, ESOP p=0/1/2, hierarchical
/// with each cleanup strategy.  `include_functional` can be disabled for
/// bitwidths beyond the explicit-synthesis range.
std::vector<flow_params> default_dse_configurations( bool include_functional = true );

std::string dse_label( const flow_params& params );

/// Runs all configurations on a design AIG.
std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs );

/// Indices of the Pareto-optimal points (minimizing qubits and T-count).
std::vector<std::size_t> pareto_front( const std::vector<dse_point>& points );

/// Formats the exploration as a table (one row per point, '*' marking the
/// Pareto frontier).
std::string format_dse_table( const std::vector<dse_point>& points );

} // namespace qsyn
