/// \file dse.hpp
/// \brief Design space exploration across flows and parameters.
///
/// "The various algorithms used both in classical and reversible logic
/// synthesis enable nontrivial design space exploration" — this module runs
/// a configurable set of flow configurations on one design (or a batch of
/// designs) and reports the full result list plus the Pareto frontier in
/// the (qubits, T-count) plane, the two cost metrics the paper trades off.
///
/// The exploration engine is cached and concurrent: shared stage artifacts
/// (optimized AIG, minimized ESOP cube list, resynthesized XMG) are
/// computed once per design through a `flow_artifact_cache`, and the
/// per-configuration synthesis tails run on a thread pool.  Result
/// ordering — and every cost number — is identical to the sequential
/// uncached path; only the wall clock changes.

#pragma once

#include <string>
#include <vector>

#include "flows.hpp"

namespace qsyn
{

/// One explored configuration and its outcome.
struct dse_point
{
  std::string label;
  flow_params params;
  flow_result result;
};

/// How an exploration is scheduled onto the thread pool.
enum class schedule_mode
{
  /// The PR 2 engine, kept as the comparison baseline: stage artifacts
  /// are prefilled sequentially per design, only the per-configuration
  /// synthesis tails run on the pool, and `explore_designs` sweeps
  /// designs strictly one at a time.
  tail_only,
  /// The whole pipeline as a dependency DAG (`core/task_graph.hpp`) on
  /// the work-stealing pool: stage artifacts, synthesis tails, and — in
  /// `explore_designs` — entire designs run concurrently, duplicate
  /// artifact requests coalesce onto one in-flight task, and a failing
  /// task poisons only its dependents.  Bit-identical results to
  /// `tail_only`; only the wall clock (and failure *attribution* detail,
  /// which now names the shared artifact task) changes.
  task_graph
};

/// Tuning knobs of the exploration engine.
struct explore_options
{
  /// Worker threads for the per-configuration synthesis tails.
  /// 0 = `thread_pool::default_num_threads()` (hardware concurrency,
  /// overridable via QSYN_THREADS), 1 = run inline (fully sequential).
  unsigned num_threads = 0;
  /// Execution engine (see `schedule_mode`); `task_graph` by default.
  schedule_mode scheduler = schedule_mode::task_graph;
  /// Share stage artifacts across configurations.  Disabling this (with
  /// num_threads = 1) reproduces the original one-shot-per-configuration
  /// sequential path exactly, which the benchmark uses as its baseline.
  bool use_cache = true;
  /// Largest bitwidth at which batch exploration includes the functional
  /// flow (explicit synthesis range; `explore_designs` only).
  unsigned functional_max_bitwidth = 9;
  /// Verification tier applied to every swept configuration
  /// (`explore_designs` only; `explore` takes fully-specified configs).
  /// `verify_mode::none` disables verification for the whole sweep.
  verify_mode verification = verify_mode::sampled;
  /// Per-flow resource limits stamped onto every swept configuration
  /// (`explore_designs` only; `explore` takes fully-specified configs).
  budget limits;
  /// Global wall-clock budget of the whole sweep (0 = unlimited).  Every
  /// per-design/per-flow deadline is tightened against it, so an exhausted
  /// sweep budget stops the remaining designs promptly — each with a
  /// `timed_out` record, never a hang or an abort.
  double sweep_deadline_seconds = 0.0;
  /// Optional persistent artifact store (disk tier).  When set, every
  /// per-design cache the exploration creates is attached to it, so a
  /// repeated sweep — including one in a fresh process — warm-starts from
  /// earlier stage artifacts instead of recomputing them (cache_stats
  /// `store_hits` counts the served artifacts).  Results are bit-identical
  /// to a cold run.  Ignored by the `explore` overloads that take a
  /// caller-owned cache (attach the store to that cache yourself).
  std::shared_ptr<store::artifact_store> store;
};

/// The default configuration sweep: functional, ESOP p=0/1/2, hierarchical
/// with each cleanup strategy.  `include_functional` can be disabled for
/// bitwidths beyond the explicit-synthesis range.
std::vector<flow_params> default_dse_configurations( bool include_functional = true );

std::string dse_label( const flow_params& params );

/// Runs all configurations on a design AIG (cached + parallel by default;
/// the returned points are ordered exactly like `configs`).
std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs );
std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs,
                                const explore_options& options );
/// As above, but stage artifacts live in (and cache statistics accumulate
/// into) a caller-owned cache, which must be used for one design only.
std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs,
                                const explore_options& options, flow_artifact_cache& cache );
/// As above under an externally armed deadline (e.g. the sweep deadline of
/// `explore_designs`); each configuration's own `limits.deadline_seconds`
/// tightens it further.  A configuration hitting its budget or throwing is
/// isolated into its point's `result.status` — the exploration always
/// returns a full, ordered point list.
std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs,
                                const explore_options& options, flow_artifact_cache& cache,
                                const deadline& stop );
/// As above, additionally reporting the scheduler statistics of the run
/// (tasks run/coalesced, steals, wall vs critical path).  Under
/// `schedule_mode::tail_only` the statistics are zeroed — there is no graph.
std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs,
                                const explore_options& options, flow_artifact_cache& cache,
                                const deadline& stop, task_graph_stats& sched_stats );

/// One design of a batch exploration.
struct design_exploration
{
  reciprocal_design design = reciprocal_design::intdiv;
  unsigned bitwidth = 0;
  std::string name; ///< e.g. "INTDIV(6)"
  std::vector<dse_point> points;
  cache_stats cache;          ///< stage-artifact hit/miss counters
  double wall_seconds = 0.0;  ///< elaboration + full sweep wall clock
  /// Design-level outcome: `failed`/`timed_out` when elaboration threw or
  /// the sweep budget was gone before the design started (points is then
  /// empty), otherwise the worst point status.  The sweep always completes
  /// — one pathological design never takes the batch down.
  flow_status status = flow_status::ok;
  std::string status_detail;
};

/// Batch exploration: sweeps every design in `designs` for every bitwidth
/// in [min_bitwidth, max_bitwidth] with `default_dse_configurations`
/// (functional included up to `options.functional_max_bitwidth`).  Each
/// design gets its own artifact cache.  Failures and budget expiries are
/// isolated per design (and per configuration) into status records; the
/// returned batch is always complete and ordered.
std::vector<design_exploration> explore_designs( const std::vector<reciprocal_design>& designs,
                                                 unsigned min_bitwidth, unsigned max_bitwidth,
                                                 const explore_options& options = {} );
/// As above, additionally reporting the scheduler statistics of the whole
/// batch.  Under `schedule_mode::task_graph` the batch is ONE graph — every
/// design's elaboration, stage artifacts, and synthesis tails — so designs
/// overlap on the pool; under `tail_only` designs run strictly one at a
/// time and the statistics are zeroed.
std::vector<design_exploration> explore_designs( const std::vector<reciprocal_design>& designs,
                                                 unsigned min_bitwidth, unsigned max_bitwidth,
                                                 const explore_options& options,
                                                 task_graph_stats& sched_stats );

/// Indices of the Pareto-optimal points (minimizing qubits and T-count).
std::vector<std::size_t> pareto_front( const std::vector<dse_point>& points );

/// Formats the exploration as a table (one row per point, '*' marking the
/// Pareto frontier).
std::string format_dse_table( const std::vector<dse_point>& points );

} // namespace qsyn
