#include "task_graph.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>

#include "../common/thread_pool.hpp"

namespace qsyn
{

std::string task_state_name( task_state state )
{
  switch ( state )
  {
  case task_state::pending:
    return "pending";
  case task_state::running:
    return "running";
  case task_state::done:
    return "done";
  case task_state::failed:
    return "failed";
  case task_state::poisoned:
    return "poisoned";
  case task_state::cancelled:
    return "cancelled";
  }
  return "unknown";
}

namespace
{

using graph_clock = std::chrono::steady_clock;

struct task_node
{
  std::string key;
  std::function<void()> fn;
  std::vector<task_id> deps;
  std::vector<task_id> dependents;
  std::size_t remaining = 0; ///< unresolved dependencies
  task_state state = task_state::pending;
  std::exception_ptr error;
  std::string blame; ///< failing ancestor's key (poisoned), own key (failed/cancelled)
  double start_s = -1.0;
  double end_s = -1.0;
};

} // namespace

struct task_graph::impl
{
  mutable std::mutex mutex;
  std::condition_variable all_terminal;
  std::vector<task_node> nodes;
  std::unordered_map<std::string, task_id> shared_keys;
  task_graph_stats stats;
  bool running = false;
  bool ran = false;
  std::size_t terminal = 0;
  /// Pool wrappers submitted for this graph that have not yet finished
  /// their final access to this impl.  `run()` waits for this to reach
  /// zero (in addition to every node being terminal) before returning, so
  /// a wrapper that lost the race to a poisoning ancestor — submitted,
  /// then found its task already terminal — can never touch a destroyed
  /// graph.  This is what makes several graphs safe to run concurrently
  /// on one shared pool: completion is tracked per graph, not by waiting
  /// for the whole pool to drain.
  std::size_t live_wrappers = 0;
  graph_clock::time_point run_start{};
  deadline stop;
  thread_pool* pool = nullptr;
  const std::string empty;

  double since_start() const
  {
    return std::chrono::duration<double>( graph_clock::now() - run_start ).count();
  }

  /// Marks `id` terminal in `state` (mutex held).  Graph completion is
  /// observed by `run()` through the terminal/live_wrappers counters; the
  /// wake-up happens at wrapper exit, the single point that is provably
  /// the last impl access.
  void finalize_locked( task_id id, task_state state )
  {
    nodes[id].state = state;
    switch ( state )
    {
    case task_state::done:
      ++stats.tasks_run;
      break;
    case task_state::failed:
      ++stats.tasks_failed;
      break;
    case task_state::poisoned:
      ++stats.tasks_poisoned;
      break;
    case task_state::cancelled:
      ++stats.tasks_cancelled;
      break;
    case task_state::pending:
    case task_state::running:
      assert( false && "finalize_locked requires a terminal state" );
      break;
    }
    ++terminal;
  }

  /// Poisons every not-yet-started transitive dependent of `origin`
  /// (mutex held), propagating the ultimate ancestor's blame/error (so a
  /// poisoned node's own dependents inherit the original key, not the
  /// intermediate one).
  void poison_dependents_locked( task_id origin )
  {
    const auto& blame_key = nodes[origin].blame.empty() ? nodes[origin].key
                                                        : nodes[origin].blame;
    const auto error = nodes[origin].error;
    std::vector<task_id> frontier = nodes[origin].dependents;
    while ( !frontier.empty() )
    {
      const auto id = frontier.back();
      frontier.pop_back();
      auto& node = nodes[id];
      if ( node.state != task_state::pending )
      {
        continue; // already terminal (poisoned through another ancestor)
      }
      node.blame = blame_key;
      node.error = error;
      finalize_locked( id, task_state::poisoned );
      frontier.insert( frontier.end(), node.dependents.begin(), node.dependents.end() );
    }
  }

  void submit( task_id id );

  void execute( task_id id )
  {
    {
      std::unique_lock<std::mutex> lock( mutex );
      auto& node = nodes[id];
      if ( node.state != task_state::pending )
      {
        return; // poisoned after being submitted; nothing to run
      }
      if ( stop.expired() )
      {
        node.blame = node.key;
        node.error = std::make_exception_ptr( budget_exhausted(
            "task graph deadline expired before task '" + node.key + "' started" ) );
        finalize_locked( id, task_state::cancelled );
        poison_dependents_locked( id );
        return; // run() is woken by the wrapper's live-count decrement
      }
      node.state = task_state::running;
      node.start_s = since_start();
    }

    std::exception_ptr error;
    try
    {
      nodes[id].fn();
    }
    catch ( ... )
    {
      error = std::current_exception();
    }

    std::vector<task_id> ready;
    {
      std::unique_lock<std::mutex> lock( mutex );
      auto& node = nodes[id];
      node.end_s = since_start();
      if ( error )
      {
        node.error = error;
        node.blame = node.key;
        finalize_locked( id, task_state::failed );
        poison_dependents_locked( id );
      }
      else
      {
        finalize_locked( id, task_state::done );
        for ( const auto dep_id : node.dependents )
        {
          auto& dependent = nodes[dep_id];
          if ( --dependent.remaining == 0 && dependent.state == task_state::pending )
          {
            ready.push_back( dep_id );
          }
        }
      }
    }
    // Submitted outside the lock: an inline pool runs the whole dependent
    // cascade right here (recursively, in insertion order — the
    // single-thread determinism contract), a worker pool pushes them onto
    // this worker's own queue for LIFO pickup or stealing.
    for ( const auto ready_id : ready )
    {
      submit( ready_id );
    }
  }
};

void task_graph::impl::submit( task_id id )
{
  {
    std::unique_lock<std::mutex> lock( mutex );
    ++live_wrappers;
  }
  pool->submit( [this, id] {
    execute( id );
    // Last impl access of this wrapper.  The notify happens WITH the mutex
    // held: run()'s waiter cannot re-check its predicate (and let the
    // caller destroy the graph) until it reacquires the mutex we hold, so
    // the condition variable is guaranteed alive through the notify even
    // when this decrement is the one that completes the run.
    std::unique_lock<std::mutex> lock( mutex );
    if ( --live_wrappers == 0 && terminal == nodes.size() )
    {
      all_terminal.notify_all();
    }
  } );
}

task_graph::task_graph()
    : impl_( std::make_unique<impl>() )
{
}

task_graph::~task_graph() = default;

task_id task_graph::add( std::string key, std::function<void()> fn,
                         const std::vector<task_id>& deps )
{
  auto& g = *impl_;
  if ( g.running || g.ran )
  {
    throw std::logic_error( "task_graph: cannot add tasks to a running/finished graph" );
  }
  const task_id id = g.nodes.size();
  for ( const auto dep : deps )
  {
    if ( dep >= id )
    {
      throw std::invalid_argument( "task_graph: dependencies must be already-added tasks" );
    }
  }
  task_node node;
  node.key = std::move( key );
  node.fn = std::move( fn );
  node.deps = deps;
  node.remaining = deps.size();
  g.nodes.push_back( std::move( node ) );
  for ( const auto dep : deps )
  {
    g.nodes[dep].dependents.push_back( id );
  }
  ++g.stats.tasks_added;
  return id;
}

task_id task_graph::add_shared( const std::string& key, std::function<void()> fn,
                                const std::vector<task_id>& deps )
{
  auto& g = *impl_;
  const auto it = g.shared_keys.find( key );
  if ( it != g.shared_keys.end() )
  {
    if ( g.running || g.ran )
    {
      throw std::logic_error( "task_graph: cannot add tasks to a running/finished graph" );
    }
    // Coalesced hit: the callable is dropped (first writer wins), but the
    // requested deps must NOT be — a consumer of the shared task could
    // otherwise run before a prerequisite only the later caller knows
    // about.  Merge deps the acyclic-by-construction ordering allows
    // (edges point from lower to higher id); a dep at or above the shared
    // task's id cannot be merged without risking a cycle, so reject it
    // loudly instead of silently dropping it.
    const auto id = it->second;
    auto& node = g.nodes[id];
    for ( const auto dep : deps )
    {
      if ( std::find( node.deps.begin(), node.deps.end(), dep ) != node.deps.end() )
      {
        continue;
      }
      if ( dep >= id )
      {
        throw std::invalid_argument(
            "task_graph: coalesced task '" + key +
            "' cannot depend on a task added after it (dependency #" +
            std::to_string( dep ) + ")" );
      }
      node.deps.push_back( dep );
      ++node.remaining;
      g.nodes[dep].dependents.push_back( id );
    }
    ++g.stats.coalesced;
    return id;
  }
  const auto id = add( key, std::move( fn ), deps );
  g.shared_keys.emplace( key, id );
  return id;
}

std::optional<task_id> task_graph::find( const std::string& key ) const
{
  const auto it = impl_->shared_keys.find( key );
  return it == impl_->shared_keys.end() ? std::nullopt : std::optional<task_id>( it->second );
}

std::size_t task_graph::size() const
{
  return impl_->nodes.size();
}

void task_graph::run( thread_pool& pool )
{
  run( pool, deadline{} );
}

void task_graph::run( thread_pool& pool, const deadline& stop )
{
  auto& g = *impl_;
  if ( g.running || g.ran )
  {
    throw std::logic_error( "task_graph: a graph runs exactly once" );
  }
  g.running = true;
  g.stop = stop;
  g.pool = &pool;
  g.run_start = graph_clock::now();
  const auto steals_before = pool.steals();

  std::vector<task_id> seeds;
  {
    std::unique_lock<std::mutex> lock( g.mutex );
    for ( task_id id = 0; id < g.nodes.size(); ++id )
    {
      if ( g.nodes[id].remaining == 0 )
      {
        seeds.push_back( id );
      }
    }
  }
  for ( const auto id : seeds )
  {
    g.submit( id );
  }

  // Wait for this graph alone: every node terminal AND every submitted
  // wrapper past its last impl access.  Deliberately NOT pool.wait_all() —
  // that waits for the whole pool to go idle, which (a) couples this run
  // to every other graph sharing the pool (the daemon runs one graph per
  // in-flight request on one long-lived pool) and (b) was the only thing
  // preventing a late-scheduled wrapper of an already-poisoned task from
  // touching a destroyed graph.  The live_wrappers counter makes that
  // guarantee local.
  std::unique_lock<std::mutex> lock( g.mutex );
  g.all_terminal.wait( lock, [&g] {
    return g.terminal == g.nodes.size() && g.live_wrappers == 0;
  } );
  g.stats.steals = pool.steals() - steals_before;
  g.stats.wall_seconds = g.since_start();
  // Critical path: edges always point from lower to higher id, so one
  // forward pass over the measured durations is a topological DP.
  std::vector<double> longest( g.nodes.size(), 0.0 );
  double critical = 0.0;
  for ( task_id id = 0; id < g.nodes.size(); ++id )
  {
    const auto& node = g.nodes[id];
    const double duration =
        ( node.start_s >= 0.0 && node.end_s >= 0.0 ) ? node.end_s - node.start_s : 0.0;
    double upstream = 0.0;
    for ( const auto dep : node.deps )
    {
      upstream = std::max( upstream, longest[dep] );
    }
    longest[id] = upstream + duration;
    critical = std::max( critical, longest[id] );
  }
  g.stats.critical_path_seconds = critical;
  // Peak overlap of the measured task intervals (classic event sweep).
  // Ties order starts before ends so a zero-duration task still counts
  // while it is "live" and the counter can never dip below zero.
  std::vector<std::pair<double, int>> events;
  events.reserve( 2 * g.nodes.size() );
  for ( const auto& node : g.nodes )
  {
    if ( node.start_s >= 0.0 && node.end_s >= 0.0 )
    {
      events.emplace_back( node.start_s, +1 );
      events.emplace_back( node.end_s, -1 );
    }
  }
  std::sort( events.begin(), events.end(),
             []( const auto& a, const auto& b ) {
               return a.first != b.first ? a.first < b.first : a.second > b.second;
             } );
  std::size_t live = 0, peak = 0;
  for ( const auto& [time, delta] : events )
  {
    (void)time;
    live += delta; // starts sort first, so live never dips below zero
    peak = std::max( peak, live );
  }
  g.stats.max_concurrency = peak;
  g.running = false;
  g.ran = true;
}

task_state task_graph::state( task_id id ) const
{
  std::unique_lock<std::mutex> lock( impl_->mutex );
  return impl_->nodes.at( id ).state;
}

std::exception_ptr task_graph::error( task_id id ) const
{
  std::unique_lock<std::mutex> lock( impl_->mutex );
  return impl_->nodes.at( id ).error;
}

const std::string& task_graph::blame( task_id id ) const
{
  std::unique_lock<std::mutex> lock( impl_->mutex );
  const auto& node = impl_->nodes.at( id );
  return node.blame.empty() ? impl_->empty : node.blame;
}

const std::string& task_graph::key( task_id id ) const
{
  return impl_->nodes.at( id ).key;
}

double task_graph::task_seconds( task_id id ) const
{
  std::unique_lock<std::mutex> lock( impl_->mutex );
  const auto& node = impl_->nodes.at( id );
  return ( node.start_s >= 0.0 && node.end_s >= 0.0 ) ? node.end_s - node.start_s : 0.0;
}

double task_graph::start_seconds( task_id id ) const
{
  std::unique_lock<std::mutex> lock( impl_->mutex );
  return impl_->nodes.at( id ).start_s;
}

double task_graph::end_seconds( task_id id ) const
{
  std::unique_lock<std::mutex> lock( impl_->mutex );
  return impl_->nodes.at( id ).end_s;
}

task_graph_stats task_graph::stats() const
{
  std::unique_lock<std::mutex> lock( impl_->mutex );
  return impl_->stats;
}

} // namespace qsyn
