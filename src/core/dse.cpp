#include "dse.hpp"

#include <algorithm>
#include <exception>
#include <iomanip>
#include <sstream>

#include "../common/fault_injection.hpp"
#include "../common/thread_pool.hpp"
#include "../common/timer.hpp"
#include "../verilog/elaborator.hpp"

namespace qsyn
{

std::vector<flow_params> default_dse_configurations( bool include_functional )
{
  std::vector<flow_params> configs;
  if ( include_functional )
  {
    flow_params functional;
    functional.kind = flow_kind::functional;
    configs.push_back( functional );
  }
  for ( unsigned p = 0; p <= 2u; ++p )
  {
    flow_params esop;
    esop.kind = flow_kind::esop_based;
    esop.esop_p = p;
    configs.push_back( esop );
  }
  for ( const auto cleanup :
        { cleanup_strategy::keep_garbage, cleanup_strategy::bennett, cleanup_strategy::eager } )
  {
    flow_params hier;
    hier.kind = flow_kind::hierarchical;
    hier.cleanup = cleanup;
    configs.push_back( hier );
  }
  return configs;
}

std::string dse_label( const flow_params& params )
{
  switch ( params.kind )
  {
  case flow_kind::functional:
    return params.bidirectional_tbs ? "functional(tbs,bidir)" : "functional(tbs,uni)";
  case flow_kind::esop_based:
    return "esop(p=" + std::to_string( params.esop_p ) + ")";
  case flow_kind::hierarchical:
  {
    // Non-default LUT cut sizes are a DSE axis of their own; the default
    // k = 4 keeps the historical label (and the committed bench baselines).
    const auto k =
        params.cut_size == 4u ? std::string{} : ",k=" + std::to_string( params.cut_size );
    // No default labels: -Wswitch (enabled for the library) must keep
    // flagging newly added enumerators here.
    switch ( params.cleanup )
    {
    case cleanup_strategy::keep_garbage:
      return "hierarchical(garbage" + k + ")";
    case cleanup_strategy::bennett:
      return "hierarchical(bennett" + k + ")";
    case cleanup_strategy::eager:
      return "hierarchical(eager" + k + ")";
    }
    return "hierarchical(unknown)";
  }
  }
  return "unknown";
}

namespace
{

unsigned resolve_num_threads( const explore_options& options )
{
  return options.num_threads == 0u ? thread_pool::default_num_threads() : options.num_threads;
}

/// The shared exploration core: fills `points[i]` from `configs[i]`,
/// optionally through a shared artifact cache and on a thread pool.  Slots
/// are written by index, so the result ordering (and, since every tail is
/// deterministic, every cost number) is identical to the sequential path.
///
/// Fault tolerance: a configuration that throws — in its prefetched stage
/// or in its tail — is isolated into its own point's `result.status`
/// (`timed_out` for budget expiry, `failed` otherwise); the other
/// configurations are unaffected and the full ordered point list is always
/// returned.
std::vector<dse_point> explore_impl( const aig_network& aig,
                                     const std::vector<flow_params>& configs,
                                     const explore_options& options,
                                     flow_artifact_cache* cache, const deadline& stop )
{
  std::vector<dse_point> points( configs.size() );
  // One deadline per configuration, armed up front so it covers both the
  // prefetched stage and the synthesis tail of that configuration.
  std::vector<deadline> stops;
  stops.reserve( configs.size() );
  for ( const auto& params : configs )
  {
    stops.push_back( stop.tightened( params.limits.deadline_seconds ) );
  }
  // A stage failure during prefetch belongs to the configurations that
  // depend on that stage: record it per slot and rethrow it from the slot's
  // job below.  (Recomputing in the job instead would let a one-shot
  // injected fault pass on retry and hide the failure.)
  std::vector<std::exception_ptr> stage_errors( configs.size() );
  if ( cache )
  {
    // Fill the shared stages up front so the concurrent tails only hit.
    for ( std::size_t i = 0; i < configs.size(); ++i )
    {
      try
      {
        cache->prefetch( aig, configs[i], stops[i] );
      }
      catch ( ... )
      {
        stage_errors[i] = std::current_exception();
      }
    }
  }

  // Never start more workers than there are tails to run.
  thread_pool pool( static_cast<unsigned>(
      std::min<std::size_t>( resolve_num_threads( options ), configs.size() ) ) );
  for ( std::size_t i = 0; i < configs.size(); ++i )
  {
    pool.submit( [&, i] {
      auto& point = points[i];
      point.label = dse_label( configs[i] );
      point.params = configs[i];
      try
      {
        if ( stage_errors[i] )
        {
          std::rethrow_exception( stage_errors[i] );
        }
        if ( stops[i].expired() )
        {
          throw budget_exhausted( "deadline expired before the configuration started" );
        }
        if ( cache )
        {
          point.result = run_flow_staged( aig, configs[i], *cache, stops[i] );
        }
        else
        {
          flow_artifact_cache local;
          point.result = run_flow_staged( aig, configs[i], local, stops[i] );
        }
      }
      catch ( const budget_exhausted& e )
      {
        point.result.status = flow_status::timed_out;
        point.result.status_detail = e.what();
      }
      catch ( const std::exception& e )
      {
        point.result.status = flow_status::failed;
        point.result.status_detail = e.what();
      }
    } );
  }
  // Jobs convert every expected failure into a status record; anything
  // still surfacing here is a programming error and worth a loud rethrow.
  const auto errors = pool.wait_all();
  if ( !errors.empty() )
  {
    std::rethrow_exception( errors.front() );
  }
  return points;
}

} // namespace

std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs )
{
  return explore( aig, configs, explore_options{} );
}

std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs,
                                const explore_options& options )
{
  const auto stop = deadline::in( options.sweep_deadline_seconds );
  if ( !options.use_cache )
  {
    return explore_impl( aig, configs, options, nullptr, stop );
  }
  flow_artifact_cache cache;
  return explore_impl( aig, configs, options, &cache, stop );
}

std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs,
                                const explore_options& options, flow_artifact_cache& cache )
{
  return explore_impl( aig, configs, options, &cache,
                       deadline::in( options.sweep_deadline_seconds ) );
}

std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs,
                                const explore_options& options, flow_artifact_cache& cache,
                                const deadline& stop )
{
  return explore_impl( aig, configs, options, &cache, stop );
}

namespace
{

/// Severity order of the status taxonomy (worst wins when aggregating the
/// points of one design).
int status_severity( flow_status status )
{
  switch ( status )
  {
  case flow_status::ok:
    return 0;
  case flow_status::degraded:
    return 1;
  case flow_status::timed_out:
    return 2;
  case flow_status::failed:
    return 3;
  }
  return 0;
}

} // namespace

std::vector<design_exploration> explore_designs( const std::vector<reciprocal_design>& designs,
                                                 unsigned min_bitwidth, unsigned max_bitwidth,
                                                 const explore_options& options )
{
  const auto sweep_stop = deadline::in( options.sweep_deadline_seconds );
  std::vector<design_exploration> explorations;
  for ( unsigned n = min_bitwidth; n <= max_bitwidth; ++n )
  {
    for ( const auto design : designs )
    {
      design_exploration entry;
      entry.design = design;
      entry.bitwidth = n;
      entry.name = ( design == reciprocal_design::intdiv ? "INTDIV(" : "NEWTON(" ) +
                   std::to_string( n ) + ")";
      stopwatch watch;
      // Per-design failure isolation: elaboration errors and sweep-budget
      // expiry become this design's status record; the sweep continues
      // with the next design either way.
      try
      {
        if ( sweep_stop.expired() )
        {
          throw budget_exhausted( "sweep deadline expired before the design started" );
        }
        fault_injection::poll( "dse.elaborate" );
        const auto mod =
            verilog::elaborate_verilog( reciprocal_verilog( design, n ), entry.name );
        auto configs =
            default_dse_configurations( n <= options.functional_max_bitwidth );
        for ( auto& config : configs )
        {
          config.verify = options.verification != verify_mode::none;
          config.verification = options.verification;
          config.limits = options.limits;
        }
        if ( options.use_cache )
        {
          flow_artifact_cache cache;
          entry.points = explore( mod.aig, configs, options, cache, sweep_stop );
          entry.cache = cache.stats();
        }
        else
        {
          entry.points = explore_impl( mod.aig, configs, options, nullptr, sweep_stop );
        }
        for ( const auto& point : entry.points )
        {
          if ( status_severity( point.result.status ) > status_severity( entry.status ) )
          {
            entry.status = point.result.status;
            entry.status_detail = point.label + ": " + point.result.status_detail;
          }
        }
      }
      catch ( const budget_exhausted& e )
      {
        entry.status = flow_status::timed_out;
        entry.status_detail = e.what();
      }
      catch ( const std::exception& e )
      {
        entry.status = flow_status::failed;
        entry.status_detail = e.what();
      }
      entry.wall_seconds = watch.elapsed_seconds();
      explorations.push_back( std::move( entry ) );
    }
  }
  return explorations;
}

std::vector<std::size_t> pareto_front( const std::vector<dse_point>& points )
{
  std::vector<std::size_t> front;
  for ( std::size_t i = 0; i < points.size(); ++i )
  {
    bool dominated = false;
    for ( std::size_t j = 0; j < points.size(); ++j )
    {
      if ( i == j )
      {
        continue;
      }
      const auto& a = points[j].result.costs;
      const auto& b = points[i].result.costs;
      const bool no_worse = a.qubits <= b.qubits && a.t_count <= b.t_count;
      const bool better = a.qubits < b.qubits || a.t_count < b.t_count;
      if ( no_worse && better )
      {
        dominated = true;
        break;
      }
    }
    if ( !dominated )
    {
      front.push_back( i );
    }
  }
  return front;
}

std::string format_dse_table( const std::vector<dse_point>& points )
{
  const auto front = pareto_front( points );
  std::ostringstream os;
  os << std::left << std::setw( 24 ) << "configuration" << std::right << std::setw( 8 )
     << "qubits" << std::setw( 14 ) << "T-count" << std::setw( 10 ) << "gates" << std::setw( 10 )
     << "runtime" << std::setw( 10 ) << "verify" << "  pareto\n";
  for ( std::size_t i = 0; i < points.size(); ++i )
  {
    const auto& p = points[i];
    const bool on_front = std::find( front.begin(), front.end(), i ) != front.end();
    os << std::left << std::setw( 24 ) << p.label << std::right << std::setw( 8 )
       << p.result.costs.qubits << std::setw( 14 ) << p.result.costs.t_count << std::setw( 10 )
       << p.result.costs.gates << std::setw( 9 ) << std::fixed << std::setprecision( 2 )
       << p.result.runtime_seconds << "s" << std::setw( 9 ) << std::fixed
       << std::setprecision( 2 ) << p.result.verify_seconds << "s"
       << ( on_front ? "  *" : "" ) << "\n";
  }
  return os.str();
}

} // namespace qsyn
