#include "dse.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "../common/fault_injection.hpp"
#include "../common/thread_pool.hpp"
#include "../common/timer.hpp"
#include "../reversible/verify.hpp"
#include "../verilog/elaborator.hpp"

namespace qsyn
{

std::vector<flow_params> default_dse_configurations( bool include_functional )
{
  std::vector<flow_params> configs;
  if ( include_functional )
  {
    flow_params functional;
    functional.kind = flow_kind::functional;
    configs.push_back( functional );
  }
  for ( unsigned p = 0; p <= 2u; ++p )
  {
    flow_params esop;
    esop.kind = flow_kind::esop_based;
    esop.esop_p = p;
    configs.push_back( esop );
  }
  for ( const auto cleanup :
        { cleanup_strategy::keep_garbage, cleanup_strategy::bennett, cleanup_strategy::eager } )
  {
    flow_params hier;
    hier.kind = flow_kind::hierarchical;
    hier.cleanup = cleanup;
    configs.push_back( hier );
  }
  return configs;
}

std::string dse_label( const flow_params& params )
{
  switch ( params.kind )
  {
  case flow_kind::functional:
    return params.bidirectional_tbs ? "functional(tbs,bidir)" : "functional(tbs,uni)";
  case flow_kind::esop_based:
    return "esop(p=" + std::to_string( params.esop_p ) + ")";
  case flow_kind::hierarchical:
  {
    // Non-default LUT cut sizes are a DSE axis of their own; the default
    // k = 4 keeps the historical label (and the committed bench baselines).
    const auto k =
        params.cut_size == 4u ? std::string{} : ",k=" + std::to_string( params.cut_size );
    // No default labels: -Wswitch (enabled for the library) must keep
    // flagging newly added enumerators here.
    switch ( params.cleanup )
    {
    case cleanup_strategy::keep_garbage:
      return "hierarchical(garbage" + k + ")";
    case cleanup_strategy::bennett:
      return "hierarchical(bennett" + k + ")";
    case cleanup_strategy::eager:
      return "hierarchical(eager" + k + ")";
    }
    return "hierarchical(unknown)";
  }
  }
  return "unknown";
}

namespace
{

unsigned resolve_num_threads( const explore_options& options )
{
  return options.num_threads == 0u ? thread_pool::default_num_threads() : options.num_threads;
}

std::string error_what( const std::exception_ptr& error )
{
  if ( !error )
  {
    return "unknown error";
  }
  try
  {
    std::rethrow_exception( error );
  }
  catch ( const std::exception& e )
  {
    return e.what();
  }
  catch ( ... )
  {
    return "unknown error";
  }
}

bool is_budget_error( const std::exception_ptr& error )
{
  if ( !error )
  {
    return false;
  }
  try
  {
    std::rethrow_exception( error );
  }
  catch ( const budget_exhausted& )
  {
    return true;
  }
  catch ( ... )
  {
    return false;
  }
}

/// Maps a tail task's terminal state back onto its point's status record
/// (see `fill_flow_status_from_graph`, shared with the synthesis daemon).
void fill_point_status( const task_graph& graph, task_id tail, dse_point& point )
{
  fill_flow_status_from_graph( graph, tail, point.result );
}

// --- frontier batch verification ---------------------------------------------

/// Default sampling parameters of the inline ladder
/// (`verify_against_aig_sampled_budgeted`'s defaults) — the batch pass must
/// draw the same patterns to stay bit-identical to per-configuration calls.
constexpr unsigned batch_verify_samples = 256;
constexpr std::uint64_t batch_verify_seed = 1;

/// True for configurations whose simulation-tier check the task-graph
/// engines take over (`flow_params::defer_sim_verify`): the sampled and
/// exhaustive tiers miter against the spec AIG and batch across the
/// frontier; the functional flow's truth-table check and the SAT tier stay
/// inline.
bool defer_eligible( const flow_params& config )
{
  return config.verify && config.kind != flow_kind::functional &&
         ( config.verification == verify_mode::sampled ||
           config.verification == verify_mode::exhaustive );
}

/// One synthesized point whose inline check was deferred to the frontier
/// batch pass.
struct deferred_verify_slot
{
  flow_result* result = nullptr;
  verify_mode tier = verify_mode::none;
  unsigned rounds = 0;            ///< optimization rounds → spec artifact key
  const deadline* stop = nullptr; ///< the point's per-configuration deadline
};

/// The frontier batch-verification pass: groups the deferred points by
/// (spec artifact, tier) and checks each group in ONE SIMD-wide
/// cross-circuit sweep — the spec AIG is walked once per lane group for the
/// whole frontier instead of once per candidate.  Widths, sample counts,
/// and seeds match the inline defaults exactly, so every patched report is
/// bit-identical to the per-configuration call the tail skipped; only the
/// wall clock changes (attributed evenly across the group's
/// `verify_seconds`).
void batch_verify_deferred( const aig_network& aig, flow_artifact_cache& cache,
                            const std::vector<deferred_verify_slot>& slots )
{
  std::map<std::pair<unsigned, verify_mode>, std::vector<const deferred_verify_slot*>> groups;
  for ( const auto& slot : slots )
  {
    groups[{ slot.rounds, slot.tier }].push_back( &slot );
  }
  for ( auto& [key, group] : groups )
  {
    const auto tier = key.second;
    // Always a cache hit: every member's synthesis tail computed (or
    // coalesced onto) this artifact before it could synthesize at all.
    const auto& spec = cache.optimized( aig, key.first );
    std::vector<const reversible_circuit*> circuits;
    circuits.reserve( group.size() );
    for ( const auto* slot : group )
    {
      circuits.push_back( &slot->result->circuit );
    }
    // The widths the inline default overloads pick, so lane layout — and
    // with it every verdict, counterexample, and coverage count — matches
    // per-configuration verification bit for bit.
    const auto width =
        tier == verify_mode::exhaustive
            ? ( spec.num_pis() > 24u
                    ? sim_width::w512
                    : auto_sim_width( std::uint64_t{ 1 } << spec.num_pis() ) )
            : auto_sim_width( std::uint64_t{ batch_verify_samples } + 2u );
    // Every member of a group was armed with the same per-configuration
    // budget at the same instant (the sweep drivers assign uniform
    // limits), so the first member's deadline serves the whole batch.
    const auto& stop = *group.front()->stop;
    stopwatch watch;
    std::vector<partial_verify_report> reports;
    try
    {
      reports = tier == verify_mode::exhaustive
                    ? verify_batch_against_aig_exhaustive_budgeted( circuits, spec, stop, width )
                    : verify_batch_against_aig_sampled_budgeted(
                          circuits, spec, stop, batch_verify_samples, batch_verify_seed, width );
    }
    catch ( const std::exception& e )
    {
      // Interface mismatch or a too-wide exhaustive space throws the same
      // std::invalid_argument the inline call would have thrown inside
      // each tail — keep the per-point failure isolation it had there.
      for ( const auto* slot : group )
      {
        slot->result->status = flow_status::failed;
        slot->result->status_detail = e.what();
      }
      continue;
    }
    const auto share = watch.elapsed_seconds() / static_cast<double>( group.size() );
    for ( std::size_t i = 0; i < group.size(); ++i )
    {
      auto& result = *group[i]->result;
      result.verified_with = tier;
      record_sim_verify_report( result, reports[i] );
      result.verify_seconds += share;
      finalize_verify_status( result );
    }
  }
}

/// Collects the deferred-and-synthesized points of one exploration after
/// its graph ran: a point joins the batch only when its tail completed (a
/// poisoned/failed/cancelled tail keeps its status record — there is no
/// circuit to check) and its inline ladder really did skip
/// (`verified_with` still `none`).
std::vector<deferred_verify_slot> collect_deferred_slots(
    const task_graph& graph, const std::vector<flow_params>& configs,
    const std::vector<task_id>& tails, const std::vector<deadline>& stops,
    std::vector<dse_point>& points )
{
  std::vector<deferred_verify_slot> deferred;
  for ( std::size_t i = 0; i < configs.size(); ++i )
  {
    if ( configs[i].defer_sim_verify && graph.state( tails[i] ) == task_state::done &&
         points[i].result.verified_with == verify_mode::none )
    {
      deferred.push_back( { &points[i].result, configs[i].verification,
                            configs[i].optimization_rounds, &stops[i] } );
    }
  }
  return deferred;
}

/// The PR 2 engine (`schedule_mode::tail_only`): stage artifacts are
/// prefetched sequentially, only the per-configuration synthesis tails run
/// on the pool.  Kept verbatim as the benchmark baseline and the
/// bit-identity oracle for the task-graph engine.
///
/// Fault tolerance: a configuration that throws — in its prefetched stage
/// or in its tail — is isolated into its own point's `result.status`
/// (`timed_out` for budget expiry, `failed` otherwise); the other
/// configurations are unaffected and the full ordered point list is always
/// returned.
std::vector<dse_point> explore_tail_only( const aig_network& aig,
                                          const std::vector<flow_params>& configs,
                                          const explore_options& options,
                                          flow_artifact_cache* cache, const deadline& stop )
{
  std::vector<dse_point> points( configs.size() );
  // One deadline per configuration, armed up front so it covers both the
  // prefetched stage and the synthesis tail of that configuration.
  std::vector<deadline> stops;
  stops.reserve( configs.size() );
  for ( const auto& params : configs )
  {
    stops.push_back( stop.tightened( params.limits.deadline_seconds ) );
  }
  // A stage failure during prefetch belongs to the configurations that
  // depend on that stage: record it per slot — together with the artifact
  // key and stage name it struck, so the status detail can attribute it —
  // and rethrow it from the slot's job below.  (Recomputing in the job
  // instead would let a one-shot injected fault pass on retry and hide the
  // failure.)
  struct stage_error_record
  {
    std::exception_ptr error;
    std::string key;   ///< artifact key, e.g. "xmg[r=2,k=4]"
    std::string stage; ///< stage name, e.g. "xmg"
  };
  std::vector<stage_error_record> stage_errors( configs.size() );
  if ( cache )
  {
    // Fill the shared stages up front so the concurrent tails only hit.
    for ( std::size_t i = 0; i < configs.size(); ++i )
    {
      try
      {
        cache->prefetch( aig, configs[i], stops[i] );
      }
      catch ( ... )
      {
        stage_errors[i] = { std::current_exception(), flow_artifact_key( configs[i] ),
                            flow_stage_name( configs[i].kind ) };
      }
    }
  }

  // Never start more workers than there are tails to run.
  thread_pool pool( static_cast<unsigned>(
      std::min<std::size_t>( resolve_num_threads( options ), configs.size() ) ) );
  for ( std::size_t i = 0; i < configs.size(); ++i )
  {
    pool.submit( [&, i] {
      auto& point = points[i];
      point.label = dse_label( configs[i] );
      point.params = configs[i];
      const auto detail_prefix =
          stage_errors[i].error ? "stage '" + stage_errors[i].key + "' (" +
                                      stage_errors[i].stage + ") failed: "
                                : std::string{};
      try
      {
        if ( stage_errors[i].error )
        {
          std::rethrow_exception( stage_errors[i].error );
        }
        if ( stops[i].expired() )
        {
          throw budget_exhausted( "deadline expired before the configuration started" );
        }
        if ( cache )
        {
          point.result = run_flow_staged( aig, configs[i], *cache, stops[i] );
        }
        else
        {
          flow_artifact_cache local;
          point.result = run_flow_staged( aig, configs[i], local, stops[i] );
        }
      }
      catch ( const budget_exhausted& e )
      {
        point.result.status = flow_status::timed_out;
        point.result.status_detail = detail_prefix + e.what();
      }
      catch ( const std::exception& e )
      {
        point.result.status = flow_status::failed;
        point.result.status_detail = detail_prefix + e.what();
      }
    } );
  }
  // Jobs convert every expected failure into a status record; anything
  // still surfacing here is a programming error and worth a loud rethrow.
  const auto errors = pool.wait_all();
  if ( !errors.empty() )
  {
    std::rethrow_exception( errors.front() );
  }
  return points;
}

/// The task-graph engine (`schedule_mode::task_graph`): one dependency DAG
/// per exploration — coalesced stage-artifact tasks feeding unique
/// per-configuration tails — dispatched onto the work-stealing pool, so
/// distinct artifacts compute concurrently with each other and with every
/// tail that is already unblocked.  Results are written into
/// caller-indexed slots and every task is deterministic, so the point list
/// is bit-identical to `explore_tail_only`.
std::vector<dse_point> explore_graph( const aig_network& aig,
                                      const std::vector<flow_params>& configs,
                                      const explore_options& options,
                                      flow_artifact_cache* cache, const deadline& stop,
                                      task_graph_stats* sched )
{
  std::vector<dse_point> points( configs.size() );
  std::vector<deadline> stops;
  stops.reserve( configs.size() );
  for ( const auto& params : configs )
  {
    stops.push_back( stop.tightened( params.limits.deadline_seconds ) );
  }

  // The graph engine owns the simulation-tier checks of its frontier: the
  // tails run with `defer_sim_verify` set (on a local copy — the recorded
  // `points[i].params` keep the caller's configuration, matching the
  // tail-only oracle) and the batch pass after the run verifies the whole
  // frontier in one cross-circuit sweep.  Uncached exploration keeps
  // inline verification: without the shared cache the spec artifact the
  // batch miters against is private to each tail.
  auto cfgs = configs;
  if ( cache )
  {
    for ( auto& config : cfgs )
    {
      config.defer_sim_verify = defer_eligible( config );
    }
  }

  task_graph graph;
  std::vector<task_id> tails( configs.size() );
  for ( std::size_t i = 0; i < cfgs.size(); ++i )
  {
    points[i].label = dse_label( cfgs[i] );
    points[i].params = configs[i];
    if ( cache )
    {
      tails[i] =
          add_flow_tasks( graph, aig, cfgs[i], *cache, stops[i], points[i].result ).tail;
    }
    else
    {
      // Uncached exploration: no shared artifacts, so each configuration is
      // a single independent task running the full staged flow privately —
      // the exact work the sequential uncached baseline does per slot.
      tails[i] = graph.add(
          "tail:" + points[i].label + "#" + std::to_string( graph.size() ),
          [&aig, &points, &cfgs, &stops, i] {
            if ( stops[i].expired() )
            {
              throw budget_exhausted( "deadline expired before the configuration started" );
            }
            flow_artifact_cache local;
            points[i].result = run_flow_staged( aig, cfgs[i], local, stops[i] );
          } );
    }
  }

  // Never start more workers than there are tasks to run.
  thread_pool pool( static_cast<unsigned>( std::min<std::size_t>(
      resolve_num_threads( options ), std::max<std::size_t>( graph.size(), 1 ) ) ) );
  graph.run( pool, stop );
  for ( std::size_t i = 0; i < cfgs.size(); ++i )
  {
    fill_point_status( graph, tails[i], points[i] );
  }
  if ( cache )
  {
    batch_verify_deferred( aig, *cache,
                           collect_deferred_slots( graph, cfgs, tails, stops, points ) );
  }
  if ( sched )
  {
    *sched = graph.stats();
  }
  return points;
}

std::vector<dse_point> explore_impl( const aig_network& aig,
                                     const std::vector<flow_params>& configs,
                                     const explore_options& options,
                                     flow_artifact_cache* cache, const deadline& stop,
                                     task_graph_stats* sched = nullptr )
{
  if ( options.scheduler == schedule_mode::task_graph )
  {
    return explore_graph( aig, configs, options, cache, stop, sched );
  }
  if ( sched )
  {
    *sched = {};
  }
  return explore_tail_only( aig, configs, options, cache, stop );
}

} // namespace

std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs )
{
  return explore( aig, configs, explore_options{} );
}

std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs,
                                const explore_options& options )
{
  const auto stop = deadline::in( options.sweep_deadline_seconds );
  if ( !options.use_cache )
  {
    return explore_impl( aig, configs, options, nullptr, stop );
  }
  flow_artifact_cache cache;
  cache.attach_store( options.store );
  return explore_impl( aig, configs, options, &cache, stop );
}

std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs,
                                const explore_options& options, flow_artifact_cache& cache )
{
  return explore_impl( aig, configs, options, &cache,
                       deadline::in( options.sweep_deadline_seconds ) );
}

std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs,
                                const explore_options& options, flow_artifact_cache& cache,
                                const deadline& stop )
{
  return explore_impl( aig, configs, options, &cache, stop );
}

std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs,
                                const explore_options& options, flow_artifact_cache& cache,
                                const deadline& stop, task_graph_stats& sched_stats )
{
  return explore_impl( aig, configs, options, &cache, stop, &sched_stats );
}

namespace
{

/// Severity order of the status taxonomy (worst wins when aggregating the
/// points of one design).
int status_severity( flow_status status )
{
  switch ( status )
  {
  case flow_status::ok:
    return 0;
  case flow_status::degraded:
    return 1;
  case flow_status::timed_out:
    return 2;
  case flow_status::failed:
    return 3;
  }
  return 0;
}

/// Folds the worst point status (and its attributed detail) into the
/// design-level record.
void aggregate_design_status( design_exploration& entry )
{
  for ( const auto& point : entry.points )
  {
    if ( status_severity( point.result.status ) > status_severity( entry.status ) )
    {
      entry.status = point.result.status;
      entry.status_detail = point.label + ": " + point.result.status_detail;
    }
  }
}

std::string design_name( reciprocal_design design, unsigned n )
{
  return ( design == reciprocal_design::intdiv ? "INTDIV(" : "NEWTON(" ) +
         std::to_string( n ) + ")";
}

/// The PR 6 batch driver (`schedule_mode::tail_only`): designs strictly one
/// at a time, each through the tail-only exploration core.  Kept as the
/// benchmark baseline and the bit-identity oracle for the batch graph.
std::vector<design_exploration> explore_designs_serial(
    const std::vector<reciprocal_design>& designs, unsigned min_bitwidth,
    unsigned max_bitwidth, const explore_options& options )
{
  const auto sweep_stop = deadline::in( options.sweep_deadline_seconds );
  std::vector<design_exploration> explorations;
  for ( unsigned n = min_bitwidth; n <= max_bitwidth; ++n )
  {
    for ( const auto design : designs )
    {
      design_exploration entry;
      entry.design = design;
      entry.bitwidth = n;
      entry.name = design_name( design, n );
      stopwatch watch;
      // Per-design failure isolation: elaboration errors and sweep-budget
      // expiry become this design's status record; the sweep continues
      // with the next design either way.
      try
      {
        if ( sweep_stop.expired() )
        {
          throw budget_exhausted( "sweep deadline expired before the design started" );
        }
        fault_injection::poll( "dse.elaborate" );
        const auto mod =
            verilog::elaborate_verilog( reciprocal_verilog( design, n ), entry.name );
        auto configs =
            default_dse_configurations( n <= options.functional_max_bitwidth );
        for ( auto& config : configs )
        {
          config.verify = options.verification != verify_mode::none;
          config.verification = options.verification;
          config.limits = options.limits;
        }
        if ( options.use_cache )
        {
          flow_artifact_cache cache;
          cache.attach_store( options.store );
          entry.points = explore( mod.aig, configs, options, cache, sweep_stop );
          entry.cache = cache.stats();
        }
        else
        {
          entry.points = explore_impl( mod.aig, configs, options, nullptr, sweep_stop );
        }
        aggregate_design_status( entry );
      }
      catch ( const budget_exhausted& e )
      {
        entry.status = flow_status::timed_out;
        entry.status_detail = e.what();
      }
      catch ( const std::exception& e )
      {
        entry.status = flow_status::failed;
        entry.status_detail = e.what();
      }
      entry.wall_seconds = watch.elapsed_seconds();
      explorations.push_back( std::move( entry ) );
    }
  }
  return explorations;
}

/// One design's slot in the batch graph.  Heap-pinned (the task lambdas
/// keep pointers into it) and written strictly by the design's own tasks:
/// the elaborate task fills `aig`, the stage/tail tasks go through
/// `cache`/`points`.  Task keys are prefixed with the design name, so
/// coalescing never crosses designs — each design keeps its own artifact
/// cache exactly like the serial sweep.
struct design_build
{
  design_exploration entry;
  std::vector<flow_params> configs;
  std::vector<dse_point> points;
  /// Per-configuration deadlines, armed by the elaborate task (the
  /// design's start) — NOT at graph-build time, where a nonzero
  /// `limits.deadline_seconds` would start ticking for every design at
  /// once and late-scheduled designs would begin with their per-flow
  /// clock already consumed by earlier ones (the serial driver arms them
  /// on entry to `explore`, i.e. per design).  The flow tasks read these
  /// slots by reference at run time, always after the elaborate task they
  /// depend on wrote them.
  std::vector<deadline> stops;
  std::unique_ptr<flow_artifact_cache> cache;
  aig_network aig;
  task_id elaborate = 0;
  std::vector<task_id> tails;
  task_id first_task = 0; ///< [first_task, last_task) are this design's tasks
  task_id last_task = 0;
};

/// The batch graph (`schedule_mode::task_graph`): the whole sweep is ONE
/// task graph — per-design elaboration tasks feeding that design's stage
/// artifacts and synthesis tails — so different designs overlap on the
/// pool instead of running strictly one at a time.  Failure isolation now
/// falls out of poisoning: a failed elaboration poisons exactly that
/// design's tasks, a failed shared stage poisons exactly its dependent
/// tails.
std::vector<design_exploration> explore_designs_graph(
    const std::vector<reciprocal_design>& designs, unsigned min_bitwidth,
    unsigned max_bitwidth, const explore_options& options, task_graph_stats* sched )
{
  const auto sweep_stop = deadline::in( options.sweep_deadline_seconds );
  task_graph graph;
  std::vector<std::unique_ptr<design_build>> builds;
  for ( unsigned n = min_bitwidth; n <= max_bitwidth; ++n )
  {
    for ( const auto design : designs )
    {
      auto build = std::make_unique<design_build>();
      design_build* slot = build.get();
      slot->entry.design = design;
      slot->entry.bitwidth = n;
      slot->entry.name = design_name( design, n );
      slot->configs = default_dse_configurations( n <= options.functional_max_bitwidth );
      for ( auto& config : slot->configs )
      {
        config.verify = options.verification != verify_mode::none;
        config.verification = options.verification;
        config.limits = options.limits;
      }
      slot->points.resize( slot->configs.size() );
      // Pre-fill with the sweep deadline; the elaborate task below
      // tightens each slot by its per-config budget when the design
      // actually starts.  Sized up front so the references the flow tasks
      // capture stay stable.
      slot->stops.assign( slot->configs.size(), sweep_stop );
      if ( options.use_cache )
      {
        slot->cache = std::make_unique<flow_artifact_cache>();
        slot->cache->attach_store( options.store );
        // The per-design batch pass after the run takes over this design's
        // simulation-tier checks (see `batch_verify_deferred`).
        for ( auto& config : slot->configs )
        {
          config.defer_sim_verify = defer_eligible( config );
        }
      }
      slot->first_task = graph.size();
      const auto prefix = slot->entry.name + "/";
      slot->elaborate = graph.add( prefix + "elaborate", [slot, design, n, sweep_stop] {
        if ( sweep_stop.expired() )
        {
          throw budget_exhausted( "sweep deadline expired before the design started" );
        }
        fault_injection::poll( "dse.elaborate" );
        slot->aig =
            verilog::elaborate_verilog( reciprocal_verilog( design, n ), slot->entry.name )
                .aig;
        // Arm the per-configuration deadlines NOW — the design's start —
        // matching the serial driver's per-design arming point.  Every
        // flow task depends on this task, so the writes are ordered
        // before any read.
        for ( std::size_t i = 0; i < slot->configs.size(); ++i )
        {
          slot->stops[i] =
              sweep_stop.tightened( slot->configs[i].limits.deadline_seconds );
        }
      } );
      for ( std::size_t i = 0; i < slot->configs.size(); ++i )
      {
        slot->points[i].label = dse_label( slot->configs[i] );
        slot->points[i].params = slot->configs[i];
        // Recorded params match the serial oracle: the defer flag is the
        // engine's internal routing, not part of the configuration.
        slot->points[i].params.defer_sim_verify = false;
        if ( slot->cache )
        {
          slot->tails.push_back( add_flow_tasks( graph, slot->aig, slot->configs[i],
                                                 *slot->cache, slot->stops[i],
                                                 slot->points[i].result, prefix,
                                                 { slot->elaborate } )
                                     .tail );
        }
        else
        {
          slot->tails.push_back( graph.add(
              prefix + "tail:" + slot->points[i].label + "#" + std::to_string( graph.size() ),
              [slot, i] {
                if ( slot->stops[i].expired() )
                {
                  throw budget_exhausted( "deadline expired before the configuration started" );
                }
                flow_artifact_cache local;
                slot->points[i].result =
                    run_flow_staged( slot->aig, slot->configs[i], local, slot->stops[i] );
              },
              { slot->elaborate } ) );
        }
      }
      slot->last_task = graph.size();
      builds.push_back( std::move( build ) );
    }
  }

  thread_pool pool( static_cast<unsigned>( std::min<std::size_t>(
      resolve_num_threads( options ), std::max<std::size_t>( graph.size(), 1 ) ) ) );
  graph.run( pool, sweep_stop );

  std::vector<design_exploration> explorations;
  explorations.reserve( builds.size() );
  for ( auto& build : builds )
  {
    auto& entry = build->entry;
    if ( graph.state( build->elaborate ) == task_state::done )
    {
      entry.points = std::move( build->points );
      for ( std::size_t i = 0; i < build->tails.size(); ++i )
      {
        fill_point_status( graph, build->tails[i], entry.points[i] );
      }
      if ( build->cache )
      {
        batch_verify_deferred( build->aig, *build->cache,
                               collect_deferred_slots( graph, build->configs, build->tails,
                                                       build->stops, entry.points ) );
      }
      aggregate_design_status( entry );
      if ( build->cache )
      {
        entry.cache = build->cache->stats();
      }
    }
    else
    {
      // Elaboration failed, timed out, or was cancelled by the sweep
      // deadline: the design keeps the serial contract — empty point list,
      // design-level status record.
      const auto error = graph.error( build->elaborate );
      entry.status = is_budget_error( error ) ? flow_status::timed_out : flow_status::failed;
      entry.status_detail = error_what( error );
    }
    // Wall clock of this design = span of its own tasks inside the batch
    // run (0 when nothing of it ever started).
    double first = 0.0, last = 0.0;
    bool ran = false;
    for ( task_id id = build->first_task; id < build->last_task; ++id )
    {
      const auto start = graph.start_seconds( id );
      if ( start < 0.0 )
      {
        continue;
      }
      const auto end = std::max( start, graph.end_seconds( id ) );
      first = ran ? std::min( first, start ) : start;
      last = ran ? std::max( last, end ) : end;
      ran = true;
    }
    entry.wall_seconds = ran ? last - first : 0.0;
    explorations.push_back( std::move( entry ) );
  }
  if ( sched )
  {
    *sched = graph.stats();
  }
  return explorations;
}

} // namespace

std::vector<design_exploration> explore_designs( const std::vector<reciprocal_design>& designs,
                                                 unsigned min_bitwidth, unsigned max_bitwidth,
                                                 const explore_options& options )
{
  if ( options.scheduler == schedule_mode::task_graph )
  {
    return explore_designs_graph( designs, min_bitwidth, max_bitwidth, options, nullptr );
  }
  return explore_designs_serial( designs, min_bitwidth, max_bitwidth, options );
}

std::vector<design_exploration> explore_designs( const std::vector<reciprocal_design>& designs,
                                                 unsigned min_bitwidth, unsigned max_bitwidth,
                                                 const explore_options& options,
                                                 task_graph_stats& sched_stats )
{
  if ( options.scheduler == schedule_mode::task_graph )
  {
    return explore_designs_graph( designs, min_bitwidth, max_bitwidth, options, &sched_stats );
  }
  sched_stats = {};
  return explore_designs_serial( designs, min_bitwidth, max_bitwidth, options );
}

std::vector<std::size_t> pareto_front( const std::vector<dse_point>& points )
{
  std::vector<std::size_t> front;
  for ( std::size_t i = 0; i < points.size(); ++i )
  {
    bool dominated = false;
    for ( std::size_t j = 0; j < points.size(); ++j )
    {
      if ( i == j )
      {
        continue;
      }
      const auto& a = points[j].result.costs;
      const auto& b = points[i].result.costs;
      const bool no_worse = a.qubits <= b.qubits && a.t_count <= b.t_count;
      const bool better = a.qubits < b.qubits || a.t_count < b.t_count;
      if ( no_worse && better )
      {
        dominated = true;
        break;
      }
    }
    if ( !dominated )
    {
      front.push_back( i );
    }
  }
  return front;
}

std::string format_dse_table( const std::vector<dse_point>& points )
{
  const auto front = pareto_front( points );
  std::ostringstream os;
  os << std::left << std::setw( 24 ) << "configuration" << std::right << std::setw( 8 )
     << "qubits" << std::setw( 14 ) << "T-count" << std::setw( 10 ) << "gates" << std::setw( 10 )
     << "runtime" << std::setw( 10 ) << "verify" << "  pareto\n";
  for ( std::size_t i = 0; i < points.size(); ++i )
  {
    const auto& p = points[i];
    const bool on_front = std::find( front.begin(), front.end(), i ) != front.end();
    os << std::left << std::setw( 24 ) << p.label << std::right << std::setw( 8 )
       << p.result.costs.qubits << std::setw( 14 ) << p.result.costs.t_count << std::setw( 10 )
       << p.result.costs.gates << std::setw( 9 ) << std::fixed << std::setprecision( 2 )
       << p.result.runtime_seconds << "s" << std::setw( 9 ) << std::fixed
       << std::setprecision( 2 ) << p.result.verify_seconds << "s"
       << ( on_front ? "  *" : "" ) << "\n";
  }
  return os.str();
}

} // namespace qsyn
