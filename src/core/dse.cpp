#include "dse.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace qsyn
{

std::vector<flow_params> default_dse_configurations( bool include_functional )
{
  std::vector<flow_params> configs;
  if ( include_functional )
  {
    flow_params functional;
    functional.kind = flow_kind::functional;
    configs.push_back( functional );
  }
  for ( unsigned p = 0; p <= 2u; ++p )
  {
    flow_params esop;
    esop.kind = flow_kind::esop_based;
    esop.esop_p = p;
    configs.push_back( esop );
  }
  for ( const auto cleanup :
        { cleanup_strategy::keep_garbage, cleanup_strategy::bennett, cleanup_strategy::eager } )
  {
    flow_params hier;
    hier.kind = flow_kind::hierarchical;
    hier.cleanup = cleanup;
    configs.push_back( hier );
  }
  return configs;
}

std::string dse_label( const flow_params& params )
{
  switch ( params.kind )
  {
  case flow_kind::functional:
    return params.bidirectional_tbs ? "functional(tbs,bidir)" : "functional(tbs,uni)";
  case flow_kind::esop_based:
    return "esop(p=" + std::to_string( params.esop_p ) + ")";
  case flow_kind::hierarchical:
    switch ( params.cleanup )
    {
    case cleanup_strategy::keep_garbage:
      return "hierarchical(garbage)";
    case cleanup_strategy::bennett:
      return "hierarchical(bennett)";
    case cleanup_strategy::eager:
      return "hierarchical(eager)";
    }
  }
  return "unknown";
}

std::vector<dse_point> explore( const aig_network& aig, const std::vector<flow_params>& configs )
{
  std::vector<dse_point> points;
  points.reserve( configs.size() );
  for ( const auto& params : configs )
  {
    dse_point point;
    point.label = dse_label( params );
    point.params = params;
    point.result = run_flow_on_aig( aig, params );
    points.push_back( std::move( point ) );
  }
  return points;
}

std::vector<std::size_t> pareto_front( const std::vector<dse_point>& points )
{
  std::vector<std::size_t> front;
  for ( std::size_t i = 0; i < points.size(); ++i )
  {
    bool dominated = false;
    for ( std::size_t j = 0; j < points.size(); ++j )
    {
      if ( i == j )
      {
        continue;
      }
      const auto& a = points[j].result.costs;
      const auto& b = points[i].result.costs;
      const bool no_worse = a.qubits <= b.qubits && a.t_count <= b.t_count;
      const bool better = a.qubits < b.qubits || a.t_count < b.t_count;
      if ( no_worse && better )
      {
        dominated = true;
        break;
      }
    }
    if ( !dominated )
    {
      front.push_back( i );
    }
  }
  return front;
}

std::string format_dse_table( const std::vector<dse_point>& points )
{
  const auto front = pareto_front( points );
  std::ostringstream os;
  os << std::left << std::setw( 24 ) << "configuration" << std::right << std::setw( 8 )
     << "qubits" << std::setw( 14 ) << "T-count" << std::setw( 10 ) << "gates" << std::setw( 10 )
     << "runtime" << "  pareto\n";
  for ( std::size_t i = 0; i < points.size(); ++i )
  {
    const auto& p = points[i];
    const bool on_front = std::find( front.begin(), front.end(), i ) != front.end();
    os << std::left << std::setw( 24 ) << p.label << std::right << std::setw( 8 )
       << p.result.costs.qubits << std::setw( 14 ) << p.result.costs.t_count << std::setw( 10 )
       << p.result.costs.gates << std::setw( 9 ) << std::fixed << std::setprecision( 2 )
       << p.result.runtime_seconds << "s" << ( on_front ? "  *" : "" ) << "\n";
  }
  return os.str();
}

} // namespace qsyn
