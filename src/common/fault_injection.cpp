#include "fault_injection.hpp"

#include <atomic>
#include <map>
#include <mutex>

#include "budget.hpp"

namespace qsyn::fault_injection
{

namespace
{

struct site_state
{
  kind k = kind::fail;
  std::uint64_t after_hits = 0;
  std::int64_t times = -1;
  std::uint64_t polls = 0;
  std::uint64_t fired = 0;
};

std::mutex registry_mutex;
std::map<std::string, site_state>& registry()
{
  static std::map<std::string, site_state> sites;
  return sites;
}

/// Fast-path guard: production flows never take the mutex unless a test
/// has armed at least one site.
std::atomic<bool> any_armed{ false };

} // namespace

void arm( const std::string& site, kind k, std::uint64_t after_hits, std::int64_t times )
{
  const std::lock_guard<std::mutex> guard( registry_mutex );
  site_state& s = registry()[site];
  s.k = k;
  s.after_hits = after_hits;
  s.times = times;
  s.polls = 0;
  s.fired = 0;
  any_armed.store( true, std::memory_order_release );
}

void disarm_all()
{
  const std::lock_guard<std::mutex> guard( registry_mutex );
  registry().clear();
  any_armed.store( false, std::memory_order_release );
}

std::uint64_t hits( const std::string& site )
{
  const std::lock_guard<std::mutex> guard( registry_mutex );
  const auto it = registry().find( site );
  return it == registry().end() ? 0u : it->second.polls;
}

bool poll( const char* site )
{
  if ( !any_armed.load( std::memory_order_acquire ) )
  {
    return false;
  }
  kind fired_kind;
  {
    const std::lock_guard<std::mutex> guard( registry_mutex );
    const auto it = registry().find( site );
    if ( it == registry().end() )
    {
      return false;
    }
    site_state& s = it->second;
    ++s.polls;
    if ( s.polls <= s.after_hits )
    {
      return false;
    }
    if ( s.times >= 0 && s.fired >= static_cast<std::uint64_t>( s.times ) )
    {
      return false;
    }
    ++s.fired;
    fired_kind = s.k;
  }
  switch ( fired_kind )
  {
  case kind::fail:
    throw injected_fault( std::string( "injected fault at " ) + site );
  case kind::timeout:
    throw budget_exhausted( std::string( "injected timeout at " ) + site );
  case kind::trip:
    return true;
  }
  return false;
}

} // namespace qsyn::fault_injection
