/// \file content_hash.hpp
/// \brief Streaming 64-bit structural content hashing.
///
/// The persistent artifact store (src/store/) keys every on-disk entry on
/// a *content* hash of the design it was derived from, so equal designs
/// share entries across processes and distinct designs can never alias —
/// including equal-sized distinct designs, which the old size-only
/// fingerprint of `flow_artifact_cache` silently confused.
///
/// The hasher is FNV-1a over 64-bit words with a splitmix64 finalizer.  It
/// is deliberately simple and *stable*: the value is written into on-disk
/// headers and must not change across compilers, standard-library
/// versions, or word orders of the host (everything is fed as explicit
/// little-endian words) — do not replace it with std::hash.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace qsyn
{

/// Streaming structural hasher; feed words/bytes, then take `digest()`.
class content_hasher
{
public:
  /// FNV-1a offset basis / prime (64-bit variant).
  static constexpr std::uint64_t offset_basis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t prime = 0x100000001b3ull;

  constexpr void update( std::uint64_t word ) noexcept
  {
    for ( int i = 0; i < 8; ++i )
    {
      state_ = ( state_ ^ ( word & 0xffu ) ) * prime;
      word >>= 8;
    }
  }

  constexpr void update_u32( std::uint32_t word ) noexcept
  {
    for ( int i = 0; i < 4; ++i )
    {
      state_ = ( state_ ^ ( word & 0xffu ) ) * prime;
      word >>= 8;
    }
  }

  void update( const std::string& bytes ) noexcept
  {
    for ( const unsigned char c : bytes )
    {
      state_ = ( state_ ^ c ) * prime;
    }
  }

  /// Finalized digest (splitmix64 avalanche on the FNV state, so short
  /// inputs still diffuse into all 64 bits).
  [[nodiscard]] constexpr std::uint64_t digest() const noexcept
  {
    std::uint64_t z = state_ + 0x9e3779b97f4a7c15ull;
    z = ( z ^ ( z >> 30 ) ) * 0xbf58476d1ce4e5b9ull;
    z = ( z ^ ( z >> 27 ) ) * 0x94d049bb133111ebull;
    return z ^ ( z >> 31 );
  }

private:
  std::uint64_t state_ = offset_basis;
};

/// One-shot hash of a byte string (store key derivation for parameter-key
/// strings like "esop[r=2,exo=1]").
inline std::uint64_t content_hash_bytes( const std::string& bytes ) noexcept
{
  content_hasher h;
  h.update( bytes );
  return h.digest();
}

} // namespace qsyn
