/// \file fault_injection.hpp
/// \brief Deterministic fault injection for tests and benches.
///
/// Production code calls `fault_injection::poll("site.name")` at named
/// sites.  When nothing is armed this is a single relaxed atomic load.
/// Tests arm a site with a fault kind:
///
/// * `fail`    — poll() throws `injected_fault` (a stage failure),
/// * `timeout` — poll() throws `qsyn::budget_exhausted` (a hang that the
///               budget layer caught),
/// * `trip`    — poll() returns true; the caller implements the
///               degradation itself (e.g. "pretend the SAT budget is
///               gone", "treat this cache hit as a miss").
///
/// Site registry (keep in sync with docs/ARCHITECTURE.md):
///
///   flow.optimize   — AIG optimization stage
///   flow.collapse   — truth-table collapse stage (functional flow)
///   flow.esop       — ESOP extraction/minimization stage
///   flow.xmg        — XMG mapping stage (hierarchical flow)
///   cache.hit       — artifact-cache hit (trip = treat as miss)
///   verify.sat      — SAT verify tier (trip = budget exhausted)
///   dse.elaborate   — per-design elaboration in explore_designs
///
/// Arming supports `after_hits` (skip the first N polls) and `times`
/// (fire at most N times, -1 = forever), making multi-threaded tests
/// deterministic: the fault fires on an exact poll count regardless of
/// scheduling.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace qsyn::fault_injection
{

/// Thrown by poll() at a site armed with `kind::fail`.
class injected_fault : public std::runtime_error
{
public:
  explicit injected_fault( const std::string& what_arg )
      : std::runtime_error( what_arg )
  {
  }
};

enum class kind
{
  fail,    ///< poll() throws injected_fault
  timeout, ///< poll() throws qsyn::budget_exhausted
  trip     ///< poll() returns true
};

/// Arms `site`.  The fault fires on polls `after_hits+1 .. after_hits+times`
/// (times == -1 fires forever once reached).  Re-arming a site replaces its
/// previous configuration.
void arm( const std::string& site, kind k, std::uint64_t after_hits = 0, std::int64_t times = -1 );

/// Disarms every site and resets all hit counters.
void disarm_all();

/// Number of times `site` has been polled since the last disarm_all()
/// (counted only while the site is armed).
std::uint64_t hits( const std::string& site );

/// Polls `site`.  No-op (returns false) unless the site is armed and its
/// firing window is reached; see `kind` for the armed behavior.
bool poll( const char* site );

} // namespace qsyn::fault_injection
