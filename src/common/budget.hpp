/// \file budget.hpp
/// \brief Wall-clock deadlines, cancellation tokens, and resource budgets.
///
/// Long-running kernels (CDCL search, the incremental CEC portfolio, the
/// EXORCISM improvement loop, the TBS tail) poll a `deadline` cooperatively
/// at cheap checkpoints.  A `deadline` combines an absolute time limit with
/// an optional shared `cancellation_token`, so a DSE sweep can stop all
/// in-flight work promptly when the global budget is gone.
///
/// Kernels that can stop *gracefully* (EXORCISM, sampling) simply return a
/// partial result; kernels that cannot produce a meaningful partial answer
/// (TBS) throw `budget_exhausted`, which the flow/DSE layer converts into a
/// `timed_out` status record.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

namespace qsyn
{

/// Thrown by kernels that cannot return a partial result when their
/// deadline expires or their budget runs out.
class budget_exhausted : public std::runtime_error
{
public:
  explicit budget_exhausted( const std::string& what_arg )
      : std::runtime_error( what_arg )
  {
  }
};

/// Shared cancellation flag.  Copies refer to the same flag; default
/// construction yields an armed, not-yet-cancelled token.
class cancellation_token
{
public:
  cancellation_token()
      : flag_( std::make_shared<std::atomic<bool>>( false ) )
  {
  }

  void request_cancel() noexcept
  {
    flag_->store( true, std::memory_order_relaxed );
  }

  [[nodiscard]] bool cancelled() const noexcept
  {
    return flag_->load( std::memory_order_relaxed );
  }

private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Cooperative wall-clock deadline with an optional cancellation token.
/// Default-constructed deadlines never expire; they cost one atomic load
/// per poll, so kernels can check unconditionally.
class deadline
{
public:
  using clock = std::chrono::steady_clock;

  deadline() = default;

  /// Deadline `seconds` from now; `seconds <= 0` means unlimited.
  static deadline in( double seconds )
  {
    deadline d;
    if ( seconds > 0.0 )
    {
      d.has_time_limit_ = true;
      d.expires_at_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                                         std::chrono::duration<double>( seconds ) );
    }
    return d;
  }

  static deadline in( double seconds, cancellation_token token )
  {
    deadline d = in( seconds );
    d.token_ = std::move( token );
    d.has_token_ = true;
    return d;
  }

  static deadline with_token( cancellation_token token )
  {
    deadline d;
    d.token_ = std::move( token );
    d.has_token_ = true;
    return d;
  }

  [[nodiscard]] bool unlimited() const noexcept
  {
    return !has_time_limit_ && !has_token_;
  }

  [[nodiscard]] bool expired() const
  {
    if ( has_token_ && token_.cancelled() )
    {
      return true;
    }
    return has_time_limit_ && clock::now() >= expires_at_;
  }

  /// Seconds until expiry; a very large value when unlimited, 0 when
  /// already expired or cancelled.
  [[nodiscard]] double remaining_seconds() const
  {
    if ( has_token_ && token_.cancelled() )
    {
      return 0.0;
    }
    if ( !has_time_limit_ )
    {
      return 1e18;
    }
    const auto left = std::chrono::duration<double>( expires_at_ - clock::now() ).count();
    return left > 0.0 ? left : 0.0;
  }

  /// The tighter of this deadline and one `seconds` from now
  /// (`seconds <= 0` keeps this deadline unchanged).  Used to compose a
  /// sweep-level deadline with a per-design budget.
  [[nodiscard]] deadline tightened( double seconds ) const
  {
    if ( seconds <= 0.0 )
    {
      return *this;
    }
    deadline d = *this;
    const auto candidate = clock::now() + std::chrono::duration_cast<clock::duration>(
                                              std::chrono::duration<double>( seconds ) );
    if ( !d.has_time_limit_ || candidate < d.expires_at_ )
    {
      d.has_time_limit_ = true;
      d.expires_at_ = candidate;
    }
    return d;
  }

private:
  bool has_time_limit_ = false;
  bool has_token_ = false;
  clock::time_point expires_at_{};
  cancellation_token token_;
};

/// Resource budget carried by `flow_params` / `explore_options`.  A value
/// of 0 for any field means "unlimited"; a default-constructed budget
/// leaves behavior bit-identical to the unbudgeted engine.
struct budget
{
  /// Wall-clock limit per flow/design, in seconds (0 = unlimited).
  double deadline_seconds = 0.0;
  /// Total CDCL conflicts the SAT verify tier may spend per flow
  /// (0 = unlimited).
  std::uint64_t sat_conflict_budget = 0;
  /// Total unit propagations the SAT verify tier may spend per flow
  /// (0 = unlimited).
  std::uint64_t sat_propagation_budget = 0;
  /// Cube-pair merge attempts EXORCISM may spend (0 = unlimited).
  std::uint64_t exorcism_pair_budget = 0;
  /// When the SAT tier gives up, fall back to exhaustive simulation if the
  /// design has at most this many primary inputs; otherwise to sampling.
  unsigned exhaustive_fallback_max_pis = 16;

  [[nodiscard]] bool unlimited() const noexcept
  {
    return deadline_seconds <= 0.0 && sat_conflict_budget == 0 && sat_propagation_budget == 0 &&
           exorcism_pair_budget == 0;
  }

  /// True when this budget is at least as generous as `other` in every
  /// dimension and strictly more generous in at least one (0 = unlimited
  /// ranks above any finite value).  The daemon's result cache uses this
  /// to decide whether a requester's budget justifies recomputing a
  /// cached `degraded` outcome: only a strictly better-funded request can
  /// hope for a better verdict.
  [[nodiscard]] bool more_generous_than( const budget& other ) const noexcept
  {
    // Map 0/negative ("unlimited") onto +inf so one comparison rule works.
    const auto time = []( double s ) { return s <= 0.0 ? 1e18 : s; };
    const auto count = []( std::uint64_t c ) {
      return c == 0 ? std::numeric_limits<std::uint64_t>::max() : c;
    };
    const bool no_worse = time( deadline_seconds ) >= time( other.deadline_seconds ) &&
                          count( sat_conflict_budget ) >= count( other.sat_conflict_budget ) &&
                          count( sat_propagation_budget ) >= count( other.sat_propagation_budget ) &&
                          count( exorcism_pair_budget ) >= count( other.exorcism_pair_budget );
    const bool better = time( deadline_seconds ) > time( other.deadline_seconds ) ||
                        count( sat_conflict_budget ) > count( other.sat_conflict_budget ) ||
                        count( sat_propagation_budget ) > count( other.sat_propagation_budget ) ||
                        count( exorcism_pair_budget ) > count( other.exorcism_pair_budget );
    return no_worse && better;
  }
};

} // namespace qsyn
