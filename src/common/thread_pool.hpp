/// \file thread_pool.hpp
/// \brief Work-stealing fixed-size thread pool for the task-graph scheduler
/// and the parallel DSE engine.
///
/// The pool owns `num_threads` workers, each with its own double-ended job
/// queue plus one shared injection queue for jobs submitted from outside
/// the pool.  A worker runs its own queue newest-first (LIFO — the job it
/// just spawned is the one whose data is hot), drains the shared queue
/// next, and finally *steals* the oldest job from another worker's queue
/// (FIFO — the victim keeps its hot tail, the thief takes the coldest
/// work).  Jobs submitted from a worker thread land on that worker's own
/// queue, so a task-graph node that readies its dependents keeps them
/// local until an idle worker steals them; `steals()` counts successful
/// steals, the scheduler's dead-parallelism canary.
///
/// With `num_threads <= 1` no worker threads are started and `submit` runs
/// the job inline, so the sequential and parallel code paths share one
/// call site and the sequential path stays deterministic and
/// overhead-free.  Every exception thrown by a job is captured;
/// `wait_all()` returns the full batch, `wait()` rethrows the first and
/// drops the rest (legacy call sites that treat any job failure as fatal).
///
/// The pool also carries a `cancellation_token`.  `cancel()` flips it;
/// jobs that poll a `deadline` built from `pool.cancellation()` stop
/// promptly.  The pool itself never drops queued jobs — accounting for
/// cancelled work stays with the caller, which keeps per-task status
/// records accurate.
///
/// Queue bookkeeping (the pending-job count, wakeups, error collection)
/// runs under one pool mutex; each worker deque has its own mutex so
/// steal probes touch only the victim.  Jobs here are coarse (stage
/// kernels, synthesis tails — milliseconds to seconds), so the shared
/// accounting tap is noise; the stealing structure is what spreads work.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "budget.hpp"

namespace qsyn
{

class thread_pool
{
public:
  /// Starts `num_threads` workers; 0 and 1 both mean "run jobs inline".
  explicit thread_pool( unsigned num_threads )
  {
    if ( num_threads <= 1u )
    {
      return;
    }
    queues_.reserve( num_threads );
    for ( unsigned t = 0; t < num_threads; ++t )
    {
      queues_.push_back( std::make_unique<worker_queue>() );
    }
    workers_.reserve( num_threads );
    for ( unsigned t = 0; t < num_threads; ++t )
    {
      workers_.emplace_back( [this, t] { worker_loop( t ); } );
    }
  }

  thread_pool( const thread_pool& ) = delete;
  thread_pool& operator=( const thread_pool& ) = delete;

  ~thread_pool()
  {
    {
      std::unique_lock<std::mutex> lock( mutex_ );
      stopping_ = true;
    }
    wake_workers_.notify_all();
    for ( auto& worker : workers_ )
    {
      worker.join();
    }
  }

  /// Enqueues a job (or runs it inline when the pool has no workers).
  /// Called from one of this pool's own workers, the job lands on that
  /// worker's queue; from any other thread it lands on the shared
  /// injection queue.
  ///
  /// Ordering invariant: `pending_`/`outstanding_` are incremented BEFORE
  /// the job becomes visible to any worker.  A worker can only claim a job
  /// after the push, so the claim-side decrements can never precede these
  /// increments — otherwise the unsigned counters would underflow,
  /// `wait_all()` could return while jobs are still queued or running, or
  /// the final decrement-to-zero could happen in `submit` (which never
  /// notifies `idle_`) and hang the waiters.
  void submit( std::function<void()> job )
  {
    if ( workers_.empty() )
    {
      run_guarded( job );
      return;
    }
    const auto& ctx = current_worker();
    if ( ctx.pool == this )
    {
      {
        std::unique_lock<std::mutex> lock( mutex_ );
        ++pending_;
        ++outstanding_;
      }
      std::unique_lock<std::mutex> queue_lock( queues_[ctx.index]->mutex );
      queues_[ctx.index]->jobs.push_back( std::move( job ) );
    }
    else
    {
      std::unique_lock<std::mutex> lock( mutex_ );
      ++pending_;
      ++outstanding_;
      injected_.push_back( std::move( job ) );
    }
    wake_workers_.notify_one();
  }

  /// Blocks until every submitted job has finished and returns every
  /// exception the batch threw (in completion order), clearing the
  /// collected set.
  [[nodiscard]] std::vector<std::exception_ptr> wait_all()
  {
    std::unique_lock<std::mutex> lock( mutex_ );
    idle_.wait( lock, [this] { return outstanding_ == 0u; } );
    std::vector<std::exception_ptr> errors;
    errors.swap( errors_ );
    return errors;
  }

  /// Blocks until every submitted job has finished, then rethrows the
  /// first job exception (if any); later exceptions from the batch are
  /// discarded.
  void wait()
  {
    const auto errors = wait_all();
    if ( !errors.empty() )
    {
      std::rethrow_exception( errors.front() );
    }
  }

  /// Requests cancellation of in-flight work.  Jobs observe this through
  /// deadlines built from `cancellation()`; the queues are not dropped.
  void cancel() noexcept { cancel_token_.request_cancel(); }

  [[nodiscard]] bool cancelled() const noexcept { return cancel_token_.cancelled(); }

  /// The pool's cancellation token, for composing job deadlines.
  [[nodiscard]] cancellation_token cancellation() const { return cancel_token_; }

  /// Number of worker threads (0 = inline execution).
  unsigned num_workers() const { return static_cast<unsigned>( workers_.size() ); }

  /// Number of jobs a worker has taken from another worker's queue since
  /// construction.  Zero on a multi-worker pool that ran a wide job batch
  /// means the parallelism never materialized (the dead-parallelism
  /// canary `scripts/run_bench.sh` gates on); inline pools always report 0.
  [[nodiscard]] std::uint64_t steals() const noexcept
  {
    return steals_.load( std::memory_order_relaxed );
  }

  /// Largest worker count `QSYN_THREADS` can request.  Values beyond any
  /// plausible machine are user error; without the clamp the unchecked
  /// `long` → `unsigned` cast below could wrap (e.g. 2^32 → 0 workers and
  /// a pool that executes everything inline, or 2^32+7 → a silent 7).
  static constexpr unsigned max_env_threads = 1024u;

  /// The default worker count: the `QSYN_THREADS` environment variable
  /// when set (clamped to [1, max_env_threads], so benches/CI can pin
  /// worker counts without new flags and absurd values cannot wrap the
  /// unsigned cast), otherwise the hardware concurrency, at least 1.
  static unsigned default_num_threads()
  {
    if ( const char* env = std::getenv( "QSYN_THREADS" ) )
    {
      char* end = nullptr;
      const long parsed = std::strtol( env, &end, 10 );
      if ( end != env && *end == '\0' )
      {
        if ( parsed < 1 )
        {
          return 1u;
        }
        if ( parsed > static_cast<long>( max_env_threads ) )
        {
          return max_env_threads;
        }
        return static_cast<unsigned>( parsed );
      }
    }
    const auto hw = std::thread::hardware_concurrency();
    return hw == 0u ? 1u : hw;
  }

private:
  struct worker_queue
  {
    std::mutex mutex;
    std::deque<std::function<void()>> jobs;
  };

  /// Identifies the pool (and worker slot) the calling thread belongs to,
  /// so `submit` can route jobs to the caller's own queue.
  struct worker_context
  {
    thread_pool* pool = nullptr;
    unsigned index = 0;
  };

  static worker_context& current_worker()
  {
    static thread_local worker_context ctx;
    return ctx;
  }

  void run_guarded( const std::function<void()>& job )
  {
    try
    {
      job();
    }
    catch ( ... )
    {
      std::unique_lock<std::mutex> lock( mutex_ );
      errors_.push_back( std::current_exception() );
    }
  }

  /// Pops the newest job of the worker's own queue (LIFO).
  bool pop_own( unsigned index, std::function<void()>& job )
  {
    std::unique_lock<std::mutex> queue_lock( queues_[index]->mutex );
    if ( queues_[index]->jobs.empty() )
    {
      return false;
    }
    job = std::move( queues_[index]->jobs.back() );
    queues_[index]->jobs.pop_back();
    return true;
  }

  /// Steals the oldest job of another worker's queue (FIFO), probing
  /// round-robin from the thief's right-hand neighbour.
  bool steal( unsigned thief, std::function<void()>& job )
  {
    const auto n = queues_.size();
    for ( std::size_t offset = 1; offset < n; ++offset )
    {
      auto& victim = *queues_[( thief + offset ) % n];
      std::unique_lock<std::mutex> queue_lock( victim.mutex );
      if ( victim.jobs.empty() )
      {
        continue;
      }
      job = std::move( victim.jobs.front() );
      victim.jobs.pop_front();
      steals_.fetch_add( 1, std::memory_order_relaxed );
      return true;
    }
    return false;
  }

  void worker_loop( unsigned index )
  {
    current_worker() = { this, index };
    for ( ;; )
    {
      std::function<void()> job;
      bool have_job = pop_own( index, job );
      if ( !have_job )
      {
        std::unique_lock<std::mutex> lock( mutex_ );
        wake_workers_.wait( lock, [this] { return stopping_ || pending_ > 0u; } );
        if ( pending_ == 0u )
        {
          return; // stopping_ and every queue drained
        }
        if ( !injected_.empty() )
        {
          job = std::move( injected_.front() );
          injected_.pop_front();
          have_job = true;
        }
        else
        {
          // The pending job sits on some worker's queue: try our own
          // again (a submit raced the wait), then steal.
          lock.unlock();
          have_job = pop_own( index, job ) || steal( index, job );
          if ( !have_job )
          {
            continue; // lost the race to another thief; re-wait
          }
        }
      }
      {
        std::unique_lock<std::mutex> lock( mutex_ );
        --pending_;
      }
      // Claimed a job another worker may still be waiting for? No: every
      // claim decrements pending_, and waiters re-check the predicate.
      run_guarded( job );
      {
        std::unique_lock<std::mutex> lock( mutex_ );
        if ( --outstanding_ == 0u )
        {
          idle_.notify_all();
        }
      }
    }
  }

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<worker_queue>> queues_;
  std::deque<std::function<void()>> injected_; ///< jobs from non-worker threads
  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable idle_;
  std::size_t pending_ = 0;     ///< submitted, not yet claimed by a worker
  std::size_t outstanding_ = 0; ///< submitted, not yet finished
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;
  std::atomic<std::uint64_t> steals_{ 0 };
  cancellation_token cancel_token_;
};

} // namespace qsyn
