/// \file thread_pool.hpp
/// \brief Minimal fixed-size thread pool for the parallel DSE engine.
///
/// The pool owns `num_threads` workers draining a FIFO job queue.  With
/// `num_threads <= 1` no worker threads are started and `submit` runs the
/// job inline, so the sequential and parallel code paths share one call
/// site and the sequential path stays deterministic and overhead-free.
/// The first exception thrown by any job is captured and rethrown from
/// `wait()` (subsequent jobs still run; their exceptions are dropped).

#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qsyn
{

class thread_pool
{
public:
  /// Starts `num_threads` workers; 0 and 1 both mean "run jobs inline".
  explicit thread_pool( unsigned num_threads )
  {
    if ( num_threads <= 1u )
    {
      return;
    }
    workers_.reserve( num_threads );
    for ( unsigned t = 0; t < num_threads; ++t )
    {
      workers_.emplace_back( [this] { worker_loop(); } );
    }
  }

  thread_pool( const thread_pool& ) = delete;
  thread_pool& operator=( const thread_pool& ) = delete;

  ~thread_pool()
  {
    {
      std::unique_lock<std::mutex> lock( mutex_ );
      stopping_ = true;
    }
    wake_workers_.notify_all();
    for ( auto& worker : workers_ )
    {
      worker.join();
    }
  }

  /// Enqueues a job (or runs it inline when the pool has no workers).
  void submit( std::function<void()> job )
  {
    if ( workers_.empty() )
    {
      run_guarded( job );
      return;
    }
    {
      std::unique_lock<std::mutex> lock( mutex_ );
      queue_.push_back( std::move( job ) );
      ++outstanding_;
    }
    wake_workers_.notify_one();
  }

  /// Blocks until every submitted job has finished, then rethrows the
  /// first job exception (if any).
  void wait()
  {
    {
      std::unique_lock<std::mutex> lock( mutex_ );
      idle_.wait( lock, [this] { return outstanding_ == 0u; } );
    }
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock( mutex_ );
      error = first_error_;
      first_error_ = nullptr;
    }
    if ( error )
    {
      std::rethrow_exception( error );
    }
  }

  /// Number of worker threads (0 = inline execution).
  unsigned num_workers() const { return static_cast<unsigned>( workers_.size() ); }

  /// The default worker count: the hardware concurrency, at least 1.
  static unsigned default_num_threads()
  {
    const auto hw = std::thread::hardware_concurrency();
    return hw == 0u ? 1u : hw;
  }

private:
  void run_guarded( const std::function<void()>& job )
  {
    try
    {
      job();
    }
    catch ( ... )
    {
      std::unique_lock<std::mutex> lock( mutex_ );
      if ( !first_error_ )
      {
        first_error_ = std::current_exception();
      }
    }
  }

  void worker_loop()
  {
    for ( ;; )
    {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock( mutex_ );
        wake_workers_.wait( lock, [this] { return stopping_ || !queue_.empty(); } );
        if ( queue_.empty() )
        {
          return; // stopping_ and drained
        }
        job = std::move( queue_.front() );
        queue_.pop_front();
      }
      run_guarded( job );
      {
        std::unique_lock<std::mutex> lock( mutex_ );
        if ( --outstanding_ == 0u )
        {
          idle_.notify_all();
        }
      }
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable idle_;
  std::size_t outstanding_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

} // namespace qsyn
