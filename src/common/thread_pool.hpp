/// \file thread_pool.hpp
/// \brief Minimal fixed-size thread pool for the parallel DSE engine.
///
/// The pool owns `num_threads` workers draining a FIFO job queue.  With
/// `num_threads <= 1` no worker threads are started and `submit` runs the
/// job inline, so the sequential and parallel code paths share one call
/// site and the sequential path stays deterministic and overhead-free.
/// Every exception thrown by a job is captured; `wait_all()` returns the
/// full batch, `wait()` rethrows the first and drops the rest (legacy
/// call sites that treat any job failure as fatal).
///
/// The pool also carries a `cancellation_token`.  `cancel()` flips it;
/// jobs that poll a `deadline` built from `pool.cancellation()` stop
/// promptly.  The pool itself never drops queued jobs — accounting for
/// cancelled work stays with the caller, which keeps per-design status
/// records accurate.

#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "budget.hpp"

namespace qsyn
{

class thread_pool
{
public:
  /// Starts `num_threads` workers; 0 and 1 both mean "run jobs inline".
  explicit thread_pool( unsigned num_threads )
  {
    if ( num_threads <= 1u )
    {
      return;
    }
    workers_.reserve( num_threads );
    for ( unsigned t = 0; t < num_threads; ++t )
    {
      workers_.emplace_back( [this] { worker_loop(); } );
    }
  }

  thread_pool( const thread_pool& ) = delete;
  thread_pool& operator=( const thread_pool& ) = delete;

  ~thread_pool()
  {
    {
      std::unique_lock<std::mutex> lock( mutex_ );
      stopping_ = true;
    }
    wake_workers_.notify_all();
    for ( auto& worker : workers_ )
    {
      worker.join();
    }
  }

  /// Enqueues a job (or runs it inline when the pool has no workers).
  void submit( std::function<void()> job )
  {
    if ( workers_.empty() )
    {
      run_guarded( job );
      return;
    }
    {
      std::unique_lock<std::mutex> lock( mutex_ );
      queue_.push_back( std::move( job ) );
      ++outstanding_;
    }
    wake_workers_.notify_one();
  }

  /// Blocks until every submitted job has finished and returns every
  /// exception the batch threw (in completion order), clearing the
  /// collected set.
  [[nodiscard]] std::vector<std::exception_ptr> wait_all()
  {
    std::unique_lock<std::mutex> lock( mutex_ );
    idle_.wait( lock, [this] { return outstanding_ == 0u; } );
    std::vector<std::exception_ptr> errors;
    errors.swap( errors_ );
    return errors;
  }

  /// Blocks until every submitted job has finished, then rethrows the
  /// first job exception (if any); later exceptions from the batch are
  /// discarded.
  void wait()
  {
    const auto errors = wait_all();
    if ( !errors.empty() )
    {
      std::rethrow_exception( errors.front() );
    }
  }

  /// Requests cancellation of in-flight work.  Jobs observe this through
  /// deadlines built from `cancellation()`; the queue is not dropped.
  void cancel() noexcept { cancel_token_.request_cancel(); }

  [[nodiscard]] bool cancelled() const noexcept { return cancel_token_.cancelled(); }

  /// The pool's cancellation token, for composing job deadlines.
  [[nodiscard]] cancellation_token cancellation() const { return cancel_token_; }

  /// Number of worker threads (0 = inline execution).
  unsigned num_workers() const { return static_cast<unsigned>( workers_.size() ); }

  /// The default worker count: the hardware concurrency, at least 1.
  static unsigned default_num_threads()
  {
    const auto hw = std::thread::hardware_concurrency();
    return hw == 0u ? 1u : hw;
  }

private:
  void run_guarded( const std::function<void()>& job )
  {
    try
    {
      job();
    }
    catch ( ... )
    {
      std::unique_lock<std::mutex> lock( mutex_ );
      errors_.push_back( std::current_exception() );
    }
  }

  void worker_loop()
  {
    for ( ;; )
    {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock( mutex_ );
        wake_workers_.wait( lock, [this] { return stopping_ || !queue_.empty(); } );
        if ( queue_.empty() )
        {
          return; // stopping_ and drained
        }
        job = std::move( queue_.front() );
        queue_.pop_front();
      }
      run_guarded( job );
      {
        std::unique_lock<std::mutex> lock( mutex_ );
        if ( --outstanding_ == 0u )
        {
          idle_.notify_all();
        }
      }
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable idle_;
  std::size_t outstanding_ = 0;
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;
  cancellation_token cancel_token_;
};

} // namespace qsyn
