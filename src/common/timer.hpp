/// \file timer.hpp
/// \brief Wall-clock stopwatch used to report flow runtimes, mirroring the
/// per-row runtime column of the paper's tables.

#pragma once

#include <chrono>

namespace qsyn
{

/// Simple monotonic stopwatch.  Construction starts the clock.
class stopwatch
{
public:
  stopwatch() : start_{ clock::now() } {}

  /// Seconds elapsed since construction or the last restart().
  double elapsed_seconds() const
  {
    return std::chrono::duration<double>( clock::now() - start_ ).count();
  }

  /// Restart the stopwatch.
  void restart()
  {
    start_ = clock::now();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

} // namespace qsyn
