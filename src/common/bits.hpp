/// \file bits.hpp
/// \brief Low-level bit manipulation helpers shared across the library.
///
/// All word-level helpers operate on 64-bit blocks, the unit used by
/// qsyn::truth_table and the pattern simulators.

#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>

namespace qsyn
{

/// Number of 64-bit blocks needed to store 2^num_vars bits.
inline constexpr std::size_t num_blocks_for( unsigned num_vars )
{
  return num_vars <= 6u ? 1u : ( std::size_t{ 1 } << ( num_vars - 6u ) );
}

/// Mask selecting the valid bits of the (single) block of a function with
/// fewer than 7 variables.
inline constexpr std::uint64_t block_mask( unsigned num_vars )
{
  return num_vars >= 6u ? ~std::uint64_t{ 0 }
                        : ( ( std::uint64_t{ 1 } << ( std::size_t{ 1 } << num_vars ) ) - 1u );
}

/// Precomputed truth tables of the first six projection variables within one
/// 64-bit block (x0 toggles every bit, x5 every 32 bits).
inline constexpr std::uint64_t projections[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull };

/// Population count over a 64-bit word.
inline int popcount64( std::uint64_t w )
{
  return std::popcount( w );
}

/// Index of the most significant set bit; undefined for w == 0.
inline int msb_index( std::uint64_t w )
{
  return 63 - std::countl_zero( w );
}

/// Index of the least significant set bit; undefined for w == 0.
inline int lsb_index( std::uint64_t w )
{
  return std::countr_zero( w );
}

/// Ceil(log2(v)) for v >= 1.
inline unsigned ceil_log2( std::uint64_t v )
{
  if ( v <= 1u )
  {
    return 0u;
  }
  return static_cast<unsigned>( 64 - std::countl_zero( v - 1u ) );
}

/// True if v is a power of two (v > 0).
inline bool is_power_of_two( std::uint64_t v )
{
  return v != 0u && ( v & ( v - 1u ) ) == 0u;
}

/// Combine two hash values (boost::hash_combine flavor).
inline std::size_t hash_combine( std::size_t seed, std::size_t v )
{
  return seed ^ ( v + 0x9e3779b97f4a7c15ull + ( seed << 6 ) + ( seed >> 2 ) );
}

} // namespace qsyn
