#include "lexer.hpp"

#include <cctype>
#include <stdexcept>

namespace qsyn::verilog
{

namespace
{

[[noreturn]] void fail( unsigned line, const std::string& message )
{
  throw std::runtime_error( "verilog lexer, line " + std::to_string( line ) + ": " + message );
}

/// Converts a parsed numeric payload (base + digit string) into LSB-first
/// bits.  `width` == 0 means unsized.
std::vector<bool> digits_to_bits( unsigned line, char base, const std::string& digits, unsigned width )
{
  std::vector<bool> bits;
  if ( base == 'b' )
  {
    for ( auto it = digits.rbegin(); it != digits.rend(); ++it )
    {
      if ( *it != '0' && *it != '1' )
      {
        fail( line, "invalid binary digit" );
      }
      bits.push_back( *it == '1' );
    }
  }
  else if ( base == 'h' )
  {
    for ( auto it = digits.rbegin(); it != digits.rend(); ++it )
    {
      const char c = static_cast<char>( std::tolower( *it ) );
      unsigned v;
      if ( c >= '0' && c <= '9' )
      {
        v = static_cast<unsigned>( c - '0' );
      }
      else if ( c >= 'a' && c <= 'f' )
      {
        v = static_cast<unsigned>( c - 'a' ) + 10u;
      }
      else
      {
        fail( line, "invalid hex digit" );
      }
      for ( unsigned b = 0; b < 4; ++b )
      {
        bits.push_back( ( v >> b ) & 1u );
      }
    }
  }
  else // decimal
  {
    std::uint64_t value = 0;
    for ( const char c : digits )
    {
      if ( !std::isdigit( static_cast<unsigned char>( c ) ) )
      {
        fail( line, "invalid decimal digit" );
      }
      const auto next = value * 10u + static_cast<std::uint64_t>( c - '0' );
      if ( next < value )
      {
        fail( line, "decimal literal exceeds 64 bits; use binary or hex" );
      }
      value = next;
    }
    for ( unsigned b = 0; b < 64; ++b )
    {
      bits.push_back( ( value >> b ) & 1u );
    }
  }
  // Normalize to the declared width (zero-extend or truncate), or strip
  // leading zeros for unsized literals (minimum one bit).
  if ( width > 0 )
  {
    bits.resize( width, false );
  }
  else
  {
    while ( bits.size() > 1u && !bits.back() )
    {
      bits.pop_back();
    }
  }
  return bits;
}

} // namespace

std::vector<token> tokenize( const std::string& source )
{
  std::vector<token> tokens;
  unsigned line = 1;
  std::size_t i = 0;
  const auto n = source.size();

  const auto peek = [&]( std::size_t offset = 0 ) -> char {
    return i + offset < n ? source[i + offset] : '\0';
  };

  while ( i < n )
  {
    const char c = source[i];
    if ( c == '\n' )
    {
      ++line;
      ++i;
      continue;
    }
    if ( std::isspace( static_cast<unsigned char>( c ) ) )
    {
      ++i;
      continue;
    }
    if ( c == '/' && peek( 1 ) == '/' )
    {
      while ( i < n && source[i] != '\n' )
      {
        ++i;
      }
      continue;
    }
    if ( c == '/' && peek( 1 ) == '*' )
    {
      i += 2;
      while ( i + 1u < n && !( source[i] == '*' && source[i + 1u] == '/' ) )
      {
        if ( source[i] == '\n' )
        {
          ++line;
        }
        ++i;
      }
      if ( i + 1u >= n )
      {
        fail( line, "unterminated block comment" );
      }
      i += 2;
      continue;
    }
    if ( std::isalpha( static_cast<unsigned char>( c ) ) || c == '_' )
    {
      std::size_t start = i;
      while ( i < n && ( std::isalnum( static_cast<unsigned char>( source[i] ) ) || source[i] == '_' ) )
      {
        ++i;
      }
      const std::string word = source.substr( start, i - start );
      token t;
      t.line = line;
      t.text = word;
      if ( word == "module" )
      {
        t.kind = token_kind::keyword_module;
      }
      else if ( word == "endmodule" )
      {
        t.kind = token_kind::keyword_endmodule;
      }
      else if ( word == "input" )
      {
        t.kind = token_kind::keyword_input;
      }
      else if ( word == "output" )
      {
        t.kind = token_kind::keyword_output;
      }
      else if ( word == "wire" )
      {
        t.kind = token_kind::keyword_wire;
      }
      else if ( word == "assign" )
      {
        t.kind = token_kind::keyword_assign;
      }
      else
      {
        t.kind = token_kind::identifier;
      }
      tokens.push_back( std::move( t ) );
      continue;
    }
    if ( std::isdigit( static_cast<unsigned char>( c ) ) || c == '\'' )
    {
      // Number: [size]'[base]digits or plain decimal.
      std::string size_digits;
      while ( i < n && std::isdigit( static_cast<unsigned char>( source[i] ) ) )
      {
        size_digits += source[i++];
      }
      token t;
      t.line = line;
      t.kind = token_kind::number;
      if ( i < n && source[i] == '\'' )
      {
        ++i;
        const char base_char = static_cast<char>( std::tolower( peek() ) );
        if ( base_char != 'b' && base_char != 'h' && base_char != 'd' )
        {
          fail( line, "unsupported number base (use b, h, or d)" );
        }
        ++i;
        std::string digits;
        while ( i < n && ( std::isalnum( static_cast<unsigned char>( source[i] ) ) || source[i] == '_' ) )
        {
          if ( source[i] != '_' )
          {
            digits += source[i];
          }
          ++i;
        }
        if ( digits.empty() )
        {
          fail( line, "number literal has no digits" );
        }
        unsigned width = 0;
        if ( !size_digits.empty() )
        {
          width = static_cast<unsigned>( std::stoul( size_digits ) );
          if ( width == 0 )
          {
            fail( line, "zero-width literal" );
          }
          t.sized = true;
        }
        t.bits = digits_to_bits( line, base_char, digits, width );
      }
      else
      {
        if ( size_digits.empty() )
        {
          fail( line, "malformed number" );
        }
        t.bits = digits_to_bits( line, 'd', size_digits, 0 );
        t.sized = false;
      }
      tokens.push_back( std::move( t ) );
      continue;
    }
    // Punctuation and operators.
    token t;
    t.line = line;
    switch ( c )
    {
    case '(': t.kind = token_kind::lparen; ++i; break;
    case ')': t.kind = token_kind::rparen; ++i; break;
    case '[': t.kind = token_kind::lbracket; ++i; break;
    case ']': t.kind = token_kind::rbracket; ++i; break;
    case '{': t.kind = token_kind::lbrace; ++i; break;
    case '}': t.kind = token_kind::rbrace; ++i; break;
    case ',': t.kind = token_kind::comma; ++i; break;
    case ';': t.kind = token_kind::semicolon; ++i; break;
    case ':': t.kind = token_kind::colon; ++i; break;
    case '?': t.kind = token_kind::question; ++i; break;
    case '+': t.kind = token_kind::plus; ++i; break;
    case '-': t.kind = token_kind::minus; ++i; break;
    case '*': t.kind = token_kind::star; ++i; break;
    case '/': t.kind = token_kind::slash; ++i; break;
    case '%': t.kind = token_kind::percent; ++i; break;
    case '~': t.kind = token_kind::tilde; ++i; break;
    case '^': t.kind = token_kind::caret; ++i; break;
    case '<':
      if ( peek( 1 ) == '<' )
      {
        t.kind = token_kind::shift_left;
        i += 2;
      }
      else if ( peek( 1 ) == '=' )
      {
        t.kind = token_kind::less_equal;
        i += 2;
      }
      else
      {
        t.kind = token_kind::less;
        ++i;
      }
      break;
    case '>':
      if ( peek( 1 ) == '>' )
      {
        t.kind = token_kind::shift_right;
        i += 2;
      }
      else if ( peek( 1 ) == '=' )
      {
        t.kind = token_kind::greater_equal;
        i += 2;
      }
      else
      {
        t.kind = token_kind::greater;
        ++i;
      }
      break;
    case '=':
      if ( peek( 1 ) == '=' )
      {
        t.kind = token_kind::equal_equal;
        i += 2;
      }
      else
      {
        t.kind = token_kind::assign_op;
        ++i;
      }
      break;
    case '!':
      if ( peek( 1 ) == '=' )
      {
        t.kind = token_kind::not_equal;
        i += 2;
      }
      else
      {
        t.kind = token_kind::bang;
        ++i;
      }
      break;
    case '&':
      if ( peek( 1 ) == '&' )
      {
        t.kind = token_kind::amp_amp;
        i += 2;
      }
      else
      {
        t.kind = token_kind::amp;
        ++i;
      }
      break;
    case '|':
      if ( peek( 1 ) == '|' )
      {
        t.kind = token_kind::pipe_pipe;
        i += 2;
      }
      else
      {
        t.kind = token_kind::pipe;
        ++i;
      }
      break;
    default:
      fail( line, std::string( "unexpected character '" ) + c + "'" );
    }
    tokens.push_back( t );
  }
  token eof;
  eof.kind = token_kind::end_of_file;
  eof.line = line;
  tokens.push_back( eof );
  return tokens;
}

} // namespace qsyn::verilog
