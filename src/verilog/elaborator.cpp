#include "elaborator.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

#include "parser.hpp"

namespace qsyn::verilog
{

/// --- word-level helpers ----------------------------------------------------

std::vector<aig_lit> ripple_add( aig_network& aig, const std::vector<aig_lit>& a,
                                 const std::vector<aig_lit>& b, aig_lit carry_in,
                                 aig_lit* carry_out )
{
  assert( a.size() == b.size() );
  std::vector<aig_lit> sum( a.size() );
  auto carry = carry_in;
  for ( std::size_t i = 0; i < a.size(); ++i )
  {
    const auto axb = aig.create_xor( a[i], b[i] );
    sum[i] = aig.create_xor( axb, carry );
    carry = aig.create_maj( a[i], b[i], carry );
  }
  if ( carry_out )
  {
    *carry_out = carry;
  }
  return sum;
}

std::vector<aig_lit> ripple_sub( aig_network& aig, const std::vector<aig_lit>& a,
                                 const std::vector<aig_lit>& b, aig_lit* no_borrow )
{
  std::vector<aig_lit> b_inv( b.size() );
  for ( std::size_t i = 0; i < b.size(); ++i )
  {
    b_inv[i] = lit_not( b[i] );
  }
  return ripple_add( aig, a, b_inv, aig_network::const1, no_borrow );
}

std::vector<aig_lit> array_multiply( aig_network& aig, const std::vector<aig_lit>& a,
                                     const std::vector<aig_lit>& b )
{
  assert( a.size() == b.size() );
  const auto width = a.size();
  std::vector<aig_lit> acc( width, aig_network::const0 );
  for ( std::size_t i = 0; i < width; ++i )
  {
    // Partial product (a << i) & b[i], truncated to `width`.
    std::vector<aig_lit> pp( width, aig_network::const0 );
    bool nonzero = false;
    for ( std::size_t j = 0; j + i < width; ++j )
    {
      pp[j + i] = aig.create_and( a[j], b[i] );
      nonzero = true;
    }
    if ( nonzero )
    {
      acc = ripple_add( aig, acc, pp, aig_network::const0 );
    }
  }
  return acc;
}

std::vector<aig_lit> restoring_divide( aig_network& aig, const std::vector<aig_lit>& a,
                                       const std::vector<aig_lit>& b,
                                       std::vector<aig_lit>* remainder_out )
{
  assert( a.size() == b.size() );
  const auto width = a.size();
  // Partial remainder with one guard bit.
  std::vector<aig_lit> r( width + 1u, aig_network::const0 );
  std::vector<aig_lit> b_ext( b );
  b_ext.push_back( aig_network::const0 );
  std::vector<aig_lit> q( width, aig_network::const0 );
  for ( std::size_t step = 0; step < width; ++step )
  {
    const auto bit = width - 1u - step;
    // r = (r << 1) | a[bit]
    for ( std::size_t j = width; j > 0; --j )
    {
      r[j] = r[j - 1u];
    }
    r[0] = a[bit];
    // Trial subtraction: if r >= b, keep the difference and set the
    // quotient bit.
    aig_lit no_borrow = aig_network::const0;
    const auto diff = ripple_sub( aig, r, b_ext, &no_borrow );
    q[bit] = no_borrow;
    for ( std::size_t j = 0; j <= width; ++j )
    {
      r[j] = aig.create_mux( no_borrow, diff[j], r[j] );
    }
  }
  if ( remainder_out )
  {
    remainder_out->assign( r.begin(), r.begin() + static_cast<std::ptrdiff_t>( width ) );
  }
  return q;
}

std::vector<aig_lit> barrel_shift( aig_network& aig, const std::vector<aig_lit>& a,
                                   const std::vector<aig_lit>& s, bool left )
{
  const auto width = a.size();
  auto result = a;
  for ( std::size_t i = 0; i < s.size(); ++i )
  {
    const std::uint64_t amount = std::uint64_t{ 1 } << std::min<std::size_t>( i, 63u );
    std::vector<aig_lit> shifted( width, aig_network::const0 );
    if ( amount < width )
    {
      if ( left )
      {
        for ( std::size_t j = 0; j + amount < width; ++j )
        {
          shifted[j + amount] = result[j];
        }
      }
      else
      {
        for ( std::size_t j = amount; j < width; ++j )
        {
          shifted[j - amount] = result[j];
        }
      }
    }
    // else: shifting by >= width zeroes the word; `shifted` already is 0.
    for ( std::size_t j = 0; j < width; ++j )
    {
      result[j] = aig.create_mux( s[i], shifted[j], result[j] );
    }
  }
  return result;
}

/// --- elaborator -------------------------------------------------------------

namespace
{

struct signal_info
{
  net_kind kind = net_kind::wire;
  unsigned width = 0;
  std::vector<aig_lit> lits;  ///< valid where driven
  std::vector<bool> driven;
};

class elaborator_impl
{
public:
  explicit elaborator_impl( const module_def& mod ) : mod_( mod ) {}

  elaborated_module run()
  {
    collect_signals();
    create_inputs();
    schedule_assigns();
    collect_outputs();
    return { std::move( aig_ ), std::move( input_ports_ ), std::move( output_ports_ ) };
  }

private:
  [[noreturn]] void fail( const std::string& message ) const
  {
    // The AST carries no source positions, so the module name is the best
    // anchor an elaboration diagnostic can give (messages themselves name
    // the offending signal or port).
    throw std::runtime_error( "verilog elaborator: module '" + mod_.name + "': " + message );
  }

  void collect_signals()
  {
    for ( const auto& decl : mod_.declarations )
    {
      for ( const auto& name : decl.names )
      {
        if ( signals_.count( name ) )
        {
          // Non-ANSI style repeats the name (port list + declaration);
          // merge by overriding the kind if it was plain wire.
          auto& sig = signals_[name];
          if ( sig.kind == net_kind::wire )
          {
            sig.kind = decl.kind;
          }
          if ( sig.width != decl.width && decl.width != 1u )
          {
            sig.width = decl.width;
            sig.lits.assign( decl.width, aig_network::const0 );
            sig.driven.assign( decl.width, false );
          }
          continue;
        }
        signal_info sig;
        sig.kind = decl.kind;
        sig.width = decl.width;
        sig.lits.assign( decl.width, aig_network::const0 );
        sig.driven.assign( decl.width, false );
        signals_.emplace( name, std::move( sig ) );
      }
    }
  }

  void create_inputs()
  {
    for ( const auto& port : mod_.ports )
    {
      const auto it = signals_.find( port );
      if ( it == signals_.end() )
      {
        fail( "port '" + port + "' has no declaration" );
      }
      if ( it->second.kind != net_kind::input )
      {
        continue;
      }
      auto& sig = it->second;
      for ( unsigned b = 0; b < sig.width; ++b )
      {
        sig.lits[b] = aig_.add_pi();
        sig.driven[b] = true;
      }
      input_ports_.emplace_back( port, sig.width );
    }
  }

  /// Processes assigns (and declaration initializers) as a worklist so that
  /// textual order does not matter; detects combinational cycles.
  void schedule_assigns()
  {
    struct pending
    {
      lvalue target;
      const expression* rhs;
    };
    std::vector<pending> work;
    for ( const auto& decl : mod_.declarations )
    {
      if ( decl.initializer )
      {
        lvalue lv;
        lv.name = decl.names.front();
        work.push_back( { lv, decl.initializer.get() } );
      }
    }
    for ( const auto& stmt : mod_.assigns )
    {
      work.push_back( { stmt.target, stmt.rhs.get() } );
    }
    bool progress = true;
    while ( !work.empty() && progress )
    {
      progress = false;
      std::vector<pending> remaining;
      for ( auto& item : work )
      {
        if ( ready( *item.rhs ) )
        {
          apply_assign( item.target, *item.rhs );
          progress = true;
        }
        else
        {
          remaining.push_back( item );
        }
      }
      work = std::move( remaining );
    }
    if ( !work.empty() )
    {
      fail( "combinational cycle or use of undriven signal feeding '" +
            work.front().target.name + "'" );
    }
  }

  void collect_outputs()
  {
    for ( const auto& port : mod_.ports )
    {
      const auto& sig = signals_.at( port );
      if ( sig.kind != net_kind::output )
      {
        continue;
      }
      for ( unsigned b = 0; b < sig.width; ++b )
      {
        if ( !sig.driven[b] )
        {
          fail( "output '" + port + "' bit " + std::to_string( b ) + " is undriven" );
        }
        aig_.add_po( sig.lits[b] );
      }
      output_ports_.emplace_back( port, sig.width );
    }
  }

  const signal_info& signal( const std::string& name ) const
  {
    const auto it = signals_.find( name );
    if ( it == signals_.end() )
    {
      fail( "use of undeclared signal '" + name + "'" );
    }
    return it->second;
  }

  /// True if all signal bits referenced by `e` are driven.
  bool ready( const expression& e ) const
  {
    switch ( e.kind )
    {
    case expression::node_kind::number:
      return true;
    case expression::node_kind::identifier:
    {
      const auto& sig = signal( e.name );
      return std::all_of( sig.driven.begin(), sig.driven.end(), []( bool d ) { return d; } );
    }
    case expression::node_kind::bit_select:
    {
      const auto& sig = signal( e.name );
      const auto idx = constant_value( *e.index );
      return idx < sig.width && sig.driven[idx];
    }
    case expression::node_kind::part_select:
    {
      const auto& sig = signal( e.name );
      const auto msb = constant_value( *e.index_msb );
      const auto lsb = constant_value( *e.index_lsb );
      if ( msb < lsb || msb >= sig.width )
      {
        fail( "part select out of range on '" + e.name + "'" );
      }
      for ( auto b = lsb; b <= msb; ++b )
      {
        if ( !sig.driven[b] )
        {
          return false;
        }
      }
      return true;
    }
    case expression::node_kind::replicate:
      return ready( *e.operands[0] );
    default:
      for ( const auto& op : e.operands )
      {
        if ( !ready( *op ) )
        {
          return false;
        }
      }
      return true;
    }
  }

  /// Constant expression evaluation (for indices, repeat counts, shift
  /// amounts where constant).
  unsigned constant_value( const expression& e ) const
  {
    std::uint64_t value = 0;
    if ( !try_constant( e, value ) )
    {
      fail( "expression must be constant" );
    }
    return static_cast<unsigned>( value );
  }

  bool try_constant( const expression& e, std::uint64_t& value ) const
  {
    switch ( e.kind )
    {
    case expression::node_kind::number:
    {
      value = 0;
      for ( std::size_t b = 0; b < e.bits.size() && b < 64u; ++b )
      {
        if ( e.bits[b] )
        {
          value |= std::uint64_t{ 1 } << b;
        }
      }
      return true;
    }
    case expression::node_kind::binary:
    {
      std::uint64_t a = 0;
      std::uint64_t b = 0;
      if ( !try_constant( *e.operands[0], a ) || !try_constant( *e.operands[1], b ) )
      {
        return false;
      }
      switch ( e.bin_op )
      {
      case binary_op::add: value = a + b; return true;
      case binary_op::sub: value = a - b; return true;
      case binary_op::mul: value = a * b; return true;
      default: return false;
      }
    }
    default:
      return false;
    }
  }

  /// Self-determined width of an expression.
  unsigned width_of( const expression& e ) const
  {
    switch ( e.kind )
    {
    case expression::node_kind::number:
      return static_cast<unsigned>( e.bits.size() );
    case expression::node_kind::identifier:
      return signal( e.name ).width;
    case expression::node_kind::bit_select:
      return 1u;
    case expression::node_kind::part_select:
      return constant_value( *e.index_msb ) - constant_value( *e.index_lsb ) + 1u;
    case expression::node_kind::unary:
      switch ( e.un_op )
      {
      case unary_op::bit_not:
      case unary_op::negate:
        return width_of( *e.operands[0] );
      default:
        return 1u; // logic not, reductions
      }
    case expression::node_kind::binary:
      switch ( e.bin_op )
      {
      case binary_op::lt:
      case binary_op::le:
      case binary_op::gt:
      case binary_op::ge:
      case binary_op::eq:
      case binary_op::ne:
      case binary_op::logic_and:
      case binary_op::logic_or:
        return 1u;
      case binary_op::shl:
      case binary_op::shr:
        return width_of( *e.operands[0] );
      default:
        return std::max( width_of( *e.operands[0] ), width_of( *e.operands[1] ) );
      }
    case expression::node_kind::ternary:
      return std::max( width_of( *e.operands[1] ), width_of( *e.operands[2] ) );
    case expression::node_kind::concat:
    {
      unsigned total = 0;
      for ( const auto& op : e.operands )
      {
        total += width_of( *op );
      }
      return total;
    }
    case expression::node_kind::replicate:
      return constant_value( *e.repeat_count ) * width_of( *e.operands[0] );
    }
    fail( "unreachable expression kind" );
  }

  /// Zero-extends or truncates a literal vector to `width`.
  static std::vector<aig_lit> resize_bits( std::vector<aig_lit> bits, unsigned width )
  {
    bits.resize( width, aig_network::const0 );
    return bits;
  }

  aig_lit reduce_or_bits( const std::vector<aig_lit>& bits )
  {
    return aig_.create_nary_or( bits );
  }

  /// Elaborates `e` in a context of `width` bits.
  std::vector<aig_lit> elab( const expression& e, unsigned width )
  {
    switch ( e.kind )
    {
    case expression::node_kind::number:
    {
      std::vector<aig_lit> bits( width, aig_network::const0 );
      for ( std::size_t b = 0; b < e.bits.size() && b < width; ++b )
      {
        bits[b] = aig_network::get_constant( e.bits[b] );
      }
      return bits;
    }
    case expression::node_kind::identifier:
      return resize_bits( signal( e.name ).lits, width );
    case expression::node_kind::bit_select:
    {
      const auto& sig = signal( e.name );
      const auto idx = constant_value( *e.index );
      if ( idx >= sig.width )
      {
        fail( "bit select out of range on '" + e.name + "'" );
      }
      return resize_bits( { sig.lits[idx] }, width );
    }
    case expression::node_kind::part_select:
    {
      const auto& sig = signal( e.name );
      const auto msb = constant_value( *e.index_msb );
      const auto lsb = constant_value( *e.index_lsb );
      if ( msb < lsb || msb >= sig.width )
      {
        fail( "part select out of range on '" + e.name + "'" );
      }
      std::vector<aig_lit> bits( sig.lits.begin() + lsb, sig.lits.begin() + msb + 1u );
      return resize_bits( std::move( bits ), width );
    }
    case expression::node_kind::unary:
      return elab_unary( e, width );
    case expression::node_kind::binary:
      return elab_binary( e, width );
    case expression::node_kind::ternary:
    {
      // The condition is self-determined; nonzero means true.
      const auto cond_bits = elab( *e.operands[0], width_of( *e.operands[0] ) );
      const auto cond = reduce_or_bits( cond_bits );
      const auto t = elab( *e.operands[1], width );
      const auto f = elab( *e.operands[2], width );
      std::vector<aig_lit> bits( width );
      for ( unsigned b = 0; b < width; ++b )
      {
        bits[b] = aig_.create_mux( cond, t[b], f[b] );
      }
      return bits;
    }
    case expression::node_kind::concat:
    {
      // Operands are self-determined; the first operand is the MSB part.
      std::vector<aig_lit> bits;
      for ( auto it = e.operands.rbegin(); it != e.operands.rend(); ++it )
      {
        const auto w = width_of( **it );
        const auto part = elab( **it, w );
        bits.insert( bits.end(), part.begin(), part.end() );
      }
      return resize_bits( std::move( bits ), width );
    }
    case expression::node_kind::replicate:
    {
      const auto count = constant_value( *e.repeat_count );
      const auto w = width_of( *e.operands[0] );
      const auto part = elab( *e.operands[0], w );
      std::vector<aig_lit> bits;
      for ( unsigned r = 0; r < count; ++r )
      {
        bits.insert( bits.end(), part.begin(), part.end() );
      }
      return resize_bits( std::move( bits ), width );
    }
    }
    fail( "unreachable expression kind" );
  }

  std::vector<aig_lit> elab_unary( const expression& e, unsigned width )
  {
    const auto& op = *e.operands[0];
    switch ( e.un_op )
    {
    case unary_op::bit_not:
    {
      auto bits = elab( op, width );
      for ( auto& b : bits )
      {
        b = lit_not( b );
      }
      return bits;
    }
    case unary_op::negate:
    {
      auto bits = elab( op, width );
      for ( auto& b : bits )
      {
        b = lit_not( b );
      }
      const std::vector<aig_lit> zero( width, aig_network::const0 );
      return ripple_add( aig_, bits, zero, aig_network::const1 );
    }
    case unary_op::logic_not:
    {
      const auto bits = elab( op, width_of( op ) );
      return resize_bits( { lit_not( reduce_or_bits( bits ) ) }, width );
    }
    case unary_op::reduce_and:
    {
      const auto bits = elab( op, width_of( op ) );
      return resize_bits( { aig_.create_nary_and( bits ) }, width );
    }
    case unary_op::reduce_or:
    {
      const auto bits = elab( op, width_of( op ) );
      return resize_bits( { reduce_or_bits( bits ) }, width );
    }
    case unary_op::reduce_xor:
    {
      const auto bits = elab( op, width_of( op ) );
      return resize_bits( { aig_.create_nary_xor( bits ) }, width );
    }
    }
    fail( "unreachable unary op" );
  }

  std::vector<aig_lit> elab_binary( const expression& e, unsigned width )
  {
    const auto& lhs = *e.operands[0];
    const auto& rhs = *e.operands[1];
    switch ( e.bin_op )
    {
    case binary_op::add:
      return ripple_add( aig_, elab( lhs, width ), elab( rhs, width ), aig_network::const0 );
    case binary_op::sub:
      return ripple_sub( aig_, elab( lhs, width ), elab( rhs, width ) );
    case binary_op::mul:
      return array_multiply( aig_, elab( lhs, width ), elab( rhs, width ) );
    case binary_op::div:
      return restoring_divide( aig_, elab( lhs, width ), elab( rhs, width ) );
    case binary_op::mod:
    {
      std::vector<aig_lit> remainder;
      restoring_divide( aig_, elab( lhs, width ), elab( rhs, width ), &remainder );
      return remainder;
    }
    case binary_op::bit_and:
    case binary_op::bit_or:
    case binary_op::bit_xor:
    {
      const auto a = elab( lhs, width );
      const auto b = elab( rhs, width );
      std::vector<aig_lit> bits( width );
      for ( unsigned i = 0; i < width; ++i )
      {
        bits[i] = e.bin_op == binary_op::bit_and ? aig_.create_and( a[i], b[i] )
                : e.bin_op == binary_op::bit_or  ? aig_.create_or( a[i], b[i] )
                                                 : aig_.create_xor( a[i], b[i] );
      }
      return bits;
    }
    case binary_op::shl:
    case binary_op::shr:
    {
      const auto a = elab( lhs, width );
      std::uint64_t amount = 0;
      if ( try_constant( rhs, amount ) )
      {
        std::vector<aig_lit> bits( width, aig_network::const0 );
        const bool left = e.bin_op == binary_op::shl;
        for ( unsigned j = 0; j < width; ++j )
        {
          const std::int64_t src = left ? static_cast<std::int64_t>( j ) - static_cast<std::int64_t>( amount )
                                        : static_cast<std::int64_t>( j ) + static_cast<std::int64_t>( amount );
          if ( src >= 0 && src < static_cast<std::int64_t>( width ) )
          {
            bits[j] = a[static_cast<std::size_t>( src )];
          }
        }
        return bits;
      }
      const auto s = elab( rhs, width_of( rhs ) );
      return barrel_shift( aig_, a, s, e.bin_op == binary_op::shl );
    }
    case binary_op::lt:
    case binary_op::le:
    case binary_op::gt:
    case binary_op::ge:
    {
      // Comparison width: max of the self-determined operand widths.
      const auto cw = std::max( width_of( lhs ), width_of( rhs ) );
      auto a = elab( lhs, cw );
      auto b = elab( rhs, cw );
      if ( e.bin_op == binary_op::gt || e.bin_op == binary_op::le )
      {
        std::swap( a, b ); // a>b == b<a, a<=b == !(b<a)
      }
      aig_lit no_borrow = aig_network::const0;
      ripple_sub( aig_, a, b, &no_borrow );
      // no_borrow == (a >= b), so a < b == !no_borrow.
      auto less = lit_not( no_borrow );
      if ( e.bin_op == binary_op::le || e.bin_op == binary_op::ge )
      {
        less = lit_not( less ); // le: !(b<a); ge: !(a<b)
      }
      return resize_bits( { less }, width );
    }
    case binary_op::eq:
    case binary_op::ne:
    {
      const auto cw = std::max( width_of( lhs ), width_of( rhs ) );
      const auto a = elab( lhs, cw );
      const auto b = elab( rhs, cw );
      std::vector<aig_lit> eq_bits( cw );
      for ( unsigned i = 0; i < cw; ++i )
      {
        eq_bits[i] = aig_.create_xnor( a[i], b[i] );
      }
      auto equal = aig_.create_nary_and( eq_bits );
      if ( e.bin_op == binary_op::ne )
      {
        equal = lit_not( equal );
      }
      return resize_bits( { equal }, width );
    }
    case binary_op::logic_and:
    case binary_op::logic_or:
    {
      const auto a = reduce_or_bits( elab( lhs, width_of( lhs ) ) );
      const auto b = reduce_or_bits( elab( rhs, width_of( rhs ) ) );
      const auto r = e.bin_op == binary_op::logic_and ? aig_.create_and( a, b )
                                                      : aig_.create_or( a, b );
      return resize_bits( { r }, width );
    }
    }
    fail( "unreachable binary op" );
  }

  void apply_assign( const lvalue& target, const expression& rhs )
  {
    const auto it = signals_.find( target.name );
    if ( it == signals_.end() )
    {
      fail( "assignment to undeclared signal '" + target.name + "'" );
    }
    auto& sig = it->second;
    if ( sig.kind == net_kind::input )
    {
      fail( "assignment to input '" + target.name + "'" );
    }
    unsigned lo = 0;
    unsigned hi = sig.width - 1u;
    if ( target.has_range )
    {
      lo = target.lsb;
      hi = target.msb;
      if ( hi < lo || hi >= sig.width )
      {
        fail( "lvalue range out of bounds on '" + target.name + "'" );
      }
    }
    const unsigned lhs_width = hi - lo + 1u;
    // Verilog context width: RHS computed at max(lhs, self-determined rhs)
    // and truncated to the lhs width.
    const auto context = std::max( lhs_width, width_of( rhs ) );
    const auto bits = elab( rhs, context );
    for ( unsigned b = 0; b < lhs_width; ++b )
    {
      if ( sig.driven[lo + b] )
      {
        fail( "multiple drivers on '" + target.name + "' bit " + std::to_string( lo + b ) );
      }
      sig.lits[lo + b] = bits[b];
      sig.driven[lo + b] = true;
    }
  }

  const module_def& mod_;
  aig_network aig_;
  std::map<std::string, signal_info> signals_;
  std::vector<std::pair<std::string, unsigned>> input_ports_;
  std::vector<std::pair<std::string, unsigned>> output_ports_;
};

} // namespace

elaborated_module elaborate( const module_def& mod )
{
  elaborator_impl impl( mod );
  return impl.run();
}

elaborated_module elaborate_verilog( const std::string& source, const std::string& source_name )
{
  const auto mod = parse_module( source, source_name );
  try
  {
    return elaborate( mod );
  }
  catch ( const std::runtime_error& e )
  {
    throw std::runtime_error( source_name + ": " + e.what() );
  }
}

} // namespace qsyn::verilog
