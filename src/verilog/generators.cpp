#include "generators.hpp"

#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "../common/bits.hpp"

namespace qsyn::verilog
{

std::string binary_literal( unsigned width, const std::vector<bool>& bits_lsb_first )
{
  std::string s = std::to_string( width ) + "'b";
  for ( unsigned i = width; i > 0; --i )
  {
    const bool bit = ( i - 1u ) < bits_lsb_first.size() && bits_lsb_first[i - 1u];
    s += bit ? '1' : '0';
  }
  return s;
}

std::vector<bool> q3_constant( unsigned numerator, unsigned denominator, unsigned frac_bits )
{
  assert( denominator != 0u );
  assert( numerator / denominator < 8u );
  // LSB-first layout: fraction bits 0..frac_bits-1, integer bits
  // frac_bits..frac_bits+2.
  std::vector<bool> bits( frac_bits + 3u, false );
  unsigned integer_part = numerator / denominator;
  for ( unsigned b = 0; b < 3u; ++b )
  {
    bits[frac_bits + b] = ( integer_part >> b ) & 1u;
  }
  // Schoolbook binary expansion of the remainder.
  unsigned remainder = numerator % denominator;
  for ( unsigned k = 1; k <= frac_bits; ++k )
  {
    remainder *= 2u;
    const bool bit = remainder >= denominator;
    if ( bit )
    {
      remainder -= denominator;
    }
    bits[frac_bits - k] = bit;
  }
  return bits;
}

unsigned newton_iterations( unsigned n )
{
  const double ratio = static_cast<double>( n + 1u ) / std::log2( 17.0 );
  const auto iterations = static_cast<unsigned>( std::ceil( std::log2( ratio ) ) );
  return std::max( 1u, iterations );
}

std::uint64_t reciprocal_reference( unsigned n, std::uint64_t x )
{
  if ( n > 62u )
  {
    throw std::invalid_argument( "reciprocal_reference: n too large for host arithmetic" );
  }
  assert( x != 0u );
  const std::uint64_t numerator = std::uint64_t{ 1 } << n;
  const std::uint64_t quotient = numerator / x;
  return quotient & ( numerator - 1u ); // drop the MSB of the (n+1)-bit result
}

std::string generate_intdiv( unsigned n )
{
  if ( n == 0u || n > 192u )
  {
    throw std::invalid_argument( "generate_intdiv: n must be in [1, 192]" );
  }
  std::ostringstream os;
  // 2^n as an (n+1)-bit binary literal: 1 followed by n zeros.
  std::vector<bool> two_to_n( n + 1u, false );
  two_to_n[n] = true;
  os << "// INTDIV(" << n << "): reciprocal via Verilog integer division (paper Sec. III-1)\n";
  os << "module intdiv_" << n << "(x, y);\n";
  os << "  input [" << ( n - 1u ) << ":0] x;\n";
  os << "  output [" << ( n - 1u ) << ":0] y;\n";
  os << "  wire [" << n << ":0] q = " << binary_literal( n + 1u, two_to_n )
     << " / {1'b0, x};\n";
  os << "  assign y = q[" << ( n - 1u ) << ":0];\n";
  os << "endmodule\n";
  return os.str();
}

std::string generate_newton( unsigned n, unsigned iterations )
{
  if ( n < 2u || n > 192u )
  {
    throw std::invalid_argument( "generate_newton: n must be in [2, 192]" );
  }
  const unsigned num_iter = iterations == 0u ? newton_iterations( n ) : iterations;
  const unsigned ebits = ceil_log2( n + 1u ); ///< bits for the exponent e in [0, n]
  const unsigned nw = n + 3u;                 ///< Q3.n
  const unsigned w = 2u * n + 3u;             ///< Q3.2n

  std::ostringstream os;
  os << "// NEWTON(" << n << "): reciprocal via the Newton-Raphson method on\n";
  os << "// Q3.w fixed-point numbers (paper Sec. III-2), " << num_iter << " iterations\n";
  os << "module newton_" << n << "(x, y);\n";
  os << "  input [" << ( n - 1u ) << ":0] x;\n";
  os << "  output [" << ( n - 1u ) << ":0] y;\n";

  // Step 1: normalization.  e = index of the leading one (1-based), so
  // x' = x / 2^e lies in [1/2, 1); x' has n fraction bits: xp = x << (n-e).
  os << "  // step 1: normalize x into [1/2, 1)\n";
  os << "  wire [" << ( ebits - 1u ) << ":0] e = ";
  for ( unsigned bit = n; bit > 0; --bit )
  {
    os << "x[" << ( bit - 1u ) << "] ? " << ebits << "'d" << bit << " : ";
  }
  os << ebits << "'d0;\n";
  os << "  wire [" << ( n - 1u ) << ":0] xp = x << (" << ( ebits + 1u ) << "'d" << n
     << " - {1'b0, e});\n";
  // x' as a Q3.n value (integer part is zero).
  os << "  wire [" << ( nw - 1u ) << ":0] xq = {3'b000, xp};\n";

  // Step 2: initial estimate x0 = Q3.2n(48/17) - Q3.n(32/17) *2n x'.
  os << "  // step 2: x0 = 48/17 - 32/17 * x'\n";
  os << "  wire [" << ( w - 1u ) << ":0] c48 = "
     << binary_literal( w, q3_constant( 48u, 17u, 2u * n ) ) << ";\n";
  os << "  wire [" << ( nw - 1u ) << ":0] c32 = "
     << binary_literal( nw, q3_constant( 32u, 17u, n ) ) << ";\n";
  // Q3.n * Q3.n full product: Q6.2n in 2*nw bits; truncate the top 3
  // integer bits to get Q3.2n.
  os << "  wire [" << ( 2u * nw - 1u ) << ":0] p0 = c32 * xq;\n";
  os << "  wire [" << ( w - 1u ) << ":0] x0 = c48 - p0[" << ( w - 1u ) << ":0];\n";

  // Q3.2n(1).
  std::vector<bool> one_bits( w, false );
  one_bits[2u * n] = true;
  os << "  wire [" << ( w - 1u ) << ":0] one = " << binary_literal( w, one_bits ) << ";\n";

  // Step 3: Newton iterations x_i = x_{i-1} + x_{i-1} *2n (1 - x' *2n x_{i-1}).
  for ( unsigned i = 1; i <= num_iter; ++i )
  {
    const std::string prev = "x" + std::to_string( i - 1u );
    const std::string cur = "x" + std::to_string( i );
    os << "  // step 3, iteration " << i << "\n";
    // pa = x' * x_{i-1}: Q3.n * Q3.2n = Q6.3n in nw + w bits;
    // *2n-truncation keeps fraction bits [n .. 3n-1] and integer bits
    // [3n .. 3n+2].
    os << "  wire [" << ( nw + w - 1u ) << ":0] pa" << i << " = xq * " << prev << ";\n";
    os << "  wire [" << ( w - 1u ) << ":0] t" << i << " = one - pa" << i << "["
       << ( 3u * n + 2u ) << ":" << n << "];\n";
    // pb = x_{i-1} * t: Q3.2n * Q3.2n = Q6.4n in 2w bits; keep fraction
    // bits [2n .. 4n-1] and integer bits [4n .. 4n+2].  t can be negative
    // (two's complement), so it must be sign-extended to the full product
    // width; x_{i-1} stays in (0, 2) and zero-extends correctly.
    os << "  wire [" << ( 2u * w - 1u ) << ":0] ts" << i << " = {{" << w << "{t" << i
       << "[" << ( w - 1u ) << "]}}, t" << i << "};\n";
    os << "  wire [" << ( 2u * w - 1u ) << ":0] pb" << i << " = " << prev << " * ts" << i
       << ";\n";
    os << "  wire [" << ( w - 1u ) << ":0] " << cur << " = " << prev << " + pb" << i << "["
       << ( 4u * n + 2u ) << ":" << ( 2u * n ) << "];\n";
  }

  // Steps 4-5: denormalize (y' = x_I >> e) and take the n most significant
  // fraction bits.
  os << "  // steps 4-5: denormalize and extract n fraction bits\n";
  os << "  wire [" << ( w - 1u ) << ":0] yp = x" << num_iter << " >> e;\n";
  os << "  assign y = yp[" << ( 2u * n - 1u ) << ":" << n << "];\n";
  os << "endmodule\n";
  return os.str();
}

} // namespace qsyn::verilog
