#include "parser.hpp"

#include <cstdint>
#include <stdexcept>

#include "lexer.hpp"

namespace qsyn::verilog
{

namespace
{

/// Printable form of a token for diagnostics: identifiers and keywords show
/// their text, everything else a fixed spelling or description.
std::string token_spelling( const token& t )
{
  if ( !t.text.empty() )
  {
    return "'" + t.text + "'";
  }
  switch ( t.kind )
  {
  case token_kind::identifier:
    return "identifier";
  case token_kind::number:
    return "number";
  case token_kind::keyword_module:
    return "'module'";
  case token_kind::keyword_endmodule:
    return "'endmodule'";
  case token_kind::keyword_input:
    return "'input'";
  case token_kind::keyword_output:
    return "'output'";
  case token_kind::keyword_wire:
    return "'wire'";
  case token_kind::keyword_assign:
    return "'assign'";
  case token_kind::lparen:
    return "'('";
  case token_kind::rparen:
    return "')'";
  case token_kind::lbracket:
    return "'['";
  case token_kind::rbracket:
    return "']'";
  case token_kind::lbrace:
    return "'{'";
  case token_kind::rbrace:
    return "'}'";
  case token_kind::comma:
    return "','";
  case token_kind::semicolon:
    return "';'";
  case token_kind::colon:
    return "':'";
  case token_kind::question:
    return "'?'";
  case token_kind::plus:
    return "'+'";
  case token_kind::minus:
    return "'-'";
  case token_kind::star:
    return "'*'";
  case token_kind::slash:
    return "'/'";
  case token_kind::percent:
    return "'%'";
  case token_kind::shift_left:
    return "'<<'";
  case token_kind::shift_right:
    return "'>>'";
  case token_kind::less:
    return "'<'";
  case token_kind::less_equal:
    return "'<='";
  case token_kind::greater:
    return "'>'";
  case token_kind::greater_equal:
    return "'>='";
  case token_kind::equal_equal:
    return "'=='";
  case token_kind::not_equal:
    return "'!='";
  case token_kind::amp:
    return "'&'";
  case token_kind::amp_amp:
    return "'&&'";
  case token_kind::pipe:
    return "'|'";
  case token_kind::pipe_pipe:
    return "'||'";
  case token_kind::caret:
    return "'^'";
  case token_kind::tilde:
    return "'~'";
  case token_kind::bang:
    return "'!'";
  case token_kind::assign_op:
    return "'='";
  case token_kind::end_of_file:
    return "end of file";
  }
  return "token";
}

class parser
{
public:
  parser( std::vector<token> tokens, std::string source_name )
      : tokens_( std::move( tokens ) ), source_name_( std::move( source_name ) )
  {
  }

  module_def parse()
  {
    module_def mod;
    expect( token_kind::keyword_module );
    mod.name = expect( token_kind::identifier ).text;
    expect( token_kind::lparen );
    // ANSI or non-ANSI port list.
    if ( !at( token_kind::rparen ) )
    {
      for ( ;; )
      {
        if ( at( token_kind::keyword_input ) || at( token_kind::keyword_output ) )
        {
          declaration decl = parse_port_declaration();
          mod.ports.push_back( decl.names.front() );
          mod.declarations.push_back( std::move( decl ) );
        }
        else
        {
          mod.ports.push_back( expect( token_kind::identifier ).text );
        }
        if ( !accept( token_kind::comma ) )
        {
          break;
        }
      }
    }
    expect( token_kind::rparen );
    expect( token_kind::semicolon );

    while ( !at( token_kind::keyword_endmodule ) )
    {
      if ( at( token_kind::keyword_input ) || at( token_kind::keyword_output ) ||
           at( token_kind::keyword_wire ) )
      {
        mod.declarations.push_back( parse_declaration() );
      }
      else if ( accept( token_kind::keyword_assign ) )
      {
        assign_statement stmt;
        stmt.target = parse_lvalue();
        expect( token_kind::assign_op );
        stmt.rhs = parse_expression();
        expect( token_kind::semicolon );
        mod.assigns.push_back( std::move( stmt ) );
      }
      else
      {
        fail( "expected declaration, assign, or endmodule" );
      }
    }
    expect( token_kind::keyword_endmodule );
    return mod;
  }

private:
  const token& current() const { return tokens_[pos_]; }
  bool at( token_kind kind ) const { return current().kind == kind; }

  bool accept( token_kind kind )
  {
    if ( at( kind ) )
    {
      ++pos_;
      return true;
    }
    return false;
  }

  token expect( token_kind kind )
  {
    if ( !at( kind ) )
    {
      token wanted{};
      wanted.kind = kind;
      fail( "expected " + token_spelling( wanted ) );
    }
    return tokens_[pos_++];
  }

  [[noreturn]] void fail( const std::string& message ) const
  {
    throw std::runtime_error( source_name_ + ":" + std::to_string( current().line ) +
                              ": verilog parser: " + message + " near " +
                              token_spelling( current() ) );
  }

  /// Parses `[msb:lsb]`; returns the width and requires lsb == 0.
  unsigned parse_range()
  {
    expect( token_kind::lbracket );
    const auto msb = parse_constant();
    expect( token_kind::colon );
    const auto lsb = parse_constant();
    expect( token_kind::rbracket );
    if ( lsb != 0 )
    {
      fail( "only [msb:0] ranges are supported in declarations" );
    }
    return static_cast<unsigned>( msb ) + 1u;
  }

  /// A constant integer expression made of numbers, +, -, * and parentheses.
  std::uint64_t parse_constant()
  {
    return parse_constant_add();
  }

  std::uint64_t parse_constant_add()
  {
    auto value = parse_constant_mul();
    for ( ;; )
    {
      if ( accept( token_kind::plus ) )
      {
        value += parse_constant_mul();
      }
      else if ( accept( token_kind::minus ) )
      {
        value -= parse_constant_mul();
      }
      else
      {
        return value;
      }
    }
  }

  std::uint64_t parse_constant_mul()
  {
    auto value = parse_constant_primary();
    while ( accept( token_kind::star ) )
    {
      value *= parse_constant_primary();
    }
    return value;
  }

  std::uint64_t parse_constant_primary()
  {
    if ( accept( token_kind::lparen ) )
    {
      const auto value = parse_constant();
      expect( token_kind::rparen );
      return value;
    }
    const auto t = expect( token_kind::number );
    std::uint64_t value = 0;
    for ( std::size_t b = 0; b < t.bits.size() && b < 64u; ++b )
    {
      if ( t.bits[b] )
      {
        value |= std::uint64_t{ 1 } << b;
      }
    }
    return value;
  }

  declaration parse_port_declaration()
  {
    declaration decl;
    if ( accept( token_kind::keyword_input ) )
    {
      decl.kind = net_kind::input;
    }
    else
    {
      expect( token_kind::keyword_output );
      decl.kind = net_kind::output;
    }
    accept( token_kind::keyword_wire ); // `input wire [..]` is permitted
    if ( at( token_kind::lbracket ) )
    {
      decl.width = parse_range();
    }
    decl.names.push_back( expect( token_kind::identifier ).text );
    return decl;
  }

  declaration parse_declaration()
  {
    declaration decl;
    if ( accept( token_kind::keyword_input ) )
    {
      decl.kind = net_kind::input;
    }
    else if ( accept( token_kind::keyword_output ) )
    {
      decl.kind = net_kind::output;
    }
    else
    {
      expect( token_kind::keyword_wire );
      decl.kind = net_kind::wire;
    }
    if ( at( token_kind::lbracket ) )
    {
      decl.width = parse_range();
    }
    decl.names.push_back( expect( token_kind::identifier ).text );
    if ( accept( token_kind::assign_op ) )
    {
      decl.initializer = parse_expression();
    }
    else
    {
      while ( accept( token_kind::comma ) )
      {
        decl.names.push_back( expect( token_kind::identifier ).text );
      }
    }
    expect( token_kind::semicolon );
    return decl;
  }

  lvalue parse_lvalue()
  {
    lvalue lv;
    lv.name = expect( token_kind::identifier ).text;
    if ( accept( token_kind::lbracket ) )
    {
      const auto first = parse_constant();
      if ( accept( token_kind::colon ) )
      {
        lv.msb = static_cast<unsigned>( first );
        lv.lsb = static_cast<unsigned>( parse_constant() );
      }
      else
      {
        lv.msb = lv.lsb = static_cast<unsigned>( first );
      }
      lv.has_range = true;
      expect( token_kind::rbracket );
    }
    return lv;
  }

  /// --- expressions, precedence climbing ---------------------------------

  expr_ptr parse_expression() { return parse_ternary(); }

  expr_ptr parse_ternary()
  {
    auto cond = parse_logic_or();
    if ( !accept( token_kind::question ) )
    {
      return cond;
    }
    auto then_branch = parse_expression();
    expect( token_kind::colon );
    auto else_branch = parse_expression();
    auto node = std::make_unique<expression>();
    node->kind = expression::node_kind::ternary;
    node->operands.push_back( std::move( cond ) );
    node->operands.push_back( std::move( then_branch ) );
    node->operands.push_back( std::move( else_branch ) );
    return node;
  }

  expr_ptr make_binary( binary_op op, expr_ptr lhs, expr_ptr rhs )
  {
    auto node = std::make_unique<expression>();
    node->kind = expression::node_kind::binary;
    node->bin_op = op;
    node->operands.push_back( std::move( lhs ) );
    node->operands.push_back( std::move( rhs ) );
    return node;
  }

  expr_ptr parse_logic_or()
  {
    auto lhs = parse_logic_and();
    while ( accept( token_kind::pipe_pipe ) )
    {
      lhs = make_binary( binary_op::logic_or, std::move( lhs ), parse_logic_and() );
    }
    return lhs;
  }

  expr_ptr parse_logic_and()
  {
    auto lhs = parse_bit_or();
    while ( accept( token_kind::amp_amp ) )
    {
      lhs = make_binary( binary_op::logic_and, std::move( lhs ), parse_bit_or() );
    }
    return lhs;
  }

  expr_ptr parse_bit_or()
  {
    auto lhs = parse_bit_xor();
    while ( accept( token_kind::pipe ) )
    {
      lhs = make_binary( binary_op::bit_or, std::move( lhs ), parse_bit_xor() );
    }
    return lhs;
  }

  expr_ptr parse_bit_xor()
  {
    auto lhs = parse_bit_and();
    while ( accept( token_kind::caret ) )
    {
      lhs = make_binary( binary_op::bit_xor, std::move( lhs ), parse_bit_and() );
    }
    return lhs;
  }

  expr_ptr parse_bit_and()
  {
    auto lhs = parse_equality();
    while ( accept( token_kind::amp ) )
    {
      lhs = make_binary( binary_op::bit_and, std::move( lhs ), parse_equality() );
    }
    return lhs;
  }

  expr_ptr parse_equality()
  {
    auto lhs = parse_relational();
    for ( ;; )
    {
      if ( accept( token_kind::equal_equal ) )
      {
        lhs = make_binary( binary_op::eq, std::move( lhs ), parse_relational() );
      }
      else if ( accept( token_kind::not_equal ) )
      {
        lhs = make_binary( binary_op::ne, std::move( lhs ), parse_relational() );
      }
      else
      {
        return lhs;
      }
    }
  }

  expr_ptr parse_relational()
  {
    auto lhs = parse_shift();
    for ( ;; )
    {
      if ( accept( token_kind::less ) )
      {
        lhs = make_binary( binary_op::lt, std::move( lhs ), parse_shift() );
      }
      else if ( accept( token_kind::less_equal ) )
      {
        lhs = make_binary( binary_op::le, std::move( lhs ), parse_shift() );
      }
      else if ( accept( token_kind::greater ) )
      {
        lhs = make_binary( binary_op::gt, std::move( lhs ), parse_shift() );
      }
      else if ( accept( token_kind::greater_equal ) )
      {
        lhs = make_binary( binary_op::ge, std::move( lhs ), parse_shift() );
      }
      else
      {
        return lhs;
      }
    }
  }

  expr_ptr parse_shift()
  {
    auto lhs = parse_additive();
    for ( ;; )
    {
      if ( accept( token_kind::shift_left ) )
      {
        lhs = make_binary( binary_op::shl, std::move( lhs ), parse_additive() );
      }
      else if ( accept( token_kind::shift_right ) )
      {
        lhs = make_binary( binary_op::shr, std::move( lhs ), parse_additive() );
      }
      else
      {
        return lhs;
      }
    }
  }

  expr_ptr parse_additive()
  {
    auto lhs = parse_multiplicative();
    for ( ;; )
    {
      if ( accept( token_kind::plus ) )
      {
        lhs = make_binary( binary_op::add, std::move( lhs ), parse_multiplicative() );
      }
      else if ( accept( token_kind::minus ) )
      {
        lhs = make_binary( binary_op::sub, std::move( lhs ), parse_multiplicative() );
      }
      else
      {
        return lhs;
      }
    }
  }

  expr_ptr parse_multiplicative()
  {
    auto lhs = parse_unary();
    for ( ;; )
    {
      if ( accept( token_kind::star ) )
      {
        lhs = make_binary( binary_op::mul, std::move( lhs ), parse_unary() );
      }
      else if ( accept( token_kind::slash ) )
      {
        lhs = make_binary( binary_op::div, std::move( lhs ), parse_unary() );
      }
      else if ( accept( token_kind::percent ) )
      {
        lhs = make_binary( binary_op::mod, std::move( lhs ), parse_unary() );
      }
      else
      {
        return lhs;
      }
    }
  }

  expr_ptr make_unary( unary_op op, expr_ptr operand )
  {
    auto node = std::make_unique<expression>();
    node->kind = expression::node_kind::unary;
    node->un_op = op;
    node->operands.push_back( std::move( operand ) );
    return node;
  }

  expr_ptr parse_unary()
  {
    if ( accept( token_kind::tilde ) )
    {
      return make_unary( unary_op::bit_not, parse_unary() );
    }
    if ( accept( token_kind::bang ) )
    {
      return make_unary( unary_op::logic_not, parse_unary() );
    }
    if ( accept( token_kind::minus ) )
    {
      return make_unary( unary_op::negate, parse_unary() );
    }
    if ( accept( token_kind::amp ) )
    {
      return make_unary( unary_op::reduce_and, parse_unary() );
    }
    if ( accept( token_kind::pipe ) )
    {
      return make_unary( unary_op::reduce_or, parse_unary() );
    }
    if ( accept( token_kind::caret ) )
    {
      return make_unary( unary_op::reduce_xor, parse_unary() );
    }
    return parse_primary();
  }

  expr_ptr parse_primary()
  {
    if ( accept( token_kind::lparen ) )
    {
      auto inner = parse_expression();
      expect( token_kind::rparen );
      return inner;
    }
    if ( at( token_kind::number ) )
    {
      const auto t = expect( token_kind::number );
      auto node = std::make_unique<expression>();
      node->kind = expression::node_kind::number;
      node->bits = t.bits;
      node->sized = t.sized;
      return node;
    }
    if ( at( token_kind::lbrace ) )
    {
      return parse_concat();
    }
    const auto name = expect( token_kind::identifier ).text;
    if ( accept( token_kind::lbracket ) )
    {
      auto first = parse_expression();
      if ( accept( token_kind::colon ) )
      {
        auto node = std::make_unique<expression>();
        node->kind = expression::node_kind::part_select;
        node->name = name;
        node->index_msb = std::move( first );
        node->index_lsb = parse_expression();
        expect( token_kind::rbracket );
        return node;
      }
      expect( token_kind::rbracket );
      auto node = std::make_unique<expression>();
      node->kind = expression::node_kind::bit_select;
      node->name = name;
      node->index = std::move( first );
      return node;
    }
    auto node = std::make_unique<expression>();
    node->kind = expression::node_kind::identifier;
    node->name = name;
    return node;
  }

  expr_ptr parse_concat()
  {
    expect( token_kind::lbrace );
    auto first = parse_expression();
    // Replication: { count { expr } }
    if ( at( token_kind::lbrace ) )
    {
      auto node = std::make_unique<expression>();
      node->kind = expression::node_kind::replicate;
      node->repeat_count = std::move( first );
      expect( token_kind::lbrace );
      node->operands.push_back( parse_expression() );
      expect( token_kind::rbrace );
      expect( token_kind::rbrace );
      return node;
    }
    auto node = std::make_unique<expression>();
    node->kind = expression::node_kind::concat;
    node->operands.push_back( std::move( first ) );
    while ( accept( token_kind::comma ) )
    {
      node->operands.push_back( parse_expression() );
    }
    expect( token_kind::rbrace );
    return node;
  }

  std::vector<token> tokens_;
  std::string source_name_;
  std::size_t pos_ = 0;
};

} // namespace

module_def parse_module( const std::string& source, const std::string& source_name )
{
  // Lexer diagnostics already carry a line number; prefix the source name
  // here so every layer's message says which design it came from.
  try
  {
    parser p( tokenize( source ), source_name );
    return p.parse();
  }
  catch ( const std::runtime_error& e )
  {
    const std::string what = e.what();
    if ( what.rfind( source_name + ":", 0 ) == 0 )
    {
      throw;
    }
    throw std::runtime_error( source_name + ": " + what );
  }
}

} // namespace qsyn::verilog
