/// \file parser.hpp
/// \brief Recursive-descent parser for the Verilog subset.

#pragma once

#include <string>

#include "ast.hpp"

namespace qsyn::verilog
{

/// Parses a single module from Verilog source.  Throws std::runtime_error
/// on syntax errors; the message carries `source_name`, the 1-based line,
/// and the offending token ("demo.v:3: verilog parser: unexpected token
/// near 'endmodule'"), so a malformed design degrades to a useful
/// per-design failure record instead of an opaque abort.
module_def parse_module( const std::string& source,
                         const std::string& source_name = "<verilog>" );

} // namespace qsyn::verilog
