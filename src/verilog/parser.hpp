/// \file parser.hpp
/// \brief Recursive-descent parser for the Verilog subset.

#pragma once

#include <string>

#include "ast.hpp"

namespace qsyn::verilog
{

/// Parses a single module from Verilog source.  Throws std::runtime_error
/// with a line number on syntax errors.
module_def parse_module( const std::string& source );

} // namespace qsyn::verilog
