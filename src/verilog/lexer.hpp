/// \file lexer.hpp
/// \brief Tokenizer for the Verilog subset.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qsyn::verilog
{

enum class token_kind
{
  identifier,
  number,
  keyword_module,
  keyword_endmodule,
  keyword_input,
  keyword_output,
  keyword_wire,
  keyword_assign,
  lparen,
  rparen,
  lbracket,
  rbracket,
  lbrace,
  rbrace,
  comma,
  semicolon,
  colon,
  question,
  plus,
  minus,
  star,
  slash,
  percent,
  shift_left,
  shift_right,
  less,
  less_equal,
  greater,
  greater_equal,
  equal_equal,
  not_equal,
  amp,
  amp_amp,
  pipe,
  pipe_pipe,
  caret,
  tilde,
  bang,
  assign_op, ///< '='
  end_of_file
};

struct token
{
  token_kind kind;
  std::string text;        ///< identifier text
  std::vector<bool> bits;  ///< number value, LSB first
  bool sized = false;      ///< number had an explicit width
  unsigned line = 0;       ///< 1-based source line for diagnostics
};

/// Tokenizes Verilog source.  Throws std::runtime_error with a line number
/// on malformed input.  Line comments (`//`) and block comments are skipped.
std::vector<token> tokenize( const std::string& source );

} // namespace qsyn::verilog
