/// \file generators.hpp
/// \brief Verilog generators for the paper's two reciprocal designs.
///
/// Section III of the paper introduces two Verilog descriptions of the
/// n-bit reciprocal rec(x) = y with 1/x = (0.y1...yn)_2 for x = (x1...xn)_2:
///
/// * INTDIV(n)  — Verilog's integer division operator: y is the low n bits
///   of the (n+1)-bit unsigned division 2^n / x.
/// * NEWTON(n)  — the Newton–Raphson method on Q3.w fixed-point numbers:
///   normalize x into [1/2, 1), start from x0 = 48/17 - 32/17 * x', iterate
///   x_i = x_{i-1} + x_{i-1} * (1 - x' * x_{i-1}) with 2n fraction bits,
///   and denormalize.
///
/// Both functions return Verilog source text that round-trips through our
/// own parser/elaborator — exactly how the paper's flows start from
/// hardware description language input.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qsyn::verilog
{

/// Verilog source of the INTDIV(n) reciprocal design.
std::string generate_intdiv( unsigned n );

/// Verilog source of the NEWTON(n) reciprocal design.  `iterations` == 0
/// selects the paper's schedule I = ceil(log2((n+1) / log2(17))).
std::string generate_newton( unsigned n, unsigned iterations = 0 );

/// The paper's Newton iteration count for target precision n.
unsigned newton_iterations( unsigned n );

/// Reference model of the reciprocal: the exact value floor(2^n / x) mod
/// 2^n computed on host integers (n <= 62); undefined for x == 0.
std::uint64_t reciprocal_reference( unsigned n, std::uint64_t x );

/// Binary literal helper: `width'b...` string for value (LSB-first bits
/// provided as a callable).  Exposed for tests.
std::string binary_literal( unsigned width, const std::vector<bool>& bits_lsb_first );

/// Fixed-point binary expansion of the fraction `numerator / denominator`
/// (< 8) as a Q3.frac_bits value, LSB first (truncation, not rounding).
std::vector<bool> q3_constant( unsigned numerator, unsigned denominator, unsigned frac_bits );

} // namespace qsyn::verilog
