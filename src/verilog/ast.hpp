/// \file ast.hpp
/// \brief Abstract syntax tree for the supported Verilog subset.
///
/// The design flows of the paper start from combinational Verilog
/// descriptions (INTDIV(n), NEWTON(n)).  The supported subset covers
/// everything those designs and typical arithmetic blocks need:
///
/// * one module with ANSI or non-ANSI port declarations,
/// * `input` / `output` / `wire` declarations with `[msb:lsb]` ranges
///   (lsb must be 0) and optional net initializers (`wire [3:0] a = ...;`),
/// * `assign` statements to whole signals or constant part/bit selects,
/// * unsigned expressions: `?:`, `||`, `&&`, `|`, `^`, `&`, `==`, `!=`,
///   `<`, `<=`, `>`, `>=`, `<<`, `>>`, `+`, `-`, `*`, `/`, `%`, unary
///   `~ ! -` and reductions `& | ^`, concatenation `{a,b}`, replication
///   `{4{a}}`, bit select `a[i]`, part select `a[m:l]`,
/// * sized and unsized numeric literals in binary / hex / decimal
///   (binary and hex support arbitrary widths; decimal up to 64 bits).
///
/// Width semantics follow the Verilog standard for unsigned contexts: the
/// operands of context-determined operators are extended to the context
/// width before the operation; concatenation, replication and shift amounts
/// are self-determined.

#pragma once

#include <memory>
#include <string>
#include <vector>

namespace qsyn::verilog
{

enum class binary_op
{
  add,
  sub,
  mul,
  div,
  mod,
  shl,
  shr,
  lt,
  le,
  gt,
  ge,
  eq,
  ne,
  bit_and,
  bit_or,
  bit_xor,
  logic_and,
  logic_or
};

enum class unary_op
{
  bit_not,
  logic_not,
  negate,
  reduce_and,
  reduce_or,
  reduce_xor
};

/// Expression node.  A single variant-style struct keeps the parser and
/// elaborator compact.
struct expression
{
  enum class node_kind
  {
    number,
    identifier,
    unary,
    binary,
    ternary,
    concat,
    replicate,
    bit_select,
    part_select
  };

  node_kind kind;

  // number
  std::vector<bool> bits; ///< LSB first
  bool sized = false;     ///< width was given explicitly

  // identifier / selects
  std::string name;
  std::unique_ptr<expression> index;     ///< bit_select
  std::unique_ptr<expression> index_msb; ///< part_select
  std::unique_ptr<expression> index_lsb; ///< part_select

  // operators
  unary_op un_op = unary_op::bit_not;
  binary_op bin_op = binary_op::add;
  std::vector<std::unique_ptr<expression>> operands;

  // replicate
  std::unique_ptr<expression> repeat_count;
};

using expr_ptr = std::unique_ptr<expression>;

enum class net_kind
{
  input,
  output,
  wire
};

/// A declaration like `output [7:0] y;` or `wire [3:0] a = b + c;`.
struct declaration
{
  net_kind kind = net_kind::wire;
  unsigned width = 1;
  std::vector<std::string> names;
  expr_ptr initializer; ///< optional, only for single-name declarations
};

/// Target of an `assign`: whole signal, a bit, or a constant part select.
struct lvalue
{
  std::string name;
  bool has_range = false;
  unsigned msb = 0;
  unsigned lsb = 0;
};

struct assign_statement
{
  lvalue target;
  expr_ptr rhs;
};

/// A parsed module.
struct module_def
{
  std::string name;
  std::vector<std::string> ports; ///< port order as in the header
  std::vector<declaration> declarations;
  std::vector<assign_statement> assigns;
};

} // namespace qsyn::verilog
