/// \file elaborator.hpp
/// \brief Elaboration of a parsed Verilog module into an AIG.
///
/// This is the design-level → logic-synthesis-level interface of Fig. 1:
/// every Verilog operator is bit-blasted into AND-inverter logic.
/// Arithmetic uses the standard combinational macro-architectures:
///
/// * `+` / `-`   — ripple-carry adder / two's-complement subtractor,
/// * `*`         — array multiplier (mod 2^W, W = context width),
/// * `/` / `%`   — restoring division array (quotient is all-ones for a
///                 zero divisor, matching the hardware behaviour of the
///                 restoring scheme),
/// * `<<` / `>>` — logarithmic barrel shifters for variable amounts,
///                 plain rewiring for constant amounts,
/// * comparisons — borrow-out of a subtractor.
///
/// All operators are unsigned; widths follow Verilog's context-determined
/// rules (see ast.hpp).

#pragma once

#include <cstdint>
#include <vector>

#include "../logic/aig.hpp"
#include "ast.hpp"

namespace qsyn::verilog
{

/// Result of elaboration: the AIG plus port bit widths (LSB-first PI/PO
/// order, inputs and outputs appear in module port order).
struct elaborated_module
{
  aig_network aig;
  std::vector<std::pair<std::string, unsigned>> input_ports;  ///< name, width
  std::vector<std::pair<std::string, unsigned>> output_ports; ///< name, width
};

/// Elaborates a parsed module.  Throws std::runtime_error on semantic
/// errors (undriven wires, width-0 signals, combinational cycles, ...);
/// the message names the module and the offending signal.
elaborated_module elaborate( const module_def& mod );

/// Convenience: parse + elaborate Verilog source.  `source_name` prefixes
/// every parse and elaboration diagnostic, so per-design failure records
/// in a batch sweep say which design (and where) went wrong.
elaborated_module elaborate_verilog( const std::string& source,
                                     const std::string& source_name = "<verilog>" );

/// --- reusable word-level bit-blasting helpers ---------------------------
/// These operate on LSB-first literal vectors and are shared with tests and
/// the baseline generators.

/// a + b + carry_in; result has a.size() bits, carry-out optionally
/// returned.
std::vector<aig_lit> ripple_add( aig_network& aig, const std::vector<aig_lit>& a,
                                 const std::vector<aig_lit>& b, aig_lit carry_in,
                                 aig_lit* carry_out = nullptr );

/// a - b (two's complement); `no_borrow`, if non-null, receives the
/// carry-out which is 1 iff a >= b.
std::vector<aig_lit> ripple_sub( aig_network& aig, const std::vector<aig_lit>& a,
                                 const std::vector<aig_lit>& b, aig_lit* no_borrow = nullptr );

/// a * b mod 2^W where W = a.size() (b must have the same width).
std::vector<aig_lit> array_multiply( aig_network& aig, const std::vector<aig_lit>& a,
                                     const std::vector<aig_lit>& b );

/// Restoring division; returns the quotient, `remainder_out` (optional)
/// receives the remainder.  Both operands must have equal width.
std::vector<aig_lit> restoring_divide( aig_network& aig, const std::vector<aig_lit>& a,
                                       const std::vector<aig_lit>& b,
                                       std::vector<aig_lit>* remainder_out = nullptr );

/// Logical barrel shift of `a` by the variable amount `s` (LSB-first).
std::vector<aig_lit> barrel_shift( aig_network& aig, const std::vector<aig_lit>& a,
                                   const std::vector<aig_lit>& s, bool left );

} // namespace qsyn::verilog
