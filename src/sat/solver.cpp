#include "solver.hpp"

#include <algorithm>
#include <cassert>

namespace qsyn::sat
{

std::uint32_t solver::new_var()
{
  const auto v = static_cast<std::uint32_t>( assign_.size() );
  assign_.push_back( lbool::unassigned );
  reason_.push_back( -1 );
  level_.push_back( 0 );
  activity_.push_back( 0.0 );
  phase_.push_back( false );
  seen_.push_back( false );
  watches_.emplace_back();
  watches_.emplace_back();
  return v;
}

bool solver::add_clause( std::vector<literal> lits )
{
  if ( !ok_ )
  {
    return false;
  }
  assert( trail_limits_.empty() && "clauses must be added at decision level 0" );
  // Remove duplicate literals and satisfied/falsified simplifications.
  std::sort( lits.begin(), lits.end() );
  lits.erase( std::unique( lits.begin(), lits.end() ), lits.end() );
  std::vector<literal> filtered;
  for ( std::size_t i = 0; i < lits.size(); ++i )
  {
    if ( i + 1u < lits.size() && lits[i + 1u] == lit_negate( lits[i] ) )
    {
      return true; // tautology: contains l and !l
    }
    const auto v = value( lits[i] );
    if ( v == lbool::true_value )
    {
      return true; // already satisfied at level 0
    }
    if ( v == lbool::unassigned )
    {
      filtered.push_back( lits[i] );
    }
  }
  if ( filtered.empty() )
  {
    ok_ = false;
    return false;
  }
  if ( filtered.size() == 1u )
  {
    enqueue( filtered[0], -1 );
    if ( propagate() >= 0 )
    {
      ok_ = false;
      return false;
    }
    return true;
  }
  const auto index = static_cast<std::uint32_t>( clauses_.size() );
  clauses_.push_back( { std::move( filtered ) } );
  attach_clause( index );
  return true;
}

void solver::attach_clause( std::uint32_t index )
{
  const auto& c = clauses_[index].lits;
  watches_[lit_negate( c[0] )].push_back( { index, c[1] } );
  watches_[lit_negate( c[1] )].push_back( { index, c[0] } );
}

void solver::enqueue( literal l, std::int32_t reason )
{
  const auto v = lit_var( l );
  assert( assign_[v] == lbool::unassigned );
  assign_[v] = lit_sign( l ) ? lbool::false_value : lbool::true_value;
  reason_[v] = reason;
  level_[v] = static_cast<std::uint32_t>( trail_limits_.size() );
  trail_.push_back( l );
}

std::int32_t solver::propagate()
{
  while ( propagate_head_ < trail_.size() )
  {
    const auto l = trail_[propagate_head_++];
    ++propagations_;
    auto& watch_list = watches_[l];
    std::size_t keep = 0;
    for ( std::size_t i = 0; i < watch_list.size(); ++i )
    {
      const auto w = watch_list[i];
      if ( value( w.blocker ) == lbool::true_value )
      {
        watch_list[keep++] = w;
        continue;
      }
      auto& lits = clauses_[w.clause_index].lits;
      // Normalize: watched literal being falsified is !l; put it at position 1.
      const auto false_lit = lit_negate( l );
      if ( lits[0] == false_lit )
      {
        std::swap( lits[0], lits[1] );
      }
      assert( lits[1] == false_lit );
      if ( value( lits[0] ) == lbool::true_value )
      {
        watch_list[keep++] = { w.clause_index, lits[0] };
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for ( std::size_t k = 2; k < lits.size(); ++k )
      {
        if ( value( lits[k] ) != lbool::false_value )
        {
          std::swap( lits[1], lits[k] );
          watches_[lit_negate( lits[1] )].push_back( { w.clause_index, lits[0] } );
          moved = true;
          break;
        }
      }
      if ( moved )
      {
        continue;
      }
      // Clause is unit or conflicting.
      watch_list[keep++] = w;
      if ( value( lits[0] ) == lbool::false_value )
      {
        // Conflict: copy back remaining watchers and report.
        for ( std::size_t k = i + 1u; k < watch_list.size(); ++k )
        {
          watch_list[keep++] = watch_list[k];
        }
        watch_list.resize( keep );
        propagate_head_ = trail_.size();
        return static_cast<std::int32_t>( w.clause_index );
      }
      enqueue( lits[0], static_cast<std::int32_t>( w.clause_index ) );
    }
    watch_list.resize( keep );
  }
  return -1;
}

void solver::analyze( std::int32_t conflict, std::vector<literal>& learnt, std::uint32_t& backtrack_level )
{
  learnt.clear();
  learnt.push_back( 0 ); // placeholder for the asserting literal
  const auto current_level = static_cast<std::uint32_t>( trail_limits_.size() );
  std::uint32_t counter = 0;
  literal p = 0;
  bool have_p = false;
  std::size_t trail_index = trail_.size();
  std::vector<std::uint32_t> to_clear;

  for ( ;; )
  {
    const auto& reason_lits = clauses_[conflict].lits;
    for ( std::size_t i = have_p ? 1u : 0u; i < reason_lits.size(); ++i )
    {
      const auto q = reason_lits[i];
      const auto v = lit_var( q );
      if ( seen_[v] || level_[v] == 0 )
      {
        continue;
      }
      seen_[v] = true;
      to_clear.push_back( v );
      bump_var( v );
      if ( level_[v] == current_level )
      {
        ++counter;
      }
      else
      {
        learnt.push_back( q );
      }
    }
    // Find the next literal on the trail that is marked seen.
    for ( ;; )
    {
      assert( trail_index > 0u );
      p = trail_[--trail_index];
      if ( seen_[lit_var( p )] )
      {
        break;
      }
    }
    seen_[lit_var( p )] = false;
    --counter;
    if ( counter == 0 )
    {
      break;
    }
    // p was implied; continue with its reason clause.  The propagation
    // invariant keeps the implied literal at position 0 (or 1 directly
    // after a watcher renormalization); swapping the two watched positions
    // is safe because both are watched.
    conflict = reason_[lit_var( p )];
    assert( conflict >= 0 );
    auto& rl = clauses_[conflict].lits;
    if ( rl[0] != p )
    {
      assert( rl[1] == p );
      std::swap( rl[0], rl[1] );
    }
    have_p = true;
  }
  learnt[0] = lit_negate( p );

  // Compute backtrack level: second highest level in the learnt clause.
  if ( learnt.size() == 1u )
  {
    backtrack_level = 0;
  }
  else
  {
    std::size_t max_index = 1;
    for ( std::size_t i = 2; i < learnt.size(); ++i )
    {
      if ( level_[lit_var( learnt[i] )] > level_[lit_var( learnt[max_index] )] )
      {
        max_index = i;
      }
    }
    std::swap( learnt[1], learnt[max_index] );
    backtrack_level = level_[lit_var( learnt[1] )];
  }
  for ( const auto v : to_clear )
  {
    seen_[v] = false;
  }
}

void solver::backtrack( std::uint32_t level )
{
  if ( trail_limits_.size() <= level )
  {
    return;
  }
  const auto limit = trail_limits_[level];
  for ( std::size_t i = trail_.size(); i > limit; --i )
  {
    const auto v = lit_var( trail_[i - 1u] );
    phase_[v] = assign_[v] == lbool::true_value;
    assign_[v] = lbool::unassigned;
    reason_[v] = -1;
  }
  trail_.resize( limit );
  trail_limits_.resize( level );
  propagate_head_ = trail_.size();
}

literal solver::pick_branch()
{
  std::uint32_t best = 0;
  double best_activity = -1.0;
  for ( std::uint32_t v = 0; v < num_vars(); ++v )
  {
    if ( assign_[v] == lbool::unassigned && activity_[v] > best_activity )
    {
      best = v;
      best_activity = activity_[v];
    }
  }
  if ( best_activity < 0.0 )
  {
    return 0xffffffffu; // sentinel: no unassigned variable
  }
  return phase_[best] ? pos_lit( best ) : neg_lit( best );
}

void solver::bump_var( std::uint32_t var )
{
  activity_[var] += activity_inc_;
  if ( activity_[var] > 1e100 )
  {
    for ( auto& a : activity_ )
    {
      a *= 1e-100;
    }
    activity_inc_ *= 1e-100;
  }
}

void solver::decay_activities()
{
  activity_inc_ /= 0.95;
}

result solver::solve( const std::vector<literal>& assumptions, std::uint64_t conflict_budget )
{
  if ( !ok_ )
  {
    return result::unsatisfiable;
  }
  backtrack( 0 );
  if ( propagate() >= 0 )
  {
    ok_ = false;
    return result::unsatisfiable;
  }

  std::uint64_t restart_limit = 100;
  std::uint64_t conflicts_since_restart = 0;
  const std::uint64_t start_conflicts = conflicts_;

  for ( ;; )
  {
    const auto conflict = propagate();
    if ( conflict >= 0 )
    {
      ++conflicts_;
      ++conflicts_since_restart;
      if ( trail_limits_.empty() )
      {
        ok_ = false;
        return result::unsatisfiable;
      }
      std::vector<literal> learnt;
      std::uint32_t backtrack_level = 0;
      analyze( conflict, learnt, backtrack_level );
      // Never backtrack above the assumption levels.
      const auto assumption_levels = static_cast<std::uint32_t>(
          std::min<std::size_t>( assumptions.size(), trail_limits_.size() ) );
      if ( backtrack_level < assumption_levels )
      {
        // The conflict depends only on assumptions: UNSAT under assumptions.
        if ( learnt.size() == 1u && level_[lit_var( learnt[0] )] == 0 )
        {
          backtrack( 0 );
          if ( !add_clause( { learnt[0] } ) )
          {
            return result::unsatisfiable;
          }
          continue;
        }
        backtrack( 0 );
        return result::unsatisfiable;
      }
      backtrack( backtrack_level );
      if ( learnt.size() == 1u )
      {
        enqueue( learnt[0], -1 );
      }
      else
      {
        const auto index = static_cast<std::uint32_t>( clauses_.size() );
        clauses_.push_back( { learnt } );
        attach_clause( index );
        enqueue( learnt[0], static_cast<std::int32_t>( index ) );
      }
      decay_activities();
      if ( conflict_budget != 0 && conflicts_ - start_conflicts >= conflict_budget )
      {
        backtrack( 0 );
        return result::unknown;
      }
      if ( conflicts_since_restart >= restart_limit )
      {
        conflicts_since_restart = 0;
        restart_limit = restart_limit + restart_limit / 2u;
        backtrack( 0 );
      }
      continue;
    }

    // Apply pending assumptions as decisions.
    if ( trail_limits_.size() < assumptions.size() )
    {
      const auto a = assumptions[trail_limits_.size()];
      const auto v = value( a );
      if ( v == lbool::false_value )
      {
        backtrack( 0 );
        return result::unsatisfiable;
      }
      trail_limits_.push_back( static_cast<std::uint32_t>( trail_.size() ) );
      if ( v == lbool::unassigned )
      {
        enqueue( a, -1 );
      }
      continue;
    }

    const auto branch = pick_branch();
    if ( branch == 0xffffffffu )
    {
      // All variables assigned: model found.
      model_.resize( num_vars() );
      for ( std::uint32_t v = 0; v < num_vars(); ++v )
      {
        model_[v] = assign_[v] == lbool::true_value;
      }
      backtrack( 0 );
      return result::satisfiable;
    }
    ++decisions_;
    trail_limits_.push_back( static_cast<std::uint32_t>( trail_.size() ) );
    enqueue( branch, -1 );
  }
}

} // namespace qsyn::sat
