#include "solver.hpp"

#include <algorithm>
#include <cassert>

namespace qsyn::sat
{

namespace
{

/// Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...) for index i >= 1.
std::uint64_t luby( std::uint64_t i )
{
  // Find the finite subsequence containing index i and the position within.
  std::uint64_t k = 1;
  while ( ( ( std::uint64_t{ 1 } << k ) - 1u ) < i )
  {
    ++k;
  }
  while ( ( ( std::uint64_t{ 1 } << k ) - 1u ) != i )
  {
    i -= ( std::uint64_t{ 1 } << ( k - 1u ) ) - 1u;
    k = 1;
    while ( ( ( std::uint64_t{ 1 } << k ) - 1u ) < i )
    {
      ++k;
    }
  }
  return std::uint64_t{ 1 } << ( k - 1u );
}

} // namespace

std::uint32_t solver::new_var()
{
  const auto v = static_cast<std::uint32_t>( assign_.size() );
  assign_.push_back( lbool::unassigned );
  reason_.push_back( -1 );
  level_.push_back( 0 );
  activity_.push_back( 0.0 );
  phase_.push_back( false );
  seen_.push_back( false );
  watches_.emplace_back();
  watches_.emplace_back();
  heap_pos_.push_back( -1 );
  branchable_.push_back( true );
  heap_insert( v );
  return v;
}

void solver::set_branchable( std::uint32_t var, bool branchable )
{
  branchable_[var] = branchable;
  if ( branchable && !heap_contains( var ) && assign_[var] == lbool::unassigned )
  {
    heap_insert( var );
  }
  if ( !branchable )
  {
    // Lazy removal: pick_branch drops non-branchable pops.  The fallback
    // scan must re-examine it, though.
    fallback_scan_from_ = 0;
  }
}

bool solver::add_clause( std::vector<literal> lits )
{
  if ( !ok_ )
  {
    return false;
  }
  assert( trail_limits_.empty() && "clauses must be added at decision level 0" );
  // Remove duplicate literals and satisfied/falsified simplifications.
  std::sort( lits.begin(), lits.end() );
  lits.erase( std::unique( lits.begin(), lits.end() ), lits.end() );
  std::vector<literal> filtered;
  for ( std::size_t i = 0; i < lits.size(); ++i )
  {
    if ( i + 1u < lits.size() && lits[i + 1u] == lit_negate( lits[i] ) )
    {
      return true; // tautology: contains l and !l
    }
    const auto v = value( lits[i] );
    if ( v == lbool::true_value )
    {
      return true; // already satisfied at level 0
    }
    if ( v == lbool::unassigned )
    {
      filtered.push_back( lits[i] );
    }
  }
  if ( filtered.empty() )
  {
    ok_ = false;
    return false;
  }
  if ( filtered.size() == 1u )
  {
    enqueue( filtered[0], -1 );
    if ( propagate() >= 0 )
    {
      ok_ = false;
      return false;
    }
    return true;
  }
  const auto index = static_cast<std::uint32_t>( clauses_.size() );
  clauses_.push_back( { std::move( filtered ), 0.0, 0, false } );
  attach_clause( index );
  return true;
}

void solver::attach_clause( std::uint32_t index )
{
  const auto& c = clauses_[index].lits;
  watches_[lit_negate( c[0] )].push_back( { index, c[1] } );
  watches_[lit_negate( c[1] )].push_back( { index, c[0] } );
}

void solver::enqueue( literal l, std::int32_t reason )
{
  const auto v = lit_var( l );
  assert( assign_[v] == lbool::unassigned );
  assign_[v] = lit_sign( l ) ? lbool::false_value : lbool::true_value;
  reason_[v] = reason;
  level_[v] = static_cast<std::uint32_t>( trail_limits_.size() );
  trail_.push_back( l );
}

std::int32_t solver::propagate()
{
  while ( propagate_head_ < trail_.size() )
  {
    const auto l = trail_[propagate_head_++];
    ++propagations_;
    auto& watch_list = watches_[l];
    std::size_t keep = 0;
    for ( std::size_t i = 0; i < watch_list.size(); ++i )
    {
      const auto w = watch_list[i];
      if ( value( w.blocker ) == lbool::true_value )
      {
        watch_list[keep++] = w;
        continue;
      }
      auto& lits = clauses_[w.clause_index].lits;
      // Normalize: watched literal being falsified is !l; put it at position 1.
      const auto false_lit = lit_negate( l );
      if ( lits[0] == false_lit )
      {
        std::swap( lits[0], lits[1] );
      }
      assert( lits[1] == false_lit );
      if ( value( lits[0] ) == lbool::true_value )
      {
        watch_list[keep++] = { w.clause_index, lits[0] };
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for ( std::size_t k = 2; k < lits.size(); ++k )
      {
        if ( value( lits[k] ) != lbool::false_value )
        {
          std::swap( lits[1], lits[k] );
          watches_[lit_negate( lits[1] )].push_back( { w.clause_index, lits[0] } );
          moved = true;
          break;
        }
      }
      if ( moved )
      {
        continue;
      }
      // Clause is unit or conflicting.
      watch_list[keep++] = w;
      if ( value( lits[0] ) == lbool::false_value )
      {
        // Conflict: copy back remaining watchers and report.
        for ( std::size_t k = i + 1u; k < watch_list.size(); ++k )
        {
          watch_list[keep++] = watch_list[k];
        }
        watch_list.resize( keep );
        propagate_head_ = trail_.size();
        return static_cast<std::int32_t>( w.clause_index );
      }
      enqueue( lits[0], static_cast<std::int32_t>( w.clause_index ) );
    }
    watch_list.resize( keep );
  }
  return -1;
}

void solver::analyze( std::int32_t conflict, std::vector<literal>& learnt, std::uint32_t& backtrack_level )
{
  learnt.clear();
  learnt.push_back( 0 ); // placeholder for the asserting literal
  const auto current_level = static_cast<std::uint32_t>( trail_limits_.size() );
  std::uint32_t counter = 0;
  literal p = 0;
  bool have_p = false;
  std::size_t trail_index = trail_.size();
  std::vector<std::uint32_t> to_clear;

  for ( ;; )
  {
    bump_clause( static_cast<std::uint32_t>( conflict ) );
    const auto& reason_lits = clauses_[conflict].lits;
    for ( std::size_t i = have_p ? 1u : 0u; i < reason_lits.size(); ++i )
    {
      const auto q = reason_lits[i];
      const auto v = lit_var( q );
      if ( seen_[v] || level_[v] == 0 )
      {
        continue;
      }
      seen_[v] = true;
      to_clear.push_back( v );
      bump_var( v );
      if ( level_[v] == current_level )
      {
        ++counter;
      }
      else
      {
        learnt.push_back( q );
      }
    }
    // Find the next literal on the trail that is marked seen.
    for ( ;; )
    {
      assert( trail_index > 0u );
      p = trail_[--trail_index];
      if ( seen_[lit_var( p )] )
      {
        break;
      }
    }
    seen_[lit_var( p )] = false;
    --counter;
    if ( counter == 0 )
    {
      break;
    }
    // p was implied; continue with its reason clause.  The propagation
    // invariant keeps the implied literal at position 0 (or 1 directly
    // after a watcher renormalization); swapping the two watched positions
    // is safe because both are watched.
    conflict = reason_[lit_var( p )];
    assert( conflict >= 0 );
    auto& rl = clauses_[conflict].lits;
    if ( rl[0] != p )
    {
      assert( rl[1] == p );
      std::swap( rl[0], rl[1] );
    }
    have_p = true;
  }
  learnt[0] = lit_negate( p );

  // Compute backtrack level: second highest level in the learnt clause.
  if ( learnt.size() == 1u )
  {
    backtrack_level = 0;
  }
  else
  {
    std::size_t max_index = 1;
    for ( std::size_t i = 2; i < learnt.size(); ++i )
    {
      if ( level_[lit_var( learnt[i] )] > level_[lit_var( learnt[max_index] )] )
      {
        max_index = i;
      }
    }
    std::swap( learnt[1], learnt[max_index] );
    backtrack_level = level_[lit_var( learnt[1] )];
  }
  for ( const auto v : to_clear )
  {
    seen_[v] = false;
  }
}

void solver::backtrack( std::uint32_t level )
{
  if ( trail_limits_.size() <= level )
  {
    return;
  }
  const auto limit = trail_limits_[level];
  for ( std::size_t i = trail_.size(); i > limit; --i )
  {
    const auto v = lit_var( trail_[i - 1u] );
    phase_[v] = assign_[v] == lbool::true_value;
    assign_[v] = lbool::unassigned;
    reason_[v] = -1;
    if ( branchable_[v] && !heap_contains( v ) )
    {
      heap_insert( v );
    }
  }
  trail_.resize( limit );
  trail_limits_.resize( level );
  propagate_head_ = trail_.size();
  // Unassigning variables invalidates the fallback watermark.
  fallback_scan_from_ = 0;
}

// --- variable order heap -----------------------------------------------------

void solver::heap_insert( std::uint32_t var )
{
  heap_pos_[var] = static_cast<std::int32_t>( heap_.size() );
  heap_.push_back( var );
  heap_sift_up( heap_.size() - 1u );
}

void solver::heap_sift_up( std::size_t i )
{
  const auto var = heap_[i];
  const auto act = activity_[var];
  while ( i > 0 )
  {
    const auto parent = ( i - 1u ) / 2u;
    if ( activity_[heap_[parent]] >= act )
    {
      break;
    }
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>( i );
    i = parent;
  }
  heap_[i] = var;
  heap_pos_[var] = static_cast<std::int32_t>( i );
}

void solver::heap_sift_down( std::size_t i )
{
  const auto var = heap_[i];
  const auto act = activity_[var];
  const auto size = heap_.size();
  for ( ;; )
  {
    std::size_t child = 2u * i + 1u;
    if ( child >= size )
    {
      break;
    }
    if ( child + 1u < size && activity_[heap_[child + 1u]] > activity_[heap_[child]] )
    {
      ++child;
    }
    if ( activity_[heap_[child]] <= act )
    {
      break;
    }
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::int32_t>( i );
    i = child;
  }
  heap_[i] = var;
  heap_pos_[var] = static_cast<std::int32_t>( i );
}

std::uint32_t solver::heap_pop()
{
  const auto top = heap_[0];
  heap_pos_[top] = -1;
  const auto last = heap_.back();
  heap_.pop_back();
  if ( !heap_.empty() )
  {
    heap_[0] = last;
    heap_pos_[last] = 0;
    heap_sift_down( 0 );
  }
  return top;
}

literal solver::pick_branch()
{
  while ( !heap_.empty() )
  {
    const auto v = heap_pop();
    if ( branchable_[v] )
    {
      if ( assign_[v] == lbool::unassigned )
      {
        return phase_[v] ? pos_lit( v ) : neg_lit( v );
      }
    }
    // Non-branchable variables are dropped lazily here.
  }
  // Every branchable variable is assigned.  Usually propagation has by now
  // assigned everything else too (Tseitin cones are propagation-complete
  // from their inputs); the scan below covers the exceptions so a model is
  // never declared with unassigned variables.
  for ( ; fallback_scan_from_ < assign_.size(); ++fallback_scan_from_ )
  {
    const auto v = static_cast<std::uint32_t>( fallback_scan_from_ );
    if ( assign_[v] == lbool::unassigned )
    {
      return phase_[v] ? pos_lit( v ) : neg_lit( v );
    }
  }
  return 0xffffffffu; // sentinel: no unassigned variable
}

void solver::bump_var( std::uint32_t var )
{
  activity_[var] += activity_inc_;
  if ( activity_[var] > 1e100 )
  {
    for ( auto& a : activity_ )
    {
      a *= 1e-100;
    }
    activity_inc_ *= 1e-100;
  }
  if ( heap_contains( var ) )
  {
    heap_sift_up( static_cast<std::size_t>( heap_pos_[var] ) );
  }
}

void solver::decay_activities()
{
  activity_inc_ /= 0.95;
}

void solver::bump_clause( std::uint32_t index )
{
  auto& c = clauses_[index];
  if ( !c.learnt )
  {
    return;
  }
  c.activity += clause_inc_;
  if ( c.activity > 1e20 )
  {
    for ( auto& cl : clauses_ )
    {
      cl.activity *= 1e-20;
    }
    clause_inc_ *= 1e-20;
  }
}

void solver::decay_clause_activities()
{
  clause_inc_ /= 0.999;
}

std::uint32_t solver::compute_lbd( const std::vector<literal>& lits )
{
  ++lbd_stamp_counter_;
  std::uint32_t lbd = 0;
  for ( const auto l : lits )
  {
    const auto lev = level_[lit_var( l )];
    if ( lev >= lbd_stamp_.size() )
    {
      lbd_stamp_.resize( lev + 1u, 0 );
    }
    if ( lbd_stamp_[lev] != lbd_stamp_counter_ )
    {
      lbd_stamp_[lev] = lbd_stamp_counter_;
      ++lbd;
    }
  }
  return lbd;
}

void solver::reduce_db()
{
  assert( trail_limits_.empty() );
  // Level-0 reasons are never dereferenced by analyze() (it skips level-0
  // variables), so they can be dropped before clause indices are remapped.
  for ( const auto l : trail_ )
  {
    reason_[lit_var( l )] = -1;
  }

  // Rank the deletable learned clauses (LBD > 2) worst-first: high LBD,
  // then low activity.
  std::vector<std::uint32_t> deletable;
  for ( std::uint32_t i = 0; i < clauses_.size(); ++i )
  {
    if ( clauses_[i].learnt && clauses_[i].lbd > 2u )
    {
      deletable.push_back( i );
    }
  }
  std::sort( deletable.begin(), deletable.end(), [this]( std::uint32_t a, std::uint32_t b ) {
    if ( clauses_[a].lbd != clauses_[b].lbd )
    {
      return clauses_[a].lbd > clauses_[b].lbd;
    }
    return clauses_[a].activity < clauses_[b].activity;
  } );
  std::vector<bool> drop( clauses_.size(), false );
  for ( std::size_t i = 0; i < deletable.size() / 2u; ++i )
  {
    drop[deletable[i]] = true;
  }

  // Compact the database, simplifying against the permanent level-0
  // assignment on the way: satisfied clauses vanish, falsified literals are
  // stripped.  Propagation is complete, so every surviving clause has at
  // least two unassigned literals.
  std::vector<clause> kept;
  kept.reserve( clauses_.size() );
  for ( std::uint32_t i = 0; i < clauses_.size(); ++i )
  {
    if ( drop[i] )
    {
      continue;
    }
    auto& c = clauses_[i];
    bool satisfied = false;
    std::size_t out = 0;
    for ( std::size_t k = 0; k < c.lits.size(); ++k )
    {
      const auto v = value( c.lits[k] );
      if ( v == lbool::true_value )
      {
        satisfied = true;
        break;
      }
      if ( v == lbool::unassigned )
      {
        c.lits[out++] = c.lits[k];
      }
    }
    if ( satisfied )
    {
      continue;
    }
    c.lits.resize( out );
    assert( c.lits.size() >= 2u );
    kept.push_back( std::move( c ) );
  }

  std::size_t new_learnts = 0;
  for ( const auto& c : kept )
  {
    new_learnts += c.learnt ? 1u : 0u;
  }
  learnts_deleted_ += num_learnts_ - new_learnts;
  num_learnts_ = new_learnts;
  clauses_ = std::move( kept );
  for ( auto& wl : watches_ )
  {
    wl.clear();
  }
  for ( std::uint32_t i = 0; i < clauses_.size(); ++i )
  {
    attach_clause( i );
  }
}

result solver::solve( const std::vector<literal>& assumptions, std::uint64_t conflict_budget,
                      std::uint64_t decision_budget )
{
  if ( !ok_ )
  {
    return result::unsatisfiable;
  }
  if ( !deadline_.unlimited() && deadline_.expired() )
  {
    return result::unknown;
  }
  backtrack( 0 );
  if ( propagate() >= 0 )
  {
    ok_ = false;
    return result::unsatisfiable;
  }

  std::uint64_t restart_index = 1;
  std::uint64_t restart_limit = 100u * luby( restart_index );
  std::uint64_t conflicts_since_restart = 0;
  const std::uint64_t start_conflicts = conflicts_;
  const std::uint64_t start_decisions = decisions_;
  if ( reduce_limit_ == 0 )
  {
    reduce_limit_ = std::max<std::uint64_t>( reduce_base_, clauses_.size() / 3u );
  }

  for ( ;; )
  {
    const auto conflict = propagate();
    if ( conflict >= 0 )
    {
      ++conflicts_;
      ++conflicts_since_restart;
      if ( trail_limits_.empty() )
      {
        ok_ = false;
        return result::unsatisfiable;
      }
      std::vector<literal> learnt;
      std::uint32_t backtrack_level = 0;
      analyze( conflict, learnt, backtrack_level );
      // A backjump below the assumption levels pops assumptions off the
      // trail; the loop below re-applies them in order.  (UNSAT under
      // assumptions is detected only when re-applying a now-falsified
      // assumption — a low backjump level alone proves nothing.)
      backtrack( backtrack_level );
      if ( learnt.size() == 1u )
      {
        enqueue( learnt[0], -1 );
      }
      else
      {
        const auto index = static_cast<std::uint32_t>( clauses_.size() );
        const auto lbd = compute_lbd( learnt );
        clauses_.push_back( { learnt, clause_inc_, lbd, true } );
        ++num_learnts_;
        attach_clause( index );
        enqueue( learnt[0], static_cast<std::int32_t>( index ) );
      }
      decay_activities();
      decay_clause_activities();
      if ( conflict_budget != 0 && conflicts_ - start_conflicts >= conflict_budget )
      {
        backtrack( 0 );
        return result::unknown;
      }
      if ( !deadline_.unlimited() && deadline_.expired() )
      {
        backtrack( 0 );
        return result::unknown;
      }
      if ( conflicts_since_restart >= restart_limit )
      {
        conflicts_since_restart = 0;
        ++restarts_;
        ++restart_index;
        restart_limit = 100u * luby( restart_index );
        backtrack( 0 );
        if ( deletion_enabled_ && num_learnts_ > reduce_limit_ )
        {
          if ( propagate() >= 0 )
          {
            ok_ = false;
            return result::unsatisfiable;
          }
          reduce_db();
          reduce_limit_ += reduce_limit_ / 3u;
        }
      }
      continue;
    }

    // Apply pending assumptions as decisions.
    if ( trail_limits_.size() < assumptions.size() )
    {
      const auto a = assumptions[trail_limits_.size()];
      const auto v = value( a );
      if ( v == lbool::false_value )
      {
        backtrack( 0 );
        return result::unsatisfiable;
      }
      trail_limits_.push_back( static_cast<std::uint32_t>( trail_.size() ) );
      if ( v == lbool::unassigned )
      {
        enqueue( a, -1 );
      }
      continue;
    }

    if ( decision_budget != 0 && decisions_ - start_decisions >= decision_budget )
    {
      backtrack( 0 );
      return result::unknown;
    }
    if ( !deadline_.unlimited() && ( decisions_ - start_decisions ) % 1024u == 0u && deadline_.expired() )
    {
      backtrack( 0 );
      return result::unknown;
    }
    const auto branch = pick_branch();
    if ( branch == 0xffffffffu )
    {
      // All variables assigned: model found.
      model_.resize( num_vars() );
      for ( std::uint32_t v = 0; v < num_vars(); ++v )
      {
        model_[v] = assign_[v] == lbool::true_value;
      }
      backtrack( 0 );
      return result::satisfiable;
    }
    ++decisions_;
    trail_limits_.push_back( static_cast<std::uint32_t>( trail_.size() ) );
    enqueue( branch, -1 );
  }
}

} // namespace qsyn::sat
