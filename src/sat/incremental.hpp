/// \file incremental.hpp
/// \brief Incremental, structurally-hashed SAT equivalence engine.
///
/// `incremental_cec` replaces the one-monolithic-miter-per-call scheme of
/// `check_equivalence` (cnf.hpp) for the hot verification paths.  One engine
/// instance owns ONE persistent CDCL solver and an internal AND-node store;
/// every `check()` call encodes its two AIGs *into the union store* through
/// hash-consing:
///
///  * **Shared structural hashing.**  AND nodes are hash-consed across both
///    sides of a miter AND across successive calls, so identical
///    substructure — the spec cone shared by every configuration of a DSE
///    sweep, or logic shared between an implementation and its spec — is
///    encoded into CNF exactly once.  Outputs whose cones collapse to the
///    same internal literal are proven equivalent with zero solver work.
///  * **Per-output miters under assumptions.**  Instead of one global OR
///    over all output XORs, each output pair gets its own miter activated by
///    a fresh assumption literal on the persistent solver.  UNSAT retires
///    the assumption and asserts the output equality as a permanent lemma
///    (sound: the trigger occurs nowhere else, so UNSAT under the
///    assumption proves the equality from the encoding alone), which
///    accelerates every later call that reaches the same cone.
///  * **Simulation-guided fraiging.**  Every internal node carries a 64-way
///    bit-parallel signature (the block-simulation idiom of
///    `evaluate_circuit_block`: one 64-bit pattern word per signature
///    column, word-AND/word-NOT over fanins).  Signature-equal node pairs
///    become candidate equivalences that are proven or refuted — free
///    structural/window proofs first, then a budgeted SAT attempt on the
///    persistent solver — *before* the output miters run; proven pairs are
///    merged (class representative + permanent equality clauses), so the
///    final miters see an already-swept union graph.  Refuting models are
///    fed back as fresh simulation patterns (counterexample-guided
///    refinement), splitting the false candidate classes wholesale.
///  * **CDCL upgrades** live in solver.hpp: activity/LBD-scored learned
///    clause deletion and Luby restarts keep the persistent solver healthy
///    across a long sequence of checks.
///
/// ## Counterexample contract
///
/// `check()` reports the *lowest-indexed* differing output
/// (`failing_output`) together with one input assignment on which the two
/// AIGs differ at that output.  On the narrow-design simulation path the
/// assignment is deterministic (the lowest distinguishing input column);
/// on the solver path it is engine-dependent — but it is always real: it
/// is extracted from an exhaustive simulation column or from the model of
/// the failing per-output miter, and tests/test_sat.cpp round-trips it
/// through both networks.  When the networks are equivalent, `check()` is
/// a proof (exhaustive simulation, UNSAT of every per-output miter, or
/// structural identity).
///
/// ## Thread safety
///
/// `check()` is serialized through an internal mutex: concurrent calls from
/// a DSE thread pool are safe and observe each other's learned structure.
/// Statistics accessors take the same mutex.  The engine may outlive the
/// AIGs passed to `check()` (nothing is retained by reference).

#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "../logic/aig.hpp"
#include "solver.hpp"

namespace qsyn::sat
{

/// Tuning knobs of the incremental equivalence engine.
struct cec_options
{
  /// Process signature-equal node pairs (fraig candidates) before the
  /// output miters: structural merge modulo classes, then the exhaustive
  /// 64-way window proof, then a budgeted SAT attempt on the persistent
  /// solver.  Refuting models become new simulation patterns that split
  /// the signature classes (counterexample-guided refinement), so one
  /// false candidate pays for eliminating many.
  bool fraiging = true;
  /// Conflict budget of the per-candidate SAT attempt (on the persistent
  /// solver).  0 (the default) disables the SAT attempt: candidates are
  /// then proven only by the free structural/window paths and dropped
  /// otherwise, which bounds fraiging overhead per check — measured on the
  /// NEWTON(8) miters, SAT-backed candidate proving costs far more than
  /// the final miters it saves.
  std::uint64_t fraig_conflict_budget = 0;
  /// Expansion depth of the 64-way window proof used as a *fraig hint*
  /// (see incremental.cpp, `window_proves_equal`).
  unsigned fraig_window_depth = 8;
  /// Node cap of one fraig-hint window expansion.
  std::size_t fraig_window_nodes = 96;
  /// Upper bound on fraig candidates examined per `check()` (bounds the
  /// hint overhead; surplus candidates stay queued for later checks).
  std::size_t max_fraig_candidates = 2048;
  /// Discharge output miters of designs with at most this many primary
  /// inputs by an exhaustive bit-parallel simulation pass over the union
  /// cone (`try_full_simulation`): SIMD-wide blocks sized to 2^pis
  /// enumerate every assignment, and all output pairs are proven or
  /// refuted at once without the solver.  14 is the hard ceiling (256
  /// words per node) and larger values are clamped to it; the default
  /// stays 12 — the historical gate — so raising to 13/14 is an explicit
  /// opt-in; lower it to force the solver path, e.g. in tests.
  unsigned output_window_max_pis = 12;
  /// Restrict solver decisions to primary-input (and miter-auxiliary)
  /// variables.  Sound either way (Tseitin cones propagate completely
  /// from their inputs); off by default — on the wide hierarchical miters
  /// every full descent then re-propagates the whole union encoding,
  /// which measures ~2x slower than free VSIDS branching.
  bool decide_inputs_only = false;
  /// A check whose encoding added at least this many fresh AND nodes tries
  /// budgeted per-output miters before the batched fallback (large unions
  /// tend to be propagation-easy per output, and the batch would search
  /// one huge instance); smaller checks go straight to the batch.
  std::size_t per_output_node_threshold = 30000;
  /// 64-bit pattern words per node signature (n words = 64n simulation
  /// patterns backing the candidate detection).
  unsigned num_sig_words = 4;
  /// Seed of the signature pattern generator (fixed => deterministic
  /// candidate discovery).
  std::uint64_t sim_seed = 0x9e3779b97f4a7c15ull;
  /// Conflict / decision budgets of the per-output miter attempt that
  /// precedes the batched fallback miter (0 = unlimited).
  std::uint64_t output_conflict_budget = 100;
  std::uint64_t output_decision_budget = 100000;
  /// Learned-clause deletion on the persistent solver (performance only;
  /// verdicts are unaffected — tests/test_sat.cpp checks on/off agreement).
  bool clause_deletion = true;
  /// First-reduction threshold forwarded to solver::set_reduce_base.
  std::uint32_t reduce_base = 2000;
};

/// Per-check resource limits (all default to unlimited).  The wall-clock
/// deadline is installed on the persistent solver for the duration of the
/// check; the conflict/propagation budgets bound the *additional* work this
/// check may spend on the shared solver.
struct check_limits
{
  deadline stop;
  std::uint64_t conflict_budget = 0;    ///< extra conflicts allowed (0 = unlimited)
  std::uint64_t propagation_budget = 0; ///< extra propagations allowed (0 = unlimited)

  [[nodiscard]] bool unlimited() const
  {
    return stop.unlimited() && conflict_budget == 0 && propagation_budget == 0;
  }
};

/// Outcome of one equivalence check.
struct cec_outcome
{
  bool equivalent = false;
  /// False when the check ran out of budget/deadline before reaching a
  /// verdict; `equivalent`/`failing_output` are then meaningless.  Checks
  /// with unlimited limits always resolve.
  bool resolved = true;
  /// Lowest-indexed output on which the networks differ.
  std::optional<unsigned> failing_output;
  /// Input assignment distinguishing the networks at `failing_output`.
  /// May be absent on a budgeted check that proved a difference but could
  /// not reconstruct a model before the budget ran out.
  std::optional<std::vector<bool>> counterexample;
};

/// Cumulative engine statistics (across all checks of the instance).
struct cec_stats
{
  std::size_t checks = 0;
  std::size_t nodes = 0;            ///< union AND nodes created
  std::size_t strash_hits = 0;      ///< AND lookups served by hash-consing
  std::size_t structural_outputs = 0; ///< output pairs equal by structure alone
  std::size_t sat_proven_outputs = 0; ///< output pairs proven by a miter solve
  std::size_t fraig_candidates = 0; ///< signature-equal pairs attempted
  std::size_t fraig_merges = 0;     ///< candidate pairs proven and merged
  std::size_t fraig_window_proofs = 0; ///< merges proven by the 64-way window alone
  std::size_t fraig_refinements = 0; ///< counterexample-guided class splits
  std::uint64_t solver_conflicts = 0;
};

/// Incremental equivalence engine over one persistent solver (see file
/// comment).  Construct once per design / sweep, call `check()` per
/// configuration.
class incremental_cec
{
public:
  explicit incremental_cec( cec_options options = {} );

  /// Checks whether `a` and `b` (same PI/PO interface; throws
  /// std::invalid_argument otherwise) implement the same multi-output
  /// function.  Successive calls may use different networks — and different
  /// interface sizes — and reuse everything already encoded.  Thread-safe.
  cec_outcome check( const aig_network& a, const aig_network& b );

  /// Budgeted variant: stops cooperatively at the limits and reports
  /// `resolved = false` instead of hanging.  Structure learned before the
  /// budget ran out (lemmas, merges, signatures) is kept, so a later retry
  /// resumes instead of restarting.
  cec_outcome check( const aig_network& a, const aig_network& b, const check_limits& limits );

  cec_stats stats() const;
  const cec_options& options() const { return options_; }

private:
  /// Internal literal: 2 * node + complement; node 0 is constant false.
  using ilit = std::uint32_t;

  struct inode
  {
    ilit fanin0 = 0;
    ilit fanin1 = 0;
  };

  ilit find( ilit l ) const;
  literal to_sat( ilit l ) const;
  void ensure_pis( unsigned count );
  ilit create_and( ilit a, ilit b );
  std::vector<ilit> encode( const aig_network& aig );
  void register_signature( std::uint32_t node );
  void run_fraig();
  /// Captures the PI values of the solver's current model as one more
  /// simulation pattern for counterexample-guided class refinement.
  void collect_cex_pattern();
  /// Folds the collected counterexample patterns into one signature word,
  /// re-simulates every node on it, and rebuilds the signature classes
  /// (and the candidate queue) from the refined signatures.
  void refine_signatures();
  void merge( ilit keep, ilit drop );
  void assert_equal( ilit a, ilit b );
  /// Two-directional implication check under assumptions: (a & !b) then
  /// (!a & b).  UNSAT twice proves a == b; a satisfiable direction leaves
  /// its model (a counterexample to the equality) in the solver.
  result prove_equal( ilit a, ilit b, std::uint64_t conflict_budget,
                      std::uint64_t decision_budget );
  /// Merges two nodes whose fanins already resolve to the same equivalence
  /// classes — zero solver work.  Returns true if a merge happened.
  bool try_structural_merge( ilit a, ilit b );
  /// Exhaustive 64-way window proof: evaluates both cones over the free
  /// values of at most twelve frontier equivalence classes (projection
  /// patterns, word-parallel).  true => a == b (sound; never refutes).
  /// `depth_cap` / `node_cap` bound the expansion: small caps make a cheap
  /// fraig hint, unbounded caps on a <= 12-PI design make the window an
  /// exhaustive proof of the whole output pair.
  bool window_proves_equal( ilit a, ilit b, unsigned depth_cap, std::size_t node_cap );
  /// Narrow-design fast path: one linear, bit-parallel simulation pass over
  /// the raw output cones enumerates all 2^pis <= 16384 input assignments
  /// (up to 256 words of projection patterns per node, evaluated through
  /// the SIMD-wide AND kernel) and decides EVERY output
  /// pair of the check at once — proofs are recorded as permanent
  /// equalities, a difference yields the lowest-indexed failing output and
  /// its lowest distinguishing input column as the counterexample.
  /// Returns true if the outcome was decided (always, when pis fits).
  bool try_full_simulation( unsigned num_pis, const std::vector<ilit>& outputs_a,
                            const std::vector<ilit>& outputs_b, cec_outcome& out );

  cec_options options_;
  solver solver_;
  std::vector<inode> nodes_;       ///< [0] = constant false; PIs and ANDs follow
  std::vector<literal> node_sat_;  ///< positive solver literal per node
  std::vector<ilit> rep_;          ///< equivalence-class representative per node
  std::vector<std::uint32_t> pi_nodes_; ///< PI index -> node id
  std::vector<std::uint64_t> sigs_; ///< num_sig_words words per node
  std::unordered_map<std::uint64_t, std::uint32_t> strash_; ///< exact (fanin0, fanin1) key
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> sig_classes_;
  std::vector<std::pair<std::uint32_t, ilit>> fraig_pending_; ///< (node, candidate)
  std::size_t fraig_cursor_ = 0; ///< next fraig_pending_ entry to process
  std::unordered_set<std::uint64_t> fraig_refuted_; ///< canonical pair keys
  std::vector<std::uint64_t> cex_patterns_; ///< one word per PI, refinement buffer
  unsigned cex_count_ = 0;                  ///< collected patterns (bits used)
  unsigned refine_slot_ = 0;                ///< signature word replaced next
  std::uint64_t sig_rng_state_ = 0;
  cec_stats stats_;
  mutable std::mutex mutex_;
};

} // namespace qsyn::sat
