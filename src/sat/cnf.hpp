/// \file cnf.hpp
/// \brief Tseitin encoding of AIGs and one-shot SAT-based combinational
/// equivalence checking.
///
/// The paper verifies every synthesized reversible circuit against its
/// specification with ABC's `cec`.  `check_equivalence` is the *monolithic*
/// form of that capability: both AIGs are encoded from scratch into a fresh
/// solver and one global miter (the OR over all output XORs) is solved;
/// UNSAT proves equivalence, a model is a counterexample input assignment.
/// It is retained as the simple reference engine — the verification tiers
/// and the DSE sweeps run on the incremental, structurally-hashed engine in
/// incremental.hpp, which `bench_verify` measures against this one.

#pragma once

#include <optional>
#include <vector>

#include "../logic/aig.hpp"
#include "solver.hpp"

namespace qsyn::sat
{

/// Encodes an AIG into `s`.  Returns one solver literal per AIG node
/// (indexed by node id); PO literals can be derived with `lit_not_cond`.
std::vector<literal> encode_aig( const aig_network& aig, solver& s );

/// Result of a combinational equivalence check.
struct cec_result
{
  bool equivalent = false;
  /// Counterexample input assignment if not equivalent.
  std::optional<std::vector<bool>> counterexample;
};

/// Checks whether two AIGs with the same number of PIs / POs implement the
/// same multi-output function.
cec_result check_equivalence( const aig_network& a, const aig_network& b );

} // namespace qsyn::sat
