/// \file solver.hpp
/// \brief A CDCL SAT solver.
///
/// The solver backs combinational equivalence checking (the paper verifies
/// every synthesized circuit with ABC's `cec`) and SAT-based sanity checks
/// inside the logic optimizer.  It is a classic conflict-driven solver:
/// two-watched-literal propagation, first-UIP clause learning, VSIDS
/// activities on a binary max-heap with phase saving, Luby restarts, and
/// activity/LBD-scored learned-clause deletion (glue clauses with LBD <= 2
/// are kept forever; the rest are halved whenever the learned database
/// outgrows a geometrically growing limit).  Deletion can be disabled with
/// `set_clause_deletion(false)` — verdicts must not change, which
/// tests/test_sat.cpp checks on randomized miters.
///
/// ## Incremental use
///
/// The solver is designed to be *kept alive* across many `solve()` calls:
/// clauses and variables can be added between calls (at decision level 0),
/// and `solve()` accepts a list of assumption literals that hold for that
/// call only.  `result::unsatisfiable` under assumptions does not poison the
/// solver — it remains usable, and anything learned (including level-0
/// units) carries over to later calls.  This is the substrate of the
/// incremental equivalence engine in incremental.hpp, which solves one
/// per-output miter per assumption instead of one monolithic miter per
/// instance.
///
/// ## Thread safety
///
/// A `solver` instance is NOT thread-safe; callers must serialize access
/// (the incremental engine does so with an internal mutex).

#pragma once

#include <cstdint>
#include <vector>

#include "../common/budget.hpp"

namespace qsyn::sat
{

/// Literal encoding: 2 * var + sign (sign = 1 means negated).
using literal = std::uint32_t;

inline literal pos_lit( std::uint32_t var ) { return var << 1; }
inline literal neg_lit( std::uint32_t var ) { return ( var << 1 ) | 1u; }
inline literal lit_negate( literal l ) { return l ^ 1u; }
inline std::uint32_t lit_var( literal l ) { return l >> 1; }
inline bool lit_sign( literal l ) { return l & 1u; }

/// Solver outcome.
enum class result
{
  satisfiable,
  unsatisfiable,
  unknown ///< conflict budget exhausted
};

/// Conflict-driven clause-learning SAT solver.
class solver
{
public:
  solver() = default;

  /// Allocates a fresh variable and returns its index.
  std::uint32_t new_var();
  std::uint32_t num_vars() const { return static_cast<std::uint32_t>( assign_.size() ); }

  /// Adds a clause (vector of literals).  Returns false if the clause is
  /// trivially conflicting at level 0 (solver becomes permanently UNSAT).
  /// Must be called outside of `solve()` (decision level 0).
  bool add_clause( std::vector<literal> clause );

  /// Solves under the given assumptions.  UNSAT under assumptions leaves
  /// the solver usable for further `add_clause` / `solve` calls.
  /// `conflict_budget` / `decision_budget` (0 = unlimited) bound the search
  /// and make the call return `result::unknown` when exhausted — the
  /// incremental equivalence engine uses a small decision budget to keep
  /// speculative fraiging checks from walking the whole variable range.
  result solve( const std::vector<literal>& assumptions = {}, std::uint64_t conflict_budget = 0,
                std::uint64_t decision_budget = 0 );

  /// Value of a variable in the last satisfying model.
  bool model_value( std::uint32_t var ) const { return model_[var]; }

  /// Marks a variable as (non-)branchable.  Non-branchable variables are
  /// never picked as decisions but still participate in propagation,
  /// conflict analysis, and models; if propagation ever leaves one
  /// unassigned after all branchable variables are set, a fallback scan
  /// decides it, so verdicts are unaffected by any marking.  The
  /// incremental equivalence engine marks Tseitin AND outputs
  /// non-branchable (a full input assignment propagates every internal
  /// node), which shrinks the decision space of a miter from the whole
  /// encoding to the primary inputs.  Default: branchable.
  void set_branchable( std::uint32_t var, bool branchable );

  /// Sets a cooperative wall-clock deadline polled at the conflict and
  /// decision checkpoints of `solve()` (and at solve entry, so an already
  /// expired deadline returns promptly).  An expired deadline makes
  /// `solve()` return `result::unknown`, exactly like an exhausted
  /// conflict budget.  A default-constructed deadline (the default) never
  /// expires.
  void set_deadline( const deadline& d ) { deadline_ = d; }

  /// Enables/disables learned-clause deletion (default: enabled).  Deletion
  /// is a performance feature only; verdicts are unaffected.
  void set_clause_deletion( bool enabled ) { deletion_enabled_ = enabled; }
  /// Learned-clause count that triggers the first database reduction (the
  /// limit then grows geometrically).  Exposed so tests can force frequent
  /// reductions on small instances.
  void set_reduce_base( std::uint32_t base ) { reduce_base_ = base; }

  std::uint64_t num_conflicts() const { return conflicts_; }
  std::uint64_t num_decisions() const { return decisions_; }
  std::uint64_t num_propagations() const { return propagations_; }
  std::uint64_t num_restarts() const { return restarts_; }
  std::uint64_t num_learnts_deleted() const { return learnts_deleted_; }
  std::size_t num_learnts() const { return num_learnts_; }
  std::size_t num_clauses() const { return clauses_.size(); }

private:
  enum class lbool : std::int8_t
  {
    unassigned = 0,
    true_value = 1,
    false_value = -1
  };

  struct clause
  {
    std::vector<literal> lits;
    double activity = 0.0;     ///< learned clauses only
    std::uint32_t lbd = 0;     ///< literal block distance at learning time
    bool learnt = false;
  };

  struct watcher
  {
    std::uint32_t clause_index;
    literal blocker;
  };

  lbool value( literal l ) const
  {
    const auto v = assign_[lit_var( l )];
    if ( v == lbool::unassigned )
    {
      return lbool::unassigned;
    }
    const bool is_true = ( v == lbool::true_value ) != lit_sign( l );
    return is_true ? lbool::true_value : lbool::false_value;
  }

  void enqueue( literal l, std::int32_t reason );
  /// Propagates pending assignments; returns conflicting clause index or -1.
  std::int32_t propagate();
  void analyze( std::int32_t conflict, std::vector<literal>& learnt, std::uint32_t& backtrack_level );
  void backtrack( std::uint32_t level );
  literal pick_branch();
  void bump_var( std::uint32_t var );
  void decay_activities();
  void bump_clause( std::uint32_t index );
  void decay_clause_activities();
  std::uint32_t compute_lbd( const std::vector<literal>& lits );
  void attach_clause( std::uint32_t index );
  /// Deletes the less useful half of the learned clauses and simplifies the
  /// database against the level-0 assignment.  Must run at decision level 0
  /// with propagation complete.
  void reduce_db();

  // Variable-order max-heap on activity_.
  bool heap_contains( std::uint32_t var ) const
  {
    return heap_pos_[var] >= 0;
  }
  void heap_insert( std::uint32_t var );
  void heap_sift_up( std::size_t i );
  void heap_sift_down( std::size_t i );
  std::uint32_t heap_pop();

  std::vector<clause> clauses_;
  std::vector<std::vector<watcher>> watches_; ///< indexed by literal
  std::vector<lbool> assign_;                 ///< per variable
  std::vector<std::int32_t> reason_;          ///< clause index or -1 (decision)
  std::vector<std::uint32_t> level_;
  std::vector<literal> trail_;
  std::vector<std::uint32_t> trail_limits_;
  std::size_t propagate_head_ = 0;
  std::vector<double> activity_;
  std::vector<bool> phase_;
  std::vector<bool> branchable_;
  std::size_t fallback_scan_from_ = 0; ///< pick_branch fallback watermark
  double activity_inc_ = 1.0;
  double clause_inc_ = 1.0;
  bool ok_ = true;
  std::vector<bool> model_;
  std::vector<bool> seen_; ///< scratch for analyze()
  std::vector<std::uint32_t> heap_;      ///< variable order heap (max on activity)
  std::vector<std::int32_t> heap_pos_;   ///< var -> heap slot or -1
  std::vector<std::uint64_t> lbd_stamp_; ///< per level, for compute_lbd()
  std::uint64_t lbd_stamp_counter_ = 0;

  deadline deadline_;
  bool deletion_enabled_ = true;
  std::uint32_t reduce_base_ = 2000;
  std::uint64_t reduce_limit_ = 0; ///< 0 = not yet initialized
  std::size_t num_learnts_ = 0;
  std::uint64_t learnts_deleted_ = 0;

  std::uint64_t conflicts_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t propagations_ = 0;
  std::uint64_t restarts_ = 0;
};

} // namespace qsyn::sat
