/// \file solver.hpp
/// \brief A CDCL SAT solver.
///
/// The solver backs combinational equivalence checking (the paper verifies
/// every synthesized circuit with ABC's `cec`) and SAT-based sanity checks
/// inside the logic optimizer.  It is a classic conflict-driven solver:
/// two-watched-literal propagation, first-UIP clause learning, VSIDS-style
/// activities with phase saving, and geometric restarts.  Clause deletion is
/// omitted — instances produced by our flows are small enough that learned
/// clauses comfortably fit in memory.

#pragma once

#include <cstdint>
#include <vector>

namespace qsyn::sat
{

/// Literal encoding: 2 * var + sign (sign = 1 means negated).
using literal = std::uint32_t;

inline literal pos_lit( std::uint32_t var ) { return var << 1; }
inline literal neg_lit( std::uint32_t var ) { return ( var << 1 ) | 1u; }
inline literal lit_negate( literal l ) { return l ^ 1u; }
inline std::uint32_t lit_var( literal l ) { return l >> 1; }
inline bool lit_sign( literal l ) { return l & 1u; }

/// Solver outcome.
enum class result
{
  satisfiable,
  unsatisfiable,
  unknown ///< conflict budget exhausted
};

/// Conflict-driven clause-learning SAT solver.
class solver
{
public:
  solver() = default;

  /// Allocates a fresh variable and returns its index.
  std::uint32_t new_var();
  std::uint32_t num_vars() const { return static_cast<std::uint32_t>( assign_.size() ); }

  /// Adds a clause (vector of literals).  Returns false if the clause is
  /// trivially conflicting at level 0 (solver becomes permanently UNSAT).
  bool add_clause( std::vector<literal> clause );

  /// Solves under the given assumptions.
  result solve( const std::vector<literal>& assumptions = {}, std::uint64_t conflict_budget = 0 );

  /// Value of a variable in the last satisfying model.
  bool model_value( std::uint32_t var ) const { return model_[var]; }

  std::uint64_t num_conflicts() const { return conflicts_; }
  std::uint64_t num_decisions() const { return decisions_; }
  std::uint64_t num_propagations() const { return propagations_; }

private:
  enum class lbool : std::int8_t
  {
    unassigned = 0,
    true_value = 1,
    false_value = -1
  };

  struct clause
  {
    std::vector<literal> lits;
  };

  struct watcher
  {
    std::uint32_t clause_index;
    literal blocker;
  };

  lbool value( literal l ) const
  {
    const auto v = assign_[lit_var( l )];
    if ( v == lbool::unassigned )
    {
      return lbool::unassigned;
    }
    const bool is_true = ( v == lbool::true_value ) != lit_sign( l );
    return is_true ? lbool::true_value : lbool::false_value;
  }

  void enqueue( literal l, std::int32_t reason );
  /// Propagates pending assignments; returns conflicting clause index or -1.
  std::int32_t propagate();
  void analyze( std::int32_t conflict, std::vector<literal>& learnt, std::uint32_t& backtrack_level );
  void backtrack( std::uint32_t level );
  literal pick_branch();
  void bump_var( std::uint32_t var );
  void decay_activities();
  void attach_clause( std::uint32_t index );

  std::vector<clause> clauses_;
  std::vector<std::vector<watcher>> watches_; ///< indexed by literal
  std::vector<lbool> assign_;                 ///< per variable
  std::vector<std::int32_t> reason_;          ///< clause index or -1 (decision)
  std::vector<std::uint32_t> level_;
  std::vector<literal> trail_;
  std::vector<std::uint32_t> trail_limits_;
  std::size_t propagate_head_ = 0;
  std::vector<double> activity_;
  std::vector<bool> phase_;
  double activity_inc_ = 1.0;
  bool ok_ = true;
  std::vector<bool> model_;
  std::vector<bool> seen_; ///< scratch for analyze()

  std::uint64_t conflicts_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t propagations_ = 0;
};

} // namespace qsyn::sat
