#include "cnf.hpp"

#include <cassert>
#include <stdexcept>

namespace qsyn::sat
{

std::vector<literal> encode_aig( const aig_network& aig, solver& s )
{
  std::vector<literal> node_lits( aig.num_nodes() );
  // Constant node: a fresh variable forced to false.
  const auto const_var = s.new_var();
  s.add_clause( { neg_lit( const_var ) } );
  node_lits[0] = pos_lit( const_var );
  for ( unsigned i = 0; i < aig.num_pis(); ++i )
  {
    node_lits[i + 1u] = pos_lit( s.new_var() );
  }
  const auto aig_to_sat = [&]( aig_lit l ) {
    const auto base = node_lits[lit_node( l )];
    return lit_complemented( l ) ? lit_negate( base ) : base;
  };
  for ( std::uint32_t n = aig.num_pis() + 1u; n < aig.num_nodes(); ++n )
  {
    const auto out = pos_lit( s.new_var() );
    node_lits[n] = out;
    const auto a = aig_to_sat( aig.fanin0( n ) );
    const auto b = aig_to_sat( aig.fanin1( n ) );
    // out <-> a & b
    s.add_clause( { lit_negate( out ), a } );
    s.add_clause( { lit_negate( out ), b } );
    s.add_clause( { out, lit_negate( a ), lit_negate( b ) } );
  }
  return node_lits;
}

cec_result check_equivalence( const aig_network& a, const aig_network& b )
{
  if ( a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos() )
  {
    throw std::invalid_argument( "check_equivalence: interface mismatch" );
  }
  solver s;
  const auto lits_a = encode_aig( a, s );
  const auto lits_b = encode_aig( b, s );
  // Tie the PIs together.
  for ( unsigned i = 0; i < a.num_pis(); ++i )
  {
    const auto la = lits_a[i + 1u];
    const auto lb = lits_b[i + 1u];
    s.add_clause( { lit_negate( la ), lb } );
    s.add_clause( { la, lit_negate( lb ) } );
  }
  const auto to_sat = [&]( const std::vector<literal>& node_lits, aig_lit l ) {
    const auto base = node_lits[lit_node( l )];
    return lit_complemented( l ) ? lit_negate( base ) : base;
  };
  // Miter: OR over all pairwise output XORs must be satisfiable for a
  // difference to exist.
  std::vector<literal> any_diff;
  for ( unsigned o = 0; o < a.num_pos(); ++o )
  {
    const auto oa = to_sat( lits_a, a.po( o ) );
    const auto ob = to_sat( lits_b, b.po( o ) );
    const auto diff = pos_lit( s.new_var() );
    // diff -> (oa xor ob); the reverse direction is unnecessary for the miter.
    s.add_clause( { lit_negate( diff ), oa, ob } );
    s.add_clause( { lit_negate( diff ), lit_negate( oa ), lit_negate( ob ) } );
    any_diff.push_back( diff );
  }
  s.add_clause( any_diff );
  const auto res = s.solve();
  cec_result out;
  if ( res == result::unsatisfiable )
  {
    out.equivalent = true;
    return out;
  }
  assert( res == result::satisfiable );
  std::vector<bool> cex( a.num_pis() );
  for ( unsigned i = 0; i < a.num_pis(); ++i )
  {
    cex[i] = s.model_value( lit_var( lits_a[i + 1u] ) );
  }
  out.counterexample = std::move( cex );
  return out;
}

} // namespace qsyn::sat
