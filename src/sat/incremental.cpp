#include "incremental.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "../common/bits.hpp"
#include "../reversible/wide_sim.hpp"

namespace qsyn::sat
{

namespace
{

/// splitmix64 step: deterministic signature pattern stream.
std::uint64_t next_pattern( std::uint64_t& state )
{
  state += 0x9e3779b97f4a7c15ull;
  auto z = state;
  z = ( z ^ ( z >> 30 ) ) * 0xbf58476d1ce4e5b9ull;
  z = ( z ^ ( z >> 27 ) ) * 0x94d049bb133111ebull;
  return z ^ ( z >> 31 );
}

/// Canonical pair key for the refuted-candidate set.
std::uint64_t pair_key( std::uint32_t a, std::uint32_t b )
{
  if ( a > b )
  {
    std::swap( a, b );
  }
  return ( static_cast<std::uint64_t>( a ) << 32 ) | b;
}

} // namespace

incremental_cec::incremental_cec( cec_options options )
    : options_( options ), sig_rng_state_( options.sim_seed )
{
  options_.num_sig_words = std::max( options_.num_sig_words, 1u );
  solver_.set_clause_deletion( options_.clause_deletion );
  solver_.set_reduce_base( options_.reduce_base );
  // Node 0: constant false (a solver variable forced to 0 at level 0).
  nodes_.push_back( {} );
  const auto const_var = solver_.new_var();
  solver_.add_clause( { neg_lit( const_var ) } );
  node_sat_.push_back( pos_lit( const_var ) );
  rep_.push_back( 0 );
  if ( options_.fraiging )
  {
    sigs_.resize( options_.num_sig_words, 0u );
    register_signature( 0 );
  }
}

incremental_cec::ilit incremental_cec::find( ilit l ) const
{
  auto node = l >> 1;
  auto complement = l & 1u;
  while ( rep_[node] != ( node << 1 ) )
  {
    const auto r = rep_[node];
    complement ^= r & 1u;
    node = r >> 1;
  }
  return ( node << 1 ) | complement;
}

literal incremental_cec::to_sat( ilit l ) const
{
  const auto base = node_sat_[l >> 1];
  return ( l & 1u ) ? lit_negate( base ) : base;
}

void incremental_cec::ensure_pis( unsigned count )
{
  while ( pi_nodes_.size() < count )
  {
    const auto node = static_cast<std::uint32_t>( nodes_.size() );
    nodes_.push_back( {} );
    node_sat_.push_back( pos_lit( solver_.new_var() ) );
    rep_.push_back( node << 1 );
    pi_nodes_.push_back( node );
    if ( options_.fraiging )
    {
      for ( unsigned w = 0; w < options_.num_sig_words; ++w )
      {
        sigs_.push_back( next_pattern( sig_rng_state_ ) );
      }
      register_signature( node );
    }
  }
}

void incremental_cec::register_signature( std::uint32_t node )
{
  const auto w = options_.num_sig_words;
  const auto* sig = sigs_.data() + static_cast<std::size_t>( node ) * w;
  // Canonicalize under complementation so that f and !f land in one class.
  const std::uint64_t flip_mask = ( sig[0] & 1u ) ? ~std::uint64_t{ 0 } : 0u;
  std::size_t hash = 0;
  for ( unsigned i = 0; i < w; ++i )
  {
    hash = hash_combine( hash, static_cast<std::size_t>( sig[i] ^ flip_mask ) );
  }
  auto& cls = sig_classes_[hash];
  for ( const auto other : cls )
  {
    const auto* osig = sigs_.data() + static_cast<std::size_t>( other ) * w;
    const std::uint64_t oflip_mask = ( osig[0] & 1u ) ? ~std::uint64_t{ 0 } : 0u;
    bool equal = true;
    for ( unsigned i = 0; i < w && equal; ++i )
    {
      equal = ( sig[i] ^ flip_mask ) == ( osig[i] ^ oflip_mask );
    }
    if ( !equal )
    {
      continue;
    }
    // Skip partners already merged with us or attempted and refuted — a
    // later class member may still pair up.
    const auto rn = find( node << 1 );
    const auto ro = find( other << 1 );
    if ( ( rn >> 1 ) == ( ro >> 1 ) || fraig_refuted_.count( pair_key( rn >> 1, ro >> 1 ) ) )
    {
      continue;
    }
    const bool complemented = ( flip_mask != 0u ) != ( oflip_mask != 0u );
    fraig_pending_.push_back( { node, ( other << 1 ) | ( complemented ? 1u : 0u ) } );
    break; // one live candidate per node suffices; classes chain transitively
  }
  cls.push_back( node );
}

incremental_cec::ilit incremental_cec::create_and( ilit a, ilit b )
{
  // NOTE: fanins are hash-consed on their *raw* literals, not on class
  // representatives — find() here would let every fraig merge invalidate
  // the strash keys, so re-encoding a network after a merge would rebuild
  // (and re-prove) its whole cone instead of hitting the table.
  // Representatives are only consulted for comparisons (outputs, fraig
  // candidates); equality clauses bridge the classes inside the solver.
  // Constant folding and trivial cases.
  if ( a == 0u || b == 0u )
  {
    return 0u; // const0
  }
  if ( a == 1u )
  {
    return b;
  }
  if ( b == 1u )
  {
    return a;
  }
  if ( a == b )
  {
    return a;
  }
  if ( a == ( b ^ 1u ) )
  {
    return 0u;
  }
  if ( a > b )
  {
    std::swap( a, b );
  }
  const auto key = ( static_cast<std::uint64_t>( a ) << 32 ) | b;
  const auto it = strash_.find( key );
  if ( it != strash_.end() )
  {
    ++stats_.strash_hits;
    return it->second << 1;
  }
  const auto node = static_cast<std::uint32_t>( nodes_.size() );
  nodes_.push_back( { a, b } );
  rep_.push_back( node << 1 );
  const auto out = pos_lit( solver_.new_var() );
  if ( options_.decide_inputs_only )
  {
    // AND outputs are fully determined by the PIs through unit propagation
    // (the Tseitin clauses below are propagation-complete in both
    // directions), so the solver never *needs* to branch on them.
    solver_.set_branchable( lit_var( out ), false );
  }
  node_sat_.push_back( out );
  ++stats_.nodes;
  // Tseitin: out <-> fa & fb.
  const auto fa = to_sat( a );
  const auto fb = to_sat( b );
  solver_.add_clause( { lit_negate( out ), fa } );
  solver_.add_clause( { lit_negate( out ), fb } );
  solver_.add_clause( { out, lit_negate( fa ), lit_negate( fb ) } );
  // Signature: word-parallel AND over the fanin signatures.  (Signature
  // bookkeeping exists solely to feed fraig candidates; a fraiging-free
  // engine skips it entirely.)
  if ( options_.fraiging )
  {
    const auto w = options_.num_sig_words;
    const std::uint64_t ca = ( a & 1u ) ? ~std::uint64_t{ 0 } : 0u;
    const std::uint64_t cb = ( b & 1u ) ? ~std::uint64_t{ 0 } : 0u;
    const std::size_t base_a = static_cast<std::size_t>( a >> 1 ) * w;
    const std::size_t base_b = static_cast<std::size_t>( b >> 1 ) * w;
    for ( unsigned i = 0; i < w; ++i )
    {
      sigs_.push_back( ( sigs_[base_a + i] ^ ca ) & ( sigs_[base_b + i] ^ cb ) );
    }
    register_signature( node );
  }
  strash_.emplace( key, node );
  return node << 1;
}

std::vector<incremental_cec::ilit> incremental_cec::encode( const aig_network& aig )
{
  ensure_pis( aig.num_pis() );
  std::vector<ilit> map( aig.num_nodes() );
  map[0] = 0u;
  for ( unsigned i = 0; i < aig.num_pis(); ++i )
  {
    map[i + 1u] = pi_nodes_[i] << 1;
  }
  const auto conv = [&]( aig_lit l ) {
    return map[lit_node( l )] ^ ( lit_complemented( l ) ? 1u : 0u );
  };
  for ( std::uint32_t n = aig.num_pis() + 1u; n < aig.num_nodes(); ++n )
  {
    map[n] = create_and( conv( aig.fanin0( n ) ), conv( aig.fanin1( n ) ) );
  }
  std::vector<ilit> outputs;
  outputs.reserve( aig.num_pos() );
  for ( unsigned o = 0; o < aig.num_pos(); ++o )
  {
    outputs.push_back( conv( aig.po( o ) ) );
  }
  return outputs;
}

bool incremental_cec::try_full_simulation( unsigned num_pis,
                                           const std::vector<ilit>& outputs_a,
                                           const std::vector<ilit>& outputs_b,
                                           cec_outcome& out )
{
  // Raw structural simulation (no class lookups): nodes_ is topologically
  // ordered by construction, so one linear pass over the marked cone
  // computes every node's word block.  Column c of the block carries
  // input assignment x_i = (c >> i) & 1 — for i < 6 that is the canonical
  // projection pattern within each word, for i >= 6 bit (i - 6) of the
  // word index — so 2^pis columns cover all assignments exhaustively, and
  // a differing column IS a real counterexample.  The block is sized to
  // the cone (one word up to 6 PIs, 256 words at the 14-PI ceiling) and
  // each node evaluates through the SIMD-wide AND kernel
  // (`simd_and2_masked`), which is what lifts the historical 12-PI clamp:
  // the wider blocks cost the same wall clock per word as the scalar loop
  // did at 64 words.
  if ( num_pis > 14u )
  {
    return false;
  }
  const unsigned words_per_node = num_blocks_for( num_pis );

  // Mark the union cone of all output pairs, assigning each marked node a
  // compact arena slot — the persistent store grows across a sweep's
  // checks, so the arena must be sized by the cone, not the store.
  constexpr auto unmarked = ~std::uint32_t{ 0 };
  std::vector<std::uint32_t> slot( nodes_.size(), unmarked );
  std::vector<std::uint32_t> stack;
  std::uint32_t num_marked = 0;
  const auto mark = [&]( ilit l ) {
    if ( slot[l >> 1] == unmarked )
    {
      stack.push_back( l >> 1 );
      slot[l >> 1] = num_marked++;
    }
  };
  for ( const auto l : outputs_a )
  {
    mark( l );
  }
  for ( const auto l : outputs_b )
  {
    mark( l );
  }
  while ( !stack.empty() )
  {
    const auto n = stack.back();
    stack.pop_back();
    if ( nodes_[n].fanin0 >= 2u )
    {
      mark( nodes_[n].fanin0 );
      mark( nodes_[n].fanin1 );
    }
  }

  std::vector<std::uint64_t> blocks(
      static_cast<std::size_t>( num_marked ) * words_per_node, 0u );
  const auto block_of = [&]( std::uint32_t n ) {
    return blocks.data() + static_cast<std::size_t>( slot[n] ) * words_per_node;
  };
  for ( std::size_t i = 0; i < pi_nodes_.size() && i < 14u; ++i )
  {
    if ( slot[pi_nodes_[i]] == unmarked )
    {
      continue; // PI outside the cone (e.g. of another check's design)
    }
    auto* block = block_of( pi_nodes_[i] );
    for ( unsigned j = 0; j < words_per_node; ++j )
    {
      block[j] = i < 6u ? projections[i]
                        : ( ( ( j >> ( i - 6u ) ) & 1u ) ? ~std::uint64_t{ 0 } : 0u );
    }
  }
  for ( std::uint32_t n = 1; n < nodes_.size(); ++n )
  {
    if ( slot[n] == unmarked || nodes_[n].fanin0 < 2u )
    {
      continue; // unmarked, PI, or constant
    }
    const auto f0 = nodes_[n].fanin0;
    const auto f1 = nodes_[n].fanin1;
    const auto* b0 = block_of( f0 >> 1 );
    const auto* b1 = block_of( f1 >> 1 );
    auto* bn = block_of( n );
    const std::uint64_t m0 = ( f0 & 1u ) ? ~std::uint64_t{ 0 } : 0u;
    const std::uint64_t m1 = ( f1 & 1u ) ? ~std::uint64_t{ 0 } : 0u;
    simd_and2_masked( bn, b0, m0, b1, m1, words_per_node );
  }

  out.equivalent = true;
  for ( unsigned o = 0; o < outputs_a.size(); ++o )
  {
    const auto la = outputs_a[o];
    const auto lb = outputs_b[o];
    const auto* ba = block_of( la >> 1 );
    const auto* bb = block_of( lb >> 1 );
    const std::uint64_t ma = ( la & 1u ) ? ~std::uint64_t{ 0 } : 0u;
    const std::uint64_t mb = ( lb & 1u ) ? ~std::uint64_t{ 0 } : 0u;
    std::optional<unsigned> diff_word;
    for ( unsigned j = 0; j < words_per_node; ++j )
    {
      if ( ( ba[j] ^ ma ) != ( bb[j] ^ mb ) )
      {
        diff_word = j;
        break;
      }
    }
    if ( !diff_word )
    {
      // Exhaustively proven equal: keep as a permanent equality so later
      // checks resolve this pair structurally.
      const auto ea = find( la );
      const auto eb = find( lb );
      if ( ea != eb )
      {
        assert_equal( ea, eb );
        if ( ( ea >> 1 ) != ( eb >> 1 ) )
        {
          merge( ea, eb );
        }
      }
      ++stats_.structural_outputs;
      continue;
    }
    // Lowest differing column of the lowest differing output: a real,
    // deterministic counterexample.
    const auto j = *diff_word;
    const auto diff_bits = ( ba[j] ^ ma ) ^ ( bb[j] ^ mb );
    const auto bit = static_cast<unsigned>( std::countr_zero( diff_bits ) );
    const auto column = j * 64u + bit;
    out.equivalent = false;
    out.failing_output = o;
    std::vector<bool> cex( num_pis );
    for ( unsigned i = 0; i < num_pis; ++i )
    {
      cex[i] = ( column >> i ) & 1u;
    }
    out.counterexample = std::move( cex );
    return true;
  }
  return true;
}

result incremental_cec::prove_equal( ilit a, ilit b, std::uint64_t conflict_budget,
                                     std::uint64_t decision_budget )
{
  const auto la = to_sat( a );
  const auto lb = to_sat( b );
  const auto res = solver_.solve( { la, lit_negate( lb ) }, conflict_budget, decision_budget );
  if ( res != result::unsatisfiable )
  {
    return res;
  }
  return solver_.solve( { lit_negate( la ), lb }, conflict_budget, decision_budget );
}

bool incremental_cec::try_structural_merge( ilit a, ilit b )
{
  const auto na = a >> 1;
  const auto nb = b >> 1;
  // AND nodes are the only ones with fanins; constant folding guarantees
  // their fanin literals are >= 2, while PIs and the constant store {0, 0}.
  const auto is_and = [this]( std::uint32_t n ) { return nodes_[n].fanin0 >= 2u; };
  if ( !is_and( na ) || !is_and( nb ) )
  {
    return false;
  }
  const auto fa0 = find( nodes_[na].fanin0 );
  const auto fa1 = find( nodes_[na].fanin1 );
  const auto fb0 = find( nodes_[nb].fanin0 );
  const auto fb1 = find( nodes_[nb].fanin1 );
  if ( !( ( fa0 == fb0 && fa1 == fb1 ) || ( fa0 == fb1 && fa1 == fb0 ) ) )
  {
    return false;
  }
  // Same fanin classes: the (positive) nodes compute the same AND.
  assert_equal( na << 1, nb << 1 );
  merge( na << 1, nb << 1 );
  return true;
}

void incremental_cec::assert_equal( ilit a, ilit b )
{
  const auto la = to_sat( a );
  const auto lb = to_sat( b );
  solver_.add_clause( { lit_negate( la ), lb } );
  solver_.add_clause( { la, lit_negate( lb ) } );
}

void incremental_cec::merge( ilit keep, ilit drop )
{
  assert( ( keep >> 1 ) != ( drop >> 1 ) );
  if ( ( keep >> 1 ) > ( drop >> 1 ) )
  {
    std::swap( keep, drop );
  }
  // drop_node (positive) == keep ^ drop_complement.
  rep_[drop >> 1] = keep ^ ( drop & 1u );
}

bool incremental_cec::window_proves_equal( ilit a, ilit b, unsigned depth_cap,
                                           std::size_t node_cap )
{
  // Both cones are evaluated word-parallel over the free values of their
  // frontier equivalence classes, counter-block style: frontier class i < 6
  // carries the canonical projection pattern (0xAAAA..., 0xCCCC..., ...)
  // in every word, classes 6..11 broadcast bit (i - 6) of the word index —
  // 64 words enumerate all 4096 assignments of up to 12 frontier classes.
  // Equal output blocks are an exhaustive proof *within the window*, and
  // the frontier being free makes that proof sound globally.  Cheap (no
  // solver contact) and never refuting: an unequal block only means the
  // window was too coarse.  With uncapped expansion and <= 12 PIs the
  // frontier IS the input cube and the window is a complete equivalence
  // proof of the pair — that is how the output miters of narrow designs
  // are discharged without the solver (see `check()`).
  //
  // Iterative post-order walk: output cones can be tens of thousands of
  // nodes deep (XOR chains of a reversible target line), so recursion is
  // not an option.
  constexpr unsigned words_per_node = 64;
  constexpr std::size_t max_frontier = 12;
  std::unordered_map<std::uint32_t, std::uint32_t> offsets; ///< node -> arena offset
  std::vector<std::uint64_t> arena;
  std::size_t num_frontier = 0;
  std::size_t expanded = 0;

  struct frame
  {
    std::uint32_t node;
    unsigned depth;
    bool visited; ///< children already pushed
  };
  std::vector<frame> stack;
  const auto push = [&]( ilit l, unsigned depth ) {
    const auto n = find( l ) >> 1;
    if ( !offsets.count( n ) )
    {
      stack.push_back( { n, depth, false } );
    }
  };
  // Evaluates the cone below `l`; false on frontier overflow.
  const auto eval_cone = [&]( ilit l, unsigned depth ) -> bool {
    push( l, depth );
    while ( !stack.empty() )
    {
      auto& top = stack.back();
      const auto n = top.node;
      if ( offsets.count( n ) )
      {
        stack.pop_back();
        continue;
      }
      const bool expandable =
          n != 0u && top.depth > 0u && nodes_[n].fanin0 >= 2u && expanded < node_cap;
      if ( expandable && !top.visited )
      {
        top.visited = true;
        ++expanded;
        const auto depth_below = top.depth - 1u; // copy: pushes may move `top`
        push( nodes_[n].fanin0, depth_below );
        push( nodes_[n].fanin1, depth_below );
        continue;
      }
      const auto off = static_cast<std::uint32_t>( arena.size() );
      if ( top.visited )
      {
        // AND over the (already evaluated) fanin classes.
        const auto r0 = find( nodes_[n].fanin0 );
        const auto r1 = find( nodes_[n].fanin1 );
        const auto o0 = offsets.at( r0 >> 1 );
        const auto o1 = offsets.at( r1 >> 1 );
        const std::uint64_t m0 = ( r0 & 1u ) ? ~std::uint64_t{ 0 } : 0u;
        const std::uint64_t m1 = ( r1 & 1u ) ? ~std::uint64_t{ 0 } : 0u;
        arena.resize( arena.size() + words_per_node );
        simd_and2_masked( arena.data() + off, arena.data() + o0, m0, arena.data() + o1, m1,
                          words_per_node );
      }
      else if ( n == 0u )
      {
        arena.resize( arena.size() + words_per_node, 0u );
      }
      else
      {
        // Frontier class: a fresh free variable over the window.
        if ( num_frontier >= max_frontier )
        {
          return false;
        }
        const auto i = static_cast<unsigned>( num_frontier++ );
        arena.resize( arena.size() + words_per_node );
        for ( unsigned j = 0; j < words_per_node; ++j )
        {
          arena[off + j] = i < 6u ? projections[i]
                                  : ( ( j >> ( i - 6u ) ) & 1u ) ? ~std::uint64_t{ 0 } : 0u;
        }
      }
      offsets.emplace( n, off );
      stack.pop_back();
    }
    return true;
  };

  if ( !eval_cone( a, depth_cap ) || !eval_cone( b, depth_cap ) )
  {
    return false;
  }
  const auto ra = find( a );
  const auto rb = find( b );
  const auto oa = offsets.at( ra >> 1 );
  const auto ob = offsets.at( rb >> 1 );
  const std::uint64_t ma = ( ra & 1u ) ? ~std::uint64_t{ 0 } : 0u;
  const std::uint64_t mb = ( rb & 1u ) ? ~std::uint64_t{ 0 } : 0u;
  for ( unsigned j = 0; j < words_per_node; ++j )
  {
    if ( ( arena[oa + j] ^ ma ) != ( arena[ob + j] ^ mb ) )
    {
      return false;
    }
  }
  return true;
}

void incremental_cec::collect_cex_pattern()
{
  cex_patterns_.resize( pi_nodes_.size(), 0u );
  const auto bit = std::uint64_t{ 1 } << cex_count_;
  for ( std::size_t i = 0; i < pi_nodes_.size(); ++i )
  {
    if ( solver_.model_value( lit_var( node_sat_[pi_nodes_[i]] ) ) )
    {
      cex_patterns_[i] |= bit;
    }
  }
  ++cex_count_;
}

void incremental_cec::refine_signatures()
{
  // Fold the collected counterexample bits into one signature word
  // (unused high bits come from the pattern stream, so a sparse buffer
  // still splits on 64 fresh columns), re-simulate every node on that
  // word alone, and rebuild classes + candidate queue from scratch.
  // Merges are never undone — signatures are hints, the merges are
  // proofs — so "refinement" can only remove false candidates and expose
  // pairs previously shadowed by refuted partners.
  ++stats_.fraig_refinements;
  const auto w = options_.num_sig_words;
  const auto slot = refine_slot_;
  refine_slot_ = ( refine_slot_ + 1u ) % w;
  cex_patterns_.resize( pi_nodes_.size(), 0u );
  const std::uint64_t keep_mask =
      cex_count_ >= 64u ? ~std::uint64_t{ 0 } : ( ( std::uint64_t{ 1 } << cex_count_ ) - 1u );
  sigs_[slot] = 0u; // constant-false node
  for ( std::size_t i = 0; i < pi_nodes_.size(); ++i )
  {
    const auto filler = next_pattern( sig_rng_state_ );
    sigs_[static_cast<std::size_t>( pi_nodes_[i] ) * w + slot] =
        ( cex_patterns_[i] & keep_mask ) | ( filler & ~keep_mask );
  }
  for ( std::uint32_t n = 1; n < nodes_.size(); ++n )
  {
    const auto f0 = nodes_[n].fanin0;
    const auto f1 = nodes_[n].fanin1;
    if ( f0 < 2u )
    {
      continue; // PI (or constant): pattern set above
    }
    const std::uint64_t m0 = ( f0 & 1u ) ? ~std::uint64_t{ 0 } : 0u;
    const std::uint64_t m1 = ( f1 & 1u ) ? ~std::uint64_t{ 0 } : 0u;
    sigs_[static_cast<std::size_t>( n ) * w + slot] =
        ( sigs_[static_cast<std::size_t>( f0 >> 1 ) * w + slot] ^ m0 ) &
        ( sigs_[static_cast<std::size_t>( f1 >> 1 ) * w + slot] ^ m1 );
  }
  cex_count_ = 0;
  std::fill( cex_patterns_.begin(), cex_patterns_.end(), 0u );
  sig_classes_.clear();
  fraig_pending_.clear();
  fraig_cursor_ = 0;
  for ( std::uint32_t n = 0; n < nodes_.size(); ++n )
  {
    register_signature( n );
  }
}

void incremental_cec::run_fraig()
{
  std::size_t attempts = 0;
  while ( fraig_cursor_ < fraig_pending_.size() && attempts < options_.max_fraig_candidates )
  {
    ++attempts;
    const auto [node, candidate] = fraig_pending_[fraig_cursor_++];
    const auto ln = find( node << 1 );
    const auto lc = find( candidate );
    if ( ( ln >> 1 ) == ( lc >> 1 ) )
    {
      continue; // already merged (or resolved to complements)
    }
    const auto key = pair_key( ln >> 1, lc >> 1 );
    if ( fraig_refuted_.count( key ) )
    {
      continue;
    }
    ++stats_.fraig_candidates;
    if ( try_structural_merge( ln, lc ) )
    {
      ++stats_.fraig_merges;
      continue;
    }
    if ( window_proves_equal( ln, lc, options_.fraig_window_depth,
                              options_.fraig_window_nodes ) )
    {
      assert_equal( ln, lc );
      merge( ln, lc );
      ++stats_.fraig_merges;
      ++stats_.fraig_window_proofs;
      continue;
    }
    if ( options_.fraig_conflict_budget == 0 )
    {
      fraig_refuted_.insert( key ); // cheap paths failed; never retry
      continue;
    }
    // Budgeted SAT attempt on the persistent solver.  Earlier merges make
    // the two cones propagation-connected, so genuine equivalences tend to
    // conflict out almost immediately; a model is a REAL counterexample
    // (total over the PIs) and feeds the refinement buffer.
    const auto res = prove_equal( ln, lc, options_.fraig_conflict_budget, 0 );
    if ( res == result::unsatisfiable )
    {
      assert_equal( ln, lc );
      merge( ln, lc );
      ++stats_.fraig_merges;
      continue;
    }
    fraig_refuted_.insert( key );
    if ( res == result::satisfiable )
    {
      collect_cex_pattern();
      if ( cex_count_ == 64u )
      {
        refine_signatures();
      }
    }
  }
  // Drop the consumed prefix; surplus candidates stay queued.
  fraig_pending_.erase( fraig_pending_.begin(),
                        fraig_pending_.begin() + static_cast<std::ptrdiff_t>( fraig_cursor_ ) );
  fraig_cursor_ = 0;
}

cec_outcome incremental_cec::check( const aig_network& a, const aig_network& b )
{
  return check( a, b, check_limits{} );
}

cec_outcome incremental_cec::check( const aig_network& a, const aig_network& b,
                                    const check_limits& limits )
{
  std::lock_guard<std::mutex> lock( mutex_ );
  if ( a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos() )
  {
    throw std::invalid_argument( "incremental_cec::check: interface mismatch" );
  }
  ++stats_.checks;
  // Install the wall-clock deadline on the persistent solver for the
  // duration of this check (every check sets it, so limits never leak
  // across calls).  Conflict/propagation budgets are deltas against the
  // solver's cumulative counters at entry.
  solver_.set_deadline( limits.stop );
  const auto entry_conflicts = solver_.num_conflicts();
  const auto entry_propagations = solver_.num_propagations();
  const auto budget_exhausted = [&]() {
    if ( limits.conflict_budget != 0 &&
         solver_.num_conflicts() - entry_conflicts >= limits.conflict_budget )
    {
      return true;
    }
    if ( limits.propagation_budget != 0 &&
         solver_.num_propagations() - entry_propagations >= limits.propagation_budget )
    {
      return true;
    }
    return !limits.stop.unlimited() && limits.stop.expired();
  };
  // Conflict budget left for one more solve (0 = unlimited, only when the
  // check itself is unlimited; callers must test budget_exhausted() first).
  const auto remaining_conflicts = [&]() -> std::uint64_t {
    if ( limits.conflict_budget == 0 )
    {
      return 0;
    }
    const auto used = solver_.num_conflicts() - entry_conflicts;
    return used >= limits.conflict_budget ? 1u : limits.conflict_budget - used;
  };
  const auto nodes_before = nodes_.size();
  const auto outputs_a = encode( a );
  const auto outputs_b = encode( b );
  const auto fresh_nodes = nodes_.size() - nodes_before;
  // Narrow designs are decided wholesale by the bit-parallel simulation
  // pass below; fraig hints only pay off when the solver will run.  The
  // 14-PI clamp is the capacity of `try_full_simulation`'s SIMD-wide
  // blocks — values above it in the option must not widen the gate (the
  // sim pass would bail and the check would fall through undecided).
  const bool narrow =
      a.num_pis() <= std::min( options_.output_window_max_pis, 14u );
  if ( options_.fraiging && !narrow )
  {
    run_fraig();
  }

  cec_outcome out;
  out.equivalent = true;
  const auto fail_at = [&]( unsigned o ) {
    // The model of the last satisfiable solve is a real difference input.
    out.equivalent = false;
    out.failing_output = o;
    std::vector<bool> cex( a.num_pis() );
    for ( unsigned i = 0; i < a.num_pis(); ++i )
    {
      cex[i] = solver_.model_value( lit_var( node_sat_[pi_nodes_[i]] ) );
    }
    out.counterexample = std::move( cex );
  };
  const auto learn_equal = [&]( ilit ea, ilit eb ) {
    // Keep the proven equality as a permanent lemma for later calls.
    assert_equal( ea, eb );
    if ( ( ea >> 1 ) != ( eb >> 1 ) )
    {
      merge( ea, eb );
    }
    ++stats_.sat_proven_outputs;
  };

  // Output portfolio, per output: structural identity -> exhaustive window
  // -> (on large encodes) budgeted per-output miter on the persistent
  // solver.  Outputs that remain collect into ONE batched, unbounded miter
  // solve — the per-output decomposition wins when a big shared encoding
  // makes each equality propagation-easy, while the batch recovers
  // monolithic-search behavior when an instance wants one global
  // refutation instead of 2 * num_pos restarted searches.
  const bool try_per_output = fresh_nodes >= options_.per_output_node_threshold;
  struct pending_output
  {
    unsigned index;
    ilit ea;
    ilit eb;
  };
  // Narrow designs (pis <= output_window_max_pis): when the structural
  // pre-scan leaves anything open, one bit-parallel simulation pass over
  // the raw cones decides every output at once, without the solver — see
  // try_full_simulation.  Warm re-checks of already-proven pairs stay on
  // the pre-scan (the sim pass recorded its proofs as merges).
  if ( narrow )
  {
    bool all_structural = true;
    for ( unsigned o = 0; o < a.num_pos() && all_structural; ++o )
    {
      all_structural = find( outputs_a[o] ) == find( outputs_b[o] );
    }
    if ( all_structural )
    {
      stats_.structural_outputs += a.num_pos();
      stats_.solver_conflicts = solver_.num_conflicts();
      return out; // equivalent
    }
    const auto decided = try_full_simulation( a.num_pis(), outputs_a, outputs_b, out );
    assert( decided );
    (void)decided;
    stats_.solver_conflicts = solver_.num_conflicts();
    return out;
  }

  std::vector<pending_output> unresolved;
  // Lowest output already KNOWN to differ (a budgeted attempt found a
  // model); lower-indexed unresolved outputs still have to be decided
  // before it may be reported — the contract is lowest-index-first.
  std::optional<pending_output> known_differing;
  for ( unsigned o = 0; o < a.num_pos() && !known_differing; ++o )
  {
    const auto ea = find( outputs_a[o] );
    const auto eb = find( outputs_b[o] );
    if ( ea == eb )
    {
      ++stats_.structural_outputs;
      continue;
    }
    if ( window_proves_equal( ea, eb, options_.fraig_window_depth,
                              options_.fraig_window_nodes ) )
    {
      assert_equal( ea, eb );
      merge( ea, eb );
      ++stats_.structural_outputs;
      ++stats_.fraig_window_proofs;
      continue;
    }
    if ( try_per_output && !budget_exhausted() )
    {
      const auto res = prove_equal( ea, eb, options_.output_conflict_budget,
                                    options_.output_decision_budget );
      if ( res == result::unsatisfiable )
      {
        learn_equal( ea, eb );
        continue;
      }
      if ( res == result::satisfiable )
      {
        // Differs — but earlier budget-exhausted outputs must be decided
        // first; outputs after o are moot (this one bounds the answer).
        known_differing = pending_output{ o, ea, eb };
        break;
      }
    }
    unresolved.push_back( { o, ea, eb } );
  }

  if ( !known_differing && !unresolved.empty() && !budget_exhausted() )
  {
    // Batched miter: trigger -> OR of one activated difference literal per
    // undecided output.  UNSAT under the trigger assumption proves every
    // one of them equal at once (each diff literal occurs nowhere else);
    // a model means at least one genuinely differs.
    const auto trigger = solver_.new_var();
    std::vector<literal> activation;
    activation.reserve( unresolved.size() + 1u );
    activation.push_back( neg_lit( trigger ) );
    for ( const auto& u : unresolved )
    {
      const auto la = to_sat( u.ea );
      const auto lb = to_sat( u.eb );
      const auto diff = pos_lit( solver_.new_var() );
      solver_.add_clause( { lit_negate( diff ), la, lb } );
      solver_.add_clause( { lit_negate( diff ), lit_negate( la ), lit_negate( lb ) } );
      activation.push_back( diff );
    }
    solver_.add_clause( activation );
    const auto res = solver_.solve( { pos_lit( trigger ) }, remaining_conflicts() );
    // Retire the trigger and every diff variable with level-0 units: all
    // batch clauses become satisfied at level 0, so the next database
    // reduction sweeps them and a long-lived engine does not accumulate
    // one dead miter per batched check.
    solver_.add_clause( { neg_lit( trigger ) } );
    for ( std::size_t i = 1; i < activation.size(); ++i )
    {
      solver_.add_clause( { lit_negate( activation[i] ) } );
    }
    if ( res == result::unsatisfiable )
    {
      for ( const auto& u : unresolved )
      {
        learn_equal( u.ea, u.eb );
      }
      unresolved.clear();
    }
    // On SAT the batch model pinpoints SOME differing output, not
    // necessarily the lowest-indexed one; fall through to the ordered
    // resolution below, which decides each unresolved output with an
    // unbounded per-output miter.
  }

  if ( known_differing || !unresolved.empty() )
  {
    // Ordered resolution: decide unresolved outputs lowest-index-first
    // with unbounded per-output miters; the first refutation wins.  Every
    // UNSAT on the way is kept as a lemma, so this pass never repeats
    // work across calls.
    for ( const auto& u : unresolved )
    {
      if ( budget_exhausted() )
      {
        out.equivalent = false;
        out.resolved = false;
        stats_.solver_conflicts = solver_.num_conflicts();
        return out;
      }
      const auto res = prove_equal( u.ea, u.eb, remaining_conflicts(), 0 );
      if ( res == result::unknown )
      {
        // Budget/deadline ran out mid-proof; on an unlimited check this
        // cannot happen (remaining_conflicts() is 0 and no deadline is
        // installed).
        out.equivalent = false;
        out.resolved = false;
        stats_.solver_conflicts = solver_.num_conflicts();
        return out;
      }
      if ( res == result::unsatisfiable )
      {
        learn_equal( u.ea, u.eb );
        continue;
      }
      fail_at( u.index );
      stats_.solver_conflicts = solver_.num_conflicts();
      return out;
    }
    if ( known_differing )
    {
      // All earlier outputs proved equal: the known-differing one is the
      // lowest.  Re-solve its miter to put a fresh model in the solver
      // (intermediate solves may have overwritten the budgeted one).
      const auto res = prove_equal( known_differing->ea, known_differing->eb, 0, 0 );
      if ( res == result::satisfiable )
      {
        fail_at( known_differing->index );
      }
      else
      {
        // The deadline expired before the model could be reconstructed;
        // the difference itself is certain (a budgeted solve found it), so
        // report the failing output without a counterexample.
        out.equivalent = false;
        out.failing_output = known_differing->index;
      }
    }
  }
  stats_.solver_conflicts = solver_.num_conflicts();
  return out;
}

cec_stats incremental_cec::stats() const
{
  std::lock_guard<std::mutex> lock( mutex_ );
  return stats_;
}

} // namespace qsyn::sat
