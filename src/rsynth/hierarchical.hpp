/// \file hierarchical.hpp
/// \brief Hierarchical reversible synthesis from an XMG
/// (REVS [9] / [8], paper Sec. IV-C).
///
/// Every XMG node is computed onto a circuit line in topological order:
///
///  * XOR nodes cost only CNOTs (zero T).  When an operand is at its last
///    use, the XOR is applied in place on that operand's line (the paper's
///    "XOR can be applied in-place" observation).
///  * MAJ nodes cost exactly ONE Toffoli: with fresh target t and operand
///    lines a, b, c the sequence
///       CNOT(a,b); CNOT(a,c); TOF(b,c -> t); CNOT(a,t); CNOT(a,c); CNOT(a,b)
///    computes t ^= MAJ(a,b,c) (using MAJ(a,b,c) = a xor (a xor b)(a xor c))
///    and restores the operands.  AND/OR (MAJ with a constant input) use a
///    single Toffoli directly.  Inverters fold into control polarities.
///
/// Cleanup strategies (REVS "strategies for cleaning up intermediate
/// calculations and re-using qubits"):
///
///  * keep_garbage — every intermediate stays live: minimum T, maximum lines
///    (this is the configuration reported in Table IV),
///  * bennett      — copy outputs out, then uncompute the whole compute
///    window: ancillae return to 0 (reusable by a surrounding computation),
///    2x the T-count,
///  * eager        — reference-counted immediate uncomputation: a node is
///    uncomputed as soon as its last consumer has fired and its line is
///    recycled; fewest *peak* lines, T between the other two.

#pragma once

#include "../logic/xmg.hpp"
#include "../reversible/circuit.hpp"

namespace qsyn
{

enum class cleanup_strategy
{
  keep_garbage,
  bennett,
  eager
};

struct hierarchical_params
{
  cleanup_strategy cleanup = cleanup_strategy::keep_garbage;
};

struct hierarchical_stats
{
  unsigned peak_lines = 0;
  unsigned ancilla_lines = 0;
  std::size_t maj_toffolis = 0;
};

/// Synthesizes a reversible circuit computing all XMG outputs.  Inputs are
/// preserved on lines 0..n-1; output lines are flagged via line_info.
reversible_circuit hierarchical_synthesize( const xmg_network& xmg,
                                            const hierarchical_params& params = {},
                                            hierarchical_stats* stats = nullptr );

} // namespace qsyn
