#include "tbs.hpp"

#include <cassert>
#include <stdexcept>

#include "../common/bits.hpp"

namespace qsyn
{

namespace
{

/// Gate description used during synthesis: positive controls only.
struct tbs_gate
{
  std::uint64_t controls = 0; ///< bit mask of positive controls
  unsigned target = 0;
};

class tbs_engine
{
public:
  tbs_engine( std::vector<std::uint64_t> perm, bool bidirectional, const deadline& stop )
      : perm_( std::move( perm ) ), bidirectional_( bidirectional ), stop_( stop ),
        poll_deadline_( !stop.unlimited() )
  {
    if ( perm_.empty() || !is_power_of_two( perm_.size() ) )
    {
      throw std::invalid_argument( "tbs: permutation size must be a power of two" );
    }
    num_lines_ = ceil_log2( perm_.size() );
    inverse_.resize( perm_.size() );
    for ( std::uint64_t i = 0; i < perm_.size(); ++i )
    {
      inverse_[perm_[i]] = i;
    }
  }

  reversible_circuit run()
  {
    const std::uint64_t size = perm_.size();
    for ( std::uint64_t i = 0; i < size; ++i )
    {
      // A partially fixed permutation is not a circuit of the function, so
      // deadline expiry can only abort (see tbs_params::stop).  Poll every
      // 16 rows — and on row 0, so a pre-expired deadline aborts promptly.
      if ( poll_deadline_ && ( i & 15u ) == 0u && stop_.expired() )
      {
        throw budget_exhausted( "tbs: deadline expired mid-synthesis" );
      }
      const auto v = perm_[i];
      if ( v == i )
      {
        continue;
      }
      if ( bidirectional_ )
      {
        const auto p = inverse_[i]; // position currently holding value i
        // Output side needs popcount(v ^ i) flips, input side popcount(p ^ i).
        if ( popcount64( p ^ i ) < popcount64( v ^ i ) )
        {
          fix_input_side( i, p );
          continue;
        }
      }
      fix_output_side( i, v );
    }
    return build_circuit();
  }

private:
  /// Applies an output-side gate: values w with w superset of `controls`
  /// get bit `target` flipped.  Maintains perm_ and inverse_.
  void apply_output_gate( std::uint64_t controls, unsigned target )
  {
    assert( ( controls & ( std::uint64_t{ 1 } << target ) ) == 0u );
    output_gates_.push_back( { controls, target } );
    // Enumerate values w >= controls containing all control bits and with
    // target bit = 1; swap with partner w ^ target_bit.
    const auto target_bit = std::uint64_t{ 1 } << target;
    const auto fixed = controls | target_bit;
    const auto free_mask = ( perm_.size() - 1u ) & ~fixed;
    // Iterate all subsets of free_mask.
    std::uint64_t sub = 0;
    do
    {
      const auto w = fixed | sub;
      const auto w2 = w ^ target_bit;
      const auto x1 = inverse_[w];
      const auto x2 = inverse_[w2];
      perm_[x1] = w2;
      perm_[x2] = w;
      inverse_[w] = x2;
      inverse_[w2] = x1;
      sub = ( sub - free_mask ) & free_mask;
    } while ( sub != 0u );
  }

  /// Applies an input-side gate: positions x with x superset of `controls`
  /// exchange their values with partner positions.
  void apply_input_gate( std::uint64_t controls, unsigned target )
  {
    assert( ( controls & ( std::uint64_t{ 1 } << target ) ) == 0u );
    input_gates_.push_back( { controls, target } );
    const auto target_bit = std::uint64_t{ 1 } << target;
    const auto fixed = controls | target_bit;
    const auto free_mask = ( perm_.size() - 1u ) & ~fixed;
    std::uint64_t sub = 0;
    do
    {
      const auto x1 = fixed | sub;
      const auto x2 = x1 ^ target_bit;
      const auto w1 = perm_[x1];
      const auto w2 = perm_[x2];
      perm_[x1] = w2;
      perm_[x2] = w1;
      inverse_[w1] = x2;
      inverse_[w2] = x1;
      sub = ( sub - free_mask ) & free_mask;
    } while ( sub != 0u );
  }

  /// Classic MMD output-side step: transform value v into i.
  void fix_output_side( std::uint64_t i, std::uint64_t v )
  {
    // (a) set bits that are 1 in i but 0 in v; controls = current ones of v.
    auto current = v;
    for ( unsigned b = 0; b < num_lines_; ++b )
    {
      const auto bit = std::uint64_t{ 1 } << b;
      if ( ( i & bit ) && !( current & bit ) )
      {
        apply_output_gate( current, b );
        current |= bit;
      }
    }
    // (b) clear bits that are 1 in current but 0 in i; controls = remaining
    // ones minus the target (they include all ones of i, keeping earlier
    // rows safe).
    for ( unsigned b = 0; b < num_lines_; ++b )
    {
      const auto bit = std::uint64_t{ 1 } << b;
      if ( ( current & bit ) && !( i & bit ) )
      {
        apply_output_gate( current & ~bit, b );
        current &= ~bit;
      }
    }
    assert( perm_[i] == i );
  }

  /// Bidirectional input-side step: move position p (holding value i) to
  /// position i.  The gate chain is derived by evolving the index i into p
  /// (set bits first, then clear); because input gates compose on the
  /// right of the permutation (P <- P o H, so the LAST applied gate acts
  /// on i first), the chain must be applied in reverse evolution order.
  void fix_input_side( std::uint64_t i, std::uint64_t p )
  {
    std::vector<tbs_gate> chain;
    auto current = i;
    for ( unsigned b = 0; b < num_lines_; ++b )
    {
      const auto bit = std::uint64_t{ 1 } << b;
      if ( ( p & bit ) && !( current & bit ) )
      {
        chain.push_back( { current, b } );
        current |= bit;
      }
    }
    for ( unsigned b = 0; b < num_lines_; ++b )
    {
      const auto bit = std::uint64_t{ 1 } << b;
      if ( ( current & bit ) && !( p & bit ) )
      {
        chain.push_back( { current & ~bit, b } );
        current &= ~bit;
      }
    }
    for ( auto it = chain.rbegin(); it != chain.rend(); ++it )
    {
      apply_input_gate( it->controls, it->target );
    }
    assert( perm_[i] == i );
  }

  reversible_circuit build_circuit()
  {
    reversible_circuit circuit( num_lines_ );
    const auto emit = [&]( const tbs_gate& g ) {
      std::vector<control> controls;
      for ( unsigned b = 0; b < num_lines_; ++b )
      {
        if ( ( g.controls >> b ) & 1u )
        {
          controls.push_back( { b, true } );
        }
      }
      circuit.add_mct( controls, g.target );
    };
    // f = I_1 ... I_k  then  O_m ... O_1  (see tbs.hpp derivation).
    for ( const auto& g : input_gates_ )
    {
      emit( g );
    }
    for ( auto it = output_gates_.rbegin(); it != output_gates_.rend(); ++it )
    {
      emit( *it );
    }
    return circuit;
  }

  std::vector<std::uint64_t> perm_;
  std::vector<std::uint64_t> inverse_;
  bool bidirectional_;
  deadline stop_;
  bool poll_deadline_ = false;
  unsigned num_lines_ = 0;
  std::vector<tbs_gate> output_gates_;
  std::vector<tbs_gate> input_gates_;
};

} // namespace

reversible_circuit tbs_synthesize( std::vector<std::uint64_t> permutation, const tbs_params& params )
{
  tbs_engine engine( std::move( permutation ), params.bidirectional, params.stop );
  return engine.run();
}

} // namespace qsyn
