#include "hierarchical.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

namespace qsyn
{

namespace
{

constexpr std::uint32_t no_line = 0xffffffffu;

class hierarchical_engine
{
public:
  hierarchical_engine( const xmg_network& xmg, const hierarchical_params& params,
                       hierarchical_stats* stats )
      : xmg_( xmg ), params_( params ), stats_( stats ), circuit_( xmg.num_pis() ),
        refs_( xmg.fanout_counts() ), node_line_( xmg.num_nodes(), no_line )
  {
    for ( unsigned i = 0; i < xmg_.num_pis(); ++i )
    {
      auto& info = circuit_.line( i );
      info.name = "x" + std::to_string( i );
      info.is_primary_input = true;
      node_line_[i + 1u] = i;
    }
  }

  reversible_circuit run()
  {
    if ( params_.cleanup == cleanup_strategy::eager )
    {
      run_eager();
    }
    else
    {
      run_monolithic();
    }
    if ( stats_ )
    {
      stats_->peak_lines = circuit_.num_lines();
      stats_->ancilla_lines = circuit_.num_lines() - xmg_.num_pis();
      stats_->maj_toffolis = circuit_.num_toffoli_gates();
    }
    return std::move( circuit_ );
  }

private:
  /// keep_garbage / bennett: compute every live node once, claim or copy
  /// outputs, optionally uncompute the whole window.
  void run_monolithic()
  {
    const std::size_t compute_begin = circuit_.num_gates();
    for ( std::uint32_t n = xmg_.num_pis() + 1u; n < xmg_.num_nodes(); ++n )
    {
      if ( refs_[n] == 0u )
      {
        continue; // dead node
      }
      compute_node( n );
      // Track remaining uses for the in-place XOR optimization.
      for ( const auto lit : fanin_lits( n ) )
      {
        const auto m = lit >> 1;
        if ( m > xmg_.num_pis() && refs_[m] > 0u )
        {
          --refs_[m];
        }
      }
    }
    const std::size_t compute_end = circuit_.num_gates();

    claim_outputs();

    if ( params_.cleanup == cleanup_strategy::bennett )
    {
      circuit_.append_reversed_window( compute_begin, compute_end );
      for ( unsigned l = xmg_.num_pis(); l < circuit_.num_lines(); ++l )
      {
        if ( circuit_.line( l ).output_index < 0 )
        {
          circuit_.line( l ).is_garbage = false; // restored to 0
        }
      }
    }
  }

  /// eager (REVS-style per-output cleanup): compute the cone of one output,
  /// copy the result to a fresh output line, uncompute the cone, and
  /// recycle its ancilla lines before starting the next output.  Shared
  /// logic is recomputed per output — fewer peak lines for more T gates.
  void run_eager()
  {
    for ( unsigned o = 0; o < xmg_.num_pos(); ++o )
    {
      const auto po = xmg_.po( o );
      const auto node = po >> 1;
      const bool compl_flag = po & 1u;

      const std::size_t window_begin = circuit_.num_gates();
      std::vector<std::uint32_t> cone; // computed internal nodes, topo order
      if ( node > xmg_.num_pis() )
      {
        compute_cone( node, cone );
      }
      // Copy out.
      const auto out = alloc_line( "y" + std::to_string( o ) );
      const auto src = node == 0u ? no_line : node_line_[node];
      if ( src != no_line )
      {
        circuit_.add_cnot( src, out );
      }
      if ( compl_flag )
      {
        circuit_.add_not( out );
      }
      auto& info = circuit_.line( out );
      info.output_index = static_cast<int>( o );
      info.is_garbage = false;
      const std::size_t window_end = circuit_.num_gates();
      // The copy itself must not be uncomputed; the window covers only the
      // cone computation.
      (void)window_end;
      circuit_.append_reversed_window( window_begin,
                                       window_begin + ( cone_gate_counts_ ) );
      cone_gate_counts_ = 0;
      // Recycle cone lines.
      for ( const auto n : cone )
      {
        free_lines_.push_back( node_line_[n] );
        node_line_[n] = no_line;
      }
    }
    for ( unsigned l = xmg_.num_pis(); l < circuit_.num_lines(); ++l )
    {
      if ( circuit_.line( l ).output_index < 0 )
      {
        circuit_.line( l ).is_garbage = false; // everything uncomputed
      }
    }
  }

  /// Recursively computes all not-yet-computed nodes in the cone of `node`.
  void compute_cone( std::uint32_t node, std::vector<std::uint32_t>& cone )
  {
    if ( node <= xmg_.num_pis() || node_line_[node] != no_line )
    {
      return;
    }
    for ( const auto lit : fanin_lits( node ) )
    {
      compute_cone( lit >> 1, cone );
    }
    const auto before = circuit_.num_gates();
    compute_node( node );
    cone_gate_counts_ += circuit_.num_gates() - before;
    cone.push_back( node );
  }

  std::uint32_t alloc_line( const std::string& name )
  {
    if ( !free_lines_.empty() )
    {
      const auto l = free_lines_.back();
      free_lines_.pop_back();
      circuit_.line( l ).name = name;
      return l;
    }
    line_info info;
    info.name = name;
    info.is_constant_input = true;
    info.constant_value = false;
    info.is_garbage = true;
    return circuit_.add_line( info );
  }

  /// Line and complement view of a fanin literal.
  struct operand
  {
    std::uint32_t line;
    bool complemented;
    std::uint32_t node;
    bool is_constant = false;
    bool constant_value = false;
  };

  operand resolve( xmg_lit lit ) const
  {
    const auto node = lit >> 1;
    const bool compl_flag = lit & 1u;
    if ( node == 0u )
    {
      return { no_line, false, node, true, compl_flag };
    }
    assert( node_line_[node] != no_line );
    return { node_line_[node], compl_flag, node, false, false };
  }

  void compute_node( std::uint32_t n )
  {
    if ( xmg_.is_xor( n ) )
    {
      compute_xor( n );
    }
    else
    {
      compute_maj( n );
    }
  }

  std::vector<xmg_lit> fanin_lits( std::uint32_t n ) const
  {
    const auto& f = xmg_.fanins( n );
    if ( xmg_.is_maj( n ) )
    {
      return { f[0], f[1], f[2] };
    }
    return { f[0], f[1] };
  }

  void compute_xor( std::uint32_t n )
  {
    const auto& f = xmg_.fanins( n );
    const auto a = resolve( f[0] );
    const auto b = resolve( f[1] );
    const bool phase = a.complemented ^ b.complemented;
    // In-place on a dying internal operand; only in the monolithic modes
    // (the eager mode recycles whole cones and keeps nodes on own lines).
    if ( params_.cleanup != cleanup_strategy::eager )
    {
      const auto try_in_place = [&]( const operand& dying, const operand& other ) {
        if ( dying.is_constant || dying.node <= xmg_.num_pis() || refs_[dying.node] != 1u )
        {
          return false;
        }
        circuit_.add_cnot( other.line, dying.line );
        if ( phase )
        {
          circuit_.add_not( dying.line );
        }
        node_line_[n] = dying.line;
        return true;
      };
      if ( try_in_place( a, b ) || try_in_place( b, a ) )
      {
        return;
      }
    }
    const auto t = alloc_line( "n" + std::to_string( n ) );
    circuit_.add_cnot( a.line, t );
    circuit_.add_cnot( b.line, t );
    if ( phase )
    {
      circuit_.add_not( t );
    }
    node_line_[n] = t;
  }

  void compute_maj( std::uint32_t n )
  {
    const auto& f = xmg_.fanins( n );
    const auto a = resolve( f[0] );
    const auto b = resolve( f[1] );
    const auto c = resolve( f[2] );
    const auto t = alloc_line( "n" + std::to_string( n ) );
    node_line_[n] = t;

    // Constant operand: AND / OR special cases (constants sort first).
    if ( a.is_constant )
    {
      const bool is_or = a.constant_value;
      const control cb{ b.line, is_or ? b.complemented : !b.complemented };
      const control cc{ c.line, is_or ? c.complemented : !c.complemented };
      circuit_.add_mct( { cb, cc }, t );
      if ( is_or )
      {
        circuit_.add_not( t );
      }
      return;
    }

    // General MAJ with one Toffoli: MAJ(a',b',c') = a' ^ (a' ^ b')(a' ^ c').
    circuit_.add_cnot( a.line, b.line );
    circuit_.add_cnot( a.line, c.line );
    const control ctrl_b{ b.line, !( a.complemented ^ b.complemented ) };
    const control ctrl_c{ c.line, !( a.complemented ^ c.complemented ) };
    circuit_.add_mct( { ctrl_b, ctrl_c }, t );
    circuit_.add_cnot( a.line, t );
    if ( a.complemented )
    {
      circuit_.add_not( t );
    }
    circuit_.add_cnot( a.line, c.line );
    circuit_.add_cnot( a.line, b.line );
  }

  void claim_outputs()
  {
    const bool need_copy = params_.cleanup == cleanup_strategy::bennett;
    std::vector<bool> line_claimed( circuit_.num_lines() + xmg_.num_pos(), false );
    for ( unsigned o = 0; o < xmg_.num_pos(); ++o )
    {
      const auto po = xmg_.po( o );
      const auto node = po >> 1;
      const bool compl_flag = po & 1u;
      if ( node == 0u )
      {
        const auto t = alloc_line( "y" + std::to_string( o ) );
        if ( compl_flag )
        {
          circuit_.add_not( t );
        }
        finish_output( t, o );
        continue;
      }
      const auto line = node_line_[node];
      assert( line != no_line );
      const bool is_pi_line = node <= xmg_.num_pis();
      // refs_[node] now holds the number of *output* uses left unprocessed
      // plus unconsumed fanouts; claiming in place is only safe for the
      // unique user of the line.
      if ( need_copy || is_pi_line || line_claimed[line] || refs_[node] > 1u )
      {
        const auto t = alloc_line( "y" + std::to_string( o ) );
        circuit_.add_cnot( line, t );
        if ( compl_flag )
        {
          circuit_.add_not( t );
        }
        finish_output( t, o );
      }
      else
      {
        if ( compl_flag )
        {
          circuit_.add_not( line );
        }
        finish_output( line, o );
        line_claimed[line] = true;
      }
    }
  }

  void finish_output( std::uint32_t line, unsigned index )
  {
    auto& info = circuit_.line( line );
    info.output_index = static_cast<int>( index );
    info.is_garbage = false;
  }

  const xmg_network& xmg_;
  const hierarchical_params& params_;
  hierarchical_stats* stats_;
  reversible_circuit circuit_;
  std::vector<std::uint32_t> refs_;
  std::vector<std::uint32_t> node_line_;
  std::vector<std::uint32_t> free_lines_;
  std::size_t cone_gate_counts_ = 0;
};

} // namespace

reversible_circuit hierarchical_synthesize( const xmg_network& xmg,
                                            const hierarchical_params& params,
                                            hierarchical_stats* stats )
{
  hierarchical_engine engine( xmg, params, stats );
  return engine.run();
}

} // namespace qsyn
