/// \file esop_synth.hpp
/// \brief ESOP-based reversible synthesis (REVS [9], paper Sec. IV-B).
///
/// Input is a multi-output ESOP over the primary inputs.  With p = 0, each
/// product term of k literals becomes one Toffoli gate with k mixed-polarity
/// controls targeting an output line; terms shared between outputs are
/// realized once and copied with CNOTs (the circuit then uses exactly
/// n + m = 2n lines for the reciprocal).  With p > 0, the synthesizer runs
/// p rounds of common-subexpression factoring: the most frequent co-occurring
/// control pair is computed once onto a fresh ancilla line (one 2-control
/// Toffoli), every term containing the pair drops a control, and the
/// ancillae are uncomputed at the end.  This trades additional lines for a
/// lower total T-count, exactly the tradeoff reported in Table III.

#pragma once

#include <cstdint>

#include "../logic/cube.hpp"
#include "../reversible/circuit.hpp"

namespace qsyn
{

struct esop_synth_params
{
  /// Number of factoring rounds (paper's p; 0 disables factoring).
  unsigned p = 0;
  /// A factor must appear in at least this many terms to be extracted.
  unsigned min_factor_uses = 2;
};

struct esop_synth_stats
{
  unsigned ancilla_lines = 0;
  unsigned factored_pairs = 0;
};

/// Synthesizes a reversible circuit from a multi-output ESOP.  Lines 0..n-1
/// carry the inputs (preserved), lines n..n+m-1 the outputs (constant-0
/// initialized), further lines are factoring ancillae (returned to 0).
reversible_circuit esop_synthesize( const esop& expression,
                                    const esop_synth_params& params = {},
                                    esop_synth_stats* stats = nullptr );

} // namespace qsyn
