#include "esop_synth.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <vector>

#include "../common/bits.hpp"

namespace qsyn
{

namespace
{

/// A term during synthesis: control set over circuit lines (inputs or
/// factoring ancillae) and the outputs it feeds.
struct synth_term
{
  std::vector<control> controls;
  std::uint64_t output_mask = 0;
};

/// Key identifying a factorable control pair.
struct pair_key
{
  control a;
  control b;

  bool operator<( const pair_key& other ) const
  {
    if ( a.line != other.a.line )
    {
      return a.line < other.a.line;
    }
    if ( a.positive != other.a.positive )
    {
      return a.positive < other.a.positive;
    }
    if ( b.line != other.b.line )
    {
      return b.line < other.b.line;
    }
    return b.positive < other.b.positive;
  }
};

bool has_control( const std::vector<control>& controls, const control& c )
{
  return std::find( controls.begin(), controls.end(), c ) != controls.end();
}

} // namespace

reversible_circuit esop_synthesize( const esop& expression, const esop_synth_params& params,
                                    esop_synth_stats* stats )
{
  const auto n = expression.num_inputs;
  const auto m = expression.num_outputs;

  reversible_circuit circuit( n + m );
  for ( unsigned i = 0; i < n; ++i )
  {
    auto& info = circuit.line( i );
    info.name = "x" + std::to_string( i );
    info.is_primary_input = true;
    info.is_garbage = true; // inputs come out unchanged but are not outputs
  }
  for ( unsigned o = 0; o < m; ++o )
  {
    auto& info = circuit.line( n + o );
    info.name = "y" + std::to_string( o );
    info.is_constant_input = true;
    info.constant_value = false;
    info.output_index = static_cast<int>( o );
    info.is_garbage = false;
  }

  // Initial terms: cube literals become mixed-polarity controls on input
  // lines.
  std::vector<synth_term> terms;
  terms.reserve( expression.terms.size() );
  for ( const auto& t : expression.terms )
  {
    synth_term st;
    st.output_mask = t.output_mask;
    st.controls.reserve( static_cast<std::size_t>( t.product.num_literals() ) );
    for ( auto m = t.product.mask; m != 0u; m &= m - 1u )
    {
      const auto v = static_cast<unsigned>( lsb_index( m ) );
      st.controls.push_back( { v, t.product.var_polarity( v ) } );
    }
    terms.push_back( std::move( st ) );
  }

  // --- factoring rounds (p > 0) --------------------------------------------
  // Each round extracts the most frequent control pair into an ancilla.
  // The compute gates are collected so they can be replayed in reverse to
  // restore the ancillae to 0.
  reversible_circuit compute_prefix( 0 ); // gate recording via index window
  const std::size_t factor_gates_begin = circuit.num_gates();
  unsigned factored = 0;
  for ( unsigned round = 0; round < params.p; ++round )
  {
    std::map<pair_key, unsigned> frequency;
    for ( const auto& t : terms )
    {
      for ( std::size_t i = 0; i < t.controls.size(); ++i )
      {
        for ( std::size_t j = i + 1u; j < t.controls.size(); ++j )
        {
          auto a = t.controls[i];
          auto b = t.controls[j];
          if ( b.line < a.line )
          {
            std::swap( a, b );
          }
          ++frequency[{ a, b }];
        }
      }
    }
    const auto best = std::max_element(
        frequency.begin(), frequency.end(),
        []( const auto& x, const auto& y ) { return x.second < y.second; } );
    if ( best == frequency.end() || best->second < params.min_factor_uses )
    {
      break;
    }
    const auto key = best->first;
    // Allocate the ancilla and compute the conjunction once.
    line_info info;
    info.name = "f" + std::to_string( factored );
    info.is_constant_input = true;
    info.constant_value = false;
    info.is_garbage = false; // restored to 0
    const auto ancilla = circuit.add_line( info );
    circuit.add_mct( { key.a, key.b }, ancilla );
    ++factored;
    // Rewrite all terms containing the pair.
    for ( auto& t : terms )
    {
      if ( has_control( t.controls, key.a ) && has_control( t.controls, key.b ) )
      {
        t.controls.erase( std::remove_if( t.controls.begin(), t.controls.end(),
                                          [&]( const control& c ) {
                                            return c == key.a || c == key.b;
                                          } ),
                          t.controls.end() );
        t.controls.push_back( { ancilla, true } );
      }
    }
  }
  const std::size_t factor_gates_end = circuit.num_gates();
  (void)compute_prefix;

  // --- term emission with shared-output copying ------------------------------
  // Group terms by output mask; a multi-output group is realized once on a
  // still-clean output line and copied to the others with CNOTs.
  std::map<std::uint64_t, std::vector<const synth_term*>> groups;
  for ( const auto& t : terms )
  {
    if ( t.output_mask != 0u )
    {
      groups[t.output_mask].push_back( &t );
    }
  }
  std::vector<bool> line_dirty( m, false );
  // Multi-output groups first (they need a clean representative line).
  std::vector<std::pair<std::uint64_t, const std::vector<const synth_term*>*>> ordered;
  for ( const auto& [mask, group] : groups )
  {
    ordered.emplace_back( mask, &group );
  }
  std::sort( ordered.begin(), ordered.end(), []( const auto& a, const auto& b ) {
    return popcount64( a.first ) > popcount64( b.first );
  } );

  for ( const auto& [mask, group] : ordered )
  {
    std::vector<unsigned> outs;
    for ( unsigned o = 0; o < m; ++o )
    {
      if ( ( mask >> o ) & 1u )
      {
        outs.push_back( o );
      }
    }
    if ( outs.size() == 1u )
    {
      for ( const auto* t : *group )
      {
        circuit.add_mct( t->controls, n + outs[0] );
      }
      line_dirty[outs[0]] = true;
      continue;
    }
    // Find a clean representative.
    int rep = -1;
    for ( const auto o : outs )
    {
      if ( !line_dirty[o] )
      {
        rep = static_cast<int>( o );
        break;
      }
    }
    if ( rep >= 0 )
    {
      for ( const auto* t : *group )
      {
        circuit.add_mct( t->controls, n + static_cast<unsigned>( rep ) );
      }
      for ( const auto o : outs )
      {
        if ( static_cast<int>( o ) != rep )
        {
          circuit.add_cnot( n + static_cast<unsigned>( rep ), n + o );
          line_dirty[o] = true;
        }
      }
      line_dirty[static_cast<unsigned>( rep )] = true;
    }
    else
    {
      // No clean line left: duplicate the Toffolis per output.
      for ( const auto o : outs )
      {
        for ( const auto* t : *group )
        {
          circuit.add_mct( t->controls, n + o );
        }
        line_dirty[o] = true;
      }
    }
  }

  // --- uncompute factoring ancillae ----------------------------------------
  circuit.append_reversed_window( factor_gates_begin, factor_gates_end );

  if ( stats )
  {
    stats->ancilla_lines = factored;
    stats->factored_pairs = factored;
  }
  return circuit;
}

} // namespace qsyn
