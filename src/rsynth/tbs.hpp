/// \file tbs.hpp
/// \brief Transformation-based synthesis of reversible functions
/// (Miller-Maslov-Dueck; RevKit's `tbs`).
///
/// The synthesizer walks the truth table of the reversible function in
/// ascending order and appends Toffoli gates that map each row's current
/// image to its index without disturbing earlier rows; the emitted circuit,
/// reversed, realizes the function.  The bidirectional variant may instead
/// fix a row from the input side when that needs fewer bit flips, which is
/// the standard gate-count improvement.
///
/// Rather than scanning the full table per gate, both directions update the
/// permutation and its inverse only on the affected subcube (a gate with
/// control set C touches exactly the 2^(r-|C|-1) state pairs that satisfy
/// C) — the same locality that the symbolic variant of [7] exploits; this
/// keeps explicit synthesis practical through r ~ 20 lines.
///
/// Substitution note (DESIGN.md): the paper runs the BDD-based symbolic
/// variant `tbs -s` to push the bitwidth further; the circuits produced are
/// the same as the explicit algorithm's, so the quality columns of Table II
/// are reproduced faithfully for the sizes we can afford.

#pragma once

#include <cstdint>
#include <vector>

#include "../common/budget.hpp"
#include "../reversible/circuit.hpp"

namespace qsyn
{

struct tbs_params
{
  bool bidirectional = true;
  /// Cooperative deadline, polled every 16 rows.  TBS has no meaningful
  /// partial result (a half-fixed permutation is not a circuit of the
  /// function), so expiry throws `qsyn::budget_exhausted`.
  deadline stop;
};

/// Synthesizes a reversible circuit realizing the given permutation over
/// r = log2(perm.size()) lines.  The permutation acts on state indices
/// whose bit i is line i.  Throws `qsyn::budget_exhausted` when
/// `params.stop` expires mid-synthesis.
reversible_circuit tbs_synthesize( std::vector<std::uint64_t> permutation,
                                   const tbs_params& params = {} );

} // namespace qsyn
