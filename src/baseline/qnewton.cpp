#include "qnewton.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "../common/bits.hpp"
#include "../verilog/generators.hpp"
#include "arith.hpp"

namespace qsyn
{

namespace
{

class qnewton_builder
{
public:
  qnewton_builder( unsigned n, const qnewton_params& params ) : n_( n ), params_( params )
  {
    iterations_ = params.iterations == 0u ? verilog::newton_iterations( n ) : params.iterations;
    wq_ = 2u * n + 3u;
    eb_ = std::max( 1u, ceil_log2( n ) );
  }

  qnewton_result run()
  {
    allocate_registers();
    priority_encode();
    normalize();
    initial_estimate();
    for ( unsigned k = 1; k <= iterations_; ++k )
    {
      iterate( k );
    }
    denormalize();
    qnewton_result result;
    result.circuit = std::move( circuit_ );
    result.iterations = iterations_;
    return result;
  }

private:
  std::vector<std::uint32_t> alloc_register( const std::string& prefix, unsigned width,
                                             bool primary_input = false )
  {
    std::vector<std::uint32_t> lines;
    lines.reserve( width );
    for ( unsigned i = 0; i < width; ++i )
    {
      line_info info;
      info.name = prefix + std::to_string( i );
      if ( primary_input )
      {
        info.is_primary_input = true;
      }
      else
      {
        info.is_constant_input = true;
        info.constant_value = false;
      }
      lines.push_back( circuit_.add_line( info ) );
    }
    return lines;
  }

  void allocate_registers()
  {
    x_ = alloc_register( "x", n_, true );
    s_ = alloc_register( "s", eb_ );
    xp_ = alloc_register( "p", n_ );
    xi_.resize( iterations_ + 1u );
    for ( unsigned k = 0; k <= iterations_; ++k )
    {
      xi_[k] = alloc_register( "i" + std::to_string( k ) + "_", wq_ );
    }
    t1_ = alloc_register( "t", wq_ );
    t2_ = alloc_register( "u", wq_ );
    zpool_ = alloc_register( "z", wq_ );
    ye_ = alloc_register( "g", n_ );
    cin_ = alloc_register( "c", 1 )[0];
  }

  /// Writes s = n-1-i into S for the leading-one position i, using the
  /// direct first-one condition (x_i = 1, x_j = 0 for j > i).
  void priority_encode()
  {
    for ( unsigned i = 0; i < n_; ++i )
    {
      const unsigned s_value = n_ - 1u - i;
      if ( s_value == 0u )
      {
        continue; // nothing to write
      }
      std::vector<control> cond;
      cond.push_back( { x_[i], true } );
      for ( unsigned j = i + 1u; j < n_; ++j )
      {
        cond.push_back( { x_[j], false } );
      }
      for ( unsigned b = 0; b < eb_; ++b )
      {
        if ( ( s_value >> b ) & 1u )
        {
          circuit_.add_mct( cond, s_[b] );
        }
      }
    }
  }

  /// XP = x << s (the wrapped-around top bits are the leading zeros of x).
  void normalize()
  {
    for ( unsigned i = 0; i < n_; ++i )
    {
      circuit_.add_cnot( x_[i], xp_[i] );
    }
    barrel_rotate_left( circuit_, xp_, s_ );
  }

  /// Shifted (optionally controlled / subtracting) addition of the
  /// multiplicand register into an accumulator at bit offset `offset`
  /// (negative offsets drop low multiplicand bits — fixed-point
  /// truncation).  Zero-pool lines pad the remaining lanes.
  void add_shifted( const std::vector<std::uint32_t>& multiplicand,
                    const std::vector<std::uint32_t>& acc, int offset, bool subtract,
                    std::optional<control> ctrl )
  {
    const auto w = static_cast<int>( acc.size() );
    // Lanes below the first live multiplicand bit add zero with zero carry
    // and can be skipped entirely — this variable adder width is the
    // "precision of the adders varied" optimization of QNEWTON.
    const int lane_lo = std::max( 0, offset );
    if ( lane_lo >= w )
    {
      return;
    }
    std::vector<std::uint32_t> a;
    std::vector<std::uint32_t> b;
    bool any = false;
    for ( int lane = lane_lo; lane < w; ++lane )
    {
      const int src = lane - offset;
      if ( src >= 0 && src < static_cast<int>( multiplicand.size() ) )
      {
        a.push_back( multiplicand[static_cast<std::size_t>( src )] );
        any = true;
      }
      else
      {
        a.push_back( zpool_[static_cast<std::size_t>( lane )] );
      }
      b.push_back( acc[static_cast<std::size_t>( lane )] );
    }
    if ( !any )
    {
      return;
    }
    if ( subtract )
    {
      cuccaro_subtract( circuit_, a, b, cin_, std::nullopt, ctrl );
    }
    else
    {
      cuccaro_add( circuit_, a, b, cin_, std::nullopt, ctrl );
    }
  }

  /// T1 (+/-)= x' * reg, textbook multiplication with multiplier bits
  /// limited to significance >= 2^-precision.  `xq_frac` selects the
  /// multiplicand (XP has n fraction bits).
  void multiply_xp_into_t1( const std::vector<std::uint32_t>& reg, unsigned precision,
                            bool subtract )
  {
    // reg is Q3.2n (multiplier); multiplicand XP bit k has weight 2^(k-n).
    // Term for multiplier bit m lands at accumulator position k + m - n.
    const unsigned m_low = precision >= 2u * n_ ? 0u : 2u * n_ - precision;
    for ( unsigned m = m_low; m < wq_; ++m )
    {
      add_shifted( xp_, t1_, static_cast<int>( m ) - static_cast<int>( n_ ), subtract,
                   control{ reg[m], true } );
    }
  }

  /// T2 (+/-)= prev * T1 (both Q3.2n; T1 may be negative).  Treating the
  /// two's-complement multiplier as unsigned over-counts by
  /// 2^wq * 2^-2n * prev when the sign bit is set (the scaled wrap term is
  /// not a multiple of 2^wq), so an explicit sign-controlled correction
  /// subtracts prev << (wq - 2n).
  void multiply_prev_t1_into_t2( const std::vector<std::uint32_t>& prev, unsigned precision,
                                 bool subtract )
  {
    const unsigned m_low = precision >= 2u * n_ ? 0u : 2u * n_ - precision;
    for ( unsigned m = m_low; m < wq_; ++m )
    {
      add_shifted( prev, t2_, static_cast<int>( m ) - static_cast<int>( 2u * n_ ), subtract,
                   control{ t1_[m], true } );
    }
    add_shifted( prev, t2_, static_cast<int>( wq_ ) - static_cast<int>( 2u * n_ ), !subtract,
                 control{ t1_[wq_ - 1u], true } );
  }

  /// x0 = 48/17 - 32/17 * x'.
  void initial_estimate()
  {
    const auto c32 = verilog::q3_constant( 32u, 17u, n_ );
    const auto c48 = verilog::q3_constant( 48u, 17u, 2u * n_ );
    // T1 = c32 * x' (classical constant times quantum x').
    const auto accumulate = [&]( bool subtract ) {
      for ( unsigned j = 0; j < c32.size(); ++j )
      {
        if ( c32[j] )
        {
          add_shifted( xp_, t1_, static_cast<int>( j ), subtract, std::nullopt );
        }
      }
    };
    accumulate( false );
    // XI0 = c48 - T1.
    xor_constant( circuit_, c48, xi_[0] );
    cuccaro_subtract( circuit_, t1_, xi_[0], cin_ );
    // Uncompute T1.
    accumulate( true );
  }

  unsigned precision_for( unsigned k ) const
  {
    const unsigned target = 2u * n_;
    const unsigned halvings = iterations_ - k;
    const unsigned base = target >> std::min( halvings, 31u );
    return std::min( target, base + params_.guard_bits );
  }

  void iterate( unsigned k )
  {
    const auto& prev = xi_[k - 1u];
    const auto& cur = xi_[k];
    const auto precision = precision_for( k );

    // A: T1 = x' * prev.
    multiply_xp_into_t1( prev, precision, false );
    // B: T1 = 1 - T1  (= ~T1 + 1 + 2^2n, constants via the zero pool).
    for ( const auto line : t1_ )
    {
      circuit_.add_not( line );
    }
    std::vector<bool> one_plus_one( wq_, false );
    one_plus_one[0] = true;       // +1 (two's complement)
    one_plus_one[2u * n_] = true; // +Q3.2n(1)
    add_constant( circuit_, one_plus_one, t1_, zpool_, cin_ );
    // C: T2 = prev * T1.
    multiply_prev_t1_into_t2( prev, precision, false );
    // D: cur = prev + T2.
    for ( unsigned i = 0; i < wq_; ++i )
    {
      circuit_.add_cnot( prev[i], cur[i] );
    }
    cuccaro_add( circuit_, t2_, cur, cin_ );
    // E: uncompute T2, then T1 (reverse of C, then B, then A).
    multiply_prev_t1_into_t2( prev, precision, true );
    add_constant( circuit_, one_plus_one, t1_, zpool_, cin_, true );
    for ( const auto line : t1_ )
    {
      circuit_.add_not( line );
    }
    multiply_xp_into_t1( prev, precision, true );
  }

  /// y_k = bit (2n + k) of (x_I << s); the extension register provides the
  /// headroom so the rotation is a clean shift.
  void denormalize()
  {
    std::vector<std::uint32_t> extended = xi_[iterations_];
    extended.insert( extended.end(), ye_.begin(), ye_.end() );
    barrel_rotate_left( circuit_, extended, s_ );
    for ( unsigned k = 0; k < n_; ++k )
    {
      auto& info = circuit_.line( extended[2u * n_ + k] );
      info.output_index = static_cast<int>( k );
      info.is_garbage = false;
    }
  }

  unsigned n_;
  qnewton_params params_;
  unsigned iterations_ = 0;
  unsigned wq_ = 0;
  unsigned eb_ = 0;
  reversible_circuit circuit_;

  std::vector<std::uint32_t> x_;
  std::vector<std::uint32_t> s_;
  std::vector<std::uint32_t> xp_;
  std::vector<std::vector<std::uint32_t>> xi_;
  std::vector<std::uint32_t> t1_;
  std::vector<std::uint32_t> t2_;
  std::vector<std::uint32_t> zpool_;
  std::vector<std::uint32_t> ye_;
  std::uint32_t cin_ = 0;
};

} // namespace

qnewton_result build_qnewton( unsigned n, const qnewton_params& params )
{
  qnewton_builder builder( n, params );
  return builder.run();
}

} // namespace qsyn
