#include "resdiv.hpp"

#include <cassert>
#include <deque>

#include "arith.hpp"

namespace qsyn
{

namespace
{

resdiv_result build_divider( unsigned width, bool constant_dividend, std::uint64_t dividend_value,
                             unsigned num_divisor_inputs, unsigned num_reciprocal_outputs )
{
  const auto w = width;
  resdiv_result result;
  auto& circuit = result.circuit;

  // Dividend lines a[0..w-1].
  for ( unsigned i = 0; i < w; ++i )
  {
    line_info info;
    info.name = "a" + std::to_string( i );
    if ( constant_dividend )
    {
      info.is_constant_input = true;
      info.constant_value = ( dividend_value >> i ) & 1u;
    }
    else
    {
      info.is_primary_input = true;
    }
    result.dividend_lines.push_back( circuit.add_line( info ) );
  }
  // Divisor lines b[0..w-1]; in the reciprocal instance only the low n
  // lines are variable (x), the rest is the zero extension.
  for ( unsigned i = 0; i < w; ++i )
  {
    line_info info;
    info.name = "b" + std::to_string( i );
    if ( i < num_divisor_inputs )
    {
      info.is_primary_input = true;
    }
    else
    {
      info.is_constant_input = true;
      info.constant_value = false;
    }
    result.divisor_lines.push_back( circuit.add_line( info ) );
  }
  // Remainder window ancillae (w+1 zero lines), plus the shared carry-in
  // and the divisor top-extension zero line.
  std::deque<std::uint32_t> window;
  for ( unsigned i = 0; i <= w; ++i )
  {
    line_info info;
    info.name = "r" + std::to_string( i );
    info.is_constant_input = true;
    info.constant_value = false;
    window.push_back( circuit.add_line( info ) );
  }
  line_info cin_info;
  cin_info.name = "cin";
  cin_info.is_constant_input = true;
  const auto cin = circuit.add_line( cin_info );
  line_info bz_info;
  bz_info.name = "bz";
  bz_info.is_constant_input = true;
  const auto b_zero = circuit.add_line( bz_info );

  std::vector<std::uint32_t> b_ext = result.divisor_lines;
  b_ext.push_back( b_zero );

  result.quotient_lines.assign( w, 0u );
  for ( unsigned step = 0; step < w; ++step )
  {
    const unsigned bit = w - 1u - step;
    // Shift: drop the (zero) top window line, bring in dividend bit `bit`.
    const auto freed = window.back();
    window.pop_back();
    window.push_front( result.dividend_lines[bit] );
    const std::vector<std::uint32_t> r_lines( window.begin(), window.end() );
    // Trial subtraction R -= B.
    cuccaro_subtract( circuit, b_ext, r_lines, cin );
    // Quotient bit = NOT sign.
    const auto sign = r_lines.back();
    circuit.add_cnot( sign, freed );
    circuit.add_not( freed );
    result.quotient_lines[bit] = freed;
    // Restore when the quotient bit is 0 (negative result).
    cuccaro_add( circuit, b_ext, r_lines, cin, std::nullopt, control{ freed, false } );
  }
  // Remainder: the low w window lines (the top line is 0 again).
  result.remainder_lines.assign( window.begin(), window.begin() + w );

  // Output/garbage annotations.
  if ( num_reciprocal_outputs > 0 )
  {
    for ( unsigned i = 0; i < num_reciprocal_outputs; ++i )
    {
      circuit.line( result.quotient_lines[i] ).output_index = static_cast<int>( i );
      circuit.line( result.quotient_lines[i] ).is_garbage = false;
    }
  }
  else
  {
    for ( unsigned i = 0; i < w; ++i )
    {
      circuit.line( result.quotient_lines[i] ).output_index = static_cast<int>( i );
      circuit.line( result.quotient_lines[i] ).is_garbage = false;
      circuit.line( result.remainder_lines[i] ).output_index = static_cast<int>( w + i );
      circuit.line( result.remainder_lines[i] ).is_garbage = false;
    }
  }
  return result;
}

} // namespace

resdiv_result build_restoring_divider( unsigned width )
{
  return build_divider( width, false, 0u, width, 0u );
}

resdiv_result build_resdiv_reciprocal( unsigned n )
{
  // 2n-bit divider computing 2^n / x; y is the low n quotient bits.
  return build_divider( 2u * n, true, std::uint64_t{ 1 } << n, n, n );
}

} // namespace qsyn
