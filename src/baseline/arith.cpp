#include "arith.hpp"

#include <cassert>
#include <stdexcept>

namespace qsyn
{

namespace
{

/// Emits a CNOT, upgraded to a Toffoli when a control is present.
void cnot_controlled( reversible_circuit& circuit, std::uint32_t from, std::uint32_t to,
                      const std::optional<control>& ctrl )
{
  if ( ctrl )
  {
    circuit.add_mct( { *ctrl, { from, true } }, to );
  }
  else
  {
    circuit.add_cnot( from, to );
  }
}

} // namespace

void cuccaro_add( reversible_circuit& circuit, const std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b, std::uint32_t carry_in,
                  std::optional<std::uint32_t> carry_out, std::optional<control> ctrl )
{
  assert( a.size() == b.size() );
  if ( a.empty() )
  {
    return;
  }
  const auto w = a.size();
  // carry line feeding bit i: carry_in for i = 0, a[i-1] afterwards.
  const auto carry_line = [&]( std::size_t i ) { return i == 0 ? carry_in : a[i - 1u]; };

  // MAJ ladder.  Only the b-writes are controlled.
  for ( std::size_t i = 0; i < w; ++i )
  {
    cnot_controlled( circuit, a[i], b[i], ctrl ); // b_i ^= a_i   (controlled)
    circuit.add_cnot( a[i], carry_line( i ) );    // c ^= a_i
    circuit.add_toffoli( carry_line( i ), b[i], a[i] );
  }
  if ( carry_out )
  {
    cnot_controlled( circuit, a[w - 1u], *carry_out, ctrl );
  }
  // UMA ladder (2-CNOT variant), descending.
  for ( std::size_t i = w; i > 0; --i )
  {
    const auto k = i - 1u;
    circuit.add_toffoli( carry_line( k ), b[k], a[k] );
    circuit.add_cnot( a[k], carry_line( k ) );
    cnot_controlled( circuit, carry_line( k ), b[k], ctrl ); // b_k ^= c  (controlled)
  }
}

void cuccaro_subtract( reversible_circuit& circuit, const std::vector<std::uint32_t>& a,
                       const std::vector<std::uint32_t>& b, std::uint32_t carry_in,
                       std::optional<std::uint32_t> borrow_out, std::optional<control> ctrl )
{
  // b - a = ~(~b + a); the X sandwich on b cancels itself when the
  // controlled adder core does not fire.
  for ( const auto line : b )
  {
    circuit.add_not( line );
  }
  cuccaro_add( circuit, a, b, carry_in, borrow_out, ctrl );
  for ( const auto line : b )
  {
    circuit.add_not( line );
  }
}

void add_constant( reversible_circuit& circuit, const std::vector<bool>& constant_bits,
                   const std::vector<std::uint32_t>& b, const std::vector<std::uint32_t>& scratch,
                   std::uint32_t carry_in, bool subtract, std::optional<control> ctrl )
{
  if ( scratch.size() < b.size() )
  {
    throw std::invalid_argument( "add_constant: scratch register too small" );
  }
  const std::vector<std::uint32_t> a( scratch.begin(),
                                      scratch.begin() + static_cast<std::ptrdiff_t>( b.size() ) );
  xor_constant( circuit, constant_bits, a );
  if ( subtract )
  {
    cuccaro_subtract( circuit, a, b, carry_in, std::nullopt, ctrl );
  }
  else
  {
    cuccaro_add( circuit, a, b, carry_in, std::nullopt, ctrl );
  }
  xor_constant( circuit, constant_bits, a );
}

void xor_constant( reversible_circuit& circuit, const std::vector<bool>& constant_bits,
                   const std::vector<std::uint32_t>& b )
{
  for ( std::size_t i = 0; i < b.size() && i < constant_bits.size(); ++i )
  {
    if ( constant_bits[i] )
    {
      circuit.add_not( b[i] );
    }
  }
}

void barrel_rotate_left( reversible_circuit& circuit, const std::vector<std::uint32_t>& reg,
                         const std::vector<std::uint32_t>& amount )
{
  const auto w = reg.size();
  for ( std::size_t j = 0; j < amount.size(); ++j )
  {
    const std::size_t d = std::size_t{ 1 } << j;
    if ( d >= w )
    {
      break; // rotations by >= w wrap fully; amounts are < w by contract
    }
    // Conditional rotate by d: a cyclic shift decomposes into gcd(w, d)
    // index cycles; each cycle (c0 c1 ... c_{k-1}) — value at c0 moving to
    // c1 and so on — is the transposition product (c0 c1)(c1 c2)...(c_{k-2}
    // c_{k-1}) applied right-to-left, so the circuit emits the swaps in
    // reverse chain order.
    std::vector<bool> visited( w, false );
    for ( std::size_t start = 0; start < w; ++start )
    {
      if ( visited[start] )
      {
        continue;
      }
      std::vector<std::pair<std::size_t, std::size_t>> chain;
      std::size_t p = start;
      visited[p] = true;
      for ( ;; )
      {
        const auto q = ( p + d ) % w;
        if ( q == start )
        {
          break;
        }
        chain.emplace_back( p, q );
        visited[q] = true;
        p = q;
      }
      for ( auto it = chain.rbegin(); it != chain.rend(); ++it )
      {
        circuit.add_fredkin( amount[j], reg[it->first], reg[it->second] );
      }
    }
  }
}

void barrel_rotate_right( reversible_circuit& circuit, const std::vector<std::uint32_t>& reg,
                          const std::vector<std::uint32_t>& amount )
{
  // Rotating right by d equals rotating left by w - d; simply reverse the
  // register view and reuse the left rotation.
  std::vector<std::uint32_t> reversed( reg.rbegin(), reg.rend() );
  barrel_rotate_left( circuit, reversed, amount );
}

} // namespace qsyn
