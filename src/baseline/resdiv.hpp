/// \file resdiv.hpp
/// \brief RESDIV: the manual restoring-division baseline (paper Sec. V,
/// following Thapliyal et al. [24]).
///
/// For w-bit inputs a (dividend) and b (divisor) the circuit computes the
/// w-bit quotient q and remainder r with a = q*b + r, using the classic
/// restoring scheme: per step, shift the partial remainder left (free line
/// relabeling), subtract b, derive the quotient bit from the sign, and
/// conditionally restore with an inversely-controlled re-addition.  The
/// freed window line of each step is recycled as the quotient bit, giving
/// ~3w lines overall.
///
/// The paper's RESDIV(n) baseline for the reciprocal instantiates the
/// divider at 2n bits (a = 2^n, b = x), so Table I reports the 2n-bit
/// instance.

#pragma once

#include "../reversible/circuit.hpp"

namespace qsyn
{

struct resdiv_result
{
  reversible_circuit circuit;
  std::vector<std::uint32_t> dividend_lines;  ///< inputs a (consumed)
  std::vector<std::uint32_t> divisor_lines;   ///< inputs b (preserved)
  std::vector<std::uint32_t> quotient_lines;  ///< outputs q
  std::vector<std::uint32_t> remainder_lines; ///< outputs r
};

/// Builds the w-bit restoring divider.
resdiv_result build_restoring_divider( unsigned width );

/// Builds the RESDIV(n) reciprocal baseline: the 2n-bit divider with the
/// dividend preset to the constant 2^n (flagged as constant inputs).
/// Outputs are the low n quotient bits (the reciprocal fraction y).
resdiv_result build_resdiv_reciprocal( unsigned n );

} // namespace qsyn
