/// \file qnewton.hpp
/// \brief QNEWTON: the manual Newton-Raphson reciprocal baseline
/// (paper Sec. V, in the spirit of [12], [13]).
///
/// The circuit follows the paper's description: bit-shift the input into
/// [1/2, 1) (Fredkin barrel using a priority-encoded shift amount), run
/// Newton iterations built from Cuccaro adders [25] and textbook
/// (controlled-shifted-add) multiplication, then shift back.  The adder /
/// multiplier precision grows with the iteration index — the "variable
/// internal precision" that lets QNEWTON use roughly half the qubits of
/// earlier Newton-style proposals.
///
/// Register layout (all LSB-first):
///   X   (n)      input x, preserved
///   S   (log n)  left-shift amount s = n-1-i (i = leading-one position)
///   XP  (n)      normalized x' fraction bits, x' in [1/2, 1)
///   XI_k(2n+3)   Q3.2n iterates x_0 .. x_I (Bennett ladder, one each)
///   T1,T2(2n+3)  per-iteration temporaries, uncomputed and reused
///   Z   (2n+3)   zero pool for constant operands (always restored)
///   YE  (n)      headroom for the final denormalization shift
///   cin (1)      adder carry ancilla

#pragma once

#include "../reversible/circuit.hpp"

namespace qsyn
{

struct qnewton_params
{
  /// Newton iteration count; 0 = the paper's schedule
  /// ceil(log2((n+1)/log2 17)).
  unsigned iterations = 0;
  /// Extra guard bits on the per-iteration precision schedule.
  unsigned guard_bits = 6;
};

struct qnewton_result
{
  reversible_circuit circuit;
  unsigned iterations = 0;
};

/// Builds the QNEWTON(n) reciprocal circuit.  Inputs are the n bits of x;
/// outputs the n fraction bits of y ~ 1/x (LSB first).
qnewton_result build_qnewton( unsigned n, const qnewton_params& params = {} );

} // namespace qsyn
