/// \file arith.hpp
/// \brief Reversible arithmetic building blocks for the manual baselines
/// (paper Sec. V): the Cuccaro ripple-carry adder [25] and its controlled /
/// subtracting variants, operating on caller-chosen line vectors of a
/// reversible circuit.
///
/// Conventions: all registers are LSB-first line vectors.  The in-place
/// adder computes b <- a + b and restores a and the carry ancilla.
/// Controlled variants take an optional control (line, polarity); only the
/// gates writing into b are controlled — the internal carry chain cancels
/// itself when the control is off, which keeps the overhead at two extra
/// Toffolis per bit.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "../reversible/circuit.hpp"

namespace qsyn
{

/// b <- a + b (mod 2^w).  `carry_in` must be a 0-ancilla (restored).
/// If `carry_out` is set, it receives (xor-accumulates) the carry.
void cuccaro_add( reversible_circuit& circuit, const std::vector<std::uint32_t>& a,
                  const std::vector<std::uint32_t>& b, std::uint32_t carry_in,
                  std::optional<std::uint32_t> carry_out = std::nullopt,
                  std::optional<control> ctrl = std::nullopt );

/// b <- b - a (mod 2^w) via the two's-complement sandwich
/// b - a = ~(~b + a).  If `borrow_out` is set it accumulates 1 iff a > b
/// (i.e. the subtraction wrapped).
void cuccaro_subtract( reversible_circuit& circuit, const std::vector<std::uint32_t>& a,
                       const std::vector<std::uint32_t>& b, std::uint32_t carry_in,
                       std::optional<std::uint32_t> borrow_out = std::nullopt,
                       std::optional<control> ctrl = std::nullopt );

/// Adds (or subtracts) the classical constant (LSB-first bits) into
/// register b by temporarily materializing it on the zero-valued `scratch`
/// register (X gates), adding, and unsetting.  scratch must have b.size()
/// lines, all holding 0; they are restored.
void add_constant( reversible_circuit& circuit, const std::vector<bool>& constant_bits,
                   const std::vector<std::uint32_t>& b, const std::vector<std::uint32_t>& scratch,
                   std::uint32_t carry_in, bool subtract = false,
                   std::optional<control> ctrl = std::nullopt );

/// XORs the classical constant onto register b (X gates on set bits).
void xor_constant( reversible_circuit& circuit, const std::vector<bool>& constant_bits,
                   const std::vector<std::uint32_t>& b );

/// Fredkin-based conditional ROTATE of `reg` towards the MSB by the value
/// held in register `amount` (one swap layer per amount bit).  A rotation
/// equals a shift whenever the bits that wrap around are zero — the
/// normalization and denormalization steps guarantee that headroom.
void barrel_rotate_left( reversible_circuit& circuit, const std::vector<std::uint32_t>& reg,
                         const std::vector<std::uint32_t>& amount );

/// Conditional rotate towards the LSB by a register amount.
void barrel_rotate_right( reversible_circuit& circuit, const std::vector<std::uint32_t>& reg,
                          const std::vector<std::uint32_t>& amount );

} // namespace qsyn
