#include <gtest/gtest.h>

#include "embed/embedding.hpp"
#include "synth/collapse.hpp"
#include "verilog/elaborator.hpp"
#include "verilog/generators.hpp"

using namespace qsyn;

namespace
{

std::vector<truth_table> reciprocal_tts( unsigned n )
{
  const auto mod = verilog::elaborate_verilog( verilog::generate_intdiv( n ) );
  return mod.aig.simulate_outputs();
}

bool is_bijection( const std::vector<std::uint64_t>& perm )
{
  std::vector<bool> seen( perm.size(), false );
  for ( const auto v : perm )
  {
    if ( v >= perm.size() || seen[v] )
    {
      return false;
    }
    seen[v] = true;
  }
  return true;
}

} // namespace

TEST( embedding, collision_count_identity_function )
{
  // f(x) = x is injective: mu = 1, no extra lines.
  std::vector<truth_table> outputs;
  for ( unsigned v = 0; v < 3; ++v )
  {
    outputs.push_back( truth_table::projection( 3, v ) );
  }
  EXPECT_EQ( max_collisions_explicit( outputs ), 1u );
  EXPECT_EQ( minimum_extra_lines( outputs ), 0u );
}

TEST( embedding, collision_count_constant_function )
{
  // f(x) = 0 for all x: mu = 2^n.
  std::vector<truth_table> outputs{ truth_table( 4 ) };
  EXPECT_EQ( max_collisions_explicit( outputs ), 16u );
  EXPECT_EQ( minimum_extra_lines( outputs ), 4u );
}

TEST( embedding, collision_count_and_gate )
{
  // AND: y=0 has 3 preimages -> 2 extra lines.
  std::vector<truth_table> outputs{ truth_table::projection( 2, 0 ) &
                                    truth_table::projection( 2, 1 ) };
  EXPECT_EQ( max_collisions_explicit( outputs ), 3u );
  EXPECT_EQ( minimum_extra_lines( outputs ), 2u );
}

TEST( embedding, bdd_collision_count_matches_explicit )
{
  for ( const unsigned n : { 3u, 4u, 5u, 6u } )
  {
    const auto mod = verilog::elaborate_verilog( verilog::generate_intdiv( n ) );
    const auto tts = mod.aig.simulate_outputs();
    EXPECT_EQ( max_collisions_bdd( mod.aig ), max_collisions_explicit( tts ) ) << "n=" << n;
  }
}

TEST( embedding, reciprocal_needs_2n_minus_1_lines )
{
  // The observation behind Table II: the reciprocal's optimum embedding has
  // 2n-1 lines (largest collision class has 2^(n-1)-1 elements).
  for ( const unsigned n : { 3u, 4u, 5u, 6u, 7u } )
  {
    const auto tts = reciprocal_tts( n );
    const auto emb = embed_optimum( tts );
    EXPECT_EQ( emb.num_lines, 2u * n - 1u ) << "n=" << n;
    EXPECT_EQ( emb.extra_lines, n - 1u ) << "n=" << n;
  }
}

TEST( embedding, optimum_embedding_is_bijective )
{
  const auto tts = reciprocal_tts( 4 );
  const auto emb = embed_optimum( tts );
  EXPECT_TRUE( is_bijection( emb.permutation ) );
}

TEST( embedding, optimum_embedding_satisfies_eq1 )
{
  // f'(x, 0) must carry f(x) on the top m bits (Eq. (1) of the paper).
  const auto tts = reciprocal_tts( 5 );
  const auto emb = embed_optimum( tts );
  const auto n = emb.num_inputs;
  const auto m = emb.num_outputs;
  const auto r = emb.num_lines;
  for ( std::uint64_t x = 0; x < ( std::uint64_t{ 1 } << n ); ++x )
  {
    const auto image = emb.permutation[x]; // ancilla bits are zero
    const auto y = image >> ( r - m );
    std::uint64_t expected = 0;
    for ( unsigned j = 0; j < m; ++j )
    {
      if ( tts[j].get_bit( x ) )
      {
        expected |= std::uint64_t{ 1 } << j;
      }
    }
    EXPECT_EQ( y, expected ) << "x=" << x;
  }
}

TEST( embedding, garbage_distinguishes_collisions )
{
  const auto tts = reciprocal_tts( 4 );
  const auto emb = embed_optimum( tts );
  // All valid inputs must map to distinct images (already implied by
  // bijectivity plus Eq. (1); checked directly for clarity).
  std::vector<std::uint64_t> images;
  for ( std::uint64_t x = 0; x < 16u; ++x )
  {
    images.push_back( emb.permutation[x] );
  }
  std::sort( images.begin(), images.end() );
  EXPECT_EQ( std::adjacent_find( images.begin(), images.end() ), images.end() );
}

TEST( embedding, bennett_layout )
{
  std::vector<truth_table> outputs{ truth_table::projection( 2, 0 ) ^
                                    truth_table::projection( 2, 1 ) };
  const auto emb = embed_bennett( outputs );
  EXPECT_EQ( emb.num_lines, 3u );
  EXPECT_TRUE( is_bijection( emb.permutation ) );
  // f'(x, t) = (x, t ^ f(x)).
  for ( std::uint64_t v = 0; v < 8; ++v )
  {
    const auto x = v & 3u;
    const auto t = v >> 2;
    const bool fx = outputs[0].get_bit( x );
    EXPECT_EQ( emb.permutation[v], x | ( ( t ^ ( fx ? 1u : 0u ) ) << 2 ) );
  }
}

TEST( embedding, bennett_line_count_is_n_plus_m )
{
  const auto tts = reciprocal_tts( 4 );
  const auto emb = embed_bennett( tts );
  EXPECT_EQ( emb.num_lines, 8u );
  EXPECT_TRUE( is_bijection( emb.permutation ) );
}

TEST( embedding, optimum_beats_bennett_on_reciprocal )
{
  // 2n-1 < 2n: the functional flow's qubit advantage (paper Sec. V).
  const auto tts = reciprocal_tts( 6 );
  EXPECT_LT( embed_optimum( tts ).num_lines, embed_bennett( tts ).num_lines );
}

TEST( embedding, injective_function_gets_no_extra_lines )
{
  // 3-bit cyclic increment: a permutation already.
  std::vector<truth_table> outputs( 3, truth_table( 3 ) );
  for ( std::uint64_t x = 0; x < 8; ++x )
  {
    const auto y = ( x + 1u ) & 7u;
    for ( unsigned j = 0; j < 3; ++j )
    {
      if ( ( y >> j ) & 1u )
      {
        outputs[j].set_bit( x, true );
      }
    }
  }
  const auto emb = embed_optimum( outputs );
  EXPECT_EQ( emb.num_lines, 3u );
  EXPECT_EQ( emb.extra_lines, 0u );
  EXPECT_TRUE( is_bijection( emb.permutation ) );
}
