/// Persistent artifact store: serialization round trips, corruption
/// tolerance, concurrency, cross-process reuse, and the cache's disk tier
/// (including the ESOP budget-upgrade path).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/dse.hpp"
#include "core/flows.hpp"
#include "store/artifact_store.hpp"
#include "store/serialize.hpp"
#include "synth/exorcism.hpp"
#include "verilog/elaborator.hpp"

using namespace qsyn;

namespace
{

/// Self-deleting store root.
struct temp_dir
{
  std::string path;
  temp_dir()
  {
    char pattern[] = "/tmp/qsyn-store-test-XXXXXX";
    path = ::mkdtemp( pattern );
  }
  ~temp_dir()
  {
    std::error_code ec;
    std::filesystem::remove_all( path, ec );
  }
};

aig_network elaborated_intdiv( unsigned n )
{
  return verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, n ) ).aig;
}

esop sample_esop()
{
  esop e;
  e.num_inputs = 5;
  e.num_outputs = 3;
  for ( std::uint64_t i = 0; i < 6; ++i )
  {
    esop_term term;
    term.product.mask = ( i * 7u + 1u ) & 0x1fu;
    term.product.polarity = term.product.mask & ( i + 3u );
    term.output_mask = ( i % 7u ) & 0x7u;
    e.terms.push_back( term );
  }
  return e;
}

} // namespace

// --- serialization round trips -----------------------------------------------

TEST( store_serialize, aig_round_trip_is_node_identical )
{
  const auto aig = elaborated_intdiv( 5 );
  const auto restored = store::deserialize_aig( store::serialize_aig( aig ) );
  EXPECT_EQ( restored.num_pis(), aig.num_pis() );
  EXPECT_EQ( restored.num_pos(), aig.num_pos() );
  EXPECT_EQ( restored.num_nodes(), aig.num_nodes() );
  EXPECT_EQ( restored.content_hash(), aig.content_hash() );
  // Strash stays live after raw reconstruction: re-creating an existing
  // AND must hash-cons, not append.
  auto mutated = restored;
  const auto nodes_before = mutated.num_nodes();
  mutated.create_and( mutated.fanin0( static_cast<std::uint32_t>( nodes_before ) - 1u ),
                      mutated.fanin1( static_cast<std::uint32_t>( nodes_before ) - 1u ) );
  EXPECT_EQ( mutated.num_nodes(), nodes_before );
}

TEST( store_serialize, esop_round_trip )
{
  const auto e = sample_esop();
  const auto restored = store::deserialize_esop( store::serialize_esop( e ) );
  EXPECT_EQ( restored.num_inputs, e.num_inputs );
  EXPECT_EQ( restored.num_outputs, e.num_outputs );
  ASSERT_EQ( restored.terms.size(), e.terms.size() );
  for ( std::size_t i = 0; i < e.terms.size(); ++i )
  {
    EXPECT_TRUE( restored.terms[i] == e.terms[i] ) << "term " << i;
  }
}

TEST( store_serialize, xmg_round_trip_is_node_identical )
{
  xmg_network g( 3 );
  const auto m = g.create_maj( g.pi( 0 ), g.pi( 1 ), g.pi( 2 ) );
  const auto x = g.create_xor( m, g.pi( 0 ) );
  g.add_po( g.create_maj( m, x, xmg_network::const1 ) );
  g.add_po( x ^ 1u );

  const auto restored = store::deserialize_xmg( store::serialize_xmg( g ) );
  ASSERT_EQ( restored.num_nodes(), g.num_nodes() );
  EXPECT_EQ( restored.num_maj(), g.num_maj() );
  EXPECT_EQ( restored.num_xor(), g.num_xor() );
  ASSERT_EQ( restored.pos().size(), g.pos().size() );
  EXPECT_EQ( restored.pos(), g.pos() );
  for ( std::uint32_t n = g.num_pis() + 1u; n < g.num_nodes(); ++n )
  {
    EXPECT_EQ( restored.kind( n ), g.kind( n ) ) << "node " << n;
    EXPECT_EQ( restored.fanins( n ), g.fanins( n ) ) << "node " << n;
  }
}

TEST( store_serialize, circuit_round_trip_preserves_gates_and_costs )
{
  flow_params params;
  params.kind = flow_kind::esop_based;
  params.esop_p = 1;
  const auto result = run_reciprocal_flow( reciprocal_design::intdiv, 4, params );
  const auto& circuit = result.circuit;

  const auto restored = store::deserialize_circuit( store::serialize_circuit( circuit ) );
  ASSERT_EQ( restored.num_lines(), circuit.num_lines() );
  ASSERT_EQ( restored.num_gates(), circuit.num_gates() );
  for ( unsigned l = 0; l < circuit.num_lines(); ++l )
  {
    const auto& a = restored.line( l );
    const auto& b = circuit.line( l );
    EXPECT_EQ( a.name, b.name );
    EXPECT_EQ( a.is_primary_input, b.is_primary_input );
    EXPECT_EQ( a.is_constant_input, b.is_constant_input );
    EXPECT_EQ( a.constant_value, b.constant_value );
    EXPECT_EQ( a.is_garbage, b.is_garbage );
    EXPECT_EQ( a.output_index, b.output_index );
  }
  for ( std::size_t g = 0; g < circuit.num_gates(); ++g )
  {
    const auto& a = restored.gates()[g];
    const auto& b = circuit.gates()[g];
    EXPECT_EQ( a.target, b.target );
    ASSERT_EQ( a.controls.size(), b.controls.size() );
    for ( std::size_t c = 0; c < b.controls.size(); ++c )
    {
      EXPECT_EQ( a.controls[c].line, b.controls[c].line );
      EXPECT_EQ( a.controls[c].positive, b.controls[c].positive );
    }
  }
  const auto costs = report_costs( restored );
  EXPECT_EQ( costs.qubits, result.costs.qubits );
  EXPECT_EQ( costs.t_count, result.costs.t_count );
  EXPECT_EQ( costs.depth, result.costs.depth );
}

TEST( store_serialize, readers_reject_malformed_payloads )
{
  // Truncation anywhere must throw, never read out of bounds.
  const auto aig_bytes = store::serialize_aig( elaborated_intdiv( 4 ) );
  for ( const std::size_t keep : { std::size_t{ 0 }, std::size_t{ 3 }, std::size_t{ 9 },
                                   aig_bytes.size() - 1u } )
  {
    const std::vector<std::uint8_t> cut( aig_bytes.begin(),
                                         aig_bytes.begin() + static_cast<long>( keep ) );
    EXPECT_THROW( store::deserialize_aig( cut ), store::deserialize_error ) << keep;
  }
  // Trailing garbage is corruption, not silently ignored.
  auto padded = aig_bytes;
  padded.push_back( 0x5a );
  EXPECT_THROW( store::deserialize_aig( padded ), store::deserialize_error );

  // AIG whose node references a future node.
  store::byte_writer w;
  w.u32( 1 );  // pis
  w.u32( 3 );  // nodes: const, pi, one and
  w.u32( 2 );  // fanin0 = pi 1
  w.u32( 90 ); // fanin1 = node 45: out of range
  w.u32( 0 );  // pos
  EXPECT_THROW( store::deserialize_aig( w.take() ), store::deserialize_error );

  // ESOP term with bits outside the declared variable range.
  store::byte_writer we;
  we.u32( 2 ); // inputs
  we.u32( 1 ); // outputs
  we.u32( 1 ); // terms
  we.u64( 0xff ); // mask beyond 2 variables
  we.u64( 0x1 );
  we.u64( 0x1 );
  EXPECT_THROW( store::deserialize_esop( we.take() ), store::deserialize_error );
}

// --- artifact store ----------------------------------------------------------

TEST( artifact_store, save_load_round_trip_and_stats )
{
  temp_dir dir;
  store::artifact_store s( dir.path + "/store" );
  const store::store_key key{ 0x1234abcdu, store::payload_kind::esop, "esop[r=2,exo=1]" };
  const std::vector<std::uint8_t> payload = { 1, 2, 3, 4, 5, 200, 0, 7 };

  EXPECT_FALSE( s.load( key ).has_value() ); // absent: plain miss
  EXPECT_TRUE( s.save( key, payload ) );
  const auto loaded = s.load( key );
  ASSERT_TRUE( loaded.has_value() );
  EXPECT_EQ( *loaded, payload );

  // A different key (same design, other params) does not alias.
  store::store_key other = key;
  other.param_key = "esop[r=3,exo=1]";
  EXPECT_FALSE( s.load( other ).has_value() );

  const auto stats = s.stats();
  EXPECT_EQ( stats.writes, 1u );
  EXPECT_EQ( stats.hits, 1u );
  EXPECT_EQ( stats.misses, 2u );
  EXPECT_EQ( stats.corrupt_entries, 0u );
}

TEST( artifact_store, corrupted_entries_degrade_to_miss )
{
  temp_dir dir;
  store::artifact_store s( dir.path + "/store" );
  const store::store_key key{ 42u, store::payload_kind::aig, "optimize[r=2]" };
  const std::vector<std::uint8_t> payload( 64, 0xab );
  ASSERT_TRUE( s.save( key, payload ) );
  const auto path = s.entry_path( key );

  const auto read_file = [&path] {
    std::ifstream in( path, std::ios::binary );
    return std::vector<char>( ( std::istreambuf_iterator<char>( in ) ),
                              std::istreambuf_iterator<char>() );
  };
  const auto write_file = [&path]( const std::vector<char>& bytes ) {
    std::ofstream out( path, std::ios::binary | std::ios::trunc );
    out.write( bytes.data(), static_cast<std::streamsize>( bytes.size() ) );
  };
  const auto original = read_file();

  // Truncated entry (header cut mid-field).
  write_file( std::vector<char>( original.begin(), original.begin() + 10 ) );
  EXPECT_FALSE( s.load( key ).has_value() );

  // Flipped payload byte fails the checksum.
  auto flipped = original;
  flipped.back() = static_cast<char>( flipped.back() ^ 0x40 );
  write_file( flipped );
  EXPECT_FALSE( s.load( key ).has_value() );

  // Mis-versioned entry (format_version is bytes 4..7).
  auto reversioned = original;
  reversioned[4] = static_cast<char>( reversioned[4] + 1 );
  write_file( reversioned );
  EXPECT_FALSE( s.load( key ).has_value() );

  // Arbitrary garbage.
  write_file( std::vector<char>( 37, 'x' ) );
  EXPECT_FALSE( s.load( key ).has_value() );

  // Empty file.
  write_file( {} );
  EXPECT_FALSE( s.load( key ).has_value() );

  const auto stats = s.stats();
  EXPECT_EQ( stats.corrupt_entries, 5u );

  // The intact entry still loads after restoring it.
  write_file( original );
  const auto loaded = s.load( key );
  ASSERT_TRUE( loaded.has_value() );
  EXPECT_EQ( *loaded, payload );
}

TEST( artifact_store, wrong_kind_or_design_hash_is_a_miss )
{
  temp_dir dir;
  store::artifact_store s( dir.path + "/store" );
  const store::store_key key{ 7u, store::payload_kind::xmg, "xmg[r=2,k=4]" };
  ASSERT_TRUE( s.save( key, { 1, 2, 3 } ) );

  // Copy the entry onto the path of a key with a different kind: the
  // header check must reject it instead of handing xmg bytes to an aig
  // reader.
  store::store_key wrong_kind = key;
  wrong_kind.kind = store::payload_kind::aig;
  std::filesystem::copy_file( s.entry_path( key ), s.entry_path( wrong_kind ) );
  EXPECT_FALSE( s.load( wrong_kind ).has_value() );

  store::store_key wrong_design = key;
  wrong_design.design_hash = 8u;
  std::filesystem::create_directories(
      std::filesystem::path( s.entry_path( wrong_design ) ).parent_path() );
  std::filesystem::copy_file( s.entry_path( key ), s.entry_path( wrong_design ) );
  EXPECT_FALSE( s.load( wrong_design ).has_value() );
  EXPECT_EQ( s.stats().corrupt_entries, 2u );
}

TEST( artifact_store, concurrent_writers_of_one_key_stay_consistent )
{
  temp_dir dir;
  store::artifact_store s( dir.path + "/store" );
  const store::store_key shared_key{ 99u, store::payload_kind::esop, "esop[r=1,exo=1]" };

  constexpr unsigned num_threads = 8;
  constexpr unsigned rounds = 40;
  std::vector<std::thread> threads;
  for ( unsigned t = 0; t < num_threads; ++t )
  {
    threads.emplace_back( [&s, &shared_key, t] {
      // Same-key writers race benignly; per-thread keys must never mix.
      const std::vector<std::uint8_t> shared_payload( 256, 0x77 );
      const store::store_key own_key{ 99u, store::payload_kind::esop,
                                      "esop[r=" + std::to_string( t + 2 ) + ",exo=1]" };
      const std::vector<std::uint8_t> own_payload( 64, static_cast<std::uint8_t>( t ) );
      for ( unsigned i = 0; i < rounds; ++i )
      {
        s.save( shared_key, shared_payload );
        s.save( own_key, own_payload );
        const auto got = s.load( own_key );
        if ( got )
        {
          ASSERT_EQ( *got, own_payload );
        }
        const auto sh = s.load( shared_key );
        if ( sh )
        {
          ASSERT_EQ( *sh, shared_payload );
        }
      }
    } );
  }
  for ( auto& t : threads )
  {
    t.join();
  }
  EXPECT_EQ( s.stats().corrupt_entries, 0u );
  EXPECT_EQ( s.stats().write_failures, 0u );
  // No temp files left behind.
  std::size_t leftovers = 0;
  for ( const auto& entry : std::filesystem::recursive_directory_iterator( dir.path ) )
  {
    if ( entry.is_regular_file() && entry.path().filename().string().rfind( ".tmp-", 0 ) == 0 )
    {
      ++leftovers;
    }
  }
  EXPECT_EQ( leftovers, 0u );
}

TEST( artifact_store, cross_process_round_trip )
{
  temp_dir dir;
  const auto root = dir.path + "/store";
  const store::store_key key{ 0xfeedfaceu, store::payload_kind::circuit, "flow[tbs]" };
  const std::vector<std::uint8_t> payload = { 9, 8, 7, 6, 5, 4, 3, 2, 1, 0 };

  // The writing process: a fork'd child with its own store instance.
  const pid_t pid = fork();
  ASSERT_GE( pid, 0 );
  if ( pid == 0 )
  {
    store::artifact_store writer( root );
    const bool ok = writer.save( key, payload );
    _exit( ok ? 0 : 1 );
  }
  int status = 0;
  ASSERT_EQ( waitpid( pid, &status, 0 ), pid );
  ASSERT_TRUE( WIFEXITED( status ) );
  ASSERT_EQ( WEXITSTATUS( status ), 0 );

  // A fresh store in this process hits what the other process wrote.
  store::artifact_store reader( root );
  const auto loaded = reader.load( key );
  ASSERT_TRUE( loaded.has_value() );
  EXPECT_EQ( *loaded, payload );
  EXPECT_EQ( reader.stats().hits, 1u );
}

// --- the cache's disk tier ---------------------------------------------------

TEST( cache_store_tier, warm_cache_recomputes_nothing_and_is_bit_identical )
{
  temp_dir dir;
  const auto root = dir.path + "/store";
  const auto aig = elaborated_intdiv( 5 );

  flow_params esop_params;
  esop_params.kind = flow_kind::esop_based;
  esop_params.esop_p = 1;
  flow_params hier_params;
  hier_params.kind = flow_kind::hierarchical;
  hier_params.cleanup = cleanup_strategy::bennett;

  // Cold: compute everything, write the store.
  flow_artifact_cache cold;
  cold.attach_store( std::make_shared<store::artifact_store>( root ) );
  const auto cold_esop = run_flow_staged( aig, esop_params, cold );
  const auto cold_hier = run_flow_staged( aig, hier_params, cold );
  const auto cold_stats = cold.stats();
  EXPECT_EQ( cold_stats.misses, 3u ); // optimize, esop, xmg
  EXPECT_EQ( cold_stats.store_hits, 0u );

  // Warm: a fresh cache and a fresh store instance on the same root — the
  // simulated "second process".  Every stage artifact must come from
  // disk; nothing recomputes.
  flow_artifact_cache warm;
  warm.attach_store( std::make_shared<store::artifact_store>( root ) );
  const auto warm_esop = run_flow_staged( aig, esop_params, warm );
  const auto warm_hier = run_flow_staged( aig, hier_params, warm );
  const auto warm_stats = warm.stats();
  EXPECT_EQ( warm_stats.misses, 0u );
  EXPECT_EQ( warm_stats.store_hits, cold_stats.misses );

  // Bit-identical synthesis results.
  EXPECT_EQ( warm_esop.costs.qubits, cold_esop.costs.qubits );
  EXPECT_EQ( warm_esop.costs.t_count, cold_esop.costs.t_count );
  EXPECT_EQ( warm_esop.costs.gates, cold_esop.costs.gates );
  EXPECT_EQ( warm_esop.costs.depth, cold_esop.costs.depth );
  EXPECT_EQ( warm_esop.esop_terms, cold_esop.esop_terms );
  EXPECT_EQ( warm_hier.costs.qubits, cold_hier.costs.qubits );
  EXPECT_EQ( warm_hier.costs.t_count, cold_hier.costs.t_count );
  EXPECT_EQ( warm_hier.costs.gates, cold_hier.costs.gates );
  EXPECT_EQ( warm_hier.xmg_maj, cold_hier.xmg_maj );
  EXPECT_EQ( warm_hier.xmg_xor, cold_hier.xmg_xor );
  EXPECT_TRUE( warm_esop.verified );
  EXPECT_TRUE( warm_hier.verified );
}

TEST( cache_store_tier, corrupt_store_entry_recomputes_silently )
{
  temp_dir dir;
  const auto root = dir.path + "/store";
  const auto aig = elaborated_intdiv( 4 );

  auto disk = std::make_shared<store::artifact_store>( root );
  flow_artifact_cache cold;
  cold.attach_store( disk );
  cold.optimized( aig, 2 );

  // Vandalize the optimized-AIG entry.
  const store::store_key key{ aig.content_hash(), store::payload_kind::aig, "optimize[r=2]" };
  {
    std::ofstream out( disk->entry_path( key ), std::ios::binary | std::ios::trunc );
    out << "not an artifact";
  }

  flow_artifact_cache warm;
  warm.attach_store( std::make_shared<store::artifact_store>( root ) );
  const auto& recomputed = warm.optimized( aig, 2 );
  EXPECT_EQ( warm.stats().misses, 1u ); // corrupt entry degraded to recompute
  EXPECT_EQ( warm.stats().store_hits, 0u );

  // ... and the recomputation repaired the entry on disk.
  flow_artifact_cache repaired;
  repaired.attach_store( std::make_shared<store::artifact_store>( root ) );
  const auto& reloaded = repaired.optimized( aig, 2 );
  EXPECT_EQ( repaired.stats().store_hits, 1u );
  EXPECT_EQ( reloaded.content_hash(), recomputed.content_hash() );
}

TEST( cache_store_tier, budget_exhausted_esop_upgrades_on_later_budget )
{
  const auto aig = elaborated_intdiv( 5 );

  // In-memory upgrade: a tight first budget leaves a half-minimized cube
  // list; a later unlimited requester re-minimizes instead of reusing it.
  flow_artifact_cache cache;
  exorcism_params tight;
  tight.pair_budget = 1;
  const auto& first = cache.esop_intermediate( aig, 2, true, tight );
  ASSERT_TRUE( first.budget_exhausted );
  const auto first_terms = first.terms;

  const auto& upgraded = cache.esop_intermediate( aig, 2, true, exorcism_params{} );
  EXPECT_FALSE( upgraded.budget_exhausted );
  EXPECT_LE( upgraded.terms, first_terms );
  // The reference handed out before the upgrade is retired, not destroyed.
  EXPECT_EQ( first.terms, first_terms );
  EXPECT_TRUE( first.budget_exhausted );

  // An already-minimized artifact is not re-minimized again (same object).
  const auto& again = cache.esop_intermediate( aig, 2, true, exorcism_params{} );
  EXPECT_EQ( &again, &upgraded );
}

TEST( cache_store_tier, budget_exhausted_store_entry_upgrades_across_processes )
{
  temp_dir dir;
  const auto root = dir.path + "/store";
  const auto aig = elaborated_intdiv( 5 );

  // "Process 1" stops at its pair budget and persists the exhausted entry.
  {
    flow_artifact_cache cache;
    cache.attach_store( std::make_shared<store::artifact_store>( root ) );
    exorcism_params tight;
    tight.pair_budget = 1;
    const auto& art = cache.esop_intermediate( aig, 2, true, tight );
    ASSERT_TRUE( art.budget_exhausted );
  }

  // "Process 2" warm-starts from the store with budget to spare: the
  // entry is served from disk, upgraded, and written back.
  {
    flow_artifact_cache cache;
    cache.attach_store( std::make_shared<store::artifact_store>( root ) );
    const auto& art = cache.esop_intermediate( aig, 2, true, exorcism_params{} );
    EXPECT_FALSE( art.budget_exhausted );
    EXPECT_EQ( cache.stats().store_hits, 1u );
    EXPECT_EQ( cache.stats().misses, 0u );
  }

  // "Process 3" reads the upgraded entry directly.
  {
    flow_artifact_cache cache;
    cache.attach_store( std::make_shared<store::artifact_store>( root ) );
    const auto& art = cache.esop_intermediate( aig, 2, true, exorcism_params{} );
    EXPECT_FALSE( art.budget_exhausted );
    EXPECT_EQ( cache.stats().store_hits, 1u );
  }
}

TEST( cache_store_tier, explore_options_store_warm_starts_a_sweep )
{
  temp_dir dir;
  const auto root = dir.path + "/store";

  explore_options options;
  options.num_threads = 2;
  options.verification = verify_mode::sampled;
  options.functional_max_bitwidth = 0; // esop + hierarchical only (disk-backed stages)
  options.store = std::make_shared<store::artifact_store>( root );
  const auto cold = explore_designs( { reciprocal_design::intdiv }, 4, 4, options );
  ASSERT_EQ( cold.size(), 1u );
  EXPECT_GT( cold[0].cache.misses, 0u );
  EXPECT_EQ( cold[0].cache.store_hits, 0u );

  explore_options warm_options = options;
  warm_options.store = std::make_shared<store::artifact_store>( root );
  const auto warm = explore_designs( { reciprocal_design::intdiv }, 4, 4, warm_options );
  ASSERT_EQ( warm.size(), 1u );
  EXPECT_EQ( warm[0].cache.misses, 0u );
  EXPECT_EQ( warm[0].cache.store_hits, cold[0].cache.misses );
  ASSERT_EQ( warm[0].points.size(), cold[0].points.size() );
  for ( std::size_t i = 0; i < cold[0].points.size(); ++i )
  {
    EXPECT_EQ( warm[0].points[i].result.costs.qubits, cold[0].points[i].result.costs.qubits );
    EXPECT_EQ( warm[0].points[i].result.costs.t_count, cold[0].points[i].result.costs.t_count );
    EXPECT_EQ( warm[0].points[i].result.costs.gates, cold[0].points[i].result.costs.gates );
  }
}
