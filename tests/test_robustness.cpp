/// Robustness suite: budgets, cooperative cancellation, verify-tier
/// degradation, per-design failure isolation, and deterministic fault
/// injection.  The central invariants:
///
///   * unlimited budgets are bit-identical to the unbudgeted engine,
///   * anytime kernels (EXORCISM, sampling) stop gracefully with honest
///     partial-result accounting; kernels without a partial result (TBS,
///     a mid-flight CDCL search) report `budget_exhausted` / `unknown`,
///   * one failing or hanging configuration/design never takes down a
///     sweep — it becomes a status record, everything else is unaffected.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/fault_injection.hpp"
#include "common/thread_pool.hpp"
#include "core/dse.hpp"
#include "reversible/verify.hpp"
#include "rsynth/tbs.hpp"
#include "sat/incremental.hpp"
#include "sat/solver.hpp"
#include "synth/exorcism.hpp"
#include "verilog/elaborator.hpp"
#include "verilog/parser.hpp"

using namespace qsyn;

namespace
{

/// A deadline that is already expired, without any wall-clock sleeping.
deadline expired_deadline()
{
  cancellation_token token;
  token.request_cancel();
  return deadline::with_token( token );
}

/// XOR spec plus a correct CNOT-CNOT realization of it, the minimal
/// fixture for the verification tiers.
struct xor_fixture
{
  aig_network aig{ 2 };
  reversible_circuit circuit{ 3 };

  xor_fixture()
  {
    aig.add_po( aig.create_xor( aig.pi( 0 ), aig.pi( 1 ) ) );
    circuit.line( 0 ).is_primary_input = true;
    circuit.line( 1 ).is_primary_input = true;
    circuit.line( 2 ).is_constant_input = true;
    circuit.line( 2 ).output_index = 0;
    circuit.line( 2 ).is_garbage = false;
    circuit.add_cnot( 0, 2 );
    circuit.add_cnot( 1, 2 );
  }
};

std::string tiny_xor_verilog()
{
  return "module f(a, b, y);\n"
         "  input a, b;\n"
         "  output y;\n"
         "  assign y = a ^ b;\n"
         "endmodule\n";
}

/// RAII disarm so an assertion failure cannot leak an armed site into
/// later tests.
struct fault_guard
{
  ~fault_guard() { fault_injection::disarm_all(); }
};

bool costs_equal( const dse_point& a, const dse_point& b )
{
  return a.label == b.label && a.result.costs.qubits == b.result.costs.qubits &&
         a.result.costs.t_count == b.result.costs.t_count &&
         a.result.costs.gates == b.result.costs.gates;
}

} // namespace

// --- deadline / cancellation primitives --------------------------------------

TEST( robustness_deadline, default_is_unlimited_and_never_expires )
{
  const deadline d;
  EXPECT_TRUE( d.unlimited() );
  EXPECT_FALSE( d.expired() );
  EXPECT_GT( d.remaining_seconds(), 1e12 );
}

TEST( robustness_deadline, nonpositive_seconds_mean_unlimited )
{
  EXPECT_TRUE( deadline::in( 0.0 ).unlimited() );
  EXPECT_TRUE( deadline::in( -1.0 ).unlimited() );
  EXPECT_FALSE( deadline::in( 3600.0 ).unlimited() );
  EXPECT_FALSE( deadline::in( 3600.0 ).expired() );
}

TEST( robustness_deadline, cancellation_token_expires_every_copy )
{
  cancellation_token token;
  const auto d = deadline::in( 3600.0, token );
  const auto copy = d;
  EXPECT_FALSE( d.expired() );
  token.request_cancel();
  EXPECT_TRUE( d.expired() );
  EXPECT_TRUE( copy.expired() );
  EXPECT_EQ( d.remaining_seconds(), 0.0 );
}

TEST( robustness_deadline, tightened_takes_the_tighter_limit )
{
  const auto loose = deadline::in( 3600.0 );
  const auto tight = loose.tightened( 0.5 );
  EXPECT_LT( tight.remaining_seconds(), 1.0 );
  // Tightening with a looser limit keeps the original.
  const auto kept = tight.tightened( 3600.0 );
  EXPECT_LT( kept.remaining_seconds(), 1.0 );
  // Nonpositive seconds leave the deadline unchanged (still unlimited here).
  EXPECT_TRUE( deadline{}.tightened( 0.0 ).unlimited() );
  EXPECT_FALSE( deadline{}.tightened( 1.0 ).unlimited() );
}

// --- thread pool: full exception collection + cancellation -------------------

TEST( robustness_pool, wait_all_collects_every_exception_of_a_batch )
{
  thread_pool pool( 4 );
  std::atomic<int> ran{ 0 };
  for ( int i = 0; i < 8; ++i )
  {
    pool.submit( [&ran, i] {
      ran.fetch_add( 1 );
      if ( i % 2 == 0 )
      {
        throw std::runtime_error( "job " + std::to_string( i ) );
      }
    } );
  }
  const auto errors = pool.wait_all();
  EXPECT_EQ( ran.load(), 8 );
  ASSERT_EQ( errors.size(), 4u ); // every failure, not just the first
  for ( const auto& error : errors )
  {
    EXPECT_THROW( std::rethrow_exception( error ), std::runtime_error );
  }
  // The batch is cleared: a fresh wait has nothing to report.
  EXPECT_TRUE( pool.wait_all().empty() );
}

TEST( robustness_pool, inline_pool_collects_every_exception_too )
{
  thread_pool pool( 1 );
  for ( int i = 0; i < 3; ++i )
  {
    pool.submit( [] { throw std::runtime_error( "inline boom" ); } );
  }
  EXPECT_EQ( pool.wait_all().size(), 3u );
}

TEST( robustness_pool, cancellation_token_reaches_job_deadlines )
{
  thread_pool pool( 2 );
  EXPECT_FALSE( pool.cancelled() );
  const auto job_deadline = deadline::with_token( pool.cancellation() );
  EXPECT_FALSE( job_deadline.expired() );
  pool.cancel();
  EXPECT_TRUE( pool.cancelled() );
  EXPECT_TRUE( job_deadline.expired() );
}

// --- SAT solver: cooperative deadline ----------------------------------------

TEST( robustness_solver, expired_deadline_returns_unknown )
{
  sat::solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  s.add_clause( { sat::pos_lit( a ), sat::pos_lit( b ) } );
  s.set_deadline( expired_deadline() );
  EXPECT_EQ( s.solve(), sat::result::unknown );
  // Clearing the deadline restores the verdict.
  s.set_deadline( deadline{} );
  EXPECT_EQ( s.solve(), sat::result::satisfiable );
}

// --- incremental CEC: unresolved outcomes instead of asserts -----------------

TEST( robustness_incremental, budget_exhaustion_reports_unresolved )
{
  // Functionally equal, structurally different XORs, with the window proof
  // disabled so only the solver could settle the miter.
  aig_network a( 2 );
  a.add_po( a.create_xor( a.pi( 0 ), a.pi( 1 ) ) );
  // (a & !b) | (!a & b): shares no AND node with create_xor's
  // !(a & b) & !(!a & !b) decomposition, so structural hashing cannot
  // merge the two outputs.
  aig_network b( 2 );
  b.add_po( b.create_or( b.create_and( b.pi( 0 ), lit_not( b.pi( 1 ) ) ),
                         b.create_and( lit_not( b.pi( 0 ) ), b.pi( 1 ) ) ) );

  sat::cec_options options;
  options.fraiging = false;
  options.output_window_max_pis = 0; // no uncapped narrow-design window
  options.fraig_window_depth = 0;    // no per-output window hint either
  options.fraig_window_nodes = 0;
  sat::incremental_cec engine( options );

  sat::check_limits limits;
  limits.stop = expired_deadline();
  const auto outcome = engine.check( a, b, limits );
  EXPECT_FALSE( outcome.resolved );

  // The same engine resolves the pair once the limits are lifted.
  const auto settled = engine.check( a, b );
  EXPECT_TRUE( settled.resolved );
  EXPECT_TRUE( settled.equivalent );
}

// --- TBS: no partial result, so expiry throws --------------------------------

TEST( robustness_tbs, expired_deadline_throws_budget_exhausted )
{
  std::vector<std::uint64_t> perm( 8 );
  for ( std::uint64_t i = 0; i < 8; ++i )
  {
    perm[i] = i ^ 5u; // any nontrivial permutation
  }
  tbs_params params;
  params.stop = expired_deadline();
  EXPECT_THROW( tbs_synthesize( perm, params ), budget_exhausted );
  // Unlimited deadline: same call succeeds.
  EXPECT_NO_THROW( tbs_synthesize( perm, tbs_params{} ) );
}

// --- EXORCISM: anytime, graceful stop ----------------------------------------

TEST( robustness_exorcism, pair_budget_stops_gracefully_and_preserves_function )
{
  std::mt19937_64 rng( 7 );
  esop expression;
  expression.num_inputs = 6;
  expression.num_outputs = 2;
  for ( int t = 0; t < 24; ++t )
  {
    const std::uint64_t mask = rng() & 0x3Fu;
    expression.terms.push_back( { cube{ mask, rng() & mask }, 1u + ( rng() & 1u ) } );
  }
  const auto reference = expression;

  exorcism_params params;
  params.pair_budget = 1;
  auto limited = expression;
  const auto stats = exorcism( limited, params );
  EXPECT_TRUE( stats.budget_exhausted );
  EXPECT_LE( stats.pairs_attempted, params.pair_budget + 1 );
  for ( unsigned output = 0; output < reference.num_outputs; ++output )
  {
    for ( std::uint64_t input = 0; input < ( 1u << reference.num_inputs ); ++input )
    {
      ASSERT_EQ( limited.evaluate( input, output ), reference.evaluate( input, output ) );
    }
  }
}

TEST( robustness_exorcism, expired_deadline_stops_on_the_first_attempt )
{
  std::mt19937_64 rng( 11 );
  esop expression;
  expression.num_inputs = 5;
  expression.num_outputs = 1;
  for ( int t = 0; t < 16; ++t )
  {
    const std::uint64_t mask = rng() & 0x1Fu;
    expression.terms.push_back( { cube{ mask, rng() & mask }, 1u } );
  }
  exorcism_params params;
  params.stop = expired_deadline();
  const auto stats = exorcism( expression, params );
  EXPECT_TRUE( stats.budget_exhausted );
}

TEST( robustness_exorcism, unlimited_params_match_the_plain_overload )
{
  std::mt19937_64 rng( 13 );
  esop a;
  a.num_inputs = 6;
  a.num_outputs = 2;
  for ( int t = 0; t < 20; ++t )
  {
    const std::uint64_t mask = rng() & 0x3Fu;
    a.terms.push_back( { cube{ mask, rng() & mask }, 1u + ( rng() & 1u ) } );
  }
  auto b = a;
  const auto plain = exorcism( a );
  const auto limited = exorcism( b, exorcism_params{} );
  EXPECT_FALSE( limited.budget_exhausted );
  EXPECT_EQ( plain.final_terms, limited.final_terms );
  EXPECT_EQ( plain.final_literals, limited.final_literals );
  EXPECT_EQ( a.terms.size(), b.terms.size() );
}

// --- budgeted simulation tiers: honest partial coverage ----------------------

TEST( robustness_verify, expired_deadline_yields_partial_report_with_zero_coverage )
{
  const xor_fixture fx;
  const auto report = verify_against_aig_sampled_budgeted( fx.circuit, fx.aig,
                                                           expired_deadline() );
  EXPECT_FALSE( report.complete );
  EXPECT_EQ( report.assignments_completed, 0u );
  EXPECT_GT( report.assignments_requested, 0u );
  EXPECT_FALSE( report.counterexample.has_value() );
}

TEST( robustness_verify, unlimited_deadline_matches_the_unbudgeted_tiers )
{
  const xor_fixture fx;
  const auto sampled = verify_against_aig_sampled_budgeted( fx.circuit, fx.aig, deadline{} );
  EXPECT_TRUE( sampled.complete );
  EXPECT_EQ( sampled.assignments_completed, sampled.assignments_requested );
  EXPECT_FALSE( sampled.counterexample.has_value() );

  const auto exhaustive =
      verify_against_aig_exhaustive_budgeted( fx.circuit, fx.aig, deadline{} );
  EXPECT_TRUE( exhaustive.complete );
  EXPECT_EQ( exhaustive.assignments_requested, 4u ); // 2^2 inputs
  EXPECT_EQ( exhaustive.assignments_completed, 4u );
  EXPECT_FALSE( exhaustive.counterexample.has_value() );
}

TEST( robustness_verify, partial_report_counterexample_is_always_real )
{
  const xor_fixture fx;
  const auto corrupted = corrupt_circuit( fx.circuit, fx.aig );
  const auto report =
      verify_against_aig_exhaustive_budgeted( corrupted, fx.aig, deadline{} );
  ASSERT_TRUE( report.counterexample.has_value() );
  // Unlimited-deadline budgeted tier walks the same counter order as the
  // plain tier, so both must report the same first failing assignment.
  const auto plain = verify_against_aig_exhaustive( corrupted, fx.aig );
  ASSERT_TRUE( plain.has_value() );
  EXPECT_EQ( *report.counterexample, *plain );
}

// --- verify-tier degradation ladder in the flow ------------------------------

TEST( robustness_flows, sat_budget_exhaustion_degrades_to_exhaustive_proof )
{
  fault_guard guard;
  const auto mod = verilog::elaborate_verilog( tiny_xor_verilog() );
  flow_params params;
  params.kind = flow_kind::esop_based;
  params.verification = verify_mode::sat;

  flow_artifact_cache cache;
  fault_injection::arm( "verify.sat", fault_injection::kind::trip );
  const auto result = run_flow_staged( mod.aig, params, cache );
  fault_injection::disarm_all();

  EXPECT_TRUE( result.verify_downgraded );
  EXPECT_EQ( result.verified_with, verify_mode::exhaustive );
  EXPECT_TRUE( result.verified );
  // A complete exhaustive fallback is still a proof: the flow stays `ok`.
  EXPECT_EQ( result.status, flow_status::ok );
  EXPECT_TRUE( result.verify_complete );
}

TEST( robustness_flows, sat_budget_exhaustion_degrades_to_sampled_when_too_wide )
{
  fault_guard guard;
  const auto mod = verilog::elaborate_verilog( tiny_xor_verilog() );
  flow_params params;
  params.kind = flow_kind::esop_based;
  params.verification = verify_mode::sat;
  params.limits.exhaustive_fallback_max_pis = 0; // force the sampled rung

  flow_artifact_cache cache;
  fault_injection::arm( "verify.sat", fault_injection::kind::trip );
  const auto result = run_flow_staged( mod.aig, params, cache );
  fault_injection::disarm_all();

  EXPECT_TRUE( result.verify_downgraded );
  EXPECT_EQ( result.verified_with, verify_mode::sampled );
  EXPECT_TRUE( result.verified );
  // Sampling is weaker than the requested proof: recorded as degraded.
  EXPECT_EQ( result.status, flow_status::degraded );
}

TEST( robustness_flows, unarmed_sat_tier_is_unaffected )
{
  const auto mod = verilog::elaborate_verilog( tiny_xor_verilog() );
  flow_params params;
  params.kind = flow_kind::esop_based;
  params.verification = verify_mode::sat;
  flow_artifact_cache cache;
  const auto result = run_flow_staged( mod.aig, params, cache );
  EXPECT_TRUE( result.verified );
  EXPECT_FALSE( result.verify_downgraded );
  EXPECT_EQ( result.verified_with, verify_mode::sat );
  EXPECT_EQ( result.status, flow_status::ok );
}

// --- fault injection: cache-miss and stage-failure sites ---------------------

TEST( robustness_faults, tripped_cache_hit_recomputes_without_changing_results )
{
  fault_guard guard;
  const auto mod = verilog::elaborate_verilog( tiny_xor_verilog() );
  flow_params params;
  params.kind = flow_kind::hierarchical;

  flow_artifact_cache cache;
  const auto baseline = run_flow_staged( mod.aig, params, cache );
  const auto misses_before = cache.stats().misses;

  fault_injection::arm( "cache.hit", fault_injection::kind::trip );
  const auto rerun = run_flow_staged( mod.aig, params, cache );
  EXPECT_GT( fault_injection::hits( "cache.hit" ), 0u ); // before disarm: it resets counters
  fault_injection::disarm_all();

  EXPECT_GT( cache.stats().misses, misses_before ); // forced misses were accounted
  EXPECT_EQ( baseline.costs.qubits, rerun.costs.qubits );
  EXPECT_EQ( baseline.costs.t_count, rerun.costs.t_count );
  EXPECT_EQ( baseline.costs.gates, rerun.costs.gates );
}

TEST( robustness_faults, hits_counts_polls_and_disarm_resets )
{
  fault_guard guard;
  fault_injection::arm( "flow.esop", fault_injection::kind::trip, 1000 );
  EXPECT_FALSE( fault_injection::poll( "flow.esop" ) ); // inside after_hits window
  EXPECT_FALSE( fault_injection::poll( "flow.esop" ) );
  EXPECT_EQ( fault_injection::hits( "flow.esop" ), 2u );
  fault_injection::disarm_all();
  EXPECT_EQ( fault_injection::hits( "flow.esop" ), 0u );
  EXPECT_FALSE( fault_injection::poll( "flow.esop" ) ); // disarmed: inert
}

// --- per-design / per-configuration failure isolation ------------------------

TEST( robustness_dse, injected_stage_failure_is_isolated_to_one_design )
{
  fault_guard guard;
  explore_options options;
  options.num_threads = 1;

  const auto baseline = explore_designs( { reciprocal_design::intdiv,
                                           reciprocal_design::newton },
                                         5, 5, options );
  ASSERT_EQ( baseline.size(), 2u );
  ASSERT_EQ( baseline[0].status, flow_status::ok );
  ASSERT_EQ( baseline[1].status, flow_status::ok );

  // Under the task-graph scheduler the three cleanup configurations
  // coalesce onto ONE xmg stage task per design, so INTDIV(5) polls
  // `flow.xmg` exactly once (deterministic single-threaded topological
  // order: INTDIV's whole chain runs before NEWTON's).  NEWTON(5) polls
  // the site after the one-shot window has closed and passes.
  fault_injection::arm( "flow.xmg", fault_injection::kind::fail, 0, 1 );
  const auto injected = explore_designs( { reciprocal_design::intdiv,
                                           reciprocal_design::newton },
                                         5, 5, options );
  fault_injection::disarm_all();

  ASSERT_EQ( injected.size(), 2u );
  EXPECT_EQ( injected[0].status, flow_status::failed );
  EXPECT_NE( injected[0].status_detail.find( "flow.xmg" ), std::string::npos );
  EXPECT_EQ( injected[1].status, flow_status::ok );

  // The sweep completed: both designs report full point lists, and every
  // non-failed point is bit-identical to the uninjected run.
  ASSERT_EQ( injected[0].points.size(), baseline[0].points.size() );
  ASSERT_EQ( injected[1].points.size(), baseline[1].points.size() );
  for ( std::size_t i = 0; i < injected[0].points.size(); ++i )
  {
    if ( injected[0].points[i].result.status == flow_status::ok )
    {
      EXPECT_TRUE( costs_equal( injected[0].points[i], baseline[0].points[i] ) ) << i;
    }
    else
    {
      EXPECT_EQ( injected[0].points[i].result.status, flow_status::failed ) << i;
    }
  }
  for ( std::size_t i = 0; i < injected[1].points.size(); ++i )
  {
    EXPECT_TRUE( costs_equal( injected[1].points[i], baseline[1].points[i] ) ) << i;
  }
}

TEST( robustness_dse, injected_timeout_reports_timed_out_and_sweep_continues )
{
  fault_guard guard;
  explore_options options;
  options.num_threads = 1;
  fault_injection::arm( "dse.elaborate", fault_injection::kind::timeout, 0, 1 );
  const auto swept = explore_designs( { reciprocal_design::intdiv,
                                        reciprocal_design::newton },
                                      5, 5, options );
  fault_injection::disarm_all();
  ASSERT_EQ( swept.size(), 2u );
  EXPECT_EQ( swept[0].status, flow_status::timed_out );
  EXPECT_TRUE( swept[0].points.empty() );
  EXPECT_EQ( swept[1].status, flow_status::ok );
  EXPECT_FALSE( swept[1].points.empty() );
}

TEST( robustness_dse, elaboration_failure_becomes_a_failed_record )
{
  fault_guard guard;
  explore_options options;
  options.num_threads = 1;
  fault_injection::arm( "dse.elaborate", fault_injection::kind::fail, 0, 1 );
  const auto swept =
      explore_designs( { reciprocal_design::intdiv }, 5, 5, options );
  fault_injection::disarm_all();
  ASSERT_EQ( swept.size(), 1u );
  EXPECT_EQ( swept[0].status, flow_status::failed );
  EXPECT_NE( swept[0].status_detail.find( "dse.elaborate" ), std::string::npos );
}

TEST( robustness_dse, unlimited_budgets_are_bit_identical_to_the_default )
{
  const auto mod = verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 5 ) );
  auto configs = default_dse_configurations( true );

  explore_options plain;
  plain.num_threads = 1;
  const auto baseline = explore( mod.aig, configs, plain );

  // Generous-but-finite budgets must not perturb a sweep that fits them.
  explore_options budgeted = plain;
  budgeted.sweep_deadline_seconds = 3600.0;
  for ( auto& config : configs )
  {
    config.limits.deadline_seconds = 3600.0;
    config.limits.sat_conflict_budget = 1u << 30;
    config.limits.exorcism_pair_budget = std::uint64_t{ 1 } << 40;
  }
  const auto limited = explore( mod.aig, configs, budgeted );

  ASSERT_EQ( baseline.size(), limited.size() );
  for ( std::size_t i = 0; i < baseline.size(); ++i )
  {
    EXPECT_TRUE( costs_equal( baseline[i], limited[i] ) ) << baseline[i].label;
    EXPECT_EQ( limited[i].result.status, flow_status::ok ) << baseline[i].label;
  }
}

// --- Verilog diagnostics: file/line/token context ----------------------------

TEST( robustness_verilog, parser_errors_carry_file_line_and_token )
{
  try
  {
    verilog::parse_module( "module m(a;\n", "broken.v" );
    FAIL() << "expected a parse error";
  }
  catch ( const std::runtime_error& e )
  {
    const std::string what = e.what();
    EXPECT_NE( what.find( "broken.v:1" ), std::string::npos ) << what;
    EXPECT_NE( what.find( "near" ), std::string::npos ) << what;
    EXPECT_NE( what.find( "';'" ), std::string::npos ) << what;
  }
}

TEST( robustness_verilog, elaborator_errors_name_source_and_module )
{
  const std::string source = "module broken(a, y);\n"
                             "  input a;\n"
                             "  output y;\n"
                             "endmodule\n"; // y is never driven
  try
  {
    verilog::elaborate_verilog( source, "undriven.v" );
    FAIL() << "expected an elaboration error";
  }
  catch ( const std::runtime_error& e )
  {
    const std::string what = e.what();
    EXPECT_NE( what.find( "undriven.v" ), std::string::npos ) << what;
    EXPECT_NE( what.find( "'broken'" ), std::string::npos ) << what;
    EXPECT_NE( what.find( "'y'" ), std::string::npos ) << what;
  }
}

TEST( robustness_verilog, malformed_source_degrades_to_a_failed_flow )
{
  flow_params params;
  try
  {
    run_flow_on_verilog( "module m(a, y; endmodule", params );
    FAIL() << "expected a parse error";
  }
  catch ( const std::runtime_error& e )
  {
    // The diagnostic is actionable: it locates the error.
    EXPECT_NE( std::string( e.what() ).find( ":1:" ), std::string::npos ) << e.what();
  }
}
