#include <gtest/gtest.h>

#include "logic/truth_table.hpp"

using namespace qsyn;

TEST( truth_table, constant_zero_default )
{
  truth_table tt( 3 );
  EXPECT_EQ( tt.num_vars(), 3u );
  EXPECT_EQ( tt.num_bits(), 8u );
  EXPECT_TRUE( tt.is_const0() );
  EXPECT_FALSE( tt.is_const1() );
  EXPECT_EQ( tt.count_ones(), 0u );
}

TEST( truth_table, constant_one )
{
  const auto tt = truth_table::constant( 4, true );
  EXPECT_TRUE( tt.is_const1() );
  EXPECT_EQ( tt.count_ones(), 16u );
}

TEST( truth_table, set_get_bits )
{
  truth_table tt( 2 );
  tt.set_bit( 0, true );
  tt.set_bit( 3, true );
  EXPECT_TRUE( tt.get_bit( 0 ) );
  EXPECT_FALSE( tt.get_bit( 1 ) );
  EXPECT_FALSE( tt.get_bit( 2 ) );
  EXPECT_TRUE( tt.get_bit( 3 ) );
  tt.set_bit( 0, false );
  EXPECT_FALSE( tt.get_bit( 0 ) );
}

TEST( truth_table, projection_small )
{
  const auto x0 = truth_table::projection( 3, 0 );
  const auto x2 = truth_table::projection( 3, 2 );
  for ( std::uint64_t i = 0; i < 8; ++i )
  {
    EXPECT_EQ( x0.get_bit( i ), ( i & 1u ) != 0u );
    EXPECT_EQ( x2.get_bit( i ), ( i & 4u ) != 0u );
  }
}

TEST( truth_table, projection_large_variable )
{
  // Variable 7 needs multi-block handling (2^8 = 256 bits).
  const auto x7 = truth_table::projection( 8, 7 );
  for ( std::uint64_t i = 0; i < 256; ++i )
  {
    EXPECT_EQ( x7.get_bit( i ), ( i >> 7 ) & 1u );
  }
}

TEST( truth_table, boolean_operations )
{
  const auto a = truth_table::projection( 2, 0 );
  const auto b = truth_table::projection( 2, 1 );
  const auto and_tt = a & b;
  const auto or_tt = a | b;
  const auto xor_tt = a ^ b;
  EXPECT_EQ( and_tt.to_binary(), "1000" );
  EXPECT_EQ( or_tt.to_binary(), "1110" );
  EXPECT_EQ( xor_tt.to_binary(), "0110" );
  EXPECT_EQ( ( ~a ).to_binary(), "0101" );
}

TEST( truth_table, demorgan_law )
{
  const auto a = truth_table::projection( 4, 1 );
  const auto b = truth_table::projection( 4, 3 );
  EXPECT_EQ( ~( a & b ), ~a | ~b );
  EXPECT_EQ( ~( a | b ), ~a & ~b );
}

TEST( truth_table, from_binary_string )
{
  const auto tt = truth_table::from_binary_string( "0110" );
  EXPECT_EQ( tt.num_vars(), 2u );
  EXPECT_EQ( tt, truth_table::projection( 2, 0 ) ^ truth_table::projection( 2, 1 ) );
  EXPECT_THROW( truth_table::from_binary_string( "011" ), std::invalid_argument );
  EXPECT_THROW( truth_table::from_binary_string( "0a10" ), std::invalid_argument );
}

TEST( truth_table, cofactors )
{
  // f = x0 & x1 | x2
  const auto x0 = truth_table::projection( 3, 0 );
  const auto x1 = truth_table::projection( 3, 1 );
  const auto x2 = truth_table::projection( 3, 2 );
  const auto f = ( x0 & x1 ) | x2;
  const auto f_x2_1 = f.cofactor( 2, true );
  EXPECT_TRUE( f_x2_1.is_const1() );
  const auto f_x2_0 = f.cofactor( 2, false );
  EXPECT_EQ( f_x2_0, x0 & x1 );
}

TEST( truth_table, cofactor_high_variable )
{
  const auto x6 = truth_table::projection( 8, 6 );
  const auto x1 = truth_table::projection( 8, 1 );
  const auto f = x6 ^ x1;
  EXPECT_EQ( f.cofactor( 6, false ), x1 );
  EXPECT_EQ( f.cofactor( 6, true ), ~x1 );
}

TEST( truth_table, shannon_expansion_reconstructs )
{
  // f == (!x & f0) | (x & f1) for every variable.
  const auto f = truth_table::from_binary_string( "0110100110010110" );
  for ( unsigned v = 0; v < 4; ++v )
  {
    const auto proj = truth_table::projection( 4, v );
    const auto rebuilt =
        ( ~proj & f.cofactor( v, false ) ) | ( proj & f.cofactor( v, true ) );
    EXPECT_EQ( rebuilt, f ) << "variable " << v;
  }
}

TEST( truth_table, support_detection )
{
  const auto x0 = truth_table::projection( 4, 0 );
  const auto x2 = truth_table::projection( 4, 2 );
  const auto f = x0 ^ x2;
  EXPECT_TRUE( f.depends_on( 0 ) );
  EXPECT_FALSE( f.depends_on( 1 ) );
  EXPECT_TRUE( f.depends_on( 2 ) );
  EXPECT_FALSE( f.depends_on( 3 ) );
  EXPECT_EQ( f.support(), ( std::vector<unsigned>{ 0, 2 } ) );
}

TEST( truth_table, shrink_to_support )
{
  const auto x1 = truth_table::projection( 5, 1 );
  const auto x3 = truth_table::projection( 5, 3 );
  const auto f = x1 & x3;
  std::vector<unsigned> map;
  const auto small = f.shrink_to_support( &map );
  EXPECT_EQ( small.num_vars(), 2u );
  EXPECT_EQ( map, ( std::vector<unsigned>{ 1, 3 } ) );
  EXPECT_EQ( small, truth_table::projection( 2, 0 ) & truth_table::projection( 2, 1 ) );
}

TEST( truth_table, support_detection_multi_block )
{
  // Variables on both sides of the word boundary (block-level vars >= 6).
  const auto x1 = truth_table::projection( 9, 1 );
  const auto x7 = truth_table::projection( 9, 7 );
  const auto x8 = truth_table::projection( 9, 8 );
  const auto f = ( x1 & x7 ) ^ x8;
  EXPECT_EQ( f.support(), ( std::vector<unsigned>{ 1, 7, 8 } ) );
  EXPECT_TRUE( f.depends_on( 7 ) );
  EXPECT_FALSE( f.depends_on( 0 ) );
  EXPECT_FALSE( f.depends_on( 6 ) );
}

TEST( truth_table, shrink_to_support_multi_block )
{
  // Removal must handle word-level compression (vars < 6) and block gathers
  // (vars >= 6) in one shrink.
  const auto x2 = truth_table::projection( 9, 2 );
  const auto x7 = truth_table::projection( 9, 7 );
  const auto f = x2 ^ x7;
  std::vector<unsigned> map;
  const auto small = f.shrink_to_support( &map );
  EXPECT_EQ( small.num_vars(), 2u );
  EXPECT_EQ( map, ( std::vector<unsigned>{ 2, 7 } ) );
  EXPECT_EQ( small, truth_table::projection( 2, 0 ) ^ truth_table::projection( 2, 1 ) );
}

TEST( truth_table, shrink_to_support_matches_naive_reconstruction )
{
  // Randomized cross-check over sizes straddling the block boundary: the
  // shrunk table evaluated through the variable map must match the
  // original on every assignment of the support variables.
  for ( const unsigned n : { 4u, 6u, 7u, 8u, 9u } )
  {
    for ( std::uint64_t seed = 1; seed <= 4; ++seed )
    {
      // Build a function of a random subset of the variables.
      std::uint64_t subset = 0;
      for ( unsigned v = 0; v < n; ++v )
      {
        if ( ( ( seed * 0x9e3779b97f4a7c15ull ) >> ( v * 7u ) ) & 1u )
        {
          subset |= std::uint64_t{ 1 } << v;
        }
      }
      const auto f = truth_table::from_function( n, [&]( std::uint64_t i ) {
        const auto masked = i & subset;
        return ( ( masked * 2654435761u ) >> 3 ) & 1u;
      } );
      std::vector<unsigned> map;
      const auto small = f.shrink_to_support( &map );
      for ( std::uint64_t i = 0; i < small.num_bits(); ++i )
      {
        std::uint64_t full = 0;
        for ( std::size_t v = 0; v < map.size(); ++v )
        {
          if ( ( i >> v ) & 1u )
          {
            full |= std::uint64_t{ 1 } << map[v];
          }
        }
        ASSERT_EQ( small.get_bit( i ), f.get_bit( full ) )
            << "n " << n << " seed " << seed << " index " << i;
      }
    }
  }
}

TEST( truth_table, depends_on_matches_cofactor_definition )
{
  for ( const unsigned n : { 3u, 6u, 7u, 9u } )
  {
    const auto f = truth_table::from_function(
        n, []( std::uint64_t i ) { return ( ( i >> 2 ) ^ ( i * 0x2545f4914f6cdd1dull ) ) & 1u; } );
    for ( unsigned v = 0; v < n; ++v )
    {
      EXPECT_EQ( f.depends_on( v ), f.cofactor( v, false ) != f.cofactor( v, true ) )
          << "n " << n << " var " << v;
    }
  }
}

TEST( truth_table, from_binary_string_multi_block )
{
  // 128-bit string (7 variables, two blocks) checked bit by bit.
  std::string s( 128, '0' );
  for ( std::size_t i = 0; i < 128; i += 3 )
  {
    s[i] = '1';
  }
  const auto tt = truth_table::from_binary_string( s );
  EXPECT_EQ( tt.num_vars(), 7u );
  for ( std::uint64_t i = 0; i < 128; ++i )
  {
    EXPECT_EQ( tt.get_bit( i ), s[127u - i] == '1' ) << "bit " << i;
  }
}

TEST( truth_table, hex_output )
{
  const auto x0 = truth_table::projection( 3, 0 );
  EXPECT_EQ( x0.to_hex(), "aa" );
  const auto maj = truth_table::from_binary_string( "11101000" );
  EXPECT_EQ( maj.to_hex(), "e8" );
}

TEST( truth_table, hash_distinguishes_num_vars )
{
  truth_table a( 1 );
  truth_table b( 2 );
  // Different variable counts with identical (zero) payload must not
  // collide structurally.
  EXPECT_NE( a, b );
}

TEST( truth_table, evaluate_matches_get_bit )
{
  const auto f = truth_table::from_binary_string( "10010110" );
  for ( std::uint64_t i = 0; i < 8; ++i )
  {
    EXPECT_EQ( f.evaluate( i ), f.get_bit( i ) );
  }
}

TEST( truth_table, from_function_factory )
{
  const auto parity =
      truth_table::from_function( 5, []( std::uint64_t i ) { return popcount64( i ) % 2 == 1; } );
  truth_table expected( 5 );
  for ( unsigned v = 0; v < 5; ++v )
  {
    expected ^= truth_table::projection( 5, v );
  }
  EXPECT_EQ( parity, expected );
}

/// Property sweep: operator identities over several sizes.
class truth_table_sizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P( truth_table_sizes, xor_self_annihilates )
{
  const auto n = GetParam();
  const auto f = truth_table::from_function(
      n, []( std::uint64_t i ) { return ( i * 2654435761u ) & 8u; } );
  EXPECT_TRUE( ( f ^ f ).is_const0() );
  EXPECT_TRUE( ( f ^ ~f ).is_const1() );
}

TEST_P( truth_table_sizes, count_ones_complement )
{
  const auto n = GetParam();
  const auto f = truth_table::from_function(
      n, []( std::uint64_t i ) { return ( i % 3 ) == 1; } );
  EXPECT_EQ( f.count_ones() + ( ~f ).count_ones(), f.num_bits() );
}

TEST_P( truth_table_sizes, double_cofactor_idempotent )
{
  const auto n = GetParam();
  const auto f = truth_table::from_function(
      n, []( std::uint64_t i ) { return ( ( i >> 1 ) ^ i ) & 1u; } );
  for ( unsigned v = 0; v < n; ++v )
  {
    const auto c = f.cofactor( v, true );
    EXPECT_EQ( c.cofactor( v, true ), c );
    EXPECT_EQ( c.cofactor( v, false ), c );
    EXPECT_FALSE( c.depends_on( v ) );
  }
}

INSTANTIATE_TEST_SUITE_P( sizes, truth_table_sizes, ::testing::Values( 1u, 2u, 5u, 6u, 7u, 9u ) );
