#include <gtest/gtest.h>

#include <random>

#include "sat/cnf.hpp"
#include "synth/aig_optimize.hpp"
#include "synth/esop_extract.hpp"
#include "synth/exorcism.hpp"
#include "synth/isop.hpp"
#include "verilog/elaborator.hpp"
#include "verilog/generators.hpp"

using namespace qsyn;

static truth_table random_tt( unsigned n, std::uint64_t seed )
{
  std::mt19937_64 rng( seed );
  return truth_table::from_function( n, [&]( std::uint64_t ) { return rng() & 1u; } );
}

/// --- ISOP ------------------------------------------------------------------

class isop_property : public ::testing::TestWithParam<unsigned>
{
};

TEST_P( isop_property, covers_exactly )
{
  const auto n = GetParam();
  for ( std::uint64_t seed = 1; seed <= 12; ++seed )
  {
    const auto f = random_tt( n, seed * 131u );
    const auto cubes = isop( f );
    EXPECT_EQ( sop_cover( cubes, n ), f ) << "seed " << seed;
  }
}

TEST_P( isop_property, respects_dont_cares )
{
  const auto n = GetParam();
  for ( std::uint64_t seed = 1; seed <= 8; ++seed )
  {
    const auto on = random_tt( n, seed * 17u );
    const auto dc = random_tt( n, seed * 51u ) & ~on;
    const auto cubes = isop( on, dc );
    const auto cover = sop_cover( cubes, n );
    // on <= cover <= on | dc
    EXPECT_TRUE( ( on & ~cover ).is_const0() );
    EXPECT_TRUE( ( cover & ~( on | dc ) ).is_const0() );
  }
}

INSTANTIATE_TEST_SUITE_P( sizes, isop_property, ::testing::Values( 2u, 3u, 4u, 5u, 6u, 8u ) );

TEST( isop, constants )
{
  EXPECT_TRUE( isop( truth_table( 3 ) ).empty() );
  const auto ones = isop( truth_table::constant( 3, true ) );
  ASSERT_EQ( ones.size(), 1u );
  EXPECT_EQ( ones[0].num_literals(), 0 );
}

TEST( isop, single_cube_functions_stay_single )
{
  cube c;
  c.add_literal( 0, true );
  c.add_literal( 2, false );
  const auto cubes = isop( c.to_truth_table( 4 ) );
  ASSERT_EQ( cubes.size(), 1u );
  EXPECT_EQ( cubes[0], c );
}

/// --- ESOP extraction -----------------------------------------------------

class esop_property : public ::testing::TestWithParam<unsigned>
{
};

TEST_P( esop_property, psdkro_is_exact )
{
  const auto n = GetParam();
  for ( std::uint64_t seed = 1; seed <= 10; ++seed )
  {
    const auto f = random_tt( n, seed * 997u );
    const auto cubes = esop_from_truth_table( f );
    truth_table rebuilt( n );
    for ( const auto& c : cubes )
    {
      rebuilt ^= c.to_truth_table( n );
    }
    EXPECT_EQ( rebuilt, f );
  }
}

TEST_P( esop_property, pprm_is_exact_and_positive )
{
  const auto n = GetParam();
  for ( std::uint64_t seed = 3; seed <= 9; ++seed )
  {
    const auto f = random_tt( n, seed * 61u );
    const auto monomials = pprm_from_truth_table( f );
    truth_table rebuilt( n );
    for ( const auto& m : monomials )
    {
      EXPECT_EQ( m.polarity, m.mask ); // positive literals only
      rebuilt ^= m.to_truth_table( n );
    }
    EXPECT_EQ( rebuilt, f );
  }
}

INSTANTIATE_TEST_SUITE_P( sizes, esop_property, ::testing::Values( 2u, 3u, 4u, 5u, 6u ) );

TEST( esop_extract, parity_needs_linear_terms )
{
  // PSDKRO of an n-variable parity has exactly n cubes (Davio all the way).
  truth_table parity( 6 );
  for ( unsigned v = 0; v < 6; ++v )
  {
    parity ^= truth_table::projection( 6, v );
  }
  EXPECT_EQ( esop_from_truth_table( parity ).size(), 6u );
}

TEST( esop_extract, from_aig_multi_output )
{
  aig_network aig( 4 );
  aig.add_po( aig.create_xor( aig.pi( 0 ), aig.pi( 1 ) ) );
  aig.add_po( aig.create_and( aig.pi( 2 ), aig.pi( 3 ) ) );
  aig.add_po( aig.create_xor( aig.pi( 0 ), aig.pi( 1 ) ) ); // shared with output 0
  const auto e = esop_from_aig( aig );
  EXPECT_EQ( e.num_inputs, 4u );
  EXPECT_EQ( e.num_outputs, 3u );
  const auto tts = aig.simulate_outputs();
  for ( unsigned o = 0; o < 3; ++o )
  {
    EXPECT_EQ( e.output_truth_table( o ), tts[o] );
  }
  // Shared cubes between outputs 0 and 2 must be merged terms.
  for ( const auto& t : e.terms )
  {
    if ( t.output_mask & 0b001u )
    {
      EXPECT_TRUE( t.output_mask & 0b100u );
    }
  }
}

/// --- exorcism ---------------------------------------------------------------

TEST( exorcism, cancels_identical_cubes )
{
  esop e;
  e.num_inputs = 3;
  e.num_outputs = 1;
  cube c;
  c.add_literal( 0, true );
  e.terms.push_back( { c, 1u } );
  e.terms.push_back( { c, 1u } );
  exorcism( e );
  EXPECT_EQ( e.num_terms(), 0u );
}

TEST( exorcism, merges_distance_one )
{
  // x0 x1 ^ x0 !x1 = x0
  esop e;
  e.num_inputs = 2;
  e.num_outputs = 1;
  cube c1;
  c1.add_literal( 0, true );
  c1.add_literal( 1, true );
  cube c2;
  c2.add_literal( 0, true );
  c2.add_literal( 1, false );
  e.terms.push_back( { c1, 1u } );
  e.terms.push_back( { c2, 1u } );
  const auto before = e.output_truth_table( 0 );
  exorcism( e );
  EXPECT_EQ( e.num_terms(), 1u );
  EXPECT_EQ( e.terms[0].product.num_literals(), 1 );
  EXPECT_EQ( e.output_truth_table( 0 ), before );
}

TEST( exorcism, merges_subsumed_distance_one )
{
  // x0 ^ x0 x1 = x0 !x1
  esop e;
  e.num_inputs = 2;
  e.num_outputs = 1;
  cube c1;
  c1.add_literal( 0, true );
  cube c2;
  c2.add_literal( 0, true );
  c2.add_literal( 1, true );
  e.terms.push_back( { c1, 1u } );
  e.terms.push_back( { c2, 1u } );
  const auto before = e.output_truth_table( 0 );
  exorcism( e );
  EXPECT_EQ( e.num_terms(), 1u );
  EXPECT_EQ( e.output_truth_table( 0 ), before );
}

class exorcism_property : public ::testing::TestWithParam<unsigned>
{
};

TEST_P( exorcism_property, preserves_function_and_never_grows )
{
  const auto n = GetParam();
  for ( std::uint64_t seed = 1; seed <= 8; ++seed )
  {
    const auto f = random_tt( n, seed * 313u );
    esop e;
    e.num_inputs = n;
    e.num_outputs = 1;
    // Start from the (possibly redundant) minterm expansion.
    for ( std::uint64_t m = 0; m < f.num_bits(); ++m )
    {
      if ( f.get_bit( m ) )
      {
        cube c;
        for ( unsigned v = 0; v < n; ++v )
        {
          c.add_literal( v, ( m >> v ) & 1u );
        }
        e.terms.push_back( { c, 1u } );
      }
    }
    const auto initial = e.num_terms();
    const auto stats = exorcism( e );
    EXPECT_EQ( e.output_truth_table( 0 ), f ) << "seed " << seed;
    EXPECT_LE( e.num_terms(), initial );
    EXPECT_EQ( stats.initial_terms, initial );
    EXPECT_EQ( stats.final_terms, e.num_terms() );
  }
}

INSTANTIATE_TEST_SUITE_P( sizes, exorcism_property, ::testing::Values( 3u, 4u, 5u ) );

TEST( exorcism, reduces_minterm_parity_to_linear_size )
{
  // Parity of 4 vars has 8 minterms; ESOP minimum is 4 single-literal cubes.
  truth_table parity( 4 );
  for ( unsigned v = 0; v < 4; ++v )
  {
    parity ^= truth_table::projection( 4, v );
  }
  esop e;
  e.num_inputs = 4;
  e.num_outputs = 1;
  for ( std::uint64_t m = 0; m < 16; ++m )
  {
    if ( parity.get_bit( m ) )
    {
      cube c;
      for ( unsigned v = 0; v < 4; ++v )
      {
        c.add_literal( v, ( m >> v ) & 1u );
      }
      e.terms.push_back( { c, 1u } );
    }
  }
  exorcism( e, 64 );
  EXPECT_EQ( e.output_truth_table( 0 ), parity );
  EXPECT_LE( e.num_terms(), 5u ); // near-optimal
}

/// --- AIG optimization -------------------------------------------------------

static aig_network medium_test_network()
{
  // The INTDIV(5) divider: non-trivial, redundant, multi-output.
  const auto mod = verilog::elaborate_verilog( verilog::generate_intdiv( 5 ) );
  return mod.aig;
}

TEST( aig_optimize, balance_preserves_function )
{
  const auto aig = medium_test_network();
  const auto balanced = aig_balance( aig );
  EXPECT_TRUE( sat::check_equivalence( aig, balanced ).equivalent );
  EXPECT_LE( balanced.depth(), aig.depth() );
}

TEST( aig_optimize, refactor_preserves_function )
{
  const auto aig = medium_test_network();
  const auto refactored = aig_refactor( aig );
  EXPECT_TRUE( sat::check_equivalence( aig, refactored ).equivalent );
}

TEST( aig_optimize, sat_sweep_merges_duplicates )
{
  aig_network aig( 3 );
  // Build the same function twice in structurally different ways.
  const auto f1 = aig.create_or( aig.create_and( aig.pi( 0 ), aig.pi( 1 ) ),
                                 aig.create_and( aig.pi( 0 ), aig.pi( 2 ) ) );
  const auto f2 = aig.create_and(
      aig.pi( 0 ), aig.create_or( aig.pi( 1 ), aig.pi( 2 ) ) ); // x0 & (x1|x2) == f1
  aig.add_po( f1 );
  aig.add_po( f2 );
  const auto swept = aig_sat_sweep( aig ).cleanup();
  EXPECT_TRUE( sat::check_equivalence( aig, swept ).equivalent );
  EXPECT_LT( swept.num_ands(), aig.num_ands() );
}

TEST( aig_optimize, optimize_shrinks_divider )
{
  const auto aig = medium_test_network();
  const auto optimized = optimize( aig, 2 );
  EXPECT_TRUE( sat::check_equivalence( aig, optimized ).equivalent );
  EXPECT_LE( optimized.num_ands(), aig.num_ands() );
}

TEST( aig_optimize, optimize_with_sat_sweep )
{
  const auto aig = medium_test_network();
  const auto optimized = optimize( aig, 1, true );
  EXPECT_TRUE( sat::check_equivalence( aig, optimized ).equivalent );
}

TEST( aig_optimize, newton_design_roundtrip )
{
  const auto mod = verilog::elaborate_verilog( verilog::generate_newton( 4 ) );
  const auto optimized = optimize( mod.aig, 2 );
  EXPECT_TRUE( sat::check_equivalence( mod.aig, optimized ).equivalent );
}
