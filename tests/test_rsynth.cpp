#include <gtest/gtest.h>

#include <random>

#include "rsynth/esop_synth.hpp"
#include "rsynth/hierarchical.hpp"
#include "reversible/cost.hpp"
#include "reversible/verify.hpp"
#include "synth/esop_extract.hpp"
#include "synth/xmg_resynth.hpp"
#include "verilog/elaborator.hpp"
#include "verilog/generators.hpp"

using namespace qsyn;

namespace
{

truth_table random_tt( unsigned n, std::uint64_t seed )
{
  std::mt19937_64 rng( seed );
  auto tt = truth_table::from_function( n, [&]( std::uint64_t ) { return rng() & 1u; } );
  return tt;
}

esop random_esop( unsigned n, unsigned m, std::uint64_t seed )
{
  esop e;
  e.num_inputs = n;
  e.num_outputs = m;
  for ( unsigned o = 0; o < m; ++o )
  {
    const auto cubes = esop_from_truth_table( random_tt( n, seed + o * 1000u ) );
    for ( const auto& c : cubes )
    {
      e.terms.push_back( { c, std::uint64_t{ 1 } << o } );
    }
  }
  e.merge_identical_cubes();
  return e;
}

bool circuit_matches_esop( const reversible_circuit& circuit, const esop& e )
{
  std::vector<truth_table> tts;
  for ( unsigned o = 0; o < e.num_outputs; ++o )
  {
    tts.push_back( e.output_truth_table( o ) );
  }
  return verify_against_truth_tables( circuit, tts );
}

} // namespace

/// --- ESOP-based synthesis ----------------------------------------------------

TEST( esop_synth, single_output_basic )
{
  esop e;
  e.num_inputs = 3;
  e.num_outputs = 1;
  cube c1;
  c1.add_literal( 0, true );
  c1.add_literal( 1, false );
  e.terms.push_back( { c1, 1u } );
  e.terms.push_back( { cube{}, 1u } ); // constant-1 term
  const auto circuit = esop_synthesize( e );
  EXPECT_EQ( circuit.num_lines(), 4u );
  EXPECT_TRUE( circuit_matches_esop( circuit, e ) );
}

TEST( esop_synth, uses_exactly_n_plus_m_lines_at_p0 )
{
  const auto e = random_esop( 5, 4, 11 );
  const auto circuit = esop_synthesize( e );
  EXPECT_EQ( circuit.num_lines(), 9u );
  EXPECT_TRUE( circuit_matches_esop( circuit, e ) );
}

TEST( esop_synth, shared_cubes_copied_with_cnots )
{
  esop e;
  e.num_inputs = 2;
  e.num_outputs = 3;
  cube c;
  c.add_literal( 0, true );
  c.add_literal( 1, true );
  e.terms.push_back( { c, 0b111u } ); // one cube feeding all three outputs
  const auto circuit = esop_synthesize( e );
  EXPECT_TRUE( circuit_matches_esop( circuit, e ) );
  // One Toffoli + two CNOT copies is the expected sharing pattern.
  EXPECT_EQ( circuit.num_toffoli_gates(), 1u );
}

class esop_synth_random : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P( esop_synth_random, all_p_values_verify )
{
  const auto [n, m] = GetParam();
  for ( std::uint64_t seed = 1; seed <= 4; ++seed )
  {
    const auto e = random_esop( n, m, seed * 7919u );
    for ( const unsigned p : { 0u, 1u, 2u, 3u } )
    {
      esop_synth_params params;
      params.p = p;
      esop_synth_stats stats;
      const auto circuit = esop_synthesize( e, params, &stats );
      EXPECT_TRUE( circuit_matches_esop( circuit, e ) )
          << "n=" << n << " m=" << m << " p=" << p << " seed=" << seed;
      EXPECT_EQ( circuit.num_lines(), n + m + stats.ancilla_lines );
    }
  }
}

INSTANTIATE_TEST_SUITE_P( sweep, esop_synth_random,
                          ::testing::Combine( ::testing::Values( 3u, 4u, 5u ),
                                              ::testing::Values( 1u, 2u, 3u ) ) );

TEST( esop_synth, ancillas_return_to_zero )
{
  const auto e = random_esop( 4, 2, 23 );
  esop_synth_params params;
  params.p = 2;
  esop_synth_stats stats;
  const auto circuit = esop_synthesize( e, params, &stats );
  if ( stats.ancilla_lines == 0u )
  {
    GTEST_SKIP() << "no factor extracted on this instance";
  }
  for ( std::uint64_t x = 0; x < 16u; ++x )
  {
    std::vector<bool> state( circuit.num_lines(), false );
    for ( unsigned b = 0; b < 4; ++b )
    {
      state[b] = ( x >> b ) & 1u;
    }
    circuit.apply( state );
    for ( unsigned a = 6; a < circuit.num_lines(); ++a )
    {
      EXPECT_FALSE( state[a] ) << "ancilla " << a << " dirty for x=" << x;
    }
  }
}

TEST( esop_synth, factoring_reduces_control_counts )
{
  // Many cubes sharing the pair (x0, x1): p=1 should reduce the summed
  // control count (and typically the T-count).
  esop e;
  e.num_inputs = 9;
  e.num_outputs = 1;
  for ( unsigned extra = 2; extra < 9; ++extra )
  {
    cube c;
    c.add_literal( 0, true );
    c.add_literal( 1, true );
    c.add_literal( extra, true );
    e.terms.push_back( { c, 1u } );
  }
  const auto c0 = esop_synthesize( e, { 0, 2 } );
  const auto c1 = esop_synthesize( e, { 1, 2 } );
  EXPECT_TRUE( circuit_matches_esop( c0, e ) );
  EXPECT_TRUE( circuit_matches_esop( c1, e ) );
  const auto controls_of = []( const reversible_circuit& c ) {
    std::size_t total = 0;
    for ( const auto& g : c.gates() )
    {
      total += g.num_controls();
    }
    return total;
  };
  EXPECT_LT( controls_of( c1 ), controls_of( c0 ) );
}

TEST( esop_synth, intdiv_end_to_end )
{
  const auto mod = verilog::elaborate_verilog( verilog::generate_intdiv( 4 ) );
  const auto e = esop_from_aig( mod.aig );
  const auto circuit = esop_synthesize( e );
  EXPECT_EQ( circuit.num_lines(), 8u ); // 2n, the Table III p=0 column
  EXPECT_FALSE( verify_against_aig_sampled( circuit, mod.aig ).has_value() );
}

/// --- hierarchical synthesis ---------------------------------------------------

namespace
{

xmg_network random_xmg( unsigned num_pis, unsigned num_gates, std::uint64_t seed )
{
  std::mt19937_64 rng( seed );
  xmg_network xmg( num_pis );
  std::vector<xmg_lit> pool;
  for ( unsigned i = 0; i < num_pis; ++i )
  {
    pool.push_back( xmg.pi( i ) );
  }
  for ( unsigned g = 0; g < num_gates; ++g )
  {
    const auto pick = [&]() { return pool[rng() % pool.size()] ^ static_cast<xmg_lit>( rng() & 1u ); };
    if ( rng() & 1u )
    {
      pool.push_back( xmg.create_maj( pick(), pick(), pick() ) );
    }
    else
    {
      pool.push_back( xmg.create_xor( pick(), pick() ) );
    }
  }
  xmg.add_po( pool.back() );
  xmg.add_po( pool[pool.size() / 2u] ^ 1u );
  return xmg;
}

bool hierarchical_matches( const xmg_network& xmg, cleanup_strategy cleanup )
{
  hierarchical_params params;
  params.cleanup = cleanup;
  const auto circuit = hierarchical_synthesize( xmg, params );
  const auto tts = xmg.simulate_outputs();
  return verify_against_truth_tables( circuit, tts );
}

} // namespace

TEST( hierarchical, single_and_gate )
{
  xmg_network xmg( 2 );
  xmg.add_po( xmg.create_and( xmg.pi( 0 ), xmg.pi( 1 ) ) );
  const auto circuit = hierarchical_synthesize( xmg );
  EXPECT_TRUE( verify_against_truth_tables( circuit, xmg.simulate_outputs() ) );
  EXPECT_EQ( circuit.num_toffoli_gates(), 1u );
}

TEST( hierarchical, or_gate_with_complements )
{
  xmg_network xmg( 2 );
  xmg.add_po( xmg.create_or( xmg.pi( 0 ) ^ 1u, xmg.pi( 1 ) ) );
  const auto circuit = hierarchical_synthesize( xmg );
  EXPECT_TRUE( verify_against_truth_tables( circuit, xmg.simulate_outputs() ) );
}

TEST( hierarchical, xor_costs_no_toffoli )
{
  xmg_network xmg( 3 );
  xmg.add_po( xmg.create_xor( xmg.create_xor( xmg.pi( 0 ), xmg.pi( 1 ) ), xmg.pi( 2 ) ) );
  const auto circuit = hierarchical_synthesize( xmg );
  EXPECT_TRUE( verify_against_truth_tables( circuit, xmg.simulate_outputs() ) );
  EXPECT_EQ( circuit.num_toffoli_gates(), 0u );
  EXPECT_EQ( circuit_t_count( circuit ), 0u );
}

TEST( hierarchical, general_maj_uses_single_toffoli )
{
  xmg_network xmg( 3 );
  xmg.add_po( xmg.create_maj( xmg.pi( 0 ), xmg.pi( 1 ), xmg.pi( 2 ) ) );
  const auto circuit = hierarchical_synthesize( xmg );
  EXPECT_TRUE( verify_against_truth_tables( circuit, xmg.simulate_outputs() ) );
  EXPECT_EQ( circuit.num_toffoli_gates(), 1u ); // the paper's key property
}

TEST( hierarchical, maj_with_complemented_operands )
{
  for ( unsigned mask = 0; mask < 8; ++mask )
  {
    xmg_network xmg( 3 );
    xmg.add_po( xmg.create_maj( xmg.pi( 0 ) ^ ( mask & 1u ), xmg.pi( 1 ) ^ ( ( mask >> 1 ) & 1u ),
                                xmg.pi( 2 ) ^ ( ( mask >> 2 ) & 1u ) ) );
    const auto circuit = hierarchical_synthesize( xmg );
    EXPECT_TRUE( verify_against_truth_tables( circuit, xmg.simulate_outputs() ) )
        << "mask=" << mask;
  }
}

class hierarchical_random
    : public ::testing::TestWithParam<std::tuple<unsigned, cleanup_strategy>>
{
};

TEST_P( hierarchical_random, verifies_on_random_xmgs )
{
  const auto [seed, cleanup] = GetParam();
  const auto xmg = random_xmg( 5, 25, seed * 101u );
  EXPECT_TRUE( hierarchical_matches( xmg, cleanup ) );
}

INSTANTIATE_TEST_SUITE_P(
    sweep, hierarchical_random,
    ::testing::Combine( ::testing::Range( 1u, 9u ),
                        ::testing::Values( cleanup_strategy::keep_garbage,
                                           cleanup_strategy::bennett,
                                           cleanup_strategy::eager ) ) );

TEST( hierarchical, bennett_restores_ancillae )
{
  const auto xmg = random_xmg( 4, 15, 55 );
  hierarchical_params params;
  params.cleanup = cleanup_strategy::bennett;
  const auto circuit = hierarchical_synthesize( xmg, params );
  for ( std::uint64_t x = 0; x < 16u; ++x )
  {
    std::vector<bool> state( circuit.num_lines(), false );
    for ( unsigned b = 0; b < 4; ++b )
    {
      state[b] = ( x >> b ) & 1u;
    }
    circuit.apply( state );
    for ( unsigned l = 4; l < circuit.num_lines(); ++l )
    {
      if ( circuit.line( l ).output_index < 0 )
      {
        EXPECT_FALSE( state[l] ) << "ancilla " << l << " dirty for x=" << x;
      }
    }
  }
}

TEST( hierarchical, bennett_doubles_t_count )
{
  const auto xmg = random_xmg( 5, 30, 77 );
  hierarchical_params garbage;
  garbage.cleanup = cleanup_strategy::keep_garbage;
  hierarchical_params bennett;
  bennett.cleanup = cleanup_strategy::bennett;
  const auto tg = circuit_t_count( hierarchical_synthesize( xmg, garbage ) );
  const auto tb = circuit_t_count( hierarchical_synthesize( xmg, bennett ) );
  EXPECT_GE( tb, 2u * tg ); // uncompute at least doubles the Toffolis
  EXPECT_LE( tb, 2u * tg + 14u );
}

TEST( hierarchical, eager_uses_fewer_peak_lines )
{
  // Several independent output cones: eager cleanup recycles one cone's
  // ancillae before computing the next.
  xmg_network xmg( 3 );
  for ( int o = 0; o < 4; ++o )
  {
    auto f = xmg.create_and( xmg.pi( o % 3 ), xmg.pi( ( o + 1 ) % 3 ) ^ ( o & 1 ) );
    for ( int i = 0; i < 8; ++i )
    {
      f = xmg.create_maj( f, xmg.pi( ( i + o ) % 3 ),
                          xmg.pi( ( i + o + 1 ) % 3 ) ^ ( ( i + o ) & 1 ) );
    }
    xmg.add_po( f );
  }
  hierarchical_params garbage;
  garbage.cleanup = cleanup_strategy::keep_garbage;
  hierarchical_params eager;
  eager.cleanup = cleanup_strategy::eager;
  hierarchical_stats sg;
  hierarchical_stats se;
  const auto cg = hierarchical_synthesize( xmg, garbage, &sg );
  const auto ce = hierarchical_synthesize( xmg, eager, &se );
  EXPECT_TRUE( verify_against_truth_tables( ce, xmg.simulate_outputs() ) );
  EXPECT_LT( se.peak_lines, sg.peak_lines );
}

TEST( hierarchical, intdiv_via_xmg_end_to_end )
{
  const auto mod = verilog::elaborate_verilog( verilog::generate_intdiv( 4 ) );
  const auto xmg = xmg_from_aig( mod.aig );
  for ( const auto cleanup : { cleanup_strategy::keep_garbage, cleanup_strategy::bennett,
                               cleanup_strategy::eager } )
  {
    hierarchical_params params;
    params.cleanup = cleanup;
    const auto circuit = hierarchical_synthesize( xmg, params );
    EXPECT_FALSE( verify_against_aig_sampled( circuit, mod.aig ).has_value() );
  }
}

TEST( hierarchical, output_complement_handled )
{
  xmg_network xmg( 2 );
  xmg.add_po( xmg.create_and( xmg.pi( 0 ), xmg.pi( 1 ) ) ^ 1u ); // NAND
  const auto circuit = hierarchical_synthesize( xmg );
  EXPECT_TRUE( verify_against_truth_tables( circuit, xmg.simulate_outputs() ) );
}

TEST( hierarchical, constant_output )
{
  xmg_network xmg( 1 );
  xmg.add_po( xmg_network::const1 );
  xmg.add_po( xmg.pi( 0 ) );
  const auto circuit = hierarchical_synthesize( xmg );
  EXPECT_TRUE( verify_against_truth_tables( circuit, xmg.simulate_outputs() ) );
}
