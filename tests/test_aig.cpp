#include <gtest/gtest.h>

#include "logic/aig.hpp"

using namespace qsyn;

TEST( aig, constant_folding )
{
  aig_network aig( 2 );
  const auto a = aig.pi( 0 );
  EXPECT_EQ( aig.create_and( a, aig_network::const0 ), aig_network::const0 );
  EXPECT_EQ( aig.create_and( a, aig_network::const1 ), a );
  EXPECT_EQ( aig.create_and( a, a ), a );
  EXPECT_EQ( aig.create_and( a, lit_not( a ) ), aig_network::const0 );
  EXPECT_EQ( aig.num_ands(), 0u );
}

TEST( aig, structural_hashing )
{
  aig_network aig( 2 );
  const auto a = aig.pi( 0 );
  const auto b = aig.pi( 1 );
  const auto g1 = aig.create_and( a, b );
  const auto g2 = aig.create_and( b, a ); // commuted
  EXPECT_EQ( g1, g2 );
  EXPECT_EQ( aig.num_ands(), 1u );
}

TEST( aig, xor_simulation )
{
  aig_network aig( 2 );
  const auto f = aig.create_xor( aig.pi( 0 ), aig.pi( 1 ) );
  aig.add_po( f );
  const auto tts = aig.simulate_outputs();
  EXPECT_EQ( tts[0].to_binary(), "0110" );
}

TEST( aig, mux_and_maj_simulation )
{
  aig_network aig( 3 );
  const auto s = aig.pi( 0 );
  const auto t = aig.pi( 1 );
  const auto e = aig.pi( 2 );
  aig.add_po( aig.create_mux( s, t, e ) );
  aig.add_po( aig.create_maj( s, t, e ) );
  const auto tts = aig.simulate_outputs();
  for ( std::uint64_t i = 0; i < 8; ++i )
  {
    const bool sv = i & 1u, tv = i & 2u, ev = i & 4u;
    EXPECT_EQ( tts[0].get_bit( i ), sv ? tv : ev );
    EXPECT_EQ( tts[1].get_bit( i ), ( sv && tv ) || ( sv && ev ) || ( tv && ev ) );
  }
}

TEST( aig, nary_builders )
{
  aig_network aig( 5 );
  std::vector<aig_lit> lits;
  for ( unsigned i = 0; i < 5; ++i )
  {
    lits.push_back( aig.pi( i ) );
  }
  aig.add_po( aig.create_nary_and( lits ) );
  aig.add_po( aig.create_nary_or( lits ) );
  aig.add_po( aig.create_nary_xor( lits ) );
  const auto tts = aig.simulate_outputs();
  for ( std::uint64_t i = 0; i < 32; ++i )
  {
    EXPECT_EQ( tts[0].get_bit( i ), i == 31u );
    EXPECT_EQ( tts[1].get_bit( i ), i != 0u );
    EXPECT_EQ( tts[2].get_bit( i ), popcount64( i ) % 2 == 1 );
  }
}

TEST( aig, nary_empty_cases )
{
  aig_network aig( 1 );
  EXPECT_EQ( aig.create_nary_and( {} ), aig_network::const1 );
  EXPECT_EQ( aig.create_nary_or( {} ), aig_network::const0 );
  EXPECT_EQ( aig.create_nary_xor( {} ), aig_network::const0 );
}

TEST( aig, pattern_simulation_matches_tt )
{
  aig_network aig( 3 );
  const auto f =
      aig.create_or( aig.create_and( aig.pi( 0 ), aig.pi( 1 ) ), lit_not( aig.pi( 2 ) ) );
  aig.add_po( f );
  const auto tts = aig.simulate_outputs();
  // Patterns enumerating all 8 assignments in one 64-bit word.
  std::vector<std::uint64_t> patterns( 3 );
  for ( unsigned v = 0; v < 3; ++v )
  {
    patterns[v] = projections[v];
  }
  const auto words = aig.simulate_patterns( patterns );
  for ( std::uint64_t i = 0; i < 8; ++i )
  {
    EXPECT_EQ( ( words[0] >> i ) & 1u, tts[0].get_bit( i ) );
  }
}

TEST( aig, evaluate_single_assignment )
{
  aig_network aig( 2 );
  aig.add_po( aig.create_and( aig.pi( 0 ), lit_not( aig.pi( 1 ) ) ) );
  EXPECT_EQ( aig.evaluate( { true, false } ), std::vector<bool>{ true } );
  EXPECT_EQ( aig.evaluate( { true, true } ), std::vector<bool>{ false } );
}

TEST( aig, cleanup_removes_dangling )
{
  aig_network aig( 3 );
  const auto used = aig.create_and( aig.pi( 0 ), aig.pi( 1 ) );
  aig.create_and( aig.pi( 1 ), aig.pi( 2 ) ); // dangling
  aig.add_po( used );
  EXPECT_EQ( aig.num_ands(), 2u );
  const auto before = aig.simulate_outputs();
  const auto clean = aig.cleanup();
  EXPECT_EQ( clean.num_ands(), 1u );
  EXPECT_EQ( clean.simulate_outputs(), before );
}

TEST( aig, cleanup_preserves_complemented_pos )
{
  aig_network aig( 2 );
  const auto g = aig.create_or( aig.pi( 0 ), aig.pi( 1 ) );
  aig.add_po( lit_not( g ) );
  aig.add_po( aig_network::const1 );
  const auto clean = aig.cleanup();
  EXPECT_EQ( clean.simulate_outputs(), aig.simulate_outputs() );
}

TEST( aig, levels_and_depth )
{
  aig_network aig( 4 );
  auto f = aig.create_and( aig.pi( 0 ), aig.pi( 1 ) );
  f = aig.create_and( f, aig.pi( 2 ) );
  f = aig.create_and( f, aig.pi( 3 ) );
  aig.add_po( f );
  EXPECT_EQ( aig.depth(), 3u );
}

TEST( aig, fanout_counts_include_pos )
{
  aig_network aig( 2 );
  const auto g = aig.create_and( aig.pi( 0 ), aig.pi( 1 ) );
  aig.add_po( g );
  aig.add_po( g );
  const auto counts = aig.fanout_counts();
  EXPECT_EQ( counts[lit_node( g )], 2u );
  EXPECT_EQ( counts[1], 1u ); // pi 0 feeds the AND once
}

TEST( aig, add_pi_after_gates_throws )
{
  aig_network aig( 1 );
  aig.create_and( aig.pi( 0 ), aig_network::const1 ); // folded, no node
  aig.add_pi();                                       // still fine
  aig.create_and( aig.pi( 0 ), aig.pi( 1 ) );
  EXPECT_THROW( aig.add_pi(), std::logic_error );
}

TEST( aig, dot_output_contains_nodes )
{
  aig_network aig( 2 );
  aig.add_po( aig.create_and( aig.pi( 0 ), aig.pi( 1 ) ) );
  const auto dot = aig.to_dot();
  EXPECT_NE( dot.find( "digraph" ), std::string::npos );
  EXPECT_NE( dot.find( "x0" ), std::string::npos );
  EXPECT_NE( dot.find( "y0" ), std::string::npos );
}
