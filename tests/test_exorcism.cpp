/// Property tests for the rewritten EXORCISM engine: preservation of every
/// output of random multi-output ESOPs, and agreement of the closed-form
/// EXORLINK rewrites with the exhaustive xor-equivalence reference.

#include <gtest/gtest.h>

#include <random>

#include "synth/exorcism.hpp"

using namespace qsyn;

namespace
{

cube random_cube( std::mt19937_64& rng, unsigned num_vars, unsigned max_literals = 64u )
{
  const std::uint64_t var_mask = ( std::uint64_t{ 1 } << num_vars ) - 1u;
  auto mask = rng() & var_mask;
  while ( static_cast<unsigned>( popcount64( mask ) ) > max_literals )
  {
    mask &= rng(); // thin out
  }
  return cube{ mask, rng() & mask };
}

/// Alters the literal state of `c` at variable `var` to a different one of
/// the three states (absent / positive / negative), chosen by `which`.
cube perturb( const cube& c, unsigned var, unsigned which )
{
  cube result = c;
  if ( c.has_var( var ) )
  {
    if ( which % 2u == 0u )
    {
      result.remove_literal( var );
    }
    else
    {
      result.add_literal( var, !c.var_polarity( var ) );
    }
  }
  else
  {
    result.add_literal( var, which % 2u == 0u );
  }
  return result;
}

esop random_esop( std::mt19937_64& rng, unsigned num_inputs, unsigned num_outputs,
                  std::size_t num_terms )
{
  const std::uint64_t out_mask = ( std::uint64_t{ 1 } << num_outputs ) - 1u;
  esop e;
  e.num_inputs = num_inputs;
  e.num_outputs = num_outputs;
  for ( std::size_t t = 0; t < num_terms; ++t )
  {
    auto outputs = rng() & out_mask;
    if ( outputs == 0u )
    {
      outputs = 1u;
    }
    e.terms.push_back( { random_cube( rng, num_inputs ), outputs } );
  }
  return e;
}

} // namespace

TEST( exorlink, merge_agrees_with_exhaustive_reference )
{
  std::mt19937_64 rng( 0xabc1 );
  for ( int round = 0; round < 3000; ++round )
  {
    const auto num_vars = 3u + static_cast<unsigned>( rng() % 8u );
    const auto a = random_cube( rng, num_vars );
    const auto b = perturb( a, static_cast<unsigned>( rng() % num_vars ),
                            static_cast<unsigned>( rng() ) );
    ASSERT_EQ( a.distance( b ), 1 );
    const auto merged = exorlink_merge( a, b );
    EXPECT_TRUE( xor_equivalent_exhaustive( a, b, merged ) )
        << "round " << round << ": " << a.to_string( num_vars ) << " ^ "
        << b.to_string( num_vars ) << " != " << merged.to_string( num_vars );
  }
}

TEST( exorlink, two_rewrites_agree_with_exhaustive_reference )
{
  std::mt19937_64 rng( 0xabc2 );
  for ( int round = 0; round < 3000; ++round )
  {
    const auto num_vars = 3u + static_cast<unsigned>( rng() % 8u );
    const auto a = random_cube( rng, num_vars );
    const auto v1 = static_cast<unsigned>( rng() % num_vars );
    auto v2 = static_cast<unsigned>( rng() % num_vars );
    while ( v2 == v1 )
    {
      v2 = static_cast<unsigned>( rng() % num_vars );
    }
    auto b = perturb( a, v1, static_cast<unsigned>( rng() ) );
    b = perturb( b, v2, static_cast<unsigned>( rng() ) );
    ASSERT_EQ( a.distance( b ), 2 );
    const auto rw = exorlink_two( a, b );
    EXPECT_TRUE( xor_equivalent_exhaustive( a, b, rw.a1, &rw.b1 ) ) << "round " << round;
    EXPECT_TRUE( xor_equivalent_exhaustive( a, b, rw.a2, &rw.b2 ) ) << "round " << round;
  }
}

TEST( exorlink, difference_mask_matches_per_variable_definition )
{
  std::mt19937_64 rng( 0xabc3 );
  for ( int round = 0; round < 2000; ++round )
  {
    const auto a = random_cube( rng, 16 );
    const auto b = random_cube( rng, 16 );
    std::uint64_t expected = 0;
    for ( unsigned v = 0; v < 16; ++v )
    {
      const bool in_a = a.has_var( v );
      const bool in_b = b.has_var( v );
      const bool differs =
          in_a != in_b || ( in_a && in_b && a.var_polarity( v ) != b.var_polarity( v ) );
      if ( differs )
      {
        expected |= std::uint64_t{ 1 } << v;
      }
    }
    EXPECT_EQ( a.difference_mask( b ), expected );
    EXPECT_EQ( a.distance( b ), popcount64( expected ) );
  }
}

class exorcism_multi_output : public ::testing::TestWithParam<unsigned>
{
};

TEST_P( exorcism_multi_output, preserves_all_output_truth_tables )
{
  const auto n = GetParam();
  std::mt19937_64 rng( 0xd00d + n );
  for ( int round = 0; round < 12; ++round )
  {
    const auto m = 1u + static_cast<unsigned>( rng() % 3u );
    const auto terms = 20u + static_cast<unsigned>( rng() % 180u );
    auto e = random_esop( rng, n, m, terms );
    std::vector<truth_table> before;
    for ( unsigned o = 0; o < m; ++o )
    {
      before.push_back( e.output_truth_table( o ) );
    }
    const auto initial_distinct = [&] {
      auto copy = e;
      copy.merge_identical_cubes();
      return copy.num_terms();
    }();
    const auto stats = exorcism( e, 64 );
    EXPECT_LE( e.num_terms(), initial_distinct ) << "n " << n << " round " << round;
    EXPECT_EQ( stats.final_terms, e.num_terms() );
    for ( unsigned o = 0; o < m; ++o )
    {
      EXPECT_EQ( e.output_truth_table( o ), before[o] )
          << "n " << n << " round " << round << " output " << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P( sizes, exorcism_multi_output, ::testing::Values( 5u, 6u, 7u, 8u ) );

TEST( exorcism, empty_and_single_term )
{
  esop empty;
  empty.num_inputs = 4;
  empty.num_outputs = 2;
  const auto stats = exorcism( empty );
  EXPECT_EQ( stats.final_terms, 0u );

  esop single;
  single.num_inputs = 4;
  single.num_outputs = 1;
  cube c;
  c.add_literal( 1, true );
  single.terms.push_back( { c, 1u } );
  const auto before = single.output_truth_table( 0 );
  exorcism( single );
  EXPECT_EQ( single.num_terms(), 1u );
  EXPECT_EQ( single.output_truth_table( 0 ), before );
}

TEST( exorcism, merges_identical_cubes_across_output_groups )
{
  // Two identical cubes feeding different output sets must merge into one
  // term whose output mask is the XOR.
  esop e;
  e.num_inputs = 3;
  e.num_outputs = 2;
  cube c;
  c.add_literal( 0, true );
  e.terms.push_back( { c, 0b01 } );
  e.terms.push_back( { c, 0b11 } );
  const auto t0 = e.output_truth_table( 0 );
  const auto t1 = e.output_truth_table( 1 );
  exorcism( e );
  EXPECT_EQ( e.num_terms(), 1u );
  EXPECT_EQ( e.terms[0].output_mask, 0b10u );
  EXPECT_EQ( e.output_truth_table( 0 ), t0 );
  EXPECT_EQ( e.output_truth_table( 1 ), t1 );
}
