#include <gtest/gtest.h>

#include "logic/cube.hpp"

using namespace qsyn;

TEST( cube, empty_cube_is_constant_one )
{
  cube c;
  EXPECT_EQ( c.num_literals(), 0 );
  for ( std::uint64_t i = 0; i < 8; ++i )
  {
    EXPECT_TRUE( c.evaluate( i ) );
  }
  EXPECT_EQ( c.to_string(), "1" );
}

TEST( cube, add_remove_literals )
{
  cube c;
  c.add_literal( 0, true );
  c.add_literal( 2, false );
  EXPECT_EQ( c.num_literals(), 2 );
  EXPECT_TRUE( c.has_var( 0 ) );
  EXPECT_TRUE( c.var_polarity( 0 ) );
  EXPECT_TRUE( c.has_var( 2 ) );
  EXPECT_FALSE( c.var_polarity( 2 ) );
  EXPECT_EQ( c.to_string(), "x0 !x2" );
  c.remove_literal( 0 );
  EXPECT_EQ( c.num_literals(), 1 );
  EXPECT_FALSE( c.has_var( 0 ) );
}

TEST( cube, evaluate_mixed_polarity )
{
  cube c;
  c.add_literal( 1, true );
  c.add_literal( 3, false );
  // true iff bit1 == 1 and bit3 == 0
  EXPECT_TRUE( c.evaluate( 0b0010 ) );
  EXPECT_FALSE( c.evaluate( 0b1010 ) );
  EXPECT_FALSE( c.evaluate( 0b0000 ) );
  EXPECT_TRUE( c.evaluate( 0b0110 ) );
}

TEST( cube, distance_definition )
{
  cube a;
  a.add_literal( 0, true );
  a.add_literal( 1, true );
  cube b;
  b.add_literal( 0, false );
  b.add_literal( 1, true );
  EXPECT_EQ( a.distance( b ), 1 ); // opposite polarity at var 0
  cube c;
  c.add_literal( 1, true );
  EXPECT_EQ( a.distance( c ), 1 ); // var 0 only in a
  EXPECT_EQ( b.distance( c ), 1 );
  cube d;
  d.add_literal( 2, false );
  EXPECT_EQ( a.distance( d ), 3 ); // vars 0, 1 (only a) and 2 (only d)
  EXPECT_EQ( a.distance( a ), 0 );
}

TEST( cube, to_truth_table )
{
  cube c;
  c.add_literal( 0, true );
  c.add_literal( 2, false );
  const auto tt = c.to_truth_table( 3 );
  for ( std::uint64_t i = 0; i < 8; ++i )
  {
    EXPECT_EQ( tt.get_bit( i ), c.evaluate( i ) );
  }
}

TEST( esop, evaluate_and_truth_table_agree )
{
  esop e;
  e.num_inputs = 3;
  e.num_outputs = 2;
  cube c1;
  c1.add_literal( 0, true );
  cube c2;
  c2.add_literal( 1, true );
  c2.add_literal( 2, false );
  e.terms.push_back( { c1, 0b01 } );
  e.terms.push_back( { c2, 0b11 } );
  e.terms.push_back( { cube{}, 0b10 } ); // constant-1 term into output 1
  for ( unsigned o = 0; o < 2; ++o )
  {
    const auto tt = e.output_truth_table( o );
    for ( std::uint64_t i = 0; i < 8; ++i )
    {
      EXPECT_EQ( tt.get_bit( i ), e.evaluate( i, o ) );
    }
  }
}

TEST( esop, merge_identical_cubes_xors_masks )
{
  esop e;
  e.num_inputs = 2;
  e.num_outputs = 2;
  cube c;
  c.add_literal( 0, true );
  e.terms.push_back( { c, 0b01 } );
  e.terms.push_back( { c, 0b11 } );
  const auto before0 = e.output_truth_table( 0 );
  const auto before1 = e.output_truth_table( 1 );
  const auto removed = e.merge_identical_cubes();
  EXPECT_EQ( removed, 1u );
  EXPECT_EQ( e.num_terms(), 1u );
  EXPECT_EQ( e.terms[0].output_mask, 0b10u );
  EXPECT_EQ( e.output_truth_table( 0 ), before0 );
  EXPECT_EQ( e.output_truth_table( 1 ), before1 );
}

TEST( esop, merge_drops_cancelled_terms )
{
  esop e;
  e.num_inputs = 1;
  e.num_outputs = 1;
  cube c;
  c.add_literal( 0, true );
  e.terms.push_back( { c, 1u } );
  e.terms.push_back( { c, 1u } );
  e.merge_identical_cubes();
  EXPECT_EQ( e.num_terms(), 0u );
}

TEST( esop, literal_count_weights_outputs )
{
  esop e;
  e.num_inputs = 3;
  e.num_outputs = 2;
  cube c;
  c.add_literal( 0, true );
  c.add_literal( 1, false );
  e.terms.push_back( { c, 0b11 } ); // 2 literals x 2 outputs
  EXPECT_EQ( e.num_literals(), 4u );
}
