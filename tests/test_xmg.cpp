#include <gtest/gtest.h>

#include "logic/xmg.hpp"

using namespace qsyn;

TEST( xmg, maj_truth_table )
{
  xmg_network xmg( 3 );
  xmg.add_po( xmg.create_maj( xmg.pi( 0 ), xmg.pi( 1 ), xmg.pi( 2 ) ) );
  const auto tts = xmg.simulate_outputs();
  EXPECT_EQ( tts[0].to_hex(), "e8" );
}

TEST( xmg, and_or_via_maj_constants )
{
  xmg_network xmg( 2 );
  xmg.add_po( xmg.create_and( xmg.pi( 0 ), xmg.pi( 1 ) ) );
  xmg.add_po( xmg.create_or( xmg.pi( 0 ), xmg.pi( 1 ) ) );
  const auto tts = xmg.simulate_outputs();
  EXPECT_EQ( tts[0].to_binary(), "1000" );
  EXPECT_EQ( tts[1].to_binary(), "1110" );
  EXPECT_EQ( xmg.num_maj(), 2u );
  EXPECT_EQ( xmg.num_xor(), 0u );
}

TEST( xmg, xor_node_and_phase_folding )
{
  xmg_network xmg( 2 );
  const auto x = xmg.create_xor( xmg.pi( 0 ), xmg.pi( 1 ) );
  const auto xn = xmg.create_xor( xmg.pi( 0 ) ^ 1u, xmg.pi( 1 ) );
  // Complemented operand folds into the output phase: same node.
  EXPECT_EQ( x >> 1, xn >> 1 );
  EXPECT_EQ( x ^ 1u, xn );
  xmg.add_po( x );
  EXPECT_EQ( xmg.simulate_outputs()[0].to_binary(), "0110" );
}

TEST( xmg, xor_simplifications )
{
  xmg_network xmg( 1 );
  const auto a = xmg.pi( 0 );
  EXPECT_EQ( xmg.create_xor( a, a ), xmg_network::const0 );
  EXPECT_EQ( xmg.create_xor( a, a ^ 1u ), xmg_network::const1 );
  EXPECT_EQ( xmg.create_xor( a, xmg_network::const0 ), a );
  EXPECT_EQ( xmg.create_xor( a, xmg_network::const1 ), a ^ 1u );
}

TEST( xmg, maj_simplifications )
{
  xmg_network xmg( 2 );
  const auto a = xmg.pi( 0 );
  const auto b = xmg.pi( 1 );
  EXPECT_EQ( xmg.create_maj( a, a, b ), a );
  EXPECT_EQ( xmg.create_maj( a, a ^ 1u, b ), b );
  EXPECT_EQ( xmg.create_maj( xmg_network::const0, xmg_network::const1, b ), b );
  EXPECT_EQ( xmg.num_gates(), 0u );
}

TEST( xmg, maj_self_duality_canonicalization )
{
  xmg_network xmg( 3 );
  const auto a = xmg.pi( 0 );
  const auto b = xmg.pi( 1 );
  const auto c = xmg.pi( 2 );
  const auto m = xmg.create_maj( a, b, c );
  const auto m_compl = xmg.create_maj( a ^ 1u, b ^ 1u, c ^ 1u );
  EXPECT_EQ( m ^ 1u, m_compl );
  EXPECT_EQ( xmg.num_maj(), 1u );
}

TEST( xmg, structural_hashing_orders_fanins )
{
  xmg_network xmg( 3 );
  const auto m1 = xmg.create_maj( xmg.pi( 0 ), xmg.pi( 1 ), xmg.pi( 2 ) );
  const auto m2 = xmg.create_maj( xmg.pi( 2 ), xmg.pi( 0 ), xmg.pi( 1 ) );
  EXPECT_EQ( m1, m2 );
  EXPECT_EQ( xmg.num_maj(), 1u );
}

TEST( xmg, mux_semantics )
{
  xmg_network xmg( 3 );
  xmg.add_po( xmg.create_mux( xmg.pi( 0 ), xmg.pi( 1 ), xmg.pi( 2 ) ) );
  const auto tts = xmg.simulate_outputs();
  for ( std::uint64_t i = 0; i < 8; ++i )
  {
    const bool s = i & 1u, t = i & 2u, e = i & 4u;
    EXPECT_EQ( tts[0].get_bit( i ), s ? t : e );
  }
}

TEST( xmg, full_adder_costs_one_maj )
{
  // sum = a ^ b ^ cin (XOR only), carry = maj(a,b,cin) (one MAJ).
  xmg_network xmg( 3 );
  const auto a = xmg.pi( 0 );
  const auto b = xmg.pi( 1 );
  const auto cin = xmg.pi( 2 );
  xmg.add_po( xmg.create_nary_xor( { a, b, cin } ) );
  xmg.add_po( xmg.create_maj( a, b, cin ) );
  EXPECT_EQ( xmg.num_maj(), 1u );
  EXPECT_EQ( xmg.num_xor(), 2u );
  const auto tts = xmg.simulate_outputs();
  for ( std::uint64_t i = 0; i < 8; ++i )
  {
    const unsigned total = static_cast<unsigned>( popcount64( i ) );
    EXPECT_EQ( tts[0].get_bit( i ), total & 1u );
    EXPECT_EQ( tts[1].get_bit( i ), total >= 2u );
  }
}

TEST( xmg, cleanup_preserves_function )
{
  xmg_network xmg( 3 );
  const auto keep = xmg.create_maj( xmg.pi( 0 ), xmg.pi( 1 ), xmg.pi( 2 ) );
  xmg.create_xor( xmg.pi( 0 ), xmg.pi( 1 ) ); // dangling
  xmg.add_po( keep ^ 1u );
  const auto before = xmg.simulate_outputs();
  const auto clean = xmg.cleanup();
  EXPECT_LT( clean.num_gates(), xmg.num_gates() );
  EXPECT_EQ( clean.simulate_outputs(), before );
}

TEST( xmg, pattern_simulation_matches )
{
  xmg_network xmg( 3 );
  xmg.add_po( xmg.create_xor( xmg.create_and( xmg.pi( 0 ), xmg.pi( 1 ) ), xmg.pi( 2 ) ) );
  const auto tts = xmg.simulate_outputs();
  std::vector<std::uint64_t> patterns = { projections[0], projections[1], projections[2] };
  const auto words = xmg.simulate_patterns( patterns );
  for ( std::uint64_t i = 0; i < 8; ++i )
  {
    EXPECT_EQ( ( words[0] >> i ) & 1u, tts[0].get_bit( i ) );
  }
}

TEST( xmg, depth_computation )
{
  xmg_network xmg( 4 );
  auto f = xmg.create_and( xmg.pi( 0 ), xmg.pi( 1 ) );
  f = xmg.create_xor( f, xmg.pi( 2 ) );
  f = xmg.create_maj( f, xmg.pi( 3 ), xmg_network::const1 );
  xmg.add_po( f );
  EXPECT_EQ( xmg.depth(), 3u );
}
