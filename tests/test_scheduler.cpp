/// Scheduler suite: the work-stealing thread pool, the task-graph engine,
/// and the graph-built DSE explorations.  The central invariants:
///
///   * QSYN_THREADS pins the default worker count (the ctest `scheduler`
///     fixtures run this whole binary at 1, 2, and hardware threads),
///   * a task graph respects every dependency edge, coalesces shared keys
///     onto one in-flight task, and isolates failure to the failing task's
///     transitive dependents — with the original task's key as blame,
///   * graph-scheduled explorations are bit-identical to the tail-only
///     engine on every flow kind, for single designs and whole batches,
///   * stage failures stay attributable per point: the status detail names
///     the artifact key and stage that failed, shared task or not.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/budget.hpp"
#include "common/fault_injection.hpp"
#include "common/thread_pool.hpp"
#include "core/dse.hpp"
#include "core/flows.hpp"
#include "core/task_graph.hpp"
#include "verilog/elaborator.hpp"

using namespace qsyn;

namespace
{

/// Saves and restores QSYN_THREADS, so the env-override test cannot leak a
/// pinned value into the rest of the (possibly fixture-pinned) binary.
struct env_guard
{
  bool had = false;
  std::string saved;
  env_guard()
  {
    if ( const char* value = std::getenv( "QSYN_THREADS" ) )
    {
      had = true;
      saved = value;
    }
  }
  ~env_guard()
  {
    if ( had )
    {
      setenv( "QSYN_THREADS", saved.c_str(), 1 );
    }
    else
    {
      unsetenv( "QSYN_THREADS" );
    }
  }
};

/// RAII disarm so an assertion failure cannot leak an armed site into
/// later tests.
struct fault_guard
{
  ~fault_guard() { fault_injection::disarm_all(); }
};

bool same_costs( const dse_point& a, const dse_point& b )
{
  return a.label == b.label && a.result.costs.qubits == b.result.costs.qubits &&
         a.result.costs.t_count == b.result.costs.t_count &&
         a.result.costs.gates == b.result.costs.gates &&
         a.result.esop_terms == b.result.esop_terms;
}

std::string what_of( const std::exception_ptr& error )
{
  try
  {
    std::rethrow_exception( error );
  }
  catch ( const std::exception& e )
  {
    return e.what();
  }
  catch ( ... )
  {
    return "";
  }
}

} // namespace

// --- QSYN_THREADS ------------------------------------------------------------

TEST( scheduler_env, qsyn_threads_overrides_default_num_threads )
{
  env_guard guard;
  setenv( "QSYN_THREADS", "3", 1 );
  EXPECT_EQ( thread_pool::default_num_threads(), 3u );
  setenv( "QSYN_THREADS", "1", 1 );
  EXPECT_EQ( thread_pool::default_num_threads(), 1u );
  // Non-positive values clamp to 1 instead of starting zero workers.
  setenv( "QSYN_THREADS", "0", 1 );
  EXPECT_EQ( thread_pool::default_num_threads(), 1u );
  setenv( "QSYN_THREADS", "-4", 1 );
  EXPECT_EQ( thread_pool::default_num_threads(), 1u );
  // Unparsable values fall back to the hardware default, never 0.
  setenv( "QSYN_THREADS", "not-a-number", 1 );
  EXPECT_GE( thread_pool::default_num_threads(), 1u );
  unsetenv( "QSYN_THREADS" );
  EXPECT_GE( thread_pool::default_num_threads(), 1u );
}

TEST( scheduler_env, qsyn_threads_clamps_oversized_values )
{
  env_guard guard;
  // 2^32 + 1 used to survive the long parse and wrap to 1 in the
  // long -> unsigned cast; 2^32 + 20000 wrapped to 20000 workers.  Both
  // now clamp to the documented ceiling.
  setenv( "QSYN_THREADS", "4294967297", 1 );
  EXPECT_EQ( thread_pool::default_num_threads(), thread_pool::max_env_threads );
  setenv( "QSYN_THREADS", "4294987296", 1 );
  EXPECT_EQ( thread_pool::default_num_threads(), thread_pool::max_env_threads );
  // Values beyond LONG_MAX saturate in strtol and clamp the same way.
  setenv( "QSYN_THREADS", "99999999999999999999999999", 1 );
  EXPECT_EQ( thread_pool::default_num_threads(), thread_pool::max_env_threads );
  // The largest accepted value passes through unchanged.
  setenv( "QSYN_THREADS", std::to_string( thread_pool::max_env_threads ).c_str(), 1 );
  EXPECT_EQ( thread_pool::default_num_threads(), thread_pool::max_env_threads );
}

// --- work stealing -----------------------------------------------------------

TEST( scheduler_pool, jobs_spawned_by_a_worker_can_be_stolen )
{
  thread_pool pool( 2 );
  ASSERT_EQ( pool.num_workers(), 2u );
  std::atomic<int> ran{ 0 };
  // The parent job runs on one worker and pushes all children onto that
  // worker's own deque; the other worker has nothing and must steal.  The
  // children sleep long enough that the idle worker always gets a turn.
  pool.submit( [&pool, &ran] {
    for ( int i = 0; i < 16; ++i )
    {
      pool.submit( [&ran] {
        std::this_thread::sleep_for( std::chrono::milliseconds( 2 ) );
        ran.fetch_add( 1 );
      } );
    }
  } );
  pool.wait();
  EXPECT_EQ( ran.load(), 16 );
  EXPECT_GE( pool.steals(), 1u );
}

TEST( scheduler_pool, worker_submitted_bursts_are_fully_waited )
{
  // Regression: submit() must count a job BEFORE publishing it.  Jobs
  // spawned from workers race wait()'s outstanding-count with the
  // claim-side decrements; the old publish-then-count order let a fast
  // claimant finish before the counts existed, waking wait() while work
  // was still queued (or hanging it via counter underflow).
  thread_pool pool( 4 );
  std::atomic<int> ran{ 0 };
  int expected = 0;
  for ( int round = 0; round < 50; ++round )
  {
    for ( int parent = 0; parent < 8; ++parent )
    {
      pool.submit( [&pool, &ran] {
        for ( int child = 0; child < 4; ++child )
        {
          pool.submit( [&ran] { ran.fetch_add( 1 ); } );
        }
        ran.fetch_add( 1 );
      } );
    }
    expected += 8 * 5;
    pool.wait();
    // Every job of the round — parents AND worker-spawned children — must
    // be done when wait() returns, every round.
    ASSERT_EQ( ran.load(), expected ) << "round " << round;
  }
}

TEST( scheduler_pool, inline_pool_never_steals )
{
  thread_pool pool( 1 );
  for ( int i = 0; i < 8; ++i )
  {
    pool.submit( [] {} );
  }
  pool.wait();
  EXPECT_EQ( pool.steals(), 0u );
}

// --- task graph: shapes ------------------------------------------------------

TEST( scheduler_graph, inline_diamond_runs_in_deterministic_topological_order )
{
  task_graph graph;
  std::vector<int> order; // inline pool: single-threaded, no lock needed
  const auto a = graph.add( "a", [&order] { order.push_back( 0 ); } );
  const auto b = graph.add( "b", [&order] { order.push_back( 1 ); }, { a } );
  const auto c = graph.add( "c", [&order] { order.push_back( 2 ); }, { a } );
  const auto d = graph.add( "d", [&order] { order.push_back( 3 ); }, { b, c } );
  thread_pool pool( 1 );
  graph.run( pool );
  // The determinism contract: each finished task submits its ready
  // dependents in insertion order, recursively, so the diamond is 0-1-2-3.
  EXPECT_EQ( order, ( std::vector<int>{ 0, 1, 2, 3 } ) );
  for ( const auto id : { a, b, c, d } )
  {
    EXPECT_EQ( graph.state( id ), task_state::done ) << graph.key( id );
  }
  const auto stats = graph.stats();
  EXPECT_EQ( stats.tasks_added, 4u );
  EXPECT_EQ( stats.tasks_run, 4u );
  EXPECT_EQ( stats.coalesced, 0u );
  EXPECT_GE( stats.wall_seconds, 0.0 );
  EXPECT_GE( stats.critical_path_seconds, 0.0 );
}

TEST( scheduler_graph, diamond_on_workers_respects_every_edge )
{
  task_graph graph;
  std::atomic<bool> a_done{ false }, b_done{ false }, c_done{ false };
  std::atomic<int> violations{ 0 };
  const auto a = graph.add( "a", [&a_done] { a_done = true; } );
  const auto b = graph.add( "b",
                            [&] {
                              if ( !a_done )
                              {
                                violations.fetch_add( 1 );
                              }
                              b_done = true;
                            },
                            { a } );
  const auto c = graph.add( "c",
                            [&] {
                              if ( !a_done )
                              {
                                violations.fetch_add( 1 );
                              }
                              c_done = true;
                            },
                            { a } );
  graph.add( "d",
             [&] {
               if ( !b_done || !c_done )
               {
                 violations.fetch_add( 1 );
               }
             },
             { b, c } );
  thread_pool pool( 2 );
  graph.run( pool );
  EXPECT_EQ( violations.load(), 0 );
  EXPECT_EQ( graph.stats().tasks_run, 4u );
}

TEST( scheduler_graph, wide_fan_in_waits_for_every_producer )
{
  task_graph graph;
  constexpr std::size_t width = 16;
  std::vector<std::atomic<bool>> produced( width );
  std::vector<task_id> producers;
  for ( std::size_t i = 0; i < width; ++i )
  {
    producers.push_back(
        graph.add( "p" + std::to_string( i ), [&produced, i] { produced[i] = true; } ) );
  }
  std::atomic<int> missing{ 0 };
  graph.add( "sink",
             [&] {
               for ( std::size_t i = 0; i < width; ++i )
               {
                 if ( !produced[i] )
                 {
                   missing.fetch_add( 1 );
                 }
               }
             },
             producers );
  // The fixture-pinned worker count (QSYN_THREADS) exercises 1, 2, and
  // hardware-wide pools over the same graph.
  thread_pool pool( thread_pool::default_num_threads() );
  graph.run( pool );
  EXPECT_EQ( missing.load(), 0 );
  EXPECT_EQ( graph.stats().tasks_run, width + 1 );
}

// --- task graph: coalescing --------------------------------------------------

TEST( scheduler_graph, shared_keys_coalesce_onto_one_task )
{
  task_graph graph;
  std::atomic<int> runs{ 0 };
  const auto first = graph.add_shared( "artifact", [&runs] { runs.fetch_add( 1 ); } );
  // The duplicate's callable must be dropped, not queued: first writer wins.
  const auto second = graph.add_shared( "artifact", [&runs] { runs.fetch_add( 100 ); } );
  EXPECT_EQ( first, second );
  EXPECT_EQ( graph.size(), 1u );
  ASSERT_TRUE( graph.find( "artifact" ).has_value() );
  EXPECT_EQ( *graph.find( "artifact" ), first );
  EXPECT_FALSE( graph.find( "missing" ).has_value() );
  thread_pool pool( 1 );
  graph.run( pool );
  EXPECT_EQ( runs.load(), 1 );
  EXPECT_EQ( graph.stats().coalesced, 1u );
  EXPECT_EQ( graph.stats().tasks_run, 1u );
}

TEST( scheduler_graph, coalesced_shared_task_merges_new_dependencies )
{
  task_graph graph;
  std::atomic<bool> p1_done{ false }, p2_done{ false };
  std::atomic<int> violations{ 0 };
  const auto p1 = graph.add( "p1", [&p1_done] { p1_done = true; } );
  const auto p2 = graph.add( "p2", [&p2_done] { p2_done = true; } );
  const auto first = graph.add_shared( "artifact",
                                       [&] {
                                         if ( !p1_done || !p2_done )
                                         {
                                           violations.fetch_add( 1 );
                                         }
                                       },
                                       { p1 } );
  // Regression: the duplicate's callable is dropped, but its deps must be
  // MERGED — the shared task must not run before a prerequisite only the
  // later caller knows about.
  const auto second = graph.add_shared( "artifact", [] {}, { p2 } );
  EXPECT_EQ( first, second );
  EXPECT_EQ( graph.stats().coalesced, 1u );
  // A dep added after the shared task cannot be merged without risking a
  // cycle; dropping it silently would be worse, so it throws.
  const auto later = graph.add( "later", [] {} );
  EXPECT_THROW( graph.add_shared( "artifact", [] {}, { later } ),
                std::invalid_argument );
  thread_pool pool( thread_pool::default_num_threads() );
  graph.run( pool );
  EXPECT_EQ( violations.load(), 0 );
  EXPECT_EQ( graph.state( first ), task_state::done );
}

TEST( scheduler_graph, inline_run_reports_no_task_overlap )
{
  task_graph graph;
  for ( int i = 0; i < 3; ++i )
  {
    graph.add( "t" + std::to_string( i ),
               [] { std::this_thread::sleep_for( std::chrono::milliseconds( 2 ) ); } );
  }
  thread_pool pool( 1 );
  graph.run( pool );
  EXPECT_EQ( graph.stats().max_concurrency, 1u );
}

TEST( scheduler_graph, overlapping_tasks_report_their_peak_concurrency )
{
  task_graph graph;
  std::atomic<bool> a_started{ false }, b_started{ false };
  const auto spin_until = []( const std::atomic<bool>& flag ) {
    const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds( 10 );
    while ( !flag.load() && std::chrono::steady_clock::now() < give_up )
    {
      std::this_thread::yield();
    }
  };
  // Each seed waits for the other to start, so on two workers the two
  // intervals provably overlap — the signal the dead-parallelism canary
  // in run_bench.sh gates on (steals may legitimately stay 0 here).
  graph.add( "a", [&] {
    a_started = true;
    spin_until( b_started );
  } );
  graph.add( "b", [&] {
    b_started = true;
    spin_until( a_started );
  } );
  thread_pool pool( 2 );
  graph.run( pool );
  EXPECT_EQ( graph.stats().max_concurrency, 2u );
}

// --- task graph: failure isolation -------------------------------------------

TEST( scheduler_graph, failure_poisons_only_transitive_dependents )
{
  task_graph graph;
  const auto a = graph.add( "a", [] { throw std::runtime_error( "stage exploded" ); } );
  const auto b = graph.add( "b", [] {}, { a } );
  const auto c = graph.add( "c", [] {}, { b } );
  std::atomic<bool> d_ran{ false };
  const auto d = graph.add( "d", [&d_ran] { d_ran = true; } );
  thread_pool pool( 1 );
  graph.run( pool );

  EXPECT_EQ( graph.state( a ), task_state::failed );
  EXPECT_EQ( graph.state( b ), task_state::poisoned );
  EXPECT_EQ( graph.state( c ), task_state::poisoned );
  EXPECT_EQ( graph.state( d ), task_state::done );
  EXPECT_TRUE( d_ran.load() );
  // Poisoning propagates the ULTIMATE origin: c blames a, not b.
  EXPECT_EQ( graph.blame( b ), "a" );
  EXPECT_EQ( graph.blame( c ), "a" );
  EXPECT_EQ( what_of( graph.error( c ) ), "stage exploded" );
  const auto stats = graph.stats();
  EXPECT_EQ( stats.tasks_failed, 1u );
  EXPECT_EQ( stats.tasks_poisoned, 2u );
  EXPECT_EQ( stats.tasks_run, 1u );
}

TEST( scheduler_graph, expired_deadline_cancels_unstarted_tasks_and_poisons_dependents )
{
  cancellation_token token;
  const auto stop = deadline::with_token( token );
  task_graph graph;
  const auto a = graph.add( "a", [&token] { token.request_cancel(); } );
  const auto b = graph.add( "b", [] {}, { a } );
  const auto c = graph.add( "c", [] {} );
  const auto d = graph.add( "d", [] {}, { c } );
  // Inline order: a runs (and cancels), then b is cancelled pre-start,
  // then seed c is cancelled pre-start and poisons d.
  thread_pool pool( 1 );
  graph.run( pool, stop );

  EXPECT_EQ( graph.state( a ), task_state::done );
  EXPECT_EQ( graph.state( b ), task_state::cancelled );
  EXPECT_EQ( graph.state( c ), task_state::cancelled );
  EXPECT_EQ( graph.state( d ), task_state::poisoned );
  EXPECT_EQ( graph.blame( d ), "c" );
  EXPECT_THROW( std::rethrow_exception( graph.error( b ) ), budget_exhausted );
  // The cancellation record names the task it struck.
  EXPECT_NE( what_of( graph.error( b ) ).find( "'b'" ), std::string::npos );
  const auto stats = graph.stats();
  EXPECT_EQ( stats.tasks_run, 1u );
  EXPECT_EQ( stats.tasks_cancelled, 2u );
  EXPECT_EQ( stats.tasks_poisoned, 1u );
}

TEST( scheduler_graph, graph_rejects_forward_edges_and_reruns )
{
  task_graph graph;
  EXPECT_THROW( graph.add( "x", [] {}, { 0 } ), std::invalid_argument );
  graph.add( "x", [] {} );
  thread_pool pool( 1 );
  graph.run( pool );
  EXPECT_THROW( graph.run( pool ), std::logic_error );
  EXPECT_THROW( graph.add( "y", [] {} ), std::logic_error );
}

TEST( scheduler_graph, flow_tasks_read_their_deadline_when_they_run )
{
  // Regression: the per-configuration deadline must be READ when a flow
  // task runs, not copied at graph-build time — the batch driver arms it
  // from the design's elaborate task, so designs scheduled late in a long
  // sweep must not start with their per-flow clock already consumed.
  // Here an upstream task cancels the deadline slot after the graph was
  // built; a build-time copy (armed, unlimited) would let the tail run to
  // completion instead of timing out.
  const auto mod =
      verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 5 ) );
  flow_params params;
  params.kind = flow_kind::hierarchical;
  params.verify = false;

  task_graph graph;
  flow_artifact_cache cache;
  flow_result out;
  deadline armed; // unlimited while the graph is built
  cancellation_token token;
  const auto arm = graph.add( "arm", [&armed, &token] {
    token.request_cancel();
    armed = deadline::with_token( token );
  } );
  const auto ids =
      add_flow_tasks( graph, mod.aig, params, cache, armed, out, {}, { arm } );
  thread_pool pool( 1 );
  graph.run( pool );

  EXPECT_EQ( graph.state( ids.tail ), task_state::failed );
  EXPECT_THROW( std::rethrow_exception( graph.error( ids.tail ) ), budget_exhausted );
}

// --- graph-scheduled DSE -----------------------------------------------------

TEST( scheduler_dse, task_graph_matches_tail_only_bit_for_bit )
{
  const auto mod =
      verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 5 ) );
  const auto configs = default_dse_configurations( true );

  // The seed sequential path: uncached, inline, tail-only.
  explore_options sequential;
  sequential.scheduler = schedule_mode::tail_only;
  sequential.num_threads = 1;
  sequential.use_cache = false;
  const auto seq = explore( mod.aig, configs, sequential );

  // The graph engine at the fixture-pinned default worker count.
  explore_options graphed; // scheduler = task_graph, num_threads = default
  flow_artifact_cache cache;
  task_graph_stats stats;
  const auto par = explore( mod.aig, configs, graphed, cache, deadline{}, stats );

  ASSERT_EQ( seq.size(), par.size() );
  for ( std::size_t i = 0; i < seq.size(); ++i )
  {
    EXPECT_TRUE( same_costs( seq[i], par[i] ) ) << seq[i].label;
    EXPECT_TRUE( par[i].result.verified ) << par[i].label;
  }
  // 7 configurations share 4 artifact tasks (optimize, collapse, esop,
  // xmg): 11 tasks, all run, and the 10 duplicate artifact requests
  // (6 optimize + 2 esop + 2 xmg) coalesce instead of recomputing.
  EXPECT_EQ( cache.stats().misses, 4u );
  EXPECT_EQ( stats.tasks_added, configs.size() + 4u );
  EXPECT_EQ( stats.tasks_run, stats.tasks_added );
  EXPECT_EQ( stats.coalesced, 10u );
  EXPECT_EQ( stats.tasks_failed + stats.tasks_poisoned + stats.tasks_cancelled, 0u );
  // The critical path is the lower bound of any schedule of this graph.
  EXPECT_LE( stats.critical_path_seconds, stats.wall_seconds + 0.05 );
}

TEST( scheduler_dse, poisoned_points_name_the_failing_stage_task )
{
  fault_guard guard;
  const auto mod =
      verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 5 ) );
  const auto configs = default_dse_configurations( true );
  explore_options options;
  options.num_threads = 1; // deterministic poll order: one xmg task, one poll
  fault_injection::arm( "flow.xmg", fault_injection::kind::fail, 0, 1 );
  flow_artifact_cache cache;
  const auto points = explore( mod.aig, configs, options, cache );
  fault_injection::disarm_all();

  for ( const auto& point : points )
  {
    if ( point.params.kind == flow_kind::hierarchical )
    {
      // The regression this guards: the shared xmg task fails ONCE, and
      // every dependent point's record still names the artifact key (which
      // carries the stage name) plus the underlying fault.
      EXPECT_EQ( point.result.status, flow_status::failed ) << point.label;
      EXPECT_NE( point.result.status_detail.find( "stage '" ), std::string::npos )
          << point.result.status_detail;
      EXPECT_NE( point.result.status_detail.find( "xmg[" ), std::string::npos )
          << point.result.status_detail;
      EXPECT_NE( point.result.status_detail.find( "flow.xmg" ), std::string::npos )
          << point.result.status_detail;
    }
    else
    {
      EXPECT_EQ( point.result.status, flow_status::ok ) << point.label;
    }
  }
}

TEST( scheduler_dse, tail_only_stage_errors_carry_key_and_stage )
{
  fault_guard guard;
  const auto mod =
      verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 5 ) );
  const auto configs = default_dse_configurations( true );
  explore_options options;
  options.scheduler = schedule_mode::tail_only;
  options.num_threads = 1;
  // Tail-only prefetches the failing stage once per hierarchical config.
  fault_injection::arm( "flow.xmg", fault_injection::kind::fail, 0, 3 );
  flow_artifact_cache cache;
  const auto points = explore( mod.aig, configs, options, cache );
  fault_injection::disarm_all();

  for ( const auto& point : points )
  {
    if ( point.params.kind == flow_kind::hierarchical )
    {
      EXPECT_EQ( point.result.status, flow_status::failed ) << point.label;
      EXPECT_NE( point.result.status_detail.find( "xmg[" ), std::string::npos )
          << point.result.status_detail;
      EXPECT_NE( point.result.status_detail.find( "(xmg)" ), std::string::npos )
          << point.result.status_detail;
      EXPECT_NE( point.result.status_detail.find( "flow.xmg" ), std::string::npos )
          << point.result.status_detail;
    }
    else
    {
      EXPECT_EQ( point.result.status, flow_status::ok ) << point.label;
    }
  }
}

TEST( scheduler_dse, batch_graph_matches_serial_sweep_bit_for_bit )
{
  explore_options serial;
  serial.scheduler = schedule_mode::tail_only;
  serial.num_threads = 1;
  const auto expect = explore_designs( { reciprocal_design::intdiv,
                                         reciprocal_design::newton },
                                       5, 5, serial );

  explore_options graphed; // one graph for the whole batch, default workers
  task_graph_stats stats;
  const auto got = explore_designs( { reciprocal_design::intdiv,
                                      reciprocal_design::newton },
                                    5, 5, graphed, stats );

  ASSERT_EQ( expect.size(), got.size() );
  for ( std::size_t d = 0; d < expect.size(); ++d )
  {
    EXPECT_EQ( expect[d].name, got[d].name );
    EXPECT_EQ( expect[d].status, got[d].status ) << got[d].name;
    ASSERT_EQ( expect[d].points.size(), got[d].points.size() ) << got[d].name;
    for ( std::size_t i = 0; i < expect[d].points.size(); ++i )
    {
      EXPECT_TRUE( same_costs( expect[d].points[i], got[d].points[i] ) )
          << got[d].name << " " << got[d].points[i].label;
    }
    EXPECT_EQ( expect[d].cache.misses, got[d].cache.misses ) << got[d].name;
  }
  // Per design: 1 elaborate + 4 artifacts + 7 tails; two designs, one graph.
  EXPECT_EQ( stats.tasks_added, 24u );
  EXPECT_EQ( stats.tasks_run, 24u );
  EXPECT_EQ( stats.coalesced, 20u );
}
