/// Synthesis daemon: protocol parsing, request handling, result caching
/// (memory + store), and the socket transport.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "store/daemon.hpp"

using namespace qsyn;
using store::parse_flat_json;
using store::synthesis_daemon;

namespace
{

struct temp_dir
{
  std::string path;
  temp_dir()
  {
    char pattern[] = "/tmp/qsyn-daemon-test-XXXXXX";
    path = ::mkdtemp( pattern );
  }
  ~temp_dir()
  {
    std::error_code ec;
    std::filesystem::remove_all( path, ec );
  }
};

bool contains( const std::string& haystack, const std::string& needle )
{
  return haystack.find( needle ) != std::string::npos;
}

/// One-shot client: connect, send `line`, read one response line.
std::string roundtrip( const std::string& socket_path, const std::string& line )
{
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy( addr.sun_path, socket_path.c_str(), sizeof( addr.sun_path ) - 1 );
  const int fd = ::socket( AF_UNIX, SOCK_STREAM, 0 );
  EXPECT_GE( fd, 0 );
  EXPECT_EQ( ::connect( fd, reinterpret_cast<const sockaddr*>( &addr ), sizeof( addr ) ), 0 );
  const auto request = line + "\n";
  // MSG_NOSIGNAL and no assert on the result: the daemon may answer (e.g.
  // "busy") and close before this send runs — the pre-close response is
  // still readable below, and a plain send would raise SIGPIPE.
  ::send( fd, request.data(), request.size(), MSG_NOSIGNAL );
  std::string response;
  char chunk[4096];
  while ( response.find( '\n' ) == std::string::npos )
  {
    const auto n = ::recv( fd, chunk, sizeof chunk, 0 );
    if ( n <= 0 )
    {
      break;
    }
    response.append( chunk, static_cast<std::size_t>( n ) );
  }
  ::close( fd );
  const auto eol = response.find( '\n' );
  return eol == std::string::npos ? response : response.substr( 0, eol );
}

} // namespace

// --- flat JSON ---------------------------------------------------------------

TEST( daemon_json, parses_flat_objects )
{
  const auto fields = parse_flat_json(
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":6,"deadline":1.5,"fast":true})" );
  EXPECT_EQ( fields.at( "cmd" ), "synthesize" );
  EXPECT_EQ( fields.at( "design" ), "intdiv" );
  EXPECT_EQ( fields.at( "bitwidth" ), "6" );
  EXPECT_EQ( fields.at( "deadline" ), "1.5" );
  EXPECT_EQ( fields.at( "fast" ), "true" );
  EXPECT_TRUE( parse_flat_json( "{}" ).empty() );
  EXPECT_TRUE( parse_flat_json( "  { }  " ).empty() );
}

TEST( daemon_json, decodes_string_escapes )
{
  const auto fields =
      parse_flat_json( R"({"a":"line\nbreak","b":"quote\"slash\\","c":"Aé"})" );
  EXPECT_EQ( fields.at( "a" ), "line\nbreak" );
  EXPECT_EQ( fields.at( "b" ), "quote\"slash\\" );
  EXPECT_EQ( fields.at( "c" ), "A\xc3\xa9" );
}

TEST( daemon_json, rejects_malformed_input )
{
  for ( const auto* bad : { "", "null", "[1,2]", "{", R"({"a")", R"({"a":})", R"({"a":1)",
                            R"({"a":{"nested":1}})", R"({"a":"unterminated)",
                            R"({"a":1 "b":2})" } )
  {
    EXPECT_THROW( parse_flat_json( bad ), std::runtime_error ) << bad;
  }
}

TEST( daemon_json, rejects_trailing_garbage_after_object )
{
  for ( const auto* bad : { R"({"a":1}garbage)", R"({"a":1} {"b":2})", R"({} x)",
                            R"({"cmd":"ping"},)", R"({}})" } )
  {
    EXPECT_THROW( parse_flat_json( bad ), std::runtime_error ) << bad;
  }
  // Trailing whitespace is still fine.
  EXPECT_EQ( parse_flat_json( "{\"a\":1} \t " ).at( "a" ), "1" );
}

// --- request handling (no socket) --------------------------------------------

TEST( daemon, ping_stats_and_errors )
{
  synthesis_daemon daemon( {} );
  EXPECT_EQ( daemon.handle_request( R"({"cmd":"ping"})" ), R"({"ok":true,"pong":true})" );

  // Malformed requests answer with an error instead of killing anything.
  EXPECT_TRUE( contains( daemon.handle_request( "garbage" ), "\"ok\":false" ) );
  EXPECT_TRUE( contains( daemon.handle_request( R"({"cmd":"no-such"})" ), "\"ok\":false" ) );
  EXPECT_TRUE( contains( daemon.handle_request( R"({"design":"intdiv"})" ), "missing 'cmd'" ) );
  EXPECT_TRUE( contains(
      daemon.handle_request( R"({"cmd":"synthesize","design":"intdiv"})" ), "bitwidth" ) );
  EXPECT_TRUE( contains(
      daemon.handle_request(
          R"({"cmd":"synthesize","design":"pentium","bitwidth":4})" ),
      "unknown design" ) );

  const auto stats = daemon.handle_request( R"({"cmd":"stats"})" );
  EXPECT_TRUE( contains( stats, "\"ok\":true" ) );
  EXPECT_TRUE( contains( stats, "\"errors\":5" ) );
}

TEST( daemon, repeat_query_is_served_from_the_result_cache )
{
  synthesis_daemon daemon( {} );
  const auto request =
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"esop","esop_p":1,"verify":"sampled"})";
  const auto first = daemon.handle_request( request );
  ASSERT_TRUE( contains( first, "\"ok\":true" ) ) << first;
  EXPECT_TRUE( contains( first, "\"from_cache\":false" ) );
  EXPECT_TRUE( contains( first, "\"verified\":true" ) );

  const auto second = daemon.handle_request( request );
  ASSERT_TRUE( contains( second, "\"ok\":true" ) );
  EXPECT_TRUE( contains( second, "\"from_cache\":true" ) );

  // The cached response carries the same result payload.
  const auto strip_timing = []( const std::string& s ) {
    return s.substr( 0, s.find( ",\"runtime_seconds\"" ) );
  };
  EXPECT_EQ( strip_timing( first ).replace( strip_timing( first ).find( "\"from_cache\":false" ),
                                            std::strlen( "\"from_cache\":false" ),
                                            "\"from_cache\":true" ),
             strip_timing( second ) );

  // A different parameterization is its own cache entry.
  const auto other = daemon.handle_request(
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"hierarchical","cleanup":"bennett"})" );
  EXPECT_TRUE( contains( other, "\"from_cache\":false" ) );

  const auto stats = daemon.stats();
  EXPECT_EQ( stats.synthesized, 2u );
  EXPECT_EQ( stats.result_hits, 1u );
}

TEST( daemon, store_backed_daemon_answers_repeat_query_across_instances )
{
  temp_dir dir;
  const auto root = dir.path + "/store";
  const auto request =
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"esop","esop_p":2,"verify":"sat"})";

  std::string first;
  {
    synthesis_daemon daemon( { "", root } );
    first = daemon.handle_request( request );
    ASSERT_TRUE( contains( first, "\"from_cache\":false" ) ) << first;
    EXPECT_TRUE( contains( first, "\"verified\":true" ) );
    EXPECT_TRUE( contains( first, "\"verified_with\":\"sat\"" ) );
  }

  // A brand-new daemon on the same store — the "restarted" server —
  // serves the query from disk without synthesizing or re-verifying.
  synthesis_daemon reborn( { "", root } );
  const auto second = reborn.handle_request( request );
  ASSERT_TRUE( contains( second, "\"ok\":true" ) ) << second;
  EXPECT_TRUE( contains( second, "\"from_cache\":true" ) );
  EXPECT_TRUE( contains( second, "\"verified\":true" ) );
  EXPECT_TRUE( contains( second, "\"verified_with\":\"sat\"" ) );
  EXPECT_EQ( reborn.stats().synthesized, 0u );
  EXPECT_EQ( reborn.stats().result_hits, 1u );

  // Same costs, verbatim.
  const auto payload_of = []( const std::string& s ) {
    const auto from = s.find( "\"qubits\"" );
    const auto to = s.find( ",\"runtime_seconds\"" );
    return s.substr( from, to - from );
  };
  EXPECT_EQ( payload_of( first ), payload_of( second ) );
}

TEST( daemon, concurrent_queries_are_safe )
{
  synthesis_daemon daemon( {} );
  constexpr unsigned num_threads = 6;
  std::vector<std::string> responses( num_threads );
  std::vector<std::thread> threads;
  for ( unsigned t = 0; t < num_threads; ++t )
  {
    threads.emplace_back( [&daemon, &responses, t] {
      // Half hit the same key, half sweep distinct parameterizations.
      const auto p = std::to_string( t % 2u );
      responses[t] = daemon.handle_request(
          R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"esop","esop_p":)" + p +
          "}" );
    } );
  }
  for ( auto& t : threads )
  {
    t.join();
  }
  for ( const auto& r : responses )
  {
    EXPECT_TRUE( contains( r, "\"ok\":true" ) ) << r;
    EXPECT_TRUE( contains( r, "\"status\":\"ok\"" ) ) << r;
  }
}

TEST( daemon, concurrent_identical_queries_coalesce_into_one_synthesis )
{
  synthesis_daemon daemon( {} );
  constexpr unsigned num_clients = 8;
  const auto request =
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":5,"flow":"esop","esop_p":1,"verify":"sampled"})";
  std::vector<std::string> responses( num_clients );
  std::vector<std::thread> clients;
  for ( unsigned t = 0; t < num_clients; ++t )
  {
    clients.emplace_back(
        [&daemon, &responses, t, request] { responses[t] = daemon.handle_request( request ); } );
  }
  for ( auto& t : clients )
  {
    t.join();
  }

  // Whatever the interleaving — true coalescing onto the one in-flight
  // owner, or stragglers served from the result cache it filled — the
  // flow ran exactly once, and everyone got the same payload.
  const auto payload_of = []( const std::string& s ) {
    const auto from = s.find( "\"qubits\"" );
    const auto to = s.find( ",\"runtime_seconds\"" );
    return s.substr( from, to - from );
  };
  for ( const auto& r : responses )
  {
    ASSERT_TRUE( contains( r, "\"ok\":true" ) ) << r;
    EXPECT_TRUE( contains( r, "\"status\":\"ok\"" ) ) << r;
    EXPECT_EQ( payload_of( r ), payload_of( responses[0] ) );
  }
  const auto stats = daemon.stats();
  EXPECT_EQ( stats.requests, num_clients );
  EXPECT_EQ( stats.synthesized, 1u );
  EXPECT_EQ( stats.result_hits + stats.coalesced, num_clients - 1u );
  EXPECT_EQ( daemon.inflight(), 0u );
}

TEST( daemon, degraded_outcome_upgrades_on_better_budgeted_repeat )
{
  synthesis_daemon daemon( {} );
  // A one-pair EXORCISM budget deterministically stops minimization
  // early: the outcome is cached `degraded`.
  const auto starved =
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"esop","esop_p":1,"exorcism":1,"verify":"sampled","exorcism_pairs":1})";
  const auto first = daemon.handle_request( starved );
  ASSERT_TRUE( contains( first, "\"ok\":true" ) ) << first;
  EXPECT_TRUE( contains( first, "\"status\":\"degraded\"" ) ) << first;

  // An equally starved repeat is a plain cache hit — same degraded verdict.
  const auto repeat = daemon.handle_request( starved );
  EXPECT_TRUE( contains( repeat, "\"from_cache\":true" ) ) << repeat;
  EXPECT_TRUE( contains( repeat, "\"status\":\"degraded\"" ) );

  // An unlimited-budget requester of the same flow must NOT be served the
  // pinned degraded verdict: the daemon recomputes and upgrades the slot.
  const auto unlimited =
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"esop","esop_p":1,"exorcism":1,"verify":"sampled"})";
  const auto upgraded = daemon.handle_request( unlimited );
  ASSERT_TRUE( contains( upgraded, "\"ok\":true" ) ) << upgraded;
  EXPECT_TRUE( contains( upgraded, "\"from_cache\":false" ) ) << upgraded;
  EXPECT_TRUE( contains( upgraded, "\"status\":\"ok\"" ) ) << upgraded;

  // The upgrade overwrote the cache: both budget classes now hit it.
  EXPECT_TRUE( contains( daemon.handle_request( unlimited ), "\"from_cache\":true" ) );
  const auto after = daemon.handle_request( starved );
  EXPECT_TRUE( contains( after, "\"from_cache\":true" ) );
  EXPECT_TRUE( contains( after, "\"status\":\"ok\"" ) );

  const auto stats = daemon.stats();
  EXPECT_EQ( stats.synthesized, 2u );
  EXPECT_EQ( stats.upgraded, 1u );
  EXPECT_EQ( stats.result_hits, 3u );
}

TEST( daemon, degraded_store_entry_upgrades_across_instances )
{
  temp_dir dir;
  const auto root = dir.path + "/store";
  const auto starved =
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"esop","esop_p":1,"exorcism":1,"verify":"sampled","exorcism_pairs":1})";
  const auto unlimited =
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"esop","esop_p":1,"exorcism":1,"verify":"sampled"})";

  {
    synthesis_daemon daemon( { "", root } );
    const auto first = daemon.handle_request( starved );
    ASSERT_TRUE( contains( first, "\"status\":\"degraded\"" ) ) << first;
  }

  // A restarted daemon finds the degraded entry on disk, sees the bigger
  // budget, recomputes, and rewrites the entry upgraded.
  {
    synthesis_daemon reborn( { "", root } );
    const auto upgraded = reborn.handle_request( unlimited );
    ASSERT_TRUE( contains( upgraded, "\"ok\":true" ) ) << upgraded;
    EXPECT_TRUE( contains( upgraded, "\"from_cache\":false" ) );
    EXPECT_TRUE( contains( upgraded, "\"status\":\"ok\"" ) );
    EXPECT_EQ( reborn.stats().synthesized, 1u );
    EXPECT_EQ( reborn.stats().upgraded, 1u );
  }

  // After the upgrade, a third instance serves `ok` straight from disk.
  synthesis_daemon third( { "", root } );
  const auto served = third.handle_request( unlimited );
  EXPECT_TRUE( contains( served, "\"from_cache\":true" ) ) << served;
  EXPECT_TRUE( contains( served, "\"status\":\"ok\"" ) );
  EXPECT_EQ( third.stats().synthesized, 0u );
}

TEST( daemon, admission_cap_rejects_with_busy )
{
  store::daemon_options options;
  options.num_threads = 1;
  options.max_inflight = 1;
  synthesis_daemon daemon( options );

  // Occupy the single admission slot with a slow synthesis...
  std::thread owner( [&daemon] {
    const auto r = daemon.handle_request(
        R"({"cmd":"synthesize","design":"newton","bitwidth":7,"flow":"hierarchical","verify":"sat"})" );
    EXPECT_TRUE( contains( r, "\"ok\":true" ) ) << r;
  } );
  // ...wait until it is admitted (inflight is a gauge exposed for exactly
  // this kind of saturation probe)...
  for ( int i = 0; i < 5000 && daemon.inflight() == 0u; ++i )
  {
    std::this_thread::sleep_for( std::chrono::milliseconds( 1 ) );
  }
  ASSERT_EQ( daemon.inflight(), 1u );

  // ...and observe a different query bounce instead of queuing behind it.
  const auto busy = daemon.handle_request(
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"esop","esop_p":1})" );
  EXPECT_TRUE( contains( busy, "\"ok\":false" ) ) << busy;
  EXPECT_TRUE( contains( busy, "\"code\":\"busy\"" ) ) << busy;
  owner.join();
  EXPECT_GE( daemon.stats().rejected, 1u );

  // With the slot free again the same query is admitted and served.
  const auto after = daemon.handle_request(
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"esop","esop_p":1})" );
  EXPECT_TRUE( contains( after, "\"ok\":true" ) ) << after;
}

// --- socket transport --------------------------------------------------------

TEST( daemon, serves_line_delimited_json_over_unix_socket )
{
  temp_dir dir;
  store::daemon_options options;
  options.socket_path = dir.path + "/d.sock";
  synthesis_daemon daemon( options );
  daemon.start();

  EXPECT_EQ( roundtrip( options.socket_path, R"({"cmd":"ping"})" ),
             R"({"ok":true,"pong":true})" );

  const auto response = roundtrip(
      options.socket_path,
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"hierarchical"})" );
  EXPECT_TRUE( contains( response, "\"ok\":true" ) ) << response;
  EXPECT_TRUE( contains( response, "\"qubits\"" ) );

  // Parallel clients.
  std::vector<std::thread> clients;
  std::vector<std::string> responses( 4 );
  for ( unsigned c = 0; c < 4; ++c )
  {
    clients.emplace_back( [&options, &responses, c] {
      responses[c] = roundtrip( options.socket_path, R"({"cmd":"ping"})" );
    } );
  }
  for ( auto& c : clients )
  {
    c.join();
  }
  for ( const auto& r : responses )
  {
    EXPECT_EQ( r, R"({"ok":true,"pong":true})" );
  }

  EXPECT_TRUE(
      contains( roundtrip( options.socket_path, R"({"cmd":"shutdown"})" ), "stopping" ) );
  EXPECT_TRUE( daemon.shutdown_requested() );
  daemon.stop();
  EXPECT_FALSE( std::filesystem::exists( options.socket_path ) );
}

TEST( daemon, oversized_request_line_is_answered_and_dropped )
{
  temp_dir dir;
  store::daemon_options options;
  options.socket_path = dir.path + "/d.sock";
  options.max_line_bytes = 64u * 1024u;
  synthesis_daemon daemon( options );
  daemon.start();

  const int fd = ::socket( AF_UNIX, SOCK_STREAM, 0 );
  ASSERT_GE( fd, 0 );
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy( addr.sun_path, options.socket_path.c_str(), sizeof( addr.sun_path ) - 1 );
  ASSERT_EQ( ::connect( fd, reinterpret_cast<const sockaddr*>( &addr ), sizeof( addr ) ), 0 );

  // Stream well past the cap without ever sending a newline.  The daemon
  // must answer with line_too_long and close instead of buffering forever;
  // once it does, our sends start failing (EPIPE) — that is expected.
  const std::string blob( 4096, 'x' );
  for ( int i = 0; i < 32; ++i )
  {
    if ( ::send( fd, blob.data(), blob.size(), MSG_NOSIGNAL ) <= 0 )
    {
      break;
    }
  }
  std::string response;
  char chunk[4096];
  while ( response.find( '\n' ) == std::string::npos )
  {
    const auto n = ::recv( fd, chunk, sizeof chunk, 0 );
    if ( n <= 0 )
    {
      break;
    }
    response.append( chunk, static_cast<std::size_t>( n ) );
  }
  ::close( fd );
  EXPECT_TRUE( contains( response, "\"code\":\"line_too_long\"" ) ) << response;

  // The daemon survived and still serves new connections.
  EXPECT_EQ( roundtrip( options.socket_path, R"({"cmd":"ping"})" ),
             R"({"ok":true,"pong":true})" );
  EXPECT_GE( daemon.stats().errors, 1u );
  daemon.stop();
}

TEST( daemon, connection_cap_rejects_with_busy )
{
  temp_dir dir;
  store::daemon_options options;
  options.socket_path = dir.path + "/d.sock";
  options.max_connections = 1;
  synthesis_daemon daemon( options );
  daemon.start();

  // Fill the single slot and prove the connection is established by
  // completing a round trip on it.
  const int held = ::socket( AF_UNIX, SOCK_STREAM, 0 );
  ASSERT_GE( held, 0 );
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy( addr.sun_path, options.socket_path.c_str(), sizeof( addr.sun_path ) - 1 );
  ASSERT_EQ( ::connect( held, reinterpret_cast<const sockaddr*>( &addr ), sizeof( addr ) ), 0 );
  const std::string ping = "{\"cmd\":\"ping\"}\n";
  ASSERT_EQ( ::send( held, ping.data(), ping.size(), MSG_NOSIGNAL ),
             static_cast<ssize_t>( ping.size() ) );
  char chunk[4096];
  ASSERT_GT( ::recv( held, chunk, sizeof chunk, 0 ), 0 );

  // The next connection is told "busy" and closed, not silently queued.
  const auto rejected = roundtrip( options.socket_path, R"({"cmd":"ping"})" );
  EXPECT_TRUE( contains( rejected, "\"code\":\"busy\"" ) ) << rejected;

  // Releasing the held connection frees the slot (after reaping).
  ::close( held );
  std::string ok;
  for ( int attempt = 0; attempt < 100 && !contains( ok, "pong" ); ++attempt )
  {
    std::this_thread::sleep_for( std::chrono::milliseconds( 5 ) );
    ok = roundtrip( options.socket_path, R"({"cmd":"ping"})" );
  }
  EXPECT_TRUE( contains( ok, "pong" ) ) << ok;
  EXPECT_GE( daemon.stats().rejected, 1u );
  daemon.stop();
}
