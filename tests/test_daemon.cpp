/// Synthesis daemon: protocol parsing, request handling, result caching
/// (memory + store), and the socket transport.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "store/daemon.hpp"

using namespace qsyn;
using store::parse_flat_json;
using store::synthesis_daemon;

namespace
{

struct temp_dir
{
  std::string path;
  temp_dir()
  {
    char pattern[] = "/tmp/qsyn-daemon-test-XXXXXX";
    path = ::mkdtemp( pattern );
  }
  ~temp_dir()
  {
    std::error_code ec;
    std::filesystem::remove_all( path, ec );
  }
};

bool contains( const std::string& haystack, const std::string& needle )
{
  return haystack.find( needle ) != std::string::npos;
}

/// One-shot client: connect, send `line`, read one response line.
std::string roundtrip( const std::string& socket_path, const std::string& line )
{
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy( addr.sun_path, socket_path.c_str(), sizeof( addr.sun_path ) - 1 );
  const int fd = ::socket( AF_UNIX, SOCK_STREAM, 0 );
  EXPECT_GE( fd, 0 );
  EXPECT_EQ( ::connect( fd, reinterpret_cast<const sockaddr*>( &addr ), sizeof( addr ) ), 0 );
  const auto request = line + "\n";
  EXPECT_EQ( ::send( fd, request.data(), request.size(), 0 ),
             static_cast<ssize_t>( request.size() ) );
  std::string response;
  char chunk[4096];
  while ( response.find( '\n' ) == std::string::npos )
  {
    const auto n = ::recv( fd, chunk, sizeof chunk, 0 );
    if ( n <= 0 )
    {
      break;
    }
    response.append( chunk, static_cast<std::size_t>( n ) );
  }
  ::close( fd );
  const auto eol = response.find( '\n' );
  return eol == std::string::npos ? response : response.substr( 0, eol );
}

} // namespace

// --- flat JSON ---------------------------------------------------------------

TEST( daemon_json, parses_flat_objects )
{
  const auto fields = parse_flat_json(
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":6,"deadline":1.5,"fast":true})" );
  EXPECT_EQ( fields.at( "cmd" ), "synthesize" );
  EXPECT_EQ( fields.at( "design" ), "intdiv" );
  EXPECT_EQ( fields.at( "bitwidth" ), "6" );
  EXPECT_EQ( fields.at( "deadline" ), "1.5" );
  EXPECT_EQ( fields.at( "fast" ), "true" );
  EXPECT_TRUE( parse_flat_json( "{}" ).empty() );
  EXPECT_TRUE( parse_flat_json( "  { }  " ).empty() );
}

TEST( daemon_json, decodes_string_escapes )
{
  const auto fields =
      parse_flat_json( R"({"a":"line\nbreak","b":"quote\"slash\\","c":"Aé"})" );
  EXPECT_EQ( fields.at( "a" ), "line\nbreak" );
  EXPECT_EQ( fields.at( "b" ), "quote\"slash\\" );
  EXPECT_EQ( fields.at( "c" ), "A\xc3\xa9" );
}

TEST( daemon_json, rejects_malformed_input )
{
  for ( const auto* bad : { "", "null", "[1,2]", "{", R"({"a")", R"({"a":})", R"({"a":1)",
                            R"({"a":{"nested":1}})", R"({"a":"unterminated)",
                            R"({"a":1 "b":2})" } )
  {
    EXPECT_THROW( parse_flat_json( bad ), std::runtime_error ) << bad;
  }
}

// --- request handling (no socket) --------------------------------------------

TEST( daemon, ping_stats_and_errors )
{
  synthesis_daemon daemon( {} );
  EXPECT_EQ( daemon.handle_request( R"({"cmd":"ping"})" ), R"({"ok":true,"pong":true})" );

  // Malformed requests answer with an error instead of killing anything.
  EXPECT_TRUE( contains( daemon.handle_request( "garbage" ), "\"ok\":false" ) );
  EXPECT_TRUE( contains( daemon.handle_request( R"({"cmd":"no-such"})" ), "\"ok\":false" ) );
  EXPECT_TRUE( contains( daemon.handle_request( R"({"design":"intdiv"})" ), "missing 'cmd'" ) );
  EXPECT_TRUE( contains(
      daemon.handle_request( R"({"cmd":"synthesize","design":"intdiv"})" ), "bitwidth" ) );
  EXPECT_TRUE( contains(
      daemon.handle_request(
          R"({"cmd":"synthesize","design":"pentium","bitwidth":4})" ),
      "unknown design" ) );

  const auto stats = daemon.handle_request( R"({"cmd":"stats"})" );
  EXPECT_TRUE( contains( stats, "\"ok\":true" ) );
  EXPECT_TRUE( contains( stats, "\"errors\":5" ) );
}

TEST( daemon, repeat_query_is_served_from_the_result_cache )
{
  synthesis_daemon daemon( {} );
  const auto request =
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"esop","esop_p":1,"verify":"sampled"})";
  const auto first = daemon.handle_request( request );
  ASSERT_TRUE( contains( first, "\"ok\":true" ) ) << first;
  EXPECT_TRUE( contains( first, "\"from_cache\":false" ) );
  EXPECT_TRUE( contains( first, "\"verified\":true" ) );

  const auto second = daemon.handle_request( request );
  ASSERT_TRUE( contains( second, "\"ok\":true" ) );
  EXPECT_TRUE( contains( second, "\"from_cache\":true" ) );

  // The cached response carries the same result payload.
  const auto strip_timing = []( const std::string& s ) {
    return s.substr( 0, s.find( ",\"runtime_seconds\"" ) );
  };
  EXPECT_EQ( strip_timing( first ).replace( strip_timing( first ).find( "\"from_cache\":false" ),
                                            std::strlen( "\"from_cache\":false" ),
                                            "\"from_cache\":true" ),
             strip_timing( second ) );

  // A different parameterization is its own cache entry.
  const auto other = daemon.handle_request(
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"hierarchical","cleanup":"bennett"})" );
  EXPECT_TRUE( contains( other, "\"from_cache\":false" ) );

  const auto stats = daemon.stats();
  EXPECT_EQ( stats.synthesized, 2u );
  EXPECT_EQ( stats.result_hits, 1u );
}

TEST( daemon, store_backed_daemon_answers_repeat_query_across_instances )
{
  temp_dir dir;
  const auto root = dir.path + "/store";
  const auto request =
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"esop","esop_p":2,"verify":"sat"})";

  std::string first;
  {
    synthesis_daemon daemon( { "", root } );
    first = daemon.handle_request( request );
    ASSERT_TRUE( contains( first, "\"from_cache\":false" ) ) << first;
    EXPECT_TRUE( contains( first, "\"verified\":true" ) );
    EXPECT_TRUE( contains( first, "\"verified_with\":\"sat\"" ) );
  }

  // A brand-new daemon on the same store — the "restarted" server —
  // serves the query from disk without synthesizing or re-verifying.
  synthesis_daemon reborn( { "", root } );
  const auto second = reborn.handle_request( request );
  ASSERT_TRUE( contains( second, "\"ok\":true" ) ) << second;
  EXPECT_TRUE( contains( second, "\"from_cache\":true" ) );
  EXPECT_TRUE( contains( second, "\"verified\":true" ) );
  EXPECT_TRUE( contains( second, "\"verified_with\":\"sat\"" ) );
  EXPECT_EQ( reborn.stats().synthesized, 0u );
  EXPECT_EQ( reborn.stats().result_hits, 1u );

  // Same costs, verbatim.
  const auto payload_of = []( const std::string& s ) {
    const auto from = s.find( "\"qubits\"" );
    const auto to = s.find( ",\"runtime_seconds\"" );
    return s.substr( from, to - from );
  };
  EXPECT_EQ( payload_of( first ), payload_of( second ) );
}

TEST( daemon, concurrent_queries_are_safe )
{
  synthesis_daemon daemon( {} );
  constexpr unsigned num_threads = 6;
  std::vector<std::string> responses( num_threads );
  std::vector<std::thread> threads;
  for ( unsigned t = 0; t < num_threads; ++t )
  {
    threads.emplace_back( [&daemon, &responses, t] {
      // Half hit the same key, half sweep distinct parameterizations.
      const auto p = std::to_string( t % 2u );
      responses[t] = daemon.handle_request(
          R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"esop","esop_p":)" + p +
          "}" );
    } );
  }
  for ( auto& t : threads )
  {
    t.join();
  }
  for ( const auto& r : responses )
  {
    EXPECT_TRUE( contains( r, "\"ok\":true" ) ) << r;
    EXPECT_TRUE( contains( r, "\"status\":\"ok\"" ) ) << r;
  }
}

// --- socket transport --------------------------------------------------------

TEST( daemon, serves_line_delimited_json_over_unix_socket )
{
  temp_dir dir;
  store::daemon_options options;
  options.socket_path = dir.path + "/d.sock";
  synthesis_daemon daemon( options );
  daemon.start();

  EXPECT_EQ( roundtrip( options.socket_path, R"({"cmd":"ping"})" ),
             R"({"ok":true,"pong":true})" );

  const auto response = roundtrip(
      options.socket_path,
      R"({"cmd":"synthesize","design":"intdiv","bitwidth":4,"flow":"hierarchical"})" );
  EXPECT_TRUE( contains( response, "\"ok\":true" ) ) << response;
  EXPECT_TRUE( contains( response, "\"qubits\"" ) );

  // Parallel clients.
  std::vector<std::thread> clients;
  std::vector<std::string> responses( 4 );
  for ( unsigned c = 0; c < 4; ++c )
  {
    clients.emplace_back( [&options, &responses, c] {
      responses[c] = roundtrip( options.socket_path, R"({"cmd":"ping"})" );
    } );
  }
  for ( auto& c : clients )
  {
    c.join();
  }
  for ( const auto& r : responses )
  {
    EXPECT_EQ( r, R"({"ok":true,"pong":true})" );
  }

  EXPECT_TRUE(
      contains( roundtrip( options.socket_path, R"({"cmd":"shutdown"})" ), "stopping" ) );
  EXPECT_TRUE( daemon.shutdown_requested() );
  daemon.stop();
  EXPECT_FALSE( std::filesystem::exists( options.socket_path ) );
}
