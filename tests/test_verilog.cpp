#include <gtest/gtest.h>

#include <random>

#include "verilog/elaborator.hpp"
#include "verilog/generators.hpp"
#include "verilog/lexer.hpp"
#include "verilog/parser.hpp"

using namespace qsyn;
using namespace qsyn::verilog;

/// Evaluates an elaborated module on word-level inputs.
static std::uint64_t eval_module( const elaborated_module& mod,
                                  const std::vector<std::uint64_t>& inputs )
{
  std::vector<bool> bits;
  for ( std::size_t p = 0; p < mod.input_ports.size(); ++p )
  {
    for ( unsigned b = 0; b < mod.input_ports[p].second; ++b )
    {
      bits.push_back( ( inputs[p] >> b ) & 1u );
    }
  }
  const auto out = mod.aig.evaluate( bits );
  std::uint64_t value = 0;
  for ( std::size_t b = 0; b < out.size() && b < 64u; ++b )
  {
    if ( out[b] )
    {
      value |= std::uint64_t{ 1 } << b;
    }
  }
  return value;
}

TEST( verilog_lexer, tokens_and_comments )
{
  const auto tokens = tokenize( "module m; // comment\n /* block\ncomment */ wire a; endmodule" );
  ASSERT_GE( tokens.size(), 6u );
  EXPECT_EQ( tokens[0].kind, token_kind::keyword_module );
  EXPECT_EQ( tokens[1].kind, token_kind::identifier );
  EXPECT_EQ( tokens[1].text, "m" );
  EXPECT_EQ( tokens[3].kind, token_kind::keyword_wire );
  EXPECT_EQ( tokens.back().kind, token_kind::end_of_file );
}

TEST( verilog_lexer, sized_binary_literal )
{
  const auto tokens = tokenize( "9'b1_0000_0000" );
  ASSERT_EQ( tokens[0].kind, token_kind::number );
  EXPECT_TRUE( tokens[0].sized );
  ASSERT_EQ( tokens[0].bits.size(), 9u );
  EXPECT_TRUE( tokens[0].bits[8] );
  for ( unsigned i = 0; i < 8; ++i )
  {
    EXPECT_FALSE( tokens[0].bits[i] );
  }
}

TEST( verilog_lexer, hex_and_decimal_literals )
{
  const auto hex = tokenize( "8'hff" );
  EXPECT_EQ( hex[0].bits.size(), 8u );
  for ( unsigned i = 0; i < 8; ++i )
  {
    EXPECT_TRUE( hex[0].bits[i] );
  }
  const auto dec = tokenize( "13" );
  std::uint64_t value = 0;
  for ( std::size_t i = 0; i < dec[0].bits.size(); ++i )
  {
    value |= static_cast<std::uint64_t>( dec[0].bits[i] ) << i;
  }
  EXPECT_EQ( value, 13u );
}

TEST( verilog_lexer, error_reports_line )
{
  try
  {
    tokenize( "module m;\n$bad" );
    FAIL() << "expected exception";
  }
  catch ( const std::runtime_error& e )
  {
    EXPECT_NE( std::string( e.what() ).find( "line 2" ), std::string::npos );
  }
}

TEST( verilog_parser, ansi_ports_and_assign )
{
  const auto mod = parse_module( R"(
    module add8(input [7:0] a, input [7:0] b, output [8:0] s);
      assign s = a + b;
    endmodule
  )" );
  EXPECT_EQ( mod.name, "add8" );
  EXPECT_EQ( mod.ports, ( std::vector<std::string>{ "a", "b", "s" } ) );
  EXPECT_EQ( mod.declarations.size(), 3u );
  EXPECT_EQ( mod.assigns.size(), 1u );
}

TEST( verilog_parser, non_ansi_ports )
{
  const auto mod = parse_module( R"(
    module m(x, y);
      input [3:0] x;
      output [3:0] y;
      assign y = ~x;
    endmodule
  )" );
  EXPECT_EQ( mod.ports.size(), 2u );
  EXPECT_EQ( mod.declarations.size(), 2u );
}

TEST( verilog_parser, operator_precedence_shape )
{
  const auto mod = parse_module( R"(
    module m(input [3:0] a, input [3:0] b, output [3:0] y);
      assign y = a + b * a;
    endmodule
  )" );
  const auto& rhs = *mod.assigns[0].rhs;
  ASSERT_EQ( rhs.kind, expression::node_kind::binary );
  EXPECT_EQ( rhs.bin_op, binary_op::add );
  EXPECT_EQ( rhs.operands[1]->bin_op, binary_op::mul );
}

TEST( verilog_parser, syntax_error_throws )
{
  EXPECT_THROW( parse_module( "module m(; endmodule" ), std::runtime_error );
  EXPECT_THROW( parse_module( "module m(a); assign = 1; endmodule" ), std::runtime_error );
}

/// Parameterized operator checks against host arithmetic.
struct op_case
{
  const char* expr;
  std::uint64_t ( *reference )( std::uint64_t, std::uint64_t, unsigned );
};

class verilog_ops : public ::testing::TestWithParam<std::tuple<op_case, unsigned>>
{
};

TEST_P( verilog_ops, matches_host_arithmetic )
{
  const auto [op, width] = GetParam();
  const auto mask = width >= 64 ? ~std::uint64_t{ 0 } : ( ( std::uint64_t{ 1 } << width ) - 1u );
  std::string source = "module m(input [" + std::to_string( width - 1 ) + ":0] a, input [" +
                       std::to_string( width - 1 ) + ":0] b, output [" +
                       std::to_string( width - 1 ) + ":0] y);\n  assign y = " + op.expr +
                       ";\nendmodule\n";
  const auto mod = elaborate_verilog( source );
  std::mt19937_64 rng( width * 977u );
  for ( int trial = 0; trial < 40; ++trial )
  {
    std::uint64_t a = rng() & mask;
    std::uint64_t b = rng() & mask;
    if ( trial == 0 )
    {
      a = 0;
      b = 0;
    }
    if ( trial == 1 )
    {
      a = mask;
      b = mask;
    }
    if ( op.expr == std::string( "a / b" ) || op.expr == std::string( "a % b" ) )
    {
      b = std::max<std::uint64_t>( b, 1u );
    }
    const auto expected = op.reference( a, b, width ) & mask;
    EXPECT_EQ( eval_module( mod, { a, b } ), expected )
        << op.expr << " w=" << width << " a=" << a << " b=" << b;
  }
}

static op_case cases[] = {
    { "a + b", []( std::uint64_t a, std::uint64_t b, unsigned ) { return a + b; } },
    { "a - b", []( std::uint64_t a, std::uint64_t b, unsigned ) { return a - b; } },
    { "a * b", []( std::uint64_t a, std::uint64_t b, unsigned ) { return a * b; } },
    { "a / b", []( std::uint64_t a, std::uint64_t b, unsigned ) { return a / b; } },
    { "a % b", []( std::uint64_t a, std::uint64_t b, unsigned ) { return a % b; } },
    { "a & b", []( std::uint64_t a, std::uint64_t b, unsigned ) { return a & b; } },
    { "a | b", []( std::uint64_t a, std::uint64_t b, unsigned ) { return a | b; } },
    { "a ^ b", []( std::uint64_t a, std::uint64_t b, unsigned ) { return a ^ b; } },
    { "a < b", []( std::uint64_t a, std::uint64_t b, unsigned ) -> std::uint64_t { return a < b; } },
    { "a <= b", []( std::uint64_t a, std::uint64_t b, unsigned ) -> std::uint64_t { return a <= b; } },
    { "a > b", []( std::uint64_t a, std::uint64_t b, unsigned ) -> std::uint64_t { return a > b; } },
    { "a >= b", []( std::uint64_t a, std::uint64_t b, unsigned ) -> std::uint64_t { return a >= b; } },
    { "a == b", []( std::uint64_t a, std::uint64_t b, unsigned ) -> std::uint64_t { return a == b; } },
    { "a != b", []( std::uint64_t a, std::uint64_t b, unsigned ) -> std::uint64_t { return a != b; } },
    { "~a", []( std::uint64_t a, std::uint64_t, unsigned ) { return ~a; } },
    { "-a", []( std::uint64_t a, std::uint64_t, unsigned ) { return ~a + 1u; } },
    { "!a", []( std::uint64_t a, std::uint64_t, unsigned ) -> std::uint64_t { return a == 0u; } },
    { "a ? a : b", []( std::uint64_t a, std::uint64_t b, unsigned ) { return a != 0 ? a : b; } },
    { "a << (b & 7)",
      []( std::uint64_t a, std::uint64_t b, unsigned ) { return a << ( b & 7u ); } },
    { "a >> (b & 7)",
      []( std::uint64_t a, std::uint64_t b, unsigned ) { return a >> ( b & 7u ); } },
};

INSTANTIATE_TEST_SUITE_P( ops, verilog_ops,
                          ::testing::Combine( ::testing::ValuesIn( cases ),
                                              ::testing::Values( 4u, 8u, 11u ) ) );

TEST( verilog_elaborator, concat_and_replicate )
{
  const auto mod = elaborate_verilog( R"(
    module m(input [3:0] a, output [7:0] y, output [5:0] z);
      assign y = {a, 4'b0011};
      assign z = {3{a[1:0]}};
    endmodule
  )" );
  // y = a:0011, z = a[1:0] repeated.
  std::vector<bool> in = { true, false, true, false }; // a = 0101
  const auto out = mod.aig.evaluate( in );
  std::uint64_t y = 0, z = 0;
  for ( unsigned b = 0; b < 8; ++b )
  {
    y |= static_cast<std::uint64_t>( out[b] ) << b;
  }
  for ( unsigned b = 0; b < 6; ++b )
  {
    z |= static_cast<std::uint64_t>( out[8 + b] ) << b;
  }
  EXPECT_EQ( y, ( 5u << 4 ) | 0b0011u );
  EXPECT_EQ( z, 0b010101u );
}

TEST( verilog_elaborator, reductions_and_logic_ops )
{
  const auto mod = elaborate_verilog( R"(
    module m(input [3:0] a, input [3:0] b, output [3:0] y);
      assign y = {&a, |a, ^a, a && b};
    endmodule
  )" );
  const auto check = [&]( std::uint64_t a, std::uint64_t b ) {
    const auto v = eval_module( mod, { a, b } );
    const std::uint64_t expected = ( ( a == 15u ) << 3 ) | ( ( a != 0u ) << 2 ) |
                                   ( ( popcount64( a ) % 2 ) << 1 ) |
                                   ( ( a != 0u && b != 0u ) << 0 );
    EXPECT_EQ( v, expected ) << a << " " << b;
  };
  check( 0, 0 );
  check( 15, 3 );
  check( 7, 0 );
  check( 8, 1 );
}

TEST( verilog_elaborator, out_of_order_assigns )
{
  const auto mod = elaborate_verilog( R"(
    module m(input [3:0] a, output [3:0] y);
      assign y = t + 4'd1;
      wire [3:0] t;
      assign t = a ^ 4'd3;
    endmodule
  )" );
  EXPECT_EQ( eval_module( mod, { 5u } ), ( ( 5u ^ 3u ) + 1u ) & 15u );
}

TEST( verilog_elaborator, part_select_assignment )
{
  const auto mod = elaborate_verilog( R"(
    module m(input [3:0] a, output [7:0] y);
      assign y[3:0] = a;
      assign y[7:4] = ~a;
    endmodule
  )" );
  EXPECT_EQ( eval_module( mod, { 0b1010u } ), 0b01011010u );
}

TEST( verilog_elaborator, undriven_output_throws )
{
  EXPECT_THROW( elaborate_verilog( R"(
    module m(input [1:0] a, output [1:0] y);
      assign y[0] = a[0];
    endmodule
  )" ),
                std::runtime_error );
}

TEST( verilog_elaborator, combinational_cycle_throws )
{
  EXPECT_THROW( elaborate_verilog( R"(
    module m(input a, output y);
      wire t;
      assign t = y;
      assign y = t & a;
    endmodule
  )" ),
                std::runtime_error );
}

TEST( verilog_elaborator, multiple_drivers_throw )
{
  EXPECT_THROW( elaborate_verilog( R"(
    module m(input a, output y);
      assign y = a;
      assign y = ~a;
    endmodule
  )" ),
                std::runtime_error );
}

TEST( verilog_elaborator, context_width_extends_before_multiply )
{
  // 4-bit operands assigned to 8-bit wire: full product must survive.
  const auto mod = elaborate_verilog( R"(
    module m(input [3:0] a, input [3:0] b, output [7:0] y);
      assign y = a * b;
    endmodule
  )" );
  EXPECT_EQ( eval_module( mod, { 15u, 15u } ), 225u );
}

/// --- the paper's generators ---------------------------------------------

class intdiv_design : public ::testing::TestWithParam<unsigned>
{
};

TEST_P( intdiv_design, matches_reference_exhaustively )
{
  const auto n = GetParam();
  const auto mod = elaborate_verilog( generate_intdiv( n ) );
  for ( std::uint64_t x = 1; x < ( std::uint64_t{ 1 } << n ); ++x )
  {
    EXPECT_EQ( eval_module( mod, { x } ), reciprocal_reference( n, x ) ) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P( widths, intdiv_design, ::testing::Values( 2u, 3u, 4u, 5u, 6u, 8u ) );

TEST( intdiv_design, paper_example_n8_x22 )
{
  // Example 1 of the paper: n = 8, x = 22 -> y = 2^-5 + 2^-7 + 2^-8.
  const auto mod = elaborate_verilog( generate_intdiv( 8 ) );
  EXPECT_EQ( eval_module( mod, { 22u } ), 0b00001011u );
}

class newton_design : public ::testing::TestWithParam<unsigned>
{
};

TEST_P( newton_design, approximates_reciprocal )
{
  const auto n = GetParam();
  const auto mod = elaborate_verilog( generate_newton( n ) );
  for ( std::uint64_t x = 2; x < ( std::uint64_t{ 1 } << n ); ++x )
  {
    const auto y = eval_module( mod, { x } );
    const auto expected = reciprocal_reference( n, x );
    const auto err = y > expected ? y - expected : expected - y;
    EXPECT_LE( err, 2u ) << "x=" << x << " y=" << y << " expected=" << expected;
  }
}

INSTANTIATE_TEST_SUITE_P( widths, newton_design, ::testing::Values( 4u, 5u, 6u, 8u ) );

TEST( newton_design, iteration_schedule )
{
  EXPECT_EQ( newton_iterations( 4 ), 1u );
  EXPECT_EQ( newton_iterations( 8 ), 2u );
  EXPECT_EQ( newton_iterations( 16 ), 3u );
  EXPECT_EQ( newton_iterations( 32 ), 4u );
  EXPECT_EQ( newton_iterations( 64 ), 4u );
  EXPECT_EQ( newton_iterations( 128 ), 5u );
}

TEST( generators, q3_constant_values )
{
  // 48/17 = 2.8235...; Q3.8 truncation = floor(2.8235 * 256) = 722.
  const auto bits = q3_constant( 48, 17, 8 );
  std::uint64_t v = 0;
  for ( std::size_t i = 0; i < bits.size(); ++i )
  {
    v |= static_cast<std::uint64_t>( bits[i] ) << i;
  }
  EXPECT_EQ( v, 722u );
  // 32/17 = 1.88...; Q3.4 = floor(1.882 * 16) = 30.
  const auto bits2 = q3_constant( 32, 17, 4 );
  std::uint64_t v2 = 0;
  for ( std::size_t i = 0; i < bits2.size(); ++i )
  {
    v2 |= static_cast<std::uint64_t>( bits2[i] ) << i;
  }
  EXPECT_EQ( v2, 30u );
}

TEST( generators, binary_literal_format )
{
  EXPECT_EQ( binary_literal( 5, { true, false, true } ), "5'b00101" );
}
