/// Word-level (64-way bit-parallel) verification engine vs. the scalar
/// `evaluate_circuit` oracle, plus the exhaustive / sampled / SAT tiers
/// built on top of it.

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <stdexcept>
#include <vector>

#include "common/bits.hpp"
#include "logic/aig.hpp"
#include "reversible/circuit.hpp"
#include "reversible/verify.hpp"

using namespace qsyn;

namespace
{

/// Deterministic random Toffoli/CNOT/NOT network over `num_lines` lines with
/// random primary-input / constant-ancilla roles and random output placement.
reversible_circuit random_circuit( std::mt19937_64& rng, unsigned num_lines, unsigned num_gates,
                                   unsigned num_inputs )
{
  reversible_circuit circuit( num_lines );
  // Roles: the first num_inputs lines carry inputs (shuffling the carrier
  // lines would not change coverage — input i is "the i-th input line in
  // line order" either way), the rest are constant ancillae with random
  // initial values.
  for ( unsigned l = 0; l < num_lines; ++l )
  {
    auto& info = circuit.line( l );
    if ( l < num_inputs )
    {
      info.is_primary_input = true;
    }
    else
    {
      info.is_constant_input = true;
      info.constant_value = rng() & 1u;
    }
  }
  // Outputs: a random nonempty subset of lines, indexed in line order.
  int next_output = 0;
  for ( unsigned l = 0; l < num_lines; ++l )
  {
    if ( ( rng() & 3u ) == 0u || ( l + 1u == num_lines && next_output == 0 ) )
    {
      circuit.line( l ).output_index = next_output++;
      circuit.line( l ).is_garbage = false;
    }
  }
  for ( unsigned g = 0; g < num_gates; ++g )
  {
    const auto target = static_cast<std::uint32_t>( rng() % num_lines );
    std::vector<control> controls;
    for ( std::uint32_t l = 0; l < num_lines; ++l )
    {
      if ( l != target && ( rng() & 3u ) == 0u )
      {
        controls.push_back( { l, static_cast<bool>( rng() & 1u ) } );
      }
    }
    circuit.add_mct( controls, target );
  }
  return circuit;
}

std::vector<bool> random_assignment( std::mt19937_64& rng, unsigned num_inputs )
{
  std::vector<bool> assignment( num_inputs );
  for ( unsigned i = 0; i < num_inputs; ++i )
  {
    assignment[i] = rng() & 1u;
  }
  return assignment;
}

/// Packs `assignments[j]` into bit j of one word per input variable.
std::vector<std::uint64_t> pack( const std::vector<std::vector<bool>>& assignments,
                                 unsigned num_inputs )
{
  std::vector<std::uint64_t> words( num_inputs, 0u );
  for ( std::size_t j = 0; j < assignments.size(); ++j )
  {
    for ( unsigned i = 0; i < num_inputs; ++i )
    {
      if ( assignments[j][i] )
      {
        words[i] |= std::uint64_t{ 1 } << j;
      }
    }
  }
  return words;
}

std::vector<bool> counter_assignment( std::uint64_t x, unsigned num_inputs )
{
  std::vector<bool> assignment( num_inputs );
  for ( unsigned i = 0; i < num_inputs; ++i )
  {
    assignment[i] = ( x >> i ) & 1u;
  }
  return assignment;
}

} // namespace

// --- block evaluator vs. scalar oracle ---------------------------------------

TEST( verify_block, matches_scalar_on_random_circuits )
{
  std::mt19937_64 rng( 11 );
  for ( int instance = 0; instance < 40; ++instance )
  {
    const unsigned num_lines = 2u + rng() % 9u;
    const unsigned num_inputs = 1u + rng() % num_lines;
    const auto circuit = random_circuit( rng, num_lines, 1u + rng() % 40u, num_inputs );

    std::vector<std::vector<bool>> batch;
    for ( unsigned j = 0; j < 64u; ++j )
    {
      batch.push_back( random_assignment( rng, num_inputs ) );
    }
    const auto words = evaluate_circuit_block( circuit, pack( batch, num_inputs ) );
    for ( unsigned j = 0; j < 64u; ++j )
    {
      const auto expected = evaluate_circuit( circuit, batch[j] );
      ASSERT_EQ( words.size(), expected.size() );
      for ( std::size_t o = 0; o < expected.size(); ++o )
      {
        EXPECT_EQ( ( words[o] >> j ) & 1u, static_cast<std::uint64_t>( expected[o] ) )
            << "instance " << instance << " lane " << j << " output " << o;
      }
    }
  }
}

TEST( verify_block, matches_scalar_exhaustively_up_to_ten_inputs )
{
  std::mt19937_64 rng( 23 );
  for ( const unsigned num_inputs : { 1u, 2u, 5u, 6u, 7u, 10u } )
  {
    const unsigned num_lines = num_inputs + 1u + rng() % 3u;
    const auto circuit = random_circuit( rng, num_lines, 25u, num_inputs );
    block_simulator sim( circuit );
    const std::uint64_t space = std::uint64_t{ 1 } << num_inputs;
    for ( std::uint64_t base = 0; base < space; base += 64u )
    {
      const auto lanes = std::min<std::uint64_t>( 64u, space - base );
      std::vector<std::vector<bool>> batch;
      for ( std::uint64_t j = 0; j < lanes; ++j )
      {
        batch.push_back( counter_assignment( base + j, num_inputs ) );
      }
      const auto words = sim.evaluate( pack( batch, num_inputs ) );
      for ( std::uint64_t j = 0; j < lanes; ++j )
      {
        const auto expected = evaluate_circuit( circuit, batch[j] );
        for ( std::size_t o = 0; o < expected.size(); ++o )
        {
          EXPECT_EQ( ( words[o] >> j ) & 1u, static_cast<std::uint64_t>( expected[o] ) )
              << "n=" << num_inputs << " x=" << base + j << " output " << o;
        }
      }
    }
  }
}

TEST( verify_block, constant_ancilla_values_are_broadcast )
{
  // out = (1 AND x0) XOR x1 realized with a constant-1 ancilla as control.
  reversible_circuit circuit( 3 );
  circuit.line( 0 ).is_primary_input = true;
  circuit.line( 1 ).is_primary_input = true;
  circuit.line( 2 ).is_constant_input = true;
  circuit.line( 2 ).constant_value = true;
  circuit.line( 1 ).output_index = 0;
  circuit.line( 1 ).is_garbage = false;
  circuit.add_toffoli( 0, 2, 1 ); // fires iff x0 (ancilla is constant 1)
  const auto words =
      evaluate_circuit_block( circuit, { projections[0], projections[1] } );
  ASSERT_EQ( words.size(), 1u );
  EXPECT_EQ( words[0], projections[0] ^ projections[1] );
}

TEST( verify_block, input_arity_mismatch_throws )
{
  reversible_circuit circuit( 2 );
  circuit.line( 0 ).is_primary_input = true;
  circuit.line( 1 ).is_primary_input = true;
  EXPECT_THROW( evaluate_circuit_block( circuit, { 0u } ), std::invalid_argument );
}

// --- truth-table tier --------------------------------------------------------

TEST( verify_truth_tables, agrees_with_scalar_oracle_and_detects_single_bit_flips )
{
  std::mt19937_64 rng( 37 );
  for ( const unsigned num_inputs : { 3u, 6u, 8u } )
  {
    const auto circuit = random_circuit( rng, num_inputs + 2u, 30u, num_inputs );
    const auto num_outputs = output_lines_of( circuit ).size();
    // Reference tables from the scalar oracle.
    std::vector<truth_table> outputs( num_outputs, truth_table( num_inputs ) );
    for ( std::uint64_t x = 0; x < ( std::uint64_t{ 1 } << num_inputs ); ++x )
    {
      const auto value = evaluate_circuit( circuit, counter_assignment( x, num_inputs ) );
      for ( std::size_t o = 0; o < num_outputs; ++o )
      {
        outputs[o].set_bit( x, value[o] );
      }
    }
    EXPECT_TRUE( verify_against_truth_tables( circuit, outputs ) ) << num_inputs;

    auto corrupted = outputs;
    const auto flip_output = rng() % num_outputs;
    const auto flip_index = rng() % ( std::uint64_t{ 1 } << num_inputs );
    corrupted[flip_output].set_bit( flip_index, !corrupted[flip_output].get_bit( flip_index ) );
    EXPECT_FALSE( verify_against_truth_tables( circuit, corrupted ) ) << num_inputs;
  }
}

TEST( verify_truth_tables, output_count_and_arity_mismatches_are_rejected )
{
  reversible_circuit circuit( 2 );
  circuit.line( 0 ).is_primary_input = true;
  circuit.line( 1 ).is_primary_input = true;
  circuit.line( 1 ).output_index = 0;
  circuit.line( 1 ).is_garbage = false;
  EXPECT_FALSE( verify_against_truth_tables( circuit, {} ) );
  EXPECT_FALSE(
      verify_against_truth_tables( circuit, { truth_table( 3 ) } ) ); // wrong variable count
}

// --- exhaustive tier ---------------------------------------------------------

TEST( verify_exhaustive, certifies_extraction_and_finds_first_counterexample )
{
  std::mt19937_64 rng( 51 );
  for ( const unsigned num_inputs : { 1u, 2u, 3u, 4u, 5u, 6u, 8u } )
  {
    const auto circuit = random_circuit( rng, num_inputs + 2u, 20u, num_inputs );
    const auto spec = circuit_to_aig( circuit );
    // Ragged tails included: for num_inputs < 6 the whole space is one
    // partial word.
    EXPECT_EQ( verify_against_aig_exhaustive( circuit, spec ), std::nullopt ) << num_inputs;

    // Complement one PO: the verifier must return the first failing
    // assignment in counter order (the scalar enumeration's contract).
    auto corrupted = spec;
    corrupted.set_po( 0, lit_not( corrupted.po( 0 ) ) );
    const auto cex = verify_against_aig_exhaustive( circuit, corrupted );
    ASSERT_TRUE( cex.has_value() ) << num_inputs;
    EXPECT_NE( evaluate_circuit( circuit, *cex ), corrupted.evaluate( *cex ) );
    std::uint64_t first_failing = 0;
    for ( std::uint64_t x = 0;; ++x )
    {
      const auto assignment = counter_assignment( x, num_inputs );
      if ( evaluate_circuit( circuit, assignment ) != corrupted.evaluate( assignment ) )
      {
        first_failing = x;
        break;
      }
    }
    EXPECT_EQ( *cex, counter_assignment( first_failing, num_inputs ) ) << num_inputs;
  }
}

TEST( verify_exhaustive, output_arity_mismatch_throws )
{
  // One circuit output vs. two AIG POs: both simulation tiers must reject
  // the interface instead of comparing past the shorter result vector.
  reversible_circuit circuit( 2 );
  circuit.line( 0 ).is_primary_input = true;
  circuit.line( 1 ).is_primary_input = true;
  circuit.line( 1 ).output_index = 0;
  circuit.line( 1 ).is_garbage = false;
  aig_network aig( 2 );
  aig.add_po( aig.pi( 1 ) );
  aig.add_po( aig.pi( 0 ) );
  EXPECT_THROW( verify_against_aig_exhaustive( circuit, aig ), std::invalid_argument );
  EXPECT_THROW( verify_against_aig_sampled( circuit, aig, 2, 1 ), std::invalid_argument );
  EXPECT_THROW( verify_against_aig_sat( circuit, aig ), std::invalid_argument );
}

TEST( verify_exhaustive, too_many_inputs_throws )
{
  reversible_circuit circuit( 25 );
  for ( unsigned l = 0; l < 25u; ++l )
  {
    circuit.line( l ).is_primary_input = true;
  }
  circuit.line( 0 ).output_index = 0;
  aig_network aig( 25 );
  aig.add_po( aig.pi( 0 ) );
  EXPECT_THROW( verify_against_aig_exhaustive( circuit, aig ), std::invalid_argument );
}

// --- sampled tier ------------------------------------------------------------

TEST( verify_sampled, small_spaces_are_enumerated_exhaustively )
{
  // f = x0 AND x1, circuit computes OR: wrong exactly on the two one-hot
  // patterns.  Sampling could miss them; the exhaustive branch cannot, and
  // must return the first failing assignment x = 1, i.e. (1, 0).  This is
  // the regression contract for the counterexample format of the scalar
  // enumeration the block engine replaced.
  aig_network aig( 2 );
  aig.add_po( aig.create_and( aig.pi( 0 ), aig.pi( 1 ) ) );

  reversible_circuit circuit( 3 );
  circuit.line( 0 ).is_primary_input = true;
  circuit.line( 1 ).is_primary_input = true;
  circuit.line( 2 ).is_constant_input = true;
  circuit.line( 2 ).output_index = 0;
  circuit.line( 2 ).is_garbage = false;
  circuit.add_gate( toffoli_gate{ { { 0, false }, { 1, false } }, 2 } );
  circuit.add_not( 2 );

  const auto cex = verify_against_aig_sampled( circuit, aig, 256, 1 );
  ASSERT_TRUE( cex.has_value() );
  EXPECT_EQ( *cex, ( std::vector<bool>{ true, false } ) );
}

TEST( verify_sampled, ragged_budget_below_one_word_still_covers_extremes )
{
  // 7 inputs with a 5-sample budget: 2^7 > 5, so the random branch runs one
  // ragged 7-lane batch.  A circuit wrong only on the all-one pattern must
  // still be caught (lane 1 pins all-one).
  const unsigned n = 7;
  aig_network aig( n );
  std::vector<aig_lit> pis;
  for ( unsigned i = 0; i < n; ++i )
  {
    pis.push_back( aig.pi( i ) );
  }
  aig.add_po( aig.create_nary_and( pis ) );

  reversible_circuit circuit( n + 1u );
  for ( unsigned l = 0; l < n; ++l )
  {
    circuit.line( l ).is_primary_input = true;
  }
  circuit.line( n ).is_constant_input = true;
  circuit.line( n ).output_index = 0;
  circuit.line( n ).is_garbage = false;
  // Constant-0 output: differs from the spec only on the all-one input.
  const auto cex = verify_against_aig_sampled( circuit, aig, 5, 99 );
  ASSERT_TRUE( cex.has_value() );
  EXPECT_EQ( *cex, std::vector<bool>( n, true ) );
  EXPECT_NE( evaluate_circuit( circuit, *cex ), aig.evaluate( *cex ) );
}

TEST( verify_sampled, accepts_correct_extraction_on_wide_inputs )
{
  std::mt19937_64 rng( 77 );
  const unsigned num_inputs = 12; // 2^12 > 256: genuine random sampling
  const auto circuit = random_circuit( rng, num_inputs + 3u, 30u, num_inputs );
  EXPECT_EQ( verify_against_aig_sampled( circuit, circuit_to_aig( circuit ), 256, 7 ),
             std::nullopt );
}

// --- circuit -> AIG extraction and the SAT tier ------------------------------

TEST( verify_sat, extraction_matches_scalar_oracle )
{
  std::mt19937_64 rng( 91 );
  for ( int instance = 0; instance < 20; ++instance )
  {
    const unsigned num_inputs = 1u + rng() % 6u;
    const auto circuit = random_circuit( rng, num_inputs + 1u + rng() % 3u, 15u, num_inputs );
    const auto aig = circuit_to_aig( circuit );
    for ( std::uint64_t x = 0; x < ( std::uint64_t{ 1 } << num_inputs ); ++x )
    {
      const auto assignment = counter_assignment( x, num_inputs );
      EXPECT_EQ( aig.evaluate( assignment ), evaluate_circuit( circuit, assignment ) )
          << "instance " << instance << " x=" << x;
    }
  }
}

TEST( verify_sat, proves_correct_circuits_and_refutes_corrupted_ones )
{
  std::mt19937_64 rng( 123 );
  for ( int instance = 0; instance < 10; ++instance )
  {
    const unsigned num_inputs = 2u + rng() % 5u;
    const auto circuit = random_circuit( rng, num_inputs + 2u, 20u, num_inputs );
    const auto spec = circuit_to_aig( circuit );
    EXPECT_EQ( verify_against_aig_sat( circuit, spec ), std::nullopt ) << instance;

    auto corrupted = spec;
    corrupted.set_po( 0, lit_not( corrupted.po( 0 ) ) );
    const auto cex = verify_against_aig_sat( circuit, corrupted );
    ASSERT_TRUE( cex.has_value() ) << instance;
    // Counterexample round-trip: it must actually distinguish the circuit
    // from the (corrupted) specification.
    EXPECT_NE( evaluate_circuit( circuit, *cex ), corrupted.evaluate( *cex ) ) << instance;
  }
}

TEST( verify_sat, interface_mismatch_throws )
{
  reversible_circuit circuit( 2 );
  circuit.line( 0 ).is_primary_input = true;
  circuit.line( 1 ).is_primary_input = true;
  circuit.line( 1 ).output_index = 0;
  circuit.line( 1 ).is_garbage = false;
  aig_network aig( 3 );
  aig.add_po( aig.pi( 0 ) );
  EXPECT_THROW( verify_against_aig_sat( circuit, aig ), std::invalid_argument );
}

// --- SIMD-wide engine vs. the 64-bit scalar oracle ---------------------------
//
// The differential harness of the wide simulation engine: every wide path
// (all three lane widths, whichever SIMD backend the build dispatches to)
// is pinned against the retained 64-bit scalar engine — bit-identical
// verdicts, counterexamples, and coverage accounting, ragged tails and
// constant ancillae included.

namespace
{

constexpr sim_width all_widths[] = { sim_width::w64, sim_width::w256, sim_width::w512 };

/// Full report equality: verdict, counterexample, and the per-assignment
/// coverage accounting must match the oracle exactly.
void expect_report_equal( const partial_verify_report& got, const partial_verify_report& want,
                          const std::string& context )
{
  EXPECT_EQ( got.counterexample, want.counterexample ) << context;
  EXPECT_EQ( got.assignments_requested, want.assignments_requested ) << context;
  EXPECT_EQ( got.assignments_completed, want.assignments_completed ) << context;
  EXPECT_EQ( got.complete, want.complete ) << context;
}

/// Corrupts a circuit behind its extracted specification: an extra NOT on
/// the lowest output line flips that output for every assignment.
reversible_circuit corrupt_first_output( const reversible_circuit& circuit )
{
  auto corrupted = circuit;
  corrupted.add_not( output_lines_of( circuit ).front() );
  return corrupted;
}

} // namespace

TEST( verify_wide, wide_simulator_matches_block_simulator_at_every_width )
{
  std::mt19937_64 rng( 211 );
  for ( int instance = 0; instance < 12; ++instance )
  {
    const unsigned num_lines = 3u + rng() % 8u;
    const unsigned num_inputs = 1u + rng() % num_lines;
    const auto circuit = random_circuit( rng, num_lines, 1u + rng() % 35u, num_inputs );
    block_simulator oracle( circuit );

    for ( const auto width : all_widths )
    {
      const auto W = words_of( width );
      wide_simulator sim( circuit, width );
      ASSERT_EQ( sim.width(), width );

      // One lane group of random assignments, laid out input-major.
      std::vector<std::vector<std::uint64_t>> blocks( W );
      std::vector<std::uint64_t> wide_words( std::size_t{ num_inputs } * W );
      for ( unsigned k = 0; k < W; ++k )
      {
        blocks[k].resize( num_inputs );
        for ( unsigned i = 0; i < num_inputs; ++i )
        {
          blocks[k][i] = rng();
          wide_words[std::size_t{ i } * W + k] = blocks[k][i];
        }
      }
      const auto& wide = sim.evaluate( wide_words );
      const auto num_outputs = sim.output_lines().size();
      for ( unsigned k = 0; k < W; ++k )
      {
        const auto expected = oracle.evaluate( blocks[k] );
        ASSERT_EQ( wide.size(), expected.size() * W );
        for ( std::size_t o = 0; o < num_outputs; ++o )
        {
          EXPECT_EQ( wide[o * W + k], expected[o] )
              << "instance " << instance << " width " << lanes_of( width ) << " word " << k
              << " output " << o;
        }
      }
    }
  }
}

TEST( verify_wide, exhaustive_reports_match_oracle_at_every_width )
{
  std::mt19937_64 rng( 223 );
  // Ragged tails on purpose: 2^3 is a fraction of one word, 2^7 fills two
  // of a w512 group's eight words, 2^9 is exactly one w512 group.  The
  // random circuits carry constant ancillae and garbage lines.
  for ( const unsigned num_inputs : { 3u, 5u, 7u, 9u } )
  {
    const auto circuit = random_circuit( rng, num_inputs + 3u, 30u, num_inputs );
    const auto spec = circuit_to_aig( circuit );
    const auto corrupted = corrupt_first_output( circuit );

    const auto pass_oracle = verify_against_aig_exhaustive_block64( circuit, spec, deadline{} );
    EXPECT_FALSE( pass_oracle.counterexample.has_value() ) << num_inputs;
    EXPECT_EQ( pass_oracle.assignments_completed, std::uint64_t{ 1 } << num_inputs );
    const auto fail_oracle = verify_against_aig_exhaustive_block64( corrupted, spec, deadline{} );
    ASSERT_TRUE( fail_oracle.counterexample.has_value() ) << num_inputs;

    for ( const auto width : all_widths )
    {
      const auto context =
          "n=" + std::to_string( num_inputs ) + " width=" + std::to_string( lanes_of( width ) );
      expect_report_equal( verify_against_aig_exhaustive_budgeted( circuit, spec, deadline{}, width ),
                           pass_oracle, "pass " + context );
      expect_report_equal(
          verify_against_aig_exhaustive_budgeted( corrupted, spec, deadline{}, width ),
          fail_oracle, "fail " + context );
    }
  }
}

TEST( verify_wide, first_counterexample_is_lowest_column_at_every_width )
{
  // Spec = AND of all 7 inputs, circuit = constant 0: the only difference
  // is the all-one assignment — the LAST column of the space.  Every width
  // must report exactly it (not an earlier lane of the same wide group)
  // and count all 128 assignments as covered.
  const unsigned n = 7;
  aig_network aig( n );
  std::vector<aig_lit> pis;
  for ( unsigned i = 0; i < n; ++i )
  {
    pis.push_back( aig.pi( i ) );
  }
  aig.add_po( aig.create_nary_and( pis ) );

  reversible_circuit circuit( n + 1u );
  for ( unsigned l = 0; l < n; ++l )
  {
    circuit.line( l ).is_primary_input = true;
  }
  circuit.line( n ).is_constant_input = true;
  circuit.line( n ).output_index = 0;
  circuit.line( n ).is_garbage = false;

  for ( const auto width : all_widths )
  {
    const auto report = verify_against_aig_exhaustive_budgeted( circuit, aig, deadline{}, width );
    ASSERT_TRUE( report.counterexample.has_value() ) << lanes_of( width );
    EXPECT_EQ( *report.counterexample, std::vector<bool>( n, true ) ) << lanes_of( width );
    EXPECT_EQ( report.assignments_completed, 128u ) << lanes_of( width );
    EXPECT_TRUE( report.complete ) << lanes_of( width );
  }

  // And the dual: a circuit wrong everywhere fails on column 0 with exactly
  // one assignment counted, at every width.
  auto everywhere = circuit;
  everywhere.add_not( n ); // constant 1 vs AND: differs on all but all-one
  for ( const auto width : all_widths )
  {
    const auto report =
        verify_against_aig_exhaustive_budgeted( everywhere, aig, deadline{}, width );
    ASSERT_TRUE( report.counterexample.has_value() ) << lanes_of( width );
    EXPECT_EQ( *report.counterexample, std::vector<bool>( n, false ) ) << lanes_of( width );
    EXPECT_EQ( report.assignments_completed, 1u ) << lanes_of( width );
  }
}

TEST( verify_wide, sampled_reports_match_oracle_at_every_width )
{
  std::mt19937_64 rng( 239 );
  const unsigned num_inputs = 13; // 2^13 > every budget below: genuine sampling
  const auto circuit = random_circuit( rng, num_inputs + 3u, 35u, num_inputs );
  const auto spec = circuit_to_aig( circuit );
  const auto corrupted = corrupt_first_output( circuit );

  for ( const unsigned num_samples : { 5u, 70u, 250u, 512u } )
  {
    for ( const std::uint64_t seed : { 1u, 42u } )
    {
      const auto pass_oracle =
          verify_against_aig_sampled_block64( circuit, spec, deadline{}, num_samples, seed );
      const auto fail_oracle =
          verify_against_aig_sampled_block64( corrupted, spec, deadline{}, num_samples, seed );
      ASSERT_TRUE( fail_oracle.counterexample.has_value() ) << num_samples;
      for ( const auto width : all_widths )
      {
        const auto context = "samples=" + std::to_string( num_samples ) +
                             " seed=" + std::to_string( seed ) +
                             " width=" + std::to_string( lanes_of( width ) );
        expect_report_equal( verify_against_aig_sampled_budgeted( circuit, spec, deadline{},
                                                                  num_samples, seed, width ),
                             pass_oracle, "pass " + context );
        expect_report_equal( verify_against_aig_sampled_budgeted( corrupted, spec, deadline{},
                                                                  num_samples, seed, width ),
                             fail_oracle, "fail " + context );
      }
    }
  }
}

TEST( verify_wide, sampled_accounting_is_exact_for_non_lane_aligned_requests )
{
  // Regression: a batched sampler must count per assignment, never round up
  // to lane-group granularity.  num_samples + 2 (the two pinned extremes)
  // lands off every lane boundary here — 7, 72, and 252 patterns — and the
  // completed count must equal the request exactly at every width,
  // including the widths whose group (256 or 512 lanes) exceeds the whole
  // request.
  std::mt19937_64 rng( 241 );
  const unsigned num_inputs = 12;
  const auto circuit = random_circuit( rng, num_inputs + 2u, 25u, num_inputs );
  const auto spec = circuit_to_aig( circuit );
  for ( const unsigned num_samples : { 5u, 70u, 250u } )
  {
    const std::uint64_t total = std::uint64_t{ num_samples } + 2u;
    for ( const auto width : all_widths )
    {
      const auto report = verify_against_aig_sampled_budgeted( circuit, spec, deadline{},
                                                               num_samples, 17u, width );
      const auto context = "samples=" + std::to_string( num_samples ) +
                           " width=" + std::to_string( lanes_of( width ) );
      EXPECT_FALSE( report.counterexample.has_value() ) << context;
      EXPECT_TRUE( report.complete ) << context;
      EXPECT_EQ( report.assignments_requested, total ) << context;
      EXPECT_EQ( report.assignments_completed, total ) << context;
    }
  }
}

TEST( verify_wide, batch_reports_are_identical_to_individual_calls )
{
  std::mt19937_64 rng( 251 );
  const unsigned num_inputs = 8;
  const auto circuit = random_circuit( rng, num_inputs + 2u, 30u, num_inputs );
  const auto spec = circuit_to_aig( circuit );
  const auto bad_first = corrupt_first_output( circuit );
  auto bad_later = circuit;
  // Controlled corruption: fires only when inputs 0..2 are all one, so this
  // candidate survives several wide passes before failing.
  bad_later.add_mct( { { 0, true }, { 1, true }, { 2, true } },
                     output_lines_of( circuit ).front() );

  const std::vector<const reversible_circuit*> frontier = { &circuit, &bad_first, &circuit,
                                                            &bad_later };
  for ( const auto width : all_widths )
  {
    const auto batch =
        verify_batch_against_aig_exhaustive_budgeted( frontier, spec, deadline{}, width );
    ASSERT_EQ( batch.size(), frontier.size() );
    for ( std::size_t c = 0; c < frontier.size(); ++c )
    {
      const auto individual =
          verify_against_aig_exhaustive_budgeted( *frontier[c], spec, deadline{}, width );
      expect_report_equal( batch[c], individual,
                           "exhaustive candidate " + std::to_string( c ) + " width " +
                               std::to_string( lanes_of( width ) ) );
    }
    EXPECT_FALSE( batch[0].counterexample.has_value() );
    EXPECT_TRUE( batch[1].counterexample.has_value() );
    EXPECT_TRUE( batch[3].counterexample.has_value() );

    const auto sampled_batch =
        verify_batch_against_aig_sampled_budgeted( frontier, spec, deadline{}, 100u, 7u, width );
    ASSERT_EQ( sampled_batch.size(), frontier.size() );
    for ( std::size_t c = 0; c < frontier.size(); ++c )
    {
      const auto individual = verify_against_aig_sampled_budgeted( *frontier[c], spec, deadline{},
                                                                   100u, 7u, width );
      expect_report_equal( sampled_batch[c], individual,
                           "sampled candidate " + std::to_string( c ) + " width " +
                               std::to_string( lanes_of( width ) ) );
    }
  }
}

TEST( verify_wide, active_backend_is_reported_and_consistent )
{
  // Smoke contract of the dispatcher: w64 always runs portably; wider
  // groups report whichever backend the build + CPU support, and the name
  // round-trips.  (The verdict identity across backends is enforced by the
  // cross-build gate in run_bench.sh — within one binary the differential
  // tests above already ran the dispatched kernels.)
  EXPECT_EQ( active_simd_backend( sim_width::w64 ), simd_backend::portable );
  for ( const auto width : all_widths )
  {
    const auto backend = active_simd_backend( width );
    EXPECT_TRUE( simd_backend_compiled( backend ) );
    EXPECT_NE( std::string( simd_backend_name( backend ) ), "" );
  }
}
