#include <gtest/gtest.h>

#include "reversible/circuit.hpp"
#include "reversible/cost.hpp"
#include "reversible/verify.hpp"

using namespace qsyn;

TEST( circuit, not_cnot_toffoli_semantics )
{
  reversible_circuit c( 3 );
  c.add_not( 0 );
  c.add_cnot( 0, 1 );
  c.add_toffoli( 0, 1, 2 );
  std::vector<bool> state = { false, false, false };
  c.apply( state );
  EXPECT_EQ( state, ( std::vector<bool>{ true, true, true } ) );
}

TEST( circuit, negative_controls )
{
  reversible_circuit c( 2 );
  c.add_mct( { { 0, false } }, 1 ); // fires when line 0 is 0
  std::vector<bool> s0 = { false, false };
  c.apply( s0 );
  EXPECT_TRUE( s0[1] );
  std::vector<bool> s1 = { true, false };
  c.apply( s1 );
  EXPECT_FALSE( s1[1] );
}

TEST( circuit, swap_exchanges_lines )
{
  reversible_circuit c( 2 );
  c.add_swap( 0, 1 );
  std::vector<bool> state = { true, false };
  c.apply( state );
  EXPECT_EQ( state, ( std::vector<bool>{ false, true } ) );
}

TEST( circuit, fredkin_is_controlled_swap )
{
  reversible_circuit c( 3 );
  c.add_fredkin( 0, 1, 2 );
  for ( const bool ctrl : { false, true } )
  {
    std::vector<bool> state = { ctrl, true, false };
    c.apply( state );
    if ( ctrl )
    {
      EXPECT_EQ( state, ( std::vector<bool>{ true, false, true } ) );
    }
    else
    {
      EXPECT_EQ( state, ( std::vector<bool>{ false, true, false } ) );
    }
  }
}

TEST( circuit, permutation_of_cnot )
{
  reversible_circuit c( 2 );
  c.add_cnot( 0, 1 );
  const auto perm = c.permutation();
  EXPECT_EQ( perm, ( std::vector<std::uint64_t>{ 0, 3, 2, 1 } ) );
}

TEST( circuit, self_inverse_roundtrip )
{
  reversible_circuit c( 4 );
  c.add_toffoli( 0, 1, 2 );
  c.add_cnot( 2, 3 );
  c.add_mct( { { 0, true }, { 3, false } }, 1 );
  reversible_circuit forward_backward( 4 );
  forward_backward.append( c );
  forward_backward.append_reversed( c );
  const auto perm = forward_backward.permutation();
  for ( std::uint64_t i = 0; i < perm.size(); ++i )
  {
    EXPECT_EQ( perm[i], i );
  }
}

TEST( circuit, append_reversed_window )
{
  reversible_circuit c( 3 );
  c.add_not( 0 );        // gate 0 (outside window)
  c.add_toffoli( 0, 1, 2 );
  c.add_cnot( 0, 1 );
  c.append_reversed_window( 1, 3 );
  // Gates 1..2 then reversed: net effect only the NOT.
  std::vector<bool> state = { false, true, false };
  c.apply( state );
  EXPECT_EQ( state, ( std::vector<bool>{ true, true, false } ) );
}

TEST( circuit, gate_validation )
{
  reversible_circuit c( 3 );
  c.add_cnot( 0, 1 );
  EXPECT_EQ( c.num_gates(), 1u );
  EXPECT_EQ( c.num_toffoli_gates(), 0u );
  c.add_toffoli( 0, 1, 2 ); // fine: target distinct from both controls
  EXPECT_EQ( c.num_gates(), 2u );
  EXPECT_EQ( c.num_toffoli_gates(), 1u );
}

TEST( cost_model, small_gate_costs )
{
  EXPECT_EQ( toffoli_t_count( 0, 5 ), 0u );
  EXPECT_EQ( toffoli_t_count( 1, 5 ), 0u );
  EXPECT_EQ( toffoli_t_count( 2, 0 ), 7u );
  EXPECT_EQ( toffoli_t_count( 2, 10 ), 7u );
}

TEST( cost_model, linear_regime_with_ancillas )
{
  // 8k - 9 with enough dirty ancillae.
  EXPECT_EQ( toffoli_t_count( 3, 1 ), 15u );
  EXPECT_EQ( toffoli_t_count( 5, 3 ), 31u );
  EXPECT_EQ( toffoli_t_count( 10, 8 ), 71u );
}

TEST( cost_model, halving_regime_with_one_ancilla )
{
  const auto k = 10u;
  const auto cost = toffoli_t_count( k, 1 );
  // More than linear, far less than quadratic.
  EXPECT_GT( cost, toffoli_t_count( k, 8 ) );
  EXPECT_LT( cost, toffoli_t_count( k, 0 ) );
}

TEST( cost_model, quadratic_regime_without_ancilla )
{
  EXPECT_EQ( toffoli_t_count( 3, 0 ), 16u * 2u * 1u + 7u );
  EXPECT_EQ( toffoli_t_count( 6, 0 ), 16u * 5u * 4u + 7u );
  // Monotone in k.
  for ( unsigned k = 3; k < 20; ++k )
  {
    EXPECT_GT( toffoli_t_count( k + 1, 0 ), toffoli_t_count( k, 0 ) );
  }
}

TEST( cost_model, circuit_t_count_accounts_free_lines )
{
  // Same gate, different circuit widths: wider circuit = more ancillae =
  // cheaper multi-controlled gates.
  reversible_circuit narrow( 5 );
  narrow.add_mct( { { 0, true }, { 1, true }, { 2, true }, { 3, true } }, 4 );
  reversible_circuit wide( 10 );
  wide.add_mct( { { 0, true }, { 1, true }, { 2, true }, { 3, true } }, 4 );
  EXPECT_GT( circuit_t_count( narrow ), circuit_t_count( wide ) );
}

TEST( cost_model, depth_sequential_vs_parallel )
{
  reversible_circuit sequential( 2 );
  sequential.add_not( 0 );
  sequential.add_cnot( 0, 1 );
  EXPECT_EQ( circuit_depth( sequential ), 2u );
  reversible_circuit parallel( 4 );
  parallel.add_not( 0 );
  parallel.add_not( 2 );
  parallel.add_cnot( 0, 1 );
  parallel.add_cnot( 2, 3 );
  EXPECT_EQ( circuit_depth( parallel ), 2u );
}

TEST( verify_helpers, evaluate_circuit_uses_metadata )
{
  // 2-input AND onto a constant ancilla that is the output.
  reversible_circuit c( 3 );
  c.line( 0 ).is_primary_input = true;
  c.line( 1 ).is_primary_input = true;
  c.line( 2 ).is_constant_input = true;
  c.line( 2 ).output_index = 0;
  c.add_toffoli( 0, 1, 2 );
  EXPECT_EQ( evaluate_circuit( c, { true, true } ), std::vector<bool>{ true } );
  EXPECT_EQ( evaluate_circuit( c, { true, false } ), std::vector<bool>{ false } );
}

TEST( verify_helpers, constant_one_ancilla )
{
  reversible_circuit c( 2 );
  c.line( 0 ).is_primary_input = true;
  c.line( 1 ).is_constant_input = true;
  c.line( 1 ).constant_value = true;
  c.line( 1 ).output_index = 0;
  c.add_cnot( 0, 1 ); // y = !x
  EXPECT_EQ( evaluate_circuit( c, { true } ), std::vector<bool>{ false } );
  EXPECT_EQ( evaluate_circuit( c, { false } ), std::vector<bool>{ true } );
}

TEST( verify_helpers, verify_against_truth_tables )
{
  reversible_circuit c( 3 );
  c.line( 0 ).is_primary_input = true;
  c.line( 1 ).is_primary_input = true;
  c.line( 2 ).is_constant_input = true;
  c.line( 2 ).output_index = 0;
  c.add_toffoli( 0, 1, 2 );
  const auto and_tt = truth_table::projection( 2, 0 ) & truth_table::projection( 2, 1 );
  EXPECT_TRUE( verify_against_truth_tables( c, { and_tt } ) );
  const auto or_tt = truth_table::projection( 2, 0 ) | truth_table::projection( 2, 1 );
  EXPECT_FALSE( verify_against_truth_tables( c, { or_tt } ) );
}

TEST( verify_helpers, sampled_aig_check_finds_mismatch )
{
  aig_network aig( 2 );
  aig.add_po( aig.create_or( aig.pi( 0 ), aig.pi( 1 ) ) );
  reversible_circuit c( 3 );
  c.line( 0 ).is_primary_input = true;
  c.line( 1 ).is_primary_input = true;
  c.line( 2 ).is_constant_input = true;
  c.line( 2 ).output_index = 0;
  c.add_toffoli( 0, 1, 2 ); // AND, not OR
  const auto cex = verify_against_aig_sampled( c, aig, 32 );
  ASSERT_TRUE( cex.has_value() );
  EXPECT_NE( aig.evaluate( *cex ), std::vector<bool>{ false } );
}

TEST( report, cost_report_fields )
{
  reversible_circuit c( 4 );
  c.add_toffoli( 0, 1, 2 );
  c.add_cnot( 2, 3 );
  const auto rep = report_costs( c );
  EXPECT_EQ( rep.qubits, 4u );
  EXPECT_EQ( rep.gates, 2u );
  EXPECT_EQ( rep.toffoli_gates, 1u );
  EXPECT_EQ( rep.t_count, 7u );
  EXPECT_EQ( rep.depth, 2u );
}
