#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "sat/cnf.hpp"
#include "sat/solver.hpp"

using namespace qsyn;
using namespace qsyn::sat;

TEST( sat, trivially_satisfiable )
{
  solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  s.add_clause( { pos_lit( a ), pos_lit( b ) } );
  EXPECT_EQ( s.solve(), result::satisfiable );
  EXPECT_TRUE( s.model_value( a ) || s.model_value( b ) );
}

TEST( sat, empty_instance_is_sat )
{
  solver s;
  EXPECT_EQ( s.solve(), result::satisfiable );
}

TEST( sat, unit_propagation_chain )
{
  solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  const auto c = s.new_var();
  s.add_clause( { pos_lit( a ) } );
  s.add_clause( { neg_lit( a ), pos_lit( b ) } );
  s.add_clause( { neg_lit( b ), pos_lit( c ) } );
  EXPECT_EQ( s.solve(), result::satisfiable );
  EXPECT_TRUE( s.model_value( a ) );
  EXPECT_TRUE( s.model_value( b ) );
  EXPECT_TRUE( s.model_value( c ) );
}

TEST( sat, contradiction_unsat )
{
  solver s;
  const auto a = s.new_var();
  s.add_clause( { pos_lit( a ) } );
  EXPECT_FALSE( s.add_clause( { neg_lit( a ) } ) );
  EXPECT_EQ( s.solve(), result::unsatisfiable );
}

TEST( sat, xor_chain_unsat )
{
  // (a xor b)(b xor c)(c xor a) forced odd: encode xor via 2 clauses each
  // plus parity contradiction a xor a = 1.
  solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  const auto c = s.new_var();
  const auto add_xor_true = [&]( std::uint32_t x, std::uint32_t y ) {
    s.add_clause( { pos_lit( x ), pos_lit( y ) } );
    s.add_clause( { neg_lit( x ), neg_lit( y ) } );
  };
  add_xor_true( a, b );
  add_xor_true( b, c );
  add_xor_true( c, a );
  EXPECT_EQ( s.solve(), result::unsatisfiable );
}

TEST( sat, pigeonhole_3_into_2 )
{
  // Pigeons p in {0,1,2}, holes h in {0,1}; var(p,h).
  solver s;
  std::uint32_t v[3][2];
  for ( auto& row : v )
  {
    for ( auto& x : row )
    {
      x = s.new_var();
    }
  }
  for ( int p = 0; p < 3; ++p )
  {
    s.add_clause( { pos_lit( v[p][0] ), pos_lit( v[p][1] ) } );
  }
  for ( int h = 0; h < 2; ++h )
  {
    for ( int p1 = 0; p1 < 3; ++p1 )
    {
      for ( int p2 = p1 + 1; p2 < 3; ++p2 )
      {
        s.add_clause( { neg_lit( v[p1][h] ), neg_lit( v[p2][h] ) } );
      }
    }
  }
  EXPECT_EQ( s.solve(), result::unsatisfiable );
}

TEST( sat, assumptions_select_branch )
{
  solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  s.add_clause( { pos_lit( a ), pos_lit( b ) } );
  s.add_clause( { neg_lit( a ), neg_lit( b ) } );
  EXPECT_EQ( s.solve( { pos_lit( a ) } ), result::satisfiable );
  EXPECT_TRUE( s.model_value( a ) );
  EXPECT_FALSE( s.model_value( b ) );
  EXPECT_EQ( s.solve( { pos_lit( a ), pos_lit( b ) } ), result::unsatisfiable );
  // Solver remains usable after UNSAT under assumptions.
  EXPECT_EQ( s.solve( { neg_lit( a ) } ), result::satisfiable );
  EXPECT_TRUE( s.model_value( b ) );
}

TEST( sat, random_3cnf_vs_brute_force )
{
  std::mt19937_64 rng( 7 );
  for ( int instance = 0; instance < 30; ++instance )
  {
    const unsigned num_vars = 8;
    const unsigned num_clauses = 28;
    std::vector<std::vector<literal>> clauses;
    for ( unsigned c = 0; c < num_clauses; ++c )
    {
      std::vector<literal> clause;
      for ( int k = 0; k < 3; ++k )
      {
        const auto var = static_cast<std::uint32_t>( rng() % num_vars );
        clause.push_back( ( rng() & 1u ) ? pos_lit( var ) : neg_lit( var ) );
      }
      clauses.push_back( clause );
    }
    // Brute force.
    bool brute_sat = false;
    for ( std::uint32_t assign = 0; assign < ( 1u << num_vars ) && !brute_sat; ++assign )
    {
      bool all = true;
      for ( const auto& clause : clauses )
      {
        bool any = false;
        for ( const auto l : clause )
        {
          const bool val = ( assign >> lit_var( l ) ) & 1u;
          if ( val != lit_sign( l ) )
          {
            any = true;
            break;
          }
        }
        if ( !any )
        {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    solver s;
    for ( unsigned v = 0; v < num_vars; ++v )
    {
      s.new_var();
    }
    bool consistent = true;
    for ( const auto& clause : clauses )
    {
      consistent = s.add_clause( clause ) && consistent;
    }
    const auto res = s.solve();
    EXPECT_EQ( res == result::satisfiable, brute_sat ) << "instance " << instance;
    if ( res == result::satisfiable )
    {
      // Verify the model.
      for ( const auto& clause : clauses )
      {
        bool any = false;
        for ( const auto l : clause )
        {
          if ( s.model_value( lit_var( l ) ) != lit_sign( l ) )
          {
            any = true;
          }
        }
        EXPECT_TRUE( any );
      }
    }
  }
}

TEST( cec, equivalent_networks )
{
  aig_network a( 3 );
  a.add_po( a.create_maj( a.pi( 0 ), a.pi( 1 ), a.pi( 2 ) ) );
  aig_network b( 3 );
  // maj via mux: s ? (t | e) : (t & e) with s = pi0
  const auto t_or_e = b.create_or( b.pi( 1 ), b.pi( 2 ) );
  const auto t_and_e = b.create_and( b.pi( 1 ), b.pi( 2 ) );
  b.add_po( b.create_mux( b.pi( 0 ), t_or_e, t_and_e ) );
  const auto result = check_equivalence( a, b );
  EXPECT_TRUE( result.equivalent );
}

TEST( cec, inequivalent_with_counterexample )
{
  aig_network a( 2 );
  a.add_po( a.create_and( a.pi( 0 ), a.pi( 1 ) ) );
  aig_network b( 2 );
  b.add_po( b.create_or( b.pi( 0 ), b.pi( 1 ) ) );
  const auto result = check_equivalence( a, b );
  EXPECT_FALSE( result.equivalent );
  ASSERT_TRUE( result.counterexample.has_value() );
  // The counterexample must actually distinguish the networks.
  const auto va = a.evaluate( *result.counterexample );
  const auto vb = b.evaluate( *result.counterexample );
  EXPECT_NE( va, vb );
}

TEST( cec, multi_output_differs_in_one )
{
  aig_network a( 2 );
  a.add_po( a.create_xor( a.pi( 0 ), a.pi( 1 ) ) );
  a.add_po( a.create_and( a.pi( 0 ), a.pi( 1 ) ) );
  aig_network b( 2 );
  b.add_po( b.create_xor( b.pi( 0 ), b.pi( 1 ) ) );
  b.add_po( b.create_and( b.pi( 0 ), lit_not( b.pi( 1 ) ) ) );
  EXPECT_FALSE( check_equivalence( a, b ).equivalent );
}

TEST( cec, counterexample_round_trips_through_both_aigs )
{
  // Randomized guard against polarity/index bugs in encode_aig: build
  // random AIG pairs, brute-force their true equivalence over all inputs,
  // and when the solver reports a counterexample, feed it back through BOTH
  // networks and require the outputs to actually differ.
  std::mt19937_64 rng( 321 );
  for ( int instance = 0; instance < 40; ++instance )
  {
    const unsigned num_pis = 3u + rng() % 3u;
    const unsigned num_pos = 1u + rng() % 3u;
    const auto random_aig = [&]( std::uint64_t seed ) {
      std::mt19937_64 gen( seed );
      aig_network aig( num_pis );
      std::vector<aig_lit> pool;
      for ( unsigned i = 0; i < num_pis; ++i )
      {
        pool.push_back( aig.pi( i ) );
      }
      for ( int k = 0; k < 12; ++k )
      {
        const auto a = pool[gen() % pool.size()] ^ ( gen() & 1u );
        const auto b = pool[gen() % pool.size()] ^ ( gen() & 1u );
        pool.push_back( gen() & 1u ? aig.create_xor( a, b ) : aig.create_and( a, b ) );
      }
      for ( unsigned o = 0; o < num_pos; ++o )
      {
        aig.add_po( pool[gen() % pool.size()] ^ ( gen() & 1u ) );
      }
      return aig;
    };
    const auto a = random_aig( rng() );
    // Half the instances compare an AIG against an independently built one,
    // half against a PO-perturbed copy of itself (near-equivalent pairs are
    // the polarity-sensitive case).
    auto b = ( instance & 1 ) ? random_aig( rng() ) : a;
    if ( !( instance & 1 ) && ( rng() & 1u ) )
    {
      b.set_po( static_cast<unsigned>( rng() % num_pos ), b.po( 0 ) ^ 1u );
    }

    bool brute_equivalent = true;
    std::vector<bool> inputs( num_pis );
    for ( std::uint32_t x = 0; x < ( 1u << num_pis ) && brute_equivalent; ++x )
    {
      for ( unsigned i = 0; i < num_pis; ++i )
      {
        inputs[i] = ( x >> i ) & 1u;
      }
      brute_equivalent = a.evaluate( inputs ) == b.evaluate( inputs );
    }

    const auto result = check_equivalence( a, b );
    EXPECT_EQ( result.equivalent, brute_equivalent ) << "instance " << instance;
    if ( !result.equivalent )
    {
      ASSERT_TRUE( result.counterexample.has_value() ) << "instance " << instance;
      const auto va = a.evaluate( *result.counterexample );
      const auto vb = b.evaluate( *result.counterexample );
      EXPECT_NE( va, vb ) << "instance " << instance;
    }
  }
}

TEST( cec, complemented_po_of_identical_structure_is_caught )
{
  // The pure polarity bug: identical AND structure, one complemented PO.
  // The miter must find a counterexample and it must round-trip.
  aig_network a( 2 );
  a.add_po( a.create_and( a.pi( 0 ), a.pi( 1 ) ) );
  aig_network b( 2 );
  b.add_po( lit_not( b.create_and( b.pi( 0 ), b.pi( 1 ) ) ) );
  const auto result = check_equivalence( a, b );
  ASSERT_FALSE( result.equivalent );
  ASSERT_TRUE( result.counterexample.has_value() );
  EXPECT_NE( a.evaluate( *result.counterexample ), b.evaluate( *result.counterexample ) );
}

TEST( cec, constant_output_pair )
{
  // Constant-false vs constant-true POs exercise the encoded constant node.
  aig_network a( 1 );
  a.add_po( aig_network::const0 );
  aig_network b( 1 );
  b.add_po( aig_network::const1 );
  const auto result = check_equivalence( a, b );
  ASSERT_FALSE( result.equivalent );
  ASSERT_TRUE( result.counterexample.has_value() );
  EXPECT_NE( a.evaluate( *result.counterexample ), b.evaluate( *result.counterexample ) );

  aig_network c( 1 );
  c.add_po( aig_network::const0 );
  aig_network d( 1 );
  d.add_po( d.create_and( d.pi( 0 ), lit_not( d.pi( 0 ) ) ) );
  EXPECT_TRUE( check_equivalence( c, d ).equivalent );
}

TEST( cec, interface_mismatch_throws )
{
  aig_network a( 2 );
  a.add_po( a.pi( 0 ) );
  aig_network b( 3 );
  b.add_po( b.pi( 0 ) );
  EXPECT_THROW( check_equivalence( a, b ), std::invalid_argument );
}

// --- incremental engine ------------------------------------------------------

#include "sat/incremental.hpp"

namespace
{

/// Random multi-output AIG over `num_pis` inputs (XOR/AND mix, random
/// complementations) — the generator of the `cec` round-trip test, shared
/// by the incremental-engine suites.
aig_network random_test_aig( std::uint64_t seed, unsigned num_pis, unsigned num_pos,
                             int num_gates = 12 )
{
  std::mt19937_64 gen( seed );
  aig_network aig( num_pis );
  std::vector<aig_lit> pool;
  for ( unsigned i = 0; i < num_pis; ++i )
  {
    pool.push_back( aig.pi( i ) );
  }
  for ( int k = 0; k < num_gates; ++k )
  {
    const auto a = pool[gen() % pool.size()] ^ ( gen() & 1u );
    const auto b = pool[gen() % pool.size()] ^ ( gen() & 1u );
    pool.push_back( gen() & 1u ? aig.create_xor( a, b ) : aig.create_and( a, b ) );
  }
  for ( unsigned o = 0; o < num_pos; ++o )
  {
    aig.add_po( pool[gen() % pool.size()] ^ ( gen() & 1u ) );
  }
  return aig;
}

/// Brute-force reference: nullopt if equivalent, else the lowest-indexed
/// output on which the networks differ for some input.
std::optional<unsigned> lowest_differing_output( const aig_network& a, const aig_network& b )
{
  std::optional<unsigned> lowest;
  std::vector<bool> inputs( a.num_pis() );
  for ( std::uint32_t x = 0; x < ( 1u << a.num_pis() ); ++x )
  {
    for ( unsigned i = 0; i < a.num_pis(); ++i )
    {
      inputs[i] = ( x >> i ) & 1u;
    }
    const auto va = a.evaluate( inputs );
    const auto vb = b.evaluate( inputs );
    for ( unsigned o = 0; o < va.size(); ++o )
    {
      if ( va[o] != vb[o] && ( !lowest || o < *lowest ) )
      {
        lowest = o;
      }
    }
  }
  return lowest;
}

/// Checks one engine outcome against the brute-force reference: verdict,
/// lowest-failing-output index, and counterexample round-trip through both
/// networks at exactly that output.
void expect_matches_brute_force( const sat::cec_outcome& outcome, const aig_network& a,
                                 const aig_network& b, const char* context )
{
  const auto expected = lowest_differing_output( a, b );
  EXPECT_EQ( outcome.equivalent, !expected.has_value() ) << context;
  if ( expected )
  {
    ASSERT_TRUE( outcome.failing_output.has_value() ) << context;
    EXPECT_EQ( *outcome.failing_output, *expected ) << context;
    ASSERT_TRUE( outcome.counterexample.has_value() ) << context;
    const auto va = a.evaluate( *outcome.counterexample );
    const auto vb = b.evaluate( *outcome.counterexample );
    EXPECT_NE( va[*expected], vb[*expected] ) << context;
  }
}

} // namespace

TEST( incremental, matches_brute_force_simulation_path )
{
  // Narrow designs are decided by the engine's exhaustive bit-parallel
  // simulation pass; every verdict, failing-output index, and
  // counterexample must match brute force.
  std::mt19937_64 rng( 11 );
  for ( int instance = 0; instance < 60; ++instance )
  {
    const unsigned num_pis = 3u + rng() % 4u;
    const unsigned num_pos = 1u + rng() % 4u;
    const auto a = random_test_aig( rng(), num_pis, num_pos );
    auto b = ( instance % 3 == 0 ) ? random_test_aig( rng(), num_pis, num_pos ) : a;
    if ( instance % 3 == 1 )
    {
      b.set_po( static_cast<unsigned>( rng() % num_pos ), b.po( 0 ) ^ 1u );
    }
    sat::incremental_cec engine;
    const auto outcome = engine.check( a, b );
    expect_matches_brute_force( outcome, a, b, "sim path" );
  }
}

TEST( incremental, matches_brute_force_solver_path )
{
  // Forcing output_window_max_pis = 0 disables the simulation fast path,
  // so every output goes through per-output/batched miters on the
  // persistent solver — same contract, same expected results.
  std::mt19937_64 rng( 23 );
  for ( int instance = 0; instance < 60; ++instance )
  {
    const unsigned num_pis = 3u + rng() % 4u;
    const unsigned num_pos = 1u + rng() % 4u;
    const auto a = random_test_aig( rng(), num_pis, num_pos );
    auto b = ( instance % 3 == 0 ) ? random_test_aig( rng(), num_pis, num_pos ) : a;
    if ( instance % 3 == 1 )
    {
      b.set_po( static_cast<unsigned>( rng() % num_pos ), b.po( 0 ) ^ 1u );
    }
    sat::cec_options options;
    options.output_window_max_pis = 0;
    sat::incremental_cec engine( options );
    const auto outcome = engine.check( a, b );
    expect_matches_brute_force( outcome, a, b, "solver path" );
  }
}

TEST( incremental, engine_reuse_matches_fresh_engines )
{
  // One persistent engine across many successive checks (shared structure,
  // learned lemmas, merges) must give exactly the verdicts of a fresh
  // engine per call.
  std::mt19937_64 rng( 37 );
  for ( const unsigned max_pis : { 0u, 12u } ) // solver path and sim path
  {
    sat::cec_options options;
    options.output_window_max_pis = max_pis;
    sat::incremental_cec persistent( options );
    for ( int round = 0; round < 8; ++round )
    {
      const unsigned num_pis = 4u + rng() % 3u;
      const unsigned num_pos = 1u + rng() % 3u;
      const auto a = random_test_aig( rng(), num_pis, num_pos, 16 );
      auto b = ( round & 1 ) ? random_test_aig( rng(), num_pis, num_pos, 16 ) : a;
      if ( round % 4 == 2 )
      {
        b.set_po( 0, b.po( 0 ) ^ 1u );
      }
      const auto reused = persistent.check( a, b );
      sat::incremental_cec fresh( options );
      const auto baseline = fresh.check( a, b );
      EXPECT_EQ( reused.equivalent, baseline.equivalent ) << "round " << round;
      EXPECT_EQ( reused.failing_output, baseline.failing_output ) << "round " << round;
      expect_matches_brute_force( reused, a, b, "reused engine" );
    }
    EXPECT_GE( persistent.stats().checks, 8u );
  }
}

TEST( incremental, clause_deletion_on_off_agreement )
{
  // Learned-clause deletion is performance-only: with a tiny reduce base
  // (forcing frequent database reductions) the verdicts on randomized
  // miters must match the deletion-free engine exactly.
  std::mt19937_64 rng( 51 );
  sat::cec_options with_deletion;
  with_deletion.output_window_max_pis = 0; // force the solver path
  with_deletion.clause_deletion = true;
  with_deletion.reduce_base = 8; // reduce constantly on these small miters
  sat::cec_options without_deletion = with_deletion;
  without_deletion.clause_deletion = false;
  sat::incremental_cec engine_del( with_deletion );
  sat::incremental_cec engine_keep( without_deletion );
  for ( int instance = 0; instance < 40; ++instance )
  {
    const unsigned num_pis = 4u + rng() % 3u;
    const unsigned num_pos = 1u + rng() % 3u;
    const auto a = random_test_aig( rng(), num_pis, num_pos, 20 );
    auto b = ( instance & 1 ) ? random_test_aig( rng(), num_pis, num_pos, 20 ) : a;
    const auto del = engine_del.check( a, b );
    const auto keep = engine_keep.check( a, b );
    EXPECT_EQ( del.equivalent, keep.equivalent ) << "instance " << instance;
    EXPECT_EQ( del.failing_output, keep.failing_output ) << "instance " << instance;
    expect_matches_brute_force( del, a, b, "deletion on" );
    expect_matches_brute_force( keep, a, b, "deletion off" );
  }
}

TEST( incremental, option_variants_agree )
{
  // Fraiging on/off, SAT-backed fraig budgets, input-only decisions, and
  // the per-output-first strategy are performance knobs; all must agree
  // with brute force on randomized pairs.
  std::mt19937_64 rng( 77 );
  std::vector<sat::cec_options> variants;
  {
    sat::cec_options o;
    o.output_window_max_pis = 0;
    o.fraiging = false;
    variants.push_back( o );
  }
  {
    sat::cec_options o;
    o.output_window_max_pis = 0;
    o.fraig_conflict_budget = 50; // SAT-backed fraig + cex refinement
    o.num_sig_words = 1;          // provoke false candidates -> refinement
    variants.push_back( o );
  }
  {
    sat::cec_options o;
    o.output_window_max_pis = 0;
    o.decide_inputs_only = true;
    variants.push_back( o );
  }
  {
    sat::cec_options o;
    o.output_window_max_pis = 0;
    o.per_output_node_threshold = 0; // per-output miters first
    variants.push_back( o );
  }
  for ( std::size_t v = 0; v < variants.size(); ++v )
  {
    sat::incremental_cec engine( variants[v] );
    std::mt19937_64 instance_rng( 400 + v ); // same instances per variant
    for ( int instance = 0; instance < 20; ++instance )
    {
      const unsigned num_pis = 4u + instance_rng() % 3u;
      const unsigned num_pos = 1u + instance_rng() % 3u;
      const auto a = random_test_aig( instance_rng(), num_pis, num_pos, 18 );
      auto b = ( instance & 1 ) ? random_test_aig( instance_rng(), num_pis, num_pos, 18 ) : a;
      const auto outcome = engine.check( a, b );
      expect_matches_brute_force( outcome, a, b, "variant" );
    }
  }
}

TEST( incremental, interface_mismatch_throws )
{
  aig_network a( 2 );
  a.add_po( a.pi( 0 ) );
  aig_network b( 3 );
  b.add_po( b.pi( 0 ) );
  sat::incremental_cec engine;
  EXPECT_THROW( engine.check( a, b ), std::invalid_argument );
  aig_network c( 2 );
  c.add_po( c.pi( 0 ) );
  c.add_po( c.pi( 1 ) );
  EXPECT_THROW( engine.check( a, c ), std::invalid_argument );
}

TEST( incremental, mixed_interface_sizes_on_one_engine )
{
  // The engine may be reused across designs with different PI/PO counts;
  // PIs are extended on demand and earlier structure stays valid.
  sat::incremental_cec engine;
  const auto small_a = random_test_aig( 1, 3, 2 );
  const auto small_b = random_test_aig( 2, 3, 2 );
  const auto wide_a = random_test_aig( 3, 6, 3, 20 );
  const auto wide_b = random_test_aig( 4, 6, 3, 20 );
  expect_matches_brute_force( engine.check( small_a, small_b ), small_a, small_b, "small" );
  expect_matches_brute_force( engine.check( wide_a, wide_b ), wide_a, wide_b, "wide" );
  expect_matches_brute_force( engine.check( small_a, small_a ), small_a, small_a, "repeat" );
}

// --- signature quality and the widened simulation pass -----------------------
//
// Satellite of the SIMD-wide engine: fraig signature words are the same
// 64-bit pattern blocks the wide simulator batches, so their
// discrimination quality (false-candidate rate), the refinement loop, and
// the widened exhaustive pass are pinned here at several widths.

namespace
{

/// Runs the same deterministic >12-PI instance sequence through one
/// persistent engine configured with `num_sig_words` signature words and
/// returns the engine's cumulative statistics.  Verdicts are checked
/// against brute force on every instance, so any width that changed a
/// verdict fails loudly before the stats comparison.
sat::cec_stats run_fraig_sequence( unsigned num_sig_words )
{
  sat::cec_options options;
  options.num_sig_words = num_sig_words;
  options.fraig_conflict_budget = 50; // SAT-backed candidates + cex refinement
  sat::incremental_cec engine( options );
  std::mt19937_64 rng( 9001 ); // same instances at every width
  for ( int instance = 0; instance < 6; ++instance )
  {
    const unsigned num_pis = 13; // > 12: the sim fast path bails, fraig runs
    const unsigned num_pos = 2u + rng() % 2u;
    const auto a = random_test_aig( rng(), num_pis, num_pos, 40 );
    auto b = ( instance & 1 ) ? random_test_aig( rng(), num_pis, num_pos, 40 ) : a;
    if ( instance % 3 == 2 )
    {
      b.set_po( 0, b.po( 0 ) ^ 1u );
    }
    const auto outcome = engine.check( a, b );
    expect_matches_brute_force( outcome, a, b,
                                ( "sig words " + std::to_string( num_sig_words ) ).c_str() );
  }
  return engine.stats();
}

} // namespace

TEST( incremental_signatures, false_candidate_rate_shrinks_with_wider_signatures )
{
  // A fraig candidate is a signature-equal node pair; a candidate that is
  // refuted (or only survives until a counterexample splits its class) was
  // a signature collision.  More signature words = more simulation
  // patterns backing the hint, so the collision share must not grow — and
  // the verdicts (checked against brute force inside the sequence) must be
  // identical at 1, 4, and 8 words.
  const auto s1 = run_fraig_sequence( 1 );
  const auto s4 = run_fraig_sequence( 4 );
  const auto s8 = run_fraig_sequence( 8 );

  // The sequences prove the same output pairs however the hints land.
  EXPECT_EQ( s1.checks, s8.checks );
  EXPECT_EQ( s1.structural_outputs + s1.sat_proven_outputs,
             s8.structural_outputs + s8.sat_proven_outputs );

  const auto false_candidates = []( const sat::cec_stats& s ) {
    return s.fraig_candidates - s.fraig_merges;
  };
  // Wider signatures filter candidate pairs at least as well (deterministic
  // pattern streams make these exact counts, not flaky averages).
  EXPECT_LE( false_candidates( s8 ), false_candidates( s1 ) );
  EXPECT_LE( false_candidates( s4 ), false_candidates( s1 ) );
  // One word is weak enough to produce collisions here — otherwise this
  // test stops measuring anything.
  EXPECT_GT( false_candidates( s1 ), 0u );
}

TEST( incremental_signatures, refinement_converges_identically_wide_and_narrow )
{
  // Counterexample-guided refinement folds cex patterns into a signature
  // word and rebuilds the classes.  However many words the signatures have
  // (1 = every refinement overwrites the only word, 8 = a rotating slot),
  // the refined engine must converge to the same verdicts as a fresh
  // engine per check — refinement is a hint-quality loop, never a
  // soundness ingredient.
  for ( const unsigned num_sig_words : { 1u, 4u, 8u } )
  {
    sat::cec_options options;
    options.num_sig_words = num_sig_words;
    options.fraig_conflict_budget = 40;
    sat::incremental_cec persistent( options );
    std::mt19937_64 rng( 733 );
    for ( int round = 0; round < 5; ++round )
    {
      const unsigned num_pis = 13;
      const auto a = random_test_aig( rng(), num_pis, 2, 36 );
      auto b = ( round & 1 ) ? random_test_aig( rng(), num_pis, 2, 36 ) : a;
      const auto reused = persistent.check( a, b );
      sat::incremental_cec fresh( options );
      const auto baseline = fresh.check( a, b );
      EXPECT_EQ( reused.equivalent, baseline.equivalent )
          << "words " << num_sig_words << " round " << round;
      EXPECT_EQ( reused.failing_output, baseline.failing_output )
          << "words " << num_sig_words << " round " << round;
      expect_matches_brute_force( reused, a, b, "refined engine" );
    }
  }
}

TEST( incremental_signatures, engine_reuse_verdicts_pinned_across_widths )
{
  // Three persistent engines — one per signature width — fed the same
  // check sequence must report identical verdicts and failing outputs on
  // every round: signature width is a hint parameter, the verdict contract
  // does not move with it.
  std::vector<std::unique_ptr<sat::incremental_cec>> engines;
  for ( const unsigned words : { 1u, 4u, 8u } )
  {
    sat::cec_options options;
    options.num_sig_words = words;
    options.fraig_conflict_budget = 50;
    engines.push_back( std::make_unique<sat::incremental_cec>( options ) );
  }
  std::mt19937_64 rng( 839 );
  for ( int round = 0; round < 6; ++round )
  {
    const unsigned num_pis = 13;
    const unsigned num_pos = 1u + rng() % 3u;
    const auto a = random_test_aig( rng(), num_pis, num_pos, 32 );
    auto b = ( round % 3 == 0 ) ? random_test_aig( rng(), num_pis, num_pos, 32 ) : a;
    if ( round % 3 == 1 )
    {
      b.set_po( static_cast<unsigned>( rng() % num_pos ), b.po( 0 ) ^ 1u );
    }
    const auto first = engines[0]->check( a, b );
    expect_matches_brute_force( first, a, b, "width 1" );
    for ( std::size_t e = 1; e < engines.size(); ++e )
    {
      const auto other = engines[e]->check( a, b );
      EXPECT_EQ( other.equivalent, first.equivalent ) << "round " << round << " engine " << e;
      EXPECT_EQ( other.failing_output, first.failing_output )
          << "round " << round << " engine " << e;
      // Counterexamples come from solver models, which legitimately differ
      // with the hint width — each must round-trip, not match verbatim.
      if ( !other.equivalent )
      {
        ASSERT_TRUE( other.counterexample.has_value() ) << "round " << round << " engine " << e;
        EXPECT_NE( a.evaluate( *other.counterexample )[*other.failing_output],
                   b.evaluate( *other.counterexample )[*other.failing_output] )
            << "round " << round << " engine " << e;
      }
    }
  }
}

TEST( incremental_signatures, widened_simulation_pass_decides_13_and_14_pi_designs )
{
  // Opting `output_window_max_pis` up to 14 routes 13- and 14-PI checks
  // through the widened exhaustive simulation pass (SIMD-wide blocks, no
  // solver): verdicts, failing outputs, and counterexamples must match
  // brute force, and the solver must never have been consulted.
  for ( const unsigned num_pis : { 13u, 14u } )
  {
    sat::cec_options options;
    options.output_window_max_pis = 14;
    sat::incremental_cec engine( options );
    std::mt19937_64 rng( 1000 + num_pis );
    for ( int instance = 0; instance < 4; ++instance )
    {
      const unsigned num_pos = 1u + rng() % 3u;
      const auto a = random_test_aig( rng(), num_pis, num_pos, 30 );
      auto b = ( instance & 1 ) ? random_test_aig( rng(), num_pis, num_pos, 30 ) : a;
      if ( instance == 2 )
      {
        b.set_po( 0, b.po( 0 ) ^ 1u );
      }
      const auto outcome = engine.check( a, b );
      expect_matches_brute_force( outcome, a, b, "widened sim pass" );
    }
    EXPECT_EQ( engine.stats().solver_conflicts, 0u ) << num_pis;
    EXPECT_EQ( engine.stats().sat_proven_outputs, 0u ) << num_pis;
  }
}
