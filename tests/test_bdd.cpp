#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "logic/aig.hpp"
#include "synth/collapse.hpp"

using namespace qsyn;

TEST( bdd, constants_and_vars )
{
  bdd_manager mgr( 3 );
  EXPECT_TRUE( mgr.is_constant( mgr.constant( false ) ) );
  EXPECT_TRUE( mgr.is_constant( mgr.constant( true ) ) );
  const auto x1 = mgr.var( 1 );
  EXPECT_EQ( mgr.top_var( x1 ), 1u );
  EXPECT_EQ( mgr.low( x1 ), mgr.constant( false ) );
  EXPECT_EQ( mgr.high( x1 ), mgr.constant( true ) );
}

TEST( bdd, hash_consing_dedups )
{
  bdd_manager mgr( 2 );
  const auto a = mgr.var( 0 );
  const auto b = mgr.var( 1 );
  const auto f1 = mgr.bdd_and( a, b );
  const auto f2 = mgr.bdd_and( b, a );
  EXPECT_EQ( f1, f2 );
}

TEST( bdd, boolean_ops_match_truth_tables )
{
  bdd_manager mgr( 3 );
  const auto a = mgr.var( 0 );
  const auto b = mgr.var( 1 );
  const auto c = mgr.var( 2 );
  const auto f = mgr.bdd_or( mgr.bdd_and( a, b ), mgr.bdd_xor( b, c ) );
  const auto ta = truth_table::projection( 3, 0 );
  const auto tb = truth_table::projection( 3, 1 );
  const auto tc = truth_table::projection( 3, 2 );
  const auto expected = ( ta & tb ) | ( tb ^ tc );
  EXPECT_EQ( mgr.to_truth_table( f ), expected );
}

TEST( bdd, ite_identities )
{
  bdd_manager mgr( 2 );
  const auto a = mgr.var( 0 );
  const auto b = mgr.var( 1 );
  EXPECT_EQ( mgr.ite( mgr.constant( true ), a, b ), a );
  EXPECT_EQ( mgr.ite( mgr.constant( false ), a, b ), b );
  EXPECT_EQ( mgr.ite( a, mgr.constant( true ), mgr.constant( false ) ), a );
  EXPECT_EQ( mgr.ite( a, b, b ), b );
}

TEST( bdd, negation_involution )
{
  bdd_manager mgr( 3 );
  const auto f = mgr.bdd_xor( mgr.var( 0 ), mgr.bdd_and( mgr.var( 1 ), mgr.var( 2 ) ) );
  EXPECT_EQ( mgr.bdd_not( mgr.bdd_not( f ) ), f );
}

TEST( bdd, cofactor_matches_truth_table )
{
  bdd_manager mgr( 3 );
  const auto f =
      mgr.bdd_or( mgr.bdd_and( mgr.var( 0 ), mgr.var( 1 ) ), mgr.var( 2 ) );
  const auto tt = mgr.to_truth_table( f );
  for ( unsigned v = 0; v < 3; ++v )
  {
    for ( const bool pol : { false, true } )
    {
      EXPECT_EQ( mgr.to_truth_table( mgr.cofactor( f, v, pol ) ), tt.cofactor( v, pol ) );
    }
  }
}

TEST( bdd, sat_count_simple )
{
  bdd_manager mgr( 3 );
  const auto a = mgr.var( 0 );
  const auto b = mgr.var( 1 );
  EXPECT_DOUBLE_EQ( mgr.sat_count( mgr.constant( true ) ), 8.0 );
  EXPECT_DOUBLE_EQ( mgr.sat_count( mgr.constant( false ) ), 0.0 );
  EXPECT_DOUBLE_EQ( mgr.sat_count( a ), 4.0 );
  EXPECT_DOUBLE_EQ( mgr.sat_count( mgr.bdd_and( a, b ) ), 2.0 );
  EXPECT_DOUBLE_EQ( mgr.sat_count( mgr.bdd_or( a, b ) ), 6.0 );
  EXPECT_DOUBLE_EQ( mgr.sat_count( mgr.bdd_xor( a, b ) ), 4.0 );
}

TEST( bdd, sat_count_skipped_levels )
{
  // f = x2 alone in a 4-variable manager: count must scale by skipped vars.
  bdd_manager mgr( 4 );
  EXPECT_DOUBLE_EQ( mgr.sat_count( mgr.var( 2 ) ), 8.0 );
}

TEST( bdd, sat_count_matches_truth_table_ones )
{
  bdd_manager mgr( 5 );
  auto f = mgr.constant( false );
  // f = majority-ish mix
  f = mgr.bdd_or( f, mgr.bdd_and( mgr.var( 0 ), mgr.var( 3 ) ) );
  f = mgr.bdd_xor( f, mgr.bdd_and( mgr.var( 1 ), mgr.bdd_not( mgr.var( 4 ) ) ) );
  const auto tt = mgr.to_truth_table( f );
  EXPECT_DOUBLE_EQ( mgr.sat_count( f ), static_cast<double>( tt.count_ones() ) );
}

TEST( bdd, from_truth_table_roundtrip )
{
  bdd_manager mgr( 4 );
  const auto tt = truth_table::from_binary_string( "0110100110010110" );
  const auto f = mgr.from_truth_table( tt );
  EXPECT_EQ( mgr.to_truth_table( f ), tt );
}

TEST( bdd, evaluate_paths )
{
  bdd_manager mgr( 3 );
  const auto f = mgr.bdd_and( mgr.var( 0 ), mgr.bdd_not( mgr.var( 2 ) ) );
  EXPECT_TRUE( mgr.evaluate( f, 0b001 ) );
  EXPECT_TRUE( mgr.evaluate( f, 0b011 ) );
  EXPECT_FALSE( mgr.evaluate( f, 0b101 ) );
  EXPECT_FALSE( mgr.evaluate( f, 0b000 ) );
}

TEST( bdd, size_counts_shared_nodes )
{
  bdd_manager mgr( 3 );
  const auto f = mgr.bdd_xor( mgr.var( 0 ), mgr.bdd_xor( mgr.var( 1 ), mgr.var( 2 ) ) );
  // Parity of 3 variables: BDD has exactly 2 nodes per level + ... known
  // structure: levels 0,1 have shared nodes; just check it is small and
  // positive.
  const auto size = mgr.size( f );
  EXPECT_GE( size, 3u );
  EXPECT_LE( size, 7u );
}

TEST( bdd, collapse_aig_matches_simulation )
{
  aig_network aig( 4 );
  const auto f0 = aig.create_xor( aig.pi( 0 ), aig.pi( 1 ) );
  const auto f1 = aig.create_and( aig.create_or( aig.pi( 2 ), aig.pi( 3 ) ), f0 );
  aig.add_po( f0 );
  aig.add_po( lit_not( f1 ) );
  bdd_manager mgr( 4 );
  const auto bdds = collapse_to_bdds( aig, mgr );
  const auto tts = aig.simulate_outputs();
  ASSERT_EQ( bdds.size(), 2u );
  EXPECT_EQ( mgr.to_truth_table( bdds[0] ), tts[0] );
  EXPECT_EQ( mgr.to_truth_table( bdds[1] ), tts[1] );
}

TEST( bdd, collapse_with_offset )
{
  aig_network aig( 2 );
  aig.add_po( aig.create_and( aig.pi( 0 ), aig.pi( 1 ) ) );
  bdd_manager mgr( 5 );
  const auto bdds = collapse_to_bdds( aig, mgr, 3 );
  // PI i maps to var 3 + i.
  EXPECT_TRUE( mgr.evaluate( bdds[0], 0b11000 ) );
  EXPECT_FALSE( mgr.evaluate( bdds[0], 0b01000 ) );
}
