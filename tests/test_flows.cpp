#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "core/dse.hpp"
#include "core/flows.hpp"
#include "sat/incremental.hpp"
#include "reversible/verify.hpp"
#include "synth/aig_optimize.hpp"
#include "verilog/elaborator.hpp"

using namespace qsyn;

TEST( flows, functional_flow_verifies_and_is_line_optimum )
{
  flow_params params;
  params.kind = flow_kind::functional;
  for ( const unsigned n : { 3u, 4u, 5u } )
  {
    const auto result = run_reciprocal_flow( reciprocal_design::intdiv, n, params );
    EXPECT_TRUE( result.verified ) << "n=" << n;
    // The Table II observation: optimum embedding uses 2n-1 qubits.
    EXPECT_EQ( result.costs.qubits, 2u * n - 1u ) << "n=" << n;
    EXPECT_EQ( result.embedding_lines, 2u * n - 1u );
  }
}

TEST( flows, esop_flow_uses_2n_qubits_at_p0 )
{
  flow_params params;
  params.kind = flow_kind::esop_based;
  for ( const unsigned n : { 3u, 4u, 5u } )
  {
    const auto result = run_reciprocal_flow( reciprocal_design::intdiv, n, params );
    EXPECT_TRUE( result.verified ) << "n=" << n;
    EXPECT_EQ( result.costs.qubits, 2u * n ) << "n=" << n; // Table III, p = 0
  }
}

TEST( flows, esop_p1_adds_lines )
{
  flow_params p0;
  p0.kind = flow_kind::esop_based;
  p0.esop_p = 0;
  flow_params p1 = p0;
  p1.esop_p = 2;
  const auto r0 = run_reciprocal_flow( reciprocal_design::intdiv, 5, p0 );
  const auto r1 = run_reciprocal_flow( reciprocal_design::intdiv, 5, p1 );
  EXPECT_TRUE( r0.verified );
  EXPECT_TRUE( r1.verified );
  EXPECT_GE( r1.costs.qubits, r0.costs.qubits ); // factoring costs lines
}

TEST( flows, hierarchical_flow_all_cleanups_verify )
{
  for ( const auto cleanup : { cleanup_strategy::keep_garbage, cleanup_strategy::bennett,
                               cleanup_strategy::eager } )
  {
    flow_params params;
    params.kind = flow_kind::hierarchical;
    params.cleanup = cleanup;
    const auto result = run_reciprocal_flow( reciprocal_design::intdiv, 4, params );
    EXPECT_TRUE( result.verified );
    EXPECT_GT( result.xmg_maj + result.xmg_xor, 0u );
  }
}

TEST( flows, newton_design_through_flows )
{
  for ( const auto kind : { flow_kind::functional, flow_kind::esop_based,
                            flow_kind::hierarchical } )
  {
    flow_params params;
    params.kind = kind;
    const auto result = run_reciprocal_flow( reciprocal_design::newton, 4, params );
    EXPECT_TRUE( result.verified );
  }
}

TEST( flows, qubit_t_count_ordering_matches_paper )
{
  // Sec. V: functional has fewest qubits but by far the largest T-count;
  // ESOP sits between the flows on qubits; hierarchical pays the most
  // qubits.  (ESOP vs. hierarchical T-count flips with n — Table III/IV —
  // so only the functional flow's extremes are asserted.)
  const unsigned n = 5;
  flow_params functional;
  functional.kind = flow_kind::functional;
  flow_params esop;
  esop.kind = flow_kind::esop_based;
  flow_params hier;
  hier.kind = flow_kind::hierarchical;
  const auto rf = run_reciprocal_flow( reciprocal_design::intdiv, n, functional );
  const auto re = run_reciprocal_flow( reciprocal_design::intdiv, n, esop );
  const auto rh = run_reciprocal_flow( reciprocal_design::intdiv, n, hier );
  EXPECT_LT( rf.costs.qubits, re.costs.qubits );
  EXPECT_LT( re.costs.qubits, rh.costs.qubits );
  EXPECT_GT( rf.costs.t_count, re.costs.t_count );
  EXPECT_GT( rf.costs.t_count, rh.costs.t_count );
}

TEST( flows, optimization_reduces_aig )
{
  flow_params params;
  params.kind = flow_kind::esop_based;
  const auto result = run_reciprocal_flow( reciprocal_design::intdiv, 5, params );
  EXPECT_LE( result.aig_nodes_optimized, result.aig_nodes_initial );
}

TEST( flows, custom_verilog_through_flow )
{
  const std::string source = R"(
    module popcount(input [4:0] x, output [2:0] y);
      assign y = {1'b0, {1'b0, x[0]} + {1'b0, x[1]}} + {1'b0, {1'b0, x[2]} + {1'b0, x[3]}} + {2'b00, x[4]};
    endmodule
  )";
  for ( const auto kind : { flow_kind::functional, flow_kind::esop_based,
                            flow_kind::hierarchical } )
  {
    flow_params params;
    params.kind = kind;
    const auto result = run_flow_on_verilog( source, params );
    EXPECT_TRUE( result.verified );
  }
}

TEST( dse, exploration_produces_all_points )
{
  const auto mod = verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 4 ) );
  const auto configs = default_dse_configurations( true );
  const auto points = explore( mod.aig, configs );
  EXPECT_EQ( points.size(), configs.size() );
  for ( const auto& p : points )
  {
    EXPECT_TRUE( p.result.verified ) << p.label;
  }
}

TEST( dse, pareto_front_contains_extremes )
{
  const auto mod = verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 4 ) );
  const auto points = explore( mod.aig, default_dse_configurations( true ) );
  const auto front = pareto_front( points );
  EXPECT_GE( front.size(), 2u ); // at least the two extremes of the tradeoff
  // The minimum-qubit and minimum-T points must be on the frontier.
  std::size_t min_q = 0;
  std::size_t min_t = 0;
  for ( std::size_t i = 1; i < points.size(); ++i )
  {
    if ( points[i].result.costs.qubits < points[min_q].result.costs.qubits )
    {
      min_q = i;
    }
    if ( points[i].result.costs.t_count < points[min_t].result.costs.t_count )
    {
      min_t = i;
    }
  }
  EXPECT_NE( std::find( front.begin(), front.end(), min_q ), front.end() );
  EXPECT_NE( std::find( front.begin(), front.end(), min_t ), front.end() );
}

TEST( dse, table_formatting )
{
  const auto mod = verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 3 ) );
  std::vector<flow_params> configs;
  flow_params esop;
  esop.kind = flow_kind::esop_based;
  configs.push_back( esop );
  const auto points = explore( mod.aig, configs );
  const auto table = format_dse_table( points );
  EXPECT_NE( table.find( "esop(p=0)" ), std::string::npos );
  EXPECT_NE( table.find( "qubits" ), std::string::npos );
}

TEST( flows, verification_tiers_agree_on_accept_for_every_flow )
{
  // Each tier is a different engine (64-way simulation on truth
  // tables/samples, 64-way counter enumeration, SAT miter); a correct
  // synthesis result must pass all of them, with verified_with recording
  // the tier that ran.
  for ( const auto kind : { flow_kind::functional, flow_kind::esop_based,
                            flow_kind::hierarchical } )
  {
    for ( const auto mode :
          { verify_mode::sampled, verify_mode::exhaustive, verify_mode::sat } )
    {
      flow_params params;
      params.kind = kind;
      params.verification = mode;
      const auto result = run_reciprocal_flow( reciprocal_design::intdiv, 4, params );
      EXPECT_TRUE( result.verified )
          << "kind=" << static_cast<int>( kind ) << " mode=" << verify_mode_name( mode );
      EXPECT_EQ( result.verified_with, mode );
      EXPECT_FALSE( result.counterexample.has_value() );
    }
  }
}

TEST( flows, verify_mode_none_and_legacy_toggle_skip_verification )
{
  flow_params params;
  params.kind = flow_kind::esop_based;
  params.verification = verify_mode::none;
  const auto none = run_reciprocal_flow( reciprocal_design::intdiv, 4, params );
  EXPECT_FALSE( none.verified );
  EXPECT_EQ( none.verified_with, verify_mode::none );
  EXPECT_EQ( none.verify_seconds, 0.0 );

  params.verification = verify_mode::sat;
  params.verify = false; // the legacy master toggle wins
  const auto off = run_reciprocal_flow( reciprocal_design::intdiv, 4, params );
  EXPECT_FALSE( off.verified );
  EXPECT_EQ( off.verified_with, verify_mode::none );
}

TEST( flows, corrupted_circuit_is_rejected_by_every_tier_with_a_valid_counterexample )
{
  const auto mod =
      verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 4 ) );
  for ( const auto kind : { flow_kind::functional, flow_kind::esop_based,
                            flow_kind::hierarchical } )
  {
    flow_params params;
    params.kind = kind;
    params.verify = false;
    const auto result = run_flow_on_aig( mod.aig, params );
    const auto spec = optimize( mod.aig, params.optimization_rounds );

    const auto corrupted = corrupt_circuit( result.circuit, spec );

    const auto check_cex = [&]( const std::optional<std::vector<bool>>& cex,
                                const char* tier ) {
      ASSERT_TRUE( cex.has_value() ) << tier << " kind=" << static_cast<int>( kind );
      EXPECT_NE( evaluate_circuit( corrupted, *cex ), spec.evaluate( *cex ) )
          << tier << " kind=" << static_cast<int>( kind );
    };
    check_cex( verify_against_aig_sampled( corrupted, spec ), "sampled" );
    check_cex( verify_against_aig_exhaustive( corrupted, spec ), "exhaustive" );
    check_cex( verify_against_aig_sat( corrupted, spec ), "sat" );
  }
}

TEST( dse, explore_designs_threads_the_verification_mode )
{
  explore_options options;
  options.functional_max_bitwidth = 0; // keep the sweep small
  options.verification = verify_mode::sat;
  const auto explorations =
      explore_designs( { reciprocal_design::intdiv }, 4, 4, options );
  ASSERT_EQ( explorations.size(), 1u );
  for ( const auto& p : explorations[0].points )
  {
    EXPECT_TRUE( p.result.verified ) << p.label;
    EXPECT_EQ( p.result.verified_with, verify_mode::sat ) << p.label;
  }

  options.verification = verify_mode::none;
  const auto unverified = explore_designs( { reciprocal_design::intdiv }, 4, 4, options );
  for ( const auto& p : unverified[0].points )
  {
    EXPECT_EQ( p.result.verified_with, verify_mode::none ) << p.label;
    EXPECT_EQ( p.result.verify_seconds, 0.0 ) << p.label;
  }
}

TEST( flows, verify_mode_names_round_trip )
{
  for ( const auto mode : { verify_mode::none, verify_mode::sampled, verify_mode::exhaustive,
                            verify_mode::sat } )
  {
    EXPECT_EQ( verify_mode_from_name( verify_mode_name( mode ) ), mode );
  }
  EXPECT_FALSE( verify_mode_from_name( "bogus" ).has_value() );
}

TEST( flows, tbs_unidirectional_option )
{
  flow_params params;
  params.kind = flow_kind::functional;
  params.bidirectional_tbs = false;
  const auto result = run_reciprocal_flow( reciprocal_design::intdiv, 4, params );
  EXPECT_TRUE( result.verified );
}

TEST( flows, exorcism_toggle )
{
  flow_params with;
  with.kind = flow_kind::esop_based;
  with.run_exorcism = true;
  flow_params without = with;
  without.run_exorcism = false;
  const auto r_with = run_reciprocal_flow( reciprocal_design::intdiv, 5, with );
  const auto r_without = run_reciprocal_flow( reciprocal_design::intdiv, 5, without );
  EXPECT_TRUE( r_with.verified );
  EXPECT_TRUE( r_without.verified );
  EXPECT_LE( r_with.esop_terms, r_without.esop_terms );
}

TEST( flows, cut_size_is_a_flow_param_and_cache_axis )
{
  const auto mod =
      verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 5 ) );
  flow_params k4;
  k4.kind = flow_kind::hierarchical;
  k4.verification = verify_mode::exhaustive;
  flow_params k3 = k4;
  k3.cut_size = 3;

  flow_artifact_cache cache;
  const auto r4 = run_flow_staged( mod.aig, k4, cache );
  const auto misses_after_k4 = cache.stats().misses;
  const auto r3 = run_flow_staged( mod.aig, k3, cache );
  const auto misses_after_k3 = cache.stats().misses;
  // Different cut sizes are distinct XMG artifacts (a fresh miss)...
  EXPECT_GT( misses_after_k3, misses_after_k4 );
  // ...while re-running an already-seen cut size only hits.
  const auto r4_again = run_flow_staged( mod.aig, k4, cache );
  EXPECT_EQ( cache.stats().misses, misses_after_k3 );
  // Both mappings synthesize correct circuits with their own structure.
  EXPECT_TRUE( r4.verified );
  EXPECT_TRUE( r3.verified );
  EXPECT_TRUE( r4_again.verified );
  EXPECT_EQ( r4.costs.t_count, r4_again.costs.t_count );
  // Labels expose the non-default axis only.
  EXPECT_EQ( dse_label( k4 ), "hierarchical(garbage)" );
  EXPECT_EQ( dse_label( k3 ), "hierarchical(garbage,k=3)" );
}

TEST( flows, sat_tier_reuses_one_engine_across_a_sweep )
{
  // Every sat-mode verification of a cache-sharing sweep goes through the
  // cache's persistent incremental engine; verdicts must match the
  // one-shot path and the engine must have seen every check.
  const auto mod =
      verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 4 ) );
  flow_artifact_cache cache;
  std::size_t configs_run = 0;
  for ( const auto cleanup :
        { cleanup_strategy::keep_garbage, cleanup_strategy::bennett, cleanup_strategy::eager } )
  {
    flow_params params;
    params.kind = flow_kind::hierarchical;
    params.cleanup = cleanup;
    params.verification = verify_mode::sat;
    const auto result = run_flow_staged( mod.aig, params, cache );
    EXPECT_TRUE( result.verified );
    EXPECT_EQ( result.verified_with, verify_mode::sat );
    ++configs_run;
  }
  EXPECT_EQ( cache.sat_engine().stats().checks, configs_run );
}

TEST( flows, cut_size_below_two_is_rejected )
{
  const auto mod =
      verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 4 ) );
  flow_params params;
  params.kind = flow_kind::hierarchical;
  params.cut_size = 1;
  EXPECT_THROW( run_flow_on_aig( mod.aig, params ), std::invalid_argument );
}

TEST( flows, cache_rejects_same_size_different_function_design )
{
  // Regression for the size-only design fingerprint: `a AND b` and
  // `a AND NOT b` have identical (pis, pos, ands) shapes but different
  // functions.  The old fingerprint silently served the first design's
  // artifacts for the second; the content hash must reject the alias.
  aig_network and_ab( 2 );
  and_ab.add_po( and_ab.create_and( and_ab.pi( 0 ), and_ab.pi( 1 ) ) );
  aig_network and_anb( 2 );
  and_anb.add_po( and_anb.create_and( and_anb.pi( 0 ), lit_not( and_anb.pi( 1 ) ) ) );
  ASSERT_EQ( and_ab.num_nodes(), and_anb.num_nodes() );
  ASSERT_NE( and_ab.content_hash(), and_anb.content_hash() );

  flow_params params;
  params.kind = flow_kind::esop_based;
  flow_artifact_cache cache;
  const auto first = run_flow_staged( and_ab, params, cache );
  EXPECT_TRUE( first.verified );
  EXPECT_THROW( run_flow_staged( and_anb, params, cache ), std::invalid_argument );

  // A structurally identical copy is the same design and is accepted.
  aig_network copy( 2 );
  copy.add_po( copy.create_and( copy.pi( 0 ), copy.pi( 1 ) ) );
  const auto again = run_flow_staged( copy, params, cache );
  EXPECT_TRUE( again.verified );
  EXPECT_EQ( again.costs.t_count, first.costs.t_count );
  EXPECT_GT( cache.stats().hits, 0u ); // the copy reused the first run's artifacts
  EXPECT_EQ( cache.design_hash(), and_ab.content_hash() );
}
