#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/dse.hpp"
#include "reversible/verify.hpp"
#include "verilog/elaborator.hpp"

using namespace qsyn;

namespace
{

dse_point make_point( unsigned qubits, std::uint64_t t_count )
{
  dse_point p;
  p.result.costs.qubits = qubits;
  p.result.costs.t_count = t_count;
  return p;
}

bool contains( const std::vector<std::size_t>& front, std::size_t index )
{
  return std::find( front.begin(), front.end(), index ) != front.end();
}

} // namespace

// --- pareto_front edge cases -------------------------------------------------

TEST( dse_pareto, dominated_point_is_excluded )
{
  const std::vector<dse_point> points = {
      make_point( 10, 100 ), // dominated by both others
      make_point( 5, 100 ),
      make_point( 10, 50 ),
  };
  const auto front = pareto_front( points );
  EXPECT_FALSE( contains( front, 0 ) );
  EXPECT_TRUE( contains( front, 1 ) );
  EXPECT_TRUE( contains( front, 2 ) );
}

TEST( dse_pareto, tied_points_are_both_kept )
{
  // Equal on both axes: neither strictly improves the other, so both stay.
  const std::vector<dse_point> points = { make_point( 5, 50 ), make_point( 5, 50 ) };
  const auto front = pareto_front( points );
  EXPECT_EQ( front.size(), 2u );
}

TEST( dse_pareto, duplicates_of_a_dominated_point_all_fall )
{
  const std::vector<dse_point> points = {
      make_point( 9, 90 ),
      make_point( 9, 90 ),
      make_point( 3, 30 ),
  };
  const auto front = pareto_front( points );
  EXPECT_EQ( front.size(), 1u );
  EXPECT_TRUE( contains( front, 2 ) );
}

TEST( dse_pareto, incomparable_points_all_survive )
{
  const std::vector<dse_point> points = {
      make_point( 1, 100 ), make_point( 2, 50 ), make_point( 3, 10 ) };
  EXPECT_EQ( pareto_front( points ).size(), 3u );
}

TEST( dse_pareto, single_and_empty )
{
  EXPECT_TRUE( pareto_front( {} ).empty() );
  const std::vector<dse_point> one = { make_point( 4, 4 ) };
  EXPECT_EQ( pareto_front( one ).size(), 1u );
}

// --- dse_label ---------------------------------------------------------------

TEST( dse_label, covers_every_configuration )
{
  flow_params p;
  p.kind = flow_kind::functional;
  p.bidirectional_tbs = true;
  EXPECT_EQ( dse_label( p ), "functional(tbs,bidir)" );
  p.bidirectional_tbs = false;
  EXPECT_EQ( dse_label( p ), "functional(tbs,uni)" );

  p.kind = flow_kind::esop_based;
  for ( unsigned esop_p = 0; esop_p <= 2u; ++esop_p )
  {
    p.esop_p = esop_p;
    EXPECT_EQ( dse_label( p ), "esop(p=" + std::to_string( esop_p ) + ")" );
  }

  p.kind = flow_kind::hierarchical;
  p.cleanup = cleanup_strategy::keep_garbage;
  EXPECT_EQ( dse_label( p ), "hierarchical(garbage)" );
  p.cleanup = cleanup_strategy::bennett;
  EXPECT_EQ( dse_label( p ), "hierarchical(bennett)" );
  p.cleanup = cleanup_strategy::eager;
  EXPECT_EQ( dse_label( p ), "hierarchical(eager)" );
}

TEST( dse_label, default_sweep_labels_are_distinct )
{
  const auto configs = default_dse_configurations( true );
  std::vector<std::string> labels;
  for ( const auto& c : configs )
  {
    labels.push_back( dse_label( c ) );
  }
  auto sorted = labels;
  std::sort( sorted.begin(), sorted.end() );
  EXPECT_EQ( std::unique( sorted.begin(), sorted.end() ), sorted.end() );
}

// --- parallel cached explore == sequential seed path ------------------------

TEST( dse_engine, parallel_cached_matches_sequential_bit_for_bit )
{
  const auto mod =
      verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 5 ) );
  const auto configs = default_dse_configurations( true );

  explore_options sequential;
  sequential.num_threads = 1;
  sequential.use_cache = false;
  const auto seq = explore( mod.aig, configs, sequential );

  explore_options parallel;
  parallel.num_threads = 4;
  flow_artifact_cache cache;
  const auto par = explore( mod.aig, configs, parallel, cache );

  ASSERT_EQ( seq.size(), par.size() );
  for ( std::size_t i = 0; i < seq.size(); ++i )
  {
    EXPECT_EQ( seq[i].label, par[i].label ) << i;
    EXPECT_EQ( seq[i].result.costs.qubits, par[i].result.costs.qubits ) << seq[i].label;
    EXPECT_EQ( seq[i].result.costs.t_count, par[i].result.costs.t_count ) << seq[i].label;
    EXPECT_EQ( seq[i].result.costs.gates, par[i].result.costs.gates ) << seq[i].label;
    EXPECT_EQ( seq[i].result.esop_terms, par[i].result.esop_terms ) << seq[i].label;
    EXPECT_TRUE( par[i].result.verified ) << seq[i].label;
  }
  // One miss per distinct artifact (optimized AIG, functional, ESOP, XMG),
  // everything else hits.
  EXPECT_EQ( cache.stats().misses, 4u );
  EXPECT_GT( cache.stats().hits, 0u );
}

TEST( dse_engine, runtime_excludes_verification )
{
  const auto mod =
      verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 4 ) );
  flow_params params;
  params.kind = flow_kind::esop_based;
  params.verify = false;
  const auto unverified = run_flow_on_aig( mod.aig, params );
  EXPECT_EQ( unverified.verify_seconds, 0.0 );
  EXPECT_FALSE( unverified.verified );

  params.verify = true;
  const auto verified = run_flow_on_aig( mod.aig, params );
  EXPECT_TRUE( verified.verified );
  EXPECT_GE( verified.verify_seconds, 0.0 );
}

TEST( dse_engine, cache_is_bound_to_one_design )
{
  const auto a = verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 4 ) );
  const auto b = verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::newton, 5 ) );
  flow_artifact_cache cache;
  flow_params params;
  params.kind = flow_kind::esop_based;
  run_flow_staged( a.aig, params, cache );
  EXPECT_THROW( run_flow_staged( b.aig, params, cache ), std::invalid_argument );
}

TEST( dse_engine, second_staged_run_hits_every_stage )
{
  const auto mod =
      verilog::elaborate_verilog( reciprocal_verilog( reciprocal_design::intdiv, 4 ) );
  flow_artifact_cache cache;
  flow_params params;
  params.kind = flow_kind::hierarchical;
  run_flow_staged( mod.aig, params, cache );
  const auto misses_before = cache.stats().misses;
  const auto r = run_flow_staged( mod.aig, params, cache );
  EXPECT_EQ( cache.stats().misses, misses_before ); // no new stage work
  EXPECT_TRUE( r.verified );
}

TEST( dse_engine, explore_designs_batches_both_designs )
{
  explore_options options;
  options.functional_max_bitwidth = 4;
  const auto explorations = explore_designs(
      { reciprocal_design::intdiv, reciprocal_design::newton }, 4, 5, options );
  ASSERT_EQ( explorations.size(), 4u );
  EXPECT_EQ( explorations[0].name, "INTDIV(4)" );
  EXPECT_EQ( explorations[1].name, "NEWTON(4)" );
  EXPECT_EQ( explorations[2].name, "INTDIV(5)" );
  EXPECT_EQ( explorations[3].name, "NEWTON(5)" );
  // n = 4 includes the functional flow (7 configs), n = 5 does not (6).
  EXPECT_EQ( explorations[0].points.size(), 7u );
  EXPECT_EQ( explorations[2].points.size(), 6u );
  for ( const auto& e : explorations )
  {
    EXPECT_GT( e.cache.misses, 0u );
    EXPECT_GT( e.cache.hits, 0u );
    for ( const auto& p : e.points )
    {
      EXPECT_TRUE( p.result.verified ) << e.name << " " << p.label;
    }
  }
}

// --- exhaustive small-design verification ------------------------------------

TEST( dse_verify, exhaustive_below_sample_budget_finds_rare_counterexample )
{
  // f(x0, x1) = x0 AND x1.  The circuit instead computes x0 OR x1 — wrong
  // on exactly the two single-bit patterns.  Exhaustive enumeration (4
  // vectors <= any sample budget) must find one; before the fix, tiny
  // designs were "verified" by drawing duplicate random vectors, which
  // could in principle miss a rare pattern entirely.
  aig_network aig( 2 );
  aig.add_po( aig.create_and( aig.pi( 0 ), aig.pi( 1 ) ) );

  reversible_circuit circuit( 3 );
  circuit.line( 0 ).is_primary_input = true;
  circuit.line( 1 ).is_primary_input = true;
  circuit.line( 2 ).is_constant_input = true;
  circuit.line( 2 ).constant_value = false;
  circuit.line( 2 ).output_index = 0;
  circuit.line( 2 ).is_garbage = false;
  // OR via De Morgan: negative-control Toffoli then NOT.
  circuit.add_gate( toffoli_gate{ { { 0, false }, { 1, false } }, 2 } );
  circuit.add_not( 2 );

  const auto cex = verify_against_aig_sampled( circuit, aig, 256, 1 );
  ASSERT_TRUE( cex.has_value() );
  // The counterexample must be one of the two patterns where OR != AND.
  EXPECT_NE( ( *cex )[0], ( *cex )[1] );
}

TEST( dse_verify, exhaustive_certifies_correct_circuit )
{
  aig_network aig( 2 );
  aig.add_po( aig.create_xor( aig.pi( 0 ), aig.pi( 1 ) ) );

  reversible_circuit circuit( 3 );
  circuit.line( 0 ).is_primary_input = true;
  circuit.line( 1 ).is_primary_input = true;
  circuit.line( 2 ).is_constant_input = true;
  circuit.line( 2 ).output_index = 0;
  circuit.line( 2 ).is_garbage = false;
  circuit.add_cnot( 0, 2 );
  circuit.add_cnot( 1, 2 );

  EXPECT_FALSE( verify_against_aig_sampled( circuit, aig, 256, 1 ).has_value() );
}

// --- thread pool -------------------------------------------------------------

TEST( dse_threads, pool_runs_every_job_exactly_once )
{
  thread_pool pool( 4 );
  constexpr std::size_t num_jobs = 64;
  std::vector<std::atomic<int>> ran( num_jobs );
  for ( std::size_t i = 0; i < num_jobs; ++i )
  {
    pool.submit( [&ran, i] { ran[i].fetch_add( 1 ); } );
  }
  pool.wait();
  for ( std::size_t i = 0; i < num_jobs; ++i )
  {
    EXPECT_EQ( ran[i].load(), 1 ) << i;
  }
}

TEST( dse_threads, inline_pool_runs_jobs_in_submission_order )
{
  thread_pool pool( 1 ); // no workers: inline, deterministic
  EXPECT_EQ( pool.num_workers(), 0u );
  std::vector<int> order;
  for ( int i = 0; i < 8; ++i )
  {
    pool.submit( [&order, i] { order.push_back( i ); } );
  }
  pool.wait();
  ASSERT_EQ( order.size(), 8u );
  EXPECT_TRUE( std::is_sorted( order.begin(), order.end() ) );
}

TEST( dse_threads, first_job_exception_is_rethrown_from_wait )
{
  thread_pool pool( 2 );
  for ( int i = 0; i < 4; ++i )
  {
    pool.submit( [] { throw std::runtime_error( "boom" ); } );
  }
  EXPECT_THROW( pool.wait(), std::runtime_error );
  // The pool stays usable after an exception.
  std::atomic<int> ran{ 0 };
  pool.submit( [&ran] { ran.fetch_add( 1 ); } );
  pool.wait();
  EXPECT_EQ( ran.load(), 1 );
}
