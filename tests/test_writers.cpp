#include <gtest/gtest.h>

#include "core/flows.hpp"
#include "reversible/write_circuit.hpp"

using namespace qsyn;

namespace
{

reversible_circuit sample_circuit()
{
  reversible_circuit c( 3 );
  c.line( 0 ).name = "x0";
  c.line( 0 ).is_primary_input = true;
  c.line( 1 ).name = "x1";
  c.line( 1 ).is_primary_input = true;
  c.line( 2 ).name = "y0";
  c.line( 2 ).is_constant_input = true;
  c.line( 2 ).output_index = 0;
  c.line( 2 ).is_garbage = false;
  c.add_toffoli( 0, 1, 2 );
  c.add_mct( { { 0, false } }, 1 );
  return c;
}

} // namespace

TEST( write_real, header_and_gates )
{
  const auto text = to_real( sample_circuit(), "demo" );
  EXPECT_NE( text.find( ".version 2.0" ), std::string::npos );
  EXPECT_NE( text.find( ".numvars 3" ), std::string::npos );
  EXPECT_NE( text.find( ".variables x0 x1 y0" ), std::string::npos );
  EXPECT_NE( text.find( ".constants --0" ), std::string::npos );
  EXPECT_NE( text.find( ".garbage 11-" ), std::string::npos );
  EXPECT_NE( text.find( "t3 x0 x1 y0" ), std::string::npos );
  EXPECT_NE( text.find( "t2 -x0 x1" ), std::string::npos ); // negative control
  EXPECT_NE( text.find( ".end" ), std::string::npos );
}

TEST( write_real, unnamed_lines_get_defaults )
{
  reversible_circuit c( 2 );
  c.add_cnot( 0, 1 );
  const auto text = to_real( c );
  EXPECT_NE( text.find( "t2 l0 l1" ), std::string::npos );
}

TEST( write_qasm, small_gates_map_directly )
{
  const auto text = to_qasm( sample_circuit() );
  EXPECT_NE( text.find( "OPENQASM 2.0;" ), std::string::npos );
  EXPECT_NE( text.find( "qreg q[3];" ), std::string::npos );
  EXPECT_NE( text.find( "ccx q[0],q[1],q[2];" ), std::string::npos );
  // Negative control conjugated with x gates around a cx.
  EXPECT_NE( text.find( "cx q[0],q[1];" ), std::string::npos );
}

TEST( write_qasm, large_gate_uses_ancilla_register )
{
  reversible_circuit c( 5 );
  c.add_mct( { { 0, true }, { 1, true }, { 2, true }, { 3, true } }, 4 );
  const auto text = to_qasm( c );
  EXPECT_NE( text.find( "qreg a[2];" ), std::string::npos );
  EXPECT_NE( text.find( "ccx q[0],q[1],a[0];" ), std::string::npos );
  EXPECT_NE( text.find( "ccx q[3],a[1],q[4];" ), std::string::npos );
  // Uncompute: the compute ccx lines appear twice.
  const auto first = text.find( "ccx q[0],q[1],a[0];" );
  EXPECT_NE( text.find( "ccx q[0],q[1],a[0];", first + 1 ), std::string::npos );
}

TEST( write_qasm, constant_one_initialization )
{
  reversible_circuit c( 2 );
  c.line( 0 ).is_constant_input = true;
  c.line( 0 ).constant_value = true;
  c.add_cnot( 0, 1 );
  const auto text = to_qasm( c );
  EXPECT_NE( text.find( "x q[0];" ), std::string::npos );
}

TEST( writers, flow_output_roundtrips_to_both_formats )
{
  flow_params params;
  params.kind = flow_kind::esop_based;
  const auto result = run_reciprocal_flow( reciprocal_design::intdiv, 4, params );
  const auto real_text = to_real( result.circuit, "intdiv4" );
  const auto qasm_text = to_qasm( result.circuit );
  EXPECT_NE( real_text.find( ".numvars 8" ), std::string::npos );
  EXPECT_NE( qasm_text.find( "qreg q[8];" ), std::string::npos );
  // Gate count in .real equals the circuit's gate count.
  std::size_t real_gates = 0;
  for ( std::size_t pos = real_text.find( "\nt" ); pos != std::string::npos;
        pos = real_text.find( "\nt", pos + 1 ) )
  {
    ++real_gates;
  }
  EXPECT_EQ( real_gates, result.circuit.num_gates() );
}
