#include <gtest/gtest.h>

#include <random>

#include "synth/lut_map.hpp"
#include "synth/xmg_resynth.hpp"
#include "verilog/elaborator.hpp"
#include "verilog/generators.hpp"

using namespace qsyn;

namespace
{

aig_network random_aig( unsigned num_pis, unsigned num_gates, std::uint64_t seed )
{
  std::mt19937_64 rng( seed );
  aig_network aig( num_pis );
  std::vector<aig_lit> pool;
  for ( unsigned i = 0; i < num_pis; ++i )
  {
    pool.push_back( aig.pi( i ) );
  }
  for ( unsigned g = 0; g < num_gates; ++g )
  {
    const auto a = pool[rng() % pool.size()] ^ static_cast<aig_lit>( rng() & 1u );
    const auto b = pool[rng() % pool.size()] ^ static_cast<aig_lit>( rng() & 1u );
    pool.push_back( aig.create_and( a, b ) );
  }
  for ( int o = 0; o < 3; ++o )
  {
    aig.add_po( pool[pool.size() - 1u - static_cast<std::size_t>( o ) % pool.size()] );
  }
  return aig;
}

bool networks_equal_by_simulation( const aig_network& aig, const lut_network& luts )
{
  if ( aig.num_pis() > 12u )
  {
    return false;
  }
  for ( std::uint64_t i = 0; i < ( std::uint64_t{ 1 } << aig.num_pis() ); ++i )
  {
    std::vector<bool> inputs( aig.num_pis() );
    for ( unsigned b = 0; b < aig.num_pis(); ++b )
    {
      inputs[b] = ( i >> b ) & 1u;
    }
    if ( aig.evaluate( inputs ) != luts.evaluate( inputs ) )
    {
      return false;
    }
  }
  return true;
}

bool xmg_equals_aig( const aig_network& aig, const xmg_network& xmg )
{
  for ( std::uint64_t i = 0; i < ( std::uint64_t{ 1 } << aig.num_pis() ); ++i )
  {
    std::vector<bool> inputs( aig.num_pis() );
    for ( unsigned b = 0; b < aig.num_pis(); ++b )
    {
      inputs[b] = ( i >> b ) & 1u;
    }
    if ( aig.evaluate( inputs ) != xmg.evaluate( inputs ) )
    {
      return false;
    }
  }
  return true;
}

} // namespace

TEST( lut_map, covers_simple_network )
{
  aig_network aig( 4 );
  aig.add_po( aig.create_xor( aig.create_and( aig.pi( 0 ), aig.pi( 1 ) ),
                              aig.create_or( aig.pi( 2 ), aig.pi( 3 ) ) ) );
  const auto net = lut_map( aig );
  EXPECT_TRUE( networks_equal_by_simulation( aig, net ) );
  // A 4-input function fits one 4-LUT.
  EXPECT_EQ( net.luts.size(), 1u );
  EXPECT_LE( net.luts[0].fanins.size(), 4u );
}

TEST( lut_map, cut_size_limits_fanins )
{
  const auto aig = random_aig( 8, 40, 5 );
  for ( const unsigned k : { 3u, 4u, 6u } )
  {
    lut_map_params params;
    params.cut_size = k;
    const auto net = lut_map( aig, params );
    for ( const auto& lut : net.luts )
    {
      EXPECT_LE( lut.fanins.size(), k );
    }
    EXPECT_TRUE( networks_equal_by_simulation( aig, net ) );
  }
}

TEST( lut_map, constant_and_pi_outputs )
{
  aig_network aig( 2 );
  aig.add_po( aig_network::const1 );
  aig.add_po( aig.pi( 1 ) );
  aig.add_po( lit_not( aig.pi( 0 ) ) );
  const auto net = lut_map( aig );
  EXPECT_TRUE( networks_equal_by_simulation( aig, net ) );
}

class lut_map_random : public ::testing::TestWithParam<unsigned>
{
};

TEST_P( lut_map_random, equivalence_on_random_networks )
{
  const auto seed = GetParam();
  const auto aig = random_aig( 7, 60, seed );
  const auto net = lut_map( aig );
  EXPECT_TRUE( networks_equal_by_simulation( aig, net ) );
}

INSTANTIATE_TEST_SUITE_P( seeds, lut_map_random, ::testing::Range( 1u, 9u ) );

TEST( xmg_resynth, detects_parity_luts )
{
  // A 3-input XOR chain should map to XOR nodes with zero MAJ cost.
  aig_network aig( 3 );
  aig.add_po( aig.create_xor( aig.create_xor( aig.pi( 0 ), aig.pi( 1 ) ), aig.pi( 2 ) ) );
  xmg_resynth_stats stats;
  const auto xmg = xmg_from_aig( aig, 4, &stats );
  EXPECT_TRUE( xmg_equals_aig( aig, xmg ) );
  EXPECT_EQ( xmg.num_maj(), 0u );
  EXPECT_GE( stats.direct_forms, 1u );
}

TEST( xmg_resynth, detects_maj_lut )
{
  aig_network aig( 3 );
  aig.add_po( aig.create_maj( aig.pi( 0 ), lit_not( aig.pi( 1 ) ), aig.pi( 2 ) ) );
  const auto xmg = xmg_from_aig( aig );
  EXPECT_TRUE( xmg_equals_aig( aig, xmg ) );
  EXPECT_EQ( xmg.num_maj(), 1u );
}

TEST( xmg_resynth, full_adder_is_one_maj )
{
  // sum + carry of a full adder: the classic showcase for XMGs.
  aig_network aig( 3 );
  const auto a = aig.pi( 0 );
  const auto b = aig.pi( 1 );
  const auto c = aig.pi( 2 );
  aig.add_po( aig.create_xor( aig.create_xor( a, b ), c ) );
  aig.add_po( aig.create_maj( a, b, c ) );
  const auto xmg = xmg_from_aig( aig );
  EXPECT_TRUE( xmg_equals_aig( aig, xmg ) );
  EXPECT_LE( xmg.num_maj(), 1u );
}

class xmg_resynth_random : public ::testing::TestWithParam<unsigned>
{
};

TEST_P( xmg_resynth_random, equivalence_on_random_networks )
{
  const auto seed = GetParam();
  const auto aig = random_aig( 6, 45, seed * 23u );
  const auto xmg = xmg_from_aig( aig );
  EXPECT_TRUE( xmg_equals_aig( aig, xmg ) );
}

INSTANTIATE_TEST_SUITE_P( seeds, xmg_resynth_random, ::testing::Range( 1u, 11u ) );

TEST( xmg_resynth, intdiv_design_equivalence )
{
  const auto mod = verilog::elaborate_verilog( verilog::generate_intdiv( 5 ) );
  const auto xmg = xmg_from_aig( mod.aig );
  EXPECT_TRUE( xmg_equals_aig( mod.aig, xmg ) );
}

TEST( xmg_resynth, ripple_adder_is_maj_xor_friendly )
{
  // w-bit ripple adder: w MAJ (carries) + XORs; the resynthesis should get
  // close to that bound from the AIG's 4-feasible cuts.
  const auto mod = verilog::elaborate_verilog( R"(
    module add(input [5:0] a, input [5:0] b, output [5:0] y);
      assign y = a + b;
    endmodule
  )" );
  const auto xmg = xmg_from_aig( mod.aig );
  EXPECT_TRUE( xmg_equals_aig( mod.aig, xmg ) );
  // 6-bit adder: carries need ~2-3 MAJ each with 4-input cuts, far below
  // the ~5 AND/OR nodes per bit a plain AIG mapping would pay.
  EXPECT_LE( xmg.num_maj(), 18u );
  EXPECT_GE( xmg.num_xor(), 3u );
}
